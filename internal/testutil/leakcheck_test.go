package testutil

import (
	"strings"
	"testing"
	"time"
)

func TestParseGoroutineID(t *testing.T) {
	cases := []struct {
		stack string
		id    int64
		ok    bool
	}{
		{"goroutine 1 [running]:\nmain.main()", 1, true},
		{"goroutine 4711 [chan receive]:", 4711, true},
		{"", 0, false},
		{"goroutine x [running]:", 0, false},
		{"not a header", 0, false},
	}
	for _, tc := range cases {
		id, ok := parseGoroutineID(tc.stack)
		if id != tc.id || ok != tc.ok {
			t.Errorf("parseGoroutineID(%q) = %d, %v; want %d, %v", tc.stack, id, ok, tc.id, tc.ok)
		}
	}
}

func TestGoroutineStacksSeesSelf(t *testing.T) {
	stacks := goroutineStacks()
	if len(stacks) == 0 {
		t.Fatal("no goroutines captured")
	}
	found := false
	for _, s := range stacks {
		if strings.Contains(s, "goroutineStacks") {
			found = true
		}
	}
	if !found {
		t.Error("capturing goroutine not present in its own snapshot")
	}
}

// TestLeakedSinceDetectsAndClears drives the diff directly: a goroutine
// parked on a channel shows up as leaked, and disappears once released.
func TestLeakedSinceDetectsAndClears(t *testing.T) {
	before := goroutineStacks()
	release := make(chan struct{})
	parked := make(chan struct{})
	go func() {
		close(parked)
		<-release
	}()
	<-parked
	deadline := time.Now().Add(leakRetryWindow)
	for len(leakedSince(before)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("parked goroutine never reported as leaked")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	for time.Now().Before(deadline) {
		if len(leakedSince(before)) == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("released goroutine still reported as leaked")
}

// TestCheckGoroutinesCleanTest is the happy path: a test whose goroutines
// all exit passes the deferred check.
func TestCheckGoroutinesCleanTest(t *testing.T) {
	defer CheckGoroutines(t)()
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}
