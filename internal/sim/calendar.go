package sim

import (
	"context"

	"mithril/internal/cpu"
	"mithril/internal/mc"
	"mithril/internal/timing"
)

// calendar is the next-event state the event-driven loop keeps per core. It
// generalizes the completion heap: completions, controller deadlines
// (refresh, matured work, scheme), and core wake-ups all feed one jump
// computation, and cores whose wake time lies in the future are not
// advanced at all. Two deadlines per core, not one, because they answer
// different questions:
//
//   - wake[i]: earliest instant Advance(i) would change any state — the
//     advance gate. Skipping a core with wake[i] > now is exact, not
//     heuristic: every early-return path in Advance mutates nothing.
//   - ready[i]: the core's contribution to the clock jump, identical to
//     what the tick loop folded in via NextReady. A core that only needs
//     one Advance to latch Finished has a wake time but no ready deadline;
//     folding its wake into the jump would create iterations the tick loop
//     never ran and change observable interleavings.
//
// Both caches stay valid while a core is skipped because its state is
// mutated only by Advance and Complete, and every Complete delivery resets
// wake[i] to now.
//
// The slices are allocated once per run in RunContext (the loop itself is
// allocation-free).
type calendar struct {
	wake  []timing.PicoSeconds
	ready []timing.PicoSeconds
}

func newCalendar(cores int) *calendar {
	return &calendar{
		wake:  make([]timing.PicoSeconds, cores), // zero: every core advances at t=0
		ready: make([]timing.PicoSeconds, cores),
	}
}

// runLoopCalendar is the event-driven simulator core: deliver due
// completions, advance exactly the cores whose wake time has arrived, tick
// exactly the channels with actionable work, then jump the clock to the
// earliest of request completion, per-bank timing expiry, RFM/REF
// deadline, and core wake-up. It is iteration-for-iteration equivalent to
// the legacy tick loop — same time series, same per-iteration side effects
// — the work skipped is exclusively calls the tick loop made that mutated
// nothing. TestLoopEquivalence holds the two loops to byte-identical
// results on every shipped quick spec.
//
//mithril:hotpath
func runLoopCalendar(ctx context.Context, cfg *Config, cores []*cpu.Core, ctl *mc.Controller, pending *completionQueue, cal *calendar, cancellable bool) (now timing.PicoSeconds, allDone bool, err error) {
	clk := tickClock{tick: cfg.Params.TCK}
	required := cfg.RequireCores
	if required <= 0 || required > len(cores) {
		required = len(cores)
	}
	// Cores start unfinished (NewCore rejects non-positive targets), and
	// only Advance can flip Finished, so counting transitions in the
	// advance pass keeps the done check O(1) per iteration.
	unfinished := required
	sinceCheck := 0
	for {
		if cancellable {
			sinceCheck++
			if sinceCheck >= cancelCheckInterval {
				sinceCheck = 0
				if err := ctx.Err(); err != nil {
					return clk.now, false, err
				}
			}
		}
		now := clk.now
		// Deliver due completions; a delivery unblocks its core (MSHR slot,
		// ROB head, or serialization drain), so its wake time collapses to
		// now regardless of what was cached.
		for pending.minAt() <= now {
			c := pending.pop()
			core := completionCore(c.reqID)
			cores[core].Complete(c.reqID, c.at)
			cal.wake[core] = now
		}
		for i, core := range cores {
			if cal.wake[i] > now {
				continue
			}
			wasUnfinished := i < required && !core.Finished()
			core.Advance(now)
			if wasUnfinished && core.Finished() {
				unfinished--
			}
			cal.wake[i] = core.NextWake(now)
			cal.ready[i] = core.NextDeadline(now)
		}
		if unfinished == 0 || now > cfg.MaxTime {
			return now, unfinished == 0, nil
		}
		ctl.TickDue(now)
		// Jump target: the controller's own deadline (refresh, matured
		// work, scheme), the next completion, and the cores' deadlines.
		// Cached ready values were clamped to an earlier now — harmless,
		// since Step takes the max against now+tick anyway.
		next := ctl.NextDeadline(now)
		if t := pending.minAt(); t < next {
			next = t
		}
		for _, t := range cal.ready {
			if t < next {
				next = t
			}
		}
		clk.Step(next)
	}
}
