// Package mc is the memory-controller model: physical address mapping,
// per-channel request queues, scheduling policies (FCFS, FR-FCFS, BLISS),
// page policies (open, closed, minimalist-open), the RAA counters and RFM
// issue logic of Figure 1, ARR injection for MC-side mitigations, and the
// throttling/skip hooks that BlockHammer and Mithril+ need.
package mc

import (
	"fmt"
	"math/bits"

	"mithril/internal/timing"
)

// Location is a fully decoded DRAM coordinate.
type Location struct {
	Channel int
	Rank    int
	Bank    int // bank index within the rank
	Row     int
	Column  int
	// GlobalBank is the device-wide bank index used by dram.Device.
	GlobalBank int
}

// AddressMapper translates between physical byte addresses and DRAM
// coordinates. The layout (from LSB): cache-line offset, channel, column,
// bank, rank, row — sequential cache lines interleave across channels, then
// walk a row, preserving row-buffer locality for streaming access while
// spreading load over banks at row granularity.
type AddressMapper struct {
	p timing.Params

	lineBits, chBits, colBits, bankBits, rankBits, rowBits int

	// Precomputed field masks and the rank/bank fan-out, so the per-request
	// decode is pure shift/mask/multiply-add without rebuilding constants.
	chMask, colMask, bankMask, rankMask, rowMask uint64
	ranks, banks                                 int
}

// LineSize is the cache line (and DRAM access) granularity in bytes.
const LineSize = 64

// NewAddressMapper builds the mapper for a parameter set. Organization
// fields must be powers of two.
func NewAddressMapper(p timing.Params) *AddressMapper {
	m := &AddressMapper{p: p, lineBits: bits.TrailingZeros(uint(LineSize))}
	for _, f := range []struct {
		name string
		v    int
		dst  *int
	}{
		{"Channels", p.Channels, &m.chBits},
		{"ColumnsPerRow", p.ColumnsPerRow, &m.colBits},
		{"Banks", p.Banks, &m.bankBits},
		{"Ranks", p.Ranks, &m.rankBits},
		{"Rows", p.Rows, &m.rowBits},
	} {
		if f.v&(f.v-1) != 0 {
			panic(fmt.Sprintf("mc: %s = %d must be a power of two", f.name, f.v))
		}
		*f.dst = bits.TrailingZeros(uint(f.v))
	}
	m.chMask = 1<<uint(m.chBits) - 1
	m.colMask = 1<<uint(m.colBits) - 1
	m.bankMask = 1<<uint(m.bankBits) - 1
	m.rankMask = 1<<uint(m.rankBits) - 1
	m.rowMask = 1<<uint(m.rowBits) - 1
	m.ranks, m.banks = p.Ranks, p.Banks
	return m
}

// Map decodes a physical byte address.
//
//mithril:hotpath
func (m *AddressMapper) Map(addr uint64) Location {
	var loc Location
	m.MapInto(addr, &loc)
	return loc
}

// MapInto decodes a physical byte address directly into loc, sparing the
// per-request Location copy that returning by value would cost on the
// enqueue path.
//
//mithril:hotpath
func (m *AddressMapper) MapInto(addr uint64, loc *Location) {
	a := addr >> uint(m.lineBits)
	ch := int(a & m.chMask)
	a >>= uint(m.chBits)
	col := int(a & m.colMask)
	a >>= uint(m.colBits)
	bank := int(a & m.bankMask)
	a >>= uint(m.bankBits)
	rank := int(a & m.rankMask)
	a >>= uint(m.rankBits)
	row := int(a & m.rowMask)
	*loc = Location{Channel: ch, Rank: rank, Bank: bank, Row: row, Column: col,
		GlobalBank: (ch*m.ranks+rank)*m.banks + bank}
}

// Compose builds the physical byte address for a coordinate (the inverse of
// Map); attack generators use it to aim at specific rows.
func (m *AddressMapper) Compose(loc Location) uint64 {
	a := uint64(loc.Row)
	a = a<<uint(m.rankBits) | uint64(loc.Rank)
	a = a<<uint(m.bankBits) | uint64(loc.Bank)
	a = a<<uint(m.colBits) | uint64(loc.Column)
	a = a<<uint(m.chBits) | uint64(loc.Channel)
	return a << uint(m.lineBits)
}

// RowBytes is the number of bytes covered by one row across one channel.
func (m *AddressMapper) RowBytes() int { return m.p.ColumnsPerRow * LineSize }

// AddressSpace is the total number of bytes the mapper covers; addresses are
// taken modulo this size.
func (m *AddressMapper) AddressSpace() uint64 {
	total := m.lineBits + m.chBits + m.colBits + m.bankBits + m.rankBits + m.rowBits
	return 1 << uint(total)
}

// Params returns the mapper's parameter set.
func (m *AddressMapper) Params() timing.Params { return m.p }
