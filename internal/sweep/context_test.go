package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"mithril/internal/testutil"
)

func TestRunContextCancelStopsWithinOneCell(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		check := testutil.CheckGoroutines(t)
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		release := make(chan struct{})
		_, err := RunContext(ctx, jobs, 100, func(ctx context.Context, i int) (int, error) {
			if started.Add(1) == 1 {
				cancel() // cancel while the very first cells are in flight
				close(release)
			}
			<-release
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: err = %v, want context.Canceled", jobs, err)
		}
		// In-flight cells (at most one per worker) finish; nothing new
		// starts after the cancel.
		if got := started.Load(); got > int64(jobs) {
			t.Errorf("jobs=%d: %d cells started after cancel", jobs, got)
		}
		check()
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := RunContext(ctx, 1, 10, func(ctx context.Context, i int) (int, error) {
		ran = true
		return i, nil
	})
	if !errors.Is(err, context.Canceled) || ran {
		t.Fatalf("err=%v ran=%v, want immediate context.Canceled", err, ran)
	}
}

func TestRunContextCellSeesDerivedCancel(t *testing.T) {
	// A failing cell must cancel the ctx handed to still-running cells,
	// replacing the old "cells that have not started are skipped" contract
	// with genuine mid-cell cancellation.
	boom := errors.New("boom")
	sawCancel := make(chan struct{})
	otherStarted := make(chan struct{})
	_, err := RunContext(context.Background(), 2, 2, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			<-otherStarted // fail only once cell 1 is genuinely in flight
			return 0, boom
		}
		close(otherStarted)
		select {
		case <-ctx.Done():
			close(sawCancel)
		case <-time.After(5 * time.Second):
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	select {
	case <-sawCancel:
	default:
		t.Fatal("surviving cell never observed the first-error cancellation")
	}
}

// TestRunContextRealErrorNotMaskedByInducedCancel pins the error-priority
// contract: a lower-index cell aborted by the sweep's own first-error
// cancellation must not overwrite the genuine failure with
// context.Canceled.
func TestRunContextRealErrorNotMaskedByInducedCancel(t *testing.T) {
	boom := errors.New("boom")
	cell1Failed := make(chan struct{})
	_, err := RunContext(context.Background(), 2, 2, func(ctx context.Context, i int) (int, error) {
		if i == 1 {
			close(cell1Failed)
			return 0, boom
		}
		// Cell 0 outlives cell 1's failure and aborts via the derived
		// cancellation — the exact interleaving that used to win the
		// lowest-index race and report context.Canceled.
		<-cell1Failed
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the genuine cell error", err)
	}
}

func TestStreamContextDeliversAll(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	for _, jobs := range []int{1, 4} {
		got := map[int]int{}
		for iv, err := range StreamContext(context.Background(), jobs, 50, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		}) {
			if err != nil {
				t.Fatalf("jobs=%d: %v", jobs, err)
			}
			got[iv.I] = iv.V
		}
		if len(got) != 50 {
			t.Fatalf("jobs=%d: %d results, want 50", jobs, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: result[%d] = %d", jobs, i, v)
			}
		}
	}
}

func TestStreamContextConsumerBreakStopsWorkers(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		check := testutil.CheckGoroutines(t)
		var started atomic.Int64
		seen := 0
		for _, err := range StreamContext(context.Background(), jobs, 1000, func(_ context.Context, i int) (int, error) {
			started.Add(1)
			return i, nil
		}) {
			if err != nil {
				t.Fatalf("jobs=%d: %v", jobs, err)
			}
			seen++
			if seen == 3 {
				break
			}
		}
		check()
		// The claim counter may run slightly ahead of deliveries (one
		// in-flight cell per worker), but breaking must stop the sweep
		// long before the 1000-cell grid drains.
		if got := started.Load(); got > int64(3+2*jobs) {
			t.Errorf("jobs=%d: %d cells ran after break", jobs, got)
		}
	}
}

func TestStreamContextErrorTerminates(t *testing.T) {
	boom := errors.New("boom")
	for _, jobs := range []int{1, 4} {
		check := testutil.CheckGoroutines(t)
		var sawErr error
		rows := 0
		for _, err := range StreamContext(context.Background(), jobs, 100, func(_ context.Context, i int) (int, error) {
			if i == 5 {
				return 0, boom
			}
			return i, nil
		}) {
			if err != nil {
				sawErr = err
				continue // the sequence must end itself after an error
			}
			rows++
		}
		if !errors.Is(sawErr, boom) {
			t.Fatalf("jobs=%d: err = %v, want boom", jobs, sawErr)
		}
		if rows >= 100 {
			t.Fatalf("jobs=%d: full grid delivered despite error", jobs)
		}
		check()
	}
}

func TestStreamContextParentCancel(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		check := testutil.CheckGoroutines(t)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var sawErr error
		rows := 0
		for _, err := range StreamContext(ctx, jobs, 1000, func(_ context.Context, i int) (int, error) {
			return i, nil
		}) {
			if err != nil {
				sawErr = err
				continue
			}
			rows++
			if rows == 2 {
				cancel()
			}
		}
		if !errors.Is(sawErr, context.Canceled) {
			t.Fatalf("jobs=%d: err = %v, want context.Canceled (after %d rows)", jobs, sawErr, rows)
		}
		check()
	}
}

func TestStreamContextPanicReachesConsumer(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	for _, jobs := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "cell 5 exploded" {
					t.Errorf("jobs=%d: recovered %v, want cell 5 panic", jobs, r)
				}
			}()
			for range StreamContext(context.Background(), jobs, 10, func(_ context.Context, i int) (int, error) {
				if i == 5 {
					panic("cell 5 exploded")
				}
				return i, nil
			}) {
			}
			t.Errorf("jobs=%d: stream completed instead of panicking", jobs)
		}()
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	fn := func(i int) (int, error) { return i + 1, nil }
	a, errA := Run(3, 20, fn)
	b, errB := RunContext(context.Background(), 3, 20, func(_ context.Context, i int) (int, error) { return fn(i) })
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("out[%d]: %d != %d", i, a[i], b[i])
		}
	}
}
