package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
)

// fleetConfigured reports whether the invocation named a worker fleet.
func (e env) fleetConfigured() bool { return e.workers != "" || e.spawn > 0 }

// fleet resolves the configured worker set: the -workers URL list
// verbatim, or -spawn N freshly started local worker processes (the
// single-machine smoke path; 0 with no -workers means 2). shutdown
// terminates any spawned workers and must be called when the fleet is
// done — for a -workers fleet it is a no-op (those processes belong to
// someone else).
func (e env) fleet(ctx context.Context) (workers []string, shutdown func(), err error) {
	if e.workers != "" {
		if e.spawn > 0 {
			return nil, nil, fmt.Errorf("-workers and -spawn are mutually exclusive (join an existing fleet or start a local one)")
		}
		var ws []string
		for _, w := range strings.Split(e.workers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				ws = append(ws, w)
			}
		}
		if len(ws) == 0 {
			return nil, nil, fmt.Errorf("-workers: no worker URLs in %q", e.workers)
		}
		return ws, func() {}, nil
	}
	n := e.spawn
	if n <= 0 {
		n = 2
	}
	return spawnWorkers(ctx, n, e.jobs)
}

// spawnWorkers starts n local worker processes (this binary, `serve
// -addr 127.0.0.1:0`) and returns their base URLs once each has
// announced its bound port. Workers get no -store: the disk store is a
// single-process resource, so dedup happens at the coordinator, which
// owns the store and never dispatches a row it already holds.
func spawnWorkers(ctx context.Context, n, jobs int) (workers []string, shutdown func(), err error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, fmt.Errorf("locating own binary to spawn workers: %w", err)
	}
	var procs []*exec.Cmd
	shutdown = func() {
		// TERM first for a graceful drain (the worker's signal context
		// shuts its HTTP server down), then reap; ctx cancellation is
		// the hard-kill backstop via CommandContext.
		for _, p := range procs {
			_ = p.Process.Signal(syscall.SIGTERM)
		}
		for _, p := range procs {
			_ = p.Wait()
		}
	}
	for i := 0; i < n; i++ {
		args := []string{"serve", "-addr", "127.0.0.1:0"}
		if jobs != 0 {
			args = append(args, "-jobs", strconv.Itoa(jobs))
		}
		cmd := exec.CommandContext(ctx, exe, args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			shutdown()
			return nil, nil, fmt.Errorf("spawning worker %d: %w", i, err)
		}
		procs = append(procs, cmd)
		buf := bufio.NewReader(stderr)
		url, err := awaitAnnounce(buf)
		if err != nil {
			shutdown()
			return nil, nil, fmt.Errorf("worker %d never announced its address: %w", i, err)
		}
		workers = append(workers, url)
		// Keep forwarding the worker's log lines; the goroutine exits at
		// EOF when the worker does.
		go func() { _, _ = io.Copy(os.Stderr, buf) }()
	}
	fmt.Fprintf(os.Stderr, "mithrilsim: spawned %d local workers: %s\n", n, strings.Join(workers, " "))
	return workers, shutdown, nil
}

// awaitAnnounce scans a worker's stderr for the serve announce line
// ("mithrilsim: serving on http://HOST:PORT (...)") and extracts the
// base URL — with -addr 127.0.0.1:0 this is the only way to learn the
// kernel-assigned port.
func awaitAnnounce(r *bufio.Reader) (string, error) {
	for {
		line, err := r.ReadString('\n')
		if i := strings.Index(line, "serving on "); i >= 0 {
			url := line[i+len("serving on "):]
			if j := strings.IndexAny(url, " \n"); j >= 0 {
				url = url[:j]
			}
			if url != "" {
				return url, nil
			}
		}
		if err != nil {
			return "", fmt.Errorf("worker exited before serving (%v)", err)
		}
	}
}
