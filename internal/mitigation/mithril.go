package mitigation

import (
	"fmt"

	"mithril/internal/analysis"
	"mithril/internal/core"
	"mithril/internal/mc"
	"mithril/internal/timing"
)

// MithrilScheme adapts the per-bank core.Mithril modules to the controller
// interface. Plain Mithril never asserts the MRR skip flag (the MC issues
// every RFM; the DRAM may still skip the refresh internally under the
// adaptive policy); MithrilPlus exposes the flag so the MC can elide the
// RFM command entirely (Section V-B).
type MithrilScheme struct {
	opt     Options
	cfg     core.Config
	plus    bool
	modules []*core.Mithril // per global bank, built on first use
}

var _ mc.Scheme = (*MithrilScheme)(nil)

func init() {
	Register("mithril", func(opt Options) mc.Scheme { return NewMithril(opt) })
	Register("mithril+", func(opt Options) mc.Scheme { return NewMithrilPlus(opt) })
}

// NewMithril configures Mithril for the option's FlipTH: RFMTH from the
// paper's per-level choice (or the override), Nentry from Theorem 1/2.
func NewMithril(opt Options) *MithrilScheme { return newMithril(opt, false) }

// NewMithrilPlus configures Mithril+ (identical hardware plus the MRR skip
// flag).
func NewMithrilPlus(opt Options) *MithrilScheme { return newMithril(opt, true) }

func newMithril(opt Options, plus bool) *MithrilScheme {
	opt.normalize()
	rfmTH := opt.RFMTH
	if rfmTH <= 0 {
		rfmTH = PaperRFMTH(opt.FlipTH)
	}
	blast := analysis.DoubleSidedBlast
	if opt.BlastRadius >= 3 {
		blast = analysis.NonAdjacentBlast
	}
	ac, ok := analysis.Configure(opt.Timing, opt.FlipTH, rfmTH, opt.AdTH, blast)
	if !ok {
		panic(fmt.Sprintf("mitigation: no feasible Mithril config for FlipTH=%d RFMTH=%d AdTH=%d",
			opt.FlipTH, rfmTH, opt.AdTH))
	}
	return &MithrilScheme{
		opt: opt,
		cfg: core.Config{
			NEntry:      ac.NEntry,
			RFMTH:       rfmTH,
			AdTH:        opt.AdTH,
			BlastRadius: opt.BlastRadius,
		},
		plus:    plus,
		modules: make([]*core.Mithril, opt.banks()),
	}
}

// ModuleConfig exposes the per-bank module configuration.
func (s *MithrilScheme) ModuleConfig() core.Config { return s.cfg }

// TableKB reports the per-bank table size from the area model.
func (s *MithrilScheme) TableKB() float64 {
	kb, _ := analysis.MithrilTableKB(s.opt.Timing, s.opt.FlipTH, s.cfg.RFMTH, s.cfg.AdTH)
	return kb
}

// ModuleStats aggregates the module counters across banks.
func (s *MithrilScheme) ModuleStats() core.Stats {
	var total core.Stats
	for _, m := range s.modules {
		if m == nil {
			continue
		}
		st := m.Stats()
		total.ACTs += st.ACTs
		total.RFMs += st.RFMs
		total.PreventiveRefreshes += st.PreventiveRefreshes
		total.AdaptiveSkips += st.AdaptiveSkips
		total.VictimRowsRefreshed += st.VictimRowsRefreshed
		if st.MaxSpreadSeen > total.MaxSpreadSeen {
			total.MaxSpreadSeen = st.MaxSpreadSeen
		}
	}
	return total
}

//mithril:hotpath
func (s *MithrilScheme) module(bank int) *core.Mithril {
	m := s.modules[bank]
	if m == nil {
		m = core.New(s.cfg) //mithril:allow hotpathalloc one-time lazy construction on a bank's first ACT
		s.modules[bank] = m
	}
	return m
}

// Name implements mc.Scheme.
func (s *MithrilScheme) Name() string {
	if s.plus {
		return "mithril+"
	}
	return "mithril"
}

// RFMCompatible implements mc.Scheme.
func (s *MithrilScheme) RFMCompatible() bool { return true }

// RFMTH implements mc.Scheme.
func (s *MithrilScheme) RFMTH() int { return s.cfg.RFMTH }

// OnActivate implements mc.Scheme: DRAM-side table update, no ARR.
//
//mithril:hotpath
func (s *MithrilScheme) OnActivate(bank int, row uint32, coreID int, now timing.PicoSeconds) []uint32 {
	s.module(bank).OnActivate(row)
	return nil
}

// PreACTDelay implements mc.Scheme.
//
//mithril:hotpath
func (s *MithrilScheme) PreACTDelay(int, uint32, int, timing.PicoSeconds) timing.PicoSeconds {
	return 0
}

// OnRFM implements mc.Scheme: greedy selection inside the tRFM window.
//
//mithril:hotpath
func (s *MithrilScheme) OnRFM(bank int, now timing.PicoSeconds) []uint32 {
	_, v, refreshed := s.module(bank).OnRFM()
	if !refreshed {
		return nil
	}
	return v
}

// SkipRFM implements mc.Scheme: only Mithril+ exposes the flag to the MC.
//
//mithril:hotpath
func (s *MithrilScheme) SkipRFM(bank int) bool {
	if !s.plus {
		return false
	}
	return s.module(bank).SkipFlag()
}

// NextDeadline implements mc.Scheme: the in-DRAM modules act only inside
// the RFM windows the controller schedules, so Mithril never contributes a
// deadline of its own.
//
//mithril:hotpath
func (s *MithrilScheme) NextDeadline(timing.PicoSeconds) timing.PicoSeconds { return timing.Never }
