package trace

import (
	"sort"
	"strings"
	"testing"
)

// The sorted order of WorkloadNames is a documented guarantee; the five
// paper workloads must be registered.
func TestWorkloadNamesSortedAndComplete(t *testing.T) {
	names := WorkloadNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("WorkloadNames() = %v, want sorted", names)
	}
	for _, want := range []string{"fft", "mix-blend", "mix-high", "pagerank", "radix"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("workload %q not registered (have %v)", want, names)
		}
	}
	infos := Workloads()
	if len(infos) != len(names) {
		t.Fatalf("Workloads() = %d entries, WorkloadNames() = %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("Workloads()[%d] = %q, want %q (same sorted order)", i, info.Name, names[i])
		}
		if info.Desc == "" {
			t.Errorf("workload %q has no description", info.Name)
		}
	}
}

func TestRegisterWorkloadPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"empty name", func() { RegisterWorkload("", "d", MixHigh) }},
		{"nil factory", func() { RegisterWorkload("t-nil", "d", nil) }},
		{"duplicate", func() { RegisterWorkload("mix-high", "d", MixHigh) }},
		{"reserved trace prefix", func() { RegisterWorkload("trace:foo", "d", MixHigh) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			c.fn()
		})
	}
}

// Registered factories build their own named workloads, and the error for
// an unknown name lists the valid ones.
func TestBuildWorkloadRegistered(t *testing.T) {
	for _, name := range []string{"fft", "mix-blend", "mix-high", "pagerank", "radix"} {
		w, err := BuildWorkload(name, 4, 1)
		if err != nil {
			t.Fatalf("BuildWorkload(%q): %v", name, err)
		}
		if w.Name != name {
			t.Errorf("BuildWorkload(%q).Name = %q", name, w.Name)
		}
		if len(w.Fresh()) != 4 {
			t.Errorf("BuildWorkload(%q) built %d generators, want 4", name, len(w.Fresh()))
		}
	}
	_, err := BuildWorkload("spec2017", 4, 1)
	if err == nil || !strings.Contains(err.Error(), "mix-high") {
		t.Errorf("unknown-workload error should list valid names, got %v", err)
	}
}

func TestValidateWorkloadName(t *testing.T) {
	if err := ValidateWorkloadName("mix-high"); err != nil {
		t.Errorf("mix-high: %v", err)
	}
	// trace:<path> is validated by shape only — the file is read at build.
	if err := ValidateWorkloadName("trace:no/such/file.trace"); err != nil {
		t.Errorf("trace form: %v", err)
	}
	if err := ValidateWorkloadName("trace:"); err == nil {
		t.Error("trace: with empty path must fail validation")
	}
	if err := ValidateWorkloadName("spec2017"); err == nil {
		t.Error("unknown name must fail validation")
	}
}
