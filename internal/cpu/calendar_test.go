package cpu

import (
	"testing"

	"mithril/internal/mc"
	"mithril/internal/timing"
)

// TestNextDeadlineClampsNextReady pins the calendar contract: NextDeadline
// is nextReady clamped to now, with timing.Never preserved as the
// completion-driven sentinel.
func TestNextDeadlineClampsNextReady(t *testing.T) {
	llc := NewLLC(1<<20, 16)
	c := NewCore(0, DefaultCoreConfig(), seqSource(0, 64), llc, 1000,
		func(*mc.Request) bool { return true })

	// Fresh core: ready immediately, so a later now clamps up to now.
	if got := c.NextDeadline(0); got != 0 {
		t.Fatalf("fresh core NextDeadline(0) = %v, want 0", got)
	}
	if got := c.NextDeadline(5000); got != 5000 {
		t.Fatalf("fresh core NextDeadline(5000) = %v, want 5000 (clamp)", got)
	}

	// Run until the MSHR limit stalls the core: now completion-driven.
	c.Advance(timing.PicoSeconds(1_000_000))
	if got := c.NextReady(); got != timing.Never {
		t.Fatalf("MSHR-stalled core NextReady = %v, want Never", got)
	}
	if got := c.NextDeadline(0); got != timing.Never {
		t.Fatalf("MSHR-stalled core NextDeadline = %v, want Never", got)
	}
	if got := c.NextWake(0); got != timing.Never {
		t.Fatalf("MSHR-stalled core NextWake = %v, want Never", got)
	}
}

// TestNextWakeLatchesFinishedTransition pins the one case where NextWake
// and NextDeadline differ: a core that issued its full target with no
// outstanding misses contributes no deadline (the tick loop never added an
// iteration for it), but still needs one Advance at its fetch time to
// latch Finished.
func TestNextWakeLatchesFinishedTransition(t *testing.T) {
	llc := NewLLC(1<<20, 16)
	// A single repeated op: the first access misses, the rest hit the same
	// line, so the core reaches its target with exactly one miss in flight.
	src := &scriptSource{entries: []Op{{Gap: 3, Addr: 0}}}
	c := NewCore(0, DefaultCoreConfig(), src, llc, 8, func(*mc.Request) bool { return true })

	c.Advance(timing.PicoSeconds(1_000_000))
	if c.instrIssued < c.target || len(c.outstanding) != 1 {
		t.Fatalf("setup: issued %d/%d with %d outstanding", c.instrIssued, c.target, len(c.outstanding))
	}
	// Drain the miss: the core is now one Advance away from Finished.
	c.Complete(c.outstanding[0].reqID, 100)

	wake := c.NextWake(0)
	if wake != c.fetchTime {
		t.Fatalf("latch-pending core NextWake = %v, want fetch time %v", wake, c.fetchTime)
	}
	if got := c.NextDeadline(0); got != timing.Never {
		t.Fatalf("target-reached core must not contribute a jump deadline, got %v", got)
	}
	c.Advance(wake)
	if !c.Finished() {
		t.Fatal("Advance at NextWake did not latch Finished")
	}
	if got := c.NextWake(0); got != timing.Never {
		t.Fatalf("finished core NextWake = %v, want Never", got)
	}
}
