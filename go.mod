module mithril

go 1.24
