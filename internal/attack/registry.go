package attack

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mithril/internal/mc"
	"mithril/internal/trace"
)

// Params configures one attack-pattern build. Only Mapper is required;
// every other field has a pattern default (documented per pattern) chosen
// to reproduce the paper's evaluation configuration, so a spec can name an
// attack without spelling out DRAM coordinates.
type Params struct {
	// Mapper translates rows to physical addresses (required).
	Mapper *mc.AddressMapper
	// Channel and Bank locate the attacked bank (default 0, 0).
	Channel, Bank int
	// Row is the pattern's target row — the victim for single/double/
	// decoy, the first aggressor for multi, the benign hot row for
	// blockhammer-adversarial. Zero selects the pattern's default.
	Row int
	// Rows is the explicit aggressor list for the rowlist pattern.
	Rows []int
	// Oracle is the deployed scheme's collision oracle, when it exposes
	// one (BlockHammer); blockhammer-adversarial degrades to a benign
	// row walk without it.
	Oracle Throttler
}

// Pattern is one registered attack family. Build may be invoked with an
// argument when the pattern was registered as parameterized (ArgHint
// non-empty): "multi:24" reaches the "multi" pattern with arg "24".
type Pattern struct {
	// Desc is the one-line catalog description (CLI, serve, README).
	Desc string
	// ArgHint names the parameter in catalogs ("<n>" renders the display
	// name "multi:<n>") and marks the pattern as accepting an argument.
	// Patterns without an ArgHint reject any argument.
	ArgHint string
	// Check validates an argument without building (spec validation runs
	// it) and returns its canonical spelling — defaults applied, numbers
	// normalized — so "decoy" and "decoy:4", or "multi:8" and "multi:08",
	// dedupe to one pattern. Required exactly when ArgHint is set; Build
	// receives the canonical argument.
	Check func(arg string) (canon string, err error)
	// Build constructs a fresh generator from the canonical argument.
	// Generators are stateful, so every simulation needs its own Build
	// call.
	Build func(arg string, p Params) (trace.Generator, error)
	// NeedsOracle marks patterns that are only meaningful with a
	// collision oracle (Params.Oracle). Axes that cannot supply one —
	// a comparison spec's attacks axis builds its workloads before any
	// scheme exists — reject such patterns instead of silently running
	// the oracle-less fallback.
	NeedsOracle bool
	// NeedsRows marks patterns that require an explicit Params.Rows
	// list. Spec axes cannot express one, so validation rejects such
	// patterns there; they remain buildable through the library API.
	NeedsRows bool
}

// Display is the catalog spelling: the registered name plus the argument
// hint for parameterized patterns ("multi:<n>").
func (pat Pattern) display(name string) string {
	if pat.ArgHint == "" {
		return name
	}
	return name + ":" + pat.ArgHint
}

// PatternInfo describes one registered pattern for catalogs.
type PatternInfo struct {
	// Name is the display spelling ("multi:<n>" for parameterized
	// patterns, the bare registered name otherwise).
	Name string `json:"name"`
	Desc string `json:"desc"`
}

// registry maps pattern base names to patterns. The paper's patterns
// register themselves below; out-of-tree patterns call Register from
// their package's init and become buildable by every consumer (spec
// validation, the CLI, the serve endpoint) without touching this package.
var (
	registryMu sync.RWMutex
	registry   = map[string]Pattern{}
)

// Register adds a buildable attack pattern under name. It panics on an
// empty name, a name containing the ":" argument separator, a nil Build,
// an ArgHint without a Check (or vice versa), or a duplicate registration
// — all programmer errors at package-init time.
func Register(name string, pat Pattern) {
	if name == "" {
		panic("attack: Register with empty pattern name")
	}
	if strings.Contains(name, ":") {
		panic(fmt.Sprintf("attack: Register(%q): pattern names must not contain %q (it separates the argument)", name, ":"))
	}
	if pat.Build == nil {
		panic(fmt.Sprintf("attack: Register(%q) with nil Build", name))
	}
	if (pat.ArgHint == "") != (pat.Check == nil) {
		panic(fmt.Sprintf("attack: Register(%q): ArgHint and Check must be set together", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("attack: duplicate Register(%q)", name))
	}
	registry[name] = pat
}

// ErrUnknownAttack is returned (wrapped, with the valid patterns listed)
// by Build and Validate for a name no pattern is registered under. Match
// with errors.Is.
var ErrUnknownAttack = errors.New("unknown attack pattern")

// Names lists the registered patterns' display spellings in sorted order
// ("multi:<n>" for parameterized patterns). The ordering is a documented
// guarantee (and pinned by a test), like mitigation.Names.
func Names() []string {
	infos := Patterns()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}

// Patterns lists the registered patterns with their one-line
// descriptions, sorted by name (the same guarantee as Names).
func Patterns() []PatternInfo {
	registryMu.RLock()
	defer registryMu.RUnlock()
	infos := make([]PatternInfo, 0, len(registry))
	for n, pat := range registry {
		infos = append(infos, PatternInfo{Name: pat.display(n), Desc: pat.Desc})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// split separates "multi:24" into base "multi" and arg "24" (arg is empty
// when there is no separator).
func split(name string) (base, arg string) {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return name, ""
}

// lookup resolves a (possibly parameterized) name against the registry,
// validates its argument syntax, and returns the canonical argument.
func lookup(name string) (Pattern, string, error) {
	base, arg := split(name)
	registryMu.RLock()
	pat, ok := registry[base]
	registryMu.RUnlock()
	if !ok {
		return Pattern{}, "", fmt.Errorf("attack: %w %q (valid: %s)", ErrUnknownAttack, name, strings.Join(Names(), ", "))
	}
	if pat.Check == nil {
		if arg != "" {
			return Pattern{}, "", fmt.Errorf("attack: %q takes no argument (got %q)", base, arg)
		}
		return pat, "", nil
	}
	canon, err := pat.Check(arg)
	if err != nil {
		return Pattern{}, "", fmt.Errorf("attack: %s: %w", name, err)
	}
	return pat, canon, nil
}

// Validate checks that name resolves to a registered pattern with a
// well-formed argument, without building anything (spec validation runs
// before a mapper exists).
func Validate(name string) error {
	_, _, err := lookup(name)
	return err
}

// Canonical returns the registry-canonical spelling of a (possibly
// parameterized) name: defaults applied and arguments normalized, so
// "decoy" and "decoy:4" — or "multi:8" and "multi:08" — canonicalize
// identically. Spec validation dedupes the attacks axis on this, because
// two spellings of one pattern would emit indistinguishable rows.
func Canonical(name string) (string, error) {
	base, _ := split(name)
	_, canon, err := lookup(name)
	if err != nil {
		return "", err
	}
	if canon == "" {
		return base, nil
	}
	return base + ":" + canon, nil
}

// NeedsOracle reports whether the named pattern declares itself
// oracle-only (false for unknown names — Validate owns that error).
func NeedsOracle(name string) bool {
	base, _ := split(name)
	registryMu.RLock()
	defer registryMu.RUnlock()
	return registry[base].NeedsOracle
}

// NeedsRows reports whether the named pattern requires an explicit
// Params.Rows list (false for unknown names — Validate owns that error).
func NeedsRows(name string) bool {
	base, _ := split(name)
	registryMu.RLock()
	defer registryMu.RUnlock()
	return registry[base].NeedsRows
}

// Build constructs a fresh generator for the named pattern: "single",
// "double", "multi:<n>", "rowlist", "decoy"/"decoy:<n>", or
// "blockhammer-adversarial" in the shipped registry, plus anything
// registered out of tree. Generators are stateful — build one per
// simulation. An unregistered name yields an error wrapping
// ErrUnknownAttack that lists the valid patterns.
func Build(name string, p Params) (trace.Generator, error) {
	pat, arg, err := lookup(name)
	if err != nil {
		return nil, err
	}
	if p.Mapper == nil {
		return nil, fmt.Errorf("attack: %s: Params.Mapper is required", name)
	}
	return pat.Build(arg, p)
}

// rowOr substitutes a pattern's default target row for the zero value.
func rowOr(p Params, def int) int {
	if p.Row != 0 {
		return p.Row
	}
	return def
}

// checkRows rejects aggressor rows outside the bank before the typed
// constructors would panic: registry builds are driven by spec/CLI input,
// so bad coordinates must surface as errors, not crashes.
func checkRows(p Params, rows ...int) error {
	limit := p.Mapper.Params().Rows
	for _, r := range rows {
		if r < 0 || r >= limit {
			return fmt.Errorf("row %d outside bank of %d rows", r, limit)
		}
	}
	return nil
}

// checkCount parses a strictly positive decimal argument and returns it
// re-formatted, so leading zeros canonicalize away.
func checkCount(what string) func(arg string) (string, error) {
	return func(arg string) (string, error) {
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 {
			return "", fmt.Errorf("bad %s %q (want a positive integer)", what, arg)
		}
		return strconv.Itoa(n), nil
	}
}

// Paper-default target rows. Single and double hammer around row 1000 and
// multi starts at 2000 (the coordinates of the safety sweep, Section
// VI-A); decoy sits at 3000 so its decoy walk stays clear of both; the
// BlockHammer adversary aims at hot row 512, matching the Figure 10(c)
// benign service row.
const (
	defaultSingleRow = 1000
	defaultDoubleRow = 1000
	defaultMultiRow  = 2000
	defaultDecoyRow  = 3000
	defaultBHRow     = 512
)

// defaultDecoys is the decoy-row count when "decoy" is named without an
// argument.
const defaultDecoys = 4

func init() {
	Register("single", Pattern{
		Desc: "single-sided RowHammer: one aggressor row activated at maximum rate (default row 1000)",
		Build: func(_ string, p Params) (trace.Generator, error) {
			row := rowOr(p, defaultSingleRow)
			if err := checkRows(p, row); err != nil {
				return nil, err
			}
			return NewSingleSided(p.Mapper, p.Channel, p.Bank, row), nil
		},
	})
	Register("double", Pattern{
		Desc: "double-sided RowHammer: both neighbours of one victim row (default victim 1000)",
		Build: func(_ string, p Params) (trace.Generator, error) {
			victim := rowOr(p, defaultDoubleRow)
			if err := checkRows(p, victim-1, victim+1); err != nil {
				return nil, err
			}
			return NewDoubleSided(p.Mapper, p.Channel, p.Bank, victim), nil
		},
	})
	Register("multi", Pattern{
		Desc:    "TRRespass-style multi-sided RowHammer: n victims between n+1 equally spaced aggressors (default first row 2000)",
		ArgHint: "<n>",
		Check:   checkCount("victim count"),
		Build: func(arg string, p Params) (trace.Generator, error) {
			n, _ := strconv.Atoi(arg) // Check canonicalized arg
			first := rowOr(p, defaultMultiRow)
			if err := checkRows(p, first, first+2*n); err != nil {
				return nil, err
			}
			return NewMultiSided(p.Mapper, p.Channel, p.Bank, first, n), nil
		},
	})
	Register("rowlist", Pattern{
		Desc:      "explicit aggressor row list (library use: mithril.NewAttack with AttackParams.Rows — spec axes name the shaped patterns)",
		NeedsRows: true,
		Build: func(_ string, p Params) (trace.Generator, error) {
			if len(p.Rows) == 0 {
				return nil, fmt.Errorf("rowlist needs a non-empty Params.Rows")
			}
			if err := checkRows(p, p.Rows...); err != nil {
				return nil, err
			}
			return NewRowList("rowlist", p.Mapper, p.Channel, p.Bank, p.Rows), nil
		},
	})
	Register("decoy", Pattern{
		Desc:    "TRR-evading double-sided hammer hidden behind n hot decoy rows that absorb sampled mitigations (default victim 3000, n=4)",
		ArgHint: "<n>",
		Check: func(arg string) (string, error) {
			if arg == "" {
				// Plain "decoy" canonicalizes to the default count.
				return strconv.Itoa(defaultDecoys), nil
			}
			return checkCount("decoy count")(arg)
		},
		Build: func(arg string, p Params) (trace.Generator, error) {
			n, _ := strconv.Atoi(arg) // Check canonicalized arg
			victim := rowOr(p, defaultDecoyRow)
			return NewDecoy(p.Mapper, p.Channel, p.Bank, victim, n)
		},
	})
	Register("blockhammer-adversarial", Pattern{
		Desc:        "BlockHammer performance adversary: hammers rows that collide with a benign hot row in the deployed scheme's filters (default hot row 512)",
		NeedsOracle: true,
		Build: func(_ string, p Params) (trace.Generator, error) {
			row := rowOr(p, defaultBHRow)
			if err := checkRows(p, row); err != nil {
				return nil, err
			}
			return NewBlockHammerAdversary(p.Mapper, p.Channel, p.Bank, row, p.Oracle), nil
		},
	})
}
