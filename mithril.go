// Package mithril is the public API of the Mithril reproduction (Kim et
// al., "Mithril: Cooperative Row Hammer Protection on Commodity DRAM
// Leveraging Managed Refresh", HPCA 2022): a DDR5 system simulator with
// every mitigation scheme of the paper's Table I, the closed-form Theorem
// 1/2 configuration math, and experiment drivers that regenerate each
// evaluation figure and table.
//
// Quick start — construct an Engine once, then drive everything through
// it with a context:
//
//	eng := mithril.NewEngine(mithril.DDR5())
//	scheme, _ := mithril.NewScheme("mithril", mithril.SchemeOptions{
//	    Timing: mithril.DDR5(), FlipTH: 6250,
//	})
//	cmp, _ := eng.Compare(ctx, mithril.SimConfig{
//	    FlipTH: 6250,
//	    Scheduler: mithril.BLISS, Policy: mithril.MinimalistOpen,
//	}, mithril.MixHigh(16, 1), scheme)
//	fmt.Printf("relative perf %.2f%%\n", cmp.RelativePerformance)
//
// Experiment sweeps (Engine.RunSpec over a declarative spec, or the
// figure wrappers Figure7Data, Figure9Data, Figure10Data, Figure11Data,
// SafetySweep) fan their independent simulation cells out over a worker
// pool sized by Scale.Jobs (0 = all cores, 1 = serial); parallel and
// serial runs produce identical results in identical order. Engine.Stream
// yields grid points as workers finish them, for consumers that need
// partial results before the sweep completes.
//
// Mitigation schemes live in an open registry: the paper's Table I set is
// built in, and out-of-tree schemes plug in via mitigation.Register
// without touching the controller (see NewScheme).
//
// The pre-Engine package-level entry points (Run, Compare, RunParallel)
// remain as thin deprecated shims over a default Engine; see the README's
// migration table and deprecation policy.
package mithril

import (
	"context"

	"mithril/internal/analysis"
	"mithril/internal/attack"
	"mithril/internal/expspec"
	"mithril/internal/mc"
	"mithril/internal/mitigation"
	"mithril/internal/sim"
	"mithril/internal/sweep"
	"mithril/internal/timing"
	"mithril/internal/trace"
)

// Re-exported types: the façade keeps downstream users on one import.
type (
	// TimingParams is the DRAM timing/organization parameter set.
	TimingParams = timing.Params
	// PicoSeconds is the simulator time unit.
	PicoSeconds = timing.PicoSeconds
	// SchemeOptions configures mitigation construction.
	SchemeOptions = mitigation.Options
	// Scheme is a RowHammer mitigation pluggable into the controller.
	Scheme = mc.Scheme
	// SimConfig describes one simulation run.
	SimConfig = sim.Config
	// SimResult carries a run's metrics.
	SimResult = sim.Result
	// Comparison is a protected run normalized against its baseline.
	Comparison = sim.Comparison
	// Workload is a named, replayable set of per-core generators.
	Workload = trace.Workload
	// Generator produces a core's access stream.
	Generator = trace.Generator
	// MithrilConfig is a feasible (Nentry, RFMTH) operating point.
	MithrilConfig = analysis.Config
	// SchedulerKind selects the MC scheduling policy.
	SchedulerKind = mc.SchedulerKind
	// PagePolicy selects the row-buffer management policy.
	PagePolicy = mc.PagePolicy
)

// Scheduler kinds (Table III uses BLISS).
const (
	FCFS   = mc.FCFS
	FRFCFS = mc.FRFCFS
	BLISS  = mc.BLISS
)

// Page policies (Table III uses minimalist-open).
const (
	OpenPage       = mc.OpenPage
	ClosedPage     = mc.ClosedPage
	MinimalistOpen = mc.MinimalistOpen
)

// DDR5 returns the paper's DDR5-4800 parameter set (Table III).
func DDR5() TimingParams { return timing.DDR5() }

// NewScheme builds a mitigation by registered name; the shipped registry
// is the paper's Table I set ("blockhammer", "cbt", "graphene", "mithril",
// "mithril+", "none", "para", "parfm", "twice"). An unknown name yields an
// error wrapping ErrUnknownScheme that lists the valid names. Out-of-tree
// schemes registered via mitigation.Register are buildable here too.
func NewScheme(name string, opt SchemeOptions) (Scheme, error) {
	return mitigation.Build(name, opt)
}

// ErrUnknownScheme is wrapped by NewScheme's error for a name no scheme is
// registered under; match with errors.Is.
var ErrUnknownScheme = mitigation.ErrUnknownScheme

// SchemeNames lists the registered scheme names. The sorted order is a
// documented, tested guarantee — consumers may render it directly in
// error messages and service responses.
func SchemeNames() []string { return mitigation.Names() }

// Run executes one simulation.
//
// Deprecated: use Engine.Run, which takes a context for cancellation.
// This shim runs on a default Engine with context.Background().
func Run(cfg SimConfig) (SimResult, error) {
	//mithril:allow ctxflow deprecated ctx-less shim pinned by apicompat; Engine.Run is the ctx path
	return defaultEngine.Run(context.Background(), cfg)
}

// DefaultJobs returns the sweep engine's default worker count: one per
// available core. Scale.Jobs = 0 resolves to this.
func DefaultJobs() int { return sweep.DefaultJobs() }

// RunParallel executes fn(0..n-1) on up to jobs workers (0 = all cores)
// and returns the results in index order; the first error cancels cells
// that have not started.
//
// Deprecated: use RunParallelContext, which threads a context into every
// cell so a cancelled grid stops mid-cell instead of draining.
func RunParallel[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	return sweep.Run(jobs, n, fn)
}

// Compare runs a workload unprotected and protected and reports normalized
// performance and energy.
//
// Deprecated: use Engine.Compare, which takes a context for cancellation.
// This shim runs on a default Engine with context.Background().
func Compare(cfg SimConfig, w Workload, s Scheme) (Comparison, error) {
	//mithril:allow ctxflow deprecated ctx-less shim pinned by apicompat; Engine.Compare is the ctx path
	return defaultEngine.Compare(context.Background(), cfg, w, s)
}

// Configure computes the minimal Mithril table for a (FlipTH, RFMTH, AdTH)
// point per Theorem 1/2; ok is false when the point is infeasible.
func Configure(p TimingParams, flipTH, rfmTH, adTH int) (MithrilConfig, bool) {
	return analysis.Configure(p, flipTH, rfmTH, adTH, analysis.DoubleSidedBlast)
}

// BoundM evaluates the Theorem 1 bound for a configuration.
func BoundM(p TimingParams, nEntry, rfmTH int) float64 {
	return analysis.BoundM(p, nEntry, rfmTH)
}

// BoundMPrime evaluates the Theorem 2 bound (adaptive refresh).
func BoundMPrime(p TimingParams, nEntry, rfmTH, adTH int) float64 {
	return analysis.BoundMPrime(p, nEntry, rfmTH, adTH)
}

// ExperimentSpec is a declarative experiment description: a named grid
// over scheme × FlipTH × workload × attack × seed (× adversarial flag)
// at a scale, the JSON format the shipped specs/*.json figures use.
// Scheme, workload, and attack names resolve through the open registries
// (see SchemeNames, WorkloadNames, AttackNames); workloads also accept
// the "trace:<path>" replay form. See the README's "Declarative
// experiment specs" and "Scenario catalog" sections for the format.
type ExperimentSpec = expspec.Spec

// ExperimentResult holds an executed spec's rows; Emit renders it as a
// human table or machine-readable JSON/CSV/golden rows.
type ExperimentResult = expspec.Result

// Output formats for ExperimentResult.Emit.
const (
	FormatTable  = expspec.FormatTable
	FormatJSON   = expspec.FormatJSON
	FormatCSV    = expspec.FormatCSV
	FormatGolden = expspec.FormatGolden
)

// ParseSpec decodes and validates a declarative experiment spec (unknown
// schemes, workloads, columns, axes, and JSON fields are errors). Execute
// it with Run (the spec's own scale) or RunAt.
func ParseSpec(data []byte) (*ExperimentSpec, error) { return expspec.Parse(data) }

// LoadSpec reads and validates a spec file from disk.
func LoadSpec(path string) (*ExperimentSpec, error) { return expspec.Load(path) }

// LoadShippedSpec loads one embedded spec by name (e.g. "figure10.quick";
// see SpecsFS for the inventory).
func LoadShippedSpec(name string) (*ExperimentSpec, error) {
	return expspec.LoadFS(specsFS, "specs/"+name+".json")
}

// MixHigh and friends re-export the paper's workloads.
func MixHigh(cores int, seed uint64) Workload    { return trace.MixHigh(cores, seed) }
func MixBlend(cores int, seed uint64) Workload   { return trace.MixBlend(cores, seed) }
func FFT(threads int, seed uint64) Workload      { return trace.FFT(threads, seed) }
func Radix(threads int, seed uint64) Workload    { return trace.Radix(threads, seed) }
func PageRank(threads int, seed uint64) Workload { return trace.PageRank(threads, seed) }

// ------------------------------------------------- workload/attack registries

// WorkloadInfo describes one registered workload (name + one-line
// description) for catalogs.
type WorkloadInfo = trace.WorkloadInfo

// AttackInfo describes one registered attack pattern for catalogs; the
// Name carries the display spelling ("multi:<n>" for parameterized
// patterns).
type AttackInfo = attack.PatternInfo

// WorkloadNames lists the registered workload names. The sorted order is
// a documented, tested guarantee, like SchemeNames. The "trace:<path>"
// replay form is a name shape, not a registration, and is not listed.
func WorkloadNames() []string { return trace.WorkloadNames() }

// WorkloadCatalog lists the registered workloads with descriptions,
// sorted by name (the CLI `workloads` command and the serve /workloads
// endpoint render it directly).
func WorkloadCatalog() []WorkloadInfo { return trace.Workloads() }

// NewWorkload builds a workload by registered name (the shipped registry
// holds the paper's five: "fft", "mix-blend", "mix-high", "pagerank",
// "radix") or by the "trace:<path>" form, which parses a recorded
// access-trace file (format in the README) and replays it on every core.
// An unknown name yields an error wrapping ErrUnknownWorkload that lists
// the valid names.
func NewWorkload(name string, cores int, seed uint64) (Workload, error) {
	return trace.BuildWorkload(name, cores, seed)
}

// RegisterWorkload adds an out-of-tree workload to the open registry: it
// becomes buildable by NewWorkload, valid in spec files, and listed by
// the CLI and serve catalogs. It panics on an empty name, a nil factory,
// or a duplicate registration (programmer errors at init time).
func RegisterWorkload(name, desc string, f func(cores int, seed uint64) Workload) {
	trace.RegisterWorkload(name, desc, f)
}

// ErrUnknownWorkload is wrapped by NewWorkload's error (and spec
// validation) for an unregistered workload name; match with errors.Is.
var ErrUnknownWorkload = trace.ErrUnknownWorkload

// AddressMapper translates between physical byte addresses and DRAM
// coordinates; attack patterns use it to aim at specific rows.
type AddressMapper = mc.AddressMapper

// NewAddressMapper builds the mapper for a parameter set.
func NewAddressMapper(p TimingParams) *AddressMapper { return mc.NewAddressMapper(p) }

// AttackParams configures an attack-pattern build for NewAttack: the
// required Mapper plus optional bank/row coordinates (each pattern has
// paper defaults), an explicit Rows list for "rowlist", and the deployed
// scheme's collision oracle for oracle-driven patterns.
type AttackParams = attack.Params

// CollisionOracle is the collision interface oracle-driven attack
// patterns probe (BlockHammer exposes one); extract it from a Scheme
// with a checked type assertion.
type CollisionOracle = attack.Throttler

// NewAttack builds a registered attack pattern by (possibly
// parameterized) name — "multi:8", "decoy", "rowlist", ... — as a
// Generator to place in a Workload. Generators are stateful: build one
// per simulation. An unknown name yields an error wrapping
// ErrUnknownAttack that lists the valid patterns.
func NewAttack(name string, p AttackParams) (Generator, error) { return attack.Build(name, p) }

// AttackNames lists the registered attack patterns' display spellings
// (the shipped registry holds "blockhammer-adversarial", "decoy:<n>",
// "double", "multi:<n>", "rowlist", "single"). The sorted order is a
// documented, tested guarantee.
func AttackNames() []string { return attack.Names() }

// AttackCatalog lists the registered attack patterns with descriptions,
// sorted by name.
func AttackCatalog() []AttackInfo { return attack.Patterns() }

// ErrUnknownAttack is wrapped by spec validation's error for an
// unregistered attack pattern; match with errors.Is.
var ErrUnknownAttack = attack.ErrUnknownAttack
