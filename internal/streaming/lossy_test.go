package streaming

import (
	"testing"
	"testing/quick"
)

func TestLossyCountingBounds(t *testing.T) {
	// Classic lossy counting guarantees, checked continuously:
	//   f ≤ true ≤ f + Δ  and  Δ ≤ ⌈S/width⌉.
	l := NewLossyCounting(100)
	r := NewRand(5)
	actual := map[uint32]uint64{}
	for i := 0; i < 20000; i++ {
		var k uint32
		if r.Float64() < 0.5 {
			k = uint32(r.Intn(5))
		} else {
			k = uint32(r.Intn(5000)) + 10
		}
		l.Observe(k)
		actual[k]++
		if l.Contains(k) {
			f := l.ObservedFrequency(k)
			if f > actual[k] {
				t.Fatalf("step %d: observed frequency %d exceeds true count %d", i, f, actual[k])
			}
			if est := l.Estimate(k); est < actual[k] && actual[k]-est > 0 {
				// true ≤ f+Δ must hold for tracked keys whose tracking
				// never lapsed; for re-inserted keys Δ covers the gap.
				if f+uint64(l.current-1) < actual[k] {
					t.Fatalf("step %d: upper bound violated for key %d", i, k)
				}
			}
		}
	}
}

func TestLossyCountingHeavyHitterNeverPruned(t *testing.T) {
	// A key with frequency > ε·S must survive: with width=50 (ε=0.02), a
	// key appearing every other observation can never be pruned.
	l := NewLossyCounting(50)
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		if i%2 == 0 {
			l.Observe(7)
		} else {
			l.Observe(uint32(r.Intn(100000)) + 100)
		}
	}
	if !l.Contains(7) {
		t.Fatal("heavy hitter was pruned")
	}
	if f := l.ObservedFrequency(7); f < 4000 {
		t.Fatalf("heavy hitter frequency %d unexpectedly low", f)
	}
}

func TestLossyCountingPrunesColdKeys(t *testing.T) {
	l := NewLossyCounting(10)
	for i := 0; i < 1000; i++ {
		l.Observe(uint32(i)) // every key unique: all prunable
	}
	if l.Len() > 20 {
		t.Fatalf("cold keys not pruned: %d live entries", l.Len())
	}
	if l.MaxLive() < l.Len() {
		t.Fatal("MaxLive below current occupancy")
	}
}

func TestLossyCountingTableLargerThanCbSForSameGuarantee(t *testing.T) {
	// The paper's Figure 6 claim, algorithmically: for the same error
	// guarantee ε = 1/N, lossy counting's live table exceeds N entries on
	// adversarial streams while CbS is capped at exactly N.
	const n = 64
	l := NewLossyCounting(n)
	c := NewCbS(n)
	r := NewRand(11)
	for i := 0; i < 50000; i++ {
		k := uint32(r.Intn(2000))
		l.Observe(k)
		c.Observe(k)
	}
	if l.MaxLive() <= n {
		t.Fatalf("lossy counting high-water mark %d should exceed N=%d on a dispersed stream", l.MaxLive(), n)
	}
	if c.Len() > n {
		t.Fatalf("CbS exceeded its capacity: %d > %d", c.Len(), n)
	}
}

func TestLossyCountingMaxAndDrop(t *testing.T) {
	l := NewLossyCounting(1000)
	for i := 0; i < 30; i++ {
		l.Observe(3)
	}
	for i := 0; i < 10; i++ {
		l.Observe(4)
	}
	key, est, ok := l.Max()
	if !ok || key != 3 || est < 30 {
		t.Fatalf("Max() = (%d, %d, %v), want key 3 with est ≥ 30", key, est, ok)
	}
	l.Drop(3)
	if l.Contains(3) {
		t.Fatal("Drop did not remove the key")
	}
	key, _, ok = l.Max()
	if !ok || key != 4 {
		t.Fatalf("after Drop, Max = %d, want 4", key)
	}
}

func TestLossyCountingReset(t *testing.T) {
	l := NewLossyCounting(10)
	for i := 0; i < 100; i++ {
		l.Observe(1)
	}
	l.Reset()
	if l.Len() != 0 || l.MaxLive() != 0 || l.Contains(1) {
		t.Fatal("Reset did not clear state")
	}
}

func TestLossyCountingPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLossyCounting(0) should panic")
		}
	}()
	NewLossyCounting(0)
}

func TestLossyCountingFrequencyLowerBoundProperty(t *testing.T) {
	f := func(seed uint64) bool {
		l := NewLossyCounting(32)
		r := NewRand(seed)
		actual := map[uint32]uint64{}
		for i := 0; i < 2000; i++ {
			k := uint32(r.Intn(50))
			l.Observe(k)
			actual[k]++
			if l.ObservedFrequency(k) > actual[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
