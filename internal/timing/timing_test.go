package timing

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDDR5Validates(t *testing.T) {
	p := DDR5()
	if err := p.Validate(); err != nil {
		t.Fatalf("DDR5() should validate: %v", err)
	}
}

func TestDDR5TableIIIValues(t *testing.T) {
	p := DDR5()
	cases := []struct {
		name string
		got  PicoSeconds
		want PicoSeconds
	}{
		{"tRFC", p.TRFC, 295 * Nanosecond},
		{"tRC", p.TRC, 48640},
		{"tRFM", p.TRFM, 97280},
		{"tRCD", p.TRCD, 16640},
		{"tRP", p.TRP, 16640},
		{"tCL", p.TCL, 16640},
		{"tREFW", p.TREFW, 32 * Millisecond},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if p.Channels != 2 || p.Ranks != 1 || p.Banks != 32 {
		t.Errorf("organization = %d ch / %d ranks / %d banks, want 2/1/32", p.Channels, p.Ranks, p.Banks)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero tCK", func(p *Params) { p.TCK = 0 }},
		{"negative tRC", func(p *Params) { p.TRC = -1 }},
		{"zero tRFC", func(p *Params) { p.TRFC = 0 }},
		{"tREFI >= tREFW", func(p *Params) { p.TREFI = p.TREFW }},
		{"tRFC >= tREFI", func(p *Params) { p.TRFC = p.TREFI }},
		{"zero channels", func(p *Params) { p.Channels = 0 }},
		{"zero banks", func(p *Params) { p.Banks = 0 }},
		{"zero rows", func(p *Params) { p.Rows = 0 }},
		{"zero refresh groups", func(p *Params) { p.RefreshGroups = 0 }},
	}
	for _, m := range mutations {
		p := DDR5()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", m.name)
		}
	}
}

func TestPicoSecondsString(t *testing.T) {
	cases := []struct {
		v    PicoSeconds
		want string
	}{
		{500, "500ps"},
		{1500, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{32 * Millisecond, "32.000ms"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.v), got, c.want)
		}
	}
	if !strings.Contains((295 * Nanosecond).String(), "ns") {
		t.Error("295ns should render in nanoseconds")
	}
}

func TestACTsPerREFW(t *testing.T) {
	p := DDR5()
	got := p.ACTsPerREFW()
	// tREFW/tRC = 32ms/48.64ns = 657894; minus the ~7% stolen by refresh
	// (tRFC/tREFI = 295/3906 ≈ 0.0755) → ≈ 608000.
	if got < 580000 || got > 640000 {
		t.Fatalf("ACTsPerREFW() = %d, want ≈ 608k", got)
	}
}

func TestRFMIntervalsPerREFW(t *testing.T) {
	p := DDR5()
	// Paper's example plugs RFMTH into W; sanity-check monotonicity and a
	// hand-computed value: RFMTH=64 → (32ms·(1−0.0755)) / (48.64ns·64+97.28ns)
	// ≈ 29.58e6 ns / 3210 ns ≈ 9216.
	w64 := p.RFMIntervalsPerREFW(64)
	if w64 < 8800 || w64 > 9700 {
		t.Fatalf("W(RFMTH=64) = %d, want ≈ 9216", w64)
	}
	if w32, w128 := p.RFMIntervalsPerREFW(32), p.RFMIntervalsPerREFW(128); !(w32 > w64 && w64 > w128) {
		t.Errorf("W should decrease with RFMTH: W(32)=%d W(64)=%d W(128)=%d", w32, w64, w128)
	}
	if p.RFMIntervalsPerREFW(0) != 0 {
		t.Error("W(0) should be 0")
	}
}

func TestRFMIntervalsCeiling(t *testing.T) {
	// Property: W·(tRC·RFMTH + tRFM) ≥ available time > (W−1)·(tRC·RFMTH+tRFM).
	p := DDR5()
	f := func(raw uint16) bool {
		rfmTH := int(raw%512) + 1
		w := p.RFMIntervalsPerREFW(rfmTH)
		avail := float64(p.TREFW) - float64(p.TREFW)/float64(p.TREFI)*float64(p.TRFC)
		den := float64(p.TRC)*float64(rfmTH) + float64(p.TRFM)
		return float64(w)*den >= avail && float64(w-1)*den < avail
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalBanks(t *testing.T) {
	p := DDR5()
	if got := p.TotalBanks(); got != 64 {
		t.Fatalf("TotalBanks() = %d, want 64 (2ch × 1rank × 32banks)", got)
	}
}
