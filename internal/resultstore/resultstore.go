// Package resultstore is the content-addressed result store behind
// resumable sweeps: every simulated grid row is keyed by a canonical hash
// of everything that determines its output — the canonicalized cell
// values, the resolved timing parameters, the scale geometry, and a
// schema/registry version stamp — so a row is simulated at most once,
// ever, across process lifetimes. Executors consult the store before
// dispatching a cell and write the row back when workers finish it;
// because the key covers every input, a hit is always sound to serve.
//
// Two implementations back the one small Store interface: Mem (tests,
// per-process caching) and Disk (durable NDJSON segments with an
// in-memory index, corruption-tolerant reload, and atomic segment
// finalization). Stale results self-invalidate: the version stamp folded
// into every key changes whenever the schema or the scheme registry
// changes, so old segments simply stop matching rather than serving
// wrong rows.
package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// SchemaVersion is the stored-row schema generation. Bump it whenever the
// serialized row payloads change shape or meaning (new output columns,
// changed normalization, a simulator behaviour change that invalidates
// old numbers): every key embeds it, so bumping orphans all prior
// records without any migration.
const SchemaVersion = 1

// Key is the content address of one grid row: a SHA-256 over the
// canonical component lines (see HashComponents).
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the on-disk spelling).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey decodes the hex spelling String produces.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return Key{}, fmt.Errorf("resultstore: bad key %q: %w", s, err)
	}
	if len(b) != len(k) {
		return Key{}, fmt.Errorf("resultstore: bad key %q: want %d bytes, got %d", s, len(k), len(b))
	}
	copy(k[:], b)
	return k, nil
}

// HashComponents derives a Key from named components: each name=value
// pair becomes one line, lines are sorted by name, and the concatenation
// is hashed. Sorting makes the key independent of map iteration and of
// the order callers assemble components in; the name= prefix keeps
// ("a","bc") distinct from ("ab","c").
func HashComponents(components map[string]string) Key {
	lines := make([]string, 0, len(components))
	for name, value := range components {
		lines = append(lines, name+"="+value+"\n")
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Fingerprint condenses a name inventory (a registry's Names()) into a
// short stable hex digest: sorted, newline-joined, hashed, truncated.
// Registering, removing, or renaming an entry changes it.
func Fingerprint(names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	sum := sha256.Sum256([]byte(strings.Join(sorted, "\n")))
	return hex.EncodeToString(sum[:8])
}

// Stamp combines the schema version with a registry fingerprint into the
// version stamp stored alongside every record and folded into every key.
func Stamp(registryNames []string) string {
	return fmt.Sprintf("v%d+%s", SchemaVersion, Fingerprint(registryNames))
}

// Record is one stored row: its content address, the version stamp it was
// written under, and the opaque row payload (the executor's serialized
// row). The stamp is stored denormalized — it is already folded into the
// key — so stats and GC can group records by generation without decoding
// payloads.
type Record struct {
	Key     Key
	Stamp   string
	Payload json.RawMessage
}

// Store is the result-store contract executors program against. All
// methods are safe for concurrent use. Get/Has are exact key lookups;
// Put is last-write-wins and must persist the record before returning
// (durability beyond the process is the implementation's contract: Disk
// appends before returning, Mem keeps it in memory); Scan visits every
// live record in insertion order until the callback returns false.
type Store interface {
	Get(k Key) (Record, bool)
	Put(rec Record) error
	Has(k Key) bool
	Scan(fn func(rec Record) bool)
}
