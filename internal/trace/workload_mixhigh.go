package trace

import "fmt"

func init() {
	RegisterWorkload("mix-high",
		"memory-intensive multi-programmed mix: every core runs a high-MPKI kernel (streams, random walks, large sweeps)",
		MixHigh)
}

// MixHigh is the paper's memory-intensive multi-programmed mix: every core
// runs a high-MPKI kernel (streams, random walks, large sweeps).
func MixHigh(cores int, seed uint64) Workload {
	return Workload{
		Name: "mix-high",
		Fresh: func() []Generator {
			gens := make([]Generator, cores)
			for i := 0; i < cores; i++ {
				base := coreRegion(i)
				switch i % 4 {
				case 0:
					gens[i] = NewStream(fmt.Sprintf("lbm-%d", i), base, 128<<20, 12, 4)
				case 1:
					gens[i] = NewRandom(fmt.Sprintf("mcf-%d", i), base, 192<<20, 10, 0.25, seed+uint64(i))
				case 2:
					gens[i] = NewStrided(fmt.Sprintf("fotonik-%d", i), base, 96<<20, 33, 14)
				default:
					gens[i] = NewGatherScatter(fmt.Sprintf("roms-%d", i), base, 128<<20, 11, seed+uint64(i))
				}
			}
			return gens
		},
	}
}
