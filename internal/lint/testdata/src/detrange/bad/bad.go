// Package bad iterates maps in output position without ordering the keys.
package bad

import "fmt"

func Emit(counts map[string]int) {
	for name, n := range counts { // want "unordered range over map"
		fmt.Println(name, n)
	}
}

func Keys(counts map[string]int) []string {
	var names []string
	for name := range counts { // want "unordered range over map"
		names = append(names, name)
	}
	return names
}
