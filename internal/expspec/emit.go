package expspec

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mithril/internal/stats"
)

// Formats a Result can be emitted in.
const (
	FormatTable  = "table"  // the CLI's aligned human table
	FormatJSON   = "json"   // machine-readable document with full-precision rows
	FormatCSV    = "csv"    // machine-readable rows, one header line
	FormatGolden = "golden" // the raw line format testdata/golden_*.txt is pinned in
)

// Formats lists the valid -format values.
func Formats() []string { return []string{FormatTable, FormatJSON, FormatCSV, FormatGolden} }

// Result holds one executed spec's rows; exactly one of the row slices is
// populated, matching the spec's kind.
type Result struct {
	Spec  *Spec
	Scale Scale

	Perf   []PerfPoint    // comparison
	Safety []SafetyResult // safety
	Grid   []Figure9Point // configgrid
	AdTH   []Figure7Point // adth

	// Cache effectiveness: how many rows the result store served versus
	// how many the sweep simulated (RowsCached + RowsSimulated equals the
	// row count; storeless executions simulate everything). The counters
	// never influence the rows themselves — output stays byte-identical
	// at any split.
	RowsCached    int
	RowsSimulated int
}

// column is one bound output column: the machine name (spec "columns"
// vocabulary), the human table header, and the two renderings of a row.
type column struct {
	name   string
	header string
	value  func(i int) any    // raw value for JSON/CSV
	cell   func(i int) string // table cell (mirrors the CLI's formatting)
}

// availableColumns returns every column the spec's kind can emit, in
// canonical order.
func (s *Spec) availableColumns() []string {
	names := func(cols []column) []string {
		out := make([]string, len(cols))
		for i, c := range cols {
			out[i] = c.name
		}
		return out
	}
	return names((&Result{Spec: s}).allColumns())
}

// defaultColumns returns the columns emitted when the spec selects none;
// they mirror the CLI tables.
func (s *Spec) defaultColumns() []string {
	switch s.Kind {
	case Comparison:
		return []string{"scheme", "flipth", "workload", "perf", "energy", "tablekb", "safe"}
	case SafetyKind:
		return []string{"attack", "scheme", "flips", "maxdisturbance", "verdict"}
	case ConfigGrid:
		return []string{"flipth", "rfmth", "mithril", "mithril+", "tablekb"}
	case AdTHSweep:
		cols := []string{"flipth", "rfmth", "adth"}
		for _, w := range s.Axes.Workloads {
			cols = append(cols, "energy:"+w)
		}
		return append(cols, "nentry")
	}
	return nil
}

// columns resolves the spec's column selection (or the kind default)
// against the available set.
func (s *Spec) columns() ([]string, error) {
	sel := s.Columns
	if len(sel) == 0 {
		sel = s.defaultColumns()
	}
	avail := s.availableColumns()
	if err := noDuplicates("columns", sel); err != nil {
		return nil, err
	}
	for _, c := range sel {
		found := false
		for _, a := range avail {
			if a == c {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown column %q (available: %v)", c, avail)
		}
	}
	return sel, nil
}

// allColumns binds every available column of the result's kind.
func (r *Result) allColumns() []column {
	f2 := func(v float64) string { return fmt.Sprintf("%.2f", v) }
	switch r.Spec.Kind {
	case Comparison:
		p := r.Perf
		return []column{
			{"scheme", "scheme", func(i int) any { return p[i].Scheme }, func(i int) string { return p[i].Scheme }},
			{"flipth", "FlipTH", func(i int) any { return p[i].FlipTH }, func(i int) string { return strconv.Itoa(p[i].FlipTH) }},
			{"rfmth", "RFMTH", func(i int) any { return p[i].RFMTH }, func(i int) string { return strconv.Itoa(p[i].RFMTH) }},
			{"workload", "workload", func(i int) any { return p[i].Workload }, func(i int) string { return p[i].Workload }},
			{"seed", "seed", func(i int) any { return p[i].Seed }, func(i int) string { return strconv.FormatUint(p[i].Seed, 10) }},
			{"perf", "perf%", func(i int) any { return p[i].RelativePerformance }, func(i int) string { return f2(p[i].RelativePerformance) }},
			{"energy", "energy+%", func(i int) any { return p[i].EnergyOverheadPct }, func(i int) string { return f2(p[i].EnergyOverheadPct) }},
			{"tablekb", "tableKB", func(i int) any { return p[i].TableKB }, func(i int) string { return f2(p[i].TableKB) }},
			{"safe", "safe", func(i int) any { return p[i].Safe }, func(i int) string { return fmt.Sprintf("%v", p[i].Safe) }},
		}
	case SafetyKind:
		s := r.Safety
		return []column{
			{"attack", "attack", func(i int) any { return s[i].Attack }, func(i int) string { return s[i].Attack }},
			{"scheme", "scheme", func(i int) any { return s[i].Scheme }, func(i int) string { return s[i].Scheme }},
			{"flipth", "FlipTH", func(i int) any { return s[i].FlipTH }, func(i int) string { return strconv.Itoa(s[i].FlipTH) }},
			{"seed", "seed", func(i int) any { return s[i].Seed }, func(i int) string { return strconv.FormatUint(s[i].Seed, 10) }},
			{"flips", "flips", func(i int) any { return s[i].Flips }, func(i int) string { return strconv.Itoa(s[i].Flips) }},
			{"maxdisturbance", "max disturbance", func(i int) any { return s[i].MaxDisturbance }, func(i int) string { return fmt.Sprintf("%.0f", s[i].MaxDisturbance) }},
			{"safe", "safe", func(i int) any { return s[i].Safe }, func(i int) string { return fmt.Sprintf("%v", s[i].Safe) }},
			{"verdict", "verdict", func(i int) any { return verdict(s[i].Safe) }, func(i int) string { return verdict(s[i].Safe) }},
		}
	case ConfigGrid:
		g := r.Grid
		return []column{
			{"flipth", "FlipTH", func(i int) any { return g[i].FlipTH }, func(i int) string { return strconv.Itoa(g[i].FlipTH) }},
			{"rfmth", "RFMTH", func(i int) any { return g[i].RFMTH }, func(i int) string { return strconv.Itoa(g[i].RFMTH) }},
			{"seed", "seed", func(i int) any { return g[i].Seed }, func(i int) string { return strconv.FormatUint(g[i].Seed, 10) }},
			{"mithril", "Mithril perf%", func(i int) any { return g[i].Mithril }, func(i int) string { return f2(g[i].Mithril) }},
			{"mithril+", "Mithril+ perf%", func(i int) any { return g[i].MithrilPlus }, func(i int) string { return f2(g[i].MithrilPlus) }},
			{"tablekb", "table KB", func(i int) any { return g[i].TableKB }, func(i int) string { return f2(g[i].TableKB) }},
			{"energy", "Mithril energy+%", func(i int) any { return g[i].EnergyMithril }, func(i int) string { return f2(g[i].EnergyMithril) }},
			{"energy+", "Mithril+ energy+%", func(i int) any { return g[i].EnergyPlus }, func(i int) string { return f2(g[i].EnergyPlus) }},
		}
	case AdTHSweep:
		a := r.AdTH
		cols := []column{
			{"flipth", "FlipTH", func(i int) any { return a[i].FlipTH }, func(i int) string { return strconv.Itoa(a[i].FlipTH) }},
			{"rfmth", "RFMTH", func(i int) any { return a[i].RFMTH }, func(i int) string { return strconv.Itoa(a[i].RFMTH) }},
			{"adth", "AdTH", func(i int) any { return a[i].AdTH }, func(i int) string { return strconv.Itoa(a[i].AdTH) }},
			{"seed", "seed", func(i int) any { return a[i].Seed }, func(i int) string { return strconv.FormatUint(a[i].Seed, 10) }},
		}
		for _, w := range r.Spec.Axes.Workloads {
			w := w
			cols = append(cols, column{
				"energy:" + w, fmt.Sprintf("energy%% (%s)", adthWorkloads[w].short),
				func(i int) any { return a[i].EnergyOverheadPct[w] },
				func(i int) string { return f2(a[i].EnergyOverheadPct[w]) },
			})
		}
		return append(cols, column{"nentry", "+Nentry%",
			func(i int) any { return a[i].AdditionalNEntryPct },
			func(i int) string { return fmt.Sprintf("%.1f", a[i].AdditionalNEntryPct) }})
	}
	return nil
}

func verdict(safe bool) string {
	if safe {
		return "SAFE"
	}
	return "UNSAFE"
}

// selectedColumns binds the spec's column selection.
func (r *Result) selectedColumns() ([]column, error) {
	names, err := r.Spec.columns()
	if err != nil {
		return nil, err
	}
	all := r.allColumns()
	sel := make([]column, 0, len(names))
	for _, n := range names {
		for _, c := range all {
			if c.name == n {
				sel = append(sel, c)
				break
			}
		}
	}
	return sel, nil
}

// rowCount returns the populated row-slice length.
func (r *Result) rowCount() int {
	switch r.Spec.Kind {
	case Comparison:
		return len(r.Perf)
	case SafetyKind:
		return len(r.Safety)
	case ConfigGrid:
		return len(r.Grid)
	case AdTHSweep:
		return len(r.AdTH)
	}
	return 0
}

// rowOrder returns the emission order of table rows. The safety table
// sorts by (attack, scheme) like the CLI always has; every other kind and
// every machine format keeps raw grid order.
func (r *Result) rowOrder(tableSort bool) []int {
	n := r.rowCount()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if tableSort && r.Spec.Kind == SafetyKind {
		s := r.Safety
		sort.SliceStable(order, func(a, b int) bool {
			if s[order[a]].Attack != s[order[b]].Attack {
				return s[order[a]].Attack < s[order[b]].Attack
			}
			return s[order[a]].Scheme < s[order[b]].Scheme
		})
	}
	return order
}

// Table renders the selected columns as the CLI's aligned text table.
func (r *Result) Table() (string, error) {
	cols, err := r.selectedColumns()
	if err != nil {
		return "", err
	}
	headers := make([]string, len(cols))
	for i, c := range cols {
		headers[i] = c.header
	}
	t := stats.NewTable(headers...)
	for _, i := range r.rowOrder(true) {
		row := make([]string, len(cols))
		for j, c := range cols {
			row[j] = c.cell(i)
		}
		t.Add(row...)
	}
	return t.String(), nil
}

// machineValue renders a raw value for CSV with full float precision.
func machineValue(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case int:
		return strconv.Itoa(x)
	case uint64:
		return strconv.FormatUint(x, 10)
	case bool:
		return strconv.FormatBool(x)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}

// WriteCSV emits one header line of column names plus one row per grid
// cell, floats at full round-trip precision.
func (r *Result) WriteCSV(w io.Writer) error {
	cols, err := r.selectedColumns()
	if err != nil {
		return err
	}
	header := make([]string, len(cols))
	for i, c := range cols {
		header[i] = c.name
	}
	rows := make([][]string, 0, r.rowCount())
	for _, i := range r.rowOrder(false) {
		row := make([]string, len(cols))
		for j, c := range cols {
			row[j] = machineValue(c.value(i))
		}
		rows = append(rows, row)
	}
	return stats.WriteCSV(w, header, rows)
}

// jsonScale is the resolved scale echoed into JSON output so a consumer
// can tell which configuration produced the rows.
type jsonScale struct {
	Cores        int    `json:"cores"`
	InstrPerCore int64  `json:"instr_per_core"`
	FlipTHs      []int  `json:"flipths,omitempty"`
	Seed         uint64 `json:"seed"`
	TimeScale    int    `json:"time_scale"`
}

// jsonDoc is the JSON output shape: spec identity, resolved scale, and the
// selected columns as one object per row.
type jsonDoc struct {
	Name    string           `json:"name"`
	Kind    Kind             `json:"kind"`
	Scale   jsonScale        `json:"scale"`
	Columns []string         `json:"columns"`
	Rows    []map[string]any `json:"rows"`
}

// WriteJSON emits the machine-readable document for the result.
func (r *Result) WriteJSON(w io.Writer) error {
	cols, err := r.selectedColumns()
	if err != nil {
		return err
	}
	doc := jsonDoc{
		Name: r.Spec.Name,
		Kind: r.Spec.Kind,
		Scale: jsonScale{
			Cores: r.Scale.Cores, InstrPerCore: r.Scale.InstrPerCore,
			FlipTHs: r.Scale.FlipTHs, Seed: r.Scale.Seed, TimeScale: r.Scale.TimeScale,
		},
		Rows: []map[string]any{},
	}
	for _, c := range cols {
		doc.Columns = append(doc.Columns, c.name)
	}
	for _, i := range r.rowOrder(false) {
		row := make(map[string]any, len(cols))
		for _, c := range cols {
			row[c.name] = c.value(i)
		}
		doc.Rows = append(doc.Rows, row)
	}
	return stats.WriteJSON(w, doc)
}

// Golden renders the raw full-precision line format the repository's
// regression goldens (testdata/golden_*.txt) are pinned in: every field of
// every row in grid order, ignoring the column selection, so any numeric
// drift is visible.
func (r *Result) Golden() string {
	var b strings.Builder
	switch r.Spec.Kind {
	case Comparison:
		for _, p := range r.Perf {
			fmt.Fprintf(&b, "%s flipTH=%d rfmTH=%d workload=%s perf=%g energy=%g tableKB=%g safe=%v\n",
				p.Scheme, p.FlipTH, p.RFMTH, p.Workload,
				p.RelativePerformance, p.EnergyOverheadPct, p.TableKB, p.Safe)
		}
	case SafetyKind:
		for _, s := range r.Safety {
			fmt.Fprintf(&b, "%s attack=%s flipTH=%d flips=%d maxDisturbance=%g safe=%v\n",
				s.Scheme, s.Attack, s.FlipTH, s.Flips, s.MaxDisturbance, s.Safe)
		}
	case ConfigGrid:
		for _, g := range r.Grid {
			fmt.Fprintf(&b, "flipTH=%d rfmTH=%d mithril=%g mithril+=%g tableKB=%g energy=%g energy+=%g\n",
				g.FlipTH, g.RFMTH, g.Mithril, g.MithrilPlus, g.TableKB, g.EnergyMithril, g.EnergyPlus)
		}
	case AdTHSweep:
		for _, a := range r.AdTH {
			fmt.Fprintf(&b, "flipTH=%d rfmTH=%d adTH=%d", a.FlipTH, a.RFMTH, a.AdTH)
			for _, w := range r.Spec.Axes.Workloads {
				fmt.Fprintf(&b, " energy[%s]=%g", w, a.EnergyOverheadPct[w])
			}
			fmt.Fprintf(&b, " nentry=%g\n", a.AdditionalNEntryPct)
		}
	}
	return b.String()
}

// RowValues renders one streamed row's selected columns as a flat
// name→value map — the NDJSON row shape the serve endpoint emits. The
// column vocabulary, order, and value types match WriteJSON's rows, so a
// consumer can switch between batch and streaming output without
// reparsing.
func (s *Spec) RowValues(sc Scale, row Row) (map[string]any, error) {
	res := &Result{Spec: s, Scale: sc}
	switch s.Kind {
	case Comparison:
		if row.Perf == nil {
			return nil, fmt.Errorf("spec %q: row %d has no comparison point", s.Name, row.Index)
		}
		res.Perf = []PerfPoint{*row.Perf}
	case SafetyKind:
		if row.Safety == nil {
			return nil, fmt.Errorf("spec %q: row %d has no safety point", s.Name, row.Index)
		}
		res.Safety = []SafetyResult{*row.Safety}
	case ConfigGrid:
		if row.Grid == nil {
			return nil, fmt.Errorf("spec %q: row %d has no configgrid point", s.Name, row.Index)
		}
		res.Grid = []Figure9Point{*row.Grid}
	case AdTHSweep:
		if row.AdTH == nil {
			return nil, fmt.Errorf("spec %q: row %d has no adth point", s.Name, row.Index)
		}
		res.AdTH = []Figure7Point{*row.AdTH}
	}
	cols, err := res.selectedColumns()
	if err != nil {
		return nil, err
	}
	m := make(map[string]any, len(cols))
	for _, c := range cols {
		m[c.name] = c.value(0)
	}
	return m, nil
}

// Emit writes the result in the named format (FormatTable prints just the
// table; callers prepend their own title banner).
func (r *Result) Emit(w io.Writer, format string) error {
	switch format {
	case FormatTable:
		t, err := r.Table()
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, t)
		return err
	case FormatJSON:
		return r.WriteJSON(w)
	case FormatCSV:
		return r.WriteCSV(w)
	case FormatGolden:
		_, err := io.WriteString(w, r.Golden())
		return err
	default:
		return fmt.Errorf("unknown format %q (want one of %v)", format, Formats())
	}
}
