package resultstore

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// SegmentReport is one segment's integrity verdict.
type SegmentReport struct {
	Name     string
	Records  int
	BadLines int
	// TailOnly is true when every bad line trails the last good record —
	// the signature of a crash mid-append, which reload handles by
	// design. Bad lines with good records after them mean mid-file
	// corruption (bit rot, a truncated copy), which reload also survives
	// but which is worth a louder look.
	TailOnly bool
}

// VerifyReport aggregates a store directory's integrity check.
type VerifyReport struct {
	Segments []SegmentReport
	Records  int
	BadLines int
}

// Clean reports whether every line of every segment parsed and checked.
func (r VerifyReport) Clean() bool { return r.BadLines == 0 }

// VerifyDir checks every segment of a store directory read-only — no
// adoption, no index build — and reports per-segment damage, classifying
// torn tails (expected after a crash) apart from mid-file corruption.
// Open segments are checked like finalized ones.
func VerifyDir(dir string) (VerifyReport, error) {
	segs, err := filepath.Glob(filepath.Join(dir, segPattern))
	if err != nil {
		return VerifyReport{}, fmt.Errorf("resultstore: %w", err)
	}
	opens, err := filepath.Glob(filepath.Join(dir, segPattern+openSuffix))
	if err != nil {
		return VerifyReport{}, fmt.Errorf("resultstore: %w", err)
	}
	segs = append(segs, opens...)
	sort.Strings(segs)
	var rep VerifyReport
	for _, seg := range segs {
		sr, err := verifySegment(seg)
		if err != nil {
			return VerifyReport{}, err
		}
		rep.Segments = append(rep.Segments, sr)
		rep.Records += sr.Records
		rep.BadLines += sr.BadLines
	}
	return rep, nil
}

func verifySegment(path string) (SegmentReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return SegmentReport{}, fmt.Errorf("resultstore: %w", err)
	}
	defer f.Close()
	sr := SegmentReport{Name: filepath.Base(path), TailOnly: true}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	badRun := 0 // bad lines not yet known to precede a good record
	for sc.Scan() {
		if _, ok := parseLine(sc.Bytes()); ok {
			sr.Records++
			if badRun > 0 {
				sr.TailOnly = false
				badRun = 0
			}
			continue
		}
		sr.BadLines++
		badRun++
	}
	if err := sc.Err(); err != nil {
		sr.BadLines++
	}
	return sr, nil
}
