package expspec

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// FuzzParseSpec drives the spec parser with arbitrary byte streams,
// mirroring trace's FuzzParseTrace. Two properties must hold on every
// input: Parse never panics, and every accepted spec survives a
// json.Marshal round trip — the re-parsed spec validates again and
// marshals to identical bytes (the canonical-form property the CLI's
// spec-echoing endpoints rely on).
func FuzzParseSpec(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.json"))
	if err != nil || len(files) == 0 {
		f.Fatalf("no shipped specs found: %v", err)
	}
	sort.Strings(files)
	for _, name := range files {
		data, readErr := os.ReadFile(name)
		if readErr != nil {
			f.Fatalf("reading seed %s: %v", name, readErr)
		}
		f.Add(data)
	}
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"name":"x","kind":"comparison"}`))                                                                    // no scale
	f.Add([]byte(`{"name":"x","kind":"nosuch","scale":{"preset":"quick"}}`))                                             // bad kind
	f.Add([]byte(`{"name":"x","kind":"comparison","unknown_field":1}`))                                                  // unknown field
	f.Add([]byte(`{"name":"x","kind":"comparison","scale":{"preset":"quick"},"axes":{"seeds":[18446744073709551615]}}`)) // max uint64 seed
	f.Add([]byte(`{"name":"","kind":"comparison","scale":{"preset":"quick"}}`))                                          // empty name
	f.Add([]byte(`{"name":"x","kind":"comparison","scale":{"preset":"quick"},"axes":{"schemes":["none","none"]}}`))      // duplicate axis value
	f.Add([]byte(`{"name":"x","kind":"comparison","scale":{"preset":"quick","seed":-1}}`))                               // negative seed

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse(data)
		if err != nil {
			return // rejected input: any error is fine, panics are not
		}
		out, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("marshalling accepted spec: %v", err)
		}
		again, err := Parse(out)
		if err != nil {
			t.Fatalf("accepted spec failed to re-validate after marshal round trip: %v\n%s", err, out)
		}
		out2, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("re-marshalling round-tripped spec: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("marshal round trip is not canonical:\nfirst:  %s\nsecond: %s", out, out2)
		}
	})
}
