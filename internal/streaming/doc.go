// Package streaming implements the frequent-items streaming algorithms that
// RowHammer trackers are built from (Section II-C.4 and III of the Mithril
// paper):
//
//   - Counter-based Summary (CbS, a.k.a. Misra–Gries / Space-Saving): the
//     tracking mechanism of Graphene and Mithril. Two implementations are
//     provided — a scan-based reference (CbS) and an O(1)-per-update bucketed
//     Stream-Summary (SpaceSaving) — which are property-tested against each
//     other.
//   - Lossy Counting (Manku–Motwani): the tracking mechanism of TWiCe.
//   - Count-Min Sketch and dual interleaved Counting Bloom Filters: the
//     tracking mechanism of BlockHammer.
//
// CbS maintains, for every key, the two bounds the Mithril proof relies on:
//
//	(1) actual ≤ estimated            (lower bound on safety)
//	(2) estimated ≤ actual + Min      (upper bound enabling greedy decrement)
//
// where Min is the minimum counter in the table. Both are enforced by tests
// in cbs_test.go, including under the RFM-style DecrementToMin operation.
package streaming
