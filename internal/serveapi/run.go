package serveapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"net/http"
	"strconv"
	"strings"

	"mithril/internal/distrib"
	"mithril/internal/expspec"
	"mithril/internal/trace"
)

// Trailer names carrying the per-request cache-effectiveness split.
const (
	trailerCached    = "X-Mithril-Rows-Cached"
	trailerSimulated = "X-Mithril-Rows-Simulated"
)

// ndjsonError is the legacy terminal error line: a bare message string
// under the "error" key. /v1 streams use the envelope form (errorEnvelope)
// so mid-stream failures carry the same code slugs as pre-header ones.
type ndjsonError struct {
	Error string `json:"error"`
}

// ndjsonSummary is the terminal line of a completed stream: the row
// count and its cached/simulated split. Consumers distinguish it from
// data rows by the "summary" key, mirroring the "error" convention; the
// same split rides the X-Mithril-Rows-Cached/-Simulated trailers for
// clients that consume trailers. Without a result store every row counts
// as simulated.
type ndjsonSummary struct {
	Summary rowSplit `json:"summary"`
}

type rowSplit struct {
	Rows      int `json:"rows"`
	Cached    int `json:"cached"`
	Simulated int `json:"simulated"`
}

func (s *rowSplit) count(cached bool) {
	s.Rows++
	if cached {
		s.Cached++
	} else {
		s.Simulated++
	}
}

// handleRun serves POST /v1/run and its legacy /run alias. The body is
// either a bare spec document (a sweep: validate fully, then stream
// display rows) or — distinguished by the "spec" key — a
// distrib.ShardRequest (a coordinator dispatching an explicit row
// subset: stream wire rows).
func (s *server) handleRun(w http.ResponseWriter, r *http.Request, legacy bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, distrib.CodeMethod, "POST a spec document (or a shard request) to this endpoint")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, distrib.CodeBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	var probe struct {
		Spec json.RawMessage `json:"spec"`
	}
	// A decode failure falls through to the bare-spec path, whose parse
	// error names the actual syntax problem.
	_ = json.Unmarshal(body, &probe)
	if probe.Spec != nil {
		s.handleShard(w, r, body)
		return
	}
	s.handleSweep(w, r, body, legacy)
}

// handleSweep executes a bare spec document and streams its display rows
// (Spec.RowValues maps plus the grid index) as NDJSON. Validation —
// parse, registry membership, scale resolution, grid expansion, store
// keying — completes before the response header is written, so every
// rejectable request gets a real HTTP status and an error envelope, not
// a 200 that turns out to be an error record. Only failures of the
// simulation itself arrive mid-stream, as the terminal error line.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request, body []byte, legacy bool) {
	sp, err := expspec.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, distrib.CodeBadRequest, err.Error())
		return
	}
	// trace:<path> workloads read server-local files; accepting them from
	// the network would let any client probe the server's filesystem (and
	// read fragments of it back through parse errors). Trace replays are
	// a CLI/library feature.
	for _, name := range sp.Axes.Workloads {
		if strings.HasPrefix(name, trace.TracePrefix) {
			writeError(w, http.StatusBadRequest, distrib.CodeBadRequest,
				fmt.Sprintf("workload %q: trace-file workloads are not accepted over HTTP (the path would be read on the server); run the spec with the mithrilsim CLI instead", name))
			return
		}
	}
	sc, err := sp.Scale.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, distrib.CodeBadRequest, err.Error())
		return
	}
	sc = s.applyJobs(sc)
	// Construct the full execution — row runner or coordinator fan-out
	// plan — before committing the header: anything wrong with the spec
	// surfaces here as a 400.
	var seq iter.Seq2[expspec.Row, error]
	if s.cfg.Coordinator != nil {
		seq, err = s.cfg.Coordinator.Stream(r.Context(), sp, sc, s.execOptions())
	} else {
		seq, err = sp.StreamRowsAt(r.Context(), sc, nil, s.execOptions())
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, distrib.CodeBadRequest, err.Error())
		return
	}

	st := startStream(w, sp.Name)
	var split rowSplit
	for row, err := range seq {
		if err != nil {
			// Rows may already be on the wire; the status is committed.
			// Emit the terminal error line unless the client is the reason
			// we are stopping (its connection is gone anyway).
			if r.Context().Err() == nil {
				st.fail(legacy, distrib.CodeRunFailed, err.Error())
			}
			return
		}
		vals, err := sp.RowValues(sc, row)
		if err != nil {
			st.fail(legacy, distrib.CodeRunFailed, err.Error())
			return
		}
		// Echo the grid position so streaming consumers can reassemble
		// deterministic order without re-deriving the expansion.
		vals["row"] = row.Index
		if writeErr := st.emit(vals); writeErr != nil {
			return // client went away mid-write
		}
		split.count(row.Cached)
	}
	st.finish(split)
}

// handleShard executes a distrib.ShardRequest: an explicit row-index
// subset of a spec's grid, streamed back in the wire encoding
// (distrib.ShardRecord lines carrying store payloads, which round-trip
// float64 exactly). Same header discipline as handleSweep: every check —
// decode, parse, stamp and grid drift, subset bounds, trace cells —
// runs before the 200 commits.
func (s *server) handleShard(w http.ResponseWriter, r *http.Request, body []byte) {
	if s.cfg.Coordinator != nil {
		writeError(w, http.StatusBadRequest, distrib.CodeBadRequest,
			"this server is a coordinator; shard requests go to its workers (POST a bare spec document instead)")
		return
	}
	var req distrib.ShardRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, distrib.CodeBadRequest, fmt.Sprintf("decoding shard request: %v", err))
		return
	}
	sp, err := expspec.Parse(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, distrib.CodeBadRequest, err.Error())
		return
	}
	// Version-drift guards: a worker whose registries fingerprint
	// differently would expand or simulate a different grid than the
	// coordinator keyed, so reject loudly instead of returning rows that
	// silently mean something else. Conflict is permanent — the
	// coordinator drops this worker rather than retrying.
	if stamp := expspec.StoreStamp(); req.Stamp != stamp {
		writeError(w, http.StatusConflict, distrib.CodeConflict,
			fmt.Sprintf("store stamp mismatch: coordinator %s, worker %s (binaries out of sync)", req.Stamp, stamp))
		return
	}
	sc := req.Scale.Scale(s.cfg.Jobs)
	cells := sp.Expand(sc)
	if len(cells) != req.Grid {
		writeError(w, http.StatusConflict, distrib.CodeConflict,
			fmt.Sprintf("grid mismatch: coordinator expanded %d rows, worker %d (binaries out of sync)", req.Grid, len(cells)))
		return
	}
	// Trace cells never travel: the coordinator runs them locally, so a
	// shard naming one is a coordinator bug — and the same filesystem
	// probe hole the bare path closes. Bounds errors fall out of
	// StreamRowsAt below with a precise message.
	for _, i := range req.Rows {
		if i < 0 || i >= len(cells) {
			continue
		}
		if strings.HasPrefix(cells[i].Workload, trace.TracePrefix) {
			writeError(w, http.StatusBadRequest, distrib.CodeBadRequest,
				fmt.Sprintf("row %d (workload %q): trace-file workloads are not accepted over HTTP; the coordinator executes trace rows locally", i, cells[i].Workload))
			return
		}
	}
	seq, err := sp.StreamRowsAt(r.Context(), sc, req.Rows, s.execOptions())
	if err != nil {
		writeError(w, http.StatusBadRequest, distrib.CodeBadRequest, err.Error())
		return
	}

	st := startStream(w, sp.Name)
	var split rowSplit
	for row, err := range seq {
		if err != nil {
			if r.Context().Err() == nil {
				st.shardFail(distrib.CodeRunFailed, err.Error())
			}
			return
		}
		payload, err := expspec.EncodeRowPayload(row)
		if err != nil {
			st.shardFail(distrib.CodeRunFailed, err.Error())
			return
		}
		rec := distrib.ShardRecord{Row: row.Index, Cached: row.Cached, Point: payload}
		if writeErr := st.emit(rec); writeErr != nil {
			return // coordinator went away mid-write
		}
		split.count(row.Cached)
	}
	st.shardFinish(split)
}

// stream is one committed NDJSON response: header written, rows flushing
// as they complete, terminated by exactly one summary or error record.
type stream struct {
	w       http.ResponseWriter
	flusher http.Flusher
	enc     *json.Encoder
}

// startStream commits the NDJSON response header. After this point
// errors can only travel as terminal records, never as HTTP statuses.
func startStream(w http.ResponseWriter, specName string) *stream {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Spec-Name", specName)
	// Declared before the body starts, set after the stream completes:
	// the cache-effectiveness split arrives as HTTP trailers (and as the
	// final NDJSON summary line, for clients that never look at trailers).
	w.Header().Set("Trailer", trailerCached+", "+trailerSimulated)
	flusher, _ := w.(http.Flusher)
	return &stream{w: w, flusher: flusher, enc: json.NewEncoder(w)}
}

// emit writes one data record and flushes it to the client.
func (st *stream) emit(v any) error {
	if err := st.enc.Encode(v); err != nil {
		return err
	}
	if st.flusher != nil {
		st.flusher.Flush()
	}
	return nil
}

// fail writes the terminal error record of a sweep stream: the frozen
// bare-string form on legacy /run, the coded envelope on /v1.
func (st *stream) fail(legacy bool, code, msg string) {
	if legacy {
		_ = st.enc.Encode(ndjsonError{Error: msg})
		return
	}
	_ = st.enc.Encode(errorEnvelope{Error: &distrib.APIError{Code: code, Message: msg}})
}

// shardFail writes the terminal error record of a shard stream.
func (st *stream) shardFail(code, msg string) {
	_ = st.enc.Encode(distrib.ShardRecord{Error: &distrib.APIError{Code: code, Message: msg}})
}

// finish terminates a completed sweep stream: summary record + trailers.
func (st *stream) finish(split rowSplit) {
	_ = st.enc.Encode(ndjsonSummary{Summary: split})
	st.setTrailers(split)
}

// shardFinish terminates a completed shard stream. The summary is the
// coordinator's completion proof: a connection that dies before it
// arrives means the unserved remainder must be re-dispatched.
func (st *stream) shardFinish(split rowSplit) {
	_ = st.enc.Encode(distrib.ShardRecord{
		Row:     -1,
		Summary: &distrib.ShardSummary{Rows: split.Rows, Cached: split.Cached, Simulated: split.Simulated},
	})
	st.setTrailers(split)
}

func (st *stream) setTrailers(split rowSplit) {
	st.w.Header().Set(trailerCached, strconv.Itoa(split.Cached))
	st.w.Header().Set(trailerSimulated, strconv.Itoa(split.Simulated))
}
