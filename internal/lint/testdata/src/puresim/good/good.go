// Package good derives every value from explicit inputs: seeded generators
// and injected state are deterministic, only the global entry points are
// banned.
package good

import "math/rand"

// Roll on a caller-seeded generator is deterministic state, not an ambient
// read — methods are always allowed.
func Roll(rng *rand.Rand) int {
	return rng.Intn(6)
}

// Pick seeds locally: rand.New/rand.NewSource construct deterministic
// state and are not on the deny list.
func Pick(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Stamp threads the clock in instead of reading it.
func Stamp(now int64) int64 {
	return now + 1
}
