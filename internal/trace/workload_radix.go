package trace

import "fmt"

func init() {
	RegisterWorkload("radix",
		"SPLASH-2 RADIX-like multithreaded kernel: streaming reads with scattered bucket writes",
		Radix)
}

// Radix is the SPLASH-2 RADIX-like kernel: streaming reads with scattered
// bucket writes.
func Radix(threads int, seed uint64) Workload {
	return Workload{
		Name: "radix",
		Fresh: func() []Generator {
			gens := make([]Generator, threads)
			const foot = 512 << 20
			for i := 0; i < threads; i++ {
				base := uint64(i) * (foot / uint64(threads))
				gens[i] = NewGatherScatter(fmt.Sprintf("radix-%d", i), base, foot/uint64(threads), 13, seed+uint64(i))
			}
			return gens
		},
	}
}
