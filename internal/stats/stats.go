// Package stats provides the small numeric and formatting helpers the
// experiment harness uses: geometric means for workload aggregation (the
// paper reports geo-means across workloads), aligned text tables for the
// CLI reports, and the CSV/JSON writers behind the machine-readable
// experiment output.
package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Geomean returns the geometric mean; it panics on non-positive inputs
// (normalized IPCs are positive by construction).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: Geomean of non-positive value %v", x))
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Table renders aligned text tables for CLI output.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// Add appends one row; missing cells render empty.
func (t *Table) Add(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		var line strings.Builder
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(c)
			line.WriteString(strings.Repeat(" ", w-len(c)))
		}
		// The final cell's padding (and any empty trailing cells) would
		// leave trailing whitespace on every row; trim it.
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// DiffLines reports pairwise line differences between two texts (want vs
// got), one "line N / want / got" block per divergent line. The golden
// equivalence tests and the CLI's spec-vs-golden diff both render
// mismatches with it.
func DiffLines(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	var b strings.Builder
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			fmt.Fprintf(&b, "line %d:\n  want: %s\n  got:  %s\n", i+1, wl, gl)
		}
	}
	return b.String()
}

// WriteCSV emits an RFC 4180 CSV document: one header record followed by
// the data rows (cells are quoted only where the encoding requires it).
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits v as indented JSON with a trailing newline — the
// machine-readable counterpart to Table's human output.
func WriteJSON(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
