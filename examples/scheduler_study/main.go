// Scheduler study: how the memory scheduling policy and page policy
// interact with Mithril's RFM traffic — an ablation the paper fixes to
// BLISS + minimalist-open (Table III) but that the simulator can vary.
//
// The grid fans out with mithril.RunParallelContext and each cell runs
// through one shared mithril.Engine: every pairing is an independent pair
// of simulations, and the study cancels cleanly (Ctrl-C) mid-cell because
// the context reaches all the way into the simulator loop.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"mithril"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	p := mithril.DDR5()
	const flipTH = 3125

	schedulers := []mithril.SchedulerKind{mithril.FCFS, mithril.FRFCFS, mithril.BLISS}
	policies := []mithril.PagePolicy{mithril.OpenPage, mithril.ClosedPage, mithril.MinimalistOpen}

	fmt.Printf("Mithril (FlipTH=%d) relative performance under scheduler/page-policy combos:\n\n", flipTH)
	fmt.Printf("%-10s %-17s %12s %12s %14s\n", "scheduler", "page policy", "rel perf %", "energy +%", "baseline IPC")

	// Each grid cell is an independent pair of simulations: fan them out
	// over all cores. Results come back in grid order, so the table
	// prints exactly as a serial loop would; the first error (or Ctrl-C)
	// cancels the cells still running.
	type cell struct {
		sched mithril.SchedulerKind
		pol   mithril.PagePolicy
	}
	var cells []cell
	for _, sched := range schedulers {
		for _, pol := range policies {
			cells = append(cells, cell{sched, pol})
		}
	}
	eng := mithril.NewEngine(p)
	results, err := mithril.RunParallelContext(ctx, 0, len(cells), func(ctx context.Context, i int) (mithril.Comparison, error) {
		scheme, err := mithril.NewScheme("mithril", mithril.SchemeOptions{Timing: p, FlipTH: flipTH})
		if err != nil {
			return mithril.Comparison{}, err
		}
		cfg := mithril.SimConfig{
			Params:       p,
			FlipTH:       flipTH,
			Scheduler:    cells[i].sched,
			Policy:       cells[i].pol,
			InstrPerCore: 15_000,
		}
		return eng.Compare(ctx, cfg, mithril.MixHigh(8, 1), scheme)
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, cmp := range results {
		fmt.Printf("%-10s %-17s %12.2f %12.2f %14.2f\n",
			cells[i].sched, cells[i].pol, cmp.RelativePerformance, cmp.EnergyOverheadPercent,
			cmp.Baseline.AggregateIPC)
	}

	fmt.Println("\nTable III's choice (BLISS + minimalist-open) balances fairness against")
	fmt.Println("row locality. Closed-page pays an activation per access and has the")
	fmt.Println("lowest baseline IPC; locality-aware policies amortize RFM windows better.")
}
