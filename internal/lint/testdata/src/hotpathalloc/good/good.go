// Package good contains hot-path code the hotpathalloc analyzer must
// accept unchanged: pooled buffers, field appends, array literals, dynamic
// dispatch, whitelisted stdlib calls, panic arguments, and explained
// suppressions.
package good

import "math"

type pool struct {
	buf  []uint32
	vals [4]uint64
}

type summary interface {
	Observe(uint32)
}

//mithril:hotpath
func helperHot(x int) int { return x + 1 }

//mithril:hotpath
func Steady(p *pool, s summary, row uint32) float64 {
	p.buf = append(p.buf, row) // field append reuses owned storage
	buf := p.buf[:0]           // pooled reuse, not zero-value growth
	buf = append(buf, row)
	_ = buf
	pair := [2]uint32{row - 1, row + 1} // array literal stays on the stack
	_ = pair
	s.Observe(row)           // dynamic dispatch: checked at implementations
	n := helperHot(int(row)) // annotated callee
	scratch := p.vals[:]
	_ = scratch
	if row == 0 {
		panic("impossible") // cold failure path: arguments exempt
	}
	return math.Sqrt(float64(n)) // whitelisted pure-computation package
}

//mithril:hotpath
func Suppressed(p *pool) {
	p.buf = make([]uint32, 0, 8) //mithril:allow hotpathalloc one-time pool refill, explained
}

// NotHot allocates freely: without the annotation the analyzer must stay
// silent.
func NotHot() []uint32 {
	return append([]uint32{}, 1, 2, 3)
}
