// Package good spawns goroutines with provable exit paths.
package good

import (
	"context"
	"sync"
)

// producer sends under a select with a cancellation arm: the mithril
// streaming-worker shape.
func producer(ctx context.Context, out chan<- int) {
	go func() {
		for i := 0; ; i++ {
			select {
			case out <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// joined runs bounded WaitGroup-joined workers: the spawner Adds, the
// goroutines do finite work and return.
func joined(items []int) []int {
	var wg sync.WaitGroup
	results := make([]int, len(items))
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = items[i] * 2
		}()
	}
	wg.Wait()
	return results
}

// waiter joins the WaitGroup on a dedicated goroutine so the spawner can
// select on done: the mithril stream-teardown shape.
func waiter(n int) {
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(n)
	go func() {
		wg.Wait()
		close(done)
	}()
	for i := 0; i < n; i++ {
		wg.Done()
	}
	<-done
}

// drain ranges over a channel the spawner closes.
func drain(in chan int) {
	done := make(chan struct{})
	go func() {
		for range in {
		}
		close(done)
	}()
	close(in)
	<-done
}

// shutdown blocks only on the context's Done channel: the mithril serve
// shutdown shape.
func shutdown(ctx context.Context, cleanup func()) {
	go func() {
		<-ctx.Done()
		cleanup()
	}()
}

// deliberate documents an accepted leak with an explained allow.
func deliberate(ch chan int) {
	go func() {
		ch <- 1 //mithril:allow goleak fixture demonstrates suppression
	}()
}
