package mitigation

import (
	"mithril/internal/mc"
	"mithril/internal/timing"
)

// CBT (Seyedzadeh et al.): the grouped-counter tree. Each bank owns a small
// set of counters, each covering a contiguous row range. A counter that
// crosses a split threshold divides its range in two (children inherit the
// parent count, conservatively) until the node budget is exhausted; a
// counter that crosses the refresh threshold (FlipTH/4) refreshes its whole
// group — rows inside the range plus the boundary neighbours — and resets.
//
// Section III-D's incompatibility argument shows up directly: group
// refreshes of wide ranges stack far more rows than a tRFM window could
// absorb, which is why CBT stays ARR-based here.
type CBT struct {
	opt       Options
	maxNodes  int
	refreshTH uint64
	splitTH   uint64
	banks     [][]cbtNode // per global bank, seeded with one full-range node on first ACT
	vbuf      []uint32    // reusable victim buffer (mc.Scheme contract)
	groupRefs uint64      // group refreshes executed
	rowsRefd  uint64      // total rows refreshed
}

type cbtNode struct {
	lo, hi int // row range [lo, hi)
	count  uint64
}

var _ mc.Scheme = (*CBT)(nil)

func init() {
	Register("cbt", func(opt Options) mc.Scheme { return NewCBT(opt) })
}

// NewCBT sizes the tree per the area model: ≈ 9·S/FlipTH nodes per bank,
// split threshold at half the refresh threshold.
func NewCBT(opt Options) *CBT {
	opt.normalize()
	s := opt.Timing.ACTsPerREFW()
	n := 9 * s / opt.FlipTH
	if n < 4 {
		n = 4
	}
	refreshTH := uint64(opt.FlipTH / 4)
	if refreshTH == 0 {
		refreshTH = 1
	}
	return &CBT{
		opt:       opt,
		maxNodes:  n,
		refreshTH: refreshTH,
		splitTH:   refreshTH / 2,
		banks:     make([][]cbtNode, opt.banks()),
	}
}

// MaxNodes exposes the per-bank node budget.
func (s *CBT) MaxNodes() int { return s.maxNodes }

// GroupRefreshes reports executed group refreshes and total refreshed rows
// — the "stacking of refresh loads" metric of Section III-D.
func (s *CBT) GroupRefreshes() (groups, rows uint64) { return s.groupRefs, s.rowsRefd }

// Name implements mc.Scheme.
func (s *CBT) Name() string { return "cbt" }

// RFMCompatible implements mc.Scheme.
func (s *CBT) RFMCompatible() bool { return false }

// RFMTH implements mc.Scheme.
func (s *CBT) RFMTH() int { return 0 }

// OnActivate implements mc.Scheme.
//
//mithril:hotpath
func (s *CBT) OnActivate(bank int, row uint32, core int, now timing.PicoSeconds) []uint32 {
	nodes := s.banks[bank]
	if nodes == nil {
		nodes = []cbtNode{{lo: 0, hi: s.opt.Timing.Rows}} //mithril:allow hotpathalloc one-time lazy seed on a bank's first ACT
	}
	idx := -1
	for i := range nodes {
		if int(row) >= nodes[i].lo && int(row) < nodes[i].hi {
			idx = i
			break
		}
	}
	if idx < 0 { // should not happen: ranges partition the bank
		nodes = append(nodes, cbtNode{lo: 0, hi: s.opt.Timing.Rows})
		idx = len(nodes) - 1
	}
	nodes[idx].count++
	// Split phase: divide hot ranges while budget remains.
	if nodes[idx].count >= s.splitTH && len(nodes) < s.maxNodes && nodes[idx].hi-nodes[idx].lo > 1 {
		n := nodes[idx]
		mid := (n.lo + n.hi) / 2
		// Children inherit the parent's count (conservative).
		nodes[idx] = cbtNode{lo: n.lo, hi: mid, count: n.count}
		nodes = append(nodes, cbtNode{lo: mid, hi: n.hi, count: n.count})
		// Re-locate the row after the split.
		if int(row) >= mid {
			idx = len(nodes) - 1
		}
	}
	var victimRows []uint32
	if nodes[idx].count >= s.refreshTH {
		n := nodes[idx]
		victimRows = s.vbuf[:0]
		for r := n.lo - s.opt.BlastRadius; r < n.hi+s.opt.BlastRadius; r++ {
			if r >= 0 && r < s.opt.Timing.Rows {
				victimRows = append(victimRows, uint32(r))
			}
		}
		s.vbuf = victimRows
		nodes[idx].count = 0
		s.groupRefs++
		s.rowsRefd += uint64(len(victimRows))
	}
	s.banks[bank] = nodes
	return victimRows
}

// PreACTDelay implements mc.Scheme.
//
//mithril:hotpath
func (s *CBT) PreACTDelay(int, uint32, int, timing.PicoSeconds) timing.PicoSeconds { return 0 }

// OnRFM implements mc.Scheme.
//
//mithril:hotpath
func (s *CBT) OnRFM(int, timing.PicoSeconds) []uint32 { return nil }

// SkipRFM implements mc.Scheme.
//
//mithril:hotpath
func (s *CBT) SkipRFM(int) bool { return false }

// NextDeadline implements mc.Scheme: CBT is purely reactive — the tree reacts to ACTs only.
//
//mithril:hotpath
func (s *CBT) NextDeadline(timing.PicoSeconds) timing.PicoSeconds { return timing.Never }
