package core

import (
	"fmt"

	"mithril/internal/streaming"
)

// WrappedTable is the hardware-faithful Counter-based Summary table of
// Section IV-E: counters are fixed-width wrapping values (Wrap16) compared
// with modular arithmetic instead of unbounded integers. It is correct as
// long as the table spread stays below 2^15 — which Theorem 1 guarantees
// when the counter CAM is sized from the bound M — and is property-tested
// against the unbounded reference implementation.
//
// Like the real CAM pair, every slot always holds a value: the table boots
// with all counters at zero and invalid addresses, and the CbS replacement
// rule overwrites the minimum slot. This is what removes Graphene's periodic
// table reset (and its two-fold threshold degradation) and BlockHammer's
// duplicated filter.
type WrappedTable struct {
	keys   []uint32
	counts []streaming.Wrap16
	valid  []bool // address CAM holds a real row (vs. boot-time garbage)
	index  map[uint32]int
}

// NewWrappedTable builds a wrapping-counter table with capacity entries.
func NewWrappedTable(capacity int) *WrappedTable {
	if capacity <= 0 {
		panic(fmt.Sprintf("core: WrappedTable capacity must be positive, got %d", capacity))
	}
	return &WrappedTable{
		keys:   make([]uint32, capacity),
		counts: make([]streaming.Wrap16, capacity),
		valid:  make([]bool, capacity),
		index:  make(map[uint32]int, capacity),
	}
}

func (w *WrappedTable) minSlot() int {
	best := 0
	for slot := 1; slot < len(w.counts); slot++ {
		if streaming.WrapLess(w.counts[slot], w.counts[best]) {
			best = slot
		}
	}
	return best
}

func (w *WrappedTable) maxSlot() int {
	best := 0
	for slot := 1; slot < len(w.counts); slot++ {
		if streaming.WrapLess(w.counts[best], w.counts[slot]) {
			best = slot
		}
	}
	return best
}

// Observe implements the CbS update with wrapping counters: increment on
// hit, otherwise overwrite the MinPtr slot's address and increment it.
func (w *WrappedTable) Observe(key uint32) {
	if slot, ok := w.index[key]; ok {
		w.counts[slot] = streaming.WrapAdd(w.counts[slot], 1)
		return
	}
	slot := w.minSlot()
	if w.valid[slot] {
		delete(w.index, w.keys[slot])
	}
	w.keys[slot] = key
	w.valid[slot] = true
	w.counts[slot] = streaming.WrapAdd(w.counts[slot], 1)
	w.index[key] = slot
}

// SelectMax performs the RFM step: returns the MaxPtr key and lowers its
// counter to the MinPtr value. ok is false while the max slot still holds
// boot-time garbage (nothing worth refreshing).
func (w *WrappedTable) SelectMax() (key uint32, ok bool) {
	maxSlot := w.maxSlot()
	if !w.valid[maxSlot] {
		return 0, false
	}
	w.counts[maxSlot] = w.counts[w.minSlot()]
	return w.keys[maxSlot], true
}

// Spread reports MaxPtr−MinPtr as a modular distance.
func (w *WrappedTable) Spread() uint64 {
	return uint64(streaming.WrapDiff(w.counts[w.minSlot()], w.counts[w.maxSlot()]))
}

// Contains reports whether key is on-table.
func (w *WrappedTable) Contains(key uint32) bool {
	_, ok := w.index[key]
	return ok
}

// RelativeCount reports the modular distance of key's counter above the
// table minimum (the quantity Mithril actually compares); ok is false for
// off-table keys.
func (w *WrappedTable) RelativeCount(key uint32) (uint64, bool) {
	slot, ok := w.index[key]
	if !ok {
		return 0, false
	}
	return uint64(streaming.WrapDiff(w.counts[w.minSlot()], w.counts[slot])), true
}

// Len reports the number of valid entries.
func (w *WrappedTable) Len() int { return len(w.index) }

// Cap reports the table capacity.
func (w *WrappedTable) Cap() int { return len(w.counts) }
