package trace

import "fmt"

func init() {
	RegisterWorkload("mix-blend",
		"blended multi-programmed mix: memory-intensive and compute-bound cores interleaved (the paper's random blend)",
		MixBlend)
}

// MixBlend mixes memory-intensive and compute-bound cores (the paper's
// randomly selected blend).
func MixBlend(cores int, seed uint64) Workload {
	return Workload{
		Name: "mix-blend",
		Fresh: func() []Generator {
			gens := make([]Generator, cores)
			for i := 0; i < cores; i++ {
				base := coreRegion(i)
				switch i % 4 {
				case 0:
					gens[i] = NewStream(fmt.Sprintf("lbm-%d", i), base, 128<<20, 12, 4)
				case 1:
					gens[i] = NewComputeBound(fmt.Sprintf("leela-%d", i), base, seed+uint64(i))
				case 2:
					gens[i] = NewPointerChase(fmt.Sprintf("xz-%d", i), base, 64<<20, 40, seed+uint64(i))
				default:
					gens[i] = NewComputeBound(fmt.Sprintf("povray-%d", i), base, seed+uint64(i))
				}
			}
			return gens
		},
	}
}
