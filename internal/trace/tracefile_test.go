package trace

import (
	"bytes"
	"compress/gzip"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var sampleRecords = []Record{
	{Gap: 12, Addr: 0x1000},
	{Gap: 0, Write: true, Addr: 0x1040},
	{Gap: 3, Addr: 0x20000},
	{Gap: 400, Addr: 0x0},
	{Gap: 7, Write: true, Addr: 0xfffc0},
}

func TestParseTraceFixture(t *testing.T) {
	recs, err := ParseTraceFile("testdata/sample.trace")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, sampleRecords) {
		t.Errorf("records = %+v, want %+v", recs, sampleRecords)
	}
}

// The canonical fixture pins WriteTrace's exact output format, and the
// write→parse round trip must reproduce the records byte-for-byte.
func TestTraceRoundTripFixture(t *testing.T) {
	recs, err := ParseTraceFile("testdata/sample.trace")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/sample.canonical.trace")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("WriteTrace output:\n%swant testdata/sample.canonical.trace:\n%s", buf.Bytes(), want)
	}
	again, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, recs) {
		t.Errorf("round trip diverged: %+v vs %+v", again, recs)
	}
}

// The reader must pick gzip vs plain text by content, not file name.
func TestParseTraceGzipDetection(t *testing.T) {
	plain, err := os.ReadFile("testdata/sample.trace")
	if err != nil {
		t.Fatal(err)
	}
	var gzBuf bytes.Buffer
	gw := gzip.NewWriter(&gzBuf)
	if _, err := gw.Write(plain); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sample.trace.gz")
	if err := os.WriteFile(path, gzBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, sampleRecords) {
		t.Errorf("gzip records = %+v, want %+v", recs, sampleRecords)
	}
}

func TestParseTraceMalformedLines(t *testing.T) {
	cases := []struct {
		name, input, want string
	}{
		{"too few fields", "12 R\n", "want 3 fields"},
		{"too many fields", "12 R 0x0 extra\n", "want 3 fields"},
		{"bad gap", "x R 0x0\n", "bad gap"},
		{"negative gap", "-1 R 0x0\n", "bad gap"},
		{"bad op", "1 X 0x0\n", "bad op"},
		{"lowercase op", "1 r 0x0\n", "bad op"},
		{"missing 0x prefix", "1 R 1000\n", "bad address"},
		{"non-hex address", "1 R 0xzz\n", "bad address"},
		{"out-of-range address", "1 R 0x10000000000\n", "out of range"},
		{"error names its line", "1 R 0x0\nbogus\n", "line 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseTrace(strings.NewReader(c.input))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("ParseTrace(%q) = %v, want error containing %q", c.input, err, c.want)
			}
		})
	}
}

// An empty trace (no records at all, even if full of comments) is an
// error: a replay generator must be endless.
func TestParseTraceEmpty(t *testing.T) {
	for _, input := range []string{"", "# only a comment\n\n"} {
		if _, err := ParseTrace(strings.NewReader(input)); err == nil ||
			!strings.Contains(err.Error(), "no records") {
			t.Errorf("ParseTrace(%q) = %v, want no-records error", input, err)
		}
	}
}

// The replay generator wraps around and offsets addresses per core.
func TestReplayWrapsAndOffsets(t *testing.T) {
	r := NewReplay("replay", sampleRecords, 1<<28)
	for round := 0; round < 2; round++ {
		for i, want := range sampleRecords {
			got := r.Next()
			if got.Addr != want.Addr+1<<28 || got.Write != want.Write || got.Gap != want.Gap {
				t.Fatalf("round %d access %d = %+v, want offset %+v", round, i, got, want)
			}
		}
	}
}

func TestFileWorkload(t *testing.T) {
	w, err := FileWorkload("testdata/sample.trace", 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "trace:testdata/sample.trace" {
		t.Errorf("Name = %q, want the full trace:<path> spelling", w.Name)
	}
	gens := w.Fresh()
	if len(gens) != 3 {
		t.Fatalf("Fresh built %d generators, want 3", len(gens))
	}
	// Per-core disjoint regions: core i replays at offset i<<28.
	for i, g := range gens {
		if a := g.Next(); a.Addr != sampleRecords[0].Addr+uint64(i)<<28 {
			t.Errorf("core %d first access at %#x, want offset %#x", i, a.Addr, uint64(i)<<28)
		}
	}
	// Fresh must rebuild identical state: a second set replays from the top.
	if a := w.Fresh()[0].Next(); a.Addr != sampleRecords[0].Addr {
		t.Errorf("second Fresh started at %#x, want %#x", a.Addr, sampleRecords[0].Addr)
	}
	if _, err := FileWorkload("testdata/no-such-file.trace", 1); err == nil {
		t.Error("missing file: want error")
	}
}

// Traces larger than the standard 256 MB core region must still replay
// disjointly: the per-core stride grows to the footprint's next power of
// two.
func TestFileWorkloadLargeTraceStaysDisjoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.trace")
	// Highest address ~1 GB: the stride must become 2 GB, not 256 MB.
	if err := os.WriteFile(path, []byte("1 R 0x0\n1 R 0x3f7a1700\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := FileWorkload(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	gens := w.Fresh()
	const stride = uint64(1) << 30
	for i, g := range gens {
		g.Next() // skip the 0x0 record
		if a := g.Next(); a.Addr != 0x3f7a1700+uint64(i)*stride {
			t.Errorf("core %d peak address %#x, want stride %#x per core", i, a.Addr, stride)
		}
	}
}

func TestBuildWorkloadTraceForm(t *testing.T) {
	w, err := BuildWorkload("trace:testdata/sample.trace", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "trace:testdata/sample.trace" || len(w.Fresh()) != 2 {
		t.Errorf("built %+v", w)
	}
	if _, err := BuildWorkload("trace:", 1, 1); err == nil {
		t.Error("trace: with empty path must fail")
	}
	if _, err := BuildWorkload("spec2017", 1, 1); !errors.Is(err, ErrUnknownWorkload) {
		t.Errorf("unknown name: err = %v, want ErrUnknownWorkload", err)
	}
}
