// Command mithrilsim regenerates every table and figure of the Mithril
// paper's evaluation (HPCA 2022) from the reproduction library.
//
// Usage:
//
//	mithrilsim <command> [-full] [-flipth N] [-jobs N]
//
// Simulation sweeps fan out over -jobs workers (default: all cores);
// -jobs 1 forces the serial path. Parallel and serial runs print
// byte-identical output.
//
// Commands:
//
//	figure2   ARR-Graphene vs RFM-Graphene incompatibility curves
//	figure6   feasible (Nentry, RFMTH) configurations per FlipTH
//	figure7   adaptive-refresh energy/area sweep over AdTH
//	figure8   lbm-like large-object-sweep characterization
//	figure9   Mithril vs Mithril+ performance/area grid
//	figure10  RFM-compatible scheme comparison (perf/energy/area)
//	figure11  RFM-non-compatible baseline comparison
//	table4    per-bank counter table sizes vs the paper's Table IV
//	safety    attack sweep: bit-flip verdicts per scheme
//	parfm     Appendix C failure probabilities and required RFMTH
//	all       everything above
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"

	"mithril"
	"mithril/internal/stats"
)

func main() {
	full := flag.Bool("full", false, "run at the paper's full scale (16 cores, all FlipTH levels)")
	flipTH := flag.Int("flipth", 2000, "FlipTH for the safety sweep")
	jobs := flag.Int("jobs", 0, "sweep worker count (0 = all cores, 1 = serial)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mithrilsim <figure2|figure6|figure7|figure8|figure9|figure10|figure11|table4|safety|parfm|all> [-full] [-jobs N]")
		flag.PrintDefaults()
	}
	if len(os.Args) < 2 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if err := flag.CommandLine.Parse(os.Args[2:]); err != nil {
		// Defensive: flag.ExitOnError exits on malformed flags itself;
		// this path covers any other error handling mode.
		fmt.Fprintf(os.Stderr, "mithrilsim: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if args := flag.CommandLine.Args(); len(args) > 0 {
		// Parse stops at the first positional argument, silently ignoring
		// the rest — a misspelled flag like "jobs 4" would otherwise be
		// swallowed whole.
		fmt.Fprintf(os.Stderr, "mithrilsim: unexpected arguments: %v\n", args)
		flag.Usage()
		os.Exit(2)
	}

	sc := mithril.QuickScale()
	if *full {
		sc = mithril.FullScale()
	}
	sc.Jobs = *jobs

	run := map[string]func() error{
		"figure2":  figure2,
		"figure6":  figure6,
		"figure7":  func() error { return figure7(sc) },
		"figure8":  figure8,
		"figure9":  func() error { return figure9(sc) },
		"figure10": func() error { return figure10(sc) },
		"figure11": func() error { return figure11(sc) },
		"table4":   table4,
		"safety":   func() error { return safety(sc, *flipTH) },
		"parfm":    parfm,
	}
	if cmd == "all" {
		for _, name := range []string{"figure2", "figure6", "figure8", "table4", "parfm", "figure7", "figure9", "figure10", "figure11", "safety"} {
			if err := run[name](); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	fn, ok := run[cmd]
	if !ok {
		flag.Usage()
		os.Exit(2)
	}
	if err := fn(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

func figure2() error {
	header("Figure 2 — safe FlipTH: ARR-Graphene vs RFM-Graphene")
	pts := mithril.Figure2Data()
	t := stats.NewTable("threshold", "ARR", "RFM-256", "RFM-128", "RFM-64", "RFM-32")
	for _, p := range pts {
		t.Add(strconv.Itoa(p.Threshold),
			fmt.Sprintf("%.1fK", p.ARR/1000),
			fmt.Sprintf("%.1fK", p.RFM[256]/1000),
			fmt.Sprintf("%.1fK", p.RFM[128]/1000),
			fmt.Sprintf("%.1fK", p.RFM[64]/1000),
			fmt.Sprintf("%.1fK", p.RFM[32]/1000))
	}
	fmt.Print(t)
	return nil
}

func figure6() error {
	header("Figure 6 — feasible (table size, RFMTH) per FlipTH (CbS vs Lossy Counting)")
	t := stats.NewTable("FlipTH", "RFMTH", "Nentry(CbS)", "KB(CbS)", "Nentry(LC)", "KB(LC)")
	for _, s := range mithril.Figure6Data() {
		lossy := map[int]mithril.MithrilConfig{}
		for _, l := range s.Lossy {
			lossy[l.RFMTH] = l
		}
		for _, c := range s.CbS {
			lcN, lcKB := "-", "-"
			if l, ok := lossy[c.RFMTH]; ok {
				lcN, lcKB = strconv.Itoa(l.NEntry), fmt.Sprintf("%.2f", l.TableKB)
			}
			t.Add(strconv.Itoa(s.FlipTH), strconv.Itoa(c.RFMTH),
				strconv.Itoa(c.NEntry), fmt.Sprintf("%.2f", c.TableKB), lcN, lcKB)
		}
	}
	fmt.Print(t)
	return nil
}

func figure7(sc mithril.Scale) error {
	header("Figure 7 — adaptive refresh: energy overhead and extra Nentry vs AdTH")
	pts, err := mithril.Figure7Data(sc)
	if err != nil {
		return err
	}
	t := stats.NewTable("FlipTH", "RFMTH", "AdTH", "energy% (multi-prog)", "energy% (multi-thread)", "+Nentry%")
	for _, p := range pts {
		t.Add(strconv.Itoa(p.FlipTH), strconv.Itoa(p.RFMTH), strconv.Itoa(p.AdTH),
			fmt.Sprintf("%.2f", p.EnergyOverheadPct["multi-programmed"]),
			fmt.Sprintf("%.2f", p.EnergyOverheadPct["multi-threaded"]),
			fmt.Sprintf("%.1f", p.AdditionalNEntryPct))
	}
	fmt.Print(t)
	return nil
}

func figure8() error {
	header("Figure 8 — large-object sweep (lbm-like) characterization")
	d := mithril.Figure8()
	fmt.Printf("large window (100K accesses): %d distinct rows\n", d.LargeDistinct)
	fmt.Printf("small window (512 accesses):  %d distinct rows, max %d accesses to one row\n",
		d.SmallDistinct, d.SmallMaxRow)
	fmt.Printf("activations in small window:  %d (row locality filters %.1f%% of accesses)\n",
		len(d.Activations), 100*(1-float64(len(d.Activations))/float64(len(d.SmallWindow))))
	fmt.Println("\nsmall-window access pattern (access# -> bank-local row):")
	for i, s := range d.SmallWindow {
		if i%64 == 0 {
			fmt.Printf("  %5d -> row %d (bank %d)\n", s.Index, s.Row, s.Bank)
		}
	}
	return nil
}

func figure9(sc mithril.Scale) error {
	header("Figure 9 — Mithril vs Mithril+ relative performance and area")
	pts, err := mithril.Figure9Data(sc)
	if err != nil {
		return err
	}
	t := stats.NewTable("FlipTH", "RFMTH", "Mithril perf%", "Mithril+ perf%", "table KB")
	for _, p := range pts {
		t.Add(strconv.Itoa(p.FlipTH), strconv.Itoa(p.RFMTH),
			fmt.Sprintf("%.2f", p.Mithril), fmt.Sprintf("%.2f", p.MithrilPlus),
			fmt.Sprintf("%.2f", p.TableKB))
	}
	fmt.Print(t)
	return nil
}

func perfTable(points []mithril.PerfPoint) string {
	t := stats.NewTable("scheme", "FlipTH", "workload", "perf%", "energy+%", "tableKB", "safe")
	for _, p := range points {
		t.Add(p.Scheme, strconv.Itoa(p.FlipTH), p.Workload,
			fmt.Sprintf("%.2f", p.RelativePerformance),
			fmt.Sprintf("%.2f", p.EnergyOverheadPct),
			fmt.Sprintf("%.2f", p.TableKB),
			fmt.Sprintf("%v", p.Safe))
	}
	return t.String()
}

func figure10(sc mithril.Scale) error {
	header("Figure 10 — RFM-compatible schemes: PARFM, BlockHammer, Mithril, Mithril+")
	pts, err := mithril.Figure10Data(sc)
	if err != nil {
		return err
	}
	fmt.Print(perfTable(pts))
	return nil
}

func figure11(sc mithril.Scale) error {
	header("Figure 11 — vs RFM-non-compatible PARA, CBT, TWiCe, Graphene")
	pts, err := mithril.Figure11Data(sc)
	if err != nil {
		return err
	}
	fmt.Print(perfTable(pts))
	return nil
}

func table4() error {
	header("Table IV — per-bank counter table size (KB): computed vs paper")
	computed, paper := mithril.Table4Data()
	flipTHs := mithril.StandardFlipTHs()
	headers := []string{"scheme"}
	for _, f := range flipTHs {
		headers = append(headers, fmt.Sprintf("%gK", float64(f)/1000))
	}
	t := stats.NewTable(headers...)
	cell := func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return fmt.Sprintf("%.2f", v)
	}
	for i := range computed {
		row := []string{computed[i].Scheme}
		for _, f := range flipTHs {
			row = append(row, cell(computed[i].KB[f]))
		}
		t.Add(row...)
		ref := []string{"  (paper)"}
		for _, f := range flipTHs {
			ref = append(ref, cell(paper[i].KB[f]))
		}
		t.Add(ref...)
	}
	fmt.Print(t)
	return nil
}

func safety(sc mithril.Scale, flipTH int) error {
	header(fmt.Sprintf("Safety sweep — full-simulator attacks at FlipTH=%d", flipTH))
	results, err := mithril.SafetySweep(sc, flipTH)
	if err != nil {
		return err
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Attack != results[j].Attack {
			return results[i].Attack < results[j].Attack
		}
		return results[i].Scheme < results[j].Scheme
	})
	t := stats.NewTable("attack", "scheme", "flips", "max disturbance", "verdict")
	for _, r := range results {
		verdict := "SAFE"
		if !r.Safe {
			verdict = "UNSAFE"
		}
		t.Add(r.Attack, r.Scheme, strconv.Itoa(r.Flips),
			fmt.Sprintf("%.0f", r.MaxDisturbance), verdict)
	}
	fmt.Print(t)
	return nil
}

func parfm() error {
	header("Appendix C — PARFM failure probability (target 1e-15, 22 banks)")
	t := stats.NewTable("FlipTH", "required RFMTH", "bank failure", "system failure")
	for _, f := range mithril.StandardFlipTHs() {
		r, ok := mithril.PARFMRequiredRFMTH(f)
		if !ok {
			t.Add(strconv.Itoa(f), "-", "-", "-")
			continue
		}
		bank, system := mithril.PARFMFailure(f, r)
		t.Add(strconv.Itoa(f), strconv.Itoa(r),
			fmt.Sprintf("%.2e", bank), fmt.Sprintf("%.2e", system))
	}
	fmt.Print(t)
	return nil
}
