// Package expspec is the declarative experiment layer: a JSON spec format
// describing an experiment grid (axes over scheme × FlipTH × workload ×
// attack × seed × adversarial flag at a named scale), validation and
// deterministic grid expansion, and an executor that fans the expanded
// grid out over the internal/sweep worker pool with single-flight
// baseline caching. Scheme, workload, and attack names resolve through
// the open registries (internal/mitigation, internal/trace,
// internal/attack), so a spec can name anything registered — including
// out-of-tree entries and "trace:<path>" replay workloads — and
// validation rejects unknown names before anything simulates. Every
// execution is context-aware (cancellation stops the sweep within one grid
// point and aborts in-flight simulations) and row-oriented: RunAtContext
// collects rows in deterministic grid order, StreamAt yields the same rows
// in completion order as workers finish them, and ExecOptions adds a
// per-row progress hook plus a baseline cache shareable across executions.
// Results render as the CLI's aligned text tables or as machine-readable
// JSON/CSV rows, and as the raw full-precision "golden" line format the
// repository's regression goldens (testdata/golden_*.txt) are pinned in.
//
// The paper's simulation figures (7, 9, 10, 11) and the safety sweep are
// thin wrappers over shipped spec files (specs/*.json at the module root);
// opening a new scenario — a different scheme subset, FlipTH grid, workload
// mix, or seed set — is a new JSON file, not a recompile.
package expspec

import (
	"mithril/internal/analysis"
	"mithril/internal/timing"
)

// Scale sizes the simulation experiments. The paper runs 400M instructions
// over 16 cores on McSimA+; the simulator is cycle-approximate and the
// rate-based metrics (RFM frequency, refresh overheads) converge at far
// smaller budgets, so Quick is the default for tests/benches and Full for
// the CLI.
type Scale struct {
	Cores        int
	InstrPerCore int64
	FlipTHs      []int
	Seed         uint64
	// TimeScale compresses the refresh window (tREFW/TimeScale with
	// proportionally fewer refresh groups, same refresh duty cycle) so
	// window-relative mechanisms — BlockHammer blacklists, CBF epochs,
	// PARFM sampling windows — engage within simulable horizons. All
	// schemes are configured from the same scaled parameters, so relative
	// comparisons are preserved (DESIGN.md §4).
	TimeScale int
	// Jobs bounds the sweep engine's worker pool: each (scheme, FlipTH,
	// workload) cell is an independent simulation, so sweeps fan out over
	// Jobs workers. 0 (or negative) means one worker per core; 1 forces
	// the serial path. Parallel and serial sweeps return identical
	// results in identical order.
	Jobs int
}

// Params returns the (possibly time-scaled) DDR5 parameters for this scale.
func (sc Scale) Params() timing.Params {
	p := timing.DDR5()
	f := sc.TimeScale
	if f <= 1 {
		return p
	}
	p.TREFW /= timing.PicoSeconds(f)
	p.RefreshGroups /= f
	return p
}

// attackCores sizes attack workloads: the paper's 15+1 arrangement at full
// scale, a 3+1 arrangement otherwise (attack effects are per-bank, not
// per-core, so fewer benign cores change little but cost linearly less).
func (sc Scale) attackCores() int {
	if sc.Cores >= 16 {
		return sc.Cores
	}
	if sc.Cores > 4 {
		return 4
	}
	return sc.Cores
}

// multiSidedVictims picks the attack width (32 at full scale, 8 quick).
func (sc Scale) multiSidedVictims() int {
	if sc.Cores >= 16 {
		return 32
	}
	return 8
}

// QuickScale is the fast experiment configuration.
func QuickScale() Scale {
	return Scale{Cores: 8, InstrPerCore: 20_000, FlipTHs: []int{50000, 6250, 1500}, Seed: 1, TimeScale: 8}
}

// FullScale matches the paper's system size (16 cores, all FlipTH levels).
func FullScale() Scale {
	return Scale{Cores: 16, InstrPerCore: 100_000, FlipTHs: analysis.StandardFlipTHs, Seed: 1, TimeScale: 8}
}

// GoldenScale is QuickScale at the regression goldens' instruction budget:
// small enough to run in CI on every push, large enough to exercise refresh
// windows, RFM pacing, and the attack workloads. The specs/*.golden.json
// files run at this scale so `mithrilsim diff` reproduces
// testdata/golden_*.txt exactly.
func GoldenScale() Scale {
	sc := QuickScale()
	sc.InstrPerCore = 10_000
	return sc
}
