// Package mitigation implements every RowHammer protection scheme of the
// paper's Table I behind the mc.Scheme interface:
//
//	PARA         probabilistic · ARR       · MC
//	PARFM        probabilistic · RFM       · DRAM (Section III-E)
//	CBT          deterministic · ARR       · MC   (grouped counters)
//	TWiCe        deterministic · ARR       · buffer chip (lossy counting)
//	Graphene     deterministic · ARR       · MC   (CbS)
//	BlockHammer  deterministic · throttling· MC   (dual counting Bloom filters)
//	Mithril(+)   deterministic · RFM       · DRAM (CbS, this paper)
//
// All schemes are configured from (timing.Params, FlipTH) exactly the way
// Section VI-A describes, via the Options/Build factory. Per-bank tracker
// state is sized as dense arrays from the Params bank count at
// construction — the ACT/RFM hot path performs no map lookups and no
// allocations (victim lists are returned in reusable buffers per the
// mc.Scheme contract).
package mitigation

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mithril/internal/core"
	"mithril/internal/mc"
	"mithril/internal/timing"
)

// Options carries the common configuration for scheme construction. The
// bank count is taken from Timing (Channels × Ranks × Banks, fixed at
// build time); every scheme sizes its per-bank tracker state as dense
// arrays from it, mirroring the fixed-size SRAM of the hardware modeled.
type Options struct {
	Timing timing.Params
	// FlipTH is the RowHammer threshold to protect.
	FlipTH int
	// BlastRadius is the per-side victim range (1 = double-sided; 3 for
	// the non-adjacent model of Section V-C).
	BlastRadius int
	// RFMTH overrides the paper's per-FlipTH RFM threshold when positive
	// (Mithril/Mithril+ only).
	RFMTH int
	// AdTH is Mithril's adaptive-refresh threshold; the paper's default
	// is 200. Negative disables the adaptive policy (AdTH = 0).
	AdTH int
	// Seed drives the probabilistic schemes deterministically. Zero is a
	// sentinel for the package default DefaultSeed, so Seed = 0 and
	// Seed = DefaultSeed configure identical RNG streams — callers who
	// need distinct streams must pick any other value.
	Seed uint64
}

// DefaultSeed is the RNG seed normalize substitutes for a zero Seed
// ("mithril" in ASCII). An explicit Seed = DefaultSeed is indistinguishable
// from the zero value.
const DefaultSeed = 0x6d69746872696c

// banks reports the total bank count the per-bank dense state is sized to.
func (o *Options) banks() int { return o.Timing.TotalBanks() }

func (o *Options) normalize() {
	if o.BlastRadius <= 0 {
		o.BlastRadius = 1
	}
	if o.AdTH == 0 {
		o.AdTH = DefaultAdTH
	}
	if o.AdTH < 0 {
		o.AdTH = 0
	}
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
}

// DefaultAdTH is the paper's default adaptive-refresh threshold.
const DefaultAdTH = 200

// PaperRFMTH returns the RFMTH the evaluation assigns per FlipTH level
// (Section VI-A: 256 at 50K/25K, fixed 32 at 1.5K, scaling between).
func PaperRFMTH(flipTH int) int {
	switch {
	case flipTH >= 25000:
		return 256
	case flipTH >= 6250:
		return 128
	case flipTH >= 3125:
		return 64
	default:
		return 32
	}
}

// appendVictims writes the rows within radius of aggressor on both sides
// (bank-local, clamped at zero; the device clamps the upper edge) into buf,
// reusing its storage. Schemes keep one such buffer so the ACT/RFM hot path
// stays allocation-free; per the mc.Scheme contract the result is only
// valid until the scheme's next call.
//
//mithril:hotpath
func appendVictims(buf []uint32, aggressor uint32, radius int) []uint32 {
	return core.AppendVictimRows(buf[:0], aggressor, radius)
}

// Factory constructs one scheme instance from the common Options. A
// factory must return a ready-to-use scheme; configuration errors it can
// detect should panic at registration-time inputs or be deferred to the
// scheme's first use — Build treats a registered name as always buildable.
type Factory func(Options) mc.Scheme

// registry maps scheme names to factories. The shipped schemes register
// themselves from init functions in their own files; out-of-tree schemes
// call Register from their package's init and become buildable by every
// consumer (spec validation, the CLI, the serve endpoint) without touching
// this package. Guarded by a mutex so late registration from plugin-style
// setup code is race-free.
var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a buildable scheme under name. It panics on an empty name,
// a nil factory, or a duplicate registration — all three are programmer
// errors at package-init time, not runtime conditions to handle.
func Register(name string, f Factory) {
	if name == "" {
		panic("mitigation: Register with empty scheme name")
	}
	if f == nil {
		panic(fmt.Sprintf("mitigation: Register(%q) with nil factory", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("mitigation: duplicate Register(%q)", name))
	}
	registry[name] = f
}

// ErrUnknownScheme is returned (wrapped, with the valid names listed) by
// Build for a name no factory is registered under. Match with errors.Is.
var ErrUnknownScheme = errors.New("unknown mitigation scheme")

// Build constructs a scheme by registered name; the empty string is an
// alias for "none". The shipped registry holds "blockhammer", "cbt",
// "graphene", "mithril", "mithril+", "none", "para", "parfm", "twice".
// An unregistered name yields an error wrapping ErrUnknownScheme that
// lists the valid names.
func Build(name string, opt Options) (mc.Scheme, error) {
	if name == "" {
		name = "none"
	}
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mitigation: %w %q (valid: %s)", ErrUnknownScheme, name, strings.Join(Names(), ", "))
	}
	return f(opt), nil
}

// Names lists the registered scheme names in sorted order. The ordering is
// a documented guarantee (and pinned by a test): consumers render the list
// in error messages, CLI help, and service responses, and a stable order
// keeps those byte-stable across registration order changes.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("none", func(Options) mc.Scheme { return mc.NoProtection{} })
}
