package trace

import "mithril/internal/mc"

// Figure 8 support: the paper characterizes lbm's large-object-sweep
// behaviour by plotting accessed rows over a large window, a small window,
// and the activation pattern within the small window. RowSeries extracts
// exactly those series from a generator.

// RowSample is one point of the Figure 8 scatter plots.
type RowSample struct {
	Index int // access sequence number (proxy for time)
	Row   int
	Bank  int
}

// RowSeries replays n accesses of gen through the address mapper and
// returns the touched (row, bank) sequence.
func RowSeries(gen Generator, mapper *mc.AddressMapper, n int) []RowSample {
	out := make([]RowSample, 0, n)
	space := mapper.AddressSpace()
	for i := 0; i < n; i++ {
		a := gen.Next()
		loc := mapper.Map(a.Addr % space)
		out = append(out, RowSample{Index: i, Row: loc.Row, Bank: loc.GlobalBank})
	}
	return out
}

// ActivationSeries filters RowSeries down to the accesses that would
// activate a row under an open-page policy with per-bank open-row state —
// the Figure 8(c) view. Conflicting accesses from other banks are retained
// per bank. totalBanks sizes the dense open-row state (use
// Params.TotalBanks() of the mapper that produced the samples).
func ActivationSeries(samples []RowSample, totalBanks int) []RowSample {
	open := make([]int, totalBanks) // per global bank: open row
	for i := range open {
		open[i] = -1
	}
	acts := make([]RowSample, 0, len(samples)/4+1)
	for _, s := range samples {
		if open[s.Bank] != s.Row {
			open[s.Bank] = s.Row
			acts = append(acts, s)
		}
	}
	return acts
}

// ConcentrationStats quantifies the paper's observation: within a small
// window, accesses concentrate on few rows (high per-row counts) while the
// large-window footprint is wide. It reports the number of distinct rows
// and the maximum accesses to a single row within the sample.
func ConcentrationStats(samples []RowSample) (distinctRows, maxPerRow int) {
	counts := map[[2]int]int{}
	for _, s := range samples {
		k := [2]int{s.Bank, s.Row}
		counts[k]++
		if counts[k] > maxPerRow {
			maxPerRow = counts[k]
		}
	}
	return len(counts), maxPerRow
}
