package dram

import (
	"testing"

	"mithril/internal/timing"
)

func smallParams() timing.Params {
	p := timing.DDR5()
	p.Rows = 1024
	p.RefreshGroups = 128
	return p
}

func TestBankRowHitVsMiss(t *testing.T) {
	p := smallParams()
	b := NewBank(p)
	activated, actAt, data := b.Access(0, 5, false, 0)
	if !activated || actAt != 0 {
		t.Fatalf("first access should activate at t=0, got (%v, %v)", activated, actAt)
	}
	wantFirst := p.TRCD + p.TCL + p.TBURST
	if data != wantFirst {
		t.Fatalf("row-miss latency = %v, want %v", data, wantFirst)
	}
	// Hit on the open row: no ACT, only column time.
	activated, _, data2 := b.Access(data, 5, false, 0)
	if activated {
		t.Fatal("row hit must not activate")
	}
	if data2 >= data+p.TRCD+p.TCL+p.TBURST {
		t.Fatalf("row hit slower than a miss: %v", data2-data)
	}
	s := b.Stats()
	if s.ACTs != 1 || s.RowHits != 1 || s.RowMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBankRowConflictPaysPrechargePlusActivate(t *testing.T) {
	p := smallParams()
	b := NewBank(p)
	_, _, data := b.Access(0, 5, false, 0)
	_, act2, _ := b.Access(data, 9, false, 0)
	// Conflict: PRE cannot start before tRAS; ACT = PRE + tRP.
	if act2 < p.TRAS+p.TRP {
		t.Fatalf("conflict ACT at %v, want ≥ tRAS+tRP = %v", act2, p.TRAS+p.TRP)
	}
	if b.Stats().RowConflicts != 1 {
		t.Fatalf("conflict not counted: %+v", b.Stats())
	}
}

func TestBankTRCEnforcedBetweenActivations(t *testing.T) {
	p := smallParams()
	b := NewBank(p)
	_, act1, _ := b.Access(0, 1, false, 0)
	b.Precharge(act1 + p.TRAS)
	_, act2, _ := b.Access(act1+p.TRAS, 2, false, 0)
	if act2-act1 < p.TRC {
		t.Fatalf("ACT-to-ACT %v < tRC %v", act2-act1, p.TRC)
	}
}

func TestRankTFAWLimitsActivationBurst(t *testing.T) {
	p := smallParams()
	d := NewDevice(p, 1<<30, nil)
	// Five back-to-back activations on different banks of rank 0: the
	// fifth must wait for tFAW after the first.
	var first, fifth timing.PicoSeconds
	for i := 0; i < 5; i++ {
		at := d.ActivateOnly(i, 10, 0)
		if i == 0 {
			first = at - p.TRC
		}
		if i == 4 {
			fifth = at - p.TRC
		}
	}
	if fifth-first < p.TFAW {
		t.Fatalf("5th ACT only %v after 1st, want ≥ tFAW %v", fifth-first, p.TFAW)
	}
}

func TestAutoRefreshSweepResetsDisturbance(t *testing.T) {
	p := smallParams() // 1024 rows, 128 groups → 8 rows per REF
	d := NewDevice(p, 1000, nil)
	// Hammer rows adjacent to row 3 (group 0 covers rows 0..7).
	for i := 0; i < 500; i++ {
		d.ActivateOnly(0, 2, timing.PicoSeconds(i)*p.TRC)
		d.ActivateOnly(0, 4, timing.PicoSeconds(i)*p.TRC)
	}
	if got := d.Checker(0).Disturbance(3); got != 1000 {
		t.Fatalf("disturbance = %v, want 1000", got)
	}
	d.IssueREF(0, timing.PicoSeconds(1000)*p.TRC)
	if got := d.Checker(0).Disturbance(3); got != 0 {
		t.Fatalf("REF of group 0 should reset row 3, disturbance = %v", got)
	}
	// Row 9 (group 1) untouched by the first sweep.
	d.ActivateOnly(0, 8, timing.PicoSeconds(2000)*p.TRC)
	if got := d.Checker(0).Disturbance(9); got != 1 {
		t.Fatalf("row 9 should retain disturbance, got %v", got)
	}
	if st := d.Bank(0).Stats(); st.AutoRefreshes != 1 {
		t.Fatalf("REF not counted: %+v", st)
	}
}

func TestRefreshGroupPointerWraps(t *testing.T) {
	p := smallParams()
	d := NewDevice(p, 1000, nil)
	for i := 0; i < p.RefreshGroups+3; i++ {
		d.IssueREF(0, timing.PicoSeconds(i)*p.TREFI)
	}
	if got := d.refGroup[0]; got != 3 {
		t.Fatalf("group pointer = %d, want 3 after wrap", got)
	}
}

func TestREFOccupiesAllBanksOfRank(t *testing.T) {
	p := smallParams()
	d := NewDevice(p, 1000, nil)
	end := d.IssueREF(0, 0)
	if end != p.TRFC {
		t.Fatalf("REF end = %v, want tRFC = %v", end, p.TRFC)
	}
	for b := 0; b < p.Banks; b++ {
		if d.Bank(b).Available(p.TRFC - 1) {
			t.Fatalf("bank %d should be busy during REF", b)
		}
		if !d.Bank(b).Available(p.TRFC) {
			t.Fatalf("bank %d should be free after REF", b)
		}
	}
	// Banks of the second rank (channel 1) are unaffected.
	if !d.Bank(p.Banks).Available(0) {
		t.Fatal("other rank should be unaffected by this REF")
	}
}

func TestRFMWindowAndPreventiveRefresh(t *testing.T) {
	p := smallParams()
	d := NewDevice(p, 1000, nil)
	for i := 0; i < 300; i++ {
		d.ActivateOnly(2, 100, timing.PicoSeconds(i)*p.TRC)
	}
	end := d.IssueRFM(2, timing.PicoSeconds(300)*p.TRC)
	if end <= timing.PicoSeconds(300)*p.TRC {
		t.Fatal("RFM window should extend past its start")
	}
	d.PreventiveRefresh(2, []uint32{99, 101})
	if got := d.Checker(2).Disturbance(99); got != 0 {
		t.Fatalf("victim 99 not refreshed: %v", got)
	}
	st := d.Bank(2).Stats()
	if st.RFMs != 1 || st.PreventiveRows != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPreventiveRefreshIgnoresOutOfRangeRows(t *testing.T) {
	p := smallParams()
	d := NewDevice(p, 1000, nil)
	d.PreventiveRefresh(0, []uint32{uint32(p.Rows), 5})
	if st := d.Bank(0).Stats(); st.PreventiveRows != 1 {
		t.Fatalf("only in-range rows should count, got %d", st.PreventiveRows)
	}
}

func TestARRWindowScalesWithVictims(t *testing.T) {
	p := smallParams()
	d := NewDevice(p, 1000, nil)
	end2 := d.IssueARR(0, 2, 0)
	d2 := NewDevice(p, 1000, nil)
	end6 := d2.IssueARR(0, 6, 0)
	if end6 != 3*end2 {
		t.Fatalf("6-row ARR = %v, want 3× the 2-row window %v", end6, end2)
	}
}

func TestDeviceAggregation(t *testing.T) {
	p := smallParams()
	d := NewDevice(p, 50, nil)
	for i := 0; i < 100; i++ {
		d.ActivateOnly(0, 10, timing.PicoSeconds(i)*p.TRC)
		d.ActivateOnly(1, 20, timing.PicoSeconds(i)*p.TRC)
	}
	tot := d.TotalStats()
	if tot.ACTs != 200 {
		t.Fatalf("total ACTs = %d, want 200", tot.ACTs)
	}
	rep := d.SafetyReport()
	if rep.Safe() {
		t.Fatal("hammering at FlipTH=50 should have flipped")
	}
	if rep.ACTs != 200 {
		t.Fatalf("report ACTs = %d, want 200", rep.ACTs)
	}
}

func TestDeviceAccessDataPath(t *testing.T) {
	p := smallParams()
	d := NewDevice(p, 1<<30, nil)
	activated, dataAt := d.Access(0, 7, false, 0)
	if !activated {
		t.Fatal("first access should activate")
	}
	if dataAt != p.TRCD+p.TCL+p.TBURST {
		t.Fatalf("read latency = %v", dataAt)
	}
	if d.Bank(0).OpenRow() != 7 {
		t.Fatal("row should remain open (open-page)")
	}
	// Write on the open row.
	d.Access(0, 7, true, dataAt)
	s := d.Bank(0).Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDevicePanicsOnBadIndices(t *testing.T) {
	p := smallParams()
	d := NewDevice(p, 1000, nil)
	for _, fn := range []func(){
		func() { d.Access(-1, 0, false, 0) },
		func() { d.Access(p.TotalBanks(), 0, false, 0) },
		func() { d.IssueREF(99, 0) },
		func() { d.Bank(0).Access(0, p.Rows, false, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
