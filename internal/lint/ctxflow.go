package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the repo's cancellation-propagation contract: every
// cancellable path from Engine entry points down to the simulator core
// must carry the caller's context, so a consumer break or client
// disconnect actually stops the work.
//
//  1. context.Background() and context.TODO() are banned outside package
//     main, tests, and //mithril:allow ctxflow sites. The allowed sites
//     are the documented deprecated ctx-less shims (mithril.Run,
//     sweep.Run, sim.Run, Spec.RunAt) — each carries an explained allow.
//  2. Everywhere, package main included: a function that receives a
//     context.Context (directly or captured from an enclosing function)
//     must thread it — minting a fresh Background/TODO root there severs
//     the cancellation chain. Passing a nil Context is flagged the same
//     way.
//  3. A context.Context must never be stored in a struct field (the
//     standard library's own rule): contexts are call-scoped, and a
//     struct-held ctx outlives the call that created it.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "thread the caller's ctx; no context.Background outside main/tests/allows; no ctx struct fields",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					checkCtxBody(pass, d.Body, isMain, hasCtxParam(pass, d.Type))
				}
			case *ast.GenDecl:
				checkCtxFields(pass, d)
			}
		}
	}
	return nil
}

// checkCtxFields flags struct fields of type context.Context in type
// declarations.
func checkCtxFields(pass *Pass, decl *ast.GenDecl) {
	ast.Inspect(decl, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			if tv, okTV := pass.TypesInfo.Types[field.Type]; okTV && isContextType(tv.Type) {
				pass.Reportf(field.Type.Pos(), "context.Context stored in a struct field (contexts are call-scoped; pass ctx as a parameter)")
			}
		}
		return true
	})
}

// checkCtxBody walks one function body. hasCtx tracks whether a
// context.Context is in scope — a parameter of this function or of any
// enclosing one (closures capture their enclosing ctx).
func checkCtxBody(pass *Pass, body ast.Node, isMain, hasCtx bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			checkCtxBody(pass, nn.Body, isMain, hasCtx || hasCtxParam(pass, nn.Type))
			return false
		case *ast.CallExpr:
			if name, isRoot := ctxRootCall(pass.TypesInfo, nn); isRoot {
				switch {
				case hasCtx:
					pass.Reportf(nn.Pos(), "context.%s severs the caller's cancellation chain (thread the ctx already in scope)", name)
				case !isMain:
					pass.Reportf(nn.Pos(), "context.%s outside package main, tests, or a //mithril:allow ctxflow site (accept a ctx parameter instead)", name)
				}
			}
			checkNilCtxArgs(pass, nn)
		}
		return true
	})
}

// checkNilCtxArgs flags passing a literal nil where the callee expects a
// context.Context.
func checkNilCtxArgs(pass *Pass, call *ast.CallExpr) {
	sig := callSignature(pass.TypesInfo, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() {
			break
		}
		if !isContextType(params.At(i).Type()) {
			continue
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && id.Name == "nil" {
			if tv, okTV := pass.TypesInfo.Types[arg]; okTV {
				if basic, okB := tv.Type.(*types.Basic); okB && basic.Kind() == types.UntypedNil {
					pass.Reportf(arg.Pos(), "nil Context passed to %s (thread the caller's ctx, or context.TODO in a documented shim)", calleeName(pass, call))
				}
			}
		}
	}
}

// calleeName renders the call target for diagnostics.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	tg := pass.Graph.ResolveCall(pass.TypesInfo, call)
	if tg.Static != nil {
		return tg.Static.Name()
	}
	return "a callee"
}

// ctxRootCall reports whether call is context.Background() or
// context.TODO(), returning the function name.
func ctxRootCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}

// hasCtxParam reports whether a function type declares a context.Context
// parameter.
func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
