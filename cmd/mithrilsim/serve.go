package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"mithril"
	"mithril/internal/expspec"
	"mithril/internal/trace"
)

// maxSpecBytes bounds a POSTed spec body; real specs are a few hundred
// bytes, so anything near the limit is a mistake or an attack, not a grid.
const maxSpecBytes = 1 << 20

// serveCmd runs the HTTP service: the first service-shaped consumer of the
// Engine API. POST /run takes a spec document and streams its output rows
// back as NDJSON while the sweep executes; a client that disconnects
// mid-sweep cancels the workers through the request context. GET /healthz
// reports readiness, GET /schemes the open mitigation registry (sorted
// names), and GET /workloads and GET /attacks the open workload and
// attack-pattern registries (sorted {name, desc} objects).
func serveCmd(ctx context.Context, e env, _ []string) error {
	srv := &http.Server{
		Addr:    e.addr,
		Handler: newServeHandler(e),
		// Root every request context in the CLI's signal/timeout context:
		// Ctrl-C cancels in-flight sweeps exactly like a client disconnect.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	go func() {
		<-ctx.Done()
		// The shutdown deadline must not inherit ctx: ctx is already done
		// when this runs, and Shutdown needs a fresh 5s grace window to
		// drain in-flight responses before the listener is torn down.
		//mithril:allow ctxflow deliberate fresh root: parent ctx is already cancelled here
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()
	fmt.Fprintf(os.Stderr, "mithrilsim: serving on http://%s (POST /run)\n", e.addr)
	err := srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// newServeHandler builds the service mux. Split from serveCmd so tests
// drive it through httptest without binding the CLI's listen address.
func newServeHandler(e env) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// The stamp lets a client predict cache behaviour: rows stored
		// under another stamp (schema bump, different scheme registry)
		// will re-simulate rather than hit.
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status": "ok",
			"stamp":  mithril.ResultStoreStamp(),
			"store":  e.store != nil,
		})
	})
	mux.HandleFunc("/schemes", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(mithril.SchemeNames())
	})
	mux.HandleFunc("/workloads", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(mithril.WorkloadCatalog())
	})
	mux.HandleFunc("/attacks", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(mithril.AttackCatalog())
	})
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) { handleRun(e, w, r) })
	return mux
}

// ndjsonError is the terminal error line of an aborted stream. NDJSON has
// no trailer channel, so an error after rows have been sent arrives as a
// final object with an "error" key — consumers distinguish it from data
// rows by that key, and by the connection closing right after.
type ndjsonError struct {
	Error string `json:"error"`
}

// ndjsonSummary is the terminal line of a completed stream: the row
// count and its cached/simulated split. Consumers distinguish it from
// data rows by the "summary" key, mirroring the "error" convention; the
// same split rides the X-Mithril-Rows-Cached/-Simulated trailers for
// clients that consume trailers. Without a result store every row counts
// as simulated.
type ndjsonSummary struct {
	Summary rowSplit `json:"summary"`
}

type rowSplit struct {
	Rows      int `json:"rows"`
	Cached    int `json:"cached"`
	Simulated int `json:"simulated"`
}

// Trailer names carrying the per-request cache-effectiveness split.
const (
	trailerCached    = "X-Mithril-Rows-Cached"
	trailerSimulated = "X-Mithril-Rows-Simulated"
)

// handleRun parses the POSTed spec, executes it on the request's Engine,
// and streams each completed row as one NDJSON line. The request context
// is the cancellation root: client disconnect (or server shutdown) stops
// the sweep's workers mid-simulation.
func handleRun(e env, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a spec document to /run", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading spec: %v", err), http.StatusBadRequest)
		return
	}
	sp, err := expspec.Parse(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// trace:<path> workloads read server-local files; accepting them from
	// the network would let any client probe the server's filesystem (and
	// read fragments of it back through parse errors). Trace replays are
	// a CLI/library feature.
	for _, name := range sp.Axes.Workloads {
		if strings.HasPrefix(name, trace.TracePrefix) {
			http.Error(w, fmt.Sprintf("workload %q: trace-file workloads are not accepted over HTTP (the path would be read on the server); run the spec with the mithrilsim CLI instead", name),
				http.StatusBadRequest)
			return
		}
	}
	sc, err := sp.Scale.Resolve()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Spec-Name", sp.Name)
	// Declared before the body starts, set after the stream completes:
	// the cache-effectiveness split arrives as HTTP trailers (and as the
	// final NDJSON summary line, for clients that never look at trailers).
	w.Header().Set("Trailer", trailerCached+", "+trailerSimulated)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// No terminal progress renderer here: concurrent requests would
	// interleave redraw lines (labelled with client-supplied spec names)
	// on the operator's terminal. The -jobs override comes in through
	// WithJobs; otherwise the spec's resolved scale governs. The shared
	// result store (opened once at startup) rides in per request: rows
	// any earlier request — or an earlier process — already simulated
	// stream back immediately.
	var opts []mithril.EngineOption
	if e.jobs != 0 {
		opts = append(opts, mithril.WithJobs(e.jobs))
	}
	if e.store != nil {
		opts = append(opts, mithril.WithResultStore(e.store))
	}
	eng := mithril.NewEngine(mithril.DDR5(), opts...)
	var split rowSplit
	for row, err := range eng.StreamAt(r.Context(), sp, sc) {
		if err != nil {
			// Rows may already be on the wire; the status is committed.
			// Emit the NDJSON error line unless the client is the reason
			// we are stopping (its connection is gone anyway).
			if r.Context().Err() == nil {
				_ = enc.Encode(ndjsonError{Error: err.Error()})
			}
			return
		}
		vals, err := sp.RowValues(sc, row)
		if err != nil {
			_ = enc.Encode(ndjsonError{Error: err.Error()})
			return
		}
		// Echo the grid position so streaming consumers can reassemble
		// deterministic order without re-deriving the expansion.
		vals["row"] = row.Index
		if err := enc.Encode(vals); err != nil {
			return // client went away mid-write
		}
		if flusher != nil {
			flusher.Flush()
		}
		split.Rows++
		if row.Cached {
			split.Cached++
		} else {
			split.Simulated++
		}
	}
	_ = enc.Encode(ndjsonSummary{Summary: split})
	w.Header().Set(trailerCached, strconv.Itoa(split.Cached))
	w.Header().Set(trailerSimulated, strconv.Itoa(split.Simulated))
}
