package sweep

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunOrderingMatchesSerial(t *testing.T) {
	const n = 100
	fn := func(i int) (int, error) { return i * i, nil }
	serial, err := Run(1, n, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{0, 2, 7, n + 5} {
		parallel, err := Run(jobs, n, fn)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(parallel) != n {
			t.Fatalf("jobs=%d: len = %d", jobs, len(parallel))
		}
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Fatalf("jobs=%d: out[%d] = %d, want %d", jobs, i, parallel[i], serial[i])
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	out, err := Run(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("cell 3")
	errB := errors.New("cell 7")
	fn := func(i int) (int, error) {
		if i == 3 {
			return 0, errA
		}
		if i == 7 {
			return 0, errB
		}
		return i, nil
	}
	// Serial: the first failing cell's error, later cells never run.
	if _, err := Run(1, 10, fn); !errors.Is(err, errA) {
		t.Fatalf("serial error = %v, want cell 3", err)
	}
	// Parallel: the lowest-index error among the cells that ran wins.
	// Cancellation may skip cell 3 entirely (a worker can observe the
	// cell-7 failure between claiming 3 and running it), so either
	// failing cell's error is valid — but never a fabricated one.
	if _, err := Run(2, 10, fn); !errors.Is(err, errA) && !errors.Is(err, errB) {
		t.Fatalf("parallel error = %v, want cell 3 or cell 7", err)
	}
}

func TestRunErrorCancelsRemainingCells(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	_, err := Run(2, 1000, func(i int) (int, error) {
		started.Add(1)
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Both workers may have a cell in flight when the first error lands,
	// but the queue must not drain after that.
	if got := started.Load(); got > 10 {
		t.Fatalf("%d cells ran after first error", got)
	}
}

func TestRunPanicReachesCaller(t *testing.T) {
	// A panic in fn must be recoverable at the Run call site on the
	// parallel path exactly as on the serial one.
	for _, jobs := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "cell 5 exploded" {
					t.Errorf("jobs=%d: recovered %v, want cell 5 panic", jobs, r)
				}
			}()
			_, _ = Run(jobs, 10, func(i int) (int, error) {
				if i == 5 {
					panic("cell 5 exploded")
				}
				return i, nil
			})
			t.Errorf("jobs=%d: Run returned instead of panicking", jobs)
		}()
	}
}

func TestCacheSingleFlight(t *testing.T) {
	var c Cache[string, int]
	var fills atomic.Int64
	const goroutines = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Get("k", func() (int, error) {
				fills.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Get = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if fills.Load() != 1 {
		t.Fatalf("fill ran %d times, want 1", fills.Load())
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCacheDistinctKeysAndErrors(t *testing.T) {
	var c Cache[int, string]
	bad := errors.New("fill failed")
	if _, err := c.Get(1, func() (string, error) { return "", bad }); !errors.Is(err, bad) {
		t.Fatalf("err = %v", err)
	}
	// The error is cached: the fill does not rerun.
	if _, err := c.Get(1, func() (string, error) { return "ok", nil }); !errors.Is(err, bad) {
		t.Fatalf("cached err = %v", err)
	}
	v, err := c.Get(2, func() (string, error) { return "two", nil })
	if err != nil || v != "two" {
		t.Fatalf("Get(2) = %q, %v", v, err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}
