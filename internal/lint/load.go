package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded package. Target packages (those matching the Load
// patterns) carry parsed files and full type information; module packages
// pulled in only as dependencies carry IndexOnlyFiles — parsed for
// annotation scanning, with their type information read from export data
// by the packages that import them.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	IndexOnlyFiles []*ast.File
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *listPkgError
}

type listPkgError struct {
	Err string
}

// Load loads the packages matching patterns (go list syntax, resolved in
// dir — empty means the current directory) and type-checks each from
// source. Dependency type information comes from compiler export data:
// `go list -export` builds it into the build cache and reports the file
// per package, so loading works offline and without any module
// dependencies. Module packages in the dependency closure that do not
// match the patterns are still parsed (not type-checked) so their
// //mithril:hotpath annotations are visible to cross-package call checks.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	})
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		files, err := parseFiles(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		if lp.DepOnly {
			pkgs = append(pkgs, &Package{PkgPath: lp.ImportPath, Dir: lp.Dir, Fset: fset, IndexOnlyFiles: files})
			continue
		}
		pkg, err := check(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			PkgPath: lp.ImportPath,
			Dir:     lp.Dir,
			Fset:    fset,
			Files:   files,
			Types:   pkg.Types,
			Info:    pkg.Info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// LoadDir loads one package directly from the .go files in dir (test files
// excluded), resolving its imports from export data listed on demand. The
// package path is the directory base name prefixed by its parent — e.g.
// testdata/src/hotpathalloc/bad loads as "hotpathalloc/bad" — which keeps
// fixture packages outside the "mithril" module namespace. The go tool
// never resolves the fixture directory itself, so fixtures can live under
// testdata/, exactly like analysistest's.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		return nil, err
	}
	imports := map[string]bool{}
	for _, f := range files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err == nil && path != "" {
				imports[path] = true
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		var pats []string
		for p := range imports {
			pats = append(pats, p)
		}
		sort.Strings(pats)
		listed, err := goList(dir, pats)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	})
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	pkgPath := filepath.Base(filepath.Dir(abs)) + "/" + filepath.Base(abs)
	pkg, err := check(fset, pkgPath, files, imp)
	if err != nil {
		return nil, err
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Fset: fset, Files: files, Types: pkg.Types, Info: pkg.Info}, nil
}

// goList runs `go list -e -json -deps -export` and decodes its package
// stream.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=Dir,ImportPath,Name,Export,Standard,DepOnly,GoFiles,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var listed []*listPkg
	for {
		lp := &listPkg{}
		if err := dec.Decode(lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// checked pairs a type-checked package with its resolved expression info.
type checked struct {
	Types *types.Package
	Info  *types.Info
}

func check(fset *token.FileSet, pkgPath string, files []*ast.File, imp types.Importer) (checked, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return checked{}, fmt.Errorf("lint: type-check %s: %w", pkgPath, err)
	}
	return checked{Types: pkg, Info: info}, nil
}
