package streaming

// Wrapping counters (Section IV-E of the paper): Mithril never needs the
// absolute estimated count, only the relative order of table entries, and
// the spread Max−Min is bounded by M (Theorem 1). Counters of B bits
// therefore remain totally ordered under modular arithmetic as long as
// 2^(B-1) exceeds the maximum spread, removing the periodic table reset
// (and its two-fold threshold degradation) that Graphene pays for.

// Wrap16 is a 16-bit wrapping counter value.
type Wrap16 uint16

// WrapLess reports whether a precedes b in modular order, valid while the
// true difference is below 2^15.
func WrapLess(a, b Wrap16) bool { return int16(b-a) > 0 }

// WrapDiff returns b − a interpreted as a modular distance; callers must
// guarantee the true spread fits in 15 bits (Mithril sizes the counter CAM
// from the Theorem-1 bound to ensure exactly this).
func WrapDiff(a, b Wrap16) uint16 { return uint16(b - a) }

// WrapAdd advances a counter by delta with wraparound.
func WrapAdd(a Wrap16, delta uint16) Wrap16 { return a + Wrap16(delta) }

// WrapCounterBits returns the number of counter bits required to keep a
// wrapping counter totally ordered for a maximum spread: the smallest B with
// 2^(B-1) > spread. This sizes the Mithril count-CAM entries (Table IV).
func WrapCounterBits(maxSpread uint64) int {
	bits := 1
	for (uint64(1) << uint(bits-1)) <= maxSpread {
		bits++
	}
	return bits
}
