package mc

import "mithril/internal/timing"

// Request is one memory transaction queued at the controller.
type Request struct {
	ID      uint64
	CoreID  int
	Addr    uint64
	Write   bool
	Loc     Location
	Arrive  timing.PicoSeconds
	served  bool
	blocked timing.PicoSeconds // earliest serve time (throttling)
}

// SchedulerKind selects the request scheduling policy.
type SchedulerKind int

// Scheduling policies.
const (
	// FCFS serves strictly in arrival order.
	FCFS SchedulerKind = iota
	// FRFCFS prefers row hits, then the oldest request.
	FRFCFS
	// BLISS (Subramanian et al.): like FR-FCFS, but an application served
	// four requests in a row is blacklisted for a clearing interval,
	// bounding interference (Table III's scheduler).
	BLISS
)

// String names the policy.
func (k SchedulerKind) String() string {
	switch k {
	case FCFS:
		return "FCFS"
	case FRFCFS:
		return "FR-FCFS"
	case BLISS:
		return "BLISS"
	default:
		return "unknown"
	}
}

// blissState tracks BLISS's serve streak and blacklist per channel. The
// blacklist is a dense slice indexed by core ID, grown on demand (core
// counts are small and stable), so the scheduler's inner loop stays free of
// map lookups.
type blissState struct {
	lastCore  int
	streak    int
	blackTill []timing.PicoSeconds // per core: blacklist release time
}

// blissStreakLimit and blissClearInterval follow the BLISS paper's default
// configuration (4 consecutive requests; 10000 core cycles ≈ 2.8 µs at
// 3.6 GHz).
const (
	blissStreakLimit   = 4
	blissClearInterval = 2800 * timing.Nanosecond
)

func newBlissState() *blissState {
	return &blissState{lastCore: -1}
}

//mithril:hotpath
func (b *blissState) blacklisted(core int, now timing.PicoSeconds) bool {
	return core >= 0 && core < len(b.blackTill) && b.blackTill[core] > now
}

//mithril:hotpath
func (b *blissState) recordServe(core int, now timing.PicoSeconds) {
	if core == b.lastCore {
		b.streak++
		if b.streak >= blissStreakLimit {
			if core >= 0 {
				for core >= len(b.blackTill) {
					b.blackTill = append(b.blackTill, 0)
				}
				b.blackTill[core] = now + blissClearInterval
			}
			b.streak = 0
		}
		return
	}
	b.lastCore = core
	b.streak = 1
}

// pick selects the next serveable request index from queue, or -1.
// ready(i) reports whether request i can start at now (bank availability,
// RFM-due blocking, throttle delays); rowHit(i) reports open-row locality.
//
//mithril:hotpath
func pick(kind SchedulerKind, queue []*Request, bliss *blissState, now timing.PicoSeconds,
	ready func(int) bool, rowHit func(int) bool) int {
	best := -1
	bestHit := false
	bestWhite := false
	for i, r := range queue {
		if r.served || !ready(i) {
			continue
		}
		switch kind {
		case FCFS:
			return i // queue is in arrival order
		case FRFCFS:
			hit := rowHit(i)
			if best == -1 || (hit && !bestHit) {
				best, bestHit = i, hit
			}
		case BLISS:
			white := !bliss.blacklisted(r.CoreID, now)
			hit := rowHit(i)
			better := false
			switch {
			case best == -1:
				better = true
			case white != bestWhite:
				better = white
			case hit != bestHit:
				better = hit
			}
			if better {
				best, bestHit, bestWhite = i, hit, white
			}
		}
	}
	return best
}
