// Package attack builds the adversarial access patterns of the evaluation:
// single-, double- and multi-sided RowHammer (Section VI-A's 32-victim
// attack) and the BlockHammer performance-adversarial pattern that
// blacklists benign rows by counting-Bloom-filter collision.
package attack

import (
	"fmt"

	"mithril/internal/mc"
	"mithril/internal/trace"
)

// RowHammer cycles through a set of aggressor rows in one bank at the
// maximum rate the core can sustain (Gap = 0).
type RowHammer struct {
	name   string
	mapper *mc.AddressMapper
	locs   []mc.Location
	cursor int
	col    int
}

var _ trace.Generator = (*RowHammer)(nil)

// Name implements trace.Generator.
func (r *RowHammer) Name() string { return r.name }

// Next implements trace.Generator.
func (r *RowHammer) Next() trace.Access {
	loc := r.locs[r.cursor]
	r.cursor = (r.cursor + 1) % len(r.locs)
	// Walk the column so consecutive hammer reads are not coalesced by the
	// cache; real attacks use CLFLUSH, which the column walk approximates.
	r.col = (r.col + 7) % r.mapper.Params().ColumnsPerRow
	loc.Column = r.col
	// Uncached: RowHammer loops flush their lines (CLFLUSH) so every read
	// reaches DRAM; Serialize: the classic loop is load→flush→load.
	return trace.Access{Gap: 0, Addr: r.mapper.Compose(loc), Serialize: true, Uncached: true}
}

// AggressorRows lists the attacked rows (bank-local).
func (r *RowHammer) AggressorRows(mapper *mc.AddressMapper) []int {
	rows := make([]int, len(r.locs))
	for i, l := range r.locs {
		rows[i] = l.Row
	}
	return rows
}

// NewDoubleSided hammers the two rows around one victim.
func NewDoubleSided(mapper *mc.AddressMapper, channel, bank, victimRow int) *RowHammer {
	return newRowAttack("double-sided", mapper, channel, bank, []int{victimRow - 1, victimRow + 1})
}

// NewMultiSided hammers nVictims+1 equally spaced rows so that nVictims
// rows sit between consecutive aggressors — the TRRespass-style multi-sided
// attack (paper default: 32 victims).
func NewMultiSided(mapper *mc.AddressMapper, channel, bank, firstRow, nVictims int) *RowHammer {
	rows := make([]int, nVictims+1)
	for i := range rows {
		rows[i] = firstRow + 2*i
	}
	return newRowAttack(fmt.Sprintf("multi-sided-%d", nVictims), mapper, channel, bank, rows)
}

// NewSingleSided hammers one row.
func NewSingleSided(mapper *mc.AddressMapper, channel, bank, row int) *RowHammer {
	return newRowAttack("single-sided", mapper, channel, bank, []int{row})
}

// NewRowList hammers an explicit row list (used by the BlockHammer
// adversarial pattern, whose rows come from CBF collision search).
func NewRowList(name string, mapper *mc.AddressMapper, channel, bank int, rows []int) *RowHammer {
	return newRowAttack(name, mapper, channel, bank, rows)
}

func newRowAttack(name string, mapper *mc.AddressMapper, channel, bank int, rows []int) *RowHammer {
	if len(rows) == 0 {
		panic("attack: no aggressor rows")
	}
	p := mapper.Params()
	locs := make([]mc.Location, len(rows))
	for i, row := range rows {
		if row < 0 || row >= p.Rows {
			panic(fmt.Sprintf("attack: row %d outside bank of %d rows", row, p.Rows))
		}
		locs[i] = mc.Location{Channel: channel, Bank: bank, Row: row}
	}
	return &RowHammer{name: name, mapper: mapper, locs: locs}
}

// NewDecoy builds the TRR-evasion pattern: a double-sided pair around
// victim, interleaved with n decoy rows far from the victim that each
// receive twice the aggressors' activation rate. A sampling-based
// in-DRAM mitigation (TRR) that refreshes neighbours of the hottest
// sampled rows spends its mitigations on the decoys' neighbourhoods
// while the true aggressors keep accumulating activations — the
// many-sided evasion trick of TRRespass-class attacks. Against the
// paper's exhaustive trackers the decoys are just extra traffic.
func NewDecoy(mapper *mc.AddressMapper, channel, bank, victim, decoys int) (trace.Generator, error) {
	rows := mapper.Params().Rows
	if victim-1 < 0 || victim+1 >= rows {
		return nil, fmt.Errorf("attack: decoy victim %d has no neighbours in a bank of %d rows", victim, rows)
	}
	if decoys < 1 {
		return nil, fmt.Errorf("attack: decoy needs at least one decoy row, got %d", decoys)
	}
	// The access cycle hits every decoy twice per aggressor visit, so the
	// decoys dominate any activation sample while the pair still hammers.
	var seq []int
	for _, aggressor := range []int{victim - 1, victim + 1} {
		for i := 0; i < decoys; i++ {
			seq = append(seq, (victim+96+8*i)%rows)
		}
		seq = append(seq, aggressor)
	}
	return NewRowList(fmt.Sprintf("decoy-%d", decoys), mapper, channel, bank, seq), nil
}

// VictimRowsOfMultiSided returns the victim rows between the aggressors of
// a multi-sided attack starting at firstRow, for checker assertions.
func VictimRowsOfMultiSided(firstRow, nVictims int) []int {
	victims := make([]int, nVictims)
	for i := range victims {
		victims[i] = firstRow + 2*i + 1
	}
	return victims
}

// Throttler is implemented by mitigations whose estimator can be probed for
// collision rows (BlockHammer). The adversarial builder keeps the
// dependency inverted so this package needs no mitigation import.
type Throttler interface {
	// CollidingRows searches up to max rows (≠ target) whose estimator
	// slots overlap target's in the given bank, i.e. activating them
	// inflates target's estimate.
	CollidingRows(globalBank int, targetRow uint32, max int) []uint32
}

// NewBlockHammerAdversary builds the Figure 10(c) pattern: it hammers rows
// that collide (in the scheme's counting Bloom filters) with benignHotRow,
// activating each just enough to push the shared counters past the
// blacklist threshold so the benign row gets throttled. The oracle is the
// deployed scheme's collision interface; callers holding an mc.Scheme
// extract it with a checked type assertion (`scheme.(Throttler)`), which
// yields nil for schemes that expose none. With a nil oracle (i.e. the
// scheme is not BlockHammer) the pattern degrades into a benign-looking
// multi-row walk — exactly how the paper's adversarial pattern behaves
// against non-throttling schemes. Taking the named interface instead of
// interface{} makes a wrong argument (a workload, a mapper) a compile
// error instead of a silent fallback.
func NewBlockHammerAdversary(mapper *mc.AddressMapper, channel, bank int, benignHotRow int, oracle Throttler) trace.Generator {
	loc := mc.Location{Channel: channel, Bank: bank, Row: benignHotRow}
	globalBank := mapper.Map(mapper.Compose(loc)).GlobalBank
	var rows []int
	if oracle != nil {
		for _, r := range oracle.CollidingRows(globalBank, uint32(benignHotRow), 8) {
			rows = append(rows, int(r))
		}
	}
	if len(rows) == 0 {
		// Fallback walk near (but not adjacent to) the benign row.
		for i := 0; i < 8; i++ {
			rows = append(rows, (benignHotRow+64+8*i)%mapper.Params().Rows)
		}
	}
	return NewRowList("bh-adversarial", mapper, channel, bank, rows)
}
