package analysis

import (
	"math"
	"testing"

	"mithril/internal/timing"
)

// within reports |got/want − 1| ≤ tol, the calibration criterion we use
// against the paper's Table IV (the paper's numbers come from RTL synthesis;
// ours from analytic sizing — we require the same magnitude, not identity).
func within(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got/want-1) <= tol
}

func TestBlockHammerTableMatchesPaper(t *testing.T) {
	// The (CBF size, NBL) pairs are taken verbatim from Section VI-A, so
	// the derived sizes should match Table IV tightly.
	want := map[int]float64{50000: 3.75, 25000: 3.5, 12500: 3.25, 6250: 6.0, 3125: 11.0, 1500: 20.0}
	for f, w := range want {
		if got := BlockHammerTableKB(f); !within(got, w, 0.15) {
			t.Errorf("BlockHammer @ %d = %.2f KB, paper %.2f", f, got, w)
		}
	}
}

func TestGrapheneTableShape(t *testing.T) {
	p := timing.DDR5()
	paper := map[int]float64{50000: 0.14, 25000: 0.21, 12500: 0.51, 6250: 0.99, 3125: 1.92, 1500: 3.7}
	for f, w := range paper {
		got := GrapheneTableKB(p, f)
		if !within(got, w, 0.6) {
			t.Errorf("Graphene @ %d = %.3f KB, paper %.2f (want same magnitude)", f, got, w)
		}
	}
	if !(GrapheneTableKB(p, 1500) > GrapheneTableKB(p, 50000)) {
		t.Error("Graphene table must grow as FlipTH shrinks")
	}
}

func TestTWiCeTableShape(t *testing.T) {
	p := timing.DDR5()
	paper := map[int]float64{50000: 2.79, 25000: 5.08, 12500: 9.54, 6250: 18.27, 3125: 35.29, 1500: 71.26}
	for f, w := range paper {
		got := TWiCeTableKB(p, f)
		if !within(got, w, 0.4) {
			t.Errorf("TWiCe @ %d = %.2f KB, paper %.2f", f, got, w)
		}
	}
}

func TestCBTTableShape(t *testing.T) {
	p := timing.DDR5()
	paper := map[int]float64{50000: 0.47, 25000: 0.97, 12500: 2.0, 6250: 4.12, 3125: 8.5, 1500: 17.5}
	for f, w := range paper {
		got := CBTTableKB(p, f)
		if !within(got, w, 0.5) {
			t.Errorf("CBT @ %d = %.2f KB, paper %.2f", f, got, w)
		}
	}
}

func TestMithrilTableMatchesPaperMagnitude(t *testing.T) {
	p := timing.DDR5()
	cases := []struct {
		flipTH, rfmTH int
		paper         float64
	}{
		{50000, 256, 0.08}, {25000, 256, 0.17}, {12500, 256, 0.41}, {6250, 256, 1.45},
		{6250, 128, 0.84}, {3125, 128, 3.76},
		{3125, 64, 1.78},
		{1500, 32, 4.64},
	}
	for _, c := range cases {
		got, ok := MithrilTableKB(p, c.flipTH, c.rfmTH, 0)
		if !ok {
			t.Errorf("Mithril-%d @ %d infeasible, paper has %.2f KB", c.rfmTH, c.flipTH, c.paper)
			continue
		}
		if !within(got, c.paper, 0.6) {
			t.Errorf("Mithril-%d @ %d = %.3f KB, paper %.2f", c.rfmTH, c.flipTH, got, c.paper)
		}
	}
}

func TestMithrilSmallerThanBlockHammerEverywhere(t *testing.T) {
	// Figure 10(e): Mithril's table is 4×–60× smaller than BlockHammer's
	// at every FlipTH (using the best feasible RFMTH per level as the paper
	// does).
	p := timing.DDR5()
	for _, f := range StandardFlipTHs {
		var best float64
		found := false
		for _, r := range []int{256, 128, 64, 32} {
			if kb, ok := MithrilTableKB(p, f, r, 0); ok {
				if !found || kb < best {
					best, found = kb, true
				}
			}
		}
		if !found {
			t.Fatalf("no feasible Mithril config at FlipTH=%d", f)
		}
		bh := BlockHammerTableKB(f)
		ratio := bh / best
		if ratio < 2 {
			t.Errorf("FlipTH=%d: BlockHammer/Mithril ratio %.1f, want ≥ 4× (paper: 4–60×)", f, ratio)
		}
	}
}

func TestTableIVStructure(t *testing.T) {
	p := timing.DDR5()
	rows := TableIV(p)
	if len(rows) != 8 {
		t.Fatalf("TableIV has %d rows, want 8", len(rows))
	}
	paper := PaperTableIV()
	if len(paper) != 8 {
		t.Fatalf("PaperTableIV has %d rows, want 8", len(paper))
	}
	// Infeasible cells must agree with the paper's dashes.
	for i, row := range rows {
		for _, f := range StandardFlipTHs {
			gotNaN := math.IsNaN(row.KB[f])
			wantNaN := math.IsNaN(paper[i].KB[f])
			if gotNaN != wantNaN {
				t.Errorf("%s @ %d: feasibility mismatch (got NaN=%v, paper NaN=%v)", row.Scheme, f, gotNaN, wantNaN)
			}
		}
	}
}

func TestBlockHammerConfigForInterpolates(t *testing.T) {
	c, n := BlockHammerConfigFor(5000) // nearest standard level: 6250
	if c != 2048 || n != 2100 {
		t.Fatalf("BlockHammerConfigFor(5000) = (%d, %d), want (2048, 2100)", c, n)
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 5: "5", 256: "256", -32: "-32"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}
