// Package sweep is the concurrent experiment engine: it fans independent
// sweep cells out over a fixed worker pool with deterministic result
// ordering (parallel output is identical to a serial loop), streams results
// in completion order for long-running consumers, honours context
// cancellation cooperatively, and provides a single-flight cache so shared
// work — unprotected baseline simulations — runs exactly once no matter how
// many cells need it.
package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// isCancellation reports whether err is a context cancellation/deadline —
// the error shape a cell aborted by the sweep's own first-error cancel
// returns, as opposed to a genuine cell failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// DefaultJobs is the worker count used when a sweep is configured with
// jobs <= 0: one worker per available core.
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// Run executes fn(i) for every i in [0, n) on up to jobs workers and
// returns the results in index order, so a parallel sweep emits byte-
// identical output to the serial path. jobs <= 0 means DefaultJobs();
// jobs == 1 runs the plain serial loop. On failure, the error from the
// lowest-index failing cell that ran is returned (a lower-index cell
// skipped by cancellation may itself have failed), cells that have not
// started are cancelled, and in-flight cells finish (their results are
// discarded).
func Run[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	//mithril:allow ctxflow deprecated ctx-less shim; RunContext is the ctx path
	return RunContext(context.Background(), jobs, n,
		func(_ context.Context, i int) (T, error) { return fn(i) })
}

// RunContext is Run with cooperative cancellation: the sweep stops claiming
// new cells as soon as ctx is done (in-flight cells finish — or abort
// themselves, if fn threads its ctx into cancellable work) and returns
// ctx's error. fn receives a context derived from ctx that is additionally
// cancelled when any cell fails, so a long-running cell can abandon work
// the sweep will discard anyway. A cell error still wins over the derived
// cancellation it causes; a parent cancellation wins over errors that cells
// report because of it.
func RunContext[T any](ctx context.Context, jobs, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if jobs <= 0 {
		jobs = DefaultJobs()
	}
	if jobs > n {
		jobs = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]T, n)
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(cctx, i)
			if err != nil {
				return nil, sweepErr(ctx, err)
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next      atomic.Int64
		failed    atomic.Bool
		mu        sync.Mutex
		firstErr  error // lowest-index genuine cell error
		errIdx    = n
		cancelErr error // first cancellation-shaped cell error, the fallback
		panicked  any
		wg        sync.WaitGroup
	)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panic in fn must stay recoverable by Run's caller, as it
			// is on the serial path: capture it, cancel the sweep, and
			// re-raise on the calling goroutine after Wait.
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
					failed.Store(true)
					cancel()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() || cctx.Err() != nil {
					return
				}
				v, err := fn(cctx, i)
				if err != nil {
					mu.Lock()
					// Cancellation-shaped errors are almost always cells
					// aborted by another cell's failure (the derived ctx
					// cancel) — they must not mask the genuine error at
					// any index. Keep them only as a fallback for the
					// degenerate sweep whose cells all cancelled
					// themselves.
					if isCancellation(err) {
						if cancelErr == nil {
							cancelErr = err
						}
					} else if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
					cancel()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	if firstErr != nil {
		return nil, sweepErr(ctx, firstErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	return out, nil
}

// sweepErr reports the parent cancellation when it is what aborted the
// sweep: a cell that fails because its derived context was cancelled should
// not masquerade as a real cell error.
func sweepErr(ctx context.Context, cellErr error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return cellErr
}

// Indexed tags a streamed cell result with the cell index it belongs to,
// since streaming delivers results in completion order, not index order.
type Indexed[T any] struct {
	I int
	V T
}

// StreamContext executes fn(i) for every i in [0, n) on up to jobs workers
// and yields each result as it completes — completion order, NOT index
// order (consumers that need index order reassemble via Indexed.I). The
// sequence terminates early, yielding the error once with a zero Indexed
// value, when a cell fails or ctx is cancelled; breaking out of the range
// cancels the remaining cells. However the sequence ends, all worker
// goroutines have exited by the time it returns — streams do not leak.
// fn receives a context derived from ctx, cancelled on first error or
// consumer abandonment, exactly as in RunContext.
func StreamContext[T any](ctx context.Context, jobs, n int, fn func(ctx context.Context, i int) (T, error)) func(yield func(Indexed[T], error) bool) {
	return func(yield func(Indexed[T], error) bool) {
		if jobs <= 0 {
			jobs = DefaultJobs()
		}
		if jobs > n {
			jobs = n
		}
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		if jobs <= 1 {
			for i := 0; i < n; i++ {
				if err := ctx.Err(); err != nil {
					yield(Indexed[T]{}, err)
					return
				}
				v, err := fn(cctx, i)
				if err != nil {
					yield(Indexed[T]{}, sweepErr(ctx, err))
					return
				}
				if !yield(Indexed[T]{I: i, V: v}, nil) {
					return
				}
			}
			return
		}

		type item struct {
			idx int
			val T
			err error
		}
		var (
			ch       = make(chan item)
			next     atomic.Int64
			mu       sync.Mutex
			panicked any
			wg       sync.WaitGroup
		)
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						mu.Lock()
						if panicked == nil {
							panicked = r
						}
						mu.Unlock()
						cancel()
					}
				}()
				for {
					i := int(next.Add(1)) - 1
					if i >= n || cctx.Err() != nil {
						return
					}
					v, err := fn(cctx, i)
					select {
					case ch <- item{idx: i, val: v, err: err}:
						if err != nil {
							cancel()
							return
						}
					case <-cctx.Done():
						return
					}
				}
			}()
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		// However the consumer leaves (break, error, exhaustion), cancel
		// the workers, drain the channel so none block on send, and wait
		// for them all to exit before returning.
		defer func() {
			cancel()
			for {
				select {
				case <-ch:
				case <-done:
					if panicked != nil {
						panic(panicked)
					}
					return
				}
			}
		}()
		delivered := 0
		for delivered < n {
			select {
			case it := <-ch:
				if it.err != nil {
					yield(Indexed[T]{}, sweepErr(ctx, it.err))
					return
				}
				delivered++
				if !yield(Indexed[T]{I: it.idx, V: it.val}, nil) {
					return
				}
			case <-done:
				// Workers exited without delivering everything: parent
				// cancellation or a worker panic (re-raised by the defer).
				if err := ctx.Err(); err != nil {
					yield(Indexed[T]{}, err)
				}
				return
			}
		}
	}
}

// Cache is a concurrency-safe single-flight memo: concurrent Get calls
// with the same key share one fill, so a baseline keyed by (FlipTH,
// workload) is simulated exactly once per sweep. The zero value is ready
// to use.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Get returns the cached value for k, filling it with fill on first use.
// A fill error is cached too: every waiter for that key observes it.
func (c *Cache[K, V]) Get(k K, fill func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*cacheEntry[V])
	}
	e := c.m[k]
	if e == nil {
		e = &cacheEntry[V]{}
		c.m[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fill() })
	return e.val, e.err
}

// Forget drops the entry for k so a later Get refills it. Callers use it
// to evict cancellation errors from long-lived caches: a fill aborted by
// context cancellation is not a fact about the key, and must not poison
// every future Get the way a genuine fill error should.
func (c *Cache[K, V]) Forget(k K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, k)
}

// Len reports the number of distinct keys filled or in flight.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
