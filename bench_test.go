package mithril

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus ablation benches
// for the design choices DESIGN.md calls out. Simulation-backed benches run
// at QuickScale and report the headline metrics via b.ReportMetric, so a
// single -benchtime=1x pass regenerates every result.

import (
	"context"
	"testing"

	"mithril/internal/analysis"
	"mithril/internal/core"
	"mithril/internal/dram"
	"mithril/internal/mc"
	"mithril/internal/mitigation"
	"mithril/internal/streaming"
	"mithril/internal/timing"
)

func benchScale() Scale {
	sc := QuickScale()
	sc.InstrPerCore = 10_000
	return sc
}

// BenchmarkFigure2 regenerates the ARR-vs-RFM Graphene incompatibility
// curves (analytic).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := Figure2Data()
		if i == b.N-1 {
			b.ReportMetric(pts[3].ARR, "ARR_safe_flipTH_at_2K")
			b.ReportMetric(pts[3].RFM[64], "RFM64_safe_flipTH_at_2K")
		}
	}
}

// BenchmarkFigure6 regenerates the configuration curves (analytic).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := Figure6Data()
		if i == b.N-1 {
			for _, s := range series {
				if s.FlipTH == 6250 {
					for _, c := range s.CbS {
						if c.RFMTH == 128 {
							b.ReportMetric(float64(c.NEntry), "Nentry_6.25K_rfm128")
							b.ReportMetric(c.TableKB, "KB_6.25K_rfm128")
						}
					}
				}
			}
		}
	}
}

// BenchmarkFigure7 runs the adaptive-refresh AdTH sweep (simulation).
func BenchmarkFigure7(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		pts, err := Figure7Data(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(pts[0].EnergyOverheadPct["multi-programmed"], "energy%_AdTH0")
			b.ReportMetric(pts[4].EnergyOverheadPct["multi-programmed"], "energy%_AdTH200")
			b.ReportMetric(pts[4].AdditionalNEntryPct, "extra_Nentry%_AdTH200")
		}
	}
}

// BenchmarkFigure8 regenerates the large-object-sweep characterization.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := Figure8()
		if i == b.N-1 {
			b.ReportMetric(float64(d.SmallDistinct), "rows_small_window")
			b.ReportMetric(float64(d.LargeDistinct), "rows_large_window")
			b.ReportMetric(float64(d.SmallMaxRow), "max_accesses_per_row")
		}
	}
}

// BenchmarkFigure9 compares Mithril and Mithril+ across the (FlipTH, RFMTH)
// grid (simulation).
func BenchmarkFigure9(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		pts, err := Figure9Data(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(pts) > 0 {
			last := pts[len(pts)-1] // lowest FlipTH point
			b.ReportMetric(last.Mithril, "mithril_perf%")
			b.ReportMetric(last.MithrilPlus, "mithril+_perf%")
			b.ReportMetric(last.TableKB, "tableKB")
		}
	}
}

// BenchmarkFigure10Perf runs the RFM-compatible comparison (simulation):
// normal, multi-sided RH, and BlockHammer-adversarial workloads.
func BenchmarkFigure10Perf(b *testing.B) {
	sc := benchScale()
	sc.FlipTHs = []int{1500}
	for i := 0; i < b.N; i++ {
		pts, err := Figure10Data(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				switch {
				case p.Scheme == "mithril" && p.Workload == "normal":
					b.ReportMetric(p.RelativePerformance, "mithril_normal%")
				case p.Scheme == "mithril+" && p.Workload == "normal":
					b.ReportMetric(p.RelativePerformance, "mithril+_normal%")
				case p.Scheme == "blockhammer" && p.Workload == "bh-adversarial/blockhammer":
					b.ReportMetric(p.RelativePerformance, "blockhammer_adversarial%")
				}
				if !p.Safe {
					b.Fatalf("unsafe point: %v", p)
				}
			}
		}
	}
}

// BenchmarkFigure10Energy reports the dynamic-energy comparison on normal
// workloads (Figure 10(d)).
func BenchmarkFigure10Energy(b *testing.B) {
	sc := benchScale()
	sc.FlipTHs = []int{1500}
	for i := 0; i < b.N; i++ {
		pts, err := Figure10Data(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				if p.Workload == "normal" {
					b.ReportMetric(p.EnergyOverheadPct, p.Scheme+"_energy%")
				}
			}
		}
	}
}

// BenchmarkFigure10Area reports the BlockHammer-vs-Mithril table sizes
// (Figure 10(e), analytic).
func BenchmarkFigure10Area(b *testing.B) {
	p := timing.DDR5()
	for i := 0; i < b.N; i++ {
		for _, f := range analysis.StandardFlipTHs {
			bh := analysis.BlockHammerTableKB(f)
			mt, ok := analysis.MithrilTableKB(p, f, mitigation.PaperRFMTH(f), 0)
			if i == b.N-1 && ok && f == 1500 {
				b.ReportMetric(bh, "blockhammer_KB_1.5K")
				b.ReportMetric(mt, "mithril_KB_1.5K")
				b.ReportMetric(bh/mt, "ratio_1.5K")
			}
		}
	}
}

// BenchmarkFigure11 runs the RFM-non-compatible baseline comparison.
func BenchmarkFigure11(b *testing.B) {
	sc := benchScale()
	sc.FlipTHs = []int{6250}
	for i := 0; i < b.N; i++ {
		pts, err := Figure11Data(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				if p.Workload == "normal" {
					b.ReportMetric(p.RelativePerformance, p.Scheme+"_normal%")
				}
			}
		}
	}
}

// BenchmarkTable4 regenerates the per-bank area table (analytic).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		computed, _ := Table4Data()
		if i == b.N-1 {
			for _, row := range computed {
				if row.Scheme == "Mithril-32 @ DRAM" {
					b.ReportMetric(row.KB[1500], "mithril32_KB_1.5K")
				}
				if row.Scheme == "BlockHammer @ MC" {
					b.ReportMetric(row.KB[1500], "blockhammer_KB_1.5K")
				}
			}
		}
	}
}

// BenchmarkSafetySweep runs the end-to-end attack verdict sweep (E11).
func BenchmarkSafetySweep(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		results, err := SafetySweep(sc, 2000)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			unsafe := 0
			for _, r := range results {
				if r.Scheme != "none" && !r.Safe {
					unsafe++
				}
			}
			b.ReportMetric(float64(unsafe), "protected_schemes_flipped")
		}
	}
}

// BenchmarkPARFMFailureModel evaluates the Appendix C recurrence.
func BenchmarkPARFMFailureModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, ok := PARFMRequiredRFMTH(3125)
		if !ok {
			b.Fatal("no feasible RFMTH")
		}
		if i == b.N-1 {
			_, system := PARFMFailure(3125, r)
			b.ReportMetric(float64(r), "required_RFMTH_3.125K")
			b.ReportMetric(system*1e18, "system_failure_x1e18")
		}
	}
}

// ------------------------------------------------------------- Ablations

// BenchmarkAblationGreedyVsReactive quantifies Section III-A: under the
// RFM interface, greedy selection keeps the worst row's unrefreshed count
// bounded while a reactive threshold scheme lets it run far higher.
func BenchmarkAblationGreedyVsReactive(b *testing.B) {
	const nEntry, rfmTH, streamLen = 64, 64, 200_000
	for i := 0; i < b.N; i++ {
		// Greedy (Mithril).
		m := core.New(core.Config{NEntry: nEntry, RFMTH: rfmTH})
		acts := map[uint32]uint64{}
		var worstGreedy uint64
		for j := 0; j < streamLen; j++ {
			row := uint32(j % (nEntry + 1))
			m.OnActivate(row)
			acts[row]++
			if acts[row] > worstGreedy {
				worstGreedy = acts[row]
			}
			if j%rfmTH == rfmTH-1 {
				if aggressor, _, ok := m.OnRFM(); ok {
					acts[aggressor] = 0
				}
			}
		}
		// Reactive: refresh only rows whose estimate crosses a threshold,
		// executed at the next RFM slot (one per interval).
		table := streaming.NewSpaceSaving(nEntry)
		reactive := map[uint32]uint64{}
		pendingQ := []uint32{}
		var worstReactive uint64
		const threshold = 2000
		for j := 0; j < streamLen; j++ {
			row := uint32(j % (nEntry + 1))
			table.Observe(row)
			reactive[row]++
			if reactive[row] > worstReactive {
				worstReactive = reactive[row]
			}
			if table.Estimate(row) >= threshold && len(pendingQ) < nEntry {
				pendingQ = append(pendingQ, row)
			}
			if j%rfmTH == rfmTH-1 && len(pendingQ) > 0 {
				r := pendingQ[0]
				pendingQ = pendingQ[1:]
				reactive[r] = 0
			}
		}
		if i == b.N-1 {
			b.ReportMetric(float64(worstGreedy), "greedy_max_unrefreshed")
			b.ReportMetric(float64(worstReactive), "reactive_max_unrefreshed")
		}
	}
}

// BenchmarkAblationScanTable measures the scan-based reference CbS.
func BenchmarkAblationScanTable(b *testing.B) {
	benchTable(b, true)
}

// BenchmarkAblationStreamSummary measures the O(1) Stream-Summary table.
func BenchmarkAblationStreamSummary(b *testing.B) {
	benchTable(b, false)
}

func benchTable(b *testing.B, scan bool) {
	m := core.New(core.Config{NEntry: 512, RFMTH: 64, UseScanTable: scan})
	r := streaming.NewRand(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.OnActivate(uint32(r.Intn(2048)))
		if i%64 == 63 {
			m.OnRFM()
		}
	}
}

// BenchmarkAblationWrapVsReset quantifies Section IV-E: the wrapping
// counter removes Graphene's two-fold threshold degradation, halving the
// required table for the same FlipTH.
func BenchmarkAblationWrapVsReset(b *testing.B) {
	p := timing.DDR5()
	for i := 0; i < b.N; i++ {
		// Mithril sizing (no reset): M < FlipTH/2.
		nWrap, ok1 := analysis.MinNEntry(p, 6250, 128, 0, analysis.DoubleSidedBlast)
		// Reset-based sizing: the reset halves the usable threshold,
		// equivalent to targeting FlipTH/2 with the same machinery.
		nReset, ok2 := analysis.MinNEntry(p, 6250/2, 128, 0, analysis.DoubleSidedBlast)
		if !ok1 || !ok2 {
			b.Fatal("infeasible")
		}
		if i == b.N-1 {
			b.ReportMetric(float64(nWrap), "Nentry_wrapping")
			b.ReportMetric(float64(nReset), "Nentry_with_reset")
			b.ReportMetric(float64(nReset)/float64(nWrap), "reset_penalty_x")
		}
	}
}

// BenchmarkAblationBlastRadius compares double-sided sizing against the
// non-adjacent (range-3) model of Section V-C.
func BenchmarkAblationBlastRadius(b *testing.B) {
	p := timing.DDR5()
	for i := 0; i < b.N; i++ {
		n2, ok1 := analysis.MinNEntry(p, 6250, 128, 0, analysis.DoubleSidedBlast)
		n35, ok2 := analysis.MinNEntry(p, 6250, 128, 0, analysis.NonAdjacentBlast)
		if !ok1 || !ok2 {
			b.Fatal("infeasible")
		}
		if i == b.N-1 {
			b.ReportMetric(float64(n2), "Nentry_double_sided")
			b.ReportMetric(float64(n35), "Nentry_nonadjacent")
		}
	}
}

// ------------------------------------------------- Hot-path microbenches

// BenchmarkSchemeOnActivate measures the per-ACT tracker update of every
// scheme — the inner loop of every simulated activation, kept map- and
// allocation-free by the dense per-bank state layout. Run with -benchmem:
// the steady-state expectation is 0 allocs/op for every scheme.
func BenchmarkSchemeOnActivate(b *testing.B) {
	p := timing.DDR5()
	for _, name := range mitigation.Names() {
		if name == "none" {
			continue
		}
		b.Run(name, func(b *testing.B) {
			s, err := mitigation.Build(name, mitigation.Options{Timing: p, FlipTH: 6250, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			banks := p.TotalBanks()
			r := streaming.NewRand(11)
			rows := make([]uint32, 4096)
			for i := range rows {
				rows[i] = uint32(r.Intn(p.Rows))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now := timing.PicoSeconds(i) * p.TRC
				s.OnActivate(i%banks, rows[i%len(rows)], i%8, now)
			}
		})
	}
}

// BenchmarkControllerACTPath measures the controller's full per-request
// serve path (queue pick, bank timing, RAA/RFM bookkeeping, page policy)
// under the Table III configuration with Mithril+ deployed.
func BenchmarkControllerACTPath(b *testing.B) {
	p := timing.DDR5()
	s, err := mitigation.Build("mithril+", mitigation.Options{Timing: p, FlipTH: 6250, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	dev := dram.NewDevice(p, 6250, nil)
	ctl := mc.NewController(dev, mc.Config{Scheduler: mc.BLISS, Policy: mc.MinimalistOpen, Scheme: s}, nil)
	m := ctl.Mapper()
	space := m.AddressSpace()
	r := streaming.NewRand(13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := timing.PicoSeconds(i) * p.TCK
		ctl.Enqueue(&mc.Request{ID: uint64(i), CoreID: i % 8, Addr: r.Uint64() % space, Arrive: now})
		ctl.TickDue(now)
	}
}

// ------------------------------------------------------- Sweep engine

// benchmarkSweep runs the Figure 10 comparison grid — the heaviest sweep
// shape: shared baselines, attack workloads, adversarial cells — at a
// fixed worker count.
func benchmarkSweep(b *testing.B, jobs int) {
	sc := benchScale()
	sc.FlipTHs = []int{1500}
	sc.Jobs = jobs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := Figure10Data(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(len(pts)), "points")
		}
	}
}

// BenchmarkSweepSerial is the -jobs 1 reference for the parallel engine.
func BenchmarkSweepSerial(b *testing.B) { benchmarkSweep(b, 1) }

// BenchmarkSweepParallel fans the same grid out over all cores; compare
// ns/op against BenchmarkSweepSerial for the engine's speedup.
func BenchmarkSweepParallel(b *testing.B) { benchmarkSweep(b, 0) }

// BenchmarkSweepWarmStore runs the figure10 quick grid against a fully
// warmed result store: every row is a cache hit, so the measured cost is
// pure store overhead — key hashing, lookup, payload decode, and row
// re-rendering — with zero simulation. Compare against BenchmarkSweepSerial
// for the resume speedup ceiling.
func BenchmarkSweepWarmStore(b *testing.B) {
	sp, err := LoadShippedSpec("figure10.quick")
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScale()
	st := NewMemResultStore()
	eng := NewEngine(DDR5(), WithResultStore(st))
	ctx := context.Background()
	if _, err := eng.RunSpecAt(ctx, sp, sc); err != nil {
		b.Fatal(err) // warm-up sweep populates the store outside the timer
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.RunSpecAt(ctx, sp, sc)
		if err != nil {
			b.Fatal(err)
		}
		if res.RowsSimulated != 0 {
			b.Fatalf("warm store simulated %d rows", res.RowsSimulated)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.RowsCached), "rows_cached")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (ticks are
// dominated by controller work), the practical limit on experiment scale.
func BenchmarkSimulatorThroughput(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		cfg := baseSimConfig(6250, sc)
		cfg.Workload = MixHigh(4, 1).Fresh()
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.AggregateIPC, "aggregate_IPC")
			b.ReportMetric(float64(res.Device.ACTs), "ACTs")
		}
	}
}
