// Package good threads contexts the way ctxflow demands.
package good

import (
	"context"
	"time"
)

func step(ctx context.Context) error { return ctx.Err() }

// process threads the caller's ctx to every ctx-accepting callee.
func process(ctx context.Context, items []int) error {
	for range items {
		if err := step(ctx); err != nil {
			return err
		}
	}
	return nil
}

// derived contexts keep the chain intact.
func bounded(ctx context.Context) error {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return step(tctx)
}

// inClosure threads the captured ctx.
func inClosure(ctx context.Context) func() error {
	return func() error { return step(ctx) }
}

// shim is a documented deprecated entry point: the fresh root carries an
// explained allow.
func shim() error {
	//mithril:allow ctxflow deprecated ctx-less shim for the fixture
	return step(context.Background())
}
