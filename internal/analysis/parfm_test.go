package analysis

import (
	"math"
	"testing"

	"mithril/internal/timing"
)

func TestParfmSingleRowFailureDecreasesWithSmallerRFMTH(t *testing.T) {
	p := timing.DDR5()
	f64 := ParfmSingleRowFailure(p, 3125, 64)
	f16 := ParfmSingleRowFailure(p, 3125, 16)
	if !(f16 < f64) {
		t.Fatalf("more frequent sampling must reduce failure: f(16)=%g ≥ f(64)=%g", f16, f64)
	}
}

func TestParfmSingleRowFailureIncreasesAtLowerFlipTH(t *testing.T) {
	p := timing.DDR5()
	hi := ParfmSingleRowFailure(p, 50000, 64)
	lo := ParfmSingleRowFailure(p, 3125, 64)
	if !(hi < lo) {
		t.Fatalf("lower FlipTH must fail more often: f(50K)=%g ≥ f(3.125K)=%g", hi, lo)
	}
}

func TestParfmProbabilitiesAreProbabilities(t *testing.T) {
	p := timing.DDR5()
	for _, flipTH := range StandardFlipTHs {
		for _, r := range []int{16, 64, 256} {
			v := ParfmSingleRowFailure(p, flipTH, r)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Errorf("Fail(1)(%d, %d) = %v out of [0,1]", flipTH, r, v)
			}
			sys := ParfmSystemFailure(p, flipTH, r, DefaultAttackableBanks)
			if sys < 0 || sys > 1 || math.IsNaN(sys) {
				t.Errorf("system failure (%d, %d) = %v out of [0,1]", flipTH, r, sys)
			}
			if sys+1e-18 < ParfmBankFailure(p, flipTH, r) && DefaultAttackableBanks > 1 {
				t.Errorf("system failure should be ≥ bank failure")
			}
		}
	}
}

func TestParfmDegenerateInputs(t *testing.T) {
	p := timing.DDR5()
	if got := ParfmSingleRowFailure(p, 0, 64); got != 1 {
		t.Errorf("FlipTH=0 should be certain failure, got %v", got)
	}
	if got := ParfmSingleRowFailure(p, 3125, 0); got != 1 {
		t.Errorf("RFMTH=0 should be certain failure, got %v", got)
	}
	// Gigantic FlipTH: window too short to accumulate FlipTH/2 ACTs.
	if got := ParfmSingleRowFailure(p, 1<<30, 64); got != 0 {
		t.Errorf("unreachable FlipTH should be zero failure, got %v", got)
	}
}

func TestParfmRequiredRFMTHMeetsTarget(t *testing.T) {
	p := timing.DDR5()
	for _, flipTH := range []int{50000, 6250, 1500} {
		r, ok := ParfmRequiredRFMTH(p, flipTH, DefaultAttackableBanks, 1e-15, nil)
		if !ok {
			t.Fatalf("no RFMTH meets 1e-15 at FlipTH=%d", flipTH)
		}
		if got := ParfmSystemFailure(p, flipTH, r, DefaultAttackableBanks); got > 1e-15 {
			t.Fatalf("returned RFMTH=%d violates target: %g", r, got)
		}
	}
	// The paper's argument: PARFM needs a smaller RFMTH as FlipTH drops.
	rHi, _ := ParfmRequiredRFMTH(p, 50000, DefaultAttackableBanks, 1e-15, nil)
	rLo, _ := ParfmRequiredRFMTH(p, 1500, DefaultAttackableBanks, 1e-15, nil)
	if !(rLo < rHi) {
		t.Fatalf("required RFMTH should shrink with FlipTH: r(1.5K)=%d ≥ r(50K)=%d", rLo, rHi)
	}
}

func TestParfmCostEffectivenessMonotone(t *testing.T) {
	// Equation (5) decreases in j: one ACT per interval is the attacker's
	// best strategy.
	prev := math.Inf(1)
	for j := 1; j <= 64; j++ {
		v := ParfmCostEffectiveness(64, j)
		if v >= prev {
			t.Fatalf("cost-effectiveness should decrease: j=%d gives %v after %v", j, v, prev)
		}
		prev = v
	}
	if ParfmCostEffectiveness(64, 0) != 0 || ParfmCostEffectiveness(64, 65) != 0 {
		t.Error("out-of-range j should report 0")
	}
}

func TestParfmScaledWindowForcesLowerRFMTH(t *testing.T) {
	// On a time-compressed parameter set (tREFW/8), the j>1 generalization
	// must keep PARFM honest: large RFMTH values cannot remain "safe" just
	// because j=1 no longer fits the window.
	p := timing.DDR5()
	p.TREFW /= 8
	p.RefreshGroups /= 8
	rScaled, ok := ParfmRequiredRFMTH(p, 1500, DefaultAttackableBanks, 1e-15, nil)
	if !ok {
		t.Fatal("no RFMTH meets the target on the scaled window")
	}
	if rScaled >= 256 {
		t.Fatalf("scaled window should not trivially pass RFMTH=%d", rScaled)
	}
	if got := ParfmSystemFailure(p, 1500, rScaled, DefaultAttackableBanks); got > 1e-15 {
		t.Fatalf("returned RFMTH=%d violates target: %g", rScaled, got)
	}
}
