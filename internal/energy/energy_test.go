package energy

import (
	"math"
	"testing"

	"mithril/internal/dram"
	"mithril/internal/mc"
)

func TestComputeBreakdown(t *testing.T) {
	p := DefaultParams()
	dev := dram.BankStats{ACTs: 100, Reads: 200, Writes: 50, AutoRefreshes: 10, PreventiveRows: 20}
	mcs := mc.Stats{MRRReads: 5}
	b := Compute(dev, mcs, p)
	if b.ACT != 100*p.ACT {
		t.Errorf("ACT = %v", b.ACT)
	}
	if b.ReadWrite != 200*p.Read+50*p.Write {
		t.Errorf("RW = %v", b.ReadWrite)
	}
	if b.Refresh != 10*float64(p.RowsPerREF)*p.RefreshedRow {
		t.Errorf("Refresh = %v", b.Refresh)
	}
	if b.Preventive != 20*p.PreventiveRow {
		t.Errorf("Preventive = %v", b.Preventive)
	}
	if b.MRR != 5*p.MRR {
		t.Errorf("MRR = %v", b.MRR)
	}
	if math.Abs(b.Total()-(b.ACT+b.ReadWrite+b.Refresh+b.Preventive+b.MRR)) > 1e-9 {
		t.Error("Total mismatch")
	}
	if b.Dynamic() >= b.Total() {
		t.Error("Dynamic must exclude refresh background energy")
	}
	if b.String() == "" {
		t.Error("String should render")
	}
}

func TestOverheadPercent(t *testing.T) {
	base := Breakdown{ACT: 100, ReadWrite: 100}
	with := Breakdown{ACT: 100, ReadWrite: 100, Preventive: 10}
	if got := OverheadPercent(with, base); got != 5 {
		t.Fatalf("overhead = %v%%, want 5%%", got)
	}
	// Refresh differences must not leak into the overhead metric.
	with.Refresh = 1e9
	if got := OverheadPercent(with, base); got != 5 {
		t.Fatalf("refresh leaked into overhead: %v%%", got)
	}
	if got := OverheadPercent(with, Breakdown{}); got != 0 {
		t.Fatalf("zero baseline should yield 0, got %v", got)
	}
}
