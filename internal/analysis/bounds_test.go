package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"mithril/internal/timing"
)

func TestHarmonic(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0},
		{1, 1},
		{2, 1.5},
		{4, 25.0 / 12},
	}
	for _, c := range cases {
		if got := Harmonic(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Harmonic(%d) = %v, want %v", c.n, got, c.want)
		}
	}
	if h := Harmonic(1000); math.Abs(h-(math.Log(1000)+0.5772)) > 0.01 {
		t.Errorf("Harmonic(1000) = %v, want ≈ ln(1000)+γ", h)
	}
}

func TestBoundMKnownPoint(t *testing.T) {
	// Hand-computed: RFMTH=256, N=32 at DDR5 timings: W(256) ≈ 2358,
	// M ≈ 256·H_32 + 256·2356/32 ≈ 1039 + 18848 ≈ 19.9K.
	p := timing.DDR5()
	m := BoundM(p, 32, 256)
	if m < 18000 || m < 0 || m > 22000 {
		t.Fatalf("BoundM(32, 256) = %v, want ≈ 19.9K", m)
	}
}

func TestBoundMMonotonicityInRFMTH(t *testing.T) {
	// Larger RFMTH (fewer RFM commands) must weaken the bound (larger M).
	p := timing.DDR5()
	prev := 0.0
	for i, r := range []int{16, 32, 64, 128, 256} {
		m := BoundM(p, 128, r)
		if i > 0 && m <= prev {
			t.Fatalf("M should increase with RFMTH: M(%d)=%v ≤ M(prev)=%v", r, m, prev)
		}
		prev = m
	}
}

func TestBoundMDegenerateInputs(t *testing.T) {
	p := timing.DDR5()
	if !math.IsInf(BoundM(p, 0, 64), 1) || !math.IsInf(BoundM(p, 64, 0), 1) {
		t.Fatal("degenerate inputs should yield +Inf")
	}
	if !math.IsInf(BoundMPrime(p, 64, 64, -1), 1) {
		t.Fatal("negative AdTH should yield +Inf")
	}
}

func TestBoundMPrimeReducesToBoundMAtZeroAdTH(t *testing.T) {
	p := timing.DDR5()
	f := func(nRaw, rRaw uint8) bool {
		n := int(nRaw)%500 + 1
		r := int(rRaw)%256 + 1
		return math.Abs(BoundMPrime(p, n, r, 0)-BoundM(p, n, r)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoundMPrimeAtLeastBoundM(t *testing.T) {
	// Adaptive refresh can only deteriorate the bound (Section V-A).
	p := timing.DDR5()
	f := func(nRaw, rRaw uint8, adRaw uint16) bool {
		n := int(nRaw)%500 + 2
		r := int(rRaw)%256 + 1
		ad := int(adRaw) % 1000
		return BoundMPrime(p, n, r, ad)+1e-9 >= BoundM(p, n, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinNEntryFindsFeasibleConfig(t *testing.T) {
	p := timing.DDR5()
	n, ok := MinNEntry(p, 6250, 128, 0, DoubleSidedBlast)
	if !ok {
		t.Fatal("FlipTH=6.25K RFMTH=128 should be feasible")
	}
	// The paper quotes ≈1KB tables here; sanity: a few hundred entries.
	if n < 100 || n > 600 {
		t.Fatalf("MinNEntry = %d, want a few hundred", n)
	}
	// Minimality: N-1 must violate the bound.
	if BoundM(p, n-1, 128) < 6250/2 {
		t.Fatalf("N−1 = %d already satisfies the bound; MinNEntry not minimal", n-1)
	}
	if BoundM(p, n, 128) >= 6250/2 {
		t.Fatal("returned N does not satisfy the bound")
	}
}

func TestMinNEntryInfeasibleAtExtremeTarget(t *testing.T) {
	p := timing.DDR5()
	// RFMTH=256 cannot reach FlipTH=1.5K (paper: Mithril-256 dashes).
	if _, ok := MinNEntry(p, 1500, 256, 0, DoubleSidedBlast); ok {
		t.Fatal("FlipTH=1.5K at RFMTH=256 should be infeasible")
	}
	if _, ok := MinNEntry(p, 0, 64, 0, DoubleSidedBlast); ok {
		t.Fatal("FlipTH=0 should be infeasible")
	}
}

func TestPaperFeasibilityMatrix(t *testing.T) {
	// Table IV dashes: Mithril-256 infeasible at 3.125K and 1.5K;
	// Mithril-128 infeasible at 1.5K; Mithril-32 feasible everywhere.
	p := timing.DDR5()
	type cell struct {
		flipTH, rfmTH int
		feasible      bool
	}
	// Note: Mithril-64 @ 1.5K is mathematically feasible but needs ≈3K
	// entries; the paper's Table IV dash there is a practicality cut
	// (handled by TableIV's MaxPracticalNEntry), not infeasibility.
	cases := []cell{
		{50000, 256, true}, {6250, 256, true}, {3125, 256, false}, {1500, 256, false},
		{3125, 128, true}, {1500, 128, false},
		{3125, 64, true}, {1500, 64, true},
		{1500, 32, true},
	}
	for _, c := range cases {
		_, ok := MinNEntry(p, c.flipTH, c.rfmTH, 0, DoubleSidedBlast)
		if ok != c.feasible {
			t.Errorf("FlipTH=%d RFMTH=%d: feasible=%v, want %v", c.flipTH, c.rfmTH, ok, c.feasible)
		}
	}
}

func TestConfigureTableSizesMatchPaperShape(t *testing.T) {
	// Figure 6 / Table IV shape: table grows as FlipTH shrinks, and for a
	// fixed FlipTH a smaller RFMTH needs fewer entries.
	p := timing.DDR5()
	c256, ok1 := Configure(p, 6250, 256, 0, DoubleSidedBlast)
	c32, ok2 := Configure(p, 6250, 32, 0, DoubleSidedBlast)
	if !ok1 || !ok2 {
		t.Fatal("6.25K configs should be feasible")
	}
	if c32.NEntry >= c256.NEntry {
		t.Errorf("smaller RFMTH should need a smaller table: N(32)=%d ≥ N(256)=%d", c32.NEntry, c256.NEntry)
	}
	// Paper: Mithril-256 @ 6.25K ≈ 1.45 KB — accept the right order.
	if c256.TableKB < 0.7 || c256.TableKB > 3 {
		t.Errorf("Mithril-256 @ 6.25K = %.2f KB, want ≈ 1.5 KB", c256.TableKB)
	}
	hi, _ := Configure(p, 50000, 128, 0, DoubleSidedBlast)
	lo, _ := Configure(p, 3125, 128, 0, DoubleSidedBlast)
	if hi.TableKB >= lo.TableKB {
		t.Errorf("lower FlipTH must cost more area: %v ≥ %v", hi.TableKB, lo.TableKB)
	}
}

func TestLossyBoundNeedsLargerTable(t *testing.T) {
	// Figure 6 dotted lines: at the same (FlipTH, RFMTH), the Lossy-
	// Counting variant needs more entries than CbS.
	p := timing.DDR5()
	for _, flipTH := range []int{50000, 25000} {
		for _, r := range []int{256, 128, 64} {
			nc, ok1 := MinNEntry(p, flipTH, r, 0, DoubleSidedBlast)
			nl, ok2 := MinNEntryLossy(p, flipTH, r, DoubleSidedBlast)
			if !ok1 {
				continue
			}
			if !ok2 {
				t.Errorf("lossy infeasible where CbS feasible (FlipTH=%d RFMTH=%d)", flipTH, r)
				continue
			}
			if nl <= nc {
				t.Errorf("FlipTH=%d RFMTH=%d: lossy N=%d should exceed CbS N=%d", flipTH, r, nl, nc)
			}
		}
	}
}

func TestConfigCurveSkipsInfeasible(t *testing.T) {
	p := timing.DDR5()
	curve := ConfigCurve(p, 1500, []int{256, 128, 64, 32}, 0, DoubleSidedBlast)
	if len(curve) != 2 || curve[0].RFMTH != 64 || curve[1].RFMTH != 32 {
		t.Fatalf("1.5K curve = %v, want RFMTH 64 and 32 only", curve)
	}
	curve = ConfigCurve(p, 50000, []int{256, 128, 64, 32}, 0, DoubleSidedBlast)
	if len(curve) != 4 {
		t.Fatalf("50K curve has %d points, want 4", len(curve))
	}
}

func TestAdditionalNEntryPercent(t *testing.T) {
	// Figure 7: the extra entries stay modest (≤ ~12% at 3.125K/16 with
	// AdTH up to 200) and grow with AdTH.
	p := timing.DDR5()
	prev := -1.0
	for _, ad := range []int{0, 50, 100, 150, 200} {
		pct, ok := AdditionalNEntryPercent(p, 3125, 16, ad)
		if !ok {
			t.Fatalf("AdTH=%d infeasible", ad)
		}
		if pct < prev-1e-9 {
			t.Errorf("additional Nentry should not shrink with AdTH: %v after %v", pct, prev)
		}
		prev = pct
	}
	if prev > 25 {
		t.Errorf("additional Nentry at AdTH=200 = %.1f%%, paper reports ≤ ~12%%", prev)
	}
	if zero, _ := AdditionalNEntryPercent(p, 3125, 16, 0); zero != 0 {
		t.Errorf("AdTH=0 must add 0%%, got %v", zero)
	}
}

func TestAddressBits(t *testing.T) {
	cases := []struct{ rows, want int }{{1, 0}, {2, 1}, {65536, 16}, {65537, 17}, {131072, 17}}
	for _, c := range cases {
		if got := AddressBits(c.rows); got != c.want {
			t.Errorf("AddressBits(%d) = %d, want %d", c.rows, got, c.want)
		}
	}
}

func TestMithrilCounterBits(t *testing.T) {
	if got := MithrilCounterBits(3000); got != 13 {
		t.Errorf("MithrilCounterBits(3000) = %d, want 13 (2^12 = 4096 > 3000)", got)
	}
	if got := MithrilCounterBits(-5); got != 1 {
		t.Errorf("negative bound should clamp to minimal width, got %d", got)
	}
}

func TestConfigString(t *testing.T) {
	c := Config{FlipTH: 6250, RFMTH: 128, NEntry: 300, M: 3000, TableKB: 1.1}
	s := c.String()
	if s == "" {
		t.Fatal("String() should not be empty")
	}
}
