package lint

import (
	"go/ast"
	"strings"
)

// PureSim keeps the simulator core referentially transparent: identical
// specs must produce identical results on every machine, so the packages
// that compute them must not read wall-clock time, global randomness, or
// ambient process state. Seeded generators (rand.New over an explicit
// source, the repo's own streaming.Rand) are fine — only the global,
// process-seeded entry points diverge across runs.
var PureSim = &Analyzer{
	Name: "puresim",
	Doc:  "forbid wall-clock, global randomness, and env/filesystem reads in the simulator core",
	Run:  runPureSim,
}

// pureSimPkgs is the simulator core: everything a Result is computed from.
// Packages outside the module (the test fixtures) are always in scope.
var pureSimPkgs = map[string]bool{
	"mithril/internal/sim":        true,
	"mithril/internal/mc":         true,
	"mithril/internal/mitigation": true,
	"mithril/internal/rh":         true,
	"mithril/internal/dram":       true,
	"mithril/internal/core":       true,
	"mithril/internal/cpu":        true,
	"mithril/internal/streaming":  true,
	"mithril/internal/timing":     true,
	"mithril/internal/energy":     true,
	"mithril/internal/attack":     true,
}

func inPureSimScope(pkgPath string) bool {
	if !strings.HasPrefix(pkgPath, "mithril") {
		return true
	}
	return pureSimPkgs[pkgPath]
}

// pureSimDenied maps package path -> function names whose call makes a
// simulation depend on ambient state. An empty set denies every
// package-level function in the package.
var pureSimDenied = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"math/rand": {
		"Int": true, "Intn": true, "Int31": true, "Int31n": true,
		"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
		"Float32": true, "Float64": true, "ExpFloat64": true,
		"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
		"Read": true,
	},
	"math/rand/v2": {
		"Int": true, "IntN": true, "Int32": true, "Int32N": true,
		"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
		"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
		"Float32": true, "Float64": true, "ExpFloat64": true,
		"NormFloat64": true, "Perm": true, "Shuffle": true, "N": true,
	},
	"os": {
		"Getenv": true, "LookupEnv": true, "Environ": true,
		"Open": true, "OpenFile": true, "ReadFile": true, "ReadDir": true,
		"Stat": true, "Lstat": true, "Create": true, "Getwd": true,
		"UserHomeDir": true, "Hostname": true,
	},
	"io/ioutil": {},
}

func runPureSim(pass *Pass) error {
	if !inPureSimScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Signature().Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are deterministic state
			}
			denied, known := pureSimDenied[fn.Pkg().Path()]
			if !known {
				return true
			}
			if len(denied) == 0 || denied[fn.Name()] {
				pass.Reportf(call.Pos(), "%s.%s makes the simulator depend on ambient state (thread a seed or inject the value instead)", fn.Pkg().Path(), fn.Name())
			}
			return true
		})
	}
	return nil
}
