package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: mithril
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepSerial-4              	       5	1400000000 ns/op	1004888278 B/op	  301613 allocs/op
BenchmarkSimulatorThroughput-4      	       5	   6500000 ns/op	40158003 B/op	     510 allocs/op
BenchmarkUnrelated-4                	     100	     12345 ns/op
PASS
ok  	mithril	12.3s
`

// With -count > 1 each benchmark reports once per run; the minimum wins.
func TestParseBenchKeepsMinimumAcrossRuns(t *testing.T) {
	in := "BenchmarkSweepSerial-4 5 1500000000 ns/op\n" +
		"BenchmarkSweepSerial-4 5 1300000000 ns/op\n" +
		"BenchmarkSweepSerial-4 5 1400000000 ns/op\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkSweepSerial"] != 1300000000 {
		t.Errorf("ns/op = %v, want the minimum 1.3e9", got["BenchmarkSweepSerial"])
	}
}

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkSweepSerial":         1400000000,
		"BenchmarkSimulatorThroughput": 6500000,
		"BenchmarkUnrelated":           12345,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestGate(t *testing.T) {
	baseline := map[string]float64{"A": 100, "B": 100, "C": 100}
	current := map[string]float64{"A": 125, "B": 131, "D": 5}
	failed, matched := gate(io.Discard, baseline, current, 0.30)
	if matched != 2 {
		t.Errorf("matched = %d, want 2 (C missing from run, D missing from history)", matched)
	}
	if len(failed) != 1 || failed[0] != "B" {
		t.Errorf("failed = %v, want [B] (A's +25%% is within +30%%)", failed)
	}
}

// writeHistory writes a minimal two-point history file; the gate must
// compare against the LATEST point only.
func writeHistory(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.json")
	data := `{
  "series": "sweep_hotpath",
  "points": [
    {"date": "2026-01-01", "label": "old", "benchmarks": {
      "BenchmarkSweepSerial": {"ns_op": 9999999999}
    }},
    {"date": "2026-07-28", "label": "latest", "benchmarks": {
      "BenchmarkSweepSerial": {"ns_op": 1335170910},
      "BenchmarkSimulatorThroughput": {"ns_op": 6531938}
    }}
  ]
}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeBench(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPasses(t *testing.T) {
	hist := writeHistory(t)
	bench := writeBench(t, sampleBench) // 1.4e9 vs 1.335e9 baseline: +4.9%, within 30%
	if code := run([]string{"-input", bench, "-history", hist, "-tolerance", "0.30"}, io.Discard, io.Discard); code != 0 {
		t.Errorf("run = %d, want 0", code)
	}
}

func TestRunFailsOnRegression(t *testing.T) {
	hist := writeHistory(t)
	slow := strings.Replace(sampleBench, "1400000000 ns/op", "2000000000 ns/op", 1) // +50%
	bench := writeBench(t, slow)
	if code := run([]string{"-input", bench, "-history", hist}, io.Discard, io.Discard); code != 1 {
		t.Errorf("run = %d, want 1 (regression)", code)
	}
}

func TestRunFailsWithNoMatches(t *testing.T) {
	hist := writeHistory(t)
	bench := writeBench(t, "BenchmarkSomethingElse-4 5 100 ns/op\n")
	if code := run([]string{"-input", bench, "-history", hist}, io.Discard, io.Discard); code != 2 {
		t.Errorf("run = %d, want 2 (nothing matched)", code)
	}
}

// runStderr captures run's exit code and stderr for the message tests.
func runStderr(args []string) (int, string) {
	var buf strings.Builder
	code := run(args, io.Discard, &buf)
	return code, buf.String()
}

func TestRunFailsClearlyOnMissingHistory(t *testing.T) {
	bench := writeBench(t, sampleBench)
	missing := filepath.Join(t.TempDir(), "BENCH_nope.json")
	code, msg := runStderr([]string{"-input", bench, "-history", missing})
	if code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(msg, "does not exist") || !strings.Contains(msg, missing) {
		t.Errorf("missing-history message not actionable: %q", msg)
	}
}

func TestRunFailsClearlyOnEmptyHistory(t *testing.T) {
	bench := writeBench(t, sampleBench)
	for name, content := range map[string]string{
		"no points":     `{"series": "s", "points": []}`,
		"no benchmarks": `{"series": "s", "points": [{"date": "2026-07-28", "label": "empty", "benchmarks": {}}]}`,
	} {
		hist := filepath.Join(t.TempDir(), "BENCH_empty.json")
		if err := os.WriteFile(hist, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		code, msg := runStderr([]string{"-input", bench, "-history", hist})
		if code != 2 {
			t.Fatalf("%s: run = %d, want 2", name, code)
		}
		if !strings.Contains(msg, "no baseline to compare against") {
			t.Errorf("%s: message not actionable: %q", name, msg)
		}
	}
}

func TestRunFailsClearlyOnEmptyBenchInput(t *testing.T) {
	hist := writeHistory(t)
	bench := writeBench(t, "PASS\nok mithril 1.2s\n") // a run with no benchmark lines
	code, msg := runStderr([]string{"-input", bench, "-history", hist})
	if code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(msg, "no benchmark lines") {
		t.Errorf("empty-input message not actionable: %q", msg)
	}
}

func TestToleranceFlagDefault(t *testing.T) {
	hist := writeHistory(t)
	// +40% regresses under the default ±30% tolerance but passes at 0.50.
	slow := strings.Replace(sampleBench, "1400000000 ns/op", "1870000000 ns/op", 1)
	bench := writeBench(t, slow)
	if code := run([]string{"-input", bench, "-history", hist}, io.Discard, io.Discard); code != 1 {
		t.Errorf("default tolerance: run = %d, want 1", code)
	}
	if code := run([]string{"-input", bench, "-history", hist, "-tolerance", "0.50"}, io.Discard, io.Discard); code != 0 {
		t.Errorf("widened tolerance: run = %d, want 0", code)
	}
}
