// Package cpu is the trace-driven processor model: a shared set-associative
// last-level cache and simplified out-of-order cores whose memory-level
// parallelism is bounded by MSHRs and a reorder-buffer window — the standard
// trace-simulation substitute for the paper's McSimA+ cores (Table III:
// 16 × 4-way OOO at 3.6 GHz, 16 MB LLC).
package cpu

import "fmt"

// LLC is a shared set-associative last-level cache with LRU replacement.
// Tag and valid state live in two flat arrays indexed by set×ways — one
// allocation each instead of one per set, and contiguous for locality.
type LLC struct {
	sets     int
	ways     int
	lineBits uint
	tags     []uint64 // sets×ways, LRU-ordered within a set: offset 0 = MRU
	valid    []bool

	hits   uint64
	misses uint64
}

// NewLLC builds a cache of capacityBytes with the given associativity and
// 64-byte lines. Capacity must divide evenly into sets.
func NewLLC(capacityBytes, ways int) *LLC {
	const line = 64
	if capacityBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cpu: invalid LLC geometry %d/%d", capacityBytes, ways))
	}
	sets := capacityBytes / line / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cpu: LLC sets = %d must be a positive power of two", sets))
	}
	return &LLC{
		sets: sets, ways: ways, lineBits: 6,
		tags:  make([]uint64, sets*ways),
		valid: make([]bool, sets*ways),
	}
}

// Access looks up addr, updating LRU state and allocating on miss
// (write-allocate for stores). It reports whether the access hit.
//
//mithril:hotpath
func (l *LLC) Access(addr uint64) bool {
	line := addr >> l.lineBits
	set := int(line) & (l.sets - 1)
	tag := line / uint64(l.sets)
	base := set * l.ways
	tags, valid := l.tags[base:base+l.ways], l.valid[base:base+l.ways]
	for w := 0; w < l.ways; w++ {
		if valid[w] && tags[w] == tag {
			// Move to MRU.
			copy(tags[1:w+1], tags[:w])
			copy(valid[1:w+1], valid[:w])
			tags[0], valid[0] = tag, true
			l.hits++
			return true
		}
	}
	// Miss: evict LRU (last way).
	copy(tags[1:], tags[:l.ways-1])
	copy(valid[1:], valid[:l.ways-1])
	tags[0], valid[0] = tag, true
	l.misses++
	return false
}

// Stats reports hit/miss counters.
func (l *LLC) Stats() (hits, misses uint64) { return l.hits, l.misses }

// HitRate reports the fraction of accesses that hit (0 when idle).
func (l *LLC) HitRate() float64 {
	total := l.hits + l.misses
	if total == 0 {
		return 0
	}
	return float64(l.hits) / float64(total)
}
