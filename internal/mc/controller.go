package mc

import (
	"fmt"

	"mithril/internal/dram"
	"mithril/internal/timing"
)

// PagePolicy selects the row-buffer management policy.
type PagePolicy int

// Page policies.
const (
	// OpenPage leaves rows open until a conflict.
	OpenPage PagePolicy = iota
	// ClosedPage precharges after every access.
	ClosedPage
	// MinimalistOpen (Kaseridis et al., Table III) caps the number of
	// consecutive row hits per activation (4) before precharging,
	// balancing locality against fairness.
	MinimalistOpen
)

// String names the policy.
func (p PagePolicy) String() string {
	switch p {
	case OpenPage:
		return "open"
	case ClosedPage:
		return "closed"
	case MinimalistOpen:
		return "minimalist-open"
	default:
		return "unknown"
	}
}

// minimalistHitCap is the per-activation row-hit budget of minimalist-open.
const minimalistHitCap = 4

// Config configures the controller.
type Config struct {
	Scheduler  SchedulerKind
	Policy     PagePolicy
	Scheme     Scheme
	QueueDepth int // per-channel request queue capacity
}

// Stats counts controller-level events.
type Stats struct {
	Served      uint64
	RFMIssued   uint64
	RFMSkipped  uint64 // Mithril+ MRR skips
	MRRReads    uint64 // mode-register polls (Mithril+)
	ARRWindows  uint64
	ARRVictims  uint64
	REFIssued   uint64
	Rejected    uint64 // enqueue attempts against a full queue
	ThrottleHit uint64 // requests delayed by PreACTDelay
}

type arrJob struct {
	bank    int
	victims []uint32
}

type channelCtl struct {
	id         int
	queue      []*Request
	bliss      *blissState
	nextREF    []timing.PicoSeconds // per rank in this channel
	pendingARR []arrJob

	// Calendar caches (TickDue/NextDeadline). refNext is the exact minimum
	// over nextREF, updated where REFs are issued. workNext caches the raw
	// (unclamped) minimum over every work candidate — pending-ARR bank
	// availability, queued requests' max(blocked, bank busy), and RFM-due
	// bank availability — and is exact whenever workDirty is false. Every
	// mutation that can raise a candidate or remove the minimum sets
	// workDirty instead of rescanning, so idle iterations (e.g. waiting out
	// an RFM window, which only polls MRR) read cached values in O(channels).
	refNext   timing.PicoSeconds
	workNext  timing.PicoSeconds
	workDirty bool
}

// Controller drives a dram.Device: request queues per channel, scheduling,
// page policy, auto-refresh, and the RFM/ARR/throttle mitigation hooks.
//
// All per-bank bookkeeping is held in dense slices indexed by global bank
// (the bank count is fixed at construction), keeping the per-ACT hot path
// free of map lookups and allocations.
type Controller struct {
	p        timing.Params
	dev      *dram.Device
	mapper   *AddressMapper
	cfg      Config
	channels []*channelCtl

	raa       []int  // per global bank: rolling accumulated ACT counter
	rfmDue    []bool // per global bank: RAA reached RFMTH, ACTs blocked
	hitStreak []int  // per global bank: consecutive row hits

	// Hoisted scheme properties (constant per run) and per-channel counts
	// of RFM-due banks, so each tick tests one integer instead of making
	// interface calls and scanning every bank.
	rfmCompatible bool
	rfmTH         int
	rfmDueCount   []int // per channel: banks with rfmDue set

	// victimPool recycles the buffers pendingARR jobs hold: schemes may
	// reuse their returned victim slices on the next call, so the
	// controller copies them into pooled storage until the ARR fires.
	victimPool [][]uint32

	complete func(req *Request, at timing.PicoSeconds)
	stats    Stats
}

// NewController builds a controller over the device. complete is invoked
// once per request with its data completion time.
func NewController(dev *dram.Device, cfg Config, complete func(*Request, timing.PicoSeconds)) *Controller {
	p := dev.Params()
	if cfg.Scheme == nil {
		cfg.Scheme = NoProtection{}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if complete == nil {
		complete = func(*Request, timing.PicoSeconds) {}
	}
	c := &Controller{
		p:             p,
		dev:           dev,
		mapper:        NewAddressMapper(p),
		cfg:           cfg,
		raa:           make([]int, dev.NumBanks()),
		rfmDue:        make([]bool, dev.NumBanks()),
		hitStreak:     make([]int, dev.NumBanks()),
		rfmCompatible: cfg.Scheme.RFMCompatible(),
		rfmTH:         cfg.Scheme.RFMTH(),
		rfmDueCount:   make([]int, p.Channels),
		complete:      complete,
	}
	for ch := 0; ch < p.Channels; ch++ {
		cc := &channelCtl{
			id:      ch,
			bliss:   newBlissState(),
			nextREF: make([]timing.PicoSeconds, p.Ranks),
			// The queue is bounded by QueueDepth; reserving it up front
			// keeps Enqueue free of growth reallocations.
			queue: make([]*Request, 0, cfg.QueueDepth),
		}
		for r := range cc.nextREF {
			// Stagger refreshes across ranks and channels.
			cc.nextREF[r] = p.TREFI * timing.PicoSeconds(1+ch*p.Ranks+r) / timing.PicoSeconds(p.Channels*p.Ranks)
		}
		cc.refNext = minREF(cc.nextREF)
		cc.workNext = timing.Never // empty queue, no maintenance pending
		c.channels = append(c.channels, cc)
	}
	return c
}

// Mapper exposes the address mapper (shared with workload generators).
func (c *Controller) Mapper() *AddressMapper { return c.mapper }

// Device exposes the controlled DRAM device.
func (c *Controller) Device() *dram.Device { return c.dev }

// Stats returns a copy of the controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// QueueLen reports the current queue occupancy of a channel.
func (c *Controller) QueueLen(channel int) int { return len(c.channels[channel].queue) }

// Enqueue accepts a request into its channel queue; it reports false when
// the queue is full (the core must retry).
//
//mithril:hotpath
func (c *Controller) Enqueue(req *Request) bool {
	c.mapper.MapInto(req.Addr, &req.Loc)
	cc := c.channels[req.Loc.Channel]
	if len(cc.queue) >= c.cfg.QueueDepth {
		c.stats.Rejected++
		return false
	}
	cc.queue = append(cc.queue, req)
	if !cc.workDirty {
		// Fold the new candidate into the cached work minimum: the request
		// can start no earlier than its throttle release and its bank's busy
		// horizon. Adding a candidate can only lower the minimum, so the
		// cache stays exact without a rescan.
		t := req.blocked
		if bu := c.dev.Bank(req.Loc.GlobalBank).BusyUntil(); bu > t {
			t = bu
		}
		if t < cc.workNext {
			cc.workNext = t
		}
	}
	return true
}

// retainVictims copies a scheme's victim list into pooled storage that
// stays valid until the ARR job consumes it (schemes own their returned
// slices and may overwrite them on the next call).
//
//mithril:hotpath
func (c *Controller) retainVictims(v []uint32) []uint32 {
	var buf []uint32
	if n := len(c.victimPool); n > 0 {
		buf = c.victimPool[n-1][:0]
		c.victimPool = c.victimPool[:n-1]
	}
	return append(buf, v...)
}

// releaseVictims returns a consumed ARR job's buffer to the pool.
//
//mithril:hotpath
func (c *Controller) releaseVictims(v []uint32) {
	c.victimPool = append(c.victimPool, v)
}

// markRFMDue records a bank reaching its RAA threshold (idempotent: raw
// activations may keep counting past it).
//
//mithril:hotpath
func (c *Controller) markRFMDue(g int) {
	if !c.rfmDue[g] {
		c.rfmDue[g] = true
		c.rfmDueCount[g/(c.p.Ranks*c.p.Banks)]++
	}
}

// clearRFMDue releases a bank after its RFM was issued or skipped.
//
//mithril:hotpath
func (c *Controller) clearRFMDue(channel, g int) {
	c.rfmDue[g] = false
	c.rfmDueCount[channel]--
}

// Tick advances every channel by one command slot at time now.
//
// Deprecated: use TickDue, which skips channels with nothing actionable at
// now and is state-identical on any instant (every skipped tickChannel is a
// proven no-op). Tick remains for the legacy tick loop and older callers.
//
//mithril:hotpath
func (c *Controller) Tick(now timing.PicoSeconds) {
	//mithril:allow hotpathalloc deprecated shim retained for the legacy tick loop
	for _, cc := range c.channels {
		c.tickChannel(cc, now)
	}
}

// TickDue advances only the channels that can make progress at now: a bank
// awaiting its RFM (whose MRR skip flag is polled every iteration), an
// auto-refresh deadline that has arrived, or a matured work candidate.
// Skipping a non-due channel is exact, not approximate: with no refresh
// due, no RFM-due bank, and every work candidate in the future, every
// branch of tickChannel exits before its first side effect (banks report
// unavailable or requests are blocked before the throttle hook runs), so
// the skipped call could only have burned cycles.
//
//mithril:hotpath
func (c *Controller) TickDue(now timing.PicoSeconds) {
	for _, cc := range c.channels {
		// A dirty channel ticks without a rescan: ticking is exact on any
		// instant (the legacy loop ticked every channel every iteration),
		// so conservatively including a channel costs at most the no-op
		// call the legacy loop always made. Only a SKIP requires knowing
		// nothing is actionable.
		if cc.workDirty || c.rfmDueCount[cc.id] > 0 || cc.refNext <= now || cc.workNext <= now {
			c.tickChannel(cc, now)
		}
	}
}

//mithril:hotpath
func (c *Controller) tickChannel(cc *channelCtl, now timing.PicoSeconds) {
	// 1. Auto-refresh has absolute priority.
	for r := range cc.nextREF {
		if now >= cc.nextREF[r] {
			rankIdx := cc.id*c.p.Ranks + r
			c.dev.IssueREF(rankIdx, now)
			cc.nextREF[r] += c.p.TREFI
			cc.refNext = minREF(cc.nextREF)
			cc.workDirty = true // REF raised the rank's bank busy horizons
			c.stats.REFIssued++
			return
		}
	}
	// 2. Pending ARR maintenance (MC-side schemes).
	for i, job := range cc.pendingARR {
		if c.dev.Bank(job.bank).Available(now) {
			c.dev.IssueARR(job.bank, len(job.victims), now)
			c.dev.PreventiveRefresh(job.bank, job.victims)
			c.stats.ARRWindows++
			c.stats.ARRVictims += uint64(len(job.victims))
			c.releaseVictims(job.victims)
			cc.pendingARR = append(cc.pendingARR[:i], cc.pendingARR[i+1:]...)
			cc.workDirty = true // job consumed, bank busy through the ARR window
			return
		}
	}
	// 3. RFM issue (Figure 1 flow). The per-channel due count makes the
	// common case (no bank at its RAA threshold) a single integer test.
	if c.rfmDueCount[cc.id] > 0 {
		base := cc.id * c.p.Ranks * c.p.Banks
		for g := base; g < base+c.p.Ranks*c.p.Banks; g++ {
			if !c.rfmDue[g] {
				continue
			}
			// Mithril+: poll the skip flag via MRR before issuing.
			c.stats.MRRReads++
			if c.cfg.Scheme.SkipRFM(g) {
				c.raa[g] = 0
				c.clearRFMDue(cc.id, g)
				cc.workDirty = true // due-bank candidate removed
				c.stats.RFMSkipped++
				continue // skip costs no command slot beyond the MRR
			}
			if !c.dev.Bank(g).Available(now) {
				continue
			}
			c.dev.IssueRFM(g, now)
			victims := c.cfg.Scheme.OnRFM(g, now)
			if len(victims) > 0 {
				c.dev.PreventiveRefresh(g, victims)
			}
			c.raa[g] = 0
			c.clearRFMDue(cc.id, g)
			cc.workDirty = true // RFM occupies the bank; due candidate removed
			c.stats.RFMIssued++
			return
		}
	}
	// 4. Serve one request.
	idx := c.pick(cc, now)
	if idx < 0 {
		return
	}
	req := cc.queue[idx]
	cc.queue = append(cc.queue[:idx], cc.queue[idx+1:]...)
	c.serve(cc, req, now)
}

// ready reports whether a request can start its next command at now.
//
//mithril:hotpath
func (c *Controller) ready(req *Request, now timing.PicoSeconds) bool {
	g := req.Loc.GlobalBank
	bank := c.dev.Bank(g)
	if !bank.Available(now) || c.rfmDue[g] {
		return false
	}
	if req.blocked > now {
		return false
	}
	if bank.OpenRow() != req.Loc.Row {
		// Needs an ACT: consult the throttle hook.
		if until := c.cfg.Scheme.PreACTDelay(g, uint32(req.Loc.Row), req.CoreID, now); until > now {
			req.blocked = until
			c.channels[req.Loc.Channel].workDirty = true // candidate raised
			c.stats.ThrottleHit++
			return false
		}
	}
	return true
}

//mithril:hotpath
func (c *Controller) serve(cc *channelCtl, req *Request, now timing.PicoSeconds) {
	// The served request leaves the queue and its bank goes busy (possibly
	// with RFM-due and pending-ARR fallout); rescan lazily.
	cc.workDirty = true
	g := req.Loc.GlobalBank
	activated, dataAt := c.dev.Access(g, req.Loc.Row, req.Write, now)
	if activated {
		if c.rfmCompatible {
			c.raa[g]++
			if c.raa[g] >= c.rfmTH {
				c.markRFMDue(g)
			}
		}
		if victims := c.cfg.Scheme.OnActivate(g, uint32(req.Loc.Row), req.CoreID, now); len(victims) > 0 {
			cc.pendingARR = append(cc.pendingARR, arrJob{bank: g, victims: c.retainVictims(victims)})
		}
		c.hitStreak[g] = 0
	} else {
		c.hitStreak[g]++
	}
	switch c.cfg.Policy {
	case ClosedPage:
		c.dev.Bank(g).Precharge(dataAt)
	case MinimalistOpen:
		if c.hitStreak[g] >= minimalistHitCap-1 {
			c.dev.Bank(g).Precharge(dataAt)
			c.hitStreak[g] = 0
		}
	}
	if c.cfg.Scheduler == BLISS {
		cc.bliss.recordServe(req.CoreID, now)
	}
	req.served = true
	c.stats.Served++
	c.complete(req, dataAt)
}

// RawActivate injects a bare activation (attack replay without a data
// request); it updates RAA/mitigation state exactly like a served ACT.
//
//mithril:hotpath
func (c *Controller) RawActivate(globalBank int, row int, now timing.PicoSeconds) timing.PicoSeconds {
	if globalBank < 0 || globalBank >= c.dev.NumBanks() {
		panic(fmt.Sprintf("mc: bank %d out of range", globalBank))
	}
	done := c.dev.ActivateOnly(globalBank, row, now)
	if c.rfmCompatible {
		c.raa[globalBank]++
		if c.raa[globalBank] >= c.rfmTH {
			c.markRFMDue(globalBank)
		}
	}
	ch := c.channels[globalBank/(c.p.Ranks*c.p.Banks)]
	ch.workDirty = true // bank busy horizon moved; RFM/ARR state may have too
	if victims := c.cfg.Scheme.OnActivate(globalBank, uint32(row), -1, now); len(victims) > 0 {
		ch.pendingARR = append(ch.pendingARR, arrJob{bank: globalBank, victims: c.retainVictims(victims)})
	}
	return done
}

// RFMDue reports whether a bank is blocked awaiting its RFM command.
func (c *Controller) RFMDue(globalBank int) bool { return c.rfmDue[globalBank] }

// RAACount reports a bank's rolling accumulated ACT counter.
func (c *Controller) RAACount(globalBank int) int { return c.raa[globalBank] }

// PendingWork reports whether any channel still holds queued requests or
// pending maintenance.
//
//mithril:hotpath
func (c *Controller) PendingWork() bool {
	for _, cc := range c.channels {
		if len(cc.queue) > 0 || len(cc.pendingARR) > 0 {
			return true
		}
	}
	for _, n := range c.rfmDueCount {
		if n > 0 {
			return true
		}
	}
	return false
}

// NextDeadline reports the earliest instant at or after now at which the
// controller has time-driven work of its own: an auto-refresh deadline, a
// matured queued request or maintenance job, or a scheme-originated
// deadline. It subsumes the deprecated NextWork/NextRefresh pair and is
// what the event calendar folds into its jump computation. Reads come from
// the per-channel caches, so iterations that mutate nothing (waiting out
// an RFM window) cost O(channels) instead of a queue rescan.
//
//mithril:hotpath
func (c *Controller) NextDeadline(now timing.PicoSeconds) timing.PicoSeconds {
	next := c.cfg.Scheme.NextDeadline(now)
	for _, cc := range c.channels {
		if cc.refNext <= now {
			return now // a refresh is due this instant; nothing can be earlier
		}
		if cc.workDirty {
			if c.rescanWork(cc, now) {
				// Some candidate has already matured, which pins the clamped
				// minimum to exactly now no matter what the remaining
				// channels hold; the cache stays dirty and TickDue ticks
				// this channel conservatively until a quiet iteration
				// completes the scan.
				return now
			}
		}
		if cc.workNext < next {
			next = cc.workNext
		}
		if cc.refNext < next {
			next = cc.refNext
		}
	}
	if next < now {
		next = now
	}
	return next
}

// rescanWork rebuilds a channel's cached raw work minimum after mutations
// flagged it dirty. Candidates mirror the deprecated NextWork: queued
// requests' max(throttle release, bank busy), pending-ARR banks' busy
// horizons, and RFM-due banks' busy horizons. The scan aborts — reporting
// true and leaving the cache dirty — as soon as it sees a candidate at or
// before now: the caller's clamped minimum is then exactly now, and busy
// phases (where almost every iteration serves and dirties) touch a short
// queue prefix instead of every entry.
//
//mithril:hotpath
func (c *Controller) rescanWork(cc *channelCtl, now timing.PicoSeconds) (dueNow bool) {
	next := timing.Never
	for _, r := range cc.queue {
		t := r.blocked
		if bu := c.dev.Bank(r.Loc.GlobalBank).BusyUntil(); bu > t {
			t = bu
		}
		if t <= now {
			return true
		}
		if t < next {
			next = t
		}
	}
	for _, job := range cc.pendingARR {
		if t := c.dev.Bank(job.bank).BusyUntil(); t <= now {
			return true
		} else if t < next {
			next = t
		}
	}
	if c.rfmDueCount[cc.id] > 0 {
		base := cc.id * c.p.Ranks * c.p.Banks
		for g := base; g < base+c.p.Ranks*c.p.Banks; g++ {
			if c.rfmDue[g] {
				if t := c.dev.Bank(g).BusyUntil(); t <= now {
					return true
				} else if t < next {
					next = t
				}
			}
		}
	}
	cc.workNext = next
	cc.workDirty = false
	return false
}

// minREF folds a channel's per-rank refresh deadlines into their minimum.
//
//mithril:hotpath
func minREF(nextREF []timing.PicoSeconds) timing.PicoSeconds {
	next := timing.Never
	for _, t := range nextREF {
		if t < next {
			next = t
		}
	}
	return next
}

// NextRefresh reports the earliest scheduled auto-refresh across ranks —
// the only time-driven controller event, used by the simulator's idle
// fast-forward.
//
// Deprecated: use NextDeadline, which folds refresh deadlines together
// with queued work and scheme deadlines under the calendar contract.
//
//mithril:hotpath
func (c *Controller) NextRefresh() timing.PicoSeconds {
	var next timing.PicoSeconds = 1 << 62
	for _, cc := range c.channels {
		for _, t := range cc.nextREF {
			if t < next {
				next = t
			}
		}
	}
	return next
}

// NextWork conservatively reports the earliest time any queued request or
// pending maintenance might become actionable (a far-future sentinel when
// the controller is idle). Throttle-blocked requests contribute their
// release times, which lets the simulator fast-forward BlockHammer delays.
//
// Deprecated: use NextDeadline, which returns the same minimum from
// incrementally maintained caches instead of rescanning every queue.
//
//mithril:hotpath
func (c *Controller) NextWork(now timing.PicoSeconds) timing.PicoSeconds {
	var next timing.PicoSeconds = 1 << 62
	for _, cc := range c.channels {
		for _, job := range cc.pendingARR {
			next = earliest(next, c.dev.Bank(job.bank).BusyUntil(), now)
		}
		for _, r := range cc.queue {
			t := r.blocked
			if bu := c.dev.Bank(r.Loc.GlobalBank).BusyUntil(); bu > t {
				t = bu
			}
			next = earliest(next, t, now)
		}
	}
	for ch, n := range c.rfmDueCount {
		if n == 0 {
			continue
		}
		base := ch * c.p.Ranks * c.p.Banks
		for g := base; g < base+c.p.Ranks*c.p.Banks; g++ {
			if c.rfmDue[g] {
				next = earliest(next, c.dev.Bank(g).BusyUntil(), now)
			}
		}
	}
	return next
}

// earliest folds candidate time t (clamped to now) into the running minimum.
//
//mithril:hotpath
func earliest(next, t, now timing.PicoSeconds) timing.PicoSeconds {
	if t < now {
		t = now
	}
	if t < next {
		return t
	}
	return next
}
