// Package energy is the dynamic-energy accounting model: per-event energies
// for ACT(+PRE), column accesses, auto-refresh, preventive victim refreshes,
// and mode-register reads, computed from the device and controller counters.
// Absolute joules are calibrated only loosely (datasheet-order numbers); the
// paper's Figures 7/10(d)/11(c) compare *relative* dynamic energy, which
// depends on event ratios, not absolute constants.
package energy

import (
	"fmt"

	"mithril/internal/dram"
	"mithril/internal/mc"
)

// Params holds per-event energies in nanojoules.
type Params struct {
	ACT           float64 // one ACT+PRE row cycle
	Read          float64 // one column read burst
	Write         float64 // one column write burst
	RefreshedRow  float64 // one row restored during REF (per row)
	PreventiveRow float64 // one victim row refreshed by a mitigation
	MRR           float64 // one mode-register read (Mithril+)
	RowsPerREF    int     // rows swept per REF command per bank
}

// DefaultParams returns DDR5-magnitude constants.
func DefaultParams() Params {
	return Params{
		ACT:           2.0,
		Read:          1.2,
		Write:         1.3,
		RefreshedRow:  2.0,
		PreventiveRow: 2.0,
		MRR:           0.2,
		RowsPerREF:    8,
	}
}

// Breakdown is the dynamic energy by component, in nanojoules.
type Breakdown struct {
	ACT        float64
	ReadWrite  float64
	Refresh    float64
	Preventive float64
	MRR        float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.ACT + b.ReadWrite + b.Refresh + b.Preventive + b.MRR
}

// Dynamic sums the workload-proportional components the paper counts for
// its overhead metric ("the number of ACTs, PREs, and executed preventive
// refreshes", Section VI-A) — auto-refresh background energy scales with
// runtime, not work, and is excluded.
func (b Breakdown) Dynamic() float64 {
	return b.ACT + b.ReadWrite + b.Preventive + b.MRR
}

// String renders the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("total %.1f nJ (ACT %.1f, RW %.1f, REF %.1f, preventive %.1f, MRR %.1f)",
		b.Total(), b.ACT, b.ReadWrite, b.Refresh, b.Preventive, b.MRR)
}

// Compute derives the breakdown from aggregated device and controller
// counters.
func Compute(dev dram.BankStats, mcs mc.Stats, p Params) Breakdown {
	return Breakdown{
		ACT:        float64(dev.ACTs) * p.ACT,
		ReadWrite:  float64(dev.Reads)*p.Read + float64(dev.Writes)*p.Write,
		Refresh:    float64(dev.AutoRefreshes) * float64(p.RowsPerREF) * p.RefreshedRow,
		Preventive: float64(dev.PreventiveRows) * p.PreventiveRow,
		MRR:        float64(mcs.MRRReads) * p.MRR,
	}
}

// OverheadPercent reports (with − baseline)/baseline × 100 of dynamic
// energy — the y-axis of Figures 7, 10(d) and 11(c).
func OverheadPercent(with, baseline Breakdown) float64 {
	base := baseline.Dynamic()
	if base == 0 {
		return 0
	}
	return 100 * (with.Dynamic() - base) / base
}
