// Package analysis implements the closed-form mathematics of the Mithril
// paper: the Theorem 1 bound M and Theorem 2 bound M′ on estimated-count
// growth, the (Nentry, RFMTH) configuration search behind Figure 6, the
// PARFM failure-probability recurrence of Appendix C, the ARR-vs-RFM
// Graphene incompatibility model of Figure 2, and the per-scheme counter
// table area models of Table IV.
package analysis

import (
	"fmt"
	"math"

	"mithril/internal/streaming"
	"mithril/internal/timing"
)

// Harmonic returns the n-th harmonic number H_n = Σ_{k=1..n} 1/k.
func Harmonic(n int) float64 {
	h := 0.0
	for k := 1; k <= n; k++ {
		h += 1 / float64(k)
	}
	return h
}

// BoundM computes Theorem 1's bound M on the increase of any single row's
// estimated count within one tREFW:
//
//	M = Σ_{k=1..N} RFMTH/k + (RFMTH/N)·(W − 2)
//
// where W is the maximum number of RFM intervals per tREFW. Mithril is safe
// against double-sided RowHammer when M < FlipTH/2.
func BoundM(p timing.Params, nEntry, rfmTH int) float64 {
	if nEntry <= 0 || rfmTH <= 0 {
		return math.Inf(1)
	}
	w := p.RFMIntervalsPerREFW(rfmTH)
	return float64(rfmTH)*Harmonic(nEntry) + float64(rfmTH)*float64(w-2)/float64(nEntry)
}

// BoundMPrime computes Theorem 2's bound M′ when the adaptive refresh policy
// (threshold AdTH) is enabled:
//
//	M′ = Σ_{k=1..n*} RFMTH/k + ((W − n* + N − 2)·RFMTH + (N − n*)·AdTH)/N
//	n* = ⌈N·RFMTH / (RFMTH + AdTH)⌉
//
// With AdTH = 0 it reduces exactly to BoundM.
func BoundMPrime(p timing.Params, nEntry, rfmTH, adTH int) float64 {
	if nEntry <= 0 || rfmTH <= 0 || adTH < 0 {
		return math.Inf(1)
	}
	if adTH == 0 {
		return BoundM(p, nEntry, rfmTH)
	}
	w := p.RFMIntervalsPerREFW(rfmTH)
	nStar := (nEntry*rfmTH + rfmTH + adTH - 1) / (rfmTH + adTH) // ceil
	if nStar < 1 {
		nStar = 1
	}
	if nStar > nEntry {
		nStar = nEntry
	}
	sum := float64(rfmTH) * Harmonic(nStar)
	tail := (float64(w-nStar+nEntry-2)*float64(rfmTH) + float64(nEntry-nStar)*float64(adTH)) / float64(nEntry)
	return sum + tail
}

// DoubleSidedBlast is the aggregated RH effect of a double-sided attack
// (range 1): safety requires M < FlipTH/2.
const DoubleSidedBlast = 2.0

// NonAdjacentBlast is the aggregated RH effect within range 3 reported by
// BlockHammer and adopted in Section V-C: M < FlipTH/3.5, with six victim
// rows refreshed per preventive refresh.
const NonAdjacentBlast = 3.5

// MinNEntry returns the smallest table size N such that the (adaptive)
// bound stays below FlipTH/blast for the given RFMTH. ok is false when no
// N achieves it (the bound's harmonic term eventually grows with N, so
// feasibility is decidable by scanning up to N ≈ W).
func MinNEntry(p timing.Params, flipTH, rfmTH, adTH int, blast float64) (n int, ok bool) {
	if flipTH <= 0 || rfmTH <= 0 || blast <= 0 {
		return 0, false
	}
	target := float64(flipTH) / blast
	w := p.RFMIntervalsPerREFW(rfmTH)
	limit := w + 16 // M is increasing in N beyond N ≈ W−2
	for n := 1; n <= limit; n++ {
		if BoundMPrime(p, n, rfmTH, adTH) < target {
			return n, true
		}
	}
	return 0, false
}

// LossyBoundM is the analogue of BoundM for a greedy RFM scheme built on
// Lossy Counting instead of CbS (the dotted lines of Figure 6).
//
// Derivation (substitution documented in DESIGN.md §3): Lossy Counting has
// the lower bound f ≤ true but its upper bound carries the per-entry slack
// Δ ≤ S/N (S = ACTs per tREFW, N = table entries ≈ 1/ε). After the greedy
// preventive refresh, the selected entry's estimate can only be safely
// lowered to f − Δ ≥ estimate − S/N, so every tREFW window leaks an extra
// S/N of bound growth compared to CbS:
//
//	M_LC = M_CbS + S/N
func LossyBoundM(p timing.Params, nEntry, rfmTH int) float64 {
	if nEntry <= 0 || rfmTH <= 0 {
		return math.Inf(1)
	}
	s := float64(p.ACTsPerREFW())
	return BoundM(p, nEntry, rfmTH) + s/float64(nEntry)
}

// MinNEntryLossy is MinNEntry for the Lossy-Counting variant.
func MinNEntryLossy(p timing.Params, flipTH, rfmTH int, blast float64) (n int, ok bool) {
	if flipTH <= 0 || rfmTH <= 0 || blast <= 0 {
		return 0, false
	}
	target := float64(flipTH) / blast
	w := p.RFMIntervalsPerREFW(rfmTH)
	limit := 4*w + 64
	for n := 1; n <= limit; n++ {
		if LossyBoundM(p, n, rfmTH) < target {
			return n, true
		}
	}
	return 0, false
}

// Config is one feasible Mithril operating point.
type Config struct {
	FlipTH int
	RFMTH  int
	NEntry int
	AdTH   int
	// M is the Theorem 1/2 bound achieved by this configuration.
	M float64
	// TableKB is the per-bank counter table size in kilobytes.
	TableKB float64
	// CounterBits is the wrapping-counter width (Section IV-E).
	CounterBits int
}

// String renders the configuration compactly for reports.
func (c Config) String() string {
	return fmt.Sprintf("FlipTH=%d RFMTH=%d N=%d AdTH=%d M=%.0f table=%.2fKB",
		c.FlipTH, c.RFMTH, c.NEntry, c.AdTH, c.M, c.TableKB)
}

// AddressBits returns the row-address width for a bank with rows rows.
func AddressBits(rows int) int {
	bits := 0
	for (1 << uint(bits)) < rows {
		bits++
	}
	return bits
}

// MithrilCounterBits sizes the wrapping count-CAM entry: enough bits to keep
// modular order for a spread bounded by M (Section IV-E / Table IV).
func MithrilCounterBits(m float64) int {
	if m < 0 {
		m = 0
	}
	return streaming.WrapCounterBits(uint64(math.Ceil(m)))
}

// Configure computes the minimal Mithril configuration for a target FlipTH
// at a given RFMTH and AdTH (use adTH = 0 for the plain Theorem 1 sizing).
func Configure(p timing.Params, flipTH, rfmTH, adTH int, blast float64) (Config, bool) {
	n, ok := MinNEntry(p, flipTH, rfmTH, adTH, blast)
	if !ok {
		return Config{}, false
	}
	m := BoundMPrime(p, n, rfmTH, adTH)
	cbits := MithrilCounterBits(m)
	entryBits := AddressBits(p.Rows) + cbits
	return Config{
		FlipTH:      flipTH,
		RFMTH:       rfmTH,
		NEntry:      n,
		AdTH:        adTH,
		M:           m,
		TableKB:     float64(n*entryBits) / 8 / 1024,
		CounterBits: cbits,
	}, true
}

// ConfigCurve returns, for one FlipTH, the feasible (RFMTH → table size)
// curve of Figure 6. Infeasible RFMTH values are skipped.
func ConfigCurve(p timing.Params, flipTH int, rfmTHs []int, adTH int, blast float64) []Config {
	out := make([]Config, 0, len(rfmTHs))
	for _, r := range rfmTHs {
		if c, ok := Configure(p, flipTH, r, adTH, blast); ok {
			out = append(out, c)
		}
	}
	return out
}

// LossyConfigCurve is ConfigCurve for the Lossy-Counting variant (Figure 6
// dotted lines). Entry width: address bits + full (non-wrapping) counter of
// ⌈log2 S⌉ bits + Δ field of the same width, as Lossy Counting must retain
// absolute counts and per-entry error terms.
func LossyConfigCurve(p timing.Params, flipTH int, rfmTHs []int, blast float64) []Config {
	s := p.ACTsPerREFW()
	cbits := 0
	for (1 << uint(cbits)) < s {
		cbits++
	}
	out := make([]Config, 0, len(rfmTHs))
	for _, r := range rfmTHs {
		n, ok := MinNEntryLossy(p, flipTH, r, blast)
		if !ok {
			continue
		}
		entryBits := AddressBits(p.Rows) + 2*cbits
		out = append(out, Config{
			FlipTH:      flipTH,
			RFMTH:       r,
			NEntry:      n,
			M:           LossyBoundM(p, n, r),
			TableKB:     float64(n*entryBits) / 8 / 1024,
			CounterBits: cbits,
		})
	}
	return out
}

// AdditionalNEntryPercent quantifies the Figure 7 right axis: the extra
// table entries the adaptive-refresh policy requires to preserve the same
// FlipTH guarantee, relative to AdTH = 0.
func AdditionalNEntryPercent(p timing.Params, flipTH, rfmTH, adTH int) (float64, bool) {
	base, ok1 := MinNEntry(p, flipTH, rfmTH, 0, DoubleSidedBlast)
	adapt, ok2 := MinNEntry(p, flipTH, rfmTH, adTH, DoubleSidedBlast)
	if !ok1 || !ok2 {
		return 0, false
	}
	return 100 * float64(adapt-base) / float64(base), true
}
