// Package bad reads ambient process state from simulator-core positions.
package bad

import (
	"math/rand"
	"os"
	"time"
)

func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now makes the simulator depend on ambient state"
}

func Roll() int {
	return rand.Intn(6) // want "math/rand.Intn makes the simulator depend on ambient state"
}

func Env() string {
	return os.Getenv("HOME") // want "os.Getenv makes the simulator depend on ambient state"
}

func Read(path string) ([]byte, error) {
	return os.ReadFile(path) // want "os.ReadFile makes the simulator depend on ambient state"
}
