package expspec

import (
	"encoding/json"
	"testing"

	"mithril/internal/resultstore"
)

// keySet expands a spec at sc and returns every cacheable cell's key.
func keySet(t *testing.T, s *Spec, sc Scale) map[resultstore.Key]bool {
	t.Helper()
	stamp := StoreStamp()
	keys := map[resultstore.Key]bool{}
	for _, c := range s.Expand(sc) {
		k, ok, err := s.cellKey(sc, c, stamp)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			keys[k] = true
		}
	}
	return keys
}

func sameKeySet(a, b map[resultstore.Key]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Axis order is presentation, not content: permuting every axis of a
// spec must leave the key set untouched (the rows are the same rows),
// even though Expand's emission order changes.
func TestCellKeyInvariantUnderAxisReorder(t *testing.T) {
	fwd := &Spec{
		Name: "k", Kind: Comparison,
		Scale: ScaleSpec{Preset: "quick"},
		Axes: Axes{
			Schemes:   []string{"none", "mithril", "graphene"},
			FlipTHs:   []int{6250, 1500},
			Workloads: []string{"mix-high", "fft"},
			Attacks:   []string{"single", "double"},
			Seeds:     []uint64{1, 2},
		},
	}
	rev := &Spec{
		Name: "k-reordered", Kind: Comparison,
		Scale: ScaleSpec{Preset: "quick"},
		Axes: Axes{
			Schemes:   []string{"graphene", "mithril", "none"},
			FlipTHs:   []int{1500, 6250},
			Workloads: []string{"fft", "mix-high"},
			Attacks:   []string{"double", "single"},
			Seeds:     []uint64{2, 1},
		},
	}
	sc := QuickScale()
	a, b := keySet(t, fwd, sc), keySet(t, rev, sc)
	if len(a) != 2*2*3*(2+2) {
		t.Fatalf("key set size = %d", len(a))
	}
	if !sameKeySet(a, b) {
		t.Fatal("axis reorder changed the key set")
	}
}

// Two spellings of one canonical attack are one pattern and must share a
// key; the adth workload axis likewise keys by sorted set, not order.
func TestCellKeyCanonicalSpellings(t *testing.T) {
	sc := QuickScale()
	stamp := StoreStamp()
	s := &Spec{Name: "k", Kind: SafetyKind, Scale: ScaleSpec{Preset: "quick"},
		Axes: Axes{Schemes: []string{"mithril"}, FlipTHs: []int{2000}, Attacks: []string{"multi:8"}}}
	base := Cell{Seed: 1, FlipTH: 2000, Scheme: "mithril", Attack: "multi:8"}
	k1, ok, err := s.cellKey(sc, base, stamp)
	if err != nil || !ok {
		t.Fatalf("cellKey: %v %v", ok, err)
	}
	padded := base
	padded.Attack = "multi:08"
	k2, ok, err := s.cellKey(sc, padded, stamp)
	if err != nil || !ok {
		t.Fatalf("cellKey: %v %v", ok, err)
	}
	if k1 != k2 {
		t.Fatal("multi:8 and multi:08 build the same generator but key differently")
	}

	adth := &Spec{Name: "a", Kind: AdTHSweep, Scale: ScaleSpec{Preset: "quick"},
		Axes: Axes{Configs: []ConfigPoint{{FlipTH: 6250, RFMTH: 1600}}, AdTHs: []int{0},
			Workloads: []string{"multi-programmed", "multi-threaded"}}}
	adthRev := &Spec{Name: "a", Kind: AdTHSweep, Scale: ScaleSpec{Preset: "quick"},
		Axes: Axes{Configs: []ConfigPoint{{FlipTH: 6250, RFMTH: 1600}}, AdTHs: []int{0},
			Workloads: []string{"multi-threaded", "multi-programmed"}}}
	cell := Cell{Seed: 1, FlipTH: 6250, RFMTH: 1600}
	ka, _, err := adth.cellKey(sc, cell, stamp)
	if err != nil {
		t.Fatal(err)
	}
	kb, _, err := adthRev.cellKey(sc, cell, stamp)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("adth workload-axis order changed the key")
	}
}

// Every component that can change a row's values must change its key.
func TestCellKeySensitivity(t *testing.T) {
	s := &Spec{Name: "k", Kind: Comparison, Scale: ScaleSpec{Preset: "quick"},
		Axes: Axes{Schemes: []string{"mithril"}, FlipTHs: []int{6250}, Workloads: []string{"mix-high"}}}
	sc := QuickScale()
	stamp := StoreStamp()
	base := Cell{Seed: 1, FlipTH: 6250, Scheme: "mithril", Workload: "mix-high"}
	baseKey, ok, err := s.cellKey(sc, base, stamp)
	if err != nil || !ok {
		t.Fatalf("cellKey: %v %v", ok, err)
	}
	check := func(name string, spec *Spec, scale Scale, c Cell, st string) {
		t.Helper()
		k, ok, err := spec.cellKey(scale, c, st)
		if err != nil || !ok {
			t.Fatalf("%s: cellKey: %v %v", name, ok, err)
		}
		if k == baseKey {
			t.Errorf("changing %s kept the key", name)
		}
	}
	mutCell := func(name string, mut func(*Cell)) {
		c := base
		mut(&c)
		check(name, s, sc, c, stamp)
	}
	mutCell("seed", func(c *Cell) { c.Seed = 2 })
	mutCell("flipth", func(c *Cell) { c.FlipTH = 1500 })
	mutCell("rfmth", func(c *Cell) { c.RFMTH = 1600 })
	mutCell("adth", func(c *Cell) { c.AdTH = 8 })
	mutCell("scheme", func(c *Cell) { c.Scheme = "graphene" })
	mutCell("workload", func(c *Cell) { c.Workload = "fft" })
	mutCell("adversarial", func(c *Cell) { c.Adversarial = true })
	mutCell("attack", func(c *Cell) { c.Attack = "single" })

	mutScale := func(name string, mut func(*Scale)) {
		s2 := sc
		mut(&s2)
		check(name, s, s2, base, stamp)
	}
	mutScale("cores", func(x *Scale) { x.Cores = 4 })
	mutScale("instr", func(x *Scale) { x.InstrPerCore = 777 })
	mutScale("timescale", func(x *Scale) { x.TimeScale = 4 })

	// Jobs must NOT change the key: worker count cannot change row values
	// (parallel and serial sweeps are byte-identical by contract).
	jobs := sc
	jobs.Jobs = 3
	k, _, err := s.cellKey(jobs, base, stamp)
	if err != nil {
		t.Fatal(err)
	}
	if k != baseKey {
		t.Error("worker count changed the key; warm stores would miss across -jobs settings")
	}

	// Kind and stamp discriminate too.
	s2 := *s
	s2.Kind = SafetyKind
	check("kind", &s2, sc, base, stamp)
	check("stamp", s, sc, base, "v999+deadbeef")
}

// trace:<path> workloads replay file contents the key cannot see: never
// cacheable, in any kind that accepts them.
func TestCellKeyTraceWorkloadsUncacheable(t *testing.T) {
	s := &Spec{Name: "k", Kind: Comparison, Scale: ScaleSpec{Preset: "quick"},
		Axes: Axes{Schemes: []string{"mithril"}, Workloads: []string{"trace:/tmp/x.trace"}}}
	_, ok, err := s.cellKey(QuickScale(), Cell{Seed: 1, FlipTH: 6250, Scheme: "mithril", Workload: "trace:/tmp/x.trace"}, StoreStamp())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("trace workload reported cacheable")
	}
}

// Stored payloads must round-trip exactly and refuse kind mismatches.
func TestStoredRowRoundTrip(t *testing.T) {
	row := Row{Index: 3, Perf: &PerfPoint{
		Scheme: "mithril", FlipTH: 6250, Workload: "mix-high", Seed: 1,
		RelativePerformance: 98.7654321012345, EnergyOverheadPct: 1.0000000000000002,
		TableKB: 33.3, Safe: true,
	}}
	payload, err := encodeRow(row)
	if err != nil {
		t.Fatal(err)
	}
	var back Row
	if !decodeRow(Comparison, payload, &back) {
		t.Fatal("decodeRow rejected a matching payload")
	}
	if *back.Perf != *row.Perf {
		t.Fatalf("round trip drifted: %+v vs %+v", back.Perf, row.Perf)
	}
	var wrong Row
	if decodeRow(SafetyKind, payload, &wrong) {
		t.Fatal("decodeRow accepted a comparison payload for a safety row")
	}
	if decodeRow(Comparison, json.RawMessage(`{not json`), &wrong) {
		t.Fatal("decodeRow accepted garbage")
	}
}
