// Package lint is mithril's repo-specific static-analysis suite: a small
// go/analysis-style framework plus the analyzers that turn the repo's
// load-bearing runtime invariants — the allocation-free steady-state hot
// path, byte-identical deterministic output, and init-time registry
// discipline — into compile-time checks. The cmd/mithrilvet multichecker
// runs every analyzer over the module and fails, go vet-style, on any
// finding.
//
// The framework is deliberately self-contained: it is built on the
// standard library's go/ast, go/parser, go/types and go/importer only
// (dependency type information is read from compiler export data produced
// by `go list -export`), so the linter needs no module dependencies and
// runs in the same offline environments the simulator does.
//
// Analysis is interprocedural: RunAnalyzers builds a module-wide call
// graph once (static calls exact; interface calls over-approximated by
// method-set matching; function-value calls by signature matching) and
// a may-block fixpoint over it, shared by every analyzer through
// Pass.Graph — the foundation under ctxflow, goleak, and lockheld, and
// the call-resolution engine behind hotpathalloc's closure rule.
//
// Two source annotations steer the analyzers:
//
//	//mithril:hotpath
//	    on a function declaration marks it as part of the steady-state
//	    simulation path checked by the hotpathalloc analyzer.
//
//	//mithril:allow <analyzer> [reason]
//	    on (or immediately above) a line suppresses that analyzer's
//	    findings for the line — the whitelist mechanism for deliberate,
//	    explained exceptions such as lazy one-time initialisation inside
//	    an otherwise allocation-free method.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotpathMarker is the comment line that marks a function declaration as
// steady-state hot path.
const HotpathMarker = "//mithril:hotpath"

// allowPrefix starts a suppression comment: "//mithril:allow <analyzer> [reason]".
const allowPrefix = "//mithril:allow"

// An Analyzer describes one static check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer, reduced to what the suite
// needs: a name, a doc string, and a Run function reporting diagnostics
// through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package and collects
// its diagnostics. Suppression comments are applied after Run returns, so
// analyzers report unconditionally.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Index     *Index
	Graph     *CallGraph

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding before suppression filtering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is one reportable analyzer result with its resolved position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the canonical file:line:col form consumed
// by editors and CI logs.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Index is the module-wide annotation index shared by every pass: which
// functions are marked //mithril:hotpath, keyed by a stable string ID
// ("pkgpath.Func" or "pkgpath.(Recv).Method") that is derivable both from
// an AST declaration and from a types.Func, so cross-package calls resolve
// against annotations in packages loaded only as export data.
type Index struct {
	Hotpath map[string]bool
}

// FuncID returns the index key for a declared function in pkgPath:
// "pkg.Name" for functions, "pkg.(Recv).Name" for methods (pointer
// receivers and type parameters are stripped).
func FuncID(pkgPath string, decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return pkgPath + "." + decl.Name.Name
	}
	return pkgPath + ".(" + recvTypeName(decl.Recv.List[0].Type) + ")." + decl.Name.Name
}

// recvTypeName extracts the bare named type from a receiver type
// expression, unwrapping pointers and generic instantiations.
func recvTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// TypesFuncID returns the index key for a resolved function object, or ""
// for interface methods (dynamic dispatch — never statically resolvable to
// an annotation).
func TypesFuncID(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	recv := sig.Recv()
	if recv == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	t := recv.Type()
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
	}
	switch tt := t.(type) {
	case *types.Named:
		// A method whose receiver is a named interface type is dynamic
		// dispatch too: the call site never resolves to one concrete body.
		if _, iface := tt.Underlying().(*types.Interface); iface {
			return ""
		}
		return fn.Pkg().Path() + ".(" + tt.Obj().Name() + ")." + fn.Name()
	case *types.Interface:
		return ""
	default:
		return ""
	}
}

// HotpathDecl reports whether a function declaration carries the
// //mithril:hotpath marker in its doc comment.
func HotpathDecl(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == HotpathMarker || strings.HasPrefix(text, HotpathMarker+" ") {
			return true
		}
	}
	return false
}

// suppressions maps file name -> line -> analyzer names allowed there. A
// suppression comment covers its own line and the line below it, so both
// trailing ("stmt // mithril:allow x") and preceding-line forms work.
type suppressions map[string]map[int]map[string]bool

// collectSuppressions scans a file's comments for //mithril:allow markers.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name := rest
				if i := strings.IndexByte(rest, ' '); i >= 0 {
					name = rest[:i]
				}
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					sup[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					byLine[line][name] = true
				}
			}
		}
	}
	return sup
}

func (s suppressions) allows(pos token.Position, analyzer string) bool {
	byLine := s[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][analyzer]
}

// RunAnalyzers applies every analyzer to every package, filters suppressed
// diagnostics, and returns the surviving findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	index := BuildIndex(pkgs)
	graph := BuildCallGraph(pkgs)
	var findings []Finding
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue // dependency package loaded for annotation scanning only
		}
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Index:     index,
				Graph:     graph,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range pass.diags {
				pos := pkg.Fset.Position(d.Pos)
				if sup.allows(pos, a.Name) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// BuildIndex collects //mithril:hotpath annotations across all loaded
// packages (the loader parses every module package in the dependency
// closure, so cross-package calls resolve even under narrow patterns).
func BuildIndex(pkgs []*Package) *Index {
	idx := &Index{Hotpath: map[string]bool{}}
	for _, pkg := range pkgs {
		pkg.addAnnotations(idx)
	}
	return idx
}

func (p *Package) addAnnotations(idx *Index) {
	for _, f := range append(p.Files, p.IndexOnlyFiles...) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if HotpathDecl(fd) {
				idx.Hotpath[FuncID(p.PkgPath, fd)] = true
			}
		}
	}
}
