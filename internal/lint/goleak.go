package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak demands a provable exit path for every goroutine the module
// spawns — the static twin of internal/testutil's runtime leak checker,
// and the analyzer behind the streaming layer's "no goroutine leaks
// however a stream ends" promise. For each go statement it resolves the
// goroutine body (function literals directly; named functions through the
// call graph) and flags the blocking constructs that can pin a goroutine
// forever:
//
//   - a channel send outside a select, or in a select with no receive or
//     default arm — the classic streaming leak when the consumer stops
//     reading and nothing cancels the producer;
//   - a bare receive from a channel that is neither a Done() channel nor
//     closed by the spawning function;
//   - ranging over a channel the spawning function never closes;
//   - an unconditional for loop with no return or break;
//   - waiting on a WaitGroup the spawning function never Adds to;
//   - a dynamic spawn target the call graph cannot resolve to a body.
//
// Goroutines that do bounded work and return (WaitGroup-joined workers)
// pass because they contain none of the above.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "every go statement's goroutine must have a provable exit path",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if gs, okGo := n.(*ast.GoStmt); okGo {
					checkGoStmt(pass, fd.Body, gs)
				}
				return true
			})
		}
	}
	return nil
}

// checkGoStmt resolves one go statement's body and scans it for leak
// hazards. The spawner body provides the close/Add context: a range over
// ch is fine when the spawner closes ch, a Wait is fine when the spawner
// Adds.
func checkGoStmt(pass *Pass, spawnerBody *ast.BlockStmt, gs *ast.GoStmt) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		tg := pass.Graph.ResolveCall(pass.TypesInfo, gs.Call)
		if tg.Kind == CallStatic && len(tg.IDs) == 1 {
			if node := pass.Graph.Nodes[tg.IDs[0]]; node != nil {
				body = node.Decl.Body
			}
		}
	}
	if body == nil {
		pass.Reportf(gs.Pos(), "cannot prove this goroutine exits: dynamic spawn target (spawn a function literal with an explicit exit path, or annotate //mithril:allow goleak)")
		return
	}
	scanGoroutineBody(pass, spawnerBody, body)
}

// scanGoroutineBody walks one goroutine body (skipping nested function
// literals and nested go statements, which are analyzed at their own
// sites) and reports leak hazards.
func scanGoroutineBody(pass *Pass, spawnerBody *ast.BlockStmt, body *ast.BlockStmt) {
	closed := closedChans(spawnerBody)
	added := waitGroupAdds(spawnerBody)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			checkGoroutineSelect(pass, nn, walk)
			return false
		case *ast.SendStmt:
			pass.Reportf(nn.Pos(), "goroutine blocks on a channel send with no cancellation arm (select on the send with a ctx.Done()/done case)")
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW && !isDoneCall(nn.X) && !closed[chanKey(nn.X)] {
				pass.Reportf(nn.Pos(), "goroutine blocks on a channel receive the spawner can never satisfy (receive from a Done() channel, or close the channel in the spawner)")
			}
		case *ast.RangeStmt:
			if isChanExpr(pass.TypesInfo, nn.X) && !closed[chanKey(nn.X)] {
				pass.Reportf(nn.Pos(), "goroutine ranges over a channel the spawner never closes")
			}
		case *ast.ForStmt:
			if nn.Cond == nil && !hasLoopExit(nn.Body) {
				pass.Reportf(nn.Pos(), "goroutine loops forever with no exit path (no return or break reachable in the loop body)")
			}
		case *ast.CallExpr:
			if recv, isWait := syncWaitCall(pass.TypesInfo, nn); isWait && !added[recv] {
				pass.Reportf(nn.Pos(), "goroutine waits on a WaitGroup the spawner never Adds to (Wait belongs in the spawner, after wg.Add)")
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkGoroutineSelect scans a select inside a goroutine: its sends are
// fine only when the select also has a receive or default arm to escape
// through; case bodies are scanned recursively.
func checkGoroutineSelect(pass *Pass, sel *ast.SelectStmt, walk func(ast.Node) bool) {
	escape := false
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		switch comm := cc.Comm.(type) {
		case nil: // default
			escape = true
		case *ast.ExprStmt, *ast.AssignStmt:
			escape = true // receive arm
		case *ast.SendStmt:
			_ = comm
		}
	}
	if !escape {
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if send, isSend := cc.Comm.(*ast.SendStmt); isSend {
					pass.Reportf(send.Pos(), "goroutine blocks on a channel send with no cancellation arm (add a ctx.Done()/done receive case to the select)")
				}
			}
		}
	}
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok {
			for _, stmt := range cc.Body {
				ast.Inspect(stmt, walk)
			}
		}
	}
}

// closedChans collects the render of every close(ch) argument in the
// spawner body (including closes performed by the goroutines it spawns —
// a sibling goroutine closing the channel is an exit path too).
func closedChans(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, okID := ast.Unparen(call.Fun).(*ast.Ident); okID && id.Name == "close" && len(call.Args) == 1 {
			out[chanKey(call.Args[0])] = true
		}
		return true
	})
	return out
}

// waitGroupAdds collects the receiver render of every X.Add(...) call in
// the spawner body.
func waitGroupAdds(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); okSel && sel.Sel.Name == "Add" {
			out[chanKey(sel.X)] = true
		}
		return true
	})
	return out
}

// chanKey renders a channel (or receiver) expression for matching between
// goroutine and spawner bodies.
func chanKey(expr ast.Expr) string {
	return types.ExprString(ast.Unparen(expr))
}

// isDoneCall reports whether expr is a X.Done() call — the context (and
// convention-following custom) cancellation channel.
func isDoneCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}

// hasLoopExit reports whether a loop body contains a return or break
// (outside nested loops and function literals, where they would not exit
// this loop).
func hasLoopExit(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch nn := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.ReturnStmt:
			found = true
			return false
		case *ast.BranchStmt:
			if nn.Tok == token.BREAK {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// syncWaitCall matches X.Wait() where X is a sync.WaitGroup or sync.Cond,
// returning the rendered receiver.
func syncWaitCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	return chanKey(sel.X), true
}
