module mithril

go 1.23
