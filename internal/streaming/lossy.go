package streaming

import "fmt"

// LossyCounting implements the Manku–Motwani lossy counting algorithm, the
// tracking mechanism underlying TWiCe. The stream is divided into buckets of
// width W; each tracked key stores its observed frequency f and the maximum
// possible undercount Δ (the bucket id at insertion). At bucket boundaries,
// entries with f + Δ ≤ current bucket id are pruned.
//
// Like CbS it provides both bounds needed for deterministic RH protection —
// true ≤ f + Δ and f ≤ true — but it is algorithmically less efficient: the
// live table can grow to several times 1/ε entries and the Δ slack inflates
// the bound used for greedy RFM selection (see analysis.LossyBoundM and the
// dotted lines of Figure 6).
type LossyCounting struct {
	width   int // bucket width W = ⌈1/ε⌉
	current int // current bucket id
	seen    int // items observed in the current bucket
	table   map[uint32]*lossyEntry
	maxLive int // high-water mark of table occupancy
}

type lossyEntry struct {
	f     uint64
	delta uint64
}

// NewLossyCounting returns a lossy counter with error bound ε = 1/width.
func NewLossyCounting(width int) *LossyCounting {
	if width <= 0 {
		panic(fmt.Sprintf("streaming: LossyCounting width must be positive, got %d", width))
	}
	return &LossyCounting{width: width, current: 1, table: make(map[uint32]*lossyEntry)}
}

// Observe records one occurrence of key.
//
//mithril:hotpath
func (l *LossyCounting) Observe(key uint32) {
	if e, ok := l.table[key]; ok {
		e.f++
	} else {
		l.table[key] = &lossyEntry{f: 1, delta: uint64(l.current - 1)} //mithril:allow hotpathalloc heap-backed table is TWiCe's modeled inefficiency, not a simulator defect
		if len(l.table) > l.maxLive {
			l.maxLive = len(l.table)
		}
	}
	l.seen++
	if l.seen == l.width {
		l.prune()
		l.seen = 0
		l.current++
	}
}

//mithril:hotpath
func (l *LossyCounting) prune() {
	for key, e := range l.table {
		if e.f+e.delta <= uint64(l.current) {
			delete(l.table, key)
		}
	}
}

// Estimate reports the conservative upper bound f + Δ for on-table keys and
// the maximum undercount (current bucket id − 1) otherwise, mirroring how a
// deterministic RH scheme must treat untracked rows.
//
//mithril:hotpath
func (l *LossyCounting) Estimate(key uint32) uint64 {
	if e, ok := l.table[key]; ok {
		return e.f + e.delta
	}
	return uint64(l.current - 1)
}

// ObservedFrequency reports the exact observed-since-insertion frequency f
// (0 for untracked keys); true count is in [f, f+Δ].
func (l *LossyCounting) ObservedFrequency(key uint32) uint64 {
	if e, ok := l.table[key]; ok {
		return e.f
	}
	return 0
}

// Contains reports whether key is currently tracked.
func (l *LossyCounting) Contains(key uint32) bool {
	_, ok := l.table[key]
	return ok
}

// Len is the current number of tracked entries.
func (l *LossyCounting) Len() int { return len(l.table) }

// MaxLive is the high-water mark of tracked entries — the size the hardware
// table must provision, which is the area-relevant number for TWiCe.
func (l *LossyCounting) MaxLive() int { return l.maxLive }

// Width reports the bucket width (1/ε).
func (l *LossyCounting) Width() int { return l.width }

// Max returns the key with the largest conservative estimate, for greedy
// selection experiments. ok is false when nothing is tracked.
func (l *LossyCounting) Max() (uint32, uint64, bool) {
	var (
		bestKey uint32
		bestEst uint64
		found   bool
	)
	for key, e := range l.table {
		if est := e.f + e.delta; !found || est > bestEst || (est == bestEst && key < bestKey) {
			bestKey, bestEst, found = key, est, true
		}
	}
	return bestKey, bestEst, found
}

// Drop removes a key (TWiCe prunes a row after its victims are refreshed).
//
//mithril:hotpath
func (l *LossyCounting) Drop(key uint32) { delete(l.table, key) }

// Reset clears the tracker.
func (l *LossyCounting) Reset() {
	l.table = make(map[uint32]*lossyEntry)
	l.current = 1
	l.seen = 0
	l.maxLive = 0
}
