package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// RegisterInit enforces the two registry/ownership contracts that keep the
// open scheme/workload/attack registries sound:
//
//  1. Every call to a package-level Register* function must happen inside
//     an init function (or a Register*-named forwarding wrapper) with a
//     compile-time-constant name, so the registry's contents are a static
//     property of the import graph — never dependent on call order or
//     runtime strings.
//
//  2. The result of a Scheme's OnActivate/OnRFM must not be stored into a
//     struct field or package variable: the returned victim slice is owned
//     by the scheme and only valid until its next call (the mc.Scheme
//     ownership contract). Retaining callers must copy, e.g. via
//     append(dst[:0], victims...) or the controller's victim pool.
var RegisterInit = &Analyzer{
	Name: "registerinit",
	Doc:  "Register* calls only from init with literal names; never retain scheme-owned victim slices",
	Run:  runRegisterInit,
}

func runRegisterInit(pass *Pass) error {
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkRegisterCalls(pass, d)
				if d.Body != nil {
					checkVictimRetention(pass, d.Body)
				}
			case *ast.GenDecl:
				// Package-level var initialisers can also retain.
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							if isSchemeVictimCall(pass, v) {
								pass.Reportf(v.Pos(), "package variable retains a scheme-owned victim slice (copy it; see mc.Scheme)")
							}
						}
					}
				}
			}
		}
	}
	return nil
}

// checkRegisterCalls validates every Register* call inside one function.
func checkRegisterCalls(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	inInit := fd.Recv == nil && fd.Name.Name == "init"
	isForwarder := strings.HasPrefix(fd.Name.Name, "Register")
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pass.TypesInfo, call)
		if fn == nil || !strings.HasPrefix(fn.Name(), "Register") {
			return true
		}
		if sig, okSig := fn.Type().(*types.Signature); !okSig || sig.Recv() != nil {
			return true // methods named Register* are not registry entry points
		}
		if !inInit && !isForwarder {
			pass.Reportf(call.Pos(), "%s called outside an init function (registries must be static properties of the import graph)", fn.Name())
		}
		// A Register*-named forwarder passes its caller's name through;
		// the literal-name rule applies at the forwarder's call sites.
		if len(call.Args) > 0 && !isForwarder {
			tv, okTV := pass.TypesInfo.Types[call.Args[0]]
			if okTV {
				if basic, okB := tv.Type.Underlying().(*types.Basic); okB && basic.Info()&types.IsString != 0 {
					if tv.Value == nil || tv.Value.Kind() != constant.String {
						pass.Reportf(call.Args[0].Pos(), "%s name must be a compile-time string constant", fn.Name())
					}
				}
			}
		}
		return true
	})
}

// checkVictimRetention flags direct stores of OnActivate/OnRFM results
// into fields, package variables, or composite literals. Local bindings
// and element-copying uses (append(dst, victims...)) are fine.
func checkVictimRetention(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				if i >= len(node.Lhs) || !isSchemeVictimCall(pass, rhs) {
					continue
				}
				if retainingLHS(pass, node.Lhs[i]) {
					pass.Reportf(rhs.Pos(), "retains a scheme-owned victim slice beyond the next OnActivate/OnRFM call (copy it; see mc.Scheme)")
				}
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isSchemeVictimCall(pass, v) {
					pass.Reportf(v.Pos(), "composite literal retains a scheme-owned victim slice (copy it; see mc.Scheme)")
				}
			}
		}
		return true
	})
}

// retainingLHS reports whether an assignment target outlives the statement
// scope: a struct field selector, an index into non-local storage, or a
// package-level variable.
func retainingLHS(pass *Pass, lhs ast.Expr) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return true
		}
		// Package-qualified var.
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
			return true
		}
	case *ast.IndexExpr:
		return true
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
	}
	return false
}

// isSchemeVictimCall reports whether expr is a direct x.OnActivate(...) or
// x.OnRFM(...) call returning a slice.
func isSchemeVictimCall(pass *Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "OnActivate" && sel.Sel.Name != "OnRFM" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	_, isSlice := tv.Type.Underlying().(*types.Slice)
	return isSlice
}
