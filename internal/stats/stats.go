// Package stats provides the small numeric and formatting helpers the
// experiment harness uses: geometric means for workload aggregation (the
// paper reports geo-means across workloads) and aligned text tables for the
// CLI reports.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Geomean returns the geometric mean; it panics on non-positive inputs
// (normalized IPCs are positive by construction).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: Geomean of non-positive value %v", x))
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Table renders aligned text tables for CLI output.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// Add appends one row; missing cells render empty.
func (t *Table) Add(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		var line strings.Builder
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(c)
			line.WriteString(strings.Repeat(" ", w-len(c)))
		}
		// The final cell's padding (and any empty trailing cells) would
		// leave trailing whitespace on every row; trim it.
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
