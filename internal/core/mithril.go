// Package core implements the paper's primary contribution: the per-bank
// Mithril module (Section IV) — a Counter-based Summary table driven by ACT
// and RFM commands, greedy victim selection at every RFM, the adaptive
// refresh policy (Section V-A), the Mithril+ skip flag (Section V-B), and
// the wrapping-counter table (Section IV-E).
//
// One Mithril value corresponds to the "Mithril logic" block of Figure 4:
// it is instantiated once per DRAM bank and observes that bank's command
// stream.
package core

import (
	"fmt"

	"mithril/internal/streaming"
)

// Config selects a Mithril operating point.
type Config struct {
	// NEntry is the counter table capacity (address CAM + count CAM pairs).
	NEntry int
	// RFMTH is the MC-side activation threshold that paces RFM commands.
	// The module itself does not enforce it, but records it for reports.
	RFMTH int
	// AdTH enables the adaptive refresh policy when positive: a preventive
	// refresh is executed only when MaxPtr−MinPtr exceeds AdTH.
	AdTH int
	// BlastRadius is the per-side victim range covered by a preventive
	// refresh (1 = double-sided neighbours, 3 = non-adjacent model of
	// Section V-C with six victims).
	BlastRadius int
	// UseScanTable selects the scan-based reference table instead of the
	// O(1) Stream-Summary structure (ablation).
	UseScanTable bool
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.NEntry <= 0 {
		return fmt.Errorf("core: NEntry must be positive, got %d", c.NEntry)
	}
	if c.RFMTH <= 0 {
		return fmt.Errorf("core: RFMTH must be positive, got %d", c.RFMTH)
	}
	if c.AdTH < 0 {
		return fmt.Errorf("core: AdTH must be non-negative, got %d", c.AdTH)
	}
	if c.BlastRadius < 0 {
		return fmt.Errorf("core: BlastRadius must be non-negative, got %d", c.BlastRadius)
	}
	return nil
}

// Stats counts the module's observable events.
type Stats struct {
	ACTs                uint64 // activations observed
	RFMs                uint64 // RFM commands received
	PreventiveRefreshes uint64 // RFMs that executed a preventive refresh
	AdaptiveSkips       uint64 // RFMs skipped by the adaptive policy
	VictimRowsRefreshed uint64 // total victim rows written back
	MaxSpreadSeen       uint64 // high-water mark of MaxPtr−MinPtr
}

// Mithril is the per-bank protection module.
type Mithril struct {
	cfg   Config
	table streaming.Summary
	vbuf  []uint32 // reusable OnRFM victim buffer
	stats Stats
}

// New builds a Mithril module. It panics on invalid configuration — the
// module models hardware whose parameters are fixed at design time.
func New(cfg Config) *Mithril {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.BlastRadius == 0 {
		cfg.BlastRadius = 1
	}
	var table streaming.Summary
	if cfg.UseScanTable {
		table = streaming.NewCbS(cfg.NEntry)
	} else {
		table = streaming.NewSpaceSaving(cfg.NEntry)
	}
	return &Mithril{cfg: cfg, table: table}
}

// Config returns the module's configuration.
func (m *Mithril) Config() Config { return m.cfg }

// OnActivate feeds one ACT command (step 1 of Figure 4/5): CbS update with
// MaxPtr/MinPtr maintenance.
//
//mithril:hotpath
func (m *Mithril) OnActivate(row uint32) {
	m.stats.ACTs++
	m.table.Observe(row)
	if s := m.table.Spread(); s > m.stats.MaxSpreadSeen {
		m.stats.MaxSpreadSeen = s
	}
}

// OnRFM feeds one RFM command (steps 2–3 of Figure 4/5): greedy selection of
// the MaxPtr entry, preventive refresh of its victims, and decrement of its
// counter to the table minimum. With the adaptive policy enabled the refresh
// is skipped when the spread is at or below AdTH.
//
// It returns the selected aggressor and the victim rows the DRAM must
// refresh within the tRFM window; refreshed is false when the adaptive
// policy skipped the refresh (victims is then nil). The victim slice is
// owned by the module and reused on the next OnRFM — callers that retain
// it must copy.
//
//mithril:hotpath
func (m *Mithril) OnRFM() (aggressor uint32, victims []uint32, refreshed bool) {
	m.stats.RFMs++
	if m.cfg.AdTH > 0 && m.table.Spread() <= uint64(m.cfg.AdTH) {
		m.stats.AdaptiveSkips++
		return 0, nil, false
	}
	aggressor, ok := m.table.DecrementMaxToMin()
	if !ok {
		m.stats.AdaptiveSkips++
		return 0, nil, false
	}
	m.stats.PreventiveRefreshes++
	victims = AppendVictimRows(m.vbuf[:0], aggressor, m.cfg.BlastRadius)
	m.vbuf = victims
	m.stats.VictimRowsRefreshed += uint64(len(victims))
	return aggressor, victims, true
}

// SkipFlag is the Mithril+ mode-register flag (Section V-B): true when the
// table spread is at or below AdTH, telling the MC (via MRR) that the next
// RFM command may be skipped entirely.
//
//mithril:hotpath
func (m *Mithril) SkipFlag() bool {
	return m.cfg.AdTH > 0 && m.table.Spread() <= uint64(m.cfg.AdTH)
}

// Spread exposes the current MaxPtr−MinPtr difference.
//
//mithril:hotpath
func (m *Mithril) Spread() uint64 { return m.table.Spread() }

// Stats returns a copy of the module counters.
func (m *Mithril) Stats() Stats { return m.stats }

// Reset clears table and statistics (used between experiment phases; the
// hardware itself never needs it thanks to wrapping counters).
func (m *Mithril) Reset() {
	m.table.Reset()
	m.stats = Stats{}
}

// VictimRows lists the rows within blastRadius of aggressor on both sides,
// clamped at the address space boundary (row numbers are bank-local).
func VictimRows(aggressor uint32, blastRadius int) []uint32 {
	return AppendVictimRows(make([]uint32, 0, 2*blastRadius), aggressor, blastRadius)
}

// AppendVictimRows is VictimRows into a caller-provided buffer (reused by
// the module's RFM path to keep it allocation-free).
//
//mithril:hotpath
func AppendVictimRows(buf []uint32, aggressor uint32, blastRadius int) []uint32 {
	for d := 1; d <= blastRadius; d++ {
		if aggressor >= uint32(d) {
			buf = append(buf, aggressor-uint32(d))
		}
		buf = append(buf, aggressor+uint32(d))
	}
	return buf
}
