// Package cpu is the trace-driven processor model: a shared set-associative
// last-level cache and simplified out-of-order cores whose memory-level
// parallelism is bounded by MSHRs and a reorder-buffer window — the standard
// trace-simulation substitute for the paper's McSimA+ cores (Table III:
// 16 × 4-way OOO at 3.6 GHz, 16 MB LLC).
package cpu

import (
	"fmt"
	"math/bits"
	"sync"
)

// LLC is a shared set-associative last-level cache with LRU replacement.
// Tag and valid state live in two flat arrays indexed by set×ways — one
// allocation each instead of one per set, and contiguous for locality.
type LLC struct {
	sets     int
	setBits  uint // log2(sets); sets is asserted a power of two
	ways     int
	lineBits uint
	tags     []uint64 // sets×ways, LRU-ordered within a set: offset 0 = MRU
	valid    []bool

	hits   uint64
	misses uint64

	pool *llcPool // set when the cache came from AcquireLLC
}

// NewLLC builds a cache of capacityBytes with the given associativity and
// 64-byte lines. Capacity must divide evenly into sets.
func NewLLC(capacityBytes, ways int) *LLC {
	const line = 64
	if capacityBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cpu: invalid LLC geometry %d/%d", capacityBytes, ways))
	}
	sets := capacityBytes / line / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cpu: LLC sets = %d must be a positive power of two", sets))
	}
	return &LLC{
		sets: sets, setBits: uint(bits.TrailingZeros(uint(sets))), ways: ways, lineBits: 6,
		tags:  make([]uint64, sets*ways),
		valid: make([]bool, sets*ways),
	}
}

// Reset empties the cache and zeroes its counters. Only the valid bits
// need clearing — tags are never read for invalid ways — so the cost is
// one sets×ways byte memclr, a rounding error next to reallocating the
// multi-megabyte tag array.
func (l *LLC) Reset() {
	for i := range l.valid {
		l.valid[i] = false
	}
	l.hits = 0
	l.misses = 0
}

type llcKey struct{ bytes, ways int }

type llcPool struct{ p sync.Pool }

var llcPools sync.Map // llcKey → *llcPool

// AcquireLLC returns a cache indistinguishable from NewLLC's result,
// recycling a previously released one of the same geometry when available.
// Release with ReleaseLLC once the simulation is done with it.
func AcquireLLC(capacityBytes, ways int) *LLC {
	key := llcKey{bytes: capacityBytes, ways: ways}
	entry, ok := llcPools.Load(key)
	if !ok {
		entry, _ = llcPools.LoadOrStore(key, &llcPool{})
	}
	pool := entry.(*llcPool)
	if l, ok := pool.p.Get().(*LLC); ok {
		l.Reset()
		return l
	}
	l := NewLLC(capacityBytes, ways)
	l.pool = pool
	return l
}

// ReleaseLLC returns a cache obtained from AcquireLLC to its pool; caches
// built directly with NewLLC are ignored. A released cache must not be
// used again.
func ReleaseLLC(l *LLC) {
	if l == nil || l.pool == nil {
		return
	}
	l.pool.p.Put(l)
}

// Access looks up addr, updating LRU state and allocating on miss
// (write-allocate for stores). It reports whether the access hit.
//
//mithril:hotpath
func (l *LLC) Access(addr uint64) bool {
	line := addr >> l.lineBits
	set := int(line) & (l.sets - 1)
	tag := line >> l.setBits
	base := set * l.ways
	tags, valid := l.tags[base:base+l.ways], l.valid[base:base+l.ways]
	// MRU fast path: streaming workloads hit the most-recent line far more
	// often than any other way, and an MRU hit needs no LRU reshuffle.
	if valid[0] && tags[0] == tag {
		l.hits++
		return true
	}
	for w := 1; w < l.ways; w++ {
		if valid[w] && tags[w] == tag {
			// Move to MRU.
			copy(tags[1:w+1], tags[:w])
			copy(valid[1:w+1], valid[:w])
			tags[0], valid[0] = tag, true
			l.hits++
			return true
		}
	}
	// Miss: evict LRU (last way).
	copy(tags[1:], tags[:l.ways-1])
	copy(valid[1:], valid[:l.ways-1])
	tags[0], valid[0] = tag, true
	l.misses++
	return false
}

// Stats reports hit/miss counters.
func (l *LLC) Stats() (hits, misses uint64) { return l.hits, l.misses }

// HitRate reports the fraction of accesses that hit (0 when idle).
func (l *LLC) HitRate() float64 {
	total := l.hits + l.misses
	if total == 0 {
		return 0
	}
	return float64(l.hits) / float64(total)
}
