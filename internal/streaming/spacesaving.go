package streaming

import "fmt"

// SpaceSaving is the O(1)-per-update implementation of the Counter-based
// Summary algorithm, built on the Stream-Summary data structure of Metwally,
// Agrawal & El Abbadi: entries with equal counts hang off a shared bucket,
// and buckets form a doubly-linked list sorted by count. Hitting an entry
// moves it to the neighbouring bucket in O(1); the minimum and maximum are
// the first and last buckets, which is exactly the MinPtr/MaxPtr pair of the
// Mithril hardware (Figure 4 of the paper).
type SpaceSaving struct {
	capacity int
	entries  []ssEntry
	free     []int          // free-slot stack
	index    map[uint32]int // key -> entry slot
	buckets  map[uint64]*ssBucket
	minB     *ssBucket // head: smallest count
	maxB     *ssBucket // tail: largest count
}

type ssEntry struct {
	key        uint32
	bucket     *ssBucket
	prev, next int // entry list within bucket; -1 terminated
}

type ssBucket struct {
	count      uint64
	head       int // first entry slot, -1 when empty
	prev, next *ssBucket
}

var _ Summary = (*SpaceSaving)(nil)

// NewSpaceSaving returns a Stream-Summary-backed CbS with capacity entries.
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity <= 0 {
		panic(fmt.Sprintf("streaming: SpaceSaving capacity must be positive, got %d", capacity))
	}
	s := &SpaceSaving{
		capacity: capacity,
		entries:  make([]ssEntry, capacity),
		free:     make([]int, 0, capacity),
		index:    make(map[uint32]int, capacity),
		buckets:  make(map[uint64]*ssBucket),
	}
	for i := capacity - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	return s
}

// bucketFor returns the bucket for count, creating and splicing it after
// the given predecessor (which must have a smaller count, or nil to insert
// at the head).
//
//mithril:hotpath
func (s *SpaceSaving) bucketFor(count uint64, after *ssBucket) *ssBucket {
	if b, ok := s.buckets[count]; ok {
		return b
	}
	b := &ssBucket{count: count, head: -1} //mithril:allow hotpathalloc live buckets are bounded by table capacity; steady state reuses existing counts
	s.buckets[count] = b
	if after == nil {
		b.next = s.minB
		if s.minB != nil {
			s.minB.prev = b
		}
		s.minB = b
		if s.maxB == nil {
			s.maxB = b
		}
		return b
	}
	b.prev = after
	b.next = after.next
	after.next = b
	if b.next != nil {
		b.next.prev = b
	} else {
		s.maxB = b
	}
	return b
}

//mithril:hotpath
func (s *SpaceSaving) detachEntry(slot int) {
	e := &s.entries[slot]
	b := e.bucket
	if e.prev >= 0 {
		s.entries[e.prev].next = e.next
	} else {
		b.head = e.next
	}
	if e.next >= 0 {
		s.entries[e.next].prev = e.prev
	}
	e.prev, e.next, e.bucket = -1, -1, nil
	if b.head == -1 {
		s.removeBucket(b)
	}
}

//mithril:hotpath
func (s *SpaceSaving) removeBucket(b *ssBucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.minB = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		s.maxB = b.prev
	}
	delete(s.buckets, b.count)
}

//mithril:hotpath
func (s *SpaceSaving) attachEntry(slot int, b *ssBucket) {
	e := &s.entries[slot]
	e.bucket = b
	e.prev = -1
	e.next = b.head
	if b.head >= 0 {
		s.entries[b.head].prev = slot
	}
	b.head = slot
}

// Observe implements the CbS update rule in O(1).
//
//mithril:hotpath
func (s *SpaceSaving) Observe(key uint32) { s.ObserveEvict(key) }

// ObserveEvict is Observe plus eviction reporting: when recording key
// displaces the minimum entry (the CbS replacement rule), the displaced key
// is returned with ok = true. Trackers that keep per-row side state keyed
// to table residency (Graphene's trigger levels) use it to drop the
// departing row's state.
//
//mithril:hotpath
func (s *SpaceSaving) ObserveEvict(key uint32) (evicted uint32, ok bool) {
	if slot, hit := s.index[key]; hit {
		s.promote(slot, 1)
		return 0, false
	}
	if len(s.free) > 0 {
		slot := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.entries[slot] = ssEntry{key: key, prev: -1, next: -1}
		s.index[key] = slot
		// New entries start at count 1 (0 + increment).
		var pred *ssBucket
		if s.minB != nil && s.minB.count < 1 {
			pred = s.minB
		}
		s.attachEntry(slot, s.bucketFor(1, pred))
		return 0, false
	}
	// Replace an entry from the minimum bucket.
	slot := s.minB.head
	old := s.entries[slot].key
	delete(s.index, old)
	s.entries[slot].key = key
	s.index[key] = slot
	s.promote(slot, 1)
	return old, true
}

// promote moves the entry at slot up by delta counts.
//
//mithril:hotpath
func (s *SpaceSaving) promote(slot int, delta uint64) {
	b := s.entries[slot].bucket
	target := b.count + delta
	s.detachEntry(slot)
	// b may have been freed by detachEntry; find the insertion predecessor
	// starting from the bucket that preceded the target count. The common
	// case (delta == 1, neighbour bucket exists) stays O(1).
	var pred *ssBucket
	if nb, ok := s.buckets[target]; ok {
		s.attachEntry(slot, nb)
		return
	}
	// Walk from b (if alive) or from min; with delta==1 this is at most one
	// step because counts are integers.
	if bb, ok := s.buckets[b.count]; ok {
		pred = bb
	} else {
		for cur := s.minB; cur != nil && cur.count < target; cur = cur.next {
			pred = cur
		}
	}
	for pred != nil && pred.next != nil && pred.next.count < target {
		pred = pred.next
	}
	if pred != nil && pred.count >= target {
		pred = pred.prev
	}
	s.attachEntry(slot, s.bucketFor(target, pred))
}

// Estimate reports the written counter for on-table keys and Min otherwise.
//
//mithril:hotpath
func (s *SpaceSaving) Estimate(key uint32) uint64 {
	if slot, ok := s.index[key]; ok {
		return s.entries[slot].bucket.count
	}
	return s.Min()
}

// Contains reports whether key is on-table.
func (s *SpaceSaving) Contains(key uint32) bool {
	_, ok := s.index[key]
	return ok
}

// Min reports the minimum counter value (0 while the table has free slots).
//
//mithril:hotpath
func (s *SpaceSaving) Min() uint64 {
	if len(s.free) > 0 || s.minB == nil {
		return 0
	}
	return s.minB.count
}

// Max reports an entry with the maximum counter value.
//
//mithril:hotpath
func (s *SpaceSaving) Max() (uint32, uint64, bool) {
	if s.maxB == nil {
		return 0, 0, false
	}
	return s.entries[s.maxB.head].key, s.maxB.count, true
}

// DecrementMaxToMin moves one maximum entry down to the minimum count — the
// Mithril greedy RFM step — in O(1).
//
//mithril:hotpath
func (s *SpaceSaving) DecrementMaxToMin() (uint32, bool) {
	if s.maxB == nil {
		return 0, false
	}
	slot := s.maxB.head
	key := s.entries[slot].key
	target := s.Min()
	if s.maxB.count == target {
		return key, true // already at min; nothing to move
	}
	s.detachEntry(slot)
	if nb, ok := s.buckets[target]; ok {
		s.attachEntry(slot, nb)
	} else {
		// target is below every live bucket: insert at head.
		s.attachEntry(slot, s.bucketFor(target, nil))
	}
	return key, true
}

// Spread is Max − Min.
//
//mithril:hotpath
func (s *SpaceSaving) Spread() uint64 {
	if s.maxB == nil {
		return 0
	}
	return s.maxB.count - s.Min()
}

// Len reports the number of occupied entries.
func (s *SpaceSaving) Len() int { return len(s.index) }

// Cap reports the table capacity.
func (s *SpaceSaving) Cap() int { return s.capacity }

// Reset clears the structure.
func (s *SpaceSaving) Reset() {
	s.index = make(map[uint32]int, s.capacity)
	s.buckets = make(map[uint64]*ssBucket)
	s.minB, s.maxB = nil, nil
	s.free = s.free[:0]
	for i := s.capacity - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
}

// Entries returns a snapshot of (key, count) pairs for tests/diagnostics.
func (s *SpaceSaving) Entries() []Entry {
	out := make([]Entry, 0, len(s.index))
	for b := s.minB; b != nil; b = b.next {
		for slot := b.head; slot >= 0; slot = s.entries[slot].next {
			out = append(out, Entry{Key: s.entries[slot].key, Count: b.count})
		}
	}
	return out
}

// checkInvariants validates the internal structure; used by tests.
func (s *SpaceSaving) checkInvariants() error {
	seen := 0
	var prev *ssBucket
	for b := s.minB; b != nil; b = b.next {
		if prev != nil && prev.count >= b.count {
			return fmt.Errorf("buckets out of order: %d then %d", prev.count, b.count)
		}
		if b.prev != prev {
			return fmt.Errorf("bucket back-link broken at count %d", b.count)
		}
		if b.head == -1 {
			return fmt.Errorf("empty bucket with count %d survived", b.count)
		}
		for slot := b.head; slot >= 0; slot = s.entries[slot].next {
			if s.entries[slot].bucket != b {
				return fmt.Errorf("entry %d bucket pointer mismatch", slot)
			}
			seen++
		}
		prev = b
	}
	if s.maxB != prev {
		return fmt.Errorf("maxB does not point at last bucket")
	}
	if seen != len(s.index) {
		return fmt.Errorf("entry count mismatch: %d linked, %d indexed", seen, len(s.index))
	}
	return nil
}
