package mitigation

import (
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"

	"mithril/internal/mc"
	"mithril/internal/rh"
	"mithril/internal/timing"
)

func opts(flipTH int) Options {
	return Options{Timing: timing.DDR5(), FlipTH: flipTH, Seed: 7}
}

func TestBuildAllNames(t *testing.T) {
	for _, name := range Names() {
		s, err := Build(name, opts(6250))
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if name != "none" && s.Name() != name {
			t.Errorf("Build(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := Build("bogus", opts(6250)); err == nil {
		t.Fatal("unknown scheme should error")
	}
}

// TestNamesSortedGuarantee pins the documented registry contract: Names()
// returns the registered schemes in sorted order, and the shipped set is
// exactly the paper's Table I plus the unprotected baseline.
func TestNamesSortedGuarantee(t *testing.T) {
	got := Names()
	if !sort.StringsAreSorted(got) {
		t.Fatalf("Names() not sorted: %v", got)
	}
	want := []string{"blockhammer", "cbt", "graphene", "mithril", "mithril+", "none", "para", "parfm", "twice"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	// The returned slice is a copy: mutating it must not corrupt the
	// registry's view.
	got[0] = "clobbered"
	if Names()[0] != want[0] {
		t.Fatal("Names() exposed internal state")
	}
}

func TestBuildUnknownSchemeError(t *testing.T) {
	_, err := Build("bogus", opts(6250))
	if !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("err = %v, want ErrUnknownScheme", err)
	}
	// The message must name every valid scheme so a typo is self-repairing.
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid scheme %q", err, name)
		}
	}
}

func TestBuildEmptyNameIsNone(t *testing.T) {
	s, err := Build("", opts(6250))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(mc.NoProtection); !ok {
		t.Fatalf("Build(\"\") = %T, want NoProtection", s)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() {
		Register("mithril", func(Options) mc.Scheme { return mc.NoProtection{} })
	})
	mustPanic("empty name", func() {
		Register("", func(Options) mc.Scheme { return mc.NoProtection{} })
	})
	mustPanic("nil factory", func() { Register("novel-scheme", nil) })
}

// TestRegisterOutOfTree exercises the open-registry path: a scheme this
// package has never heard of becomes buildable (and listed) once
// registered.
func TestRegisterOutOfTree(t *testing.T) {
	const name = "test-only-scheme"
	Register(name, func(Options) mc.Scheme { return mc.NoProtection{} })
	t.Cleanup(func() { unregisterForTest(name) })
	s, err := Build(name, opts(6250))
	if err != nil {
		t.Fatal(err)
	}
	if s == nil {
		t.Fatal("nil scheme")
	}
	found := false
	for _, n := range Names() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v, missing %q", Names(), name)
	}
}

func TestPaperRFMTH(t *testing.T) {
	cases := map[int]int{50000: 256, 25000: 256, 12500: 128, 6250: 128, 3125: 64, 1500: 32}
	for f, want := range cases {
		if got := PaperRFMTH(f); got != want {
			t.Errorf("PaperRFMTH(%d) = %d, want %d", f, got, want)
		}
	}
}

func TestPaperRFMTHBoundaries(t *testing.T) {
	// The Section VI-A assignment is a step function on FlipTH; pin the
	// step edges and the region below the paper's lowest level.
	cases := map[int]int{
		25001: 256, 25000: 256, 24999: 128,
		6251: 128, 6250: 128, 6249: 64,
		3126: 64, 3125: 64, 3124: 32,
		1500: 32, 1499: 32, 100: 32, 1: 32,
	}
	for f, want := range cases {
		if got := PaperRFMTH(f); got != want {
			t.Errorf("PaperRFMTH(%d) = %d, want %d", f, got, want)
		}
	}
}

func TestNormalizeBoundaries(t *testing.T) {
	base := Options{Timing: timing.DDR5(), FlipTH: 6250}

	// Negative AdTH is the documented "disable adaptive refresh" encoding.
	o := base
	o.AdTH = -1
	o.normalize()
	if o.AdTH != 0 {
		t.Errorf("negative AdTH should normalize to 0 (disabled), got %d", o.AdTH)
	}

	// Zero AdTH means "paper default".
	o = base
	o.normalize()
	if o.AdTH != DefaultAdTH {
		t.Errorf("zero AdTH should normalize to %d, got %d", DefaultAdTH, o.AdTH)
	}

	// Zero seed is a sentinel for DefaultSeed: an explicit DefaultSeed is
	// indistinguishable from the zero value (documented aliasing).
	zero, explicit := base, base
	explicit.Seed = DefaultSeed
	zero.normalize()
	explicit.normalize()
	if zero.Seed != explicit.Seed {
		t.Errorf("Seed=0 (%#x) and Seed=DefaultSeed (%#x) must configure identical streams",
			zero.Seed, explicit.Seed)
	}
	if zero.Seed != DefaultSeed {
		t.Errorf("zero seed should normalize to DefaultSeed %#x, got %#x", uint64(DefaultSeed), zero.Seed)
	}

	// Any other explicit seed survives normalization.
	o = base
	o.Seed = 42
	o.normalize()
	if o.Seed != 42 {
		t.Errorf("explicit seed must be preserved, got %#x", o.Seed)
	}

	// Non-positive blast radius defaults to double-sided.
	o = base
	o.BlastRadius = -3
	o.normalize()
	if o.BlastRadius != 1 {
		t.Errorf("non-positive BlastRadius should normalize to 1, got %d", o.BlastRadius)
	}
}

// replayAttack drives a scheme directly (no full simulator): row activations
// at tRC pace with RFM every RFMTH ACTs (when compatible), applying
// ARR/preventive refreshes to a fault checker. Returns the checker report.
func replayAttack(s mc.Scheme, flipTH int, rows []uint32, nACTs int) rh.Report {
	p := timing.DDR5()
	ck := rh.NewChecker(p.Rows, flipTH, nil)
	raa := 0
	now := timing.PicoSeconds(0)
	autoRef := 0
	for i := 0; i < nACTs; i++ {
		row := rows[i%len(rows)]
		// Auto-refresh: sweep every group whose tREFI slot has elapsed
		// (throttling can fast-forward time across many slots at once).
		if target := int(now / p.TREFI); target > autoRef {
			groups := p.RefreshGroups
			rowsPer := p.Rows / groups
			for next := autoRef + 1; next <= target; next++ {
				g := next % groups
				for r := g * rowsPer; r < (g+1)*rowsPer; r++ {
					ck.OnRefresh(r)
				}
			}
			now += p.TRFC * timing.PicoSeconds(target-autoRef)
			autoRef = target
		}
		if until := s.PreACTDelay(0, row, 0, now); until > now {
			now = until
		}
		ck.OnActivate(int(row), now)
		for _, v := range s.OnActivate(0, row, 0, now) {
			ck.OnRefresh(int(v))
			now += p.TRC
		}
		now += p.TRC
		if s.RFMCompatible() {
			raa++
			if raa >= s.RFMTH() {
				raa = 0
				if !s.SkipRFM(0) {
					for _, v := range s.OnRFM(0, now) {
						ck.OnRefresh(int(v))
					}
					now += p.TRFM
				}
			}
		}
	}
	return ck.Report()
}

func TestDeterministicSchemesStopDoubleSidedAttack(t *testing.T) {
	// A double-sided attack of 4×FlipTH ACTs must not flip under any
	// deterministic scheme.
	const flipTH = 3125
	rows := []uint32{2000, 2002}
	for _, name := range []string{"graphene", "twice", "cbt", "blockhammer", "mithril", "mithril+"} {
		s, err := Build(name, opts(flipTH))
		if err != nil {
			t.Fatal(err)
		}
		rep := replayAttack(s, flipTH, rows, 4*flipTH)
		if !rep.Safe() {
			t.Errorf("%s failed to stop double-sided attack: %v", name, rep)
		}
	}
}

func TestDeterministicSchemesStopMultiSidedAttack(t *testing.T) {
	const flipTH = 6250
	rows := make([]uint32, 33)
	for i := range rows {
		rows[i] = uint32(3000 + 2*i)
	}
	for _, name := range []string{"graphene", "twice", "mithril", "mithril+"} {
		s, err := Build(name, opts(flipTH))
		if err != nil {
			t.Fatal(err)
		}
		rep := replayAttack(s, flipTH, rows, 8*flipTH)
		if !rep.Safe() {
			t.Errorf("%s failed to stop multi-sided attack: %v", name, rep)
		}
	}
}

func TestNoProtectionFlips(t *testing.T) {
	s, _ := Build("none", opts(3125))
	rep := replayAttack(s, 3125, []uint32{2000, 2002}, 4*3125)
	if rep.Safe() {
		t.Fatal("control run should flip without protection")
	}
}

func TestPARAProbabilityScalesWithFlipTH(t *testing.T) {
	hi := NewPARA(opts(50000))
	lo := NewPARA(opts(1500))
	if !(lo.Probability() > hi.Probability()) {
		t.Fatalf("p(1.5K)=%v should exceed p(50K)=%v", lo.Probability(), hi.Probability())
	}
	if p := lo.Probability(); p <= 0 || p > 1 {
		t.Fatalf("probability %v out of range", p)
	}
}

func TestPARAStatisticallyProtects(t *testing.T) {
	// Not deterministic, but at 4×FlipTH ACTs the expected number of
	// preventive refreshes is ~p·N ≫ 1; a flip would be astronomically
	// unlikely with the configured p.
	s := NewPARA(opts(3125))
	rep := replayAttack(s, 3125, []uint32{2000, 2002}, 4*3125)
	if !rep.Safe() {
		t.Fatalf("PARA failed its statistical protection: %v", rep)
	}
}

func TestPARFMRefreshesEveryRFM(t *testing.T) {
	s := NewPARFM(opts(6250))
	if !s.RFMCompatible() || s.RFMTH() <= 0 {
		t.Fatal("PARFM must be RFM compatible with positive RFMTH")
	}
	// Feed ACTs, then check OnRFM returns victims (energy cost driver).
	for i := 0; i < s.RFMTH(); i++ {
		s.OnActivate(0, uint32(1000+i), 0, 0)
	}
	if v := s.OnRFM(0, 0); len(v) == 0 {
		t.Fatal("PARFM should always refresh at RFM")
	}
	if s.SkipRFM(0) {
		t.Fatal("PARFM never skips")
	}
}

func TestPARFMRequiredRFMTHLowerAtLowFlipTH(t *testing.T) {
	hi := NewPARFM(opts(50000))
	lo := NewPARFM(opts(1500))
	if !(lo.RFMTH() < hi.RFMTH()) {
		t.Fatalf("RFMTH(1.5K)=%d should be below RFMTH(50K)=%d", lo.RFMTH(), hi.RFMTH())
	}
}

func TestGrapheneResetsPeriodically(t *testing.T) {
	s := NewGraphene(opts(6250))
	p := timing.DDR5()
	s.OnActivate(0, 1, 0, 0)
	s.OnActivate(0, 1, 0, p.TREFW/2+1)
	if s.Resets() != 1 {
		t.Fatalf("resets = %d, want 1 after tREFW/2", s.Resets())
	}
}

func TestGrapheneTriggersAtThresholdMultiples(t *testing.T) {
	s := NewGraphene(opts(6250))
	th := s.Threshold()
	var triggers int
	for i := uint64(0); i < 2*th+2; i++ {
		if len(s.OnActivate(0, 42, 0, timing.PicoSeconds(i))) > 0 {
			triggers++
		}
	}
	if triggers != 2 {
		t.Fatalf("triggers = %d over 2T+2 ACTs, want 2 (at T and 2T)", triggers)
	}
}

// TestGrapheneEvictionClearsTriggerLevel pins the fix for stale CbS trigger
// levels: a row that crossed its trigger (level raised to 2T), was evicted
// from the table, and later re-enters must restart at the base threshold T.
// Before the fix, the stale 2T level survived eviction and the returning
// row missed ARR refreshes until the next half-window reset.
func TestGrapheneEvictionClearsTriggerLevel(t *testing.T) {
	// Compress the refresh window so the table holds exactly 2 entries
	// (N = ⌈(S/2)/T⌉ with T = FlipTH/4) — evictions become forceable.
	p := timing.DDR5()
	p.TREFW = 100 * p.TREFI
	s := NewGraphene(Options{Timing: p, FlipTH: 8000, Seed: 7})
	if s.NEntry() != 2 {
		t.Fatalf("test geometry: NEntry = %d, want 2", s.NEntry())
	}
	th := s.Threshold()

	// All activity at now=0: no periodic reset interferes.
	hammer := func(row uint32, n uint64) (triggers int) {
		for i := uint64(0); i < n; i++ {
			if len(s.OnActivate(0, row, 0, 0)) > 0 {
				triggers++
			}
		}
		return triggers
	}

	// Row A crosses T exactly once; its next level is now 2T.
	if got := hammer(10, th); got != 1 {
		t.Fatalf("row A: %d triggers over T ACTs, want 1", got)
	}
	// Row B fills the second slot and crosses T, then pulls one count
	// ahead of A so that A is the table minimum.
	if got := hammer(20, th+1); got != 1 {
		t.Fatalf("row B: %d triggers over T+1 ACTs, want 1", got)
	}
	// Row C evicts A (the minimum entry) and inherits its count + 1 ≥ T —
	// the CbS overestimate triggers C immediately.
	if got := hammer(30, 1); got != 1 {
		t.Fatalf("row C insertion: %d triggers, want 1 (CbS overestimate)", got)
	}
	// Row A re-enters, inheriting the current minimum + 1 ≥ T. Its old 2T
	// level must be gone: the ARR must fire on this very ACT.
	if got := hammer(10, 1); got != 1 {
		t.Fatalf("re-inserted row A: %d triggers, want 1 — stale trigger level survived eviction", got)
	}
}

func TestTWiCeDropsAfterTrigger(t *testing.T) {
	s := NewTWiCe(opts(6250))
	var victimsSeen []uint32
	for i := uint64(0); i < uint64(s.Threshold())+1; i++ {
		victimsSeen = s.OnActivate(0, 7, 0, timing.PicoSeconds(i))
		if len(victimsSeen) > 0 {
			break
		}
	}
	if len(victimsSeen) != 2 {
		t.Fatalf("TWiCe victims = %v, want both neighbours", victimsSeen)
	}
	if s.MaxLiveEntries() == 0 {
		t.Fatal("live-entry high-water mark should be tracked")
	}
}

func TestCBTSplitsBeforeRefreshing(t *testing.T) {
	s := NewCBT(opts(6250))
	// Hammer one row: the tree must split down toward the row, and the
	// eventual group refresh must cover a narrow range, not the bank.
	var group []uint32
	for i := 0; i < 4*6250; i++ {
		if v := s.OnActivate(0, 5000, 0, timing.PicoSeconds(i)); len(v) > 0 {
			group = v
			break
		}
	}
	if len(group) == 0 {
		t.Fatal("CBT never refreshed")
	}
	if len(group) > 4096 {
		t.Fatalf("group refresh covered %d rows; tree should have split first", len(group))
	}
	groups, rows := s.GroupRefreshes()
	if groups != 1 || rows != uint64(len(group)) {
		t.Fatalf("stats = (%d, %d)", groups, rows)
	}
}

func TestBlockHammerThrottlesBlacklistedRow(t *testing.T) {
	s := NewBlockHammer(opts(6250))
	if s.TDelay() <= 0 {
		t.Fatal("tDelay must be positive")
	}
	now := timing.PicoSeconds(0)
	for i := uint64(0); i <= s.NBL(); i++ {
		s.OnActivate(0, 99, 0, now)
		now += timing.DDR5().TRC
	}
	if until := s.PreACTDelay(0, 99, 0, now); until <= now {
		t.Fatal("row past NBL should be delayed")
	}
	if s.PreACTDelay(0, 100, 0, now) != 0 {
		t.Fatal("cold row should not be delayed")
	}
	if s.BlacklistEvents() == 0 {
		t.Fatal("blacklist events should be counted")
	}
}

func TestBlockHammerThreadEscalation(t *testing.T) {
	s := NewBlockHammer(opts(6250))
	now := timing.PicoSeconds(0)
	// Core 5 hammers a blacklisted row repeatedly.
	for i := 0; i < int(s.NBL())+blockHammerThreadThreshold+1; i++ {
		s.OnActivate(0, 99, 5, now)
		now += timing.DDR5().TRC
	}
	// Even a fresh row is now delayed for core 5, but not for core 6.
	if s.PreACTDelay(0, 500, 5, now) <= now {
		t.Fatal("attacker thread should be throttled on all rows")
	}
	if s.PreACTDelay(0, 500, 6, now) != 0 {
		t.Fatal("innocent thread should be unaffected")
	}
}

func TestBlockHammerCollisionOracle(t *testing.T) {
	s := NewBlockHammer(opts(6250))
	target := uint32(512)
	rows := s.CollidingRows(0, target, 8)
	if len(rows) == 0 {
		t.Fatal("oracle found no colliding rows")
	}
	for _, r := range rows {
		if r == target || absDiff(r, target) <= 1 {
			t.Fatalf("oracle returned the target's own neighbourhood (%d)", r)
		}
	}
	// Activating the colliding rows NBL times must blacklist the target:
	// its very next (benign) activation arms the pacing delay.
	now := timing.PicoSeconds(0)
	for i := uint64(0); i <= s.NBL(); i++ {
		for _, r := range rows {
			s.OnActivate(0, r, 1, now)
			now += timing.DDR5().TRC
		}
	}
	s.OnActivate(0, target, 0, now) // one benign access to the hot row
	if s.PreACTDelay(0, target, 0, now+timing.DDR5().TRC) <= now {
		t.Fatal("collision attack failed to blacklist the benign row")
	}
}

func TestMithrilSchemeConfiguration(t *testing.T) {
	s := NewMithril(opts(6250))
	cfg := s.ModuleConfig()
	if cfg.RFMTH != 128 {
		t.Fatalf("RFMTH = %d, want paper's 128 at 6.25K", cfg.RFMTH)
	}
	if cfg.AdTH != DefaultAdTH {
		t.Fatalf("AdTH = %d, want default %d", cfg.AdTH, DefaultAdTH)
	}
	if cfg.NEntry <= 0 || s.TableKB() <= 0 {
		t.Fatalf("sizing broken: %+v, %v KB", cfg, s.TableKB())
	}
	if s.Name() != "mithril" || NewMithrilPlus(opts(6250)).Name() != "mithril+" {
		t.Fatal("names")
	}
}

func TestMithrilSkipFlagOnlyOnPlus(t *testing.T) {
	plain := NewMithril(opts(6250))
	plus := NewMithrilPlus(opts(6250))
	// Quiet table: plus may skip; plain never may.
	plain.OnActivate(0, 1, 0, 0)
	plus.OnActivate(0, 1, 0, 0)
	if plain.SkipRFM(0) {
		t.Fatal("plain Mithril must not skip RFM commands")
	}
	if !plus.SkipRFM(0) {
		t.Fatal("Mithril+ should skip on a quiet table")
	}
	// Hammered table: neither skips.
	for i := 0; i < 1000; i++ {
		plus.OnActivate(0, 42, 0, 0)
	}
	if plus.SkipRFM(0) {
		t.Fatal("Mithril+ must not skip while under attack")
	}
}

func TestMithrilAdaptiveSkipsOnUniformTraffic(t *testing.T) {
	s := NewMithril(opts(6250))
	// Uniform traffic across many rows: spread stays below AdTH.
	for i := 0; i < 4096; i++ {
		s.OnActivate(0, uint32(i%1024), 0, 0)
	}
	if v := s.OnRFM(0, 0); v != nil {
		t.Fatalf("adaptive policy should skip the refresh, got victims %v", v)
	}
	st := s.ModuleStats()
	if st.AdaptiveSkips != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMithrilPanicsOnInfeasibleConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("infeasible config should panic")
		}
	}()
	o := opts(1500)
	o.RFMTH = 256 // infeasible per Figure 6
	NewMithril(o)
}

func TestNonAdjacentBlastRadius(t *testing.T) {
	o := opts(6250)
	o.BlastRadius = 3
	s := NewMithril(o)
	for i := 0; i < 2000; i++ {
		s.OnActivate(0, 500, 0, 0)
	}
	v := s.OnRFM(0, 0)
	if len(v) != 6 {
		t.Fatalf("radius-3 preventive refresh should cover 6 rows, got %v", v)
	}
}
