// Package mithril is the public API of the Mithril reproduction (Kim et
// al., "Mithril: Cooperative Row Hammer Protection on Commodity DRAM
// Leveraging Managed Refresh", HPCA 2022): a DDR5 system simulator with
// every mitigation scheme of the paper's Table I, the closed-form Theorem
// 1/2 configuration math, and experiment drivers that regenerate each
// evaluation figure and table.
//
// Quick start:
//
//	scheme, _ := mithril.NewScheme("mithril", mithril.SchemeOptions{
//	    Timing: mithril.DDR5(), FlipTH: 6250,
//	})
//	cmp, _ := mithril.Compare(mithril.SimConfig{
//	    Params: mithril.DDR5(), FlipTH: 6250,
//	    Scheduler: mithril.BLISS, Policy: mithril.MinimalistOpen,
//	}, mithril.MixHigh(16, 1), scheme)
//	fmt.Printf("relative perf %.2f%%\n", cmp.RelativePerformance)
//
// Experiment sweeps (Figure7Data, Figure9Data, Figure10Data, Figure11Data,
// SafetySweep) fan their independent simulation cells out over a worker
// pool sized by Scale.Jobs (0 = all cores, 1 = serial); parallel and
// serial runs produce identical results in identical order.
package mithril

import (
	"mithril/internal/analysis"
	"mithril/internal/expspec"
	"mithril/internal/mc"
	"mithril/internal/mitigation"
	"mithril/internal/sim"
	"mithril/internal/sweep"
	"mithril/internal/timing"
	"mithril/internal/trace"
)

// Re-exported types: the façade keeps downstream users on one import.
type (
	// TimingParams is the DRAM timing/organization parameter set.
	TimingParams = timing.Params
	// PicoSeconds is the simulator time unit.
	PicoSeconds = timing.PicoSeconds
	// SchemeOptions configures mitigation construction.
	SchemeOptions = mitigation.Options
	// Scheme is a RowHammer mitigation pluggable into the controller.
	Scheme = mc.Scheme
	// SimConfig describes one simulation run.
	SimConfig = sim.Config
	// SimResult carries a run's metrics.
	SimResult = sim.Result
	// Comparison is a protected run normalized against its baseline.
	Comparison = sim.Comparison
	// Workload is a named, replayable set of per-core generators.
	Workload = trace.Workload
	// Generator produces a core's access stream.
	Generator = trace.Generator
	// MithrilConfig is a feasible (Nentry, RFMTH) operating point.
	MithrilConfig = analysis.Config
	// SchedulerKind selects the MC scheduling policy.
	SchedulerKind = mc.SchedulerKind
	// PagePolicy selects the row-buffer management policy.
	PagePolicy = mc.PagePolicy
)

// Scheduler kinds (Table III uses BLISS).
const (
	FCFS   = mc.FCFS
	FRFCFS = mc.FRFCFS
	BLISS  = mc.BLISS
)

// Page policies (Table III uses minimalist-open).
const (
	OpenPage       = mc.OpenPage
	ClosedPage     = mc.ClosedPage
	MinimalistOpen = mc.MinimalistOpen
)

// DDR5 returns the paper's DDR5-4800 parameter set (Table III).
func DDR5() TimingParams { return timing.DDR5() }

// NewScheme builds a mitigation by name: "none", "para", "parfm",
// "graphene", "twice", "cbt", "blockhammer", "mithril", "mithril+".
func NewScheme(name string, opt SchemeOptions) (Scheme, error) {
	return mitigation.Build(name, opt)
}

// SchemeNames lists the buildable scheme names.
func SchemeNames() []string { return mitigation.Names() }

// Run executes one simulation.
func Run(cfg SimConfig) (SimResult, error) { return sim.Run(cfg) }

// DefaultJobs returns the sweep engine's default worker count: one per
// available core. Scale.Jobs = 0 resolves to this.
func DefaultJobs() int { return sweep.DefaultJobs() }

// RunParallel executes fn(0..n-1) on up to jobs workers (0 = all cores)
// and returns the results in index order; the first error cancels cells
// that have not started. The experiment sweeps run on this engine; it is
// exported so downstream studies (see examples/scheduler_study) can fan
// out their own simulation grids.
func RunParallel[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	return sweep.Run(jobs, n, fn)
}

// Compare runs a workload unprotected and protected and reports normalized
// performance and energy.
func Compare(cfg SimConfig, w Workload, s Scheme) (Comparison, error) {
	return sim.RunComparison(cfg, w, s)
}

// Configure computes the minimal Mithril table for a (FlipTH, RFMTH, AdTH)
// point per Theorem 1/2; ok is false when the point is infeasible.
func Configure(p TimingParams, flipTH, rfmTH, adTH int) (MithrilConfig, bool) {
	return analysis.Configure(p, flipTH, rfmTH, adTH, analysis.DoubleSidedBlast)
}

// BoundM evaluates the Theorem 1 bound for a configuration.
func BoundM(p TimingParams, nEntry, rfmTH int) float64 {
	return analysis.BoundM(p, nEntry, rfmTH)
}

// BoundMPrime evaluates the Theorem 2 bound (adaptive refresh).
func BoundMPrime(p TimingParams, nEntry, rfmTH, adTH int) float64 {
	return analysis.BoundMPrime(p, nEntry, rfmTH, adTH)
}

// ExperimentSpec is a declarative experiment description: a named grid
// over scheme × FlipTH × workload × seed (× adversarial flag) at a scale,
// the JSON format the shipped specs/*.json figures use. See the README's
// "Declarative experiment specs" section for the format.
type ExperimentSpec = expspec.Spec

// ExperimentResult holds an executed spec's rows; Emit renders it as a
// human table or machine-readable JSON/CSV/golden rows.
type ExperimentResult = expspec.Result

// Output formats for ExperimentResult.Emit.
const (
	FormatTable  = expspec.FormatTable
	FormatJSON   = expspec.FormatJSON
	FormatCSV    = expspec.FormatCSV
	FormatGolden = expspec.FormatGolden
)

// ParseSpec decodes and validates a declarative experiment spec (unknown
// schemes, workloads, columns, axes, and JSON fields are errors). Execute
// it with Run (the spec's own scale) or RunAt.
func ParseSpec(data []byte) (*ExperimentSpec, error) { return expspec.Parse(data) }

// LoadSpec reads and validates a spec file from disk.
func LoadSpec(path string) (*ExperimentSpec, error) { return expspec.Load(path) }

// LoadShippedSpec loads one embedded spec by name (e.g. "figure10.quick";
// see SpecsFS for the inventory).
func LoadShippedSpec(name string) (*ExperimentSpec, error) {
	return expspec.LoadFS(specsFS, "specs/"+name+".json")
}

// MixHigh and friends re-export the paper's workloads.
func MixHigh(cores int, seed uint64) Workload    { return trace.MixHigh(cores, seed) }
func MixBlend(cores int, seed uint64) Workload   { return trace.MixBlend(cores, seed) }
func FFT(threads int, seed uint64) Workload      { return trace.FFT(threads, seed) }
func Radix(threads int, seed uint64) Workload    { return trace.Radix(threads, seed) }
func PageRank(threads int, seed uint64) Workload { return trace.PageRank(threads, seed) }
