package expspec

import (
	"fmt"
	"sort"

	"mithril/internal/analysis"
	"mithril/internal/attack"
	"mithril/internal/energy"
	"mithril/internal/mc"
	"mithril/internal/mitigation"
	"mithril/internal/sim"
	"mithril/internal/stats"
	"mithril/internal/sweep"
	"mithril/internal/timing"
	"mithril/internal/trace"
)

// attackInstrFactor extends attack runs so threshold mechanisms (NBL,
// FlipTH accumulation) have time to engage.
const attackInstrFactor = 64

// BaseSimConfig builds the Table III system configuration at the scale's
// (possibly time-compressed) timing.
func BaseSimConfig(flipTH int, sc Scale) sim.Config {
	return sim.Config{
		Params:       sc.Params(),
		FlipTH:       flipTH,
		Scheduler:    mc.BLISS,
		Policy:       mc.MinimalistOpen,
		InstrPerCore: sc.InstrPerCore,
	}
}

// ---------------------------------------------------------------- registries

// benignWorkloads maps spec workload names to the paper's benign generator
// sets.
var benignWorkloads = map[string]func(cores int, seed uint64) trace.Workload{
	"mix-high":  trace.MixHigh,
	"mix-blend": trace.MixBlend,
	"fft":       trace.FFT,
	"radix":     trace.Radix,
	"pagerank":  trace.PageRank,
}

func benignWorkloadNames() []string { return sortedKeys(benignWorkloads) }

// Comparison meta-workloads: "normal" is the scale's benign set reduced to
// one geomean row; "multi-sided-rh" is the Figure 10(b) attack.
const (
	normalSet    = "normal"
	multiSidedRH = "multi-sided-rh"
)

func knownComparisonWorkload(name string) bool {
	if name == normalSet || name == multiSidedRH {
		return true
	}
	_, ok := benignWorkloads[name]
	return ok
}

func comparisonWorkloadNames() []string {
	return append([]string{normalSet, multiSidedRH}, benignWorkloadNames()...)
}

// adthWorkloads maps the Figure 7 workload classes to generators, plus the
// short labels its energy-column headers use.
var adthWorkloads = map[string]struct {
	short string
	build func(cores int, seed uint64) trace.Workload
}{
	"multi-programmed": {"multi-prog", trace.MixHigh},
	"multi-threaded":   {"multi-thread", trace.FFT},
}

func adthWorkloadNames() []string { return sortedKeys(adthWorkloads) }

// attackPatterns maps safety-spec workload names to attack builders.
// Background core first, attacker last: the run ends when the benign core
// finishes even if the attacker is throttled to a crawl. The background
// must be memory-bound (footprint ≫ LLC) so the attacker gets a realistic
// time window.
var attackPatterns = map[string]func(mapper *mc.AddressMapper) []trace.Generator{
	"double-sided": func(mapper *mc.AddressMapper) []trace.Generator {
		return []trace.Generator{
			trace.NewStream("bg", 1<<28, 64<<20, 10, 4),
			attack.NewDoubleSided(mapper, 0, 0, 1000),
		}
	},
	"multi-sided-32": func(mapper *mc.AddressMapper) []trace.Generator {
		return []trace.Generator{
			trace.NewStream("bg", 1<<28, 64<<20, 10, 4),
			attack.NewMultiSided(mapper, 0, 0, 2000, 32),
		}
	},
}

func attackPatternNames() []string { return sortedKeys(attackPatterns) }

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// ---------------------------------------------------------------- row types

// PerfPoint is one (scheme, FlipTH, workload) measurement.
type PerfPoint struct {
	Scheme              string
	FlipTH              int
	RFMTH               int
	Workload            string
	Seed                uint64
	RelativePerformance float64 // % of unprotected aggregate IPC
	EnergyOverheadPct   float64
	TableKB             float64
	Safe                bool
}

// String renders the point for logs.
func (p PerfPoint) String() string {
	return fmt.Sprintf("%-12s FlipTH=%-6d %-16s perf=%6.2f%% energy=+%5.2f%% table=%6.2fKB safe=%v",
		p.Scheme, p.FlipTH, p.Workload, p.RelativePerformance, p.EnergyOverheadPct, p.TableKB, p.Safe)
}

// SafetyResult is one scheme × attack verdict.
type SafetyResult struct {
	Scheme         string
	Attack         string
	FlipTH         int
	Seed           uint64
	Flips          int
	MaxDisturbance float64
	Safe           bool
}

// Figure9Point compares Mithril and Mithril+ at one operating point.
type Figure9Point struct {
	FlipTH, RFMTH int
	Seed          uint64
	Mithril       float64 // relative performance %
	MithrilPlus   float64
	TableKB       float64
	EnergyMithril float64
	EnergyPlus    float64
}

// Figure7Point is one AdTH level of Figure 7.
type Figure7Point struct {
	FlipTH, RFMTH, AdTH int
	Seed                uint64
	// EnergyOverheadPct per workload class (multi-programmed/threaded).
	EnergyOverheadPct map[string]float64
	// AdditionalNEntryPct is the Theorem 2 table growth (right axis).
	AdditionalNEntryPct float64
}

// ---------------------------------------------------------------- runner

// runner caches baselines so every scheme is normalized against an
// identical unprotected run. The cache is keyed by (seed, FlipTH,
// workload), not workload name alone: a workload's generators can vary
// with the seed and with FlipTH under an unchanged name (bh-adversarial
// aims at the deployed filter's collision set), so cross-threshold sharing
// would normalize against a stale run. Sharing FlipTH-independent
// baselines is forgone — a few extra unprotected runs per sweep buys the
// correctness guarantee. The cache is single-flight, so concurrent cells
// share one simulation.
type runner struct {
	sc        Scale
	baselines sweep.Cache[baselineKey, sim.Result]
}

// baselineKey identifies one unprotected run configuration.
type baselineKey struct {
	seed     uint64
	flipTH   int
	workload string
}

func newRunner(sc Scale) *runner { return &runner{sc: sc} }

// cfgFor derives the run configuration for a workload: attack workloads
// get an extended instruction budget and end when the benign cores finish.
func (r *runner) cfgFor(flipTH int, w trace.Workload) sim.Config {
	cfg := BaseSimConfig(flipTH, r.sc)
	cfg.Workload = w.Fresh()
	if w.Attackers > 0 {
		cfg.InstrPerCore = r.sc.InstrPerCore * attackInstrFactor
		cfg.RequireCores = len(cfg.Workload) - w.Attackers
	}
	return cfg
}

func (r *runner) baseline(seed uint64, flipTH int, w trace.Workload) (sim.Result, error) {
	return r.baselines.Get(baselineKey{seed, flipTH, w.Name}, func() (sim.Result, error) {
		return sim.Run(r.cfgFor(flipTH, w))
	})
}

// BenignIPC sums per-core IPCs excluding trailing attacker cores (a
// non-positive count means none; a count beyond the core total sums
// nothing rather than walking off the slice).
func BenignIPC(res sim.Result, attackers int) float64 {
	n := len(res.IPCs) - attackers
	if n > len(res.IPCs) {
		n = len(res.IPCs)
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += res.IPCs[i]
	}
	return total
}

// measure runs scheme on workload and produces the normalized point;
// trailing attacker cores (w.Attackers) are excluded from IPC aggregation.
func (r *runner) measure(scheme mc.Scheme, seed uint64, flipTH int, w trace.Workload) (PerfPoint, error) {
	attackers := w.Attackers
	base, err := r.baseline(seed, flipTH, w)
	if err != nil {
		return PerfPoint{}, err
	}
	cfg := r.cfgFor(flipTH, w)
	cfg.Scheme = scheme
	res, err := sim.Run(cfg)
	if err != nil {
		return PerfPoint{}, err
	}
	pt := PerfPoint{
		Scheme:   scheme.Name(),
		FlipTH:   flipTH,
		Workload: w.Name,
		Seed:     seed,
		Safe:     res.Safety.Safe(),
	}
	if b := BenignIPC(base, attackers); b > 0 {
		pt.RelativePerformance = 100 * BenignIPC(res, attackers) / b
	}
	pt.EnergyOverheadPct = energy.OverheadPercent(res.Energy, base.Energy)
	return pt, nil
}

// normalWorkloads returns the benign workload set for a scale (two mixes at
// quick scale; the paper's five at full scale).
func normalWorkloads(sc Scale, seed uint64) []trace.Workload {
	if sc.Cores < 16 {
		return []trace.Workload{trace.MixHigh(sc.Cores, seed), trace.FFT(sc.Cores, seed)}
	}
	all := trace.NormalWorkloads(sc.Cores, seed)
	out := make([]trace.Workload, len(all))
	for i, w := range all {
		out[i] = w.Workload
	}
	return out
}

// multiSidedWorkload builds the Figure 10(b) workload: benign cores plus
// one multi-sided attacker (32 victims at full scale).
func multiSidedWorkload(sc Scale, seed uint64) trace.Workload {
	mapper := mc.NewAddressMapper(sc.Params())
	n := sc.attackCores()
	benign := trace.MixHigh(n, seed)
	victims := sc.multiSidedVictims()
	return trace.Workload{
		Name:      multiSidedRH,
		Attackers: 1,
		Fresh: func() []trace.Generator {
			gens := benign.Fresh()
			gens[len(gens)-1] = attack.NewMultiSided(mapper, 1, 7, 4000, victims)
			return gens
		},
	}
}

// adversarialWorkload builds the Figure 10(c) workload: benign cores with
// one hot-row service core, plus a BlockHammer-collision adversary aimed at
// the service core's rows. Against non-throttling schemes the adversary's
// walk is harmless background traffic.
func adversarialWorkload(sc Scale, seed uint64, scheme mc.Scheme) trace.Workload {
	p := sc.Params()
	mapper := mc.NewAddressMapper(p)
	n := sc.attackCores()
	benign := trace.MixHigh(n, seed)
	victimCore := n - 2
	if victimCore < 0 {
		victimCore = 0
	}
	base := uint64(victimCore) << 28
	loc := mapper.Map(base)
	return trace.Workload{
		// The workload embeds the deployed scheme's collision oracle, so
		// baselines must not be shared across schemes.
		Name:      "bh-adversarial/" + scheme.Name(),
		Attackers: 1,
		Fresh: func() []trace.Generator {
			gens := benign.Fresh()
			// The service core strides an 8 MB object with a prime stride:
			// cache-hostile, so its rows keep re-activating — throttling
			// them (or escalating to the whole thread) hurts directly.
			gens[victimCore] = trace.NewStrided("service", base, 8<<20, 257, 6)
			// The adversary hammers rows that collide with the service
			// core's hot rows in the deployed scheme's filters.
			gens[len(gens)-1] = adversaryFor(mapper, loc, scheme)
			return gens
		},
	}
}

// adversaryFor builds a combined collision attack over the service core's
// first four hot rows in its first bank.
func adversaryFor(mapper *mc.AddressMapper, loc mc.Location, scheme mc.Scheme) trace.Generator {
	var rows []int
	if th, ok := scheme.(attack.Throttler); ok {
		for i := 0; i < 2; i++ {
			for _, r := range th.CollidingRows(loc.GlobalBank, uint32(loc.Row+i), 4) {
				rows = append(rows, int(r))
			}
		}
	}
	if len(rows) == 0 {
		for i := 0; i < 16; i++ {
			rows = append(rows, (loc.Row+64+8*i)%mapper.Params().Rows)
		}
	}
	return attack.NewRowList("bh-adversarial", mapper, loc.Channel, loc.Bank, rows)
}

// schemeTableKB reports the per-bank counter table area for the scheme at
// a FlipTH level (Figure 10(e)/Table IV models).
func schemeTableKB(name string, flipTH int) float64 {
	p := timing.DDR5()
	switch name {
	case "graphene":
		return analysis.GrapheneTableKB(p, flipTH)
	case "twice":
		return analysis.TWiCeTableKB(p, flipTH)
	case "cbt":
		return analysis.CBTTableKB(p, flipTH)
	case "blockhammer":
		return analysis.BlockHammerTableKB(flipTH)
	case "mithril", "mithril+":
		kb, ok := analysis.MithrilTableKB(p, flipTH, mitigation.PaperRFMTH(flipTH), 0)
		if !ok {
			return 0
		}
		return kb
	default:
		return 0
	}
}

// ---------------------------------------------------------------- executors

// Run resolves the spec's own scale and executes the grid.
func (s *Spec) Run() (*Result, error) {
	sc, err := s.Scale.Resolve()
	if err != nil {
		return nil, err
	}
	return s.RunAt(sc)
}

// RunAt validates the spec and executes its grid at an explicit scale
// (the library's figure wrappers pass their caller's Scale; the CLI passes
// the spec's resolved scale with the -jobs override applied). Rows come
// back in the deterministic Expand order regardless of worker count.
func (s *Spec) RunAt(sc Scale) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Spec: s, Scale: sc}
	var err error
	switch s.Kind {
	case Comparison:
		res.Perf, err = s.runComparison(sc)
	case SafetyKind:
		res.Safety, err = s.runSafety(sc)
	case ConfigGrid:
		res.Grid, err = s.runConfigGrid(sc)
	case AdTHSweep:
		res.AdTH, err = s.runAdTH(sc)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// seeds resolves the seed axis (empty: the scale's single seed).
func (s *Spec) seeds(sc Scale) []uint64 {
	if len(s.Axes.Seeds) > 0 {
		return s.Axes.Seeds
	}
	return []uint64{sc.Seed}
}

// compSimCell is one independent simulation of a comparison sweep: its own
// scheme instance, fresh workload, and — via the runner's single-flight
// cache — a shared baseline.
type compSimCell struct {
	seed        uint64
	flipTH      int
	scheme      string
	workload    trace.Workload
	adversarial bool // build the BlockHammer-collision workload around the cell's scheme
}

// runComparison generalizes the Figure 10/11 sweeps: every workload-axis
// entry yields one row per (seed, FlipTH, scheme), with "normal" expanding
// to the scale's benign set and geomean-reducing back to a single row.
func (s *Spec) runComparison(sc Scale) ([]PerfPoint, error) {
	r := newRunner(sc)
	flipths := s.Axes.FlipTHs
	if len(flipths) == 0 {
		flipths = sc.FlipTHs
	}
	// Enumerate every cell up front; the sweep engine fans them out over
	// the worker pool and returns measurements in enumeration order, so
	// the parallel sweep's output is identical to the serial path's.
	var cells []compSimCell
	type seedSet struct {
		normals []trace.Workload
		rhW     trace.Workload
	}
	sets := map[uint64]*seedSet{}
	for _, seed := range s.seeds(sc) {
		set := &seedSet{}
		sets[seed] = set
		for _, name := range s.Axes.Workloads {
			switch name {
			case normalSet:
				set.normals = normalWorkloads(sc, seed)
			case multiSidedRH:
				set.rhW = multiSidedWorkload(sc, seed)
			}
		}
		for _, flipTH := range flipths {
			for _, scheme := range s.Axes.Schemes {
				for _, name := range s.Axes.Workloads {
					switch name {
					case normalSet:
						for _, w := range set.normals {
							cells = append(cells, compSimCell{seed: seed, flipTH: flipTH, scheme: scheme, workload: w})
						}
					case multiSidedRH:
						cells = append(cells, compSimCell{seed: seed, flipTH: flipTH, scheme: scheme, workload: set.rhW})
					default:
						cells = append(cells, compSimCell{seed: seed, flipTH: flipTH, scheme: scheme,
							workload: benignWorkloads[name](sc.Cores, seed)})
					}
				}
				if s.Axes.Adversarial {
					cells = append(cells, compSimCell{seed: seed, flipTH: flipTH, scheme: scheme, adversarial: true})
				}
			}
		}
	}
	pts, err := sweep.Run(sc.Jobs, len(cells), func(i int) (PerfPoint, error) {
		c := cells[i]
		scheme, err := mitigation.Build(c.scheme, mitigation.Options{Timing: sc.Params(), FlipTH: c.flipTH, Seed: c.seed})
		if err != nil {
			return PerfPoint{}, err
		}
		w := c.workload
		if c.adversarial {
			w = adversarialWorkload(sc, c.seed, scheme)
		}
		return r.measure(scheme, c.seed, c.flipTH, w)
	})
	if err != nil {
		return nil, err
	}
	// Reduce in enumeration order: the "normal" set collapses to one
	// geo-mean point per (seed, FlipTH, scheme); other points pass through.
	var out []PerfPoint
	idx := 0
	for _, seed := range s.seeds(sc) {
		set := sets[seed]
		for _, flipTH := range flipths {
			for _, scheme := range s.Axes.Schemes {
				for _, name := range s.Axes.Workloads {
					if name == normalSet {
						var perfs []float64
						var energySum float64
						var safe = true
						for range set.normals {
							pt := pts[idx]
							idx++
							perfs = append(perfs, pt.RelativePerformance)
							energySum += pt.EnergyOverheadPct
							safe = safe && pt.Safe
						}
						out = append(out, PerfPoint{
							Scheme: scheme, FlipTH: flipTH, Workload: normalSet, Seed: seed,
							RelativePerformance: stats.Geomean(perfs),
							EnergyOverheadPct:   energySum / float64(len(set.normals)),
							TableKB:             schemeTableKB(scheme, flipTH),
							Safe:                safe,
						})
						continue
					}
					pt := pts[idx]
					idx++
					pt.TableKB = schemeTableKB(scheme, flipTH)
					out = append(out, pt)
				}
				if s.Axes.Adversarial {
					apt := pts[idx]
					idx++
					apt.TableKB = schemeTableKB(scheme, flipTH)
					out = append(out, apt)
				}
			}
		}
	}
	return out, nil
}

// runSafety attacks every scheme with the spec's attack patterns in the
// full simulator and reports the fault-model verdicts; results come back
// in (seed, FlipTH, attack, scheme) order.
func (s *Spec) runSafety(sc Scale) ([]SafetyResult, error) {
	mapper := mc.NewAddressMapper(sc.Params())
	cells := s.Expand(sc)
	return sweep.Run(sc.Jobs, len(cells), func(i int) (SafetyResult, error) {
		c := cells[i]
		scheme, err := mitigation.Build(c.Scheme, mitigation.Options{Timing: sc.Params(), FlipTH: c.FlipTH, Seed: c.Seed})
		if err != nil {
			return SafetyResult{}, err
		}
		cfg := BaseSimConfig(c.FlipTH, sc)
		cfg.Scheme = scheme
		cfg.Workload = attackPatterns[c.Workload](mapper)
		cfg.InstrPerCore = sc.InstrPerCore * attackInstrFactor
		cfg.RequireCores = 1 // benign core only
		res, err := sim.Run(cfg)
		if err != nil {
			return SafetyResult{}, err
		}
		return SafetyResult{
			Scheme: c.Scheme, Attack: c.Workload, FlipTH: c.FlipTH, Seed: c.Seed,
			Flips: res.Safety.Flips, MaxDisturbance: res.Safety.MaxDisturbance,
			Safe: res.Safety.Safe(),
		}, nil
	})
}

// runConfigGrid sweeps the paired Mithril/Mithril+ grid; infeasible
// (FlipTH, RFMTH) points (Theorem 1 has no table size) are skipped, so the
// emitted rows are the analytically feasible subset of the declared grid.
func (s *Spec) runConfigGrid(sc Scale) ([]Figure9Point, error) {
	r := newRunner(sc)
	build := benignWorkloads[s.Axes.Workloads[0]]
	// Expand already filtered out analytically infeasible points, so the
	// fan-out runs exactly the cells the spec's grid emits.
	cells := s.Expand(sc)
	workloads := map[uint64]trace.Workload{}
	for _, seed := range s.seeds(sc) {
		workloads[seed] = build(sc.Cores, seed)
	}
	return sweep.Run(sc.Jobs, len(cells), func(i int) (Figure9Point, error) {
		c := cells[i]
		w := workloads[c.Seed]
		opt := mitigation.Options{Timing: sc.Params(), FlipTH: c.FlipTH, RFMTH: c.RFMTH, Seed: c.Seed}
		m, err := r.measure(mitigation.NewMithril(opt), c.Seed, c.FlipTH, w)
		if err != nil {
			return Figure9Point{}, err
		}
		plus, err := r.measure(mitigation.NewMithrilPlus(opt), c.Seed, c.FlipTH, w)
		if err != nil {
			return Figure9Point{}, err
		}
		kb, _ := analysis.MithrilTableKB(timing.DDR5(), c.FlipTH, c.RFMTH, 0)
		return Figure9Point{
			FlipTH: c.FlipTH, RFMTH: c.RFMTH, Seed: c.Seed,
			Mithril: m.RelativePerformance, MithrilPlus: plus.RelativePerformance,
			TableKB:       kb,
			EnergyMithril: m.EnergyOverheadPct, EnergyPlus: plus.EnergyOverheadPct,
		}, nil
	})
}

// adOrDisabled maps AdTH 0 to the mitigation package's "disabled" encoding.
func adOrDisabled(ad int) int {
	if ad == 0 {
		return -1
	}
	return ad
}

// runAdTH sweeps AdTH for fixed (FlipTH, RFMTH) configurations across the
// workload classes, reporting energy overheads plus the Theorem 2 table
// growth.
func (s *Spec) runAdTH(sc Scale) ([]Figure7Point, error) {
	p := sc.Params()
	// One baseline per (seed, workload): the unprotected run is
	// scheme-independent, single-flight so concurrent cells share it. The
	// baseline's FlipTH slot (it only parameterizes the fault checker, not
	// the machine) uses the first config's threshold.
	baseFlipTH := s.Axes.Configs[0].FlipTH
	var baselines sweep.Cache[baselineKey, sim.Result]
	baseline := func(seed uint64, name string, w trace.Workload) (sim.Result, error) {
		return baselines.Get(baselineKey{seed, 0, name}, func() (sim.Result, error) {
			cfg := BaseSimConfig(baseFlipTH, sc)
			cfg.Workload = w.Fresh()
			return sim.Run(cfg)
		})
	}
	// Fan each (seed, config, AdTH, workload) cell out to the worker pool;
	// the energy overheads come back in enumeration order.
	type adthCell struct {
		seed   uint64
		config ConfigPoint
		adTH   int
		wName  string
	}
	var cells []adthCell
	for _, seed := range s.seeds(sc) {
		for _, cfg := range s.Axes.Configs {
			for _, ad := range s.Axes.AdTHs {
				for _, wName := range s.Axes.Workloads {
					cells = append(cells, adthCell{seed, cfg, ad, wName})
				}
			}
		}
	}
	energies, err := sweep.Run(sc.Jobs, len(cells), func(i int) (float64, error) {
		c := cells[i]
		w := adthWorkloads[c.wName].build(sc.Cores, c.seed)
		base, err := baseline(c.seed, c.wName, w)
		if err != nil {
			return 0, err
		}
		scheme := mitigation.NewMithril(mitigation.Options{
			Timing: p, FlipTH: c.config.FlipTH, RFMTH: c.config.RFMTH, AdTH: adOrDisabled(c.adTH), Seed: c.seed,
		})
		cfg := BaseSimConfig(c.config.FlipTH, sc)
		cfg.Scheme = scheme
		cfg.Workload = w.Fresh()
		res, err := sim.Run(cfg)
		if err != nil {
			return 0, err
		}
		return energy.OverheadPercent(res.Energy, base.Energy), nil
	})
	if err != nil {
		return nil, err
	}
	var out []Figure7Point
	idx := 0
	for _, seed := range s.seeds(sc) {
		for _, cfg := range s.Axes.Configs {
			for _, ad := range s.Axes.AdTHs {
				pt := Figure7Point{FlipTH: cfg.FlipTH, RFMTH: cfg.RFMTH, AdTH: ad, Seed: seed,
					EnergyOverheadPct: map[string]float64{}}
				if pct, ok := analysis.AdditionalNEntryPercent(p, cfg.FlipTH, cfg.RFMTH, ad); ok {
					pt.AdditionalNEntryPct = pct
				}
				for _, wName := range s.Axes.Workloads {
					pt.EnergyOverheadPct[wName] = energies[idx]
					idx++
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}
