package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunContextPreCancelled(t *testing.T) {
	cfg := smallConfig()
	cfg.Workload = smallWorkload(2).Fresh()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextCancelAbortsMidRun(t *testing.T) {
	cfg := smallConfig()
	cfg.InstrPerCore = 50_000_000 // far beyond what finishes in the deadline
	cfg.Workload = smallWorkload(2).Fresh()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cooperative check fires every few thousand iterations; the run
	// must abort well before the instruction budget would have completed.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	cfg := smallConfig()
	cfg.Workload = smallWorkload(2).Fresh()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := smallConfig()
	cfg2.Workload = smallWorkload(2).Fresh()
	b, err := RunContext(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a.AggregateIPC != b.AggregateIPC || a.SimulatedTime != b.SimulatedTime {
		t.Fatalf("context path diverges: %v/%v vs %v/%v",
			a.AggregateIPC, a.SimulatedTime, b.AggregateIPC, b.SimulatedTime)
	}
}
