package trace

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// WorkloadFactory constructs one workload instance for a core count and
// seed. Factories must be deterministic: two calls with equal arguments
// must produce workloads whose Fresh streams replay identically.
type WorkloadFactory func(cores int, seed uint64) Workload

// WorkloadInfo describes one registered workload for catalogs (the CLI's
// `workloads` command, the serve endpoint, the README scenario table).
type WorkloadInfo struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
}

// registry maps workload names to factories. The paper's five benign
// workloads register themselves from init functions in their own files;
// out-of-tree workloads call RegisterWorkload from their package's init
// and become usable by every consumer (spec validation, the CLI, the
// serve endpoint) without touching this package. Guarded by a mutex so
// late registration from plugin-style setup code is race-free.
var (
	registryMu sync.RWMutex
	registry   = map[string]registration{}
)

type registration struct {
	desc    string
	factory WorkloadFactory
}

// TracePrefix is the name form that replays a recorded access trace
// instead of a registered generator set: "trace:<path>" reads path in the
// trace-file format documented in the README (plain text or gzip). The
// prefix is reserved: RegisterWorkload rejects names that collide with it.
const TracePrefix = "trace:"

// RegisterWorkload adds a buildable workload under name. It panics on an
// empty name, a nil factory, a duplicate registration, or a name using the
// reserved "trace:" prefix — all programmer errors at package-init time,
// not runtime conditions to handle.
func RegisterWorkload(name, desc string, f WorkloadFactory) {
	if name == "" {
		panic("trace: RegisterWorkload with empty workload name")
	}
	if strings.HasPrefix(name, TracePrefix) {
		panic(fmt.Sprintf("trace: RegisterWorkload(%q) collides with the reserved %q form", name, TracePrefix+"<path>"))
	}
	if f == nil {
		panic(fmt.Sprintf("trace: RegisterWorkload(%q) with nil factory", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("trace: duplicate RegisterWorkload(%q)", name))
	}
	registry[name] = registration{desc: desc, factory: f}
}

// ErrUnknownWorkload is returned (wrapped, with the valid names listed) by
// BuildWorkload and ValidateWorkloadName for a name no factory is
// registered under. Match with errors.Is.
var ErrUnknownWorkload = errors.New("unknown workload")

// WorkloadNames lists the registered workload names in sorted order. The
// ordering is a documented guarantee (and pinned by a test): consumers
// render the list in error messages, CLI catalogs, and service responses,
// and a stable order keeps those byte-stable across registration-order
// changes. The "trace:<path>" form is not a registered name and is not
// listed.
func WorkloadNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Workloads lists the registered workloads with their one-line
// descriptions, sorted by name (the same guarantee as WorkloadNames).
func Workloads() []WorkloadInfo {
	registryMu.RLock()
	defer registryMu.RUnlock()
	infos := make([]WorkloadInfo, 0, len(registry))
	for n, r := range registry {
		infos = append(infos, WorkloadInfo{Name: n, Desc: r.desc})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// ValidateWorkloadName checks that name is buildable without building it:
// either a registered workload or a well-formed "trace:<path>" form. File
// existence and trace syntax are deliberately not checked here — spec
// validation must stay filesystem-independent (the serve endpoint
// validates specs naming server-local paths) — so trace-file errors
// surface when the workload is built, before any simulation runs.
func ValidateWorkloadName(name string) error {
	if strings.HasPrefix(name, TracePrefix) {
		if strings.TrimPrefix(name, TracePrefix) == "" {
			return fmt.Errorf("trace: %q names no file (want %s<path>)", name, TracePrefix)
		}
		return nil
	}
	registryMu.RLock()
	_, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return fmt.Errorf("trace: %w %q (valid: %s, or %s<path>)",
			ErrUnknownWorkload, name, strings.Join(WorkloadNames(), ", "), TracePrefix)
	}
	return nil
}

// BuildWorkload constructs a workload by name: a registered factory, or
// the "trace:<path>" form, which parses the trace file (strictly — any
// malformed line is an error) and replays it on every core. An
// unregistered name yields an error wrapping ErrUnknownWorkload that
// lists the valid names.
func BuildWorkload(name string, cores int, seed uint64) (Workload, error) {
	if strings.HasPrefix(name, TracePrefix) {
		if err := ValidateWorkloadName(name); err != nil {
			return Workload{}, err
		}
		return FileWorkload(strings.TrimPrefix(name, TracePrefix), cores)
	}
	registryMu.RLock()
	r, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return Workload{}, fmt.Errorf("trace: %w %q (valid: %s, or %s<path>)",
			ErrUnknownWorkload, name, strings.Join(WorkloadNames(), ", "), TracePrefix)
	}
	return r.factory(cores, seed), nil
}
