package stats

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{4, 9}); math.Abs(got-6) > 1e-12 {
		t.Errorf("Geomean(4,9) = %v, want 6", got)
	}
	if got := Geomean([]float64{5}); got != 5 {
		t.Errorf("Geomean(5) = %v", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Errorf("Geomean(nil) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Geomean of non-positive should panic")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Add("alpha", "1")
	tb.Add("a-much-longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header+separator+2 rows", len(lines))
	}
	// All non-final columns align: every line's last column starts at the
	// same offset (first column width + two-space separator), preceded by
	// exactly the separator.
	const lastColStart = len("a-much-longer-name") + 2
	for i, l := range lines {
		if len(l) <= lastColStart || l[lastColStart] == ' ' || l[lastColStart-2:lastColStart] != "  " {
			t.Errorf("line %d: last column does not start at offset %d: %q", i, lastColStart, l)
		}
	}
	if !strings.Contains(out, "a-much-longer-name") {
		t.Error("row content missing")
	}
	// Short rows render with empty cells.
	tb.Add("only-name")
	if !strings.Contains(tb.String(), "only-name") {
		t.Error("short row missing")
	}
}

func TestTableNoTrailingWhitespace(t *testing.T) {
	tb := NewTable("name", "value", "wide-header")
	tb.Add("alpha", "1", "x")
	tb.Add("beta", "22") // short row: empty final cell
	tb.Add("a-much-longer-name", "3", "yy")
	for i, l := range strings.Split(strings.TrimRight(tb.String(), "\n"), "\n") {
		if strings.TrimRight(l, " \t") != l {
			t.Errorf("line %d has trailing whitespace: %q", i, l)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]string{
		{"1", "plain"},
		{"2", `needs "quoting", really`},
	})
	if err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output does not parse back: %v", err)
	}
	if len(records) != 3 || records[0][0] != "a" || records[2][1] != `needs "quoting", really` {
		t.Errorf("round-trip = %v", records)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, map[string]any{"rows": []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Error("missing trailing newline")
	}
	var back map[string][]int
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output does not parse back: %v", err)
	}
	if len(back["rows"]) != 2 {
		t.Errorf("round-trip = %v", back)
	}
}
