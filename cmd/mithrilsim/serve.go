package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"mithril/internal/distrib"
	"mithril/internal/serveapi"
)

// serveCmd runs the HTTP service: the /v1 API (POST /v1/run streaming
// NDJSON rows, GET /v1/healthz, GET /v1/catalog) plus the deprecated
// bare aliases of the original surface. By default the server is a
// worker: /v1/run also accepts coordinator shard requests. With
// -coordinator (over a -workers fleet, or -spawn N / 2 freshly spawned
// local workers) it becomes a fleet coordinator instead, fanning every
// bare sweep out across its worker peers and rejecting shards.
// A client that disconnects mid-sweep cancels the work through the
// request context.
func serveCmd(ctx context.Context, e env, _ []string) error {
	cfg := serveapi.Config{Jobs: e.jobs, Store: e.store}
	role := "worker"
	if e.coordinator || e.fleetConfigured() {
		fleet, shutdown, err := e.fleet(ctx)
		if err != nil {
			return err
		}
		defer shutdown()
		coord, err := distrib.New(fleet, distrib.Options{})
		if err != nil {
			return err
		}
		cfg.Coordinator = coord
		role = fmt.Sprintf("coordinator for %d workers", len(fleet))
	}
	// Bind before serving so -addr :0 (tests, spawned local workers)
	// reports the actual port: the parent process parses the announce
	// line off stderr.
	ln, err := net.Listen("tcp", e.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler: serveapi.NewHandler(cfg),
		// Root every request context in the CLI's signal/timeout context:
		// Ctrl-C cancels in-flight sweeps exactly like a client disconnect.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	go func() {
		<-ctx.Done()
		// The shutdown deadline must not inherit ctx: ctx is already done
		// when this runs, and Shutdown needs a fresh 5s grace window to
		// drain in-flight responses before the listener is torn down.
		//mithril:allow ctxflow deliberate fresh root: parent ctx is already cancelled here
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()
	fmt.Fprintf(os.Stderr, "mithrilsim: serving on http://%s (POST /v1/run, %s)\n", ln.Addr(), role)
	err = srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// newServeHandler builds the service handler for the env's resources.
// Split from serveCmd so tests drive it through httptest without binding
// the CLI's listen address.
func newServeHandler(e env) http.Handler {
	return serveapi.NewHandler(serveapi.Config{Jobs: e.jobs, Store: e.store})
}
