package mithril

// Three-way equivalence for the PR 9 result store: every shipped quick
// spec runs storeless, against a cold disk store, and again against the
// warmed store reopened from disk — and the full-precision golden
// renderings must match byte for byte. The storeless run is the reference;
// any divergence indicts the row key (two different rows colliding) or the
// payload codec (a row drifting through encode/decode). A fourth pass with
// a half-warmed in-memory store checks the mixed case: cached and
// simulated rows interleave inside one sweep and the output still cannot
// tell them apart.

import (
	"context"
	"io/fs"
	"path"
	"strings"
	"testing"

	"mithril/internal/resultstore"
	"mithril/internal/stats"
)

func TestStoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	names, err := fs.Glob(SpecsFS(), "specs/*.quick.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no shipped quick specs found")
	}
	sc := goldenScale()
	ctx := context.Background()
	for _, specPath := range names {
		name := strings.TrimSuffix(path.Base(specPath), ".json")
		t.Run(name, func(t *testing.T) {
			sp, err := LoadShippedSpec(name)
			if err != nil {
				t.Fatal(err)
			}

			// Reference: no store at all.
			bareRes, err := NewEngine(DDR5()).RunSpecAt(ctx, sp, sc)
			if err != nil {
				t.Fatalf("storeless: %v", err)
			}
			bare := bareRes.Golden()
			total := bareRes.RowsCached + bareRes.RowsSimulated
			if bareRes.RowsCached != 0 || bareRes.RowsSimulated == 0 {
				t.Fatalf("storeless run reported cached=%d simulated=%d",
					bareRes.RowsCached, bareRes.RowsSimulated)
			}

			// Cold disk store: every row simulates, every row is written.
			dir := t.TempDir()
			st, err := OpenResultStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			coldRes, err := NewEngine(DDR5(), WithResultStore(st)).RunSpecAt(ctx, sp, sc)
			if err != nil {
				t.Fatalf("cold store: %v", err)
			}
			if cold := coldRes.Golden(); cold != bare {
				t.Errorf("cold store diverges from storeless; diff (-bare +cold):\n%s",
					stats.DiffLines(bare, cold))
			}
			if coldRes.RowsCached != 0 || coldRes.RowsSimulated != total {
				t.Errorf("cold store: cached=%d simulated=%d, want 0/%d",
					coldRes.RowsCached, coldRes.RowsSimulated, total)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			// Warm store, fresh process boundary: reload from disk and
			// reproduce the bytes, simulating only rows the store cannot
			// hold (trace-replay workloads hash file paths, not contents,
			// so they are never cacheable and always re-simulate).
			st2, err := OpenResultStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			storeStats, err := st2.Stats()
			if err != nil {
				t.Fatal(err)
			}
			cacheable := storeStats.Records
			warmRes, err := NewEngine(DDR5(), WithResultStore(st2)).RunSpecAt(ctx, sp, sc)
			if err != nil {
				t.Fatalf("warm store: %v", err)
			}
			if warm := warmRes.Golden(); warm != bare {
				t.Errorf("warm store diverges from storeless; diff (-bare +warm):\n%s",
					stats.DiffLines(bare, warm))
			}
			if warmRes.RowsCached != cacheable || warmRes.RowsSimulated != total-cacheable {
				t.Errorf("warm store: cached=%d simulated=%d, want %d/%d",
					warmRes.RowsCached, warmRes.RowsSimulated, cacheable, total-cacheable)
			}

			// Half-warm: copy alternate records into a fresh memory store —
			// the interrupted-sweep shape, where cached hits and live
			// simulation interleave within a single dispatch.
			half := NewMemResultStore()
			i := 0
			st2.Scan(func(rec resultstore.Record) bool {
				if i%2 == 0 {
					if err := half.Put(rec); err != nil {
						t.Fatal(err)
					}
				}
				i++
				return true
			})
			halfRes, err := NewEngine(DDR5(), WithResultStore(half)).RunSpecAt(ctx, sp, sc)
			if err != nil {
				t.Fatalf("half-warm store: %v", err)
			}
			if got := halfRes.Golden(); got != bare {
				t.Errorf("half-warm store diverges from storeless; diff (-bare +half):\n%s",
					stats.DiffLines(bare, got))
			}
			if halfRes.RowsCached == 0 || halfRes.RowsSimulated == 0 ||
				halfRes.RowsCached+halfRes.RowsSimulated != total {
				t.Errorf("half-warm store: cached=%d simulated=%d, want a strict split of %d",
					halfRes.RowsCached, halfRes.RowsSimulated, total)
			}
		})
	}
}
