package sim

import (
	"testing"

	"mithril/internal/attack"
	"mithril/internal/mc"
	"mithril/internal/mitigation"
	"mithril/internal/timing"
	"mithril/internal/trace"
)

// smallConfig keeps unit-test runs fast: few rows, short instruction
// budget, 4 cores.
func smallConfig() Config {
	p := timing.DDR5()
	p.Rows = 8192
	p.RefreshGroups = 1024
	return Config{
		Params:       p,
		FlipTH:       100000, // high enough that benign runs never flip
		Scheduler:    mc.FRFCFS,
		Policy:       mc.OpenPage,
		InstrPerCore: 4000,
	}
}

func smallWorkload(cores int) trace.Workload {
	return trace.Workload{
		Name: "test",
		Fresh: func() []trace.Generator {
			gens := make([]trace.Generator, cores)
			for i := range gens {
				gens[i] = trace.NewStream("s", uint64(i)<<22, 8<<20, 10, 4)
			}
			return gens
		},
	}
}

func TestRunCompletesAndProducesIPC(t *testing.T) {
	cfg := smallConfig()
	cfg.Workload = smallWorkload(4).Fresh()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatalf("run did not finish: %+v", res)
	}
	if len(res.IPCs) != 4 || res.AggregateIPC <= 0 {
		t.Fatalf("IPCs = %v", res.IPCs)
	}
	for i, ipc := range res.IPCs {
		if ipc <= 0 || ipc > 4 {
			t.Fatalf("core %d IPC = %v out of (0, 4]", i, ipc)
		}
	}
	if res.Device.ACTs == 0 || res.Device.Reads == 0 {
		t.Fatalf("device saw no traffic: %+v", res.Device)
	}
	if res.Energy.Total() <= 0 {
		t.Fatal("energy should be positive")
	}
	if !res.Safety.Safe() {
		t.Fatalf("benign run flipped: %v", res.Safety)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	if _, err := Run(cfg); err == nil {
		t.Fatal("empty workload should error")
	}
	cfg.Workload = smallWorkload(1).Fresh()
	cfg.FlipTH = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("FlipTH=0 should error")
	}
}

func TestComparisonBaselineVsMithril(t *testing.T) {
	cfg := smallConfig()
	scheme := mitigation.NewMithril(mitigation.Options{
		Timing: cfg.Params, FlipTH: 6250, Seed: 3,
	})
	cmp, err := RunComparison(cfg, smallWorkload(4), scheme)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.RelativePerformance <= 50 || cmp.RelativePerformance > 110 {
		t.Fatalf("relative performance = %v%%, want (50, 110]", cmp.RelativePerformance)
	}
	// Small negatives are possible on short runs: RFM stalls deepen the
	// queues, which lets FR-FCFS coalesce more row hits (fewer ACTs).
	if cmp.EnergyOverheadPercent < -5 || cmp.EnergyOverheadPercent > 20 {
		t.Fatalf("energy overhead = %v%%", cmp.EnergyOverheadPercent)
	}
	if cmp.Protected.MC.RFMIssued+cmp.Protected.MC.RFMSkipped == 0 {
		t.Fatal("Mithril run should pace RFMs")
	}
}

func TestAttackFlipsWithoutProtectionAndNotWithMithril(t *testing.T) {
	cfg := smallConfig()
	cfg.FlipTH = 2000
	cfg.InstrPerCore = 40000
	mapper := mc.NewAddressMapper(cfg.Params)

	attackWorkload := trace.Workload{
		Name: "attack",
		Fresh: func() []trace.Generator {
			return []trace.Generator{
				attack.NewDoubleSided(mapper, 0, 0, 1000),
				trace.NewStream("victim", 1<<26, 8<<20, 10, 4),
			}
		},
	}

	// Unprotected: must flip.
	base := cfg
	base.Workload = attackWorkload.Fresh()
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Safety.Safe() {
		t.Fatalf("unprotected attack run should flip (max disturbance %v)", res.Safety.MaxDisturbance)
	}

	// Mithril: must not flip.
	prot := cfg
	prot.Scheme = mitigation.NewMithril(mitigation.Options{Timing: cfg.Params, FlipTH: cfg.FlipTH, RFMTH: 32, Seed: 3})
	prot.Workload = attackWorkload.Fresh()
	pres, err := Run(prot)
	if err != nil {
		t.Fatal(err)
	}
	if !pres.Safety.Safe() {
		t.Fatalf("Mithril failed under attack: %v", pres.Safety)
	}
	if pres.Device.RFMs == 0 || pres.Device.PreventiveRows == 0 {
		t.Fatalf("Mithril should have issued RFMs and preventive refreshes: %+v", pres.Device)
	}
}

func TestMithrilPlusSkipsRFMsOnBenignWorkload(t *testing.T) {
	cfg := smallConfig()
	plus := mitigation.NewMithrilPlus(mitigation.Options{Timing: cfg.Params, FlipTH: 6250, Seed: 3})
	cfg.Scheme = plus
	cfg.Workload = smallWorkload(4).Fresh()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.MC
	if st.RFMSkipped == 0 {
		t.Fatalf("Mithril+ should skip RFMs on benign traffic: %+v", st)
	}
	if st.RFMSkipped < st.RFMIssued {
		t.Fatalf("benign traffic should mostly skip (skipped %d, issued %d)", st.RFMSkipped, st.RFMIssued)
	}
}

func TestDeterministicRunsAreReproducible(t *testing.T) {
	cfg := smallConfig()
	cfg.Workload = smallWorkload(2).Fresh()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := smallConfig()
	cfg2.Workload = smallWorkload(2).Fresh()
	b, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a.AggregateIPC != b.AggregateIPC || a.SimulatedTime != b.SimulatedTime {
		t.Fatalf("runs diverge: %v vs %v", a.AggregateIPC, b.AggregateIPC)
	}
}
