// Package bad leaks goroutines in every way goleak flags.
package bad

import "sync"

// streamLeak is the classic streaming leak: if the consumer stops
// reading, the producer blocks on the send forever.
func streamLeak(n int) <-chan int {
	ch := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			ch <- i // want "channel send with no cancellation arm"
		}
		close(ch)
	}()
	return ch
}

// sendOnlySelect has no receive or default arm to escape through.
func sendOnlySelect(ch chan int) {
	go func() {
		select {
		case ch <- 1: // want "no cancellation arm"
		}
	}()
}

// spin loops forever with no way out.
func spin() {
	go func() {
		for { // want "no exit path"
			_ = 1
		}
	}()
}

// recvForever receives from a channel nobody ever closes or sends on.
func recvForever(stop chan struct{}) {
	go func() {
		<-stop // want "channel receive the spawner can never satisfy"
	}()
}

// rangeNoClose ranges over a channel the spawner never closes.
func rangeNoClose(ch chan int) {
	go func() {
		for range ch { // want "never closes"
		}
	}()
}

// waitNoAdd waits on a WaitGroup the spawner never Adds to.
func waitNoAdd(wg *sync.WaitGroup) {
	go func() {
		wg.Wait() // want "never Adds"
	}()
}

var hook func()

// dynamic spawns a target the call graph cannot resolve to a body.
func dynamic() {
	go hook() // want "dynamic spawn target"
}
