// Attack & defense: run a double-sided and a 32-victim multi-sided
// RowHammer attack against an unprotected DDR5 bank and against Mithril,
// and show the fault-model verdicts — the end-to-end version of the
// paper's protection guarantee.
package main

import (
	"fmt"
	"log"

	"mithril"
)

func main() {
	// The multi-sided attack spreads over 33 aggressors, so it needs a
	// full (time-compressed) refresh window to reach FlipTH on a victim:
	// each run simulates a few milliseconds. The sweep engine fans the
	// (attack × scheme) grid out to every core (Jobs = 0 means the same),
	// so wall time is one cell, not the whole grid.
	scale := mithril.QuickScale()
	scale.InstrPerCore = 60_000
	scale.Jobs = mithril.DefaultJobs()
	const flipTH = 1500

	fmt.Printf("FlipTH = %d, DDR5 bank under attack (time-compressed window)\n\n", flipTH)
	results, err := mithril.SafetySweep(scale, flipTH)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %-16s %8s %16s  %s\n", "attack", "scheme", "flips", "max disturbance", "verdict")
	for _, r := range results {
		verdict := "SAFE"
		if !r.Safe {
			verdict = "UNSAFE — bit flips!"
		}
		fmt.Printf("%-16s %-16s %8d %16.0f  %s\n", r.Attack, r.Scheme, r.Flips, r.MaxDisturbance, verdict)
	}
	fmt.Println("\nOnly the unprotected bank should flip; every deterministic scheme")
	fmt.Println("(and PARFM at its 1e-15 operating point) must keep the margin positive.")
}
