// Package bad blocks while holding locks in every way lockheld flags.
package bad

import (
	"fmt"
	"os"
	"sync"
)

type Queue struct {
	mu    sync.Mutex
	items []int
	ch    chan int
}

// Push sends on a channel inside the critical section.
func (q *Queue) Push(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v // want "channel send while holding"
}

// Pop returns on its empty path without releasing the lock.
func (q *Queue) Pop() (int, bool) {
	q.mu.Lock()
	if len(q.items) == 0 {
		return 0, false // want "returns while q.mu is held"
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.mu.Unlock()
	return v, true
}

// Dump performs I/O under the lock.
func (q *Queue) Dump() {
	q.mu.Lock()
	defer q.mu.Unlock()
	fmt.Fprintln(os.Stderr, q.items) // want "performs I/O"
}

// drain blocks on a receive; Flush reaches it with the lock held — the
// interprocedural case the call graph exists for.
func (q *Queue) drain() {
	<-q.ch
}

func (q *Queue) Flush() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.drain() // want "performs a channel receive"
}

var hook func(string) error

// Notify invokes an arbitrary function value under the lock.
func (q *Queue) Notify() {
	q.mu.Lock()
	defer q.mu.Unlock()
	hook("notify") // want "cannot prove it does not block"
}

// WaitUnderLock joins a WaitGroup while holding the lock.
func (q *Queue) WaitUnderLock(wg *sync.WaitGroup) {
	q.mu.Lock()
	wg.Wait() // want "waits"
	q.mu.Unlock()
}

// Forgot falls off the end of the function with the lock held.
func (q *Queue) Forgot(v int) {
	q.mu.Lock() // want "not released on every path"
	q.items = append(q.items, v)
}
