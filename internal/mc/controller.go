package mc

import (
	"fmt"

	"mithril/internal/dram"
	"mithril/internal/timing"
)

// PagePolicy selects the row-buffer management policy.
type PagePolicy int

// Page policies.
const (
	// OpenPage leaves rows open until a conflict.
	OpenPage PagePolicy = iota
	// ClosedPage precharges after every access.
	ClosedPage
	// MinimalistOpen (Kaseridis et al., Table III) caps the number of
	// consecutive row hits per activation (4) before precharging,
	// balancing locality against fairness.
	MinimalistOpen
)

// String names the policy.
func (p PagePolicy) String() string {
	switch p {
	case OpenPage:
		return "open"
	case ClosedPage:
		return "closed"
	case MinimalistOpen:
		return "minimalist-open"
	default:
		return "unknown"
	}
}

// minimalistHitCap is the per-activation row-hit budget of minimalist-open.
const minimalistHitCap = 4

// Config configures the controller.
type Config struct {
	Scheduler  SchedulerKind
	Policy     PagePolicy
	Scheme     Scheme
	QueueDepth int // per-channel request queue capacity
}

// Stats counts controller-level events.
type Stats struct {
	Served      uint64
	RFMIssued   uint64
	RFMSkipped  uint64 // Mithril+ MRR skips
	MRRReads    uint64 // mode-register polls (Mithril+)
	ARRWindows  uint64
	ARRVictims  uint64
	REFIssued   uint64
	Rejected    uint64 // enqueue attempts against a full queue
	ThrottleHit uint64 // requests delayed by PreACTDelay
}

type arrJob struct {
	bank    int
	victims []uint32
}

type channelCtl struct {
	id         int
	queue      []*Request
	bliss      *blissState
	nextREF    []timing.PicoSeconds // per rank in this channel
	pendingARR []arrJob
}

// Controller drives a dram.Device: request queues per channel, scheduling,
// page policy, auto-refresh, and the RFM/ARR/throttle mitigation hooks.
//
// All per-bank bookkeeping is held in dense slices indexed by global bank
// (the bank count is fixed at construction), keeping the per-ACT hot path
// free of map lookups and allocations.
type Controller struct {
	p        timing.Params
	dev      *dram.Device
	mapper   *AddressMapper
	cfg      Config
	channels []*channelCtl

	raa       []int  // per global bank: rolling accumulated ACT counter
	rfmDue    []bool // per global bank: RAA reached RFMTH, ACTs blocked
	hitStreak []int  // per global bank: consecutive row hits

	// Hoisted scheme properties (constant per run) and per-channel counts
	// of RFM-due banks, so each tick tests one integer instead of making
	// interface calls and scanning every bank.
	rfmCompatible bool
	rfmTH         int
	rfmDueCount   []int // per channel: banks with rfmDue set

	// victimPool recycles the buffers pendingARR jobs hold: schemes may
	// reuse their returned victim slices on the next call, so the
	// controller copies them into pooled storage until the ARR fires.
	victimPool [][]uint32

	complete func(req *Request, at timing.PicoSeconds)
	stats    Stats
}

// NewController builds a controller over the device. complete is invoked
// once per request with its data completion time.
func NewController(dev *dram.Device, cfg Config, complete func(*Request, timing.PicoSeconds)) *Controller {
	p := dev.Params()
	if cfg.Scheme == nil {
		cfg.Scheme = NoProtection{}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if complete == nil {
		complete = func(*Request, timing.PicoSeconds) {}
	}
	c := &Controller{
		p:             p,
		dev:           dev,
		mapper:        NewAddressMapper(p),
		cfg:           cfg,
		raa:           make([]int, dev.NumBanks()),
		rfmDue:        make([]bool, dev.NumBanks()),
		hitStreak:     make([]int, dev.NumBanks()),
		rfmCompatible: cfg.Scheme.RFMCompatible(),
		rfmTH:         cfg.Scheme.RFMTH(),
		rfmDueCount:   make([]int, p.Channels),
		complete:      complete,
	}
	for ch := 0; ch < p.Channels; ch++ {
		cc := &channelCtl{
			id:      ch,
			bliss:   newBlissState(),
			nextREF: make([]timing.PicoSeconds, p.Ranks),
		}
		for r := range cc.nextREF {
			// Stagger refreshes across ranks and channels.
			cc.nextREF[r] = p.TREFI * timing.PicoSeconds(1+ch*p.Ranks+r) / timing.PicoSeconds(p.Channels*p.Ranks)
		}
		c.channels = append(c.channels, cc)
	}
	return c
}

// Mapper exposes the address mapper (shared with workload generators).
func (c *Controller) Mapper() *AddressMapper { return c.mapper }

// Device exposes the controlled DRAM device.
func (c *Controller) Device() *dram.Device { return c.dev }

// Stats returns a copy of the controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// QueueLen reports the current queue occupancy of a channel.
func (c *Controller) QueueLen(channel int) int { return len(c.channels[channel].queue) }

// Enqueue accepts a request into its channel queue; it reports false when
// the queue is full (the core must retry).
//
//mithril:hotpath
func (c *Controller) Enqueue(req *Request) bool {
	req.Loc = c.mapper.Map(req.Addr)
	cc := c.channels[req.Loc.Channel]
	if len(cc.queue) >= c.cfg.QueueDepth {
		c.stats.Rejected++
		return false
	}
	cc.queue = append(cc.queue, req)
	return true
}

// retainVictims copies a scheme's victim list into pooled storage that
// stays valid until the ARR job consumes it (schemes own their returned
// slices and may overwrite them on the next call).
//
//mithril:hotpath
func (c *Controller) retainVictims(v []uint32) []uint32 {
	var buf []uint32
	if n := len(c.victimPool); n > 0 {
		buf = c.victimPool[n-1][:0]
		c.victimPool = c.victimPool[:n-1]
	}
	return append(buf, v...)
}

// releaseVictims returns a consumed ARR job's buffer to the pool.
//
//mithril:hotpath
func (c *Controller) releaseVictims(v []uint32) {
	c.victimPool = append(c.victimPool, v)
}

// markRFMDue records a bank reaching its RAA threshold (idempotent: raw
// activations may keep counting past it).
//
//mithril:hotpath
func (c *Controller) markRFMDue(g int) {
	if !c.rfmDue[g] {
		c.rfmDue[g] = true
		c.rfmDueCount[g/(c.p.Ranks*c.p.Banks)]++
	}
}

// clearRFMDue releases a bank after its RFM was issued or skipped.
//
//mithril:hotpath
func (c *Controller) clearRFMDue(channel, g int) {
	c.rfmDue[g] = false
	c.rfmDueCount[channel]--
}

// Tick advances every channel by one command slot at time now.
//
//mithril:hotpath
func (c *Controller) Tick(now timing.PicoSeconds) {
	for _, cc := range c.channels {
		c.tickChannel(cc, now)
	}
}

//mithril:hotpath
func (c *Controller) tickChannel(cc *channelCtl, now timing.PicoSeconds) {
	// 1. Auto-refresh has absolute priority.
	for r := range cc.nextREF {
		if now >= cc.nextREF[r] {
			rankIdx := cc.id*c.p.Ranks + r
			c.dev.IssueREF(rankIdx, now)
			cc.nextREF[r] += c.p.TREFI
			c.stats.REFIssued++
			return
		}
	}
	// 2. Pending ARR maintenance (MC-side schemes).
	for i, job := range cc.pendingARR {
		if c.dev.Bank(job.bank).Available(now) {
			c.dev.IssueARR(job.bank, len(job.victims), now)
			c.dev.PreventiveRefresh(job.bank, job.victims)
			c.stats.ARRWindows++
			c.stats.ARRVictims += uint64(len(job.victims))
			c.releaseVictims(job.victims)
			cc.pendingARR = append(cc.pendingARR[:i], cc.pendingARR[i+1:]...)
			return
		}
	}
	// 3. RFM issue (Figure 1 flow). The per-channel due count makes the
	// common case (no bank at its RAA threshold) a single integer test.
	if c.rfmDueCount[cc.id] > 0 {
		base := cc.id * c.p.Ranks * c.p.Banks
		for g := base; g < base+c.p.Ranks*c.p.Banks; g++ {
			if !c.rfmDue[g] {
				continue
			}
			// Mithril+: poll the skip flag via MRR before issuing.
			c.stats.MRRReads++
			if c.cfg.Scheme.SkipRFM(g) {
				c.raa[g] = 0
				c.clearRFMDue(cc.id, g)
				c.stats.RFMSkipped++
				continue // skip costs no command slot beyond the MRR
			}
			if !c.dev.Bank(g).Available(now) {
				continue
			}
			c.dev.IssueRFM(g, now)
			victims := c.cfg.Scheme.OnRFM(g, now)
			if len(victims) > 0 {
				c.dev.PreventiveRefresh(g, victims)
			}
			c.raa[g] = 0
			c.clearRFMDue(cc.id, g)
			c.stats.RFMIssued++
			return
		}
	}
	// 4. Serve one request.
	idx := pick(c.cfg.Scheduler, cc.queue, cc.bliss, now,
		func(i int) bool { return c.ready(cc.queue[i], now) },
		func(i int) bool {
			r := cc.queue[i]
			return c.dev.Bank(r.Loc.GlobalBank).OpenRow() == r.Loc.Row
		})
	if idx < 0 {
		return
	}
	req := cc.queue[idx]
	cc.queue = append(cc.queue[:idx], cc.queue[idx+1:]...)
	c.serve(cc, req, now)
}

// ready reports whether a request can start its next command at now.
//
//mithril:hotpath
func (c *Controller) ready(req *Request, now timing.PicoSeconds) bool {
	g := req.Loc.GlobalBank
	bank := c.dev.Bank(g)
	if !bank.Available(now) || c.rfmDue[g] {
		return false
	}
	if req.blocked > now {
		return false
	}
	if bank.OpenRow() != req.Loc.Row {
		// Needs an ACT: consult the throttle hook.
		if until := c.cfg.Scheme.PreACTDelay(g, uint32(req.Loc.Row), req.CoreID, now); until > now {
			req.blocked = until
			c.stats.ThrottleHit++
			return false
		}
	}
	return true
}

//mithril:hotpath
func (c *Controller) serve(cc *channelCtl, req *Request, now timing.PicoSeconds) {
	g := req.Loc.GlobalBank
	activated, dataAt := c.dev.Access(g, req.Loc.Row, req.Write, now)
	if activated {
		if c.rfmCompatible {
			c.raa[g]++
			if c.raa[g] >= c.rfmTH {
				c.markRFMDue(g)
			}
		}
		if victims := c.cfg.Scheme.OnActivate(g, uint32(req.Loc.Row), req.CoreID, now); len(victims) > 0 {
			cc.pendingARR = append(cc.pendingARR, arrJob{bank: g, victims: c.retainVictims(victims)})
		}
		c.hitStreak[g] = 0
	} else {
		c.hitStreak[g]++
	}
	switch c.cfg.Policy {
	case ClosedPage:
		c.dev.Bank(g).Precharge(dataAt)
	case MinimalistOpen:
		if c.hitStreak[g] >= minimalistHitCap-1 {
			c.dev.Bank(g).Precharge(dataAt)
			c.hitStreak[g] = 0
		}
	}
	if c.cfg.Scheduler == BLISS {
		cc.bliss.recordServe(req.CoreID, now)
	}
	req.served = true
	c.stats.Served++
	c.complete(req, dataAt)
}

// RawActivate injects a bare activation (attack replay without a data
// request); it updates RAA/mitigation state exactly like a served ACT.
//
//mithril:hotpath
func (c *Controller) RawActivate(globalBank int, row int, now timing.PicoSeconds) timing.PicoSeconds {
	if globalBank < 0 || globalBank >= c.dev.NumBanks() {
		panic(fmt.Sprintf("mc: bank %d out of range", globalBank))
	}
	done := c.dev.ActivateOnly(globalBank, row, now)
	if c.rfmCompatible {
		c.raa[globalBank]++
		if c.raa[globalBank] >= c.rfmTH {
			c.markRFMDue(globalBank)
		}
	}
	ch := c.channels[globalBank/(c.p.Ranks*c.p.Banks)]
	if victims := c.cfg.Scheme.OnActivate(globalBank, uint32(row), -1, now); len(victims) > 0 {
		ch.pendingARR = append(ch.pendingARR, arrJob{bank: globalBank, victims: c.retainVictims(victims)})
	}
	return done
}

// RFMDue reports whether a bank is blocked awaiting its RFM command.
func (c *Controller) RFMDue(globalBank int) bool { return c.rfmDue[globalBank] }

// RAACount reports a bank's rolling accumulated ACT counter.
func (c *Controller) RAACount(globalBank int) int { return c.raa[globalBank] }

// PendingWork reports whether any channel still holds queued requests or
// pending maintenance.
//
//mithril:hotpath
func (c *Controller) PendingWork() bool {
	for _, cc := range c.channels {
		if len(cc.queue) > 0 || len(cc.pendingARR) > 0 {
			return true
		}
	}
	for _, n := range c.rfmDueCount {
		if n > 0 {
			return true
		}
	}
	return false
}

// NextRefresh reports the earliest scheduled auto-refresh across ranks —
// the only time-driven controller event, used by the simulator's idle
// fast-forward.
//
//mithril:hotpath
func (c *Controller) NextRefresh() timing.PicoSeconds {
	var next timing.PicoSeconds = 1 << 62
	for _, cc := range c.channels {
		for _, t := range cc.nextREF {
			if t < next {
				next = t
			}
		}
	}
	return next
}

// NextWork conservatively reports the earliest time any queued request or
// pending maintenance might become actionable (a far-future sentinel when
// the controller is idle). Throttle-blocked requests contribute their
// release times, which lets the simulator fast-forward BlockHammer delays.
//
//mithril:hotpath
func (c *Controller) NextWork(now timing.PicoSeconds) timing.PicoSeconds {
	var next timing.PicoSeconds = 1 << 62
	for _, cc := range c.channels {
		for _, job := range cc.pendingARR {
			next = earliest(next, c.dev.Bank(job.bank).BusyUntil(), now)
		}
		for _, r := range cc.queue {
			t := r.blocked
			if bu := c.dev.Bank(r.Loc.GlobalBank).BusyUntil(); bu > t {
				t = bu
			}
			next = earliest(next, t, now)
		}
	}
	for ch, n := range c.rfmDueCount {
		if n == 0 {
			continue
		}
		base := ch * c.p.Ranks * c.p.Banks
		for g := base; g < base+c.p.Ranks*c.p.Banks; g++ {
			if c.rfmDue[g] {
				next = earliest(next, c.dev.Bank(g).BusyUntil(), now)
			}
		}
	}
	return next
}

// earliest folds candidate time t (clamped to now) into the running minimum.
//
//mithril:hotpath
func earliest(next, t, now timing.PicoSeconds) timing.PicoSeconds {
	if t < now {
		t = now
	}
	if t < next {
		return t
	}
	return next
}
