// Package apicompat is the pinned consumer snippet behind CI's api-compat
// job: a frozen downstream program written against the PRE-ENGINE public
// surface (package-level Run/Compare/RunParallel, the spec Run/RunAt
// methods, NewScheme, the figure wrappers). It exists to fail the build
// when a refactor breaks the deprecated shims' signatures or types.
//
// DO NOT modernize this file to the Engine API — its whole value is that
// it keeps exercising the old one. It only needs to compile (CI runs
// `go build ./internal/apicompat` and `go vet` over it); Exercise is never
// called in anger.
//
//lint:file-ignore SA1019 this package intentionally consumes deprecated API
package apicompat

import (
	"fmt"

	"mithril"
)

// Exercise touches every entry point of the frozen surface with the exact
// call shapes the pre-Engine README documented.
func Exercise() error {
	p := mithril.DDR5()

	// Scheme construction by name, and the name inventory.
	scheme, err := mithril.NewScheme("mithril", mithril.SchemeOptions{Timing: p, FlipTH: 6250})
	if err != nil {
		return err
	}
	_ = mithril.SchemeNames()

	// Direct simulation and comparison, context-free.
	cfg := mithril.SimConfig{
		Params:       p,
		FlipTH:       6250,
		Scheduler:    mithril.BLISS,
		Policy:       mithril.MinimalistOpen,
		InstrPerCore: 1000,
		Workload:     mithril.MixHigh(2, 1).Fresh(),
	}
	res, err := mithril.Run(cfg)
	if err != nil {
		return err
	}
	var _ mithril.SimResult = res

	cmp, err := mithril.Compare(cfg, mithril.MixHigh(2, 1), scheme)
	if err != nil {
		return err
	}
	var _ mithril.Comparison = cmp

	// The generic parallel fan-out.
	vals, err := mithril.RunParallel(2, 4, func(i int) (int, error) { return i, nil })
	if err != nil || len(vals) != 4 {
		return fmt.Errorf("RunParallel: %v %v", vals, err)
	}

	// Declarative specs through the spec's own methods.
	sp, err := mithril.LoadShippedSpec("figure10.quick")
	if err != nil {
		return err
	}
	if _, err := sp.Run(); err != nil {
		return err
	}
	sc := mithril.QuickScale()
	sc.Jobs = mithril.DefaultJobs()
	if _, err := sp.RunAt(sc); err != nil {
		return err
	}

	// The figure wrappers and analysis surface.
	if _, err := mithril.Figure10Data(sc); err != nil {
		return err
	}
	if _, err := mithril.SafetySweep(sc, 2000); err != nil {
		return err
	}
	if c, ok := mithril.Configure(p, 6250, 128, 0); ok {
		_ = mithril.BoundM(p, c.NEntry, c.RFMTH)
	}
	return nil
}
