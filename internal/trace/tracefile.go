package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed line of a trace file: the access stream's
// persistent form. Gap carries the cycle delta (non-memory instructions
// executed before the access), mirroring Access.Gap.
type Record struct {
	Gap   int
	Write bool
	Addr  uint64
}

// MaxTraceAddr bounds trace-file addresses: one byte above the largest
// DRAM the simulator can be configured with (1 TB). The simulated address
// space wraps modulo its actual size, so a larger value in a trace file is
// corruption (or a truncated hex literal), not a reachable location, and
// the parser rejects it.
const MaxTraceAddr = 1 << 40

// gzipMagic is the two-byte header every gzip stream starts with; the
// reader sniffs it to pick plain-text vs gzip decoding automatically.
var gzipMagic = []byte{0x1f, 0x8b}

// ParseTrace reads a whole access trace from r in the text format
// documented in the README ("Trace-file format"):
//
//	trace  = { line } ;
//	line   = ( record | comment | "" ) "\n" ;
//	record = gap ws op ws addr ;
//	gap    = decimal integer >= 0 ;
//	op     = "R" | "W" ;
//	addr   = "0x" hex integer < MaxTraceAddr ;
//
// Comments start with "#"; blank lines are skipped. A gzip stream
// (detected by its magic bytes) is decompressed transparently. Parsing is
// strict: any malformed line fails with its line number, and a trace with
// no records at all is an error (a replay generator must be endless, and
// an empty workload is always a mistake).
func ParseTrace(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	if head, err := br.Peek(2); err == nil && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: gzip: %w", err)
		}
		defer gz.Close()
		return parseTraceText(gz)
	}
	return parseTraceText(br)
}

func parseTraceText(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		rec, ok, err := parseTraceLine(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if ok {
			recs = append(recs, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: no records (replay needs at least one access)")
	}
	return recs, nil
}

// parseTraceLine parses one line; ok is false for blank/comment lines.
func parseTraceLine(line string) (Record, bool, error) {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Record{}, false, nil
	}
	if len(fields) != 3 {
		return Record{}, false, fmt.Errorf("want 3 fields <gap> <R|W> <0xaddr>, got %d", len(fields))
	}
	gap, err := strconv.Atoi(fields[0])
	if err != nil || gap < 0 {
		return Record{}, false, fmt.Errorf("bad gap %q (want decimal integer >= 0)", fields[0])
	}
	var write bool
	switch fields[1] {
	case "R":
		write = false
	case "W":
		write = true
	default:
		return Record{}, false, fmt.Errorf("bad op %q (want R or W)", fields[1])
	}
	hex, ok := strings.CutPrefix(fields[2], "0x")
	if !ok {
		return Record{}, false, fmt.Errorf("bad address %q (want 0x-prefixed hex)", fields[2])
	}
	addr, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return Record{}, false, fmt.Errorf("bad address %q (want 0x-prefixed hex)", fields[2])
	}
	if addr >= MaxTraceAddr {
		return Record{}, false, fmt.Errorf("address %#x out of range (must be < %#x)", addr, uint64(MaxTraceAddr))
	}
	return Record{Gap: gap, Write: write, Addr: addr}, true, nil
}

// ParseTraceFile reads one trace file (plain text or gzip) from disk.
func ParseTraceFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	recs, err := ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", path, err)
	}
	return recs, nil
}

// WriteTrace emits recs in the canonical trace-file text form: parsing
// WriteTrace's output yields recs back exactly (the round-trip a testdata
// fixture pins). Callers wanting the gzip variant wrap w in a gzip.Writer.
func WriteTrace(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		op := "R"
		if r.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%d %s %#x\n", r.Gap, op, r.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Replay is a Generator that cycles through a recorded access stream,
// offsetting every address by a fixed base (FileWorkload picks per-core
// bases that keep replays of the same trace disjoint, like the
// multi-programmed mixes).
type Replay struct {
	name   string
	recs   []Record
	offset uint64
	pos    int
}

var _ Generator = (*Replay)(nil)

// NewReplay builds a replay generator over recs. It panics on an empty
// record slice — ParseTrace never returns one, and a Generator must be
// endless.
func NewReplay(name string, recs []Record, offset uint64) *Replay {
	if len(recs) == 0 {
		panic("trace: NewReplay with no records")
	}
	return &Replay{name: name, recs: recs, offset: offset}
}

// Name implements Generator.
func (r *Replay) Name() string { return r.name }

// Next implements Generator, wrapping to the first record after the last.
func (r *Replay) Next() Access {
	rec := r.recs[r.pos]
	r.pos++
	if r.pos == len(r.recs) {
		r.pos = 0
	}
	return Access{Gap: rec.Gap, Addr: r.offset + rec.Addr, Write: rec.Write}
}

// FileWorkload builds the "trace:<path>" workload: the file is parsed once
// (strictly), and every core replays the same recorded stream with its
// addresses offset by a per-core stride — the trace's address footprint
// rounded up to a power of two, at least the 256 MB core region — so the
// replays stay disjoint no matter how large the recorded footprint is.
// The workload name is the full "trace:<path>" spelling, so spec rows,
// baseline-cache keys, and golden lines all carry the name the spec used.
func FileWorkload(path string, cores int) (Workload, error) {
	recs, err := ParseTraceFile(path)
	if err != nil {
		return Workload{}, err
	}
	if cores < 1 {
		cores = 1
	}
	stride := replayStride(recs)
	return Workload{
		Name: TracePrefix + path,
		Fresh: func() []Generator {
			gens := make([]Generator, cores)
			for i := 0; i < cores; i++ {
				gens[i] = NewReplay(fmt.Sprintf("replay-%d", i), recs, uint64(i)*stride)
			}
			return gens
		},
	}, nil
}

// replayStride returns the per-core address offset for a replayed trace:
// the smallest power of two that both covers the trace's highest address
// and is at least the standard 256 MB core region.
func replayStride(recs []Record) uint64 {
	stride := uint64(1) << 28 // coreRegion granularity
	for _, r := range recs {
		for r.Addr >= stride {
			stride <<= 1
		}
	}
	return stride
}
