package mitigation

// unregisterForTest removes a test-registered scheme so registry tests
// leave the shipped name set intact for later tests in the process.
func unregisterForTest(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	delete(registry, name)
}
