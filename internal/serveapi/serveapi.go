// Package serveapi is the mithrilsim HTTP surface: the versioned /v1
// API (run streaming, health, the merged registry catalog) plus the
// original bare paths kept as deprecated aliases. The same handler
// serves three roles — a plain sweep server, a distributed worker
// (shard requests on /v1/run), and a coordinator front-end that fans
// bare sweeps out across a worker fleet — selected by Config.
//
// Every non-200 response and every terminal /v1 stream error carries
// the uniform JSON envelope {"error":{"code","message"}}; codes are the
// stable distrib.Code* slugs coordinators use to classify failures as
// permanent or retryable. Legacy alias responses keep their original
// shapes byte-for-byte (the cmd/mithrilsim compat tests pin them) and
// advertise their successors with Deprecation/Link headers.
package serveapi

import (
	"encoding/json"
	"net/http"

	"mithril/internal/attack"
	"mithril/internal/distrib"
	"mithril/internal/expspec"
	"mithril/internal/mitigation"
	"mithril/internal/resultstore"
	"mithril/internal/trace"
)

// maxSpecBytes bounds a POSTed body; real specs (and shard requests,
// which add only a scale and a row list) are a few hundred bytes, so
// anything near the limit is a mistake or an attack, not a grid.
const maxSpecBytes = 1 << 20

// Config selects the handler's role and resources.
type Config struct {
	// Jobs overrides every executed scale's worker count (0: leave the
	// spec's resolved scale alone), mirroring the -jobs flag.
	Jobs int
	// Store is the shared result store (nil: simulate everything).
	// Every request consults it before simulating a row and writes
	// fresh rows back.
	Store resultstore.Store
	// Coordinator, when set, turns the server into a fleet front-end:
	// bare sweeps on /v1/run and /run fan out across its workers, and
	// shard requests are rejected (a coordinator accepting shards from
	// another coordinator could recurse through its own fleet).
	Coordinator *distrib.Coordinator
}

// NewHandler builds the service mux for one Config.
func NewHandler(cfg Config) http.Handler {
	s := &server{cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) { s.handleHealth(w, r, false) })
	mux.HandleFunc("/v1/catalog", s.handleCatalog)
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) { s.handleRun(w, r, false) })
	// Deprecated aliases: the pre-/v1 surface, frozen. Responses keep
	// their original shapes; Deprecation/Link headers point clients at
	// the successor endpoint.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		deprecated(w, "/v1/healthz")
		s.handleHealth(w, r, true)
	})
	mux.HandleFunc("/schemes", func(w http.ResponseWriter, r *http.Request) {
		deprecated(w, "/v1/catalog")
		writeJSON(w, mitigation.Names())
	})
	mux.HandleFunc("/workloads", func(w http.ResponseWriter, r *http.Request) {
		deprecated(w, "/v1/catalog")
		writeJSON(w, trace.Workloads())
	})
	mux.HandleFunc("/attacks", func(w http.ResponseWriter, r *http.Request) {
		deprecated(w, "/v1/catalog")
		writeJSON(w, attack.Patterns())
	})
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) {
		deprecated(w, "/v1/run")
		s.handleRun(w, r, true)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, distrib.CodeNotFound, "unknown path "+r.URL.Path+" (the API lives under /v1/)")
	})
	return mux
}

type server struct {
	cfg Config
}

// role names the server's position in a fleet for /v1/healthz.
func (s *server) role() string {
	if s.cfg.Coordinator != nil {
		return "coordinator"
	}
	return "worker"
}

// applyJobs imposes the server's -jobs override on a resolved scale.
func (s *server) applyJobs(sc expspec.Scale) expspec.Scale {
	if s.cfg.Jobs != 0 {
		sc.Jobs = s.cfg.Jobs
	}
	return sc
}

// execOptions binds the server's resources for one request's execution.
func (s *server) execOptions() *expspec.ExecOptions {
	return &expspec.ExecOptions{Store: s.cfg.Store}
}

// handleHealth reports readiness. The legacy shape is frozen at
// {status, stamp, store}; /v1 adds the API version, the server's fleet
// role, and (for coordinators) the worker list, so an operator can tell
// from one probe what a port is.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request, legacy bool) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, distrib.CodeMethod, "GET this endpoint")
		return
	}
	// The stamp lets a client predict cache behaviour: rows stored
	// under another stamp (schema bump, different scheme registry)
	// will re-simulate rather than hit.
	if legacy {
		writeJSON(w, map[string]any{
			"status": "ok",
			"stamp":  expspec.StoreStamp(),
			"store":  s.cfg.Store != nil,
		})
		return
	}
	health := map[string]any{
		"status": "ok",
		"api":    "v1",
		"stamp":  expspec.StoreStamp(),
		"store":  s.cfg.Store != nil,
		"role":   s.role(),
	}
	if s.cfg.Coordinator != nil {
		health["workers"] = s.cfg.Coordinator.Workers()
	}
	writeJSON(w, health)
}

// handleCatalog merges the three registry listings into one document.
// The stamp rides along because it is the registries' fingerprint: a
// client that caches the catalog can revalidate it against /v1/healthz
// with a string compare.
func (s *server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, distrib.CodeMethod, "GET /v1/catalog")
		return
	}
	writeJSON(w, map[string]any{
		"schemes":   mitigation.Names(),
		"workloads": trace.Workloads(),
		"attacks":   attack.Patterns(),
		"stamp":     expspec.StoreStamp(),
	})
}

// deprecated marks a legacy alias response with its successor.
func deprecated(w http.ResponseWriter, successor string) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
}

// writeJSON emits a 200 JSON document.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the uniform error envelope. Only valid before the
// response header is committed — mid-stream failures use the terminal
// NDJSON error record instead.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: &distrib.APIError{Code: code, Message: msg}})
}

// errorEnvelope is the uniform /v1 error body, and the terminal NDJSON
// error record of an aborted /v1 stream.
type errorEnvelope struct {
	Error *distrib.APIError `json:"error"`
}
