package main

// Result-store maintenance (`mithrilsim store <stats|gc|verify>`) and the
// version stamp (`mithrilsim version`). The store subcommand manages the
// -store directory directly rather than through env.store: stats and gc
// open it themselves, and verify deliberately never opens it at all —
// Open adopts crash-left segments (a write), and an integrity check must
// not alter what it is checking.

import (
	"context"
	"fmt"
	"sort"

	"mithril"
	"mithril/internal/resultstore"
	"mithril/internal/stats"
)

// versionCmd prints the schema/registry identity rows are keyed under.
// Operators compare the stamp across builds to predict whether a shared
// store directory will serve hits or re-simulate everything.
func versionCmd(_ context.Context, _ env, _ []string) error {
	fmt.Printf("store schema version:  %d\n", mithril.ResultStoreSchemaVersion)
	fmt.Printf("scheme registry:       %s\n", mithril.ResultStoreFingerprint(mithril.SchemeNames()))
	fmt.Printf("result store stamp:    %s\n", mithril.ResultStoreStamp())
	return nil
}

// storeCmd dispatches the maintenance operations.
func storeCmd(_ context.Context, e env, args []string) error {
	if e.storeDir == "" {
		return fmt.Errorf("store %s needs -store <dir>", args[0])
	}
	switch args[0] {
	case "stats":
		return storeStats(e.storeDir)
	case "gc":
		return storeGC(e.storeDir)
	case "verify":
		return storeVerify(e.storeDir)
	default:
		return fmt.Errorf("unknown store operation %q (want stats, gc, or verify)", args[0])
	}
}

// storeStats opens the store (adopting any crash-left segment, exactly
// as a sweep would) and prints its live shape, including the per-stamp
// record split that tells an operator whether gc has bytes to reclaim.
func storeStats(dir string) error {
	d, err := resultstore.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	st, err := d.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("store:     %s\n", st.Dir)
	fmt.Printf("segments:  %d (%d bytes)\n", st.Segments, st.Bytes)
	fmt.Printf("records:   %d live (torn lines skipped on load: %d)\n", st.Records, st.TornLines)
	current := mithril.ResultStoreStamp()
	stamps := make([]string, 0, len(st.Stamps))
	for s := range st.Stamps {
		stamps = append(stamps, s)
	}
	sort.Strings(stamps)
	for _, s := range stamps {
		marker := "stale (gc reclaims)"
		if s == current {
			marker = "current"
		}
		fmt.Printf("stamp %s:  %d records (%s)\n", s, st.Stamps[s], marker)
	}
	if st.Stamps[current] == 0 {
		fmt.Printf("stamp %s:  0 records (current)\n", current)
	}
	return nil
}

// storeGC compacts the store down to records carrying the current
// version stamp: superseded generations can never match a key again, so
// their bytes are pure waste.
func storeGC(dir string) error {
	d, err := resultstore.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	current := mithril.ResultStoreStamp()
	removed, err := d.GC(func(rec resultstore.Record) bool { return rec.Stamp == current })
	if err != nil {
		return err
	}
	fmt.Printf("gc: removed %d stale records, kept %d (stamp %s)\n", removed, d.Len(), current)
	return nil
}

// storeVerify checks every segment read-only and reports damage,
// distinguishing torn tails (a crash mid-append — reload handles these
// by design) from mid-file corruption. Any damage fails the command so
// scripts can gate on it; the report still prints first.
func storeVerify(dir string) error {
	rep, err := resultstore.VerifyDir(dir)
	if err != nil {
		return err
	}
	t := stats.NewTable("segment", "records", "bad lines", "damage")
	for _, sr := range rep.Segments {
		damage := "none"
		switch {
		case sr.BadLines > 0 && sr.TailOnly:
			damage = "torn tail"
		case sr.BadLines > 0:
			damage = "mid-file"
		}
		t.Add(sr.Name, fmt.Sprint(sr.Records), fmt.Sprint(sr.BadLines), damage)
	}
	fmt.Print(t)
	fmt.Printf("total: %d records, %d bad lines\n", rep.Records, rep.BadLines)
	if !rep.Clean() {
		return fmt.Errorf("store %s has %d damaged lines (torn rows re-simulate on next use; gc rewrites clean segments)", dir, rep.BadLines)
	}
	return nil
}
