package mc

import "mithril/internal/timing"

// Request is one memory transaction queued at the controller.
type Request struct {
	ID      uint64
	CoreID  int
	Addr    uint64
	Write   bool
	Loc     Location
	Arrive  timing.PicoSeconds
	served  bool
	blocked timing.PicoSeconds // earliest serve time (throttling)
}

// SchedulerKind selects the request scheduling policy.
type SchedulerKind int

// Scheduling policies.
const (
	// FCFS serves strictly in arrival order.
	FCFS SchedulerKind = iota
	// FRFCFS prefers row hits, then the oldest request.
	FRFCFS
	// BLISS (Subramanian et al.): like FR-FCFS, but an application served
	// four requests in a row is blacklisted for a clearing interval,
	// bounding interference (Table III's scheduler).
	BLISS
)

// String names the policy.
func (k SchedulerKind) String() string {
	switch k {
	case FCFS:
		return "FCFS"
	case FRFCFS:
		return "FR-FCFS"
	case BLISS:
		return "BLISS"
	default:
		return "unknown"
	}
}

// blissState tracks BLISS's serve streak and blacklist per channel. The
// blacklist is a dense slice indexed by core ID, grown on demand (core
// counts are small and stable), so the scheduler's inner loop stays free of
// map lookups.
type blissState struct {
	lastCore  int
	streak    int
	blackTill []timing.PicoSeconds // per core: blacklist release time
}

// blissStreakLimit and blissClearInterval follow the BLISS paper's default
// configuration (4 consecutive requests; 10000 core cycles ≈ 2.8 µs at
// 3.6 GHz).
const (
	blissStreakLimit   = 4
	blissClearInterval = 2800 * timing.Nanosecond
)

func newBlissState() *blissState {
	return &blissState{lastCore: -1}
}

//mithril:hotpath
func (b *blissState) blacklisted(core int, now timing.PicoSeconds) bool {
	return core >= 0 && core < len(b.blackTill) && b.blackTill[core] > now
}

//mithril:hotpath
func (b *blissState) recordServe(core int, now timing.PicoSeconds) {
	if core == b.lastCore {
		b.streak++
		if b.streak >= blissStreakLimit {
			if core >= 0 {
				for core >= len(b.blackTill) {
					b.blackTill = append(b.blackTill, 0)
				}
				b.blackTill[core] = now + blissClearInterval
			}
			b.streak = 0
		}
		return
	}
	b.lastCore = core
	b.streak = 1
}

// pick selects the next serveable request index from cc's queue, or -1.
// A Controller method (rather than a free function taking ready/rowHit
// closures) so the per-entry readiness and open-row probes are direct
// calls: the scan runs once per serve attempt over every queued request,
// and two indirect calls per entry were measurable on the simulator loop.
// ready has side effects (throttle accounting, blocked-until updates), so
// each policy calls it exactly once per unserved entry, in queue order.
//
//mithril:hotpath
func (c *Controller) pick(cc *channelCtl, now timing.PicoSeconds) int {
	queue := cc.queue
	switch c.cfg.Scheduler {
	case FCFS:
		for i, r := range queue {
			if !r.served && c.ready(r, now) {
				return i // queue is in arrival order
			}
		}
		return -1
	case FRFCFS:
		best := -1
		bestHit := false
		for i, r := range queue {
			if r.served || !c.ready(r, now) {
				continue
			}
			hit := c.dev.Bank(r.Loc.GlobalBank).OpenRow() == r.Loc.Row
			if best == -1 || (hit && !bestHit) {
				best, bestHit = i, hit
			}
		}
		return best
	case BLISS:
		bliss := cc.bliss
		best := -1
		bestHit := false
		bestWhite := false
		for i, r := range queue {
			if r.served || !c.ready(r, now) {
				continue
			}
			white := !bliss.blacklisted(r.CoreID, now)
			hit := c.dev.Bank(r.Loc.GlobalBank).OpenRow() == r.Loc.Row
			better := false
			switch {
			case best == -1:
				better = true
			case white != bestWhite:
				better = white
			case hit != bestHit:
				better = hit
			}
			if better {
				best, bestHit, bestWhite = i, hit, white
			}
		}
		return best
	}
	return -1
}
