package lint

// All returns the full analyzer suite in its canonical order — what
// cmd/mithrilvet runs and the self-check test asserts clean. The first
// four are the intraprocedural PR 6 suite; ctxflow, goleak, and lockheld
// ride the interprocedural call-graph layer (see callgraph.go).
func All() []*Analyzer {
	return []*Analyzer{HotpathAlloc, DetRange, PureSim, RegisterInit, CtxFlow, GoLeak, LockHeld}
}
