// Package good shows the two sanctioned shapes: collect-then-sort before
// emitting, and explicitly suppressed order-independent aggregation.
package good

import (
	"fmt"
	"sort"
)

func Emit(counts map[string]int) {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Println(name, counts[name])
	}
}

func Sum(counts map[string]int) int {
	total := 0
	for _, n := range counts { //mithril:allow detrange order-independent sum
		total += n
	}
	return total
}

func Slice(names []string) {
	for _, name := range names { // slices iterate in order; never flagged
		fmt.Println(name)
	}
}
