package sim

import (
	"testing"

	"mithril/internal/timing"
)

func TestTickClockStepClampsToOneTick(t *testing.T) {
	clk := tickClock{tick: 625}
	if clk.Now() != 0 {
		t.Fatalf("fresh clock at %v, want 0", clk.Now())
	}
	// A far-future target jumps the clock directly there.
	clk.Step(10_000)
	if clk.Now() != 10_000 {
		t.Fatalf("Step(10000) left clock at %v", clk.Now())
	}
	// A target at or before now+tick still advances by exactly one tick:
	// the loop must always make progress.
	for _, target := range []timing.PicoSeconds{0, 5_000, 10_000, 10_625} {
		before := clk.Now()
		clk.Step(target)
		if want := before + 625; clk.Now() != want {
			t.Fatalf("Step(%v) from %v moved clock to %v, want %v", target, before, clk.Now(), want)
		}
	}
}

func TestTickClockAdvanceToNeverRewinds(t *testing.T) {
	clk := tickClock{tick: 625}
	clk.AdvanceTo(900)
	if clk.Now() != 900 {
		t.Fatalf("AdvanceTo(900) left clock at %v", clk.Now())
	}
	clk.AdvanceTo(100)
	if clk.Now() != 900 {
		t.Fatalf("AdvanceTo(100) rewound clock to %v", clk.Now())
	}
}

func TestCompletionQueueOrdersArbitraryPushes(t *testing.T) {
	var q completionQueue
	if q.minAt() != timing.Never {
		t.Fatalf("empty queue minAt = %v, want Never", q.minAt())
	}
	// Deterministic pseudo-random times (LCG) pushed out of order.
	times := make([]timing.PicoSeconds, 200)
	state := uint64(12345)
	for i := range times {
		state = state*6364136223846793005 + 1442695040888963407
		times[i] = timing.PicoSeconds(state >> 40)
		q.push(completion{at: times[i], reqID: uint64(i)})
	}
	var prev timing.PicoSeconds = -1
	for i := 0; i < len(times); i++ {
		if q.minAt() < prev {
			t.Fatalf("minAt %v went backwards past %v", q.minAt(), prev)
		}
		c := q.pop()
		if c.at < prev {
			t.Fatalf("pop %d returned %v after %v", i, c.at, prev)
		}
		prev = c.at
	}
	if q.minAt() != timing.Never {
		t.Fatalf("drained queue minAt = %v, want Never", q.minAt())
	}
}

func TestCompletionQueueEqualTimesDeliverInPushOrder(t *testing.T) {
	var q completionQueue
	q.push(completion{at: 100, reqID: 1})
	q.push(completion{at: 50, reqID: 2})
	q.push(completion{at: 100, reqID: 3})
	q.push(completion{at: 100, reqID: 4})
	want := []uint64{2, 1, 3, 4}
	for i, id := range want {
		if c := q.pop(); c.reqID != id {
			t.Fatalf("pop %d = reqID %d, want %d", i, c.reqID, id)
		}
	}
}

func TestCompletionQueueCompactsConsumedPrefix(t *testing.T) {
	var q completionQueue
	// Interleave pushes and pops so the head index grows well past the
	// compaction threshold while the live window stays small.
	next := timing.PicoSeconds(0)
	for i := 0; i < 500; i++ {
		next += 10
		q.push(completion{at: next, reqID: uint64(i)})
		if i%2 == 1 {
			lo := q.pop()
			hi := q.pop()
			if lo.at > hi.at {
				t.Fatalf("pops out of order: %v then %v", lo.at, hi.at)
			}
		}
	}
	if len(q.items) > 100 {
		t.Fatalf("queue never compacted: %d items buffered for a tiny live window", len(q.items))
	}
}
