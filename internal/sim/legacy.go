package sim

import (
	"context"

	"mithril/internal/cpu"
	"mithril/internal/mc"
	"mithril/internal/timing"
)

// runLoopTicked is the pre-calendar simulator loop: deliver completions,
// advance every core, tick every channel, fast-forward over idle
// stretches. It returns when the required cores finish or MaxTime passes
// (allDone distinguishes the two), or with ctx's error on cancellation.
//
// Deprecated: runLoopCalendar is the production loop. This one is kept —
// gated behind SetLegacyTickLoop, which only tests flip — as the reference
// implementation the differential-equivalence suite compares against: it
// calls every subsystem every iteration, so any divergence between the two
// loops indicts a calendar skip decision, not this loop. It deliberately
// drives the deprecated controller surface (Tick, NextWork, NextRefresh).
//
//mithril:hotpath
func runLoopTicked(ctx context.Context, cfg *Config, cores []*cpu.Core, ctl *mc.Controller, pending *completionQueue, cancellable bool) (now timing.PicoSeconds, allDone bool, err error) {
	clk := tickClock{tick: cfg.Params.TCK}
	sinceCheck := 0
	for {
		if cancellable {
			sinceCheck++
			if sinceCheck >= cancelCheckInterval {
				sinceCheck = 0
				if err := ctx.Err(); err != nil {
					return clk.now, false, err
				}
			}
		}
		now := clk.now
		// Deliver due completions.
		for pending.minAt() <= now {
			c := pending.pop()
			cores[completionCore(c.reqID)].Complete(c.reqID, c.at)
		}
		required := cfg.RequireCores
		if required <= 0 || required > len(cores) {
			required = len(cores)
		}
		allDone = true
		for i, core := range cores {
			core.Advance(now)
			if i < required && !core.Finished() {
				allDone = false
			}
		}
		if allDone || now > cfg.MaxTime {
			return now, allDone, nil
		}
		ctl.Tick(now)
		// Idle fast-forward: jump to the next event (controller work,
		// completion, core fetch time, or refresh slot) instead of ticking
		// through dead time. This is what makes serialized attack loops
		// (one miss per ~100 ns) and multi-microsecond throttle delays
		// simulable over millisecond refresh windows.
		next := ctl.NextWork(now + clk.tick)
		if t := ctl.NextRefresh(); t < next {
			next = t
		}
		if t := pending.minAt(); t < next {
			next = t
		}
		for _, core := range cores {
			if t := core.NextReady(); t < next {
				next = t
			}
		}
		clk.Step(next)
	}
}
