package expspec

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"
	"strings"
	"sync"

	"mithril/internal/analysis"
	"mithril/internal/attack"
	"mithril/internal/energy"
	"mithril/internal/mc"
	"mithril/internal/mitigation"
	"mithril/internal/resultstore"
	"mithril/internal/sim"
	"mithril/internal/stats"
	"mithril/internal/sweep"
	"mithril/internal/timing"
	"mithril/internal/trace"
)

// attackInstrFactor extends attack runs so threshold mechanisms (NBL,
// FlipTH accumulation) have time to engage.
const attackInstrFactor = 64

// BaseSimConfig builds the Table III system configuration at the scale's
// (possibly time-compressed) timing.
func BaseSimConfig(flipTH int, sc Scale) sim.Config {
	return sim.Config{
		Params:       sc.Params(),
		FlipTH:       flipTH,
		Scheduler:    mc.BLISS,
		Policy:       mc.MinimalistOpen,
		InstrPerCore: sc.InstrPerCore,
	}
}

// ---------------------------------------------------------------- registries

// Benign workload names resolve through the open registry in
// internal/trace (trace.BuildWorkload), which also understands the
// "trace:<path>" replay form; attack names resolve through the open
// registry in internal/attack (attack.Build). This package adds only the
// two comparison meta-workloads that depend on the experiment scale:
// "normal" is the scale's benign set reduced to one geomean row;
// "multi-sided-rh" is the Figure 10(b) attack.
const (
	normalSet    = "normal"
	multiSidedRH = "multi-sided-rh"
)

// validateComparisonWorkload accepts the meta-workloads plus anything the
// workload registry can build; its error lists the meta names too, so a
// typo of "normal" is steered back to the full vocabulary.
func validateComparisonWorkload(name string) error {
	if name == normalSet || name == multiSidedRH {
		return nil
	}
	if err := trace.ValidateWorkloadName(name); err != nil {
		return fmt.Errorf("%w; comparison also accepts %q and %q", err, normalSet, multiSidedRH)
	}
	return nil
}

// adthWorkloads maps the Figure 7 workload classes to generators, plus the
// short labels its energy-column headers use.
var adthWorkloads = map[string]struct {
	short string
	build func(cores int, seed uint64) trace.Workload
}{
	"multi-programmed": {"multi-prog", trace.MixHigh},
	"multi-threaded":   {"multi-thread", trace.FFT},
}

func adthWorkloadNames() []string { return sortedKeys(adthWorkloads) }

// safetyBackground builds the benign core a safety attack runs alongside.
// Background core first, attacker last: the run ends when the benign core
// finishes even if the attacker is throttled to a crawl. The background
// must be memory-bound (footprint ≫ LLC) so the attacker gets a realistic
// time window.
func safetyBackground() trace.Generator {
	return trace.NewStream("bg", 1<<28, 64<<20, 10, 4)
}

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// ---------------------------------------------------------------- row types

// PerfPoint is one (scheme, FlipTH, workload) measurement.
type PerfPoint struct {
	Scheme              string
	FlipTH              int
	RFMTH               int
	Workload            string
	Seed                uint64
	RelativePerformance float64 // % of unprotected aggregate IPC
	EnergyOverheadPct   float64
	TableKB             float64
	Safe                bool
}

// String renders the point for logs.
func (p PerfPoint) String() string {
	return fmt.Sprintf("%-12s FlipTH=%-6d %-16s perf=%6.2f%% energy=+%5.2f%% table=%6.2fKB safe=%v",
		p.Scheme, p.FlipTH, p.Workload, p.RelativePerformance, p.EnergyOverheadPct, p.TableKB, p.Safe)
}

// SafetyResult is one scheme × attack verdict.
type SafetyResult struct {
	Scheme         string
	Attack         string
	FlipTH         int
	Seed           uint64
	Flips          int
	MaxDisturbance float64
	Safe           bool
}

// Figure9Point compares Mithril and Mithril+ at one operating point.
type Figure9Point struct {
	FlipTH, RFMTH int
	Seed          uint64
	Mithril       float64 // relative performance %
	MithrilPlus   float64
	TableKB       float64
	EnergyMithril float64
	EnergyPlus    float64
}

// Figure7Point is one AdTH level of Figure 7.
type Figure7Point struct {
	FlipTH, RFMTH, AdTH int
	Seed                uint64
	// EnergyOverheadPct per workload class (multi-programmed/threaded).
	EnergyOverheadPct map[string]float64
	// AdditionalNEntryPct is the Theorem 2 table growth (right axis).
	AdditionalNEntryPct float64
}

// Row is one completed output row of an executing spec: the unit the
// streaming executor yields as workers finish grid points. Exactly one of
// the point fields is set, matching the spec's kind.
type Row struct {
	// Index is the row's position in the spec's deterministic Expand
	// order. Streams deliver rows in completion order; consumers that
	// need grid order reassemble by Index.
	Index int
	// Cell is the expanded grid cell this row realizes.
	Cell Cell

	Perf   *PerfPoint    // comparison
	Safety *SafetyResult // safety
	Grid   *Figure9Point // configgrid
	AdTH   *Figure7Point // adth

	// Cached is true when the row was served from the result store
	// instead of simulated (rows from storeless executions are never
	// cached). Cached and simulated rows are byte-identical in every
	// output format — the flag exists for effectiveness accounting, not
	// for consumers to treat the rows differently.
	Cached bool
}

// ---------------------------------------------------------- exec options

// ExecOptions tunes a spec execution beyond what Scale carries. The zero
// value (and a nil pointer) mean no progress reporting and a private
// baseline cache per execution.
type ExecOptions struct {
	// Progress, when non-nil, is invoked after each output row completes
	// with the number of completed rows and the total row count. Calls are
	// serialized by the executor, so the hook needs no locking of its own;
	// it must not block for long — it runs on the sweep's critical path.
	Progress func(done, total int)
	// Baselines, when non-nil, shares unprotected-baseline simulations
	// across executions (the Engine's WithBaselineCache installs one).
	// Entries are keyed by everything that determines a baseline run —
	// scale geometry, seed, FlipTH, workload — so sharing is always sound.
	Baselines *BaselineCache
	// Store, when non-nil, is the content-addressed result store: every
	// cacheable row is looked up before it simulates (a hit is served
	// as-is, marked Row.Cached) and written back when a worker completes
	// it. Keys cover everything that determines a row (see storekey.go),
	// so a shared store never conflates scales, seeds, or schema
	// generations; rows stream in the same deterministic order either way.
	Store resultstore.Store
}

func (o *ExecOptions) progress() func(done, total int) {
	if o == nil {
		return nil
	}
	return o.Progress
}

func (o *ExecOptions) baselines() *BaselineCache {
	if o == nil || o.Baselines == nil {
		return NewBaselineCache()
	}
	return o.Baselines
}

func (o *ExecOptions) store() resultstore.Store {
	if o == nil {
		return nil
	}
	return o.Store
}

// BaselineCache is a single-flight cache of unprotected baseline runs,
// shareable across spec executions (and safe for concurrent ones). Keys
// include the scale geometry, so one cache can serve specs at different
// scales without ever conflating their baselines.
type BaselineCache struct {
	c sweep.Cache[baselineKey, sim.Result]
}

// NewBaselineCache returns an empty cache.
func NewBaselineCache() *BaselineCache { return &BaselineCache{} }

// Len reports the number of distinct baselines filled or in flight.
func (b *BaselineCache) Len() int { return b.c.Len() }

// get is the single-flight fill with cancellation-eviction: a baseline
// aborted by ctx cancellation is forgotten, not cached. A caller whose own
// ctx is still live retries the fill — single-flight can hand it another
// execution's cancelled result (it was blocked on that fill, or raced the
// eviction), and that cancellation is not a fact about the key. The loop
// terminates: each retry either joins a fill that completes, or runs the
// caller's own fill under the caller's live ctx.
func (b *BaselineCache) get(ctx context.Context, k baselineKey, fill func() (sim.Result, error)) (sim.Result, error) {
	for {
		res, err := b.c.Get(k, fill)
		if err == nil || (!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)) {
			return res, err
		}
		b.c.Forget(k)
		if ctx.Err() != nil {
			return res, err // our own execution is the cancelled one
		}
	}
}

// baselineKey identifies one unprotected run configuration, including the
// scale fields that shape it (core count, instruction budget, time
// compression), so shared caches never serve a baseline from a different
// system configuration.
type baselineKey struct {
	cores     int
	instr     int64
	timeScale int
	seed      uint64
	flipTH    int
	workload  string
}

func (sc Scale) baselineKey(seed uint64, flipTH int, workload string) baselineKey {
	return baselineKey{
		cores: sc.Cores, instr: sc.InstrPerCore, timeScale: sc.TimeScale,
		seed: seed, flipTH: flipTH, workload: workload,
	}
}

// ---------------------------------------------------------------- runner

// runner caches baselines so every scheme is normalized against an
// identical unprotected run. The cache is keyed by (seed, FlipTH,
// workload) on top of the scale geometry, not workload name alone: a
// workload's generators can vary with the seed and with FlipTH under an
// unchanged name (bh-adversarial aims at the deployed filter's collision
// set), so cross-threshold sharing would normalize against a stale run.
// Sharing FlipTH-independent baselines is forgone — a few extra
// unprotected runs per sweep buys the correctness guarantee. The cache is
// single-flight, so concurrent cells share one simulation.
type runner struct {
	sc        Scale
	baselines *BaselineCache
}

func newRunner(sc Scale, baselines *BaselineCache) *runner {
	return &runner{sc: sc, baselines: baselines}
}

// cfgFor derives the run configuration for a workload: attack workloads
// get an extended instruction budget and end when the benign cores finish.
func (r *runner) cfgFor(flipTH int, w trace.Workload) sim.Config {
	cfg := BaseSimConfig(flipTH, r.sc)
	cfg.Workload = w.Fresh()
	if w.Attackers > 0 {
		cfg.InstrPerCore = r.sc.InstrPerCore * attackInstrFactor
		cfg.RequireCores = len(cfg.Workload) - w.Attackers
	}
	return cfg
}

func (r *runner) baseline(ctx context.Context, seed uint64, flipTH int, w trace.Workload) (sim.Result, error) {
	return r.baselines.get(ctx, r.sc.baselineKey(seed, flipTH, w.Name), func() (sim.Result, error) {
		return sim.RunContext(ctx, r.cfgFor(flipTH, w))
	})
}

// BenignIPC sums per-core IPCs excluding trailing attacker cores (a
// non-positive count means none; a count beyond the core total sums
// nothing rather than walking off the slice).
func BenignIPC(res sim.Result, attackers int) float64 {
	n := len(res.IPCs) - attackers
	if n > len(res.IPCs) {
		n = len(res.IPCs)
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += res.IPCs[i]
	}
	return total
}

// measure runs scheme on workload and produces the normalized point;
// trailing attacker cores (w.Attackers) are excluded from IPC aggregation.
func (r *runner) measure(ctx context.Context, scheme mc.Scheme, seed uint64, flipTH int, w trace.Workload) (PerfPoint, error) {
	attackers := w.Attackers
	base, err := r.baseline(ctx, seed, flipTH, w)
	if err != nil {
		return PerfPoint{}, err
	}
	cfg := r.cfgFor(flipTH, w)
	cfg.Scheme = scheme
	res, err := sim.RunContext(ctx, cfg)
	if err != nil {
		return PerfPoint{}, err
	}
	pt := PerfPoint{
		Scheme:   scheme.Name(),
		FlipTH:   flipTH,
		Workload: w.Name,
		Seed:     seed,
		Safe:     res.Safety.Safe(),
	}
	if b := BenignIPC(base, attackers); b > 0 {
		pt.RelativePerformance = 100 * BenignIPC(res, attackers) / b
	}
	pt.EnergyOverheadPct = energy.OverheadPercent(res.Energy, base.Energy)
	return pt, nil
}

// normalWorkloads returns the benign workload set for a scale (two mixes at
// quick scale; the paper's five at full scale).
func normalWorkloads(sc Scale, seed uint64) []trace.Workload {
	if sc.Cores < 16 {
		return []trace.Workload{trace.MixHigh(sc.Cores, seed), trace.FFT(sc.Cores, seed)}
	}
	all := trace.NormalWorkloads(sc.Cores, seed)
	out := make([]trace.Workload, len(all))
	for i, w := range all {
		out[i] = w.Workload
	}
	return out
}

// multiSidedWorkload builds the Figure 10(b) workload: benign cores plus
// one multi-sided attacker (32 victims at full scale).
func multiSidedWorkload(sc Scale, seed uint64) trace.Workload {
	mapper := mc.NewAddressMapper(sc.Params())
	n := sc.attackCores()
	benign := trace.MixHigh(n, seed)
	victims := sc.multiSidedVictims()
	return trace.Workload{
		Name:      multiSidedRH,
		Attackers: 1,
		Fresh: func() []trace.Generator {
			gens := benign.Fresh()
			gens[len(gens)-1] = attack.NewMultiSided(mapper, 1, 7, 4000, victims)
			return gens
		},
	}
}

// attackWorkload builds one comparison attacks-axis workload: the benign
// mix-high cores with the last core replaced by the named registry
// pattern at its paper-default coordinates — the same arrangement as
// multi-sided-rh, for any registered attack. The workload is named after
// the built generator ("multi:8" measures as workload "multi-sided-8"),
// so baseline-cache keys and output rows are distinct per pattern. The
// pattern is built once up front to surface bad names/arguments before
// the sweep starts; Fresh rebuilds it per simulation because generators
// are stateful.
func attackWorkload(sc Scale, seed uint64, name string) (trace.Workload, error) {
	mapper := mc.NewAddressMapper(sc.Params())
	n := sc.attackCores()
	benign := trace.MixHigh(n, seed)
	gen, err := attack.Build(name, attack.Params{Mapper: mapper})
	if err != nil {
		return trace.Workload{}, err
	}
	return trace.Workload{
		Name:      gen.Name(),
		Attackers: 1,
		Fresh: func() []trace.Generator {
			gens := benign.Fresh()
			g, err := attack.Build(name, attack.Params{Mapper: mapper})
			if err != nil {
				// Build is deterministic and succeeded above.
				panic(fmt.Sprintf("expspec: attack %q failed on rebuild: %v", name, err))
			}
			gens[len(gens)-1] = g
			return gens
		},
	}, nil
}

// adversarialWorkload builds the Figure 10(c) workload: benign cores with
// one hot-row service core, plus a BlockHammer-collision adversary aimed at
// the service core's rows. Against non-throttling schemes the adversary's
// walk is harmless background traffic.
func adversarialWorkload(sc Scale, seed uint64, scheme mc.Scheme) trace.Workload {
	p := sc.Params()
	mapper := mc.NewAddressMapper(p)
	n := sc.attackCores()
	benign := trace.MixHigh(n, seed)
	victimCore := n - 2
	if victimCore < 0 {
		victimCore = 0
	}
	base := uint64(victimCore) << 28
	loc := mapper.Map(base)
	return trace.Workload{
		// The workload embeds the deployed scheme's collision oracle, so
		// baselines must not be shared across schemes.
		Name:      "bh-adversarial/" + scheme.Name(),
		Attackers: 1,
		Fresh: func() []trace.Generator {
			gens := benign.Fresh()
			// The service core strides an 8 MB object with a prime stride:
			// cache-hostile, so its rows keep re-activating — throttling
			// them (or escalating to the whole thread) hurts directly.
			gens[victimCore] = trace.NewStrided("service", base, 8<<20, 257, 6)
			// The adversary hammers rows that collide with the service
			// core's hot rows in the deployed scheme's filters.
			gens[len(gens)-1] = adversaryFor(mapper, loc, scheme)
			return gens
		},
	}
}

// adversaryFor builds a combined collision attack over the service core's
// first four hot rows in its first bank.
func adversaryFor(mapper *mc.AddressMapper, loc mc.Location, scheme mc.Scheme) trace.Generator {
	var rows []int
	if th, ok := scheme.(attack.Throttler); ok {
		for i := 0; i < 2; i++ {
			for _, r := range th.CollidingRows(loc.GlobalBank, uint32(loc.Row+i), 4) {
				rows = append(rows, int(r))
			}
		}
	}
	if len(rows) == 0 {
		for i := 0; i < 16; i++ {
			rows = append(rows, (loc.Row+64+8*i)%mapper.Params().Rows)
		}
	}
	return attack.NewRowList("bh-adversarial", mapper, loc.Channel, loc.Bank, rows)
}

// schemeTableKB reports the per-bank counter table area for the scheme at
// a FlipTH level (Figure 10(e)/Table IV models).
func schemeTableKB(name string, flipTH int) float64 {
	p := timing.DDR5()
	switch name {
	case "graphene":
		return analysis.GrapheneTableKB(p, flipTH)
	case "twice":
		return analysis.TWiCeTableKB(p, flipTH)
	case "cbt":
		return analysis.CBTTableKB(p, flipTH)
	case "blockhammer":
		return analysis.BlockHammerTableKB(flipTH)
	case "mithril", "mithril+":
		kb, ok := analysis.MithrilTableKB(p, flipTH, mitigation.PaperRFMTH(flipTH), 0)
		if !ok {
			return 0
		}
		return kb
	default:
		return 0
	}
}

// ---------------------------------------------------------------- executors

// Run resolves the spec's own scale and executes the grid.
//
// Deprecated: use Engine.RunSpec (or RunAtContext), which threads a
// context for cancellation. The ctx-less signature is pinned by
// internal/apicompat.
func (s *Spec) Run() (*Result, error) {
	sc, err := s.Scale.Resolve()
	if err != nil {
		return nil, err
	}
	return s.RunAt(sc)
}

// RunAt validates the spec and executes its grid at an explicit scale
// (the library's figure wrappers pass their caller's Scale; the CLI passes
// the spec's resolved scale with the -jobs override applied). Rows come
// back in the deterministic Expand order regardless of worker count.
//
// Deprecated: use Engine.RunSpecAt (or RunAtContext), which threads a
// context for cancellation. The ctx-less signature is pinned by
// internal/apicompat.
func (s *Spec) RunAt(sc Scale) (*Result, error) {
	//mithril:allow ctxflow deprecated ctx-less shim pinned by apicompat; RunAtContext is the ctx path
	return s.RunAtContext(context.Background(), sc, nil)
}

// RunAtContext is RunAt with cooperative cancellation and execution
// options: the sweep stops claiming cells when ctx is cancelled and
// in-flight simulations abort mid-run, opts.Progress observes per-row
// completion, and opts.Baselines shares unprotected runs across
// executions. A nil opts behaves like RunAt.
func (s *Spec) RunAtContext(ctx context.Context, sc Scale, opts *ExecOptions) (*Result, error) {
	rr, err := s.newRowRunner(sc, opts, nil)
	if err != nil {
		return nil, err
	}
	rows, err := sweep.RunContext(ctx, sc.Jobs, len(rr.rows), rr.run)
	if err != nil {
		return nil, err
	}
	return s.NewResult(sc, rows)
}

// NewResult assembles completed rows into a Result. Rows must arrive in
// the order the Result should emit them — grid order for a full run (a
// distributed merge sorts by Row.Index before calling this) — and each
// must carry the point matching the spec's kind; a row without one means
// the caller mixed rows from a different spec or dropped a shard, which
// is an error here rather than a panic at emission time.
func (s *Spec) NewResult(sc Scale, rows []Row) (*Result, error) {
	res := &Result{Spec: s, Scale: sc}
	for _, row := range rows {
		if row.Cached {
			res.RowsCached++
		} else {
			res.RowsSimulated++
		}
	}
	missing := func(i int) error {
		return fmt.Errorf("spec %q: row %d (grid index %d) has no %s point", s.Name, i, rows[i].Index, s.Kind)
	}
	switch s.Kind {
	case Comparison:
		res.Perf = make([]PerfPoint, len(rows))
		for i, row := range rows {
			if row.Perf == nil {
				return nil, missing(i)
			}
			res.Perf[i] = *row.Perf
		}
	case SafetyKind:
		res.Safety = make([]SafetyResult, len(rows))
		for i, row := range rows {
			if row.Safety == nil {
				return nil, missing(i)
			}
			res.Safety[i] = *row.Safety
		}
	case ConfigGrid:
		res.Grid = make([]Figure9Point, len(rows))
		for i, row := range rows {
			if row.Grid == nil {
				return nil, missing(i)
			}
			res.Grid[i] = *row.Grid
		}
	case AdTHSweep:
		res.AdTH = make([]Figure7Point, len(rows))
		for i, row := range rows {
			if row.AdTH == nil {
				return nil, missing(i)
			}
			res.AdTH[i] = *row.AdTH
		}
	}
	return res, nil
}

// StreamAt validates the spec and executes its grid, yielding each output
// row as workers finish it — completion order, not grid order (Row.Index
// recovers grid order). The sequence terminates with a single non-nil
// error when a cell fails or ctx is cancelled; breaking out of the range
// cancels the remaining grid. All workers have exited when the range ends.
func (s *Spec) StreamAt(ctx context.Context, sc Scale, opts *ExecOptions) iter.Seq2[Row, error] {
	seq, err := s.StreamRowsAt(ctx, sc, nil, opts)
	if err != nil {
		return func(yield func(Row, error) bool) { yield(Row{}, err) }
	}
	return seq
}

// StreamRowsAt executes an explicit row-index subset of the expanded grid
// — the shard a distributed worker is handed — yielding rows in
// completion order with Row.Index holding the grid index. A nil subset
// runs the full grid (StreamAt is exactly that). Unlike StreamAt, every
// construction failure — invalid spec, out-of-range or duplicated subset
// index, a workload that will not build — is returned before the first
// yield, so a caller speaking a streaming wire protocol can reject the
// request cleanly instead of discovering the error after committing to a
// 200 and an NDJSON header.
func (s *Spec) StreamRowsAt(ctx context.Context, sc Scale, rows []int, opts *ExecOptions) (iter.Seq2[Row, error], error) {
	rr, err := s.newRowRunner(sc, opts, rows)
	if err != nil {
		return nil, err
	}
	seq := func(yield func(Row, error) bool) {
		for iv, err := range sweep.StreamContext(ctx, sc.Jobs, len(rr.rows), rr.run) {
			if !yield(iv.V, err) || err != nil {
				return
			}
		}
	}
	return seq, nil
}

// seeds resolves the seed axis (empty: the scale's single seed).
func (s *Spec) seeds(sc Scale) []uint64 {
	if len(s.Axes.Seeds) > 0 {
		return s.Axes.Seeds
	}
	return []uint64{sc.Seed}
}

// seedSet is the per-seed workload state a comparison spec prepares once
// and reuses across its grid rows. Named workloads (registry and
// trace-file) and attacks-axis workloads are prebuilt here so build
// errors — an unknown name, a malformed trace file — surface before the
// sweep starts; trace-file workloads are additionally shared across
// seeds (a replay ignores the seed), so each file is parsed exactly once
// per execution.
type seedSet struct {
	normals []trace.Workload
	rhW     trace.Workload
	named   map[string]trace.Workload // workloads axis, by spec name
	attacks map[string]trace.Workload // attacks axis, by registry name
}

// needSet records which seeds, (seed, workload) pairs, and (seed, attack)
// pairs a row subset touches, so newRowRunner prebuilds only the state
// those rows consume. Adversarial cells contribute nothing beyond their
// seed — their workload is built inline per row.
type needSet struct {
	seeds     map[uint64]bool
	workloads map[seedName]bool // workload cells (comparison, configgrid)
	attacks   map[seedName]bool // attack cells (comparison attacks axis, safety)
	attackAny map[string]bool   // attacks named by any subset cell, any seed
}

type seedName struct {
	seed uint64
	name string
}

func newNeedSet(cells []Cell, rows []int) *needSet {
	n := &needSet{
		seeds:     map[uint64]bool{},
		workloads: map[seedName]bool{},
		attacks:   map[seedName]bool{},
		attackAny: map[string]bool{},
	}
	for _, i := range rows {
		c := cells[i]
		n.seeds[c.Seed] = true
		switch {
		case c.Adversarial:
		case c.Attack != "":
			n.attacks[seedName{c.Seed, c.Attack}] = true
			n.attackAny[c.Attack] = true
		case c.Workload != "":
			n.workloads[seedName{c.Seed, c.Workload}] = true
		}
	}
	return n
}

func (n *needSet) seed(seed uint64) bool                  { return n.seeds[seed] }
func (n *needSet) workload(seed uint64, name string) bool { return n.workloads[seedName{seed, name}] }
func (n *needSet) attack(seed uint64, name string) bool   { return n.attacks[seedName{seed, name}] }
func (n *needSet) anyAttack(name string) bool             { return n.attackAny[name] }

// rowRunner executes one spec at one scale, one output row at a time: the
// shared unit behind RunAtContext (batch, grid order), StreamAt
// (completion order), and StreamRowsAt (an explicit row-index subset —
// the shard a distributed worker executes). Precomputed per-seed state
// keeps row jobs pure.
type rowRunner struct {
	spec  *Spec
	sc    Scale
	r     *runner
	cells []Cell
	// rows maps job index to grid index: the row-index subset a shard
	// executes, or the identity over every cell for a full run. Per-kind
	// state (workloads, attacks, baselines) is prebuilt only for the cells
	// these rows name, so a shard never touches inputs it will not
	// simulate — in particular, a worker handed a shard of a spec that
	// also names trace-file workloads never opens those files unless the
	// shard includes their rows.
	rows []int

	sets      map[uint64]*seedSet       // comparison
	workloads map[uint64]trace.Workload // configgrid
	mapper    *mc.AddressMapper         // safety

	// Result-store binding: keys/cacheable are indexed like cells and
	// precomputed before the sweep starts, so bad attack spellings fail
	// loudly up front and row jobs stay pure lookups.
	store     resultstore.Store
	stamp     string
	keys      []resultstore.Key
	cacheable []bool

	done     int
	total    int
	mu       sync.Mutex
	onRow    func(done, total int)
	baseline func(ctx context.Context, seed uint64, name string, w trace.Workload) (sim.Result, error) // adth
}

// newRowRunner validates the spec and binds the per-kind state for the
// named grid rows (nil: every expanded cell). Subset indices must be
// in-range and free of duplicates — a duplicated row would double-count
// in every consumer and a wild index has no cell to realize.
func (s *Spec) newRowRunner(sc Scale, opts *ExecOptions, rows []int) (*rowRunner, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rr := &rowRunner{
		spec:  s,
		sc:    sc,
		r:     newRunner(sc, opts.baselines()),
		cells: s.Expand(sc),
		onRow: opts.progress(),
	}
	if rows == nil {
		rr.rows = make([]int, len(rr.cells))
		for i := range rr.rows {
			rr.rows[i] = i
		}
	} else {
		seen := make(map[int]bool, len(rows))
		for _, i := range rows {
			if i < 0 || i >= len(rr.cells) {
				return nil, fmt.Errorf("spec %q: row %d out of range (grid has %d rows)", s.Name, i, len(rr.cells))
			}
			if seen[i] {
				return nil, fmt.Errorf("spec %q: duplicate row %d in subset", s.Name, i)
			}
			seen[i] = true
		}
		rr.rows = append([]int(nil), rows...)
	}
	rr.total = len(rr.rows)
	if st := opts.store(); st != nil {
		rr.store = st
		rr.stamp = StoreStamp()
		rr.keys = make([]resultstore.Key, len(rr.cells))
		rr.cacheable = make([]bool, len(rr.cells))
		for _, i := range rr.rows {
			key, ok, err := s.cellKey(sc, rr.cells[i], rr.stamp)
			if err != nil {
				return nil, err
			}
			rr.keys[i], rr.cacheable[i] = key, ok
		}
	}
	// The per-kind state below is prebuilt only for the subset's cells:
	// needs records which (seed, workload/attack) pairs the subset touches.
	needs := newNeedSet(rr.cells, rr.rows)
	// buildNamed resolves one workloads-axis name. Trace replays are
	// seed-independent, so one build (one file parse) serves every seed.
	traceShared := map[string]trace.Workload{}
	buildNamed := func(name string, seed uint64) (trace.Workload, error) {
		if !strings.HasPrefix(name, trace.TracePrefix) {
			return trace.BuildWorkload(name, sc.Cores, seed)
		}
		w, ok := traceShared[name]
		if !ok {
			var err error
			if w, err = trace.BuildWorkload(name, sc.Cores, seed); err != nil {
				return trace.Workload{}, err
			}
			traceShared[name] = w
		}
		return w, nil
	}
	switch s.Kind {
	case Comparison:
		rr.sets = map[uint64]*seedSet{}
		for _, seed := range s.seeds(sc) {
			set := &seedSet{
				named:   map[string]trace.Workload{},
				attacks: map[string]trace.Workload{},
			}
			rr.sets[seed] = set
			for _, name := range s.Axes.Workloads {
				if !needs.workload(seed, name) {
					continue
				}
				switch name {
				case normalSet:
					set.normals = normalWorkloads(sc, seed)
				case multiSidedRH:
					set.rhW = multiSidedWorkload(sc, seed)
				default:
					w, err := buildNamed(name, seed)
					if err != nil {
						return nil, err
					}
					set.named[name] = w
				}
			}
			for _, name := range s.Axes.Attacks {
				if !needs.attack(seed, name) {
					continue
				}
				w, err := attackWorkload(sc, seed, name)
				if err != nil {
					return nil, err
				}
				set.attacks[name] = w
			}
		}
	case SafetyKind:
		rr.mapper = mc.NewAddressMapper(sc.Params())
		// Trial-build every subset pattern (sans oracle) so bad
		// coordinates — an out-of-bank multi:<n>, say — fail here, before
		// the sweep, exactly as comparison specs fail in attackWorkload.
		for _, a := range s.Axes.Attacks {
			if !needs.anyAttack(a) {
				continue
			}
			if _, err := attack.Build(a, attack.Params{Mapper: rr.mapper}); err != nil {
				return nil, err
			}
		}
	case ConfigGrid:
		rr.workloads = map[uint64]trace.Workload{}
		for _, seed := range s.seeds(sc) {
			if !needs.seed(seed) {
				continue
			}
			w, err := buildNamed(s.Axes.Workloads[0], seed)
			if err != nil {
				return nil, err
			}
			rr.workloads[seed] = w
		}
	case AdTHSweep:
		// One baseline per (seed, workload): the unprotected run is
		// scheme-independent and single-flight, so concurrent rows share
		// it. The baseline's FlipTH slot (it only parameterizes the fault
		// checker, not the machine) uses the first config's threshold.
		baseFlipTH := s.Axes.Configs[0].FlipTH
		rr.baseline = func(ctx context.Context, seed uint64, name string, w trace.Workload) (sim.Result, error) {
			return rr.r.baselines.get(ctx, sc.baselineKey(seed, baseFlipTH, name), func() (sim.Result, error) {
				cfg := BaseSimConfig(baseFlipTH, sc)
				cfg.Workload = w.Fresh()
				return sim.RunContext(ctx, cfg)
			})
		}
	}
	return rr, nil
}

// run computes the j-th subset row (grid row rr.rows[j]; the emitted
// Row.Index is always the grid index). It is safe for concurrent
// invocation across distinct j; per-row scheme instances are built fresh,
// exactly as the pre-streaming executor built one per simulation cell.
func (rr *rowRunner) run(ctx context.Context, j int) (Row, error) {
	i := rr.rows[j]
	row := Row{Index: i, Cell: rr.cells[i]}
	if rr.cachedRow(i, &row) {
		rr.reportProgress()
		return row, nil
	}
	var err error
	switch rr.spec.Kind {
	case Comparison:
		row.Perf, err = rr.comparisonRow(ctx, rr.cells[i])
	case SafetyKind:
		row.Safety, err = rr.safetyRow(ctx, rr.cells[i])
	case ConfigGrid:
		row.Grid, err = rr.configGridRow(ctx, rr.cells[i])
	case AdTHSweep:
		row.AdTH, err = rr.adthRow(ctx, rr.cells[i])
	}
	if err != nil {
		return Row{}, err
	}
	if err := rr.storeRow(i, row); err != nil {
		return Row{}, err
	}
	rr.reportProgress()
	return row, nil
}

// cachedRow serves row i from the result store when possible. Any defect
// in a stored record — wrong stamp, undecodable payload, a point of the
// wrong kind — is a miss (the row re-simulates and overwrites it), never
// an error: the store is an accelerator, not a dependency.
func (rr *rowRunner) cachedRow(i int, row *Row) bool {
	if rr.store == nil || !rr.cacheable[i] {
		return false
	}
	rec, ok := rr.store.Get(rr.keys[i])
	if !ok || rec.Stamp != rr.stamp {
		return false
	}
	if !decodeRow(rr.spec.Kind, rec.Payload, row) {
		return false
	}
	row.Cached = true
	return true
}

// storeRow writes a freshly simulated row back to the result store. A
// write failure is loud — a -store directory that stops accepting writes
// mid-sweep means rows the operator asked to persist are being lost, and
// silently degrading to compute-only would hide that until the re-run.
func (rr *rowRunner) storeRow(i int, row Row) error {
	if rr.store == nil || !rr.cacheable[i] {
		return nil
	}
	payload, err := encodeRow(row)
	if err != nil {
		return err
	}
	return rr.store.Put(resultstore.Record{Key: rr.keys[i], Stamp: rr.stamp, Payload: payload})
}

// reportProgress serializes the Progress hook so callers need no locking.
// Invoking the hook inside the critical section is the documented
// contract — Progress hooks must be fast and must not block (see
// ExecOptions.Progress) — which is exactly what lockheld cannot prove
// about a caller-supplied function value, hence the explained allow.
func (rr *rowRunner) reportProgress() {
	if rr.onRow == nil {
		return
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	rr.done++
	//mithril:allow lockheld serialized Progress hook; contract: hooks must not block
	rr.onRow(rr.done, rr.total)
}

// buildScheme constructs a fresh scheme instance for one simulation. Every
// simulation gets its own instance — tracker state must never leak between
// grid cells (or between the member workloads of a "normal" row).
func (rr *rowRunner) buildScheme(name string, flipTH int, seed uint64) (mc.Scheme, error) {
	return mitigation.Build(name, mitigation.Options{Timing: rr.sc.Params(), FlipTH: flipTH, Seed: seed})
}

// comparisonRow measures one output row of a comparison sweep: a single
// workload cell, or the whole "normal" benign set geomean-reduced to one
// point, or the per-scheme BlockHammer-collision adversarial cell.
//
// The "normal" row runs its member workloads serially inside the one row
// job — a deliberate trade: the output row is the streaming unit (a
// partially-measured geomean is meaningless to a consumer), at the cost
// of intra-row parallelism the old cell-granular executor had. Sweeps
// keep their cross-row fan-out, which dominates at real grid sizes.
func (rr *rowRunner) comparisonRow(ctx context.Context, c Cell) (*PerfPoint, error) {
	if c.Adversarial {
		scheme, err := rr.buildScheme(c.Scheme, c.FlipTH, c.Seed)
		if err != nil {
			return nil, err
		}
		pt, err := rr.r.measure(ctx, scheme, c.Seed, c.FlipTH, adversarialWorkload(rr.sc, c.Seed, scheme))
		if err != nil {
			return nil, err
		}
		pt.TableKB = schemeTableKB(c.Scheme, c.FlipTH)
		return &pt, nil
	}
	set := rr.sets[c.Seed]
	if c.Attack != "" {
		scheme, err := rr.buildScheme(c.Scheme, c.FlipTH, c.Seed)
		if err != nil {
			return nil, err
		}
		pt, err := rr.r.measure(ctx, scheme, c.Seed, c.FlipTH, set.attacks[c.Attack])
		if err != nil {
			return nil, err
		}
		pt.TableKB = schemeTableKB(c.Scheme, c.FlipTH)
		return &pt, nil
	}
	if c.Workload == normalSet {
		var perfs []float64
		var energySum float64
		safe := true
		for _, w := range set.normals {
			scheme, err := rr.buildScheme(c.Scheme, c.FlipTH, c.Seed)
			if err != nil {
				return nil, err
			}
			pt, err := rr.r.measure(ctx, scheme, c.Seed, c.FlipTH, w)
			if err != nil {
				return nil, err
			}
			perfs = append(perfs, pt.RelativePerformance)
			energySum += pt.EnergyOverheadPct
			safe = safe && pt.Safe
		}
		return &PerfPoint{
			Scheme: c.Scheme, FlipTH: c.FlipTH, Workload: normalSet, Seed: c.Seed,
			RelativePerformance: stats.Geomean(perfs),
			EnergyOverheadPct:   energySum / float64(len(set.normals)),
			TableKB:             schemeTableKB(c.Scheme, c.FlipTH),
			Safe:                safe,
		}, nil
	}
	w := set.rhW
	if c.Workload != multiSidedRH {
		w = set.named[c.Workload]
	}
	scheme, err := rr.buildScheme(c.Scheme, c.FlipTH, c.Seed)
	if err != nil {
		return nil, err
	}
	pt, err := rr.r.measure(ctx, scheme, c.Seed, c.FlipTH, w)
	if err != nil {
		return nil, err
	}
	pt.TableKB = schemeTableKB(c.Scheme, c.FlipTH)
	return &pt, nil
}

// safetyRow attacks one scheme with one registered attack pattern in the
// full simulator and reports the fault-model verdict. The deployed
// scheme's collision oracle (when it exposes one) is handed to the
// pattern build, so oracle-driven patterns like blockhammer-adversarial
// aim at the actual filters under test. The reported Attack is the built
// generator's display name ("multi:32" reports as "multi-sided-32"),
// which keeps the pre-registry golden lines byte-identical.
func (rr *rowRunner) safetyRow(ctx context.Context, c Cell) (*SafetyResult, error) {
	scheme, err := rr.buildScheme(c.Scheme, c.FlipTH, c.Seed)
	if err != nil {
		return nil, err
	}
	oracle, _ := scheme.(attack.Throttler)
	gen, err := attack.Build(c.Attack, attack.Params{Mapper: rr.mapper, Oracle: oracle})
	if err != nil {
		return nil, err
	}
	cfg := BaseSimConfig(c.FlipTH, rr.sc)
	cfg.Scheme = scheme
	cfg.Workload = []trace.Generator{safetyBackground(), gen}
	cfg.InstrPerCore = rr.sc.InstrPerCore * attackInstrFactor
	cfg.RequireCores = 1 // benign core only
	res, err := sim.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &SafetyResult{
		Scheme: c.Scheme, Attack: gen.Name(), FlipTH: c.FlipTH, Seed: c.Seed,
		Flips: res.Safety.Flips, MaxDisturbance: res.Safety.MaxDisturbance,
		Safe: res.Safety.Safe(),
	}, nil
}

// configGridRow measures the paired Mithril/Mithril+ point of one feasible
// (FlipTH, RFMTH) grid cell.
func (rr *rowRunner) configGridRow(ctx context.Context, c Cell) (*Figure9Point, error) {
	w := rr.workloads[c.Seed]
	opt := mitigation.Options{Timing: rr.sc.Params(), FlipTH: c.FlipTH, RFMTH: c.RFMTH, Seed: c.Seed}
	m, err := rr.r.measure(ctx, mitigation.NewMithril(opt), c.Seed, c.FlipTH, w)
	if err != nil {
		return nil, err
	}
	plus, err := rr.r.measure(ctx, mitigation.NewMithrilPlus(opt), c.Seed, c.FlipTH, w)
	if err != nil {
		return nil, err
	}
	kb, _ := analysis.MithrilTableKB(timing.DDR5(), c.FlipTH, c.RFMTH, 0)
	return &Figure9Point{
		FlipTH: c.FlipTH, RFMTH: c.RFMTH, Seed: c.Seed,
		Mithril: m.RelativePerformance, MithrilPlus: plus.RelativePerformance,
		TableKB:       kb,
		EnergyMithril: m.EnergyOverheadPct, EnergyPlus: plus.EnergyOverheadPct,
	}, nil
}

// adOrDisabled maps AdTH 0 to the mitigation package's "disabled" encoding.
func adOrDisabled(ad int) int {
	if ad == 0 {
		return -1
	}
	return ad
}

// adthRow sweeps the workload classes for one (seed, config, AdTH) point,
// reporting energy overheads plus the Theorem 2 table growth.
func (rr *rowRunner) adthRow(ctx context.Context, c Cell) (*Figure7Point, error) {
	p := rr.sc.Params()
	pt := &Figure7Point{FlipTH: c.FlipTH, RFMTH: c.RFMTH, AdTH: c.AdTH, Seed: c.Seed,
		EnergyOverheadPct: map[string]float64{}}
	if pct, ok := analysis.AdditionalNEntryPercent(p, c.FlipTH, c.RFMTH, c.AdTH); ok {
		pt.AdditionalNEntryPct = pct
	}
	for _, wName := range rr.spec.Axes.Workloads {
		w := adthWorkloads[wName].build(rr.sc.Cores, c.Seed)
		base, err := rr.baseline(ctx, c.Seed, wName, w)
		if err != nil {
			return nil, err
		}
		scheme := mitigation.NewMithril(mitigation.Options{
			Timing: p, FlipTH: c.FlipTH, RFMTH: c.RFMTH, AdTH: adOrDisabled(c.AdTH), Seed: c.Seed,
		})
		cfg := BaseSimConfig(c.FlipTH, rr.sc)
		cfg.Scheme = scheme
		cfg.Workload = w.Fresh()
		res, err := sim.RunContext(ctx, cfg)
		if err != nil {
			return nil, err
		}
		pt.EnergyOverheadPct[wName] = energy.OverheadPercent(res.Energy, base.Energy)
	}
	return pt, nil
}
