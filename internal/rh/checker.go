// Package rh models the RowHammer fault mechanism itself: per-row
// disturbance accumulation with a configurable blast radius, bit-flip
// detection against FlipTH, and safety reports. The simulator wires a
// Checker into every DRAM bank; mitigation schemes are judged by whether any
// victim row ever accumulates FlipTH of disturbance between refreshes
// (Section II-B of the paper).
package rh

import (
	"fmt"

	"mithril/internal/timing"
)

// Flip records one detected bit flip: a victim row whose accumulated
// disturbance reached FlipTH before it was refreshed.
type Flip struct {
	Row         int
	Time        timing.PicoSeconds
	Disturbance float64
}

// String renders the flip for reports.
func (f Flip) String() string {
	return fmt.Sprintf("bit flip: row %d at %v (disturbance %.0f)", f.Row, f.Time, f.Disturbance)
}

// Checker accumulates RowHammer disturbance for one DRAM bank.
type Checker struct {
	rows    int
	flipTH  float64
	weights []float64 // weights[d-1] = disturbance added at distance d per ACT

	disturb   []float64
	flipped   []bool // latched per refresh epoch to avoid duplicate reports
	flips     []Flip
	maxSeen   float64
	maxRow    int
	acts      uint64
	refreshes uint64
}

// DoubleSidedWeights is the classic adjacent-only model: each ACT disturbs
// the two distance-1 neighbours with weight 1 (aggregated effect 2).
func DoubleSidedWeights() []float64 { return []float64{1} }

// NonAdjacentWeights models the range-3 effect of Section V-C: per-side
// weights 1, 0.5, 0.25 aggregate to 3.5 as reported by BlockHammer.
func NonAdjacentWeights() []float64 { return []float64{1, 0.5, 0.25} }

// AggregatedEffect sums the disturbance a victim suffers when every row
// within the blast radius is an aggressor (both sides).
func AggregatedEffect(weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += 2 * w
	}
	return total
}

// NewChecker builds a checker for a bank with rows rows, flip threshold
// flipTH, and the given per-distance weights (nil means double-sided).
func NewChecker(rows, flipTH int, weights []float64) *Checker {
	if rows <= 0 {
		panic(fmt.Sprintf("rh: rows must be positive, got %d", rows))
	}
	if flipTH <= 0 {
		panic(fmt.Sprintf("rh: FlipTH must be positive, got %d", flipTH))
	}
	if len(weights) == 0 {
		weights = DoubleSidedWeights()
	}
	return &Checker{
		rows:    rows,
		flipTH:  float64(flipTH),
		weights: weights,
		disturb: make([]float64, rows),
		flipped: make([]bool, rows),
	}
}

// OnActivate records one ACT on row at the given time, disturbing every
// neighbour within the blast radius.
//
//mithril:hotpath
func (c *Checker) OnActivate(row int, now timing.PicoSeconds) {
	if row < 0 || row >= c.rows {
		panic(fmt.Sprintf("rh: activate of row %d outside bank of %d rows", row, c.rows))
	}
	c.acts++
	for d := 1; d <= len(c.weights); d++ {
		w := c.weights[d-1]
		for _, v := range [2]int{row - d, row + d} {
			if v < 0 || v >= c.rows {
				continue
			}
			c.disturb[v] += w
			if c.disturb[v] > c.maxSeen {
				c.maxSeen = c.disturb[v]
				c.maxRow = v
			}
			if c.disturb[v] >= c.flipTH && !c.flipped[v] {
				c.flipped[v] = true
				c.flips = append(c.flips, Flip{Row: v, Time: now, Disturbance: c.disturb[v]})
			}
		}
	}
}

// OnRefresh records a refresh (auto or preventive) of row, resetting its
// accumulated disturbance.
//
//mithril:hotpath
func (c *Checker) OnRefresh(row int) {
	if row < 0 || row >= c.rows {
		return // refresh sweeps may address padding rows; ignore
	}
	c.refreshes++
	c.disturb[row] = 0
	c.flipped[row] = false
}

// Disturbance reports the current accumulated disturbance of row.
func (c *Checker) Disturbance(row int) float64 {
	if row < 0 || row >= c.rows {
		return 0
	}
	return c.disturb[row]
}

// Flips returns all detected bit flips in detection order.
func (c *Checker) Flips() []Flip { return c.flips }

// MaxDisturbance reports the high-water mark of disturbance ever observed
// and the row where it occurred — the safety margin is
// FlipTH − MaxDisturbance even when no flip fired.
func (c *Checker) MaxDisturbance() (float64, int) { return c.maxSeen, c.maxRow }

// Counts reports the total ACTs and refreshes observed.
func (c *Checker) Counts() (acts, refreshes uint64) { return c.acts, c.refreshes }

// Report summarizes the verdict for one bank.
type Report struct {
	FlipTH         int
	Flips          int
	MaxDisturbance float64
	MarginPercent  float64 // (FlipTH − max) / FlipTH × 100
	ACTs           uint64
	Refreshes      uint64
}

// Report produces the bank's safety summary.
func (c *Checker) Report() Report {
	return Report{
		FlipTH:         int(c.flipTH),
		Flips:          len(c.flips),
		MaxDisturbance: c.maxSeen,
		MarginPercent:  100 * (c.flipTH - c.maxSeen) / c.flipTH,
		ACTs:           c.acts,
		Refreshes:      c.refreshes,
	}
}

// Safe reports whether no bit flip was detected.
func (r Report) Safe() bool { return r.Flips == 0 }

// String renders the report.
func (r Report) String() string {
	verdict := "SAFE"
	if !r.Safe() {
		verdict = fmt.Sprintf("UNSAFE (%d flips)", r.Flips)
	}
	return fmt.Sprintf("%s: max disturbance %.0f / FlipTH %d (margin %.1f%%), %d ACTs, %d refreshes",
		verdict, r.MaxDisturbance, r.FlipTH, r.MarginPercent, r.ACTs, r.Refreshes)
}
