// Package distrib fans one spec execution out across mithrilsim serve
// worker peers over HTTP: the coordinator partitions the expanded grid
// into shards (explicit row-index subsets), streams each shard's rows
// back over the /v1/run NDJSON wire format, merges the streams in
// completion order, and re-dispatches the unserved remainder of a failed
// or disconnected shard against surviving workers with bounded backoff.
// A shared content-addressed result store (internal/resultstore) is the
// dedup layer: rows the store already holds are served without dispatch,
// rows workers complete are written back, and re-dispatched rows probe
// the store again first — so a row is simulated at most once even when
// the worker that computed it died before delivering it.
//
// Rows that cannot leave the coordinator — trace-replay workloads, whose
// files live on the coordinator's filesystem and are deliberately
// rejected by workers — execute locally through the same subset executor
// (expspec.StreamRowsAt) and merge into the identical stream, so a spec
// mixing trace and synthetic rows still fans out everything it can.
//
// The merge is byte-exact: shard rows travel as store payload encodings
// (float64 round-trips exactly), collection is completion-order, and
// assembly sorts by Row.Index into Spec.Expand order, so a distributed
// run's output is byte-identical to a local one — the same invariant the
// parallel sweep engine keeps over goroutines, kept over machines.
package distrib

import (
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Defaults for Options zero values.
const (
	// DefaultMaxFailures is the per-worker failure budget: after this many
	// consecutive shard failures a worker is dropped from the pool.
	DefaultMaxFailures = 3
	// DefaultBackoff is the delay before a failed worker is redispatched;
	// it doubles per consecutive failure.
	DefaultBackoff = 100 * time.Millisecond
)

// Options tunes a Coordinator. The zero value is ready for production
// use against healthy workers.
type Options struct {
	// Client issues shard requests; nil means http.DefaultClient. Shard
	// streams are long-lived, so the client must not set a short Timeout
	// (per-request deadlines come from the caller's context).
	Client *http.Client
	// MaxFailures is the per-worker consecutive-failure budget (<=0:
	// DefaultMaxFailures). A successful shard resets a worker's count.
	MaxFailures int
	// Backoff is the base redispatch delay after a worker failure (<=0:
	// DefaultBackoff). The n-th consecutive failure waits Backoff<<(n-1).
	Backoff time.Duration
}

// Coordinator partitions spec executions across a fixed set of worker
// base URLs. It is stateless between executions and safe for concurrent
// use; per-execution state lives in the stream.
type Coordinator struct {
	workers     []string
	client      *http.Client
	maxFailures int
	backoff     time.Duration
}

// New builds a coordinator over worker base URLs ("http://host:port",
// trailing slashes tolerated). At least one worker is required — a
// coordinator with no workers could execute nothing but trace rows,
// which is just local execution misspelled.
func New(workers []string, opts Options) (*Coordinator, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("distrib: no workers (need at least one base URL)")
	}
	normalized := make([]string, len(workers))
	for i, w := range workers {
		w = strings.TrimRight(strings.TrimSpace(w), "/")
		if w == "" {
			return nil, fmt.Errorf("distrib: empty worker URL at position %d", i)
		}
		if !strings.Contains(w, "://") {
			w = "http://" + w
		}
		normalized[i] = w
	}
	c := &Coordinator{
		workers:     normalized,
		client:      opts.Client,
		maxFailures: opts.MaxFailures,
		backoff:     opts.Backoff,
	}
	if c.client == nil {
		c.client = http.DefaultClient
	}
	if c.maxFailures <= 0 {
		c.maxFailures = DefaultMaxFailures
	}
	if c.backoff <= 0 {
		c.backoff = DefaultBackoff
	}
	return c, nil
}

// Workers returns the normalized worker base URLs (a copy).
func (c *Coordinator) Workers() []string {
	return append([]string(nil), c.workers...)
}
