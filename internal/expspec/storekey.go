package expspec

// Content-addressed row keys: every grid cell hashes to a
// resultstore.Key covering everything that determines its output row —
// the canonicalized cell values, the resolved timing parameters, the
// scale geometry, the experiment kind, and the schema/registry version
// stamp. Two cells with equal keys are guaranteed to produce
// byte-identical rows, so executors may serve either's stored result for
// the other; anything that could change a row's numbers must change its
// key. Axis order, spec name/title, column selection, and worker count
// are deliberately absent: none of them affect a row's values.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mithril/internal/attack"
	"mithril/internal/mitigation"
	"mithril/internal/resultstore"
	"mithril/internal/trace"
)

// StoreStamp is the version stamp rows are keyed and stored under:
// the resultstore schema version plus the mitigation-registry
// fingerprint. A scheme registration (in-tree or out-of-tree) or a
// schema bump changes it, so stale stored rows stop matching instead of
// being served.
func StoreStamp() string {
	return resultstore.Stamp(mitigation.Names())
}

// cellKey derives one cell's content address. cacheable is false for
// rows the store must not serve — trace-replay workloads, whose row
// values depend on file contents the key cannot see.
func (s *Spec) cellKey(sc Scale, c Cell, stamp string) (key resultstore.Key, cacheable bool, err error) {
	if strings.HasPrefix(c.Workload, trace.TracePrefix) {
		return resultstore.Key{}, false, nil
	}
	comp := map[string]string{
		"stamp": stamp,
		// The resolved parameter set, not just TimeScale: a change to the
		// DDR5 constants must invalidate rows even at an unchanged scale.
		"timing":      fmt.Sprintf("%+v", sc.Params()),
		"cores":       strconv.Itoa(sc.Cores),
		"instr":       strconv.FormatInt(sc.InstrPerCore, 10),
		"timescale":   strconv.Itoa(sc.TimeScale),
		"kind":        string(s.Kind),
		"seed":        strconv.FormatUint(c.Seed, 10),
		"flipth":      strconv.Itoa(c.FlipTH),
		"rfmth":       strconv.Itoa(c.RFMTH),
		"adth":        strconv.Itoa(c.AdTH),
		"scheme":      c.Scheme,
		"workload":    c.Workload,
		"adversarial": strconv.FormatBool(c.Adversarial),
	}
	if c.Attack != "" {
		// The canonical spelling, so "multi:08" and "multi:8" share a key
		// (they build the same generator).
		canon, err := attack.Canonical(c.Attack)
		if err != nil {
			return resultstore.Key{}, false, err
		}
		comp["attack"] = canon
	}
	if s.Kind == AdTHSweep {
		// An adth row sweeps every workload class in one cell; the sorted
		// set (not the axis order, which cannot change the map-shaped row)
		// is part of what the row measures.
		ws := append([]string(nil), s.Axes.Workloads...)
		sort.Strings(ws)
		comp["workloads"] = strings.Join(ws, ",")
	}
	return resultstore.HashComponents(comp), true, nil
}

// StoreKeys derives the content address of every expanded grid row at
// once: the stamp the keys embed, one key per cell in Expand order, and
// the parallel cacheable mask (false marks rows a store must never serve,
// i.e. trace-replay workloads). This is the coordinator's view of the
// store — it lets a distributed merge probe for finished rows and write
// back rows received from workers without re-deriving cell hashing.
func (s *Spec) StoreKeys(sc Scale) (stamp string, keys []resultstore.Key, cacheable []bool, err error) {
	if err := s.Validate(); err != nil {
		return "", nil, nil, err
	}
	stamp = StoreStamp()
	cells := s.Expand(sc)
	keys = make([]resultstore.Key, len(cells))
	cacheable = make([]bool, len(cells))
	for i, c := range cells {
		key, ok, err := s.cellKey(sc, c, stamp)
		if err != nil {
			return "", nil, nil, err
		}
		keys[i], cacheable[i] = key, ok
	}
	return stamp, keys, cacheable, nil
}

// EncodeRowPayload serializes a completed row's point for the wire or the
// store. The encoding is the result store's row payload — JSON round-trips
// float64 exactly, so a decoded row renders byte-identically to the
// locally simulated one in every output format including golden. This is
// what a distributed worker sends per row (lossy display projections like
// RowValues drop columns the spec doesn't emit, so they cannot carry a
// row between processes).
func EncodeRowPayload(row Row) (json.RawMessage, error) { return encodeRow(row) }

// DecodeRowPayload deserializes a payload produced by EncodeRowPayload
// into row's point field for the kind. ok is false on any mismatch —
// undecodable payload, wrong or missing point — which receivers treat as
// the row not having been delivered.
func DecodeRowPayload(kind Kind, payload json.RawMessage, row *Row) bool {
	return decodeRow(kind, payload, row)
}

// storedRow is the serialized row payload: exactly one pointer set,
// matching the spec kind, like Row itself. encoding/json round-trips
// float64 exactly, so a decoded row renders byte-identically to the
// simulated one in every output format including golden.
type storedRow struct {
	Perf   *PerfPoint    `json:"perf,omitempty"`
	Safety *SafetyResult `json:"safety,omitempty"`
	Grid   *Figure9Point `json:"grid,omitempty"`
	AdTH   *Figure7Point `json:"adth,omitempty"`
}

// encodeRow serializes a completed row for storage.
func encodeRow(row Row) (json.RawMessage, error) {
	payload, err := json.Marshal(storedRow{Perf: row.Perf, Safety: row.Safety, Grid: row.Grid, AdTH: row.AdTH})
	if err != nil {
		return nil, fmt.Errorf("expspec: encoding row %d: %w", row.Index, err)
	}
	return payload, nil
}

// decodeRow deserializes a stored payload into the row's point field.
// ok is false for any mismatch — undecodable payload, wrong or missing
// point for the kind — which callers treat as a cache miss (the row
// re-simulates and the record is overwritten), never an error.
func decodeRow(kind Kind, payload json.RawMessage, row *Row) bool {
	var sr storedRow
	if err := json.Unmarshal(payload, &sr); err != nil {
		return false
	}
	switch kind {
	case Comparison:
		row.Perf = sr.Perf
		return sr.Perf != nil
	case SafetyKind:
		row.Safety = sr.Safety
		return sr.Safety != nil
	case ConfigGrid:
		row.Grid = sr.Grid
		return sr.Grid != nil
	case AdTHSweep:
		row.AdTH = sr.AdTH
		return sr.AdTH != nil
	}
	return false
}
