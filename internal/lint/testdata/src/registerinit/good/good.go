// Package good follows both registry contracts: init-time registration
// with literal names (directly or through a Register*-named forwarder), and
// copying victim slices into owned storage.
package good

var registry = map[string]func(){}

func Register(name string, f func()) { registry[name] = f }

// RegisterDefault forwards its caller's name; the literal-name rule applies
// at the forwarder's call sites.
func RegisterDefault(name string) { Register(name, func() {}) }

func init() {
	Register("fixed", func() {})
	RegisterDefault("other")
}

type scheme struct{}

func (scheme) OnActivate(bank int, row uint32) []uint32 { return nil }

type holder struct{ victims []uint32 }

// capture copies the victims into owned storage — the sanctioned pattern.
func (h *holder) capture(s scheme) {
	v := s.OnActivate(0, 1) // a local binding inside the call window is fine
	h.victims = append(h.victims[:0], v...)
}
