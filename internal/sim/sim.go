// Package sim assembles the full system — cores + LLC + memory controller +
// DRAM device + mitigation scheme — and runs tick-driven simulations that
// produce the performance, energy, and safety numbers behind the paper's
// evaluation figures.
package sim

import (
	"context"
	"fmt"

	"mithril/internal/cpu"
	"mithril/internal/dram"
	"mithril/internal/energy"
	"mithril/internal/mc"
	"mithril/internal/rh"
	"mithril/internal/timing"
	"mithril/internal/trace"
)

// Config describes one simulation run.
type Config struct {
	Params  timing.Params
	FlipTH  int
	Weights []float64 // disturbance weights (nil = double-sided)

	Scheduler mc.SchedulerKind
	Policy    mc.PagePolicy
	Scheme    mc.Scheme // nil = no protection

	Workload     []trace.Generator // one per core
	InstrPerCore int64
	CoreCfg      cpu.CoreConfig
	LLCBytes     int
	LLCWays      int

	// MaxTime bounds the simulated time (a safety stop for starved runs).
	MaxTime timing.PicoSeconds

	// RequireCores ends the run once the first RequireCores cores reach
	// their instruction target (0 = all). Attack experiments set this to
	// the benign core count: a throttled attacker never finishes — that
	// is the mitigation working, not a reason to run forever.
	RequireCores int
}

func (c *Config) normalize() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.FlipTH <= 0 {
		return fmt.Errorf("sim: FlipTH must be positive, got %d", c.FlipTH)
	}
	if len(c.Workload) == 0 {
		return fmt.Errorf("sim: workload has no cores")
	}
	if c.InstrPerCore <= 0 {
		c.InstrPerCore = 100_000
	}
	if c.CoreCfg == (cpu.CoreConfig{}) {
		c.CoreCfg = cpu.DefaultCoreConfig()
	}
	if c.LLCBytes <= 0 {
		c.LLCBytes = 16 << 20 // Table III: 16 MB
	}
	if c.LLCWays <= 0 {
		c.LLCWays = 16
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 400 * timing.Millisecond
	}
	return nil
}

// Result carries everything a run produced.
type Result struct {
	SchemeName    string
	IPCs          []float64
	AggregateIPC  float64
	SimulatedTime timing.PicoSeconds
	Device        dram.BankStats
	MC            mc.Stats
	Energy        energy.Breakdown
	Safety        rh.Report
	LLCHitRate    float64
	Finished      bool // all cores reached their instruction target
}

// completion is a pending memory response.
type completion struct {
	at    timing.PicoSeconds
	core  int
	reqID uint64
}

// completionHeap is a typed binary min-heap on completion time. A manual
// implementation instead of container/heap keeps the per-miss push/pop on
// the simulator's hot loop free of interface boxing (one allocation per
// memory access otherwise). Delivery order among equal times is
// unspecified; completions commute (each touches only its own core).
type completionHeap []completion

//mithril:hotpath
func (h *completionHeap) push(c completion) {
	*h = append(*h, c)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].at <= s[i].at {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

//mithril:hotpath
func (h *completionHeap) pop() completion {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s[l].at < s[min].at {
			min = l
		}
		if r < n && s[r].at < s[min].at {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// genSource adapts a trace.Generator to the core's Source interface.
type genSource struct{ g trace.Generator }

//mithril:hotpath
func (s genSource) Next() cpu.Op {
	a := s.g.Next()
	return cpu.Op{Gap: a.Gap, Addr: a.Addr, Write: a.Write, Serialize: a.Serialize, Uncached: a.Uncached}
}

// Run executes one simulation to completion (or MaxTime) and returns the
// results.
//
// Deprecated: use RunContext, which takes a context for cancellation.
func Run(cfg Config) (Result, error) {
	//mithril:allow ctxflow deprecated ctx-less shim; RunContext is the ctx path
	return RunContext(context.Background(), cfg)
}

// cancelCheckInterval is how many main-loop iterations pass between
// cooperative ctx polls: frequent enough that cancellation lands within
// microseconds of simulated progress, rare enough that the poll is
// invisible on the tick hot path.
const cancelCheckInterval = 1 << 12

// RunContext is Run with cooperative cancellation: the simulation polls
// ctx every few thousand loop iterations and aborts with ctx's error when
// it is done, so a cancelled sweep stops mid-run instead of finishing a
// multi-second grid point it will discard. A context that can never be
// cancelled (context.Background()) adds no per-iteration work.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	scheme := cfg.Scheme
	if scheme == nil {
		scheme = mc.NoProtection{}
	}
	dev := dram.NewDevice(cfg.Params, cfg.FlipTH, cfg.Weights)
	var pending completionHeap
	ctl := mc.NewController(dev, mc.Config{
		Scheduler: cfg.Scheduler,
		Policy:    cfg.Policy,
		Scheme:    scheme,
	}, func(r *mc.Request, at timing.PicoSeconds) {
		pending.push(completion{at: at, core: r.CoreID, reqID: r.ID})
	})
	llc := cpu.NewLLC(cfg.LLCBytes, cfg.LLCWays)
	space := ctl.Mapper().AddressSpace()
	cores := make([]*cpu.Core, len(cfg.Workload))
	for i, g := range cfg.Workload {
		cores[i] = cpu.NewCore(i, cfg.CoreCfg, wrapSpace{genSource{g}, space}, llc, cfg.InstrPerCore, ctl.Enqueue)
	}

	cancellable := ctx.Done() != nil
	if cancellable {
		// Short runs can finish inside one check interval; an already-
		// cancelled context must still abort before simulating anything.
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	now, allDone, err := runLoop(ctx, &cfg, cores, ctl, &pending, cancellable)
	if err != nil {
		return Result{}, err
	}
	res := collect(cfg, scheme, cores, dev, ctl, llc, now)
	res.Finished = allDone
	return res, nil
}

// runLoop is the simulator's tick loop: deliver completions, advance cores,
// tick the controller, fast-forward over idle stretches. It returns when the
// required cores finish or MaxTime passes (allDone distinguishes the two),
// or with ctx's error on cancellation. Everything it calls per iteration is
// allocation-free; the loop's cost is what the sweep harness amortizes.
//
//mithril:hotpath
func runLoop(ctx context.Context, cfg *Config, cores []*cpu.Core, ctl *mc.Controller, pending *completionHeap, cancellable bool) (now timing.PicoSeconds, allDone bool, err error) {
	tick := cfg.Params.TCK
	sinceCheck := 0
	for {
		if cancellable {
			sinceCheck++
			if sinceCheck >= cancelCheckInterval {
				sinceCheck = 0
				if err := ctx.Err(); err != nil {
					return now, false, err
				}
			}
		}
		// Deliver due completions.
		for len(*pending) > 0 && (*pending)[0].at <= now {
			c := pending.pop()
			cores[c.core].Complete(c.reqID, c.at)
		}
		required := cfg.RequireCores
		if required <= 0 || required > len(cores) {
			required = len(cores)
		}
		allDone = true
		for i, core := range cores {
			core.Advance(now)
			if i < required && !core.Finished() {
				allDone = false
			}
		}
		if allDone || now > cfg.MaxTime {
			return now, allDone, nil
		}
		ctl.Tick(now)
		now += tick
		// Idle fast-forward: jump to the next event (controller work,
		// completion, core fetch time, or refresh slot) instead of ticking
		// through dead time. This is what makes serialized attack loops
		// (one miss per ~100 ns) and multi-microsecond throttle delays
		// simulable over millisecond refresh windows.
		next := ctl.NextWork(now)
		if t := ctl.NextRefresh(); t < next {
			next = t
		}
		if len(*pending) > 0 && (*pending)[0].at < next {
			next = (*pending)[0].at
		}
		for _, core := range cores {
			if t := core.NextReady(); t < next {
				next = t
			}
		}
		if next > now {
			now = next
		}
	}
}

// wrapSpace folds generator addresses into the device address space.
type wrapSpace struct {
	inner genSource
	space uint64
}

//mithril:hotpath
func (w wrapSpace) Next() cpu.Op {
	op := w.inner.Next()
	op.Addr %= w.space
	return op
}

func collect(cfg Config, scheme mc.Scheme, cores []*cpu.Core, dev *dram.Device, ctl *mc.Controller, llc *cpu.LLC, now timing.PicoSeconds) Result {
	res := Result{
		SchemeName:    scheme.Name(),
		SimulatedTime: now,
		Device:        dev.TotalStats(),
		MC:            ctl.Stats(),
		Safety:        dev.SafetyReport(),
		LLCHitRate:    llc.HitRate(),
	}
	for _, c := range cores {
		ipc := c.IPC()
		res.IPCs = append(res.IPCs, ipc)
		res.AggregateIPC += ipc
	}
	res.Energy = energy.Compute(res.Device, res.MC, energy.DefaultParams())
	return res
}

// Comparison holds a protected run normalized against its baseline.
type Comparison struct {
	Baseline  Result
	Protected Result
	// RelativePerformance is protected aggregate IPC / baseline aggregate
	// IPC × 100 (the paper's "relative performance (%)").
	RelativePerformance float64
	// EnergyOverheadPercent is the relative dynamic energy increase.
	EnergyOverheadPercent float64
}

// RunComparison executes the workload twice — unprotected baseline and with
// the scheme — using identical generator state, and reports normalized
// metrics.
//
// Deprecated: use RunComparisonContext, which takes a context for
// cancellation.
func RunComparison(cfg Config, workload trace.Workload, scheme mc.Scheme) (Comparison, error) {
	//mithril:allow ctxflow deprecated ctx-less shim; RunComparisonContext is the ctx path
	return RunComparisonContext(context.Background(), cfg, workload, scheme)
}

// RunComparisonContext is RunComparison with cooperative cancellation
// threaded through both runs.
func RunComparisonContext(ctx context.Context, cfg Config, workload trace.Workload, scheme mc.Scheme) (Comparison, error) {
	base := cfg
	base.Scheme = nil
	base.Workload = workload.Fresh()
	baseline, err := RunContext(ctx, base)
	if err != nil {
		return Comparison{}, err
	}
	prot := cfg
	prot.Scheme = scheme
	prot.Workload = workload.Fresh()
	protected, err := RunContext(ctx, prot)
	if err != nil {
		return Comparison{}, err
	}
	cmp := Comparison{Baseline: baseline, Protected: protected}
	if baseline.AggregateIPC > 0 {
		cmp.RelativePerformance = 100 * protected.AggregateIPC / baseline.AggregateIPC
	}
	cmp.EnergyOverheadPercent = energy.OverheadPercent(protected.Energy, baseline.Energy)
	return cmp, nil
}
