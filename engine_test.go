package mithril

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mithril/internal/testutil"
)

// tinySpec is a comparison grid small enough for unit tests.
const tinySpec = `{
  "name": "engine-tiny",
  "kind": "comparison",
  "scale": {"preset": "quick", "cores": 2, "instr_per_core": 400},
  "axes": {
    "schemes": ["none", "mithril"],
    "flipths": [6250],
    "workloads": ["mix-high"]
  }
}`

func parseTinySpec(t *testing.T) *ExperimentSpec {
	t.Helper()
	sp, err := ParseSpec([]byte(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestEngineRunSpecMatchesSpecRun pins that the Engine path is a pure
// re-plumbing: the same spec produces identical rows through the Engine
// and through the spec's own Run.
func TestEngineRunSpecMatchesSpecRun(t *testing.T) {
	sp := parseTinySpec(t)
	direct, err := sp.Run()
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(DDR5(), WithJobs(2))
	viaEngine, err := eng.RunSpec(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Perf, viaEngine.Perf) {
		t.Errorf("engine path diverges:\ndirect: %v\nengine: %v", direct.Perf, viaEngine.Perf)
	}
}

// TestEngineStreamMatchesRunSpec pins the streaming guarantee at the
// public surface: reassembling Stream's rows by Index reproduces RunSpec.
func TestEngineStreamMatchesRunSpec(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	sp := parseTinySpec(t)
	eng := NewEngine(DDR5(), WithJobs(2))
	batch, err := eng.RunSpec(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]PerfPoint, len(batch.Perf))
	rows := 0
	for row, err := range eng.Stream(context.Background(), sp) {
		if err != nil {
			t.Fatal(err)
		}
		got[row.Index] = *row.Perf
		rows++
	}
	if rows != len(batch.Perf) {
		t.Fatalf("streamed %d rows, want %d", rows, len(batch.Perf))
	}
	if !reflect.DeepEqual(got, batch.Perf) {
		t.Errorf("stream != batch:\nstream: %v\nbatch:  %v", got, batch.Perf)
	}
}

func TestEngineRunDefaultsParams(t *testing.T) {
	eng := NewEngine(DDR5())
	sc := tinyScale()
	cfg := baseSimConfig(6250, sc)
	cfg.Params = TimingParams{} // Engine must fill in its own
	cfg.Workload = MixHigh(2, 1).Fresh()
	cfg.InstrPerCore = 400
	res, err := eng.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AggregateIPC <= 0 {
		t.Fatalf("aggregate IPC = %v", res.AggregateIPC)
	}
}

func TestEngineCompareMatchesDeprecatedShim(t *testing.T) {
	build := func() (SimConfig, Scheme) {
		s, err := NewScheme("mithril", SchemeOptions{Timing: DDR5(), FlipTH: 6250})
		if err != nil {
			t.Fatal(err)
		}
		sc := tinyScale()
		cfg := baseSimConfig(6250, sc)
		cfg.InstrPerCore = 1000
		return cfg, s
	}
	cfg, s := build()
	eng := NewEngine(DDR5())
	a, err := eng.Compare(context.Background(), cfg, MixHigh(4, 1), s)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, s2 := build()
	// Deprecated shim, exercised deliberately: it must stay equivalent.
	b, err := Compare(cfg2, MixHigh(4, 1), s2)
	if err != nil {
		t.Fatal(err)
	}
	if a.RelativePerformance != b.RelativePerformance {
		t.Errorf("shim diverges: %v vs %v", a.RelativePerformance, b.RelativePerformance)
	}
}

func TestEngineStreamCancelStopsWorkers(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	sp := parseTinySpec(t)
	sp.Axes.Seeds = []uint64{1, 2, 3, 4, 5, 6}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := NewEngine(DDR5(), WithJobs(2))
	rows := 0
	var sawErr error
	for _, err := range eng.Stream(ctx, sp) {
		if err != nil {
			sawErr = err
			continue
		}
		rows++
		if rows == 2 {
			cancel()
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", sawErr)
	}
}

func TestEngineProgressAndBaselineCache(t *testing.T) {
	sp := parseTinySpec(t)
	var calls int
	eng := NewEngine(DDR5(), WithJobs(1), WithBaselineCache(),
		WithProgress(func(done, total int) { calls++ }))
	a, err := eng.RunSpec(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(a.Perf) {
		t.Fatalf("progress calls = %d, want %d", calls, len(a.Perf))
	}
	// Second run through the same Engine shares baselines and must agree.
	b, err := eng.RunSpec(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Perf, b.Perf) {
		t.Errorf("warm engine run diverges: %v vs %v", a.Perf, b.Perf)
	}
}

func TestErrUnknownSchemeSurface(t *testing.T) {
	_, err := NewScheme("not-a-scheme", SchemeOptions{Timing: DDR5(), FlipTH: 6250})
	if !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("err = %v, want ErrUnknownScheme", err)
	}
}

// TestSchemeNamesSorted pins the public ordering guarantee.
func TestSchemeNamesSorted(t *testing.T) {
	want := []string{"blockhammer", "cbt", "graphene", "mithril", "mithril+", "none", "para", "parfm", "twice"}
	if got := SchemeNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SchemeNames() = %v, want sorted %v", got, want)
	}
}
