package mithril

import (
	"fmt"

	"mithril/internal/analysis"
	"mithril/internal/attack"
	"mithril/internal/energy"
	"mithril/internal/mc"
	"mithril/internal/mitigation"
	"mithril/internal/sim"
	"mithril/internal/stats"
	"mithril/internal/timing"
	"mithril/internal/trace"
)

// Scale sizes the simulation experiments. The paper runs 400M instructions
// over 16 cores on McSimA+; the simulator is cycle-approximate and the
// rate-based metrics (RFM frequency, refresh overheads) converge at far
// smaller budgets, so Quick is the default for tests/benches and Full for
// the CLI.
type Scale struct {
	Cores        int
	InstrPerCore int64
	FlipTHs      []int
	Seed         uint64
	// TimeScale compresses the refresh window (tREFW/TimeScale with
	// proportionally fewer refresh groups, same refresh duty cycle) so
	// window-relative mechanisms — BlockHammer blacklists, CBF epochs,
	// PARFM sampling windows — engage within simulable horizons. All
	// schemes are configured from the same scaled parameters, so relative
	// comparisons are preserved (DESIGN.md §4).
	TimeScale int
}

// Params returns the (possibly time-scaled) DDR5 parameters for this scale.
func (sc Scale) Params() TimingParams {
	p := timing.DDR5()
	f := sc.TimeScale
	if f <= 1 {
		return p
	}
	p.TREFW /= PicoSeconds(f)
	p.RefreshGroups /= f
	return p
}

// attackCores sizes attack workloads: the paper's 15+1 arrangement at full
// scale, a 3+1 arrangement otherwise (attack effects are per-bank, not
// per-core, so fewer benign cores change little but cost linearly less).
func (sc Scale) attackCores() int {
	if sc.Cores >= 16 {
		return sc.Cores
	}
	if sc.Cores > 4 {
		return 4
	}
	return sc.Cores
}

// multiSidedVictims picks the attack width (32 at full scale, 8 quick).
func (sc Scale) multiSidedVictims() int {
	if sc.Cores >= 16 {
		return 32
	}
	return 8
}

// attackInstrFactor extends attack runs so threshold mechanisms (NBL,
// FlipTH accumulation) have time to engage.
const attackInstrFactor = 64

// QuickScale is the fast experiment configuration.
func QuickScale() Scale {
	return Scale{Cores: 8, InstrPerCore: 20_000, FlipTHs: []int{50000, 6250, 1500}, Seed: 1, TimeScale: 8}
}

// FullScale matches the paper's system size (16 cores, all FlipTH levels).
func FullScale() Scale {
	return Scale{Cores: 16, InstrPerCore: 100_000, FlipTHs: analysis.StandardFlipTHs, Seed: 1, TimeScale: 8}
}

// StandardFlipTHs re-exports the evaluation's FlipTH sweep.
func StandardFlipTHs() []int { return append([]int(nil), analysis.StandardFlipTHs...) }

// baseSimConfig builds the Table III system configuration at the scale's
// (possibly time-compressed) timing.
func baseSimConfig(flipTH int, sc Scale) SimConfig {
	return SimConfig{
		Params:       sc.Params(),
		FlipTH:       flipTH,
		Scheduler:    BLISS,
		Policy:       MinimalistOpen,
		InstrPerCore: sc.InstrPerCore,
	}
}

// ---------------------------------------------------------------- Figure 2

// Figure2Point re-exports the analytic Figure 2 data point.
type Figure2Point = analysis.Figure2Point

// Figure2Data evaluates the ARR-vs-RFM Graphene incompatibility curves.
func Figure2Data() []Figure2Point {
	thresholds := []int{250, 500, 1000, 2000, 4000, 8000}
	rfmths := []int{256, 128, 64, 32}
	return analysis.Figure2Curve(DDR5(), thresholds, rfmths)
}

// ---------------------------------------------------------------- Figure 6

// Figure6Series is one FlipTH line of Figure 6.
type Figure6Series struct {
	FlipTH int
	CbS    []MithrilConfig // feasible (RFMTH → table) points, CbS tracker
	Lossy  []MithrilConfig // same with Lossy Counting (dotted lines)
}

// Figure6Data computes the feasible configuration curves.
func Figure6Data() []Figure6Series {
	p := DDR5()
	rfmths := []int{416, 384, 352, 320, 288, 256, 224, 192, 160, 128, 96, 64, 48, 32, 16}
	flipTHs := []int{1560, 3125, 6250, 12500, 25000, 50000}
	out := make([]Figure6Series, 0, len(flipTHs))
	for _, f := range flipTHs {
		s := Figure6Series{FlipTH: f}
		s.CbS = analysis.ConfigCurve(p, f, rfmths, 0, analysis.DoubleSidedBlast)
		if f >= 25000 { // the paper plots lossy counting at 25K and 50K
			s.Lossy = analysis.LossyConfigCurve(p, f, rfmths, analysis.DoubleSidedBlast)
		}
		out = append(out, s)
	}
	return out
}

// ---------------------------------------------------------------- Figure 7

// Figure7Point is one AdTH level of Figure 7.
type Figure7Point struct {
	FlipTH, RFMTH, AdTH int
	// EnergyOverheadPct per workload class (multi-programmed/threaded).
	EnergyOverheadPct map[string]float64
	// AdditionalNEntryPct is the Theorem 2 table growth (right axis).
	AdditionalNEntryPct float64
}

// Figure7Data sweeps AdTH for the paper's two configurations on one
// multi-programmed and one multi-threaded workload.
func Figure7Data(sc Scale) ([]Figure7Point, error) {
	p := sc.Params()
	configs := []struct{ flipTH, rfmTH int }{{3125, 16}, {6250, 64}}
	adths := []int{0, 50, 100, 150, 200}
	workloads := map[string]Workload{
		"multi-programmed": trace.MixHigh(sc.Cores, sc.Seed),
		"multi-threaded":   trace.FFT(sc.Cores, sc.Seed),
	}
	// One baseline per workload (scheme-independent).
	baselines := map[string]sim.Result{}
	for name, w := range workloads {
		cfg := baseSimConfig(configs[0].flipTH, sc)
		cfg.Workload = w.Fresh()
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		baselines[name] = res
	}
	var out []Figure7Point
	for _, c := range configs {
		for _, ad := range adths {
			pt := Figure7Point{FlipTH: c.flipTH, RFMTH: c.rfmTH, AdTH: ad,
				EnergyOverheadPct: map[string]float64{}}
			if pct, ok := analysis.AdditionalNEntryPercent(p, c.flipTH, c.rfmTH, ad); ok {
				pt.AdditionalNEntryPct = pct
			}
			for name, w := range workloads {
				scheme := mitigation.NewMithril(mitigation.Options{
					Timing: p, FlipTH: c.flipTH, RFMTH: c.rfmTH, AdTH: adOrDisabled(ad), Seed: sc.Seed,
				})
				cfg := baseSimConfig(c.flipTH, sc)
				cfg.Scheme = scheme
				cfg.Workload = w.Fresh()
				res, err := sim.Run(cfg)
				if err != nil {
					return nil, err
				}
				pt.EnergyOverheadPct[name] = energy.OverheadPercent(res.Energy, baselines[name].Energy)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// adOrDisabled maps AdTH 0 to the mitigation package's "disabled" encoding.
func adOrDisabled(ad int) int {
	if ad == 0 {
		return -1
	}
	return ad
}

// ---------------------------------------------------------------- Figure 8

// Figure8Data reproduces the lbm-like access/activation characterization.
type Figure8Data struct {
	LargeWindow   []trace.RowSample
	SmallWindow   []trace.RowSample
	Activations   []trace.RowSample
	LargeDistinct int
	SmallDistinct int
	SmallMaxRow   int // max accesses to one row in the small window
}

// Figure8 generates the large-object-sweep data series.
func Figure8() Figure8Data {
	mapper := mc.NewAddressMapper(DDR5())
	large := trace.RowSeries(trace.NewStream("lbm", 0, 128<<20, 12, 4), mapper, 100_000)
	small := trace.RowSeries(trace.NewStream("lbm", 0, 128<<20, 12, 4), mapper, 512)
	acts := trace.ActivationSeries(small)
	ld, _ := trace.ConcentrationStats(large)
	sd, sm := trace.ConcentrationStats(small)
	return Figure8Data{
		LargeWindow: large, SmallWindow: small, Activations: acts,
		LargeDistinct: ld, SmallDistinct: sd, SmallMaxRow: sm,
	}
}

// --------------------------------------------------------------- Figures 9–11

// PerfPoint is one (scheme, FlipTH, workload) measurement.
type PerfPoint struct {
	Scheme              string
	FlipTH              int
	RFMTH               int
	Workload            string
	RelativePerformance float64 // % of unprotected aggregate IPC
	EnergyOverheadPct   float64
	TableKB             float64
	Safe                bool
}

// String renders the point for logs.
func (p PerfPoint) String() string {
	return fmt.Sprintf("%-12s FlipTH=%-6d %-16s perf=%6.2f%% energy=+%5.2f%% table=%6.2fKB safe=%v",
		p.Scheme, p.FlipTH, p.Workload, p.RelativePerformance, p.EnergyOverheadPct, p.TableKB, p.Safe)
}

// runner caches per-workload baselines so every scheme is normalized
// against an identical unprotected run.
type runner struct {
	sc        Scale
	baselines map[string]sim.Result
}

func newRunner(sc Scale) *runner { return &runner{sc: sc, baselines: map[string]sim.Result{}} }

// cfgFor derives the run configuration for a workload: attack workloads
// get an extended instruction budget and end when the benign cores finish.
func (r *runner) cfgFor(flipTH int, w Workload) SimConfig {
	cfg := baseSimConfig(flipTH, r.sc)
	cfg.Workload = w.Fresh()
	if w.Attackers > 0 {
		cfg.InstrPerCore = r.sc.InstrPerCore * attackInstrFactor
		cfg.RequireCores = len(cfg.Workload) - w.Attackers
	}
	return cfg
}

func (r *runner) baseline(flipTH int, w Workload) (sim.Result, error) {
	if res, ok := r.baselines[w.Name]; ok {
		return res, nil
	}
	cfg := r.cfgFor(flipTH, w)
	res, err := sim.Run(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	r.baselines[w.Name] = res
	return res, nil
}

// benignIPC sums per-core IPCs excluding attacker cores (negative count
// means none).
func benignIPC(res sim.Result, attackers int) float64 {
	total := 0.0
	n := len(res.IPCs) - attackers
	for i := 0; i < n; i++ {
		total += res.IPCs[i]
	}
	return total
}

// measure runs scheme on workload and produces the normalized point;
// trailing attacker cores (w.Attackers) are excluded from IPC aggregation.
func (r *runner) measure(scheme mc.Scheme, flipTH int, w Workload) (PerfPoint, error) {
	attackers := w.Attackers
	base, err := r.baseline(flipTH, w)
	if err != nil {
		return PerfPoint{}, err
	}
	cfg := r.cfgFor(flipTH, w)
	cfg.Scheme = scheme
	res, err := sim.Run(cfg)
	if err != nil {
		return PerfPoint{}, err
	}
	pt := PerfPoint{
		Scheme:   scheme.Name(),
		FlipTH:   flipTH,
		Workload: w.Name,
		Safe:     res.Safety.Safe(),
	}
	if b := benignIPC(base, attackers); b > 0 {
		pt.RelativePerformance = 100 * benignIPC(res, attackers) / b
	}
	pt.EnergyOverheadPct = energy.OverheadPercent(res.Energy, base.Energy)
	return pt, nil
}

// normalWorkloads returns the benign workload set for a scale (two mixes at
// quick scale; the paper's five at full scale).
func normalWorkloads(sc Scale) []Workload {
	if sc.Cores < 16 {
		return []Workload{trace.MixHigh(sc.Cores, sc.Seed), trace.FFT(sc.Cores, sc.Seed)}
	}
	all := trace.NormalWorkloads(sc.Cores, sc.Seed)
	out := make([]Workload, len(all))
	for i, w := range all {
		out[i] = w.Workload
	}
	return out
}

// multiSidedWorkload builds the Figure 10(b) workload: benign cores plus
// one multi-sided attacker (32 victims at full scale).
func multiSidedWorkload(sc Scale) Workload {
	mapper := mc.NewAddressMapper(sc.Params())
	n := sc.attackCores()
	benign := trace.MixHigh(n, sc.Seed)
	victims := sc.multiSidedVictims()
	return Workload{
		Name:      "multi-sided-rh",
		Attackers: 1,
		Fresh: func() []Generator {
			gens := benign.Fresh()
			gens[len(gens)-1] = attack.NewMultiSided(mapper, 1, 7, 4000, victims)
			return gens
		},
	}
}

// adversarialWorkload builds the Figure 10(c) workload: benign cores with
// one hot-row service core, plus a BlockHammer-collision adversary aimed at
// the service core's rows. Against non-throttling schemes the adversary's
// walk is harmless background traffic.
func adversarialWorkload(sc Scale, scheme mc.Scheme) Workload {
	p := sc.Params()
	mapper := mc.NewAddressMapper(p)
	n := sc.attackCores()
	benign := trace.MixHigh(n, sc.Seed)
	victimCore := n - 2
	if victimCore < 0 {
		victimCore = 0
	}
	base := uint64(victimCore) << 28
	loc := mapper.Map(base)
	return Workload{
		// The workload embeds the deployed scheme's collision oracle, so
		// baselines must not be shared across schemes.
		Name:      "bh-adversarial/" + scheme.Name(),
		Attackers: 1,
		Fresh: func() []Generator {
			gens := benign.Fresh()
			// The service core strides an 8 MB object with a prime stride:
			// cache-hostile, so its rows keep re-activating — throttling
			// them (or escalating to the whole thread) hurts directly.
			gens[victimCore] = trace.NewStrided("service", base, 8<<20, 257, 6)
			// The adversary hammers rows that collide with the service
			// core's hot rows in the deployed scheme's filters.
			gens[len(gens)-1] = adversaryFor(mapper, loc, scheme)
			return gens
		},
	}
}

// adversaryFor builds a combined collision attack over the service core's
// first four hot rows in its first bank.
func adversaryFor(mapper *mc.AddressMapper, loc mc.Location, scheme mc.Scheme) Generator {
	var rows []int
	if th, ok := scheme.(attack.Throttler); ok {
		for i := 0; i < 2; i++ {
			for _, r := range th.CollidingRows(loc.GlobalBank, uint32(loc.Row+i), 4) {
				rows = append(rows, int(r))
			}
		}
	}
	if len(rows) == 0 {
		for i := 0; i < 16; i++ {
			rows = append(rows, (loc.Row+64+8*i)%mapper.Params().Rows)
		}
	}
	return attack.NewRowList("bh-adversarial", mapper, loc.Channel, loc.Bank, rows)
}

// Figure9Point compares Mithril and Mithril+ at one operating point.
type Figure9Point struct {
	FlipTH, RFMTH int
	Mithril       float64 // relative performance %
	MithrilPlus   float64
	TableKB       float64
	EnergyMithril float64
	EnergyPlus    float64
}

// Figure9Data sweeps the paper's (FlipTH, RFMTH) grid on the mix-high
// workload.
func Figure9Data(sc Scale) ([]Figure9Point, error) {
	grid := map[int][]int{12500: {512, 256, 128}, 6250: {256, 128, 64}, 3125: {128, 64, 32}, 1500: {32}}
	order := []int{12500, 6250, 3125, 1500}
	r := newRunner(sc)
	w := trace.MixHigh(sc.Cores, sc.Seed)
	var out []Figure9Point
	for _, flipTH := range order {
		for _, rfmTH := range grid[flipTH] {
			opt := mitigation.Options{Timing: sc.Params(), FlipTH: flipTH, RFMTH: rfmTH, Seed: sc.Seed}
			if _, ok := analysis.Configure(sc.Params(), flipTH, rfmTH, mitigation.DefaultAdTH, analysis.DoubleSidedBlast); !ok {
				continue
			}
			m, err := r.measure(mitigation.NewMithril(opt), flipTH, w)
			if err != nil {
				return nil, err
			}
			plus, err := r.measure(mitigation.NewMithrilPlus(opt), flipTH, w)
			if err != nil {
				return nil, err
			}
			kb, _ := analysis.MithrilTableKB(DDR5(), flipTH, rfmTH, 0)
			out = append(out, Figure9Point{
				FlipTH: flipTH, RFMTH: rfmTH,
				Mithril: m.RelativePerformance, MithrilPlus: plus.RelativePerformance,
				TableKB:       kb,
				EnergyMithril: m.EnergyOverheadPct, EnergyPlus: plus.EnergyOverheadPct,
			})
		}
	}
	return out, nil
}

// Figure10Data evaluates the RFM-compatible schemes (PARFM, BlockHammer,
// Mithril, Mithril+) across FlipTH on normal, multi-sided-RH, and
// BlockHammer-adversarial workloads, plus energy and area.
func Figure10Data(sc Scale) ([]PerfPoint, error) {
	return comparisonSweep(sc, []string{"parfm", "blockhammer", "mithril", "mithril+"}, true)
}

// Figure11Data evaluates the RFM-non-compatible baselines (PARA, CBT,
// TWiCe, Graphene) against Mithril and Mithril+ on normal and multi-sided
// workloads.
func Figure11Data(sc Scale) ([]PerfPoint, error) {
	return comparisonSweep(sc, []string{"para", "cbt", "twice", "graphene", "mithril", "mithril+"}, false)
}

func comparisonSweep(sc Scale, schemes []string, adversarial bool) ([]PerfPoint, error) {
	r := newRunner(sc)
	normals := normalWorkloads(sc)
	rhW := multiSidedWorkload(sc)
	var out []PerfPoint
	for _, flipTH := range sc.FlipTHs {
		for _, name := range schemes {
			build := func() (mc.Scheme, error) {
				return mitigation.Build(name, mitigation.Options{Timing: sc.Params(), FlipTH: flipTH, Seed: sc.Seed})
			}
			// Normal workloads: geo-mean of relative performance, mean of
			// energy overhead.
			var perfs []float64
			var energySum float64
			var safe = true
			for _, w := range normals {
				s, err := build()
				if err != nil {
					return nil, err
				}
				pt, err := r.measure(s, flipTH, w)
				if err != nil {
					return nil, err
				}
				perfs = append(perfs, pt.RelativePerformance)
				energySum += pt.EnergyOverheadPct
				safe = safe && pt.Safe
			}
			out = append(out, PerfPoint{
				Scheme: name, FlipTH: flipTH, Workload: "normal",
				RelativePerformance: stats.Geomean(perfs),
				EnergyOverheadPct:   energySum / float64(len(normals)),
				TableKB:             schemeTableKB(name, flipTH),
				Safe:                safe,
			})
			// Multi-sided RH.
			s, err := build()
			if err != nil {
				return nil, err
			}
			pt, err := r.measure(s, flipTH, rhW)
			if err != nil {
				return nil, err
			}
			pt.TableKB = schemeTableKB(name, flipTH)
			out = append(out, pt)
			// BlockHammer-adversarial (Figure 10 only).
			if adversarial {
				s, err := build()
				if err != nil {
					return nil, err
				}
				advW := adversarialWorkload(sc, s)
				apt, err := r.measure(s, flipTH, advW)
				if err != nil {
					return nil, err
				}
				apt.TableKB = schemeTableKB(name, flipTH)
				out = append(out, apt)
			}
		}
	}
	return out, nil
}

// schemeTableKB reports the per-bank counter table area for the scheme at
// a FlipTH level (Figure 10(e)/Table IV models).
func schemeTableKB(name string, flipTH int) float64 {
	p := DDR5()
	switch name {
	case "graphene":
		return analysis.GrapheneTableKB(p, flipTH)
	case "twice":
		return analysis.TWiCeTableKB(p, flipTH)
	case "cbt":
		return analysis.CBTTableKB(p, flipTH)
	case "blockhammer":
		return analysis.BlockHammerTableKB(flipTH)
	case "mithril", "mithril+":
		kb, ok := analysis.MithrilTableKB(p, flipTH, mitigation.PaperRFMTH(flipTH), 0)
		if !ok {
			return 0
		}
		return kb
	default:
		return 0
	}
}

// ---------------------------------------------------------------- Table IV

// TableIVRow re-exports the area table row.
type TableIVRow = analysis.TableIVRow

// Table4Data returns our computed Table IV and the paper's reference values.
func Table4Data() (computed, paper []TableIVRow) {
	return analysis.TableIV(DDR5()), analysis.PaperTableIV()
}

// ------------------------------------------------------------- Safety (E11)

// SafetyResult is one scheme × attack verdict.
type SafetyResult struct {
	Scheme         string
	Attack         string
	FlipTH         int
	Flips          int
	MaxDisturbance float64
	Safe           bool
}

// SafetySweep attacks every scheme with double- and multi-sided patterns in
// the full simulator and reports the fault-model verdicts.
func SafetySweep(sc Scale, flipTH int) ([]SafetyResult, error) {
	mapper := mc.NewAddressMapper(sc.Params())
	// Background core first, attacker last: the run ends when the benign
	// core finishes even if the attacker is throttled to a crawl. The
	// background must be memory-bound (footprint ≫ LLC) so the attacker
	// gets a realistic time window.
	attacks := map[string]func() []Generator{
		"double-sided": func() []Generator {
			return []Generator{
				trace.NewStream("bg", 1<<28, 64<<20, 10, 4),
				attack.NewDoubleSided(mapper, 0, 0, 1000),
			}
		},
		"multi-sided-32": func() []Generator {
			return []Generator{
				trace.NewStream("bg", 1<<28, 64<<20, 10, 4),
				attack.NewMultiSided(mapper, 0, 0, 2000, 32),
			}
		},
	}
	schemes := append([]string{"none"}, "parfm", "blockhammer", "graphene", "twice", "cbt", "mithril", "mithril+")
	var out []SafetyResult
	for attackName, fresh := range attacks {
		for _, name := range schemes {
			s, err := mitigation.Build(name, mitigation.Options{Timing: sc.Params(), FlipTH: flipTH, Seed: sc.Seed})
			if err != nil {
				return nil, err
			}
			cfg := baseSimConfig(flipTH, sc)
			cfg.Scheme = s
			cfg.Workload = fresh()
			cfg.InstrPerCore = sc.InstrPerCore * attackInstrFactor
			cfg.RequireCores = 1 // benign core only
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, SafetyResult{
				Scheme: name, Attack: attackName, FlipTH: flipTH,
				Flips: res.Safety.Flips, MaxDisturbance: res.Safety.MaxDisturbance,
				Safe: res.Safety.Safe(),
			})
		}
	}
	return out, nil
}

// PARFMFailure re-exports the Appendix C failure model for the CLI.
func PARFMFailure(flipTH, rfmTH int) (bank, system float64) {
	p := DDR5()
	return analysis.ParfmBankFailure(p, flipTH, rfmTH),
		analysis.ParfmSystemFailure(p, flipTH, rfmTH, analysis.DefaultAttackableBanks)
}

// PARFMRequiredRFMTH re-exports the RFMTH search (1e-15 target).
func PARFMRequiredRFMTH(flipTH int) (int, bool) {
	return analysis.ParfmRequiredRFMTH(DDR5(), flipTH, analysis.DefaultAttackableBanks, 1e-15, nil)
}

var _ = timing.DDR5 // keep the import stable for the type aliases above
