package distrib_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mithril"
	"mithril/internal/distrib"
	"mithril/internal/expspec"
	"mithril/internal/resultstore"
	"mithril/internal/serveapi"
	"mithril/internal/testutil"
)

// retrySpec is an 8-row comparison grid, small enough for unit tests but
// wide enough that a mid-stream kill leaves a meaningful remainder.
const retrySpec = `{
  "name": "retry-test",
  "kind": "comparison",
  "scale": {"preset": "quick", "cores": 2, "instr_per_core": 400},
  "axes": {
    "schemes": ["none", "mithril"],
    "flipths": [6250],
    "workloads": ["mix-high"],
    "seeds": [1, 2, 3, 4]
  }
}`

// mixedSpec adds a trace-replay workload, which workers refuse: its rows
// must execute locally on the coordinator and merge into the same stream.
const mixedSpec = `{
  "name": "mixed-test",
  "kind": "comparison",
  "scale": {"preset": "quick", "cores": 2, "instr_per_core": 400},
  "axes": {
    "schemes": ["none", "mithril"],
    "flipths": [6250],
    "workloads": ["mix-high", "trace:../../testdata/sample_workload.trace"]
  }
}`

func parseSpec(t *testing.T, doc string) (*expspec.Spec, expspec.Scale) {
	t.Helper()
	sp, err := expspec.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sp.Scale.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	sc.Jobs = 2
	return sp, sc
}

// localGolden runs the spec in-process, the reference for byte-equality.
func localGolden(t *testing.T, sp *expspec.Spec, sc expspec.Scale) string {
	t.Helper()
	res, err := sp.RunAtContext(context.Background(), sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Golden()
}

func newCoordinator(t *testing.T, workers []string) *distrib.Coordinator {
	t.Helper()
	c, err := distrib.New(workers, distrib.Options{MaxFailures: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := distrib.New(nil, distrib.Options{}); err == nil {
		t.Error("New(nil) must fail: a coordinator needs at least one worker")
	}
	if _, err := distrib.New([]string{"http://a:1", "  "}, distrib.Options{}); err == nil {
		t.Error("New with a blank URL must fail")
	}
	c, err := distrib.New([]string{"host:1234/", "http://other:80"}, distrib.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := c.Workers()
	if got[0] != "http://host:1234" || got[1] != "http://other:80" {
		t.Errorf("normalized workers = %v", got)
	}
}

// TestFleetEquivalenceShippedQuickSpecs is the acceptance bar: every
// shipped quick spec produces byte-identical golden output run locally
// vs. fanned out across two workers. GoldenScale (the pinned-regression
// scale) keeps the grids real but the test fast.
func TestFleetEquivalenceShippedQuickSpecs(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// Shipped specs name trace files relative to the repo root (the CLI's
	// working directory); those rows run locally on the coordinator.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir("../.."); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chdir(wd) })
	w1 := httptest.NewServer(serveapi.NewHandler(serveapi.Config{Jobs: 2}))
	defer w1.Close()
	w2 := httptest.NewServer(serveapi.NewHandler(serveapi.Config{Jobs: 2}))
	defer w2.Close()
	coord := newCoordinator(t, []string{w1.URL, w2.URL})

	specs, loadErr := expspec.LoadAll(mithril.SpecsFS(), "specs")
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	sc := expspec.GoldenScale()
	sc.Jobs = 2
	quick := 0
	for _, sp := range specs {
		if !strings.HasSuffix(sp.Name, ".quick") {
			continue
		}
		quick++
		t.Run(sp.Name, func(t *testing.T) {
			want := localGolden(t, sp, sc)
			res, err := coord.RunAt(context.Background(), sp, sc, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Golden(); got != want {
				t.Errorf("distributed golden output diverges from local:\nlocal:\n%s\ndistributed:\n%s", want, got)
			}
		})
	}
	if quick == 0 {
		t.Fatal("no shipped .quick specs found — the equivalence bar tested nothing")
	}
}

// countingStore wraps a store and counts Put calls per key: a key Put
// twice means a row was simulated twice, the exact waste the distributed
// store dedup exists to prevent.
type countingStore struct {
	resultstore.Store
	mu   sync.Mutex
	puts map[resultstore.Key]int
}

func newCountingStore() *countingStore {
	return &countingStore{Store: resultstore.NewMem(), puts: map[resultstore.Key]int{}}
}

func (c *countingStore) Put(rec resultstore.Record) error {
	c.mu.Lock()
	c.puts[rec.Key]++
	c.mu.Unlock()
	return c.Store.Put(rec)
}

func (c *countingStore) maxPuts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	max := 0
	for _, n := range c.puts {
		if n > max {
			max = n
		}
	}
	return max
}

// cutOnce aborts the first /v1/run response after n record writes
// (simulating a worker crash mid-stream), then serves normally — the
// single-worker recovery scenario.
func cutOnce(h http.Handler, n int) (http.Handler, *atomic.Bool) {
	var tripped atomic.Bool
	armed := atomic.Bool{}
	armed.Store(true)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == distrib.RunPath && armed.CompareAndSwap(true, false) {
			tripped.Store(true)
			h.ServeHTTP(&cutWriter{ResponseWriter: w, remaining: n}, r)
			return
		}
		h.ServeHTTP(w, r)
	}), &tripped
}

// dieAfter aborts the first /v1/run response after n record writes and
// answers every later request 503 — a worker that crashed for good.
func dieAfter(h http.Handler, n int) http.Handler {
	var dead atomic.Bool
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = io.WriteString(w, `{"error":{"code":"unavailable","message":"worker terminated"}}`)
			return
		}
		if r.URL.Path == distrib.RunPath {
			dead.Store(true)
			h.ServeHTTP(&cutWriter{ResponseWriter: w, remaining: n}, r)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// cutWriter passes n body writes through (each NDJSON record is one
// write), then aborts the connection.
type cutWriter struct {
	http.ResponseWriter
	remaining int
}

func (w *cutWriter) Write(b []byte) (int, error) {
	if w.remaining <= 0 {
		panic(http.ErrAbortHandler)
	}
	w.remaining--
	return w.ResponseWriter.Write(b)
}

func (w *cutWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestShardRetryRedispatch pins the tentpole's failure semantics: a
// worker that streams two rows and drops the connection gets its shard's
// remainder re-dispatched, output stays byte-identical to a local run,
// and — because worker and coordinator share the store — no row is ever
// simulated (Put) twice.
func TestShardRetryRedispatch(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	sp, sc := parseSpec(t, retrySpec)
	want := localGolden(t, sp, sc)

	store := newCountingStore()
	h, tripped := cutOnce(serveapi.NewHandler(serveapi.Config{Jobs: 2, Store: store}), 2)
	ts := httptest.NewServer(h)
	defer ts.Close()

	coord := newCoordinator(t, []string{ts.URL})
	res, err := coord.RunAt(context.Background(), sp, sc, &expspec.ExecOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if !tripped.Load() {
		t.Fatal("the kill middleware never fired — the retry path was not exercised")
	}
	if got := res.Golden(); got != want {
		t.Errorf("post-retry golden output diverges from local:\nlocal:\n%s\ndistributed:\n%s", want, got)
	}
	if total := res.RowsCached + res.RowsSimulated; total != 8 {
		t.Errorf("RowsCached+RowsSimulated = %d, want 8 (each row delivered exactly once)", total)
	}
	if n := store.maxPuts(); n > 1 {
		t.Errorf("a row was Put %d times — re-dispatch re-simulated a stored row", n)
	}
}

// TestWorkerKilledMidRun pins fleet degradation: with two workers, one
// dying for good mid-stream, the sweep completes identically on the
// survivor.
func TestWorkerKilledMidRun(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	sp, sc := parseSpec(t, retrySpec)
	want := localGolden(t, sp, sc)

	dying := httptest.NewServer(dieAfter(serveapi.NewHandler(serveapi.Config{Jobs: 2}), 1))
	defer dying.Close()
	healthy := httptest.NewServer(serveapi.NewHandler(serveapi.Config{Jobs: 2}))
	defer healthy.Close()

	coord := newCoordinator(t, []string{dying.URL, healthy.URL})
	res, err := coord.RunAt(context.Background(), sp, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Golden(); got != want {
		t.Errorf("golden output diverges after losing a worker:\nlocal:\n%s\ndistributed:\n%s", want, got)
	}
}

// TestAllWorkersDropped pins the terminal failure: when every worker
// exhausts its failure budget the stream ends with one loud error, not a
// hang or a truncated result.
func TestAllWorkersDropped(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	sp, sc := parseSpec(t, retrySpec)
	broken := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	w1 := httptest.NewServer(broken)
	defer w1.Close()
	w2 := httptest.NewServer(broken)
	defer w2.Close()

	c, err := distrib.New([]string{w1.URL, w2.URL}, distrib.Options{MaxFailures: 1, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.RunAt(context.Background(), sp, sc, nil)
	if err == nil || !strings.Contains(err.Error(), "workers dropped") {
		t.Fatalf("error = %v, want the all-workers-dropped failure", err)
	}
}

// TestPermanentErrorStopsImmediately pins retry classification: a worker
// rejecting the shard with a permanent code (bad_request) fails the
// stream on the first response — retrying a deterministic rejection
// against other workers would just burn the failure budget.
func TestPermanentErrorStopsImmediately(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	sp, sc := parseSpec(t, retrySpec)
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_, _ = io.WriteString(w, `{"error":{"code":"bad_request","message":"shard rejected for the test"}}`)
	}))
	defer ts.Close()

	coord := newCoordinator(t, []string{ts.URL})
	_, err := coord.RunAt(context.Background(), sp, sc, nil)
	if err == nil || !strings.Contains(err.Error(), "shard rejected for the test") {
		t.Fatalf("error = %v, want the worker's permanent rejection", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("worker called %d times, want 1 (permanent errors must not retry)", n)
	}
}

// TestMixedLocalRemoteRows pins the trace-workload split: rows workers
// refuse (trace-replay) run locally on the coordinator and merge into
// the same deterministic result.
func TestMixedLocalRemoteRows(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	sp, sc := parseSpec(t, mixedSpec)
	want := localGolden(t, sp, sc)

	ts := httptest.NewServer(serveapi.NewHandler(serveapi.Config{Jobs: 2}))
	defer ts.Close()
	coord := newCoordinator(t, []string{ts.URL})
	res, err := coord.RunAt(context.Background(), sp, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Golden(); got != want {
		t.Errorf("mixed local/remote golden output diverges:\nlocal:\n%s\ndistributed:\n%s", want, got)
	}
}

// TestStreamConsumerBreak pins the leak contract: a consumer that stops
// ranging mid-stream leaves no goroutine behind.
func TestStreamConsumerBreak(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	sp, sc := parseSpec(t, retrySpec)
	ts := httptest.NewServer(serveapi.NewHandler(serveapi.Config{Jobs: 2}))
	defer ts.Close()
	coord := newCoordinator(t, []string{ts.URL})
	for _, err := range coord.StreamAt(context.Background(), sp, sc, nil) {
		if err != nil {
			t.Fatal(err)
		}
		break
	}
}
