package streaming

import (
	"sort"
	"testing"
	"testing/quick"
)

// newSummaries returns both CbS implementations so every test exercises the
// scan-based reference and the O(1) Stream-Summary structure.
func newSummaries(capacity int) map[string]Summary {
	return map[string]Summary{
		"CbS":         NewCbS(capacity),
		"SpaceSaving": NewSpaceSaving(capacity),
	}
}

func TestCbSBasicHitIncrement(t *testing.T) {
	for name, s := range newSummaries(4) {
		s.Observe(10)
		s.Observe(10)
		s.Observe(10)
		if got := s.Estimate(10); got != 3 {
			t.Errorf("%s: Estimate(10) = %d, want 3", name, got)
		}
		if got := s.Len(); got != 1 {
			t.Errorf("%s: Len() = %d, want 1", name, got)
		}
		if got := s.Min(); got != 0 {
			t.Errorf("%s: Min() with free slots = %d, want 0", name, got)
		}
	}
}

func TestCbSReplacementRule(t *testing.T) {
	// Fill a 2-entry table, then insert a third key: it must replace the
	// minimum entry and inherit min+1.
	for name, s := range newSummaries(2) {
		s.Observe(1)
		s.Observe(1)
		s.Observe(1) // key 1 -> 3
		s.Observe(2) // key 2 -> 1 (min)
		s.Observe(3) // replaces key 2, inherits 1+1 = 2
		if got := s.Estimate(3); got != 2 {
			t.Errorf("%s: Estimate(3) = %d, want 2 (min+1)", name, got)
		}
		if got := s.Estimate(1); got != 3 {
			t.Errorf("%s: Estimate(1) = %d, want 3", name, got)
		}
		// Key 2 is now off-table; its estimate equals Min.
		if got, min := s.Estimate(2), s.Min(); got != min {
			t.Errorf("%s: off-table Estimate(2) = %d, want Min=%d", name, got, min)
		}
	}
}

func TestCbSPaperFigure5Walkthrough(t *testing.T) {
	// Figure 5 of the paper: table [A0:9, B0:9, C0:3, D0:1].
	// ACT A0 -> A0:10. ACT E0 -> replaces D0 (min=1), E0:2.
	// RFM -> select A0 (max), decrement to min (=2).
	for name, s := range newSummaries(4) {
		seed := []struct {
			key uint32
			n   int
		}{{0xA0, 9}, {0xB0, 9}, {0xC0, 3}, {0xD0, 1}}
		for _, sd := range seed {
			for i := 0; i < sd.n; i++ {
				s.Observe(sd.key)
			}
		}
		s.Observe(0xA0)
		if got := s.Estimate(0xA0); got != 10 {
			t.Fatalf("%s: after ACT A0, Estimate = %d, want 10", name, got)
		}
		s.Observe(0xE0)
		if got := s.Estimate(0xE0); got != 2 {
			t.Fatalf("%s: after ACT E0, Estimate = %d, want 2", name, got)
		}
		if s.Estimate(0xD0) != s.Min() {
			t.Fatalf("%s: D0 should be evicted", name)
		}
		key, ok := s.DecrementMaxToMin()
		if !ok || key != 0xA0 {
			t.Fatalf("%s: RFM selected %#x, want A0", name, key)
		}
		if got, min := s.Estimate(0xA0), s.Min(); got != min {
			t.Fatalf("%s: after RFM, Estimate(A0) = %d, want Min = %d", name, got, min)
		}
		if _, maxCount, _ := s.Max(); maxCount != 9 {
			t.Fatalf("%s: new max should be 9 (B0), got %d", name, maxCount)
		}
	}
}

func TestCbSSumOfCountersEqualsStreamLength(t *testing.T) {
	// In pure CbS (no decrements) the counters sum to the stream length.
	for name, s := range newSummaries(8) {
		r := NewRand(42)
		const n = 5000
		for i := 0; i < n; i++ {
			s.Observe(uint32(r.Intn(64)))
		}
		var sum uint64
		var entries []Entry
		switch v := s.(type) {
		case *CbS:
			entries = v.Entries()
		case *SpaceSaving:
			entries = v.Entries()
		}
		for _, e := range entries {
			sum += e.Count
		}
		if sum != n {
			t.Errorf("%s: counter sum = %d, want %d", name, sum, n)
		}
	}
}

func TestCbSMinBound(t *testing.T) {
	// Min ≤ stream length / capacity — the classic space-saving bound.
	for name, s := range newSummaries(16) {
		r := NewRand(7)
		const n = 10000
		for i := 0; i < n; i++ {
			s.Observe(uint32(r.Intn(1000)))
		}
		if min := s.Min(); min > n/16 {
			t.Errorf("%s: Min = %d exceeds S/N = %d", name, min, n/16)
		}
	}
}

// inequalityHarness replays a stream against a Summary and exact counts,
// asserting inequalities (1) and (2) from Section III-C at every step.
func inequalityHarness(t *testing.T, name string, s Summary, keys []uint32) {
	t.Helper()
	actual := map[uint32]uint64{}
	for i, k := range keys {
		s.Observe(k)
		actual[k]++
		min := s.Min()
		for key, act := range actual {
			est := s.Estimate(key)
			if act > est {
				t.Fatalf("%s: step %d: inequality (1) violated for key %d: actual %d > estimated %d",
					name, i, key, act, est)
			}
			if est > act+min {
				t.Fatalf("%s: step %d: inequality (2) violated for key %d: estimated %d > actual %d + min %d",
					name, i, key, est, act, min)
			}
		}
	}
}

func TestCbSInequalitiesSmallStream(t *testing.T) {
	r := NewRand(1234)
	keys := make([]uint32, 2000)
	for i := range keys {
		keys[i] = uint32(r.Intn(40))
	}
	for name, s := range newSummaries(8) {
		inequalityHarness(t, name, s, keys)
	}
}

func TestCbSInequalitiesProperty(t *testing.T) {
	// Randomized property test over short streams with skewed key choice.
	f := func(seed uint64, capRaw uint8) bool {
		capacity := int(capRaw%15) + 1
		r := NewRand(seed)
		keys := make([]uint32, 300)
		for i := range keys {
			if r.Float64() < 0.7 {
				keys[i] = uint32(r.Intn(4)) // hot keys
			} else {
				keys[i] = uint32(r.Intn(1000)) + 10
			}
		}
		for _, s := range newSummaries(capacity) {
			actual := map[uint32]uint64{}
			for _, k := range keys {
				s.Observe(k)
				actual[k]++
				min := s.Min()
				for key, act := range actual {
					est := s.Estimate(key)
					if act > est || est > act+min {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCbSSafetyInvariantUnderRFMDecrements(t *testing.T) {
	// The invariant Mithril's proof needs: with greedy DecrementMaxToMin
	// treated as a refresh (actual count of the selected row resets to 0),
	// actual-since-refresh ≤ estimated still holds for every row.
	f := func(seed uint64) bool {
		r := NewRand(seed)
		for _, s := range newSummaries(8) {
			actual := map[uint32]uint64{}
			for i := 0; i < 1500; i++ {
				if i%64 == 63 { // periodic RFM
					if key, ok := s.DecrementMaxToMin(); ok {
						actual[key] = 0 // preventive refresh of its victims
					}
					continue
				}
				var k uint32
				if r.Float64() < 0.6 {
					k = uint32(r.Intn(3))
				} else {
					k = uint32(r.Intn(500)) + 10
				}
				s.Observe(k)
				actual[k]++
				for key, act := range actual {
					if act > s.Estimate(key) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCbSMinMonotoneNondecreasing(t *testing.T) {
	for name, s := range newSummaries(4) {
		r := NewRand(99)
		last := uint64(0)
		for i := 0; i < 3000; i++ {
			if i%50 == 49 {
				s.DecrementMaxToMin()
			} else {
				s.Observe(uint32(r.Intn(30)))
			}
			if min := s.Min(); min < last {
				t.Fatalf("%s: Min decreased from %d to %d at step %d", name, last, min, i)
			} else {
				last = min
			}
		}
	}
}

func TestCbSSpread(t *testing.T) {
	for name, s := range newSummaries(4) {
		if s.Spread() != 0 {
			t.Errorf("%s: empty table Spread should be 0", name)
		}
		for i := 0; i < 10; i++ {
			s.Observe(1)
		}
		s.Observe(2)
		s.Observe(3)
		s.Observe(4)
		// Table full: min = 1, max = 10.
		if got := s.Spread(); got != 9 {
			t.Errorf("%s: Spread = %d, want 9", name, got)
		}
		s.DecrementMaxToMin()
		if got := s.Spread(); got > 1 {
			t.Errorf("%s: Spread after RFM = %d, want ≤ 1", name, got)
		}
	}
}

func TestCbSReset(t *testing.T) {
	for name, s := range newSummaries(4) {
		for i := 0; i < 100; i++ {
			s.Observe(uint32(i % 6))
		}
		s.Reset()
		if s.Len() != 0 || s.Min() != 0 || s.Spread() != 0 {
			t.Errorf("%s: Reset did not clear the table", name)
		}
		if _, _, ok := s.Max(); ok {
			t.Errorf("%s: Max() on a reset table should report !ok", name)
		}
		s.Observe(42)
		if got := s.Estimate(42); got != 1 {
			t.Errorf("%s: post-reset Estimate = %d, want 1", name, got)
		}
	}
}

func TestCbSEmptyTableOperations(t *testing.T) {
	for name, s := range newSummaries(3) {
		if _, ok := s.DecrementMaxToMin(); ok {
			t.Errorf("%s: DecrementMaxToMin on empty table should report !ok", name)
		}
		if got := s.Estimate(5); got != 0 {
			t.Errorf("%s: Estimate on empty table = %d, want 0", name, got)
		}
	}
}

func TestCbSCapacityPanics(t *testing.T) {
	for _, build := range []func(){
		func() { NewCbS(0) },
		func() { NewSpaceSaving(0) },
		func() { NewCbS(-3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor with non-positive capacity should panic")
				}
			}()
			build()
		}()
	}
}

func TestImplementationsAgreeOnCountMultiset(t *testing.T) {
	// Tie-breaking may differ between implementations, but the multiset of
	// counter values, Min, Max, and Len must match after identical input.
	f := func(seed uint64, capRaw uint8) bool {
		capacity := int(capRaw%12) + 1
		a, b := NewCbS(capacity), NewSpaceSaving(capacity)
		r := NewRand(seed)
		for i := 0; i < 800; i++ {
			k := uint32(r.Intn(capacity * 3))
			a.Observe(k)
			b.Observe(k)
		}
		if a.Min() != b.Min() || a.Len() != b.Len() {
			return false
		}
		_, amax, aok := a.Max()
		_, bmax, bok := b.Max()
		if aok != bok || amax != bmax {
			return false
		}
		ae, be := a.Entries(), b.Entries()
		ac := make([]uint64, len(ae))
		bc := make([]uint64, len(be))
		for i := range ae {
			ac[i] = ae[i].Count
		}
		for i := range be {
			bc[i] = be[i].Count
		}
		sort.Slice(ac, func(i, j int) bool { return ac[i] < ac[j] })
		sort.Slice(bc, func(i, j int) bool { return bc[i] < bc[j] })
		if len(ac) != len(bc) {
			return false
		}
		for i := range ac {
			if ac[i] != bc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// evicter is the eviction-reporting extension both implementations provide
// for trackers that key side state to table residency (Graphene levels).
type evicter interface {
	ObserveEvict(key uint32) (uint32, bool)
	Contains(key uint32) bool
}

func TestObserveEvictReportsDisplacedKey(t *testing.T) {
	for name, s := range newSummaries(2) {
		e := s.(evicter)
		// Fills report no eviction.
		if _, ok := e.ObserveEvict(1); ok {
			t.Errorf("%s: insertion into free slot reported an eviction", name)
		}
		if _, ok := e.ObserveEvict(2); ok {
			t.Errorf("%s: insertion into free slot reported an eviction", name)
		}
		// Hits report no eviction.
		if _, ok := e.ObserveEvict(1); ok {
			t.Errorf("%s: on-table hit reported an eviction", name)
		}
		// A new key on a full table displaces the minimum entry (key 2).
		evicted, ok := e.ObserveEvict(3)
		if !ok || evicted != 2 {
			t.Errorf("%s: ObserveEvict(3) = (%d, %v), want (2, true)", name, evicted, ok)
		}
		if e.Contains(2) || !e.Contains(3) {
			t.Errorf("%s: table should hold 3 and not 2 after replacement", name)
		}
	}
}

func TestSpaceSavingStructuralInvariants(t *testing.T) {
	s := NewSpaceSaving(6)
	r := NewRand(2024)
	for i := 0; i < 5000; i++ {
		switch {
		case i%97 == 96:
			s.DecrementMaxToMin()
		case i%53 == 52:
			s.Reset()
		default:
			s.Observe(uint32(r.Intn(20)))
		}
		if err := s.checkInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestSpaceSavingDecrementWithFreeSlots(t *testing.T) {
	s := NewSpaceSaving(8)
	s.Observe(1)
	s.Observe(1)
	s.Observe(2)
	key, ok := s.DecrementMaxToMin()
	if !ok || key != 1 {
		t.Fatalf("selected %d, want 1", key)
	}
	// Min is 0 while free slots remain, so the max entry drops to 0.
	if got := s.Estimate(1); got != 0 {
		t.Fatalf("Estimate(1) after decrement = %d, want 0", got)
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
