package streaming

import (
	"testing"
	"testing/quick"
)

func TestCMSNeverUnderestimates(t *testing.T) {
	f := func(seed uint64) bool {
		s := NewCountMinSketch(4, 64)
		r := NewRand(seed)
		actual := map[uint32]uint64{}
		for i := 0; i < 3000; i++ {
			k := uint32(r.Intn(500))
			s.Observe(k)
			actual[k]++
		}
		for k, act := range actual {
			if s.Estimate(k) < act {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCMSExactForSparseKeys(t *testing.T) {
	// With few keys and a wide sketch, estimates should be exact.
	s := NewCountMinSketch(4, 4096)
	for i := 0; i < 100; i++ {
		s.Observe(1)
	}
	for i := 0; i < 7; i++ {
		s.Observe(2)
	}
	if got := s.Estimate(1); got != 100 {
		t.Errorf("Estimate(1) = %d, want 100", got)
	}
	if got := s.Estimate(2); got != 7 {
		t.Errorf("Estimate(2) = %d, want 7", got)
	}
	if got := s.Estimate(999); got != 0 {
		t.Errorf("Estimate(999) = %d, want 0", got)
	}
}

func TestCMSReset(t *testing.T) {
	s := NewCountMinSketch(2, 32)
	s.Observe(5)
	s.Reset()
	if got := s.Estimate(5); got != 0 {
		t.Fatalf("after Reset, Estimate = %d, want 0", got)
	}
}

func TestCMSGeometryAccessorsAndPanics(t *testing.T) {
	s := NewCountMinSketch(3, 17)
	if s.Rows() != 3 || s.Width() != 17 {
		t.Errorf("geometry = %dx%d, want 3x17", s.Rows(), s.Width())
	}
	for _, build := range []func(){
		func() { NewCountMinSketch(0, 8) },
		func() { NewCountMinSketch(2, 0) },
		func() { NewDualCBF(2, 8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry should panic")
				}
			}()
			build()
		}()
	}
}

func TestDualCBFRotationBoundsHistory(t *testing.T) {
	// After a full epoch of unrelated keys, an old key's estimate must have
	// been forgotten (that's the point of interleaving).
	d := NewDualCBF(4, 1024, 100)
	for i := 0; i < 50; i++ {
		d.Observe(7)
	}
	if est := d.Estimate(7); est < 50 {
		t.Fatalf("fresh estimate %d, want ≥ 50", est)
	}
	// Two half-epoch rotations with disjoint traffic clear key 7.
	for i := 0; i < 200; i++ {
		d.Observe(uint32(1000 + i))
	}
	if est := d.Estimate(7); est > 10 {
		t.Fatalf("stale estimate %d survived two rotations", est)
	}
}

func TestDualCBFNeverUnderestimatesRecentEpoch(t *testing.T) {
	// Within a half epoch, the active filter has seen every recent ACT, so
	// it cannot underestimate counts accumulated in that span.
	d := NewDualCBF(4, 2048, 1000)
	count := uint64(0)
	for i := 0; i < 400; i++ {
		d.Observe(3)
		count++
		if est := d.Estimate(3); est < count {
			t.Fatalf("step %d: estimate %d < true %d", i, est, count)
		}
	}
}

func TestDualCBFReset(t *testing.T) {
	d := NewDualCBF(2, 64, 10)
	for i := 0; i < 9; i++ {
		d.Observe(1)
	}
	d.Reset()
	if got := d.Estimate(1); got != 0 {
		t.Fatalf("after Reset, Estimate = %d, want 0", got)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Rand is not deterministic for equal seeds")
		}
	}
	if NewRand(0).Uint64() == 0 {
		t.Fatal("zero seed should be remapped, not produce the zero fixed point")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(77)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRand(1).Intn(0)
}
