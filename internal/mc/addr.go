// Package mc is the memory-controller model: physical address mapping,
// per-channel request queues, scheduling policies (FCFS, FR-FCFS, BLISS),
// page policies (open, closed, minimalist-open), the RAA counters and RFM
// issue logic of Figure 1, ARR injection for MC-side mitigations, and the
// throttling/skip hooks that BlockHammer and Mithril+ need.
package mc

import (
	"fmt"
	"math/bits"

	"mithril/internal/timing"
)

// Location is a fully decoded DRAM coordinate.
type Location struct {
	Channel int
	Rank    int
	Bank    int // bank index within the rank
	Row     int
	Column  int
	// GlobalBank is the device-wide bank index used by dram.Device.
	GlobalBank int
}

// AddressMapper translates between physical byte addresses and DRAM
// coordinates. The layout (from LSB): cache-line offset, channel, column,
// bank, rank, row — sequential cache lines interleave across channels, then
// walk a row, preserving row-buffer locality for streaming access while
// spreading load over banks at row granularity.
type AddressMapper struct {
	p timing.Params

	lineBits, chBits, colBits, bankBits, rankBits, rowBits int
}

// LineSize is the cache line (and DRAM access) granularity in bytes.
const LineSize = 64

// NewAddressMapper builds the mapper for a parameter set. Organization
// fields must be powers of two.
func NewAddressMapper(p timing.Params) *AddressMapper {
	m := &AddressMapper{p: p, lineBits: bits.TrailingZeros(uint(LineSize))}
	for _, f := range []struct {
		name string
		v    int
		dst  *int
	}{
		{"Channels", p.Channels, &m.chBits},
		{"ColumnsPerRow", p.ColumnsPerRow, &m.colBits},
		{"Banks", p.Banks, &m.bankBits},
		{"Ranks", p.Ranks, &m.rankBits},
		{"Rows", p.Rows, &m.rowBits},
	} {
		if f.v&(f.v-1) != 0 {
			panic(fmt.Sprintf("mc: %s = %d must be a power of two", f.name, f.v))
		}
		*f.dst = bits.TrailingZeros(uint(f.v))
	}
	return m
}

// Map decodes a physical byte address.
//
//mithril:hotpath
func (m *AddressMapper) Map(addr uint64) Location {
	a := addr >> uint(m.lineBits)
	ch := int(a & (1<<uint(m.chBits) - 1))
	a >>= uint(m.chBits)
	col := int(a & (1<<uint(m.colBits) - 1))
	a >>= uint(m.colBits)
	bank := int(a & (1<<uint(m.bankBits) - 1))
	a >>= uint(m.bankBits)
	rank := int(a & (1<<uint(m.rankBits) - 1))
	a >>= uint(m.rankBits)
	row := int(a & (1<<uint(m.rowBits) - 1))
	loc := Location{Channel: ch, Rank: rank, Bank: bank, Row: row, Column: col}
	loc.GlobalBank = (ch*m.p.Ranks+rank)*m.p.Banks + bank
	return loc
}

// Compose builds the physical byte address for a coordinate (the inverse of
// Map); attack generators use it to aim at specific rows.
func (m *AddressMapper) Compose(loc Location) uint64 {
	a := uint64(loc.Row)
	a = a<<uint(m.rankBits) | uint64(loc.Rank)
	a = a<<uint(m.bankBits) | uint64(loc.Bank)
	a = a<<uint(m.colBits) | uint64(loc.Column)
	a = a<<uint(m.chBits) | uint64(loc.Channel)
	return a << uint(m.lineBits)
}

// RowBytes is the number of bytes covered by one row across one channel.
func (m *AddressMapper) RowBytes() int { return m.p.ColumnsPerRow * LineSize }

// AddressSpace is the total number of bytes the mapper covers; addresses are
// taken modulo this size.
func (m *AddressMapper) AddressSpace() uint64 {
	total := m.lineBits + m.chBits + m.colBits + m.bankBits + m.rankBits + m.rowBits
	return 1 << uint(total)
}

// Params returns the mapper's parameter set.
func (m *AddressMapper) Params() timing.Params { return m.p }
