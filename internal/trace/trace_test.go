package trace

import (
	"testing"

	"mithril/internal/mc"
	"mithril/internal/timing"
)

func TestStreamSequentialAndWraps(t *testing.T) {
	s := NewStream("s", 1000, 256, 5, 0)
	a := s.Next()
	b := s.Next()
	if a.Addr != 1000 || b.Addr != 1064 {
		t.Fatalf("addresses %d, %d — want sequential lines from base", a.Addr, b.Addr)
	}
	if a.Gap != 5 {
		t.Fatalf("gap = %d, want 5", a.Gap)
	}
	s.Next()
	s.Next()
	if back := s.Next(); back.Addr != 1000 {
		t.Fatalf("wrap produced %d, want base 1000", back.Addr)
	}
}

func TestStreamWriteEvery(t *testing.T) {
	s := NewStream("s", 0, 1<<20, 0, 3)
	writes := 0
	for i := 0; i < 30; i++ {
		if s.Next().Write {
			writes++
		}
	}
	if writes != 10 {
		t.Fatalf("writes = %d, want 10 (every 3rd)", writes)
	}
}

func TestRandomStaysInFootprintAndIsDeterministic(t *testing.T) {
	a := NewRandom("r", 4096, 1<<16, 7, 0.5, 42)
	b := NewRandom("r", 4096, 1<<16, 7, 0.5, 42)
	for i := 0; i < 1000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatal("same seed must give identical streams")
		}
		if x.Addr < 4096 || x.Addr >= 4096+1<<16 {
			t.Fatalf("address %d outside footprint", x.Addr)
		}
		if x.Addr%64 != 0 {
			t.Fatalf("address %d not line aligned", x.Addr)
		}
	}
}

func TestPointerChaseSerializes(t *testing.T) {
	p := NewPointerChase("pc", 0, 1<<20, 10, 1)
	if !p.Next().Serialize {
		t.Fatal("pointer chase must serialize")
	}
}

func TestStridedPattern(t *testing.T) {
	s := NewStrided("st", 0, 1<<20, 8, 3)
	a, b := s.Next(), s.Next()
	if b.Addr-a.Addr != 8*64 {
		t.Fatalf("stride = %d bytes, want 512", b.Addr-a.Addr)
	}
}

func TestGatherScatterAlternates(t *testing.T) {
	g := NewGatherScatter("gs", 0, 1<<20, 4, 9)
	seq := 0
	for i := 0; i < 20; i += 2 {
		a := g.Next() // stream side
		_ = g.Next()  // random side
		if i > 0 && a.Addr < 1<<19 {
			seq++
		}
	}
	if seq == 0 {
		t.Fatal("stream side should walk the first half sequentially")
	}
}

func TestWorkloadsFreshReplaysIdentically(t *testing.T) {
	for _, wc := range NormalWorkloads(16, 7) {
		g1 := wc.Workload.Fresh()
		g2 := wc.Workload.Fresh()
		if len(g1) != 16 || len(g2) != 16 {
			t.Fatalf("%s: %d generators, want 16", wc.Workload.Name, len(g1))
		}
		for c := 0; c < 16; c++ {
			for i := 0; i < 50; i++ {
				if g1[c].Next() != g2[c].Next() {
					t.Fatalf("%s core %d: Fresh() streams diverge", wc.Workload.Name, c)
				}
			}
		}
	}
}

func TestMultiProgrammedFootprintsDisjoint(t *testing.T) {
	gens := MixHigh(16, 1).Fresh()
	for c, g := range gens {
		lo := uint64(c) << 28
		hi := lo + (1 << 28)
		for i := 0; i < 200; i++ {
			a := g.Next().Addr
			if a < lo || a >= hi {
				t.Fatalf("core %d touched %d outside its region [%d, %d)", c, a, lo, hi)
			}
		}
	}
}

func TestRowSeriesAndActivationSeries(t *testing.T) {
	p := timing.DDR5()
	mapper := mc.NewAddressMapper(p)
	// Stream across one row: row changes rarely → few activations.
	g := NewStream("lbm", 0, 1<<24, 0, 0)
	samples := RowSeries(g, mapper, 2000)
	if len(samples) != 2000 {
		t.Fatalf("samples = %d", len(samples))
	}
	acts := ActivationSeries(samples, p.TotalBanks())
	if len(acts) == 0 || len(acts) >= len(samples)/4 {
		t.Fatalf("activations = %d of %d accesses; streaming should be row-local", len(acts), len(samples))
	}
	distinct, maxPerRow := ConcentrationStats(samples)
	if distinct == 0 || maxPerRow < 32 {
		t.Fatalf("concentration: %d rows, max %d per row — sweep should concentrate", distinct, maxPerRow)
	}
}

func TestFigure8SweepConcentratesInSmallWindows(t *testing.T) {
	// The paper's Figure 8 claim: in a small window the sweep touches few
	// rows with ~rowsize/linesize accesses each; over a large window the
	// footprint is much wider.
	p := timing.DDR5()
	mapper := mc.NewAddressMapper(p)
	g := NewStream("lbm", 0, 128<<20, 12, 4)
	small := RowSeries(g, mapper, 256)
	dSmall, maxSmall := ConcentrationStats(small)
	g2 := NewStream("lbm", 0, 128<<20, 12, 4)
	large := RowSeries(g2, mapper, 100000)
	dLarge, _ := ConcentrationStats(large)
	if dSmall > 8 {
		t.Errorf("small window touched %d rows, want concentration (≤8)", dSmall)
	}
	if maxSmall < 64 {
		t.Errorf("small-window per-row accesses = %d, want ≥64 (128 lines per 8KB row over 2 channels)", maxSmall)
	}
	if dLarge < 50*dSmall {
		t.Errorf("large window rows = %d, small = %d; sweep should widen the footprint", dLarge, dSmall)
	}
}

func TestStreamPanicsOnTinyFootprint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tiny footprint should panic")
		}
	}()
	NewStream("s", 0, 1, 0, 0)
}
