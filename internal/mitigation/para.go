package mitigation

import (
	"math"

	"mithril/internal/analysis"
	"mithril/internal/mc"
	"mithril/internal/streaming"
	"mithril/internal/timing"
)

// PARA (Kim et al., ISCA 2014): on every ACT, with probability p, refresh
// one random neighbour of the activated row. Stateless (no counters); the
// protection is probabilistic. p is derived from the 1e-15 consumer
// reliability target the paper uses:
//
//	(1 − p/2)^FlipTH ≤ target / banks  ⇒  p = 2·(1 − (target/banks)^(1/FlipTH))
//
// (a victim is refreshed by each adjacent ACT with probability p/2).
type PARA struct {
	opt  Options
	p    float64
	rng  *streaming.Rand
	vbuf [1]uint32 // reusable single-victim buffer (mc.Scheme contract)
}

var _ mc.Scheme = (*PARA)(nil)

func init() {
	Register("para", func(opt Options) mc.Scheme { return NewPARA(opt) })
	Register("parfm", func(opt Options) mc.Scheme { return NewPARFM(opt) })
}

// NewPARA configures PARA for the option's FlipTH.
func NewPARA(opt Options) *PARA {
	opt.normalize()
	target := 1e-15 / float64(analysis.DefaultAttackableBanks)
	prob := 2 * (1 - math.Pow(target, 1/float64(opt.FlipTH)))
	if prob > 1 {
		prob = 1
	}
	return &PARA{opt: opt, p: prob, rng: streaming.NewRand(opt.Seed)}
}

// Probability exposes the configured refresh probability.
func (s *PARA) Probability() float64 { return s.p }

// Name implements mc.Scheme.
func (s *PARA) Name() string { return "para" }

// RFMCompatible implements mc.Scheme.
func (s *PARA) RFMCompatible() bool { return false }

// RFMTH implements mc.Scheme.
func (s *PARA) RFMTH() int { return 0 }

// OnActivate implements mc.Scheme: coin flip per ACT.
//
//mithril:hotpath
func (s *PARA) OnActivate(bank int, row uint32, core int, now timing.PicoSeconds) []uint32 {
	if s.rng.Float64() >= s.p {
		return nil
	}
	// Refresh one random neighbour within the blast radius.
	d := uint32(s.rng.Intn(s.opt.BlastRadius) + 1)
	if s.rng.Float64() < 0.5 && row >= d {
		s.vbuf[0] = row - d
	} else {
		s.vbuf[0] = row + d
	}
	return s.vbuf[:]
}

// PreACTDelay implements mc.Scheme.
//
//mithril:hotpath
func (s *PARA) PreACTDelay(int, uint32, int, timing.PicoSeconds) timing.PicoSeconds { return 0 }

// OnRFM implements mc.Scheme.
//
//mithril:hotpath
func (s *PARA) OnRFM(int, timing.PicoSeconds) []uint32 { return nil }

// SkipRFM implements mc.Scheme.
//
//mithril:hotpath
func (s *PARA) SkipRFM(int) bool { return false }

// NextDeadline implements mc.Scheme: PARA is purely reactive — sampling happens inside OnActivate.
//
//mithril:hotpath
func (s *PARA) NextDeadline(timing.PicoSeconds) timing.PicoSeconds { return timing.Never }

// PARFM (Section III-E): the RFM-compatible probabilistic scheme. The DRAM
// samples one aggressor uniformly among the last RFMTH activations at every
// RFM command and refreshes its victims — every RFM executes a refresh
// (no adaptive skip), which is where its energy overhead comes from.
type PARFM struct {
	opt    Options
	rfmTH  int
	recent [][]uint32 // per global bank: ring of the last RFMTH ACT'd rows
	pos    []int      // per global bank: ring write position
	vbuf   []uint32   // reusable victim buffer (mc.Scheme contract)
	rng    *streaming.Rand
}

var _ mc.Scheme = (*PARFM)(nil)

// NewPARFM configures PARFM with the RFMTH required for a 1e-15 system
// failure probability at the option's FlipTH (Appendix C).
func NewPARFM(opt Options) *PARFM {
	opt.normalize()
	rfmTH := opt.RFMTH
	if rfmTH <= 0 {
		r, ok := analysis.ParfmRequiredRFMTH(opt.Timing, opt.FlipTH, analysis.DefaultAttackableBanks, 1e-15, nil)
		if !ok {
			r = 1
		}
		rfmTH = r
	}
	return &PARFM{
		opt:    opt,
		rfmTH:  rfmTH,
		recent: make([][]uint32, opt.banks()),
		pos:    make([]int, opt.banks()),
		rng:    streaming.NewRand(opt.Seed + 1),
	}
}

// Name implements mc.Scheme.
func (s *PARFM) Name() string { return "parfm" }

// RFMCompatible implements mc.Scheme.
func (s *PARFM) RFMCompatible() bool { return true }

// RFMTH implements mc.Scheme.
func (s *PARFM) RFMTH() int { return s.rfmTH }

// OnActivate implements mc.Scheme: record the row in the bank's ring.
//
//mithril:hotpath
func (s *PARFM) OnActivate(bank int, row uint32, core int, now timing.PicoSeconds) []uint32 {
	ring := s.recent[bank]
	if ring == nil {
		ring = make([]uint32, 0, s.rfmTH) //mithril:allow hotpathalloc one-time lazy ring construction on a bank's first ACT
	}
	if len(ring) < s.rfmTH {
		ring = append(ring, row)
	} else {
		ring[s.pos[bank]%s.rfmTH] = row
	}
	s.pos[bank]++
	s.recent[bank] = ring
	return nil
}

// PreACTDelay implements mc.Scheme.
//
//mithril:hotpath
func (s *PARFM) PreACTDelay(int, uint32, int, timing.PicoSeconds) timing.PicoSeconds { return 0 }

// OnRFM implements mc.Scheme: sample one of the last RFMTH ACTs.
//
//mithril:hotpath
func (s *PARFM) OnRFM(bank int, now timing.PicoSeconds) []uint32 {
	ring := s.recent[bank]
	if len(ring) == 0 {
		return nil
	}
	aggressor := ring[s.rng.Intn(len(ring))]
	s.vbuf = appendVictims(s.vbuf, aggressor, s.opt.BlastRadius)
	return s.vbuf
}

// SkipRFM implements mc.Scheme.
//
//mithril:hotpath
func (s *PARFM) SkipRFM(int) bool { return false }

// NextDeadline implements mc.Scheme: PARFM is purely reactive — sampling happens inside OnActivate/OnRFM.
//
//mithril:hotpath
func (s *PARFM) NextDeadline(timing.PicoSeconds) timing.PicoSeconds { return timing.Never }
