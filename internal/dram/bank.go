// Package dram is the DDR5 device model: banks with open-row state and
// JEDEC timing enforcement (tRC/tRCD/tRP/tRAS/tFAW/tRRD), rank-level
// constraints, auto-refresh sweeps over row groups, and the maintenance
// windows (REF, RFM, ARR) that RowHammer mitigations execute in. Every bank
// carries an rh.Checker so any simulation doubles as a safety experiment.
package dram

import (
	"fmt"

	"mithril/internal/timing"
)

// BankStats counts the commands a bank executed.
type BankStats struct {
	ACTs            uint64
	Reads           uint64
	Writes          uint64
	RowHits         uint64
	RowMisses       uint64 // ACT on a closed bank
	RowConflicts    uint64 // PRE+ACT on an open bank
	AutoRefreshes   uint64 // REF windows absorbed
	RFMs            uint64 // RFM windows absorbed
	PreventiveRows  uint64 // victim rows refreshed by mitigations
	MaintenanceTime timing.PicoSeconds
}

// Bank models one DRAM bank's timing state machine.
type Bank struct {
	p       timing.Params
	openRow int // -1 when precharged

	nextACT   timing.PicoSeconds // earliest start of the next ACT (tRC rule)
	preReady  timing.PicoSeconds // earliest PRE after the last ACT (tRAS rule)
	colReady  timing.PicoSeconds // earliest next column command (burst occupancy)
	busyUntil timing.PicoSeconds // REF/RFM/ARR maintenance occupancy

	stats BankStats
}

// NewBank returns a precharged idle bank.
func NewBank(p timing.Params) *Bank {
	return &Bank{p: p, openRow: -1}
}

// Reset returns the bank to its just-constructed state (precharged, idle,
// zeroed counters). Used by the device pool between simulations.
func (b *Bank) Reset() {
	*b = Bank{p: b.p, openRow: -1}
}

// NextDeadline reports the earliest instant at or after now at which this
// bank can accept a new command: now when it is idle, otherwise the end of
// the maintenance window occupying it. Row-cycle (tRC) and rank-level
// (tRRD/tFAW) constraints are not folded in — they delay an ACT's start
// inside Access rather than gating whether a command may be attempted, so
// they never create an event the calendar must wake for.
//
//mithril:hotpath
func (b *Bank) NextDeadline(now timing.PicoSeconds) timing.PicoSeconds {
	if b.busyUntil > now {
		return b.busyUntil
	}
	return now
}

// OpenRow reports the currently open row, or -1 when precharged.
//
//mithril:hotpath
func (b *Bank) OpenRow() int { return b.openRow }

// Stats returns a copy of the bank counters.
func (b *Bank) Stats() BankStats { return b.stats }

// BusyUntil reports the end of any maintenance window in progress.
//
//mithril:hotpath
func (b *Bank) BusyUntil() timing.PicoSeconds { return b.busyUntil }

// Available reports whether the bank is out of maintenance at now.
//
//mithril:hotpath
func (b *Bank) Available(now timing.PicoSeconds) bool { return now >= b.busyUntil }

// ActivateReadyAt reports the earliest time an ACT for row could start,
// including an implicit precharge when another row is open.
//
//mithril:hotpath
func (b *Bank) ActivateReadyAt(now timing.PicoSeconds, rankACTReady timing.PicoSeconds) timing.PicoSeconds {
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	if rankACTReady > start {
		start = rankACTReady
	}
	if b.openRow >= 0 {
		// PRE first: earliest at preReady, then tRP.
		pre := start
		if b.preReady > pre {
			pre = b.preReady
		}
		start = pre + b.p.TRP
	}
	if b.nextACT > start {
		start = b.nextACT
	}
	return start
}

// Access serves one column access to row, performing the implicit
// PRE/ACT sequence as needed, and returns (activated, dataReadyAt): whether
// an ACT was issued (the RowHammer-relevant event) and when the data burst
// completes. rankACTReady carries the rank-level tRRD/tFAW constraint; the
// caller must report issued ACTs back to the rank tracker.
//
//mithril:hotpath
func (b *Bank) Access(now timing.PicoSeconds, row int, write bool, rankACTReady timing.PicoSeconds) (activated bool, actAt, dataReadyAt timing.PicoSeconds) {
	if row < 0 || row >= b.p.Rows {
		panic(fmt.Sprintf("dram: access to row %d outside bank of %d rows", row, b.p.Rows))
	}
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	if b.openRow == row {
		// Row hit: column command only.
		col := start
		if b.colReady > col {
			col = b.colReady
		}
		b.colReady = col + b.p.TBURST
		b.stats.RowHits++
		if write {
			b.stats.Writes++
		} else {
			b.stats.Reads++
		}
		return false, 0, col + b.p.TCL + b.p.TBURST
	}
	if b.openRow >= 0 {
		b.stats.RowConflicts++
	} else {
		b.stats.RowMisses++
	}
	act := b.ActivateReadyAt(now, rankACTReady)
	b.openRow = row
	b.nextACT = act + b.p.TRC
	b.preReady = act + b.p.TRAS
	col := act + b.p.TRCD
	if b.colReady > col {
		col = b.colReady
	}
	b.colReady = col + b.p.TBURST
	b.stats.ACTs++
	if write {
		b.stats.Writes++
	} else {
		b.stats.Reads++
	}
	return true, act, col + b.p.TCL + b.p.TBURST
}

// Precharge closes the open row (page-policy decision). It is a no-op on a
// precharged bank.
//
//mithril:hotpath
func (b *Bank) Precharge(now timing.PicoSeconds) {
	if b.openRow < 0 {
		return
	}
	pre := now
	if b.preReady > pre {
		pre = b.preReady
	}
	b.openRow = -1
	if next := pre + b.p.TRP; next > b.nextACT {
		b.nextACT = next
	}
}

// StartMaintenance occupies the bank for a REF/RFM/ARR window of the given
// duration starting no earlier than now (and after any in-flight activity),
// closing the open row. It returns the window's end time.
//
//mithril:hotpath
func (b *Bank) StartMaintenance(now timing.PicoSeconds, dur timing.PicoSeconds, kind MaintenanceKind) timing.PicoSeconds {
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	if b.colReady > start {
		start = b.colReady
	}
	b.openRow = -1
	b.busyUntil = start + dur
	if b.busyUntil > b.nextACT {
		b.nextACT = b.busyUntil
	}
	b.stats.MaintenanceTime += dur
	switch kind {
	case MaintREF:
		b.stats.AutoRefreshes++
	case MaintRFM:
		b.stats.RFMs++
	}
	return b.busyUntil
}

// NotePreventiveRows accounts victim rows refreshed inside a maintenance
// window.
//
//mithril:hotpath
func (b *Bank) NotePreventiveRows(n int) { b.stats.PreventiveRows += uint64(n) }

// MaintenanceKind labels a maintenance window for statistics.
type MaintenanceKind int

// Maintenance window kinds.
const (
	MaintREF MaintenanceKind = iota
	MaintRFM
	MaintARR
)

// rankTracker enforces the rank-level tRRD and tFAW activation constraints.
type rankTracker struct {
	p        timing.Params
	lastACT  timing.PicoSeconds
	last4ACT [4]timing.PicoSeconds // ring buffer of recent ACT times
	idx      int
	primed   int // ACTs recorded so far (tFAW applies from the 4th on)
}

// reset returns the tracker to its just-constructed state.
func (r *rankTracker) reset() {
	*r = rankTracker{p: r.p}
}

// ACTReadyAt reports the earliest time a new ACT may start on this rank.
//
//mithril:hotpath
func (r *rankTracker) ACTReadyAt() timing.PicoSeconds {
	if r.primed == 0 {
		return 0
	}
	ready := r.lastACT + r.p.TRRD
	if r.primed >= 4 {
		if faw := r.last4ACT[r.idx] + r.p.TFAW; faw > ready {
			ready = faw
		}
	}
	return ready
}

// RecordACT registers an issued ACT.
//
//mithril:hotpath
func (r *rankTracker) RecordACT(at timing.PicoSeconds) {
	r.lastACT = at
	r.last4ACT[r.idx] = at
	r.idx = (r.idx + 1) % 4
	if r.primed < 4 {
		r.primed++
	}
}
