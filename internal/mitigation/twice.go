package mitigation

import (
	"mithril/internal/mc"
	"mithril/internal/streaming"
	"mithril/internal/timing"
)

// TWiCe (Lee et al., ISCA 2019): lossy counting on the DIMM buffer chip.
// Rows whose conservative estimate reaches FlipTH/4 get their victims
// refreshed through a feedback-augmented ARR and are dropped from the
// table; cold entries are pruned by the lossy-counting bucket mechanism.
// The live table is several times larger than Graphene's for the same
// guarantee (Table IV) — the algorithmic inefficiency Figure 6 quantifies.
type TWiCe struct {
	opt       Options
	threshold uint64
	tables    []*streaming.LossyCounting // per global bank, built on first ACT
	width     int
	vbuf      []uint32 // reusable victim buffer (mc.Scheme contract)
	lastReset timing.PicoSeconds
	arrCount  uint64
}

var _ mc.Scheme = (*TWiCe)(nil)

func init() {
	Register("twice", func(opt Options) mc.Scheme { return NewTWiCe(opt) })
}

// NewTWiCe configures the tracker: trigger threshold FlipTH/4 and a lossy
// bucket width of 8·S/FlipTH observations, so the per-window undercount
// Δ ≤ S/width = FlipTH/8 stays below the trigger threshold (no spurious
// ARRs) while true aggressors (≥ FlipTH/4 ACTs) can never be pruned.
// Tables reset every tREFW — the coarse equivalent of TWiCe's per-entry
// life-stage pruning, which keys counts to the refresh window.
func NewTWiCe(opt Options) *TWiCe {
	opt.normalize()
	th := uint64(opt.FlipTH / 4)
	if th == 0 {
		th = 1
	}
	s := opt.Timing.ACTsPerREFW()
	width := 8 * s / opt.FlipTH
	if width < 1 {
		width = 1
	}
	return &TWiCe{
		opt:       opt,
		threshold: th,
		width:     width,
		tables:    make([]*streaming.LossyCounting, opt.banks()),
	}
}

// Threshold exposes the ARR trigger level.
func (s *TWiCe) Threshold() uint64 { return s.threshold }

// MaxLiveEntries reports the high-water mark across banks — the hardware
// table provisioning (Table IV's area driver).
func (s *TWiCe) MaxLiveEntries() int {
	max := 0
	for _, t := range s.tables {
		if t != nil && t.MaxLive() > max {
			max = t.MaxLive()
		}
	}
	return max
}

// Name implements mc.Scheme.
func (s *TWiCe) Name() string { return "twice" }

// RFMCompatible implements mc.Scheme.
func (s *TWiCe) RFMCompatible() bool { return false }

// RFMTH implements mc.Scheme.
func (s *TWiCe) RFMTH() int { return 0 }

// OnActivate implements mc.Scheme.
//
//mithril:hotpath
func (s *TWiCe) OnActivate(bank int, row uint32, core int, now timing.PicoSeconds) []uint32 {
	if now-s.lastReset >= s.opt.Timing.TREFW {
		for _, t := range s.tables {
			if t != nil {
				t.Reset() //mithril:allow hotpathalloc once-per-tREFW table reset, off the per-ACT path
			}
		}
		s.lastReset = now
	}
	t := s.tables[bank]
	if t == nil {
		t = streaming.NewLossyCounting(s.width) //mithril:allow hotpathalloc one-time lazy construction on a bank's first ACT
		s.tables[bank] = t
	}
	t.Observe(row)
	if t.Estimate(row) < s.threshold {
		return nil
	}
	// Trigger: refresh victims, drop the entry (its count restarts).
	t.Drop(row)
	s.arrCount++
	s.vbuf = appendVictims(s.vbuf, row, s.opt.BlastRadius)
	return s.vbuf
}

// PreACTDelay implements mc.Scheme.
//
//mithril:hotpath
func (s *TWiCe) PreACTDelay(int, uint32, int, timing.PicoSeconds) timing.PicoSeconds { return 0 }

// OnRFM implements mc.Scheme.
//
//mithril:hotpath
func (s *TWiCe) OnRFM(int, timing.PicoSeconds) []uint32 { return nil }

// SkipRFM implements mc.Scheme.
//
//mithril:hotpath
func (s *TWiCe) SkipRFM(int) bool { return false }

// NextDeadline implements mc.Scheme: TWiCe is purely reactive — the per-bank tables react to ACTs only.
//
//mithril:hotpath
func (s *TWiCe) NextDeadline(timing.PicoSeconds) timing.PicoSeconds { return timing.Never }
