package mitigation

import (
	"mithril/internal/analysis"
	"mithril/internal/mc"
	"mithril/internal/streaming"
	"mithril/internal/timing"
)

// BlockHammer (Yağlıkçı et al., HPCA 2021): dual time-interleaved counting
// Bloom filters per bank estimate per-row ACT counts; rows whose estimate
// reaches the blacklist threshold NBL are throttled so their ACT rate can
// never reach FlipTH within tCBF:
//
//	tDelay = (tCBF − NBL·tRC) / (FlipTH − NBL)
//
// A thread-level escalation (RowBlocker-style) additionally throttles cores
// that keep hammering blacklisted rows. Because the filters alias, an
// attacker who activates rows sharing CBF slots with a benign hot row can
// blacklist the *benign* row — the Figure 10(c) performance attack, exposed
// here through the CollidingRows oracle.
type BlockHammer struct {
	opt    Options
	nbl    uint64
	tDelay timing.PicoSeconds
	// Per-bank dense state: filters are built on a bank's first ACT;
	// nextACT[bank] is a per-row release-time array allocated on the
	// bank's first blacklist event (only hammered banks pay for it),
	// replacing the former (bank,row) composite-key map on the hot path.
	filters  []*streaming.DualCBF
	nextACT  [][]timing.PicoSeconds
	coreBad  []int                // per core: blacklisted-ACT attempts (grown on demand)
	coreTill []timing.PicoSeconds // per core: thread throttle release

	cbfCounters int
	cbfHashes   int

	blacklisted uint64 // blacklist events (stats)
}

var _ mc.Scheme = (*BlockHammer)(nil)

func init() {
	Register("blockhammer", func(opt Options) mc.Scheme { return NewBlockHammer(opt) })
}

// blockHammerThreadThreshold is the number of blacklisted-row activation
// attempts after which a core is treated as an attacker thread.
const blockHammerThreadThreshold = 64

// NewBlockHammer configures the scheme from the paper's per-FlipTH
// (CBF size, NBL) pairs (Section VI-A). The delay denominator uses
// FlipTH/2 − NBL: a double-sided victim absorbs disturbance from two
// aggressors, so each blacklisted row must stay below FlipTH/2 ACTs per
// tCBF window (the paper notes NBL must be lower than FlipTH/2 for exactly
// this reason).
func NewBlockHammer(opt Options) *BlockHammer {
	opt.normalize()
	counters, nbl := analysis.BlockHammerConfigFor(opt.FlipTH)
	tCBF := opt.Timing.TREFW
	den := opt.FlipTH/2 - nbl
	if den < 1 {
		den = 1
	}
	delay := (tCBF - timing.PicoSeconds(nbl)*opt.Timing.TRC) / timing.PicoSeconds(den)
	if delay < 0 {
		delay = 0
	}
	return &BlockHammer{
		opt:         opt,
		nbl:         uint64(nbl),
		tDelay:      delay,
		filters:     make([]*streaming.DualCBF, opt.banks()),
		nextACT:     make([][]timing.PicoSeconds, opt.banks()),
		cbfCounters: counters,
		cbfHashes:   4,
	}
}

// NBL exposes the blacklist threshold.
func (s *BlockHammer) NBL() uint64 { return s.nbl }

// TDelay exposes the per-ACT throttle delay for blacklisted rows.
func (s *BlockHammer) TDelay() timing.PicoSeconds { return s.tDelay }

// BlacklistEvents reports how many ACTs hit a blacklisted row.
func (s *BlockHammer) BlacklistEvents() uint64 { return s.blacklisted }

// Name implements mc.Scheme.
func (s *BlockHammer) Name() string { return "blockhammer" }

// RFMCompatible implements mc.Scheme: BlockHammer is MC-side but issues no
// RFM commands; the paper groups it with the interface-compatible schemes
// because it needs no DRAM change at all.
func (s *BlockHammer) RFMCompatible() bool { return false }

// RFMTH implements mc.Scheme.
func (s *BlockHammer) RFMTH() int { return 0 }

//mithril:hotpath
func (s *BlockHammer) filter(bank int) *streaming.DualCBF {
	f := s.filters[bank]
	if f == nil {
		// Half-epoch tCBF/2 expressed in per-bank ACT capacity.
		half := s.opt.Timing.ACTsPerREFW() / 2
		if half < 1 {
			half = 1
		}
		f = streaming.NewDualCBF(s.cbfHashes, s.cbfCounters, half) //mithril:allow hotpathalloc one-time lazy construction on a bank's first ACT
		s.filters[bank] = f
	}
	return f
}

// OnActivate implements mc.Scheme: feed the filters, arm the row throttle
// when the estimate crosses NBL, and escalate repeat-offender threads.
//
//mithril:hotpath
func (s *BlockHammer) OnActivate(bank int, row uint32, core int, now timing.PicoSeconds) []uint32 {
	f := s.filter(bank)
	f.Observe(row)
	if f.Estimate(row) >= s.nbl {
		s.blacklisted++
		na := s.nextACT[bank]
		if na == nil {
			na = make([]timing.PicoSeconds, s.opt.Timing.Rows) //mithril:allow hotpathalloc one-time per-bank array on the first blacklist event
			s.nextACT[bank] = na
		}
		na[row] = now + s.tDelay
		if core >= 0 {
			for core >= len(s.coreBad) {
				s.coreBad = append(s.coreBad, 0)
				s.coreTill = append(s.coreTill, 0)
			}
			s.coreBad[core]++
			if s.coreBad[core] >= blockHammerThreadThreshold {
				s.coreTill[core] = now + s.tDelay
			}
		}
	}
	return nil
}

// PreACTDelay implements mc.Scheme: blacklisted rows (and escalated
// threads) wait out their release times.
//
//mithril:hotpath
func (s *BlockHammer) PreACTDelay(bank int, row uint32, core int, now timing.PicoSeconds) timing.PicoSeconds {
	var until timing.PicoSeconds
	if na := s.nextACT[bank]; na != nil {
		until = na[row]
	}
	if core >= 0 && core < len(s.coreTill) {
		if t := s.coreTill[core]; t > until {
			until = t
		}
	}
	if until > now {
		return until
	}
	return 0
}

// OnRFM implements mc.Scheme.
//
//mithril:hotpath
func (s *BlockHammer) OnRFM(int, timing.PicoSeconds) []uint32 { return nil }

// SkipRFM implements mc.Scheme.
//
//mithril:hotpath
func (s *BlockHammer) SkipRFM(int) bool { return false }

// NextDeadline implements mc.Scheme: BlockHammer is purely reactive — throttling is expressed through PreACTDelay's per-request release times, which the controller already tracks.
//
//mithril:hotpath
func (s *BlockHammer) NextDeadline(timing.PicoSeconds) timing.PicoSeconds { return timing.Never }

// CollidingRows implements the attack.Throttler oracle: for each of the
// target row's hash slots, find another row of the bank hashing to the same
// slot in that filter row. Activating the returned rows NBL times inflates
// every slot of the target, blacklisting it without touching it.
func (s *BlockHammer) CollidingRows(bank int, target uint32, max int) []uint32 {
	f := s.filter(bank)
	_ = f
	rows := make([]uint32, 0, max)
	// Reconstruct slot indices with the same hashing the sketch uses.
	targetSlots := s.slots(target)
	for h := 0; h < s.cbfHashes && len(rows) < max; h++ {
		for candidate := uint32(0); candidate < uint32(s.opt.Timing.Rows); candidate++ {
			if candidate == target || absDiff(candidate, target) <= uint32(s.opt.BlastRadius) {
				continue // don't hand the attacker rows that hammer the target directly
			}
			if s.slots(candidate)[h] == targetSlots[h] {
				rows = append(rows, candidate)
				break
			}
		}
	}
	return rows
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

// slots mirrors streaming.CountMinSketch's hash layout (same seeds).
func (s *BlockHammer) slots(row uint32) []uint64 {
	out := make([]uint64, s.cbfHashes)
	for i := 0; i < s.cbfHashes; i++ {
		out[i] = streaming.SlotIndex(row, i, s.cbfCounters)
	}
	return out
}
