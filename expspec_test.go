package mithril

// Round-trip tests for the declarative experiment layer: every shipped
// spec must parse and validate, and running the shipped figure10 spec
// through the generic expspec executor must be byte-identical to the
// Figure10Data wrapper (the same guarantee `mithrilsim run
// specs/figure10.quick.json` gives against `mithrilsim figure10`, held at
// a unit-test-sized scale).

import (
	"strings"
	"testing"

	"mithril/internal/expspec"
	"mithril/internal/stats"
)

// TestShippedSpecsValidate parses the whole embedded spec inventory; a
// broken shipped spec should fail `go test`, not the first CLI user.
func TestShippedSpecsValidate(t *testing.T) {
	specs, err := expspec.LoadAll(SpecsFS(), "specs")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 14 {
		t.Fatalf("only %d shipped specs found", len(specs))
	}
	// Every simulation figure ships quick and full variants, the CI
	// golden gate needs the golden variants, and the scenario sampler
	// exercises the attacks axis and the trace-file workload.
	want := []string{
		"figure7.quick", "figure7.full",
		"figure9.quick", "figure9.full", "figure9.golden",
		"figure10.quick", "figure10.full", "figure10.golden",
		"figure11.quick", "figure11.full",
		"safety.quick", "safety.full", "safety.golden",
		"scenario.quick",
	}
	byName := map[string]*expspec.Spec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	for _, name := range want {
		if byName[name] == nil {
			t.Errorf("shipped spec %q missing", name)
		}
	}
	// The golden variants must actually run at the golden scale the
	// testdata files were generated at.
	for _, name := range []string{"figure9.golden", "figure10.golden", "safety.golden"} {
		sp := byName[name]
		if sp == nil {
			continue
		}
		sc, err := sp.Scale.Resolve()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if g := goldenScale(); sc.Cores != g.Cores || sc.InstrPerCore != g.InstrPerCore || sc.TimeScale != g.TimeScale {
			t.Errorf("%s resolves to %+v, want golden scale %+v", name, sc, g)
		}
	}
}

// roundTripScale is small enough for a unit test yet runs the full
// comparison machinery (normal geomean, multi-sided attack, adversarial
// workload construction).
func roundTripScale() Scale {
	return Scale{Cores: 4, InstrPerCore: 2_000, FlipTHs: []int{6250}, Seed: 1, TimeScale: 8}
}

// TestScenarioSpecRoundTrip runs the shipped scenario sampler — the spec
// that exercises the attacks axis and the trace:<path> workload — at a
// unit-test scale and emits it in every machine format, pinning the
// acceptance path `mithrilsim run scenario.quick -format=...` exercises.
func TestScenarioSpecRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sp, err := expspec.LoadFS(SpecsFS(), "specs/scenario.quick.json")
	if err != nil {
		t.Fatal(err)
	}
	sc := roundTripScale()
	res, err := sp.RunAt(sc)
	if err != nil {
		t.Fatal(err)
	}
	cells := sp.Expand(sc)
	if len(res.Perf) != len(cells) {
		t.Fatalf("emitted %d rows for %d cells", len(res.Perf), len(cells))
	}
	// Per scheme: the trace-replay workload row, then the attack rows
	// under their generators' display names.
	wantWorkloads := []string{"trace:testdata/sample_workload.trace", "multi-sided-8", "decoy-4"}
	for i, p := range res.Perf {
		if want := wantWorkloads[i%len(wantWorkloads)]; p.Workload != want {
			t.Errorf("row %d workload = %q, want %q", i, p.Workload, want)
		}
		if p.RelativePerformance <= 0 {
			t.Errorf("row %d has no measured performance: %+v", i, p)
		}
	}
	for _, format := range []string{expspec.FormatTable, expspec.FormatCSV, expspec.FormatJSON} {
		var b strings.Builder
		if err := res.Emit(&b, format); err != nil {
			t.Fatalf("emit %s: %v", format, err)
		}
		if !strings.Contains(b.String(), "multi-sided-8") {
			t.Errorf("%s output lacks the attack row:\n%s", format, b.String())
		}
	}
}

func TestSpecDrivenFigure10RoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sc := roundTripScale()
	sp, err := expspec.LoadFS(SpecsFS(), "specs/figure10.quick.json")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.RunAt(sc)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Figure10Data(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Golden(), formatPerfPoints(pts); got != want {
		t.Errorf("spec-driven output diverges from Figure10Data:\n%s", stats.DiffLines(want, got))
	}
	// The spec grid names what actually ran, in order.
	cells := sp.Expand(sc)
	if len(cells) != len(res.Perf) {
		t.Fatalf("Expand = %d cells, run emitted %d rows", len(cells), len(res.Perf))
	}
	for i, c := range cells {
		if res.Perf[i].Scheme != c.Scheme || res.Perf[i].FlipTH != c.FlipTH ||
			res.Perf[i].Workload != c.Workload {
			t.Errorf("row %d = %+v, want cell %+v", i, res.Perf[i], c)
		}
	}
	// Machine formats stay available on the same result.
	var b strings.Builder
	if err := res.Emit(&b, expspec.FormatCSV); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != len(pts)+1 {
		t.Errorf("CSV emitted %d lines, want %d rows + header", lines, len(pts))
	}
}
