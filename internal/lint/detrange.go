package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetRange is the static form of the "golden figures are byte-identical"
// contract: in output-bearing packages (result emission, spec expansion,
// registries, the CLIs), ranging over a map is only deterministic when the
// iteration feeds a slice that is sorted before anything observable
// happens — so a range over a map-typed value is flagged unless a sort
// call (sort.* or slices.Sort*) follows it in the same function body, or
// the line carries a "//mithril:allow detrange <reason>" suppression
// (order-independent aggregation such as summing values).
var DetRange = &Analyzer{
	Name: "detrange",
	Doc:  "disallow unordered map iteration in output-bearing packages",
	Run:  runDetRange,
}

// detRangePkgs are the output-bearing module packages in scope. Packages
// outside the module (the test fixtures) are always in scope.
var detRangePkgs = map[string]bool{
	"mithril":                      true,
	"mithril/internal/expspec":     true,
	"mithril/internal/resultstore": true,
	"mithril/internal/stats":       true,
	"mithril/internal/trace":       true,
	"mithril/internal/mitigation":  true,
	"mithril/internal/attack":      true,
	"mithril/cmd/mithrilsim":       true,
	"mithril/cmd/benchgate":        true,
	"mithril/cmd/mithrilvet":       true,
}

func inDetRangeScope(pkgPath string) bool {
	if !strings.HasPrefix(pkgPath, "mithril") {
		return true
	}
	return detRangePkgs[pkgPath]
}

func runDetRange(pass *Pass) error {
	if !inDetRangeScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDetRange(pass, fd.Body)
		}
	}
	return nil
}

func checkDetRange(pass *Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	var sortPositions []int
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[node.X]
			if ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					ranges = append(ranges, node)
				}
			}
		case *ast.CallExpr:
			if isSortCall(pass, node) {
				sortPositions = append(sortPositions, int(node.Pos()))
			}
		}
		return true
	})
	for _, r := range ranges {
		sortedAfter := false
		for _, p := range sortPositions {
			if p > int(r.End()) {
				sortedAfter = true
				break
			}
		}
		if !sortedAfter {
			pass.Reportf(r.Pos(), "unordered range over map (sort the keys before emitting, or collect and sort after)")
		}
	}
}

// isSortCall recognises sort.* and slices.Sort* calls — the markers that a
// collection loop's output is ordered before use.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}
