package distrib

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"mithril/internal/expspec"
	"mithril/internal/resultstore"
	"mithril/internal/trace"
)

// RunAt executes the spec's full grid across the worker pool and returns
// the assembled Result in deterministic Expand order — the distributed
// twin of Spec.RunAtContext, byte-identical to it.
func (c *Coordinator) RunAt(ctx context.Context, sp *expspec.Spec, sc expspec.Scale, opts *expspec.ExecOptions) (*expspec.Result, error) {
	rows := make([]expspec.Row, 0, 64)
	for row, err := range c.StreamAt(ctx, sp, sc, opts) {
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Index < rows[j].Index })
	return sp.NewResult(sc, rows)
}

// StreamAt executes the spec's full grid across the worker pool, yielding
// rows in completion order exactly like Spec.StreamAt: the sequence
// terminates with a single non-nil error on failure, breaking out cancels
// everything in flight, and no goroutine survives the range ending.
func (c *Coordinator) StreamAt(ctx context.Context, sp *expspec.Spec, sc expspec.Scale, opts *expspec.ExecOptions) iter.Seq2[expspec.Row, error] {
	seq, err := c.Stream(ctx, sp, sc, opts)
	if err != nil {
		return func(yield func(expspec.Row, error) bool) { yield(expspec.Row{}, err) }
	}
	return seq
}

// Stream is StreamAt with construction errors — invalid spec, unkeyable
// cells — returned before the first yield, mirroring Spec.StreamRowsAt:
// a streaming server can reject the request before committing to a
// response header.
func (c *Coordinator) Stream(ctx context.Context, sp *expspec.Spec, sc expspec.Scale, opts *expspec.ExecOptions) (iter.Seq2[expspec.Row, error], error) {
	st, err := c.prepare(sp, sc, opts)
	if err != nil {
		return nil, err
	}
	return st.stream(ctx), nil
}

// execState is one distributed execution's precomputed view: the spec on
// the wire, the expanded grid, the store binding, and the local/remote
// row partition.
type execState struct {
	c        *Coordinator
	sp       *expspec.Spec
	sc       expspec.Scale
	opts     *expspec.ExecOptions
	specJSON json.RawMessage
	cells    []expspec.Cell
	stamp    string

	store     resultstore.Store
	keys      []resultstore.Key
	cacheable []bool

	// local rows execute on the coordinator (trace-replay workloads read
	// coordinator-side files workers deliberately refuse); remote rows
	// are the dispatch pool.
	local  []int
	remote []int
}

func (c *Coordinator) prepare(sp *expspec.Spec, sc expspec.Scale, opts *expspec.ExecOptions) (*execState, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	specJSON, err := json.Marshal(sp)
	if err != nil {
		return nil, err
	}
	st := &execState{
		c: c, sp: sp, sc: sc, opts: opts,
		specJSON: specJSON,
		cells:    sp.Expand(sc),
		stamp:    expspec.StoreStamp(),
	}
	if opts != nil && opts.Store != nil {
		st.store = opts.Store
		_, keys, cacheable, err := sp.StoreKeys(sc)
		if err != nil {
			return nil, err
		}
		st.keys, st.cacheable = keys, cacheable
	}
	for i, cell := range st.cells {
		if strings.HasPrefix(cell.Workload, trace.TracePrefix) {
			st.local = append(st.local, i)
		} else {
			st.remote = append(st.remote, i)
		}
	}
	return st, nil
}

// event is the merge loop's single message type; kind selects which
// fields apply. All coordination state lives in the loop goroutine — no
// shared memory, no locks — so every transition is a plain channel
// message.
type event struct {
	kind      eventKind
	row       expspec.Row // evRow
	worker    int         // evShardDone, evReady
	unserved  []int       // evShardDone: shard rows never received
	err       error       // evShardDone, evLocalDone
	permanent bool        // evShardDone: deterministic failure, do not retry
}

type eventKind int

const (
	evRow eventKind = iota
	evShardDone
	evLocalDone
	evReady
)

// stream is the merge loop. Shard goroutines POST row subsets and feed
// decoded rows back; failures requeue their unserved remainder and park
// the worker behind an exponential backoff; the store is probed before
// every (re)dispatch so rows that ever reached it are never simulated
// twice. The loop owns every slice it touches — goroutines communicate
// only through the events channel.
func (st *execState) stream(ctx context.Context) iter.Seq2[expspec.Row, error] {
	return func(yield func(expspec.Row, error) bool) {
		total := len(st.cells)
		if total == 0 {
			return
		}
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		events := make(chan event)
		var wg sync.WaitGroup
		// Hold the group open until the exit path releases it, so the
		// closer goroutine cannot observe a transient zero count while
		// shards are still being spawned.
		wg.Add(1)
		wgDone := make(chan struct{})
		go func() { wg.Wait(); close(wgDone) }()
		// However the consumer leaves, cancel everything in flight, drain
		// the events channel so no sender blocks, and wait for all
		// goroutines to exit — streams do not leak.
		defer func() {
			cancel()
			wg.Done()
			for {
				select {
				case <-events:
				case <-wgDone:
					return
				}
			}
		}()

		nw := len(st.c.workers)
		busy := make([]bool, nw) // shard in flight, or parked in backoff
		dropped := make([]bool, nw)
		failures := make([]int, nw)
		pool := append([]int(nil), st.remote...)
		done := make([]bool, total)
		completed := 0
		var lastErr error

		deliver := func(row expspec.Row) bool {
			if done[row.Index] {
				return true
			}
			done[row.Index] = true
			completed++
			if st.opts != nil && st.opts.Progress != nil {
				st.opts.Progress(completed, total)
			}
			return yield(row, nil)
		}

		if len(st.local) > 0 {
			seq, err := st.sp.StreamRowsAt(cctx, st.sc, st.local, st.localOpts())
			if err != nil {
				yield(expspec.Row{}, err)
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				err := func() error {
					for row, e := range seq {
						if e != nil {
							return e
						}
						select {
						case events <- event{kind: evRow, row: row}:
						case <-cctx.Done():
							return cctx.Err()
						}
					}
					return nil
				}()
				select {
				case events <- event{kind: evLocalDone, err: err}:
				case <-cctx.Done():
				}
			}()
		}

		allDropped := func() bool {
			for w := range dropped {
				if !dropped[w] {
					return false
				}
			}
			return true
		}
		liveWorkers := func() int {
			live := 0
			for w := range dropped {
				if !dropped[w] {
					live++
				}
			}
			return live
		}
		// serveFromStore drains store hits out of the pool before any
		// dispatch: on first entry this is sweep resumption, on requeue it
		// is the dedup that keeps a re-dispatched row from re-simulating
		// when the failed worker managed to write it before dying.
		serveFromStore := func() bool {
			if st.store == nil || len(pool) == 0 {
				return true
			}
			rest := pool[:0]
			for _, i := range pool {
				if row, ok := st.storeHit(i); ok {
					if !deliver(row) {
						return false
					}
				} else {
					rest = append(rest, i)
				}
			}
			pool = rest
			return true
		}
		// dispatch carves shards for idle workers. Shards are fractions of
		// the remaining pool (not 1/N of the grid): workers come back for
		// more as they finish, so a slow or freshly-recovered worker
		// naturally takes less.
		dispatch := func() {
			for w := 0; w < nw && len(pool) > 0; w++ {
				if dropped[w] || busy[w] {
					continue
				}
				size := len(pool) / (2 * liveWorkers())
				if size < 1 {
					size = 1
				}
				shard := append([]int(nil), pool[:size]...)
				pool = pool[size:]
				busy[w] = true
				wg.Add(1)
				go st.runShard(cctx, &wg, events, w, shard)
			}
		}

		for completed < total {
			if err := ctx.Err(); err != nil {
				yield(expspec.Row{}, err)
				return
			}
			if !serveFromStore() {
				return
			}
			if len(pool) > 0 && allDropped() {
				err := fmt.Errorf("distrib: all %d workers dropped with %d of %d rows undelivered", nw, total-completed, total)
				if lastErr != nil {
					err = fmt.Errorf("%s (last failure: %w)", err, lastErr)
				}
				yield(expspec.Row{}, err)
				return
			}
			dispatch()
			select {
			case ev := <-events:
				switch ev.kind {
				case evRow:
					if err := st.writeBack(ev.row); err != nil {
						yield(expspec.Row{}, err)
						return
					}
					if !deliver(ev.row) {
						return
					}
				case evShardDone:
					busy[ev.worker] = false
					if ev.err == nil {
						failures[ev.worker] = 0
						continue
					}
					lastErr = ev.err
					pool = append(pool, ev.unserved...)
					if ev.permanent {
						yield(expspec.Row{}, ev.err)
						return
					}
					failures[ev.worker]++
					if failures[ev.worker] >= st.c.maxFailures {
						dropped[ev.worker] = true
						continue
					}
					// Park the worker behind the backoff; evReady returns
					// it to the dispatchable set.
					busy[ev.worker] = true
					delay := st.c.backoff << (failures[ev.worker] - 1)
					w := ev.worker
					wg.Add(1)
					go func() {
						defer wg.Done()
						t := time.NewTimer(delay)
						defer t.Stop()
						select {
						case <-t.C:
						case <-cctx.Done():
							return
						}
						select {
						case events <- event{kind: evReady, worker: w}:
						case <-cctx.Done():
						}
					}()
				case evLocalDone:
					// Local failures are deterministic executor errors
					// (the same spec would fail under StreamAt) — no retry.
					if ev.err != nil {
						yield(expspec.Row{}, ev.err)
						return
					}
				case evReady:
					busy[ev.worker] = false
				}
			case <-ctx.Done():
				yield(expspec.Row{}, ctx.Err())
				return
			}
		}
	}
}

// localOpts strips the Progress hook from the caller's options: the
// coordinator reports progress over the merged stream itself, so the
// local sub-execution must not double-report against subset-local totals.
func (st *execState) localOpts() *expspec.ExecOptions {
	if st.opts == nil {
		return nil
	}
	return &expspec.ExecOptions{Baselines: st.opts.Baselines, Store: st.opts.Store}
}

// storeHit serves grid row i from the coordinator's store. Any defect —
// missing record, stale stamp, undecodable payload — is a miss, never an
// error, exactly as in the local executor.
func (st *execState) storeHit(i int) (expspec.Row, bool) {
	if st.store == nil || !st.cacheable[i] {
		return expspec.Row{}, false
	}
	rec, ok := st.store.Get(st.keys[i])
	if !ok || rec.Stamp != st.stamp {
		return expspec.Row{}, false
	}
	row := expspec.Row{Index: i, Cell: st.cells[i]}
	if !expspec.DecodeRowPayload(st.sp.Kind, rec.Payload, &row) {
		return expspec.Row{}, false
	}
	row.Cached = true
	return row, true
}

// writeBack persists a worker-delivered row. A write failure is loud, as
// in the local executor: rows the operator asked to persist are being
// lost, and the next failover would silently re-simulate them.
func (st *execState) writeBack(row expspec.Row) error {
	if st.store == nil || row.Index >= len(st.cacheable) || !st.cacheable[row.Index] {
		return nil
	}
	// Already persisted under the current stamp — by a worker sharing the
	// store, or by the execution this one resumed — so don't rewrite it;
	// a store sees each row Put exactly once.
	if rec, ok := st.store.Get(st.keys[row.Index]); ok && rec.Stamp == st.stamp {
		return nil
	}
	payload, err := expspec.EncodeRowPayload(row)
	if err != nil {
		return err
	}
	return st.store.Put(resultstore.Record{Key: st.keys[row.Index], Stamp: st.stamp, Payload: payload})
}

// runShard executes one shard POST against worker w, forwarding each
// decoded row as an event, then terminates with an evShardDone carrying
// every row it never received — the exact retry pool.
func (st *execState) runShard(cctx context.Context, wg *sync.WaitGroup, events chan<- event, w int, rows []int) {
	defer wg.Done()
	received := make(map[int]bool, len(rows))
	permanent, err := st.postShard(cctx, events, w, rows, received)
	var unserved []int
	for _, i := range rows {
		if !received[i] {
			unserved = append(unserved, i)
		}
	}
	if err == nil && len(unserved) > 0 {
		err = fmt.Errorf("distrib: worker %s completed a shard leaving %d of %d rows unserved",
			st.c.workers[w], len(unserved), len(rows))
	}
	select {
	case events <- event{kind: evShardDone, worker: w, unserved: unserved, err: err, permanent: permanent}:
	case <-cctx.Done():
	}
}

// postShard issues the HTTP request and decodes the NDJSON stream,
// marking every forwarded row in received. permanent reports whether the
// failure is deterministic (every worker would fail identically).
func (st *execState) postShard(cctx context.Context, events chan<- event, w int, rows []int, received map[int]bool) (permanent bool, err error) {
	reqBody, err := json.Marshal(ShardRequest{
		Spec: st.specJSON, Scale: ToWire(st.sc), Rows: rows, Stamp: st.stamp, Grid: len(st.cells),
	})
	if err != nil {
		return true, err
	}
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, st.c.workers[w]+RunPath, bytes.NewReader(reqBody))
	if err != nil {
		return true, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := st.c.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeHTTPError(st.c.workers[w], resp)
	}
	sawSummary := false
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for scanner.Scan() {
		line := bytes.TrimSpace(scanner.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec ShardRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return false, fmt.Errorf("distrib: worker %s sent an undecodable record: %w", st.c.workers[w], err)
		}
		switch {
		case rec.Error != nil:
			return permanentCode(rec.Error.Code), fmt.Errorf("distrib: worker %s: %w", st.c.workers[w], rec.Error)
		case rec.Summary != nil:
			sawSummary = true
		default:
			row, err := DecodeShardRow(st.sp, len(st.cells), rec)
			if err != nil {
				return false, err
			}
			row.Cell = st.cells[row.Index]
			select {
			case events <- event{kind: evRow, row: row}:
				received[row.Index] = true
			case <-cctx.Done():
				return false, cctx.Err()
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return false, fmt.Errorf("distrib: worker %s stream: %w", st.c.workers[w], err)
	}
	if !sawSummary {
		return false, fmt.Errorf("distrib: worker %s stream ended without a summary record (connection cut mid-shard)", st.c.workers[w])
	}
	return false, nil
}

// decodeHTTPError turns a non-200 response into an error, honouring the
// /v1 JSON envelope when present. Without a decodable envelope, any
// 4xx is permanent (the request is malformed the same way everywhere)
// and everything else is retryable.
func decodeHTTPError(worker string, resp *http.Response) (permanent bool, err error) {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var env struct {
		Error *APIError `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error != nil {
		return permanentCode(env.Error.Code), fmt.Errorf("distrib: worker %s: %w", worker, env.Error)
	}
	return resp.StatusCode >= 400 && resp.StatusCode < 500,
		fmt.Errorf("distrib: worker %s returned HTTP %d: %s", worker, resp.StatusCode, bytes.TrimSpace(body))
}

// permanentCode reports whether an API error code names a deterministic
// failure: another worker would reject the identical shard identically,
// so retrying only burns the failure budget.
func permanentCode(code string) bool {
	switch code {
	case CodeBadRequest, CodeConflict, CodeRunFailed:
		return true
	}
	return false
}
