package mithril

import (
	"mithril/internal/expspec"
	"mithril/internal/resultstore"
)

// ResultStore is the content-addressed row store an Engine consults
// before simulating a grid cell (see WithResultStore): Get/Has are exact
// lookups by content key, Put persists a completed row, Scan walks the
// live records. Implementations must be safe for concurrent use; the
// shipped ones are NewMemResultStore (per-process) and OpenResultStore
// (durable, resumable across runs).
type ResultStore = resultstore.Store

// DiskResultStore is the durable ResultStore: append-only NDJSON
// segments under one directory, an in-memory index (lookups never touch
// the disk), corruption-tolerant reload, and atomic segment finalization
// on Close. See the README's "Result store & resumable sweeps" for the
// on-disk layout and maintenance workflow.
type DiskResultStore = resultstore.Disk

// ResultStoreStats summarizes a disk store (DiskResultStore.Stats).
type ResultStoreStats = resultstore.Stats

// OpenResultStore opens (creating if needed) a durable result store
// rooted at dir. Crash recovery is automatic: a segment left open by a
// killed process is adopted and its intact rows are served; torn lines
// are skipped and re-simulated. Close the store to finalize the active
// segment.
func OpenResultStore(dir string) (*DiskResultStore, error) {
	return resultstore.Open(dir)
}

// NewMemResultStore returns an in-memory ResultStore: rows persist for
// the process lifetime only. Useful in tests and as a request-level
// cache when no store directory is configured.
func NewMemResultStore() ResultStore {
	return resultstore.NewMem()
}

// ResultStoreSchemaVersion is the stored-row schema generation embedded
// in every row key; stored rows from other generations never match.
const ResultStoreSchemaVersion = resultstore.SchemaVersion

// ResultStoreStamp returns the version stamp rows are currently keyed
// under: the schema version plus a fingerprint of the mitigation-scheme
// registry. Registering a scheme (including out-of-tree) changes it, so
// stale stored rows self-invalidate. The CLI's `mithrilsim version` and
// the serve /healthz endpoint expose it for operators comparing stores
// across builds.
func ResultStoreStamp() string {
	return expspec.StoreStamp()
}

// ResultStoreFingerprint condenses a sorted name inventory into the
// short registry fingerprint ResultStoreStamp embeds.
func ResultStoreFingerprint(names []string) string {
	return resultstore.Fingerprint(names)
}
