package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// remoteCatalog is the GET /v1/catalog document: the fleet's registry
// inventory plus the stamp it fingerprints to.
type remoteCatalog struct {
	Schemes   []string       `json:"schemes"`
	Workloads []catalogEntry `json:"workloads"`
	Attacks   []catalogEntry `json:"attacks"`
	Stamp     string         `json:"stamp"`
}

type catalogEntry struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
}

// fetchCatalog reads a remote mithrilsim's /v1/catalog, so a CLI can
// introspect what a fleet actually has registered (which may differ
// from this binary's registries — that is the point of asking).
func fetchCatalog(ctx context.Context, server string) (*remoteCatalog, error) {
	base := strings.TrimRight(strings.TrimSpace(server), "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/catalog", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fetching %s/v1/catalog: %w", base, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("reading %s/v1/catalog: %w", base, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/v1/catalog: HTTP %d: %s", base, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var cat remoteCatalog
	if err := json.Unmarshal(body, &cat); err != nil {
		return nil, fmt.Errorf("decoding %s/v1/catalog: %w", base, err)
	}
	return &cat, nil
}
