package core

import (
	"testing"

	"mithril/internal/analysis"
	"mithril/internal/rh"
	"mithril/internal/streaming"
	"mithril/internal/timing"
)

func TestConfigValidate(t *testing.T) {
	good := Config{NEntry: 64, RFMTH: 64}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{NEntry: 0, RFMTH: 64},
		{NEntry: 64, RFMTH: 0},
		{NEntry: 64, RFMTH: 64, AdTH: -1},
		{NEntry: 64, RFMTH: 64, BlastRadius: -2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config should panic")
		}
	}()
	New(Config{})
}

func TestMithrilGreedySelection(t *testing.T) {
	for _, scan := range []bool{false, true} {
		m := New(Config{NEntry: 4, RFMTH: 16, UseScanTable: scan})
		for i := 0; i < 9; i++ {
			m.OnActivate(0xA0)
			m.OnActivate(0xB0)
		}
		m.OnActivate(0xA0)
		m.OnActivate(0xC0)
		aggressor, victims, refreshed := m.OnRFM()
		if !refreshed {
			t.Fatalf("scan=%v: RFM should refresh", scan)
		}
		if aggressor != 0xA0 {
			t.Fatalf("scan=%v: selected %#x, want A0 (the max)", scan, aggressor)
		}
		if len(victims) != 2 || victims[0] != 0x9F || victims[1] != 0xA1 {
			t.Fatalf("scan=%v: victims = %v, want [9F A1]", scan, victims)
		}
		// Next RFM must pick B0: A0 was decremented to the minimum.
		aggressor, _, _ = m.OnRFM()
		if aggressor != 0xB0 {
			t.Fatalf("scan=%v: second RFM selected %#x, want B0", scan, aggressor)
		}
	}
}

func TestAdaptiveRefreshSkipsQuietTable(t *testing.T) {
	m := New(Config{NEntry: 8, RFMTH: 16, AdTH: 100})
	// Uniform traffic: spread stays tiny.
	for i := 0; i < 400; i++ {
		m.OnActivate(uint32(i % 8))
	}
	if _, _, refreshed := m.OnRFM(); refreshed {
		t.Fatal("quiet table should be skipped under adaptive policy")
	}
	if m.Stats().AdaptiveSkips != 1 {
		t.Fatalf("skip not counted: %+v", m.Stats())
	}
	// Attack traffic: one row dominates, spread grows past AdTH.
	for i := 0; i < 200; i++ {
		m.OnActivate(42)
	}
	aggressor, _, refreshed := m.OnRFM()
	if !refreshed || aggressor != 42 {
		t.Fatalf("attack should trigger refresh of row 42, got (%d, %v)", aggressor, refreshed)
	}
}

func TestSkipFlagMithrilPlus(t *testing.T) {
	m := New(Config{NEntry: 8, RFMTH: 16, AdTH: 100})
	if !m.SkipFlag() {
		t.Fatal("fresh table should flag skip")
	}
	for i := 0; i < 300; i++ {
		m.OnActivate(7)
	}
	if m.SkipFlag() {
		t.Fatal("hammered table must clear the skip flag")
	}
	// Without AdTH the flag is never set (plain Mithril).
	m2 := New(Config{NEntry: 8, RFMTH: 16})
	if m2.SkipFlag() {
		t.Fatal("AdTH=0 module should never flag skip")
	}
}

func TestVictimRows(t *testing.T) {
	if v := VictimRows(100, 1); len(v) != 2 || v[0] != 99 || v[1] != 101 {
		t.Errorf("radius 1 victims = %v", v)
	}
	v := VictimRows(100, 3)
	want := []uint32{99, 101, 98, 102, 97, 103}
	if len(v) != 6 {
		t.Fatalf("radius 3 victims = %v, want 6 rows", v)
	}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("radius 3 victims = %v, want %v", v, want)
		}
	}
	// Clamped at the bottom of the address space.
	if v := VictimRows(0, 2); len(v) != 2 || v[0] != 1 || v[1] != 2 {
		t.Errorf("clamped victims = %v, want [1 2]", v)
	}
}

func TestStatsAccounting(t *testing.T) {
	m := New(Config{NEntry: 4, RFMTH: 8, BlastRadius: 3})
	for i := 0; i < 100; i++ {
		m.OnActivate(50)
	}
	_, victims, refreshed := m.OnRFM()
	if !refreshed || len(victims) != 6 {
		t.Fatalf("radius-3 refresh should hit 6 victims, got %v", victims)
	}
	s := m.Stats()
	if s.ACTs != 100 || s.RFMs != 1 || s.PreventiveRefreshes != 1 || s.VictimRowsRefreshed != 6 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxSpreadSeen == 0 {
		t.Fatal("spread high-water mark not tracked")
	}
	m.Reset()
	if m.Stats() != (Stats{}) || m.Spread() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// runTheoremHarness replays an adversarial ACT stream with an RFM command
// every RFMTH activations and reports the maximum actual ACT count any row
// accumulated since its last selection — the quantity Theorem 1/2 bound.
func runTheoremHarness(cfg Config, next func(i int) uint32, streamLen int) uint64 {
	m := New(cfg)
	acts := map[uint32]uint64{}
	var maxSeen uint64
	sinceRFM := 0
	for i := 0; i < streamLen; i++ {
		row := next(i)
		m.OnActivate(row)
		acts[row]++
		if acts[row] > maxSeen {
			maxSeen = acts[row]
		}
		sinceRFM++
		if sinceRFM == cfg.RFMTH {
			sinceRFM = 0
			if aggressor, _, refreshed := m.OnRFM(); refreshed {
				acts[aggressor] = 0
			}
		}
	}
	return maxSeen
}

func TestTheorem1BoundHoldsEmpirically(t *testing.T) {
	// E11: adversarial streams must never push any row's unrefreshed ACT
	// count past M = BoundM(N, RFMTH) within a tREFW-sized stream.
	p := timing.DDR5()
	cfgs := []Config{
		{NEntry: 32, RFMTH: 32},
		{NEntry: 64, RFMTH: 64},
	}
	for _, cfg := range cfgs {
		streamLen := p.ACTsPerREFW()
		if streamLen > 250000 {
			streamLen = 250000 // sub-window stream: bound holds a fortiori
		}
		bound := analysis.BoundM(p, cfg.NEntry, cfg.RFMTH)
		patterns := map[string]func(i int) uint32{
			// Classic CbS adversary: N+1 rows in rotation force constant
			// eviction and estimate inflation.
			"rotateN+1": func(i int) uint32 { return uint32(i % (cfg.NEntry + 1)) },
			// Two-row double-sided hammer.
			"doubleSided": func(i int) uint32 { return uint32(100 + 2*(i%2)) },
			// Half hammer, half dispersed noise.
			"mixed": func(i int) uint32 {
				if i%2 == 0 {
					return 7
				}
				return uint32(1000 + i%1024)
			},
			// Many-sided attack (32 aggressors, TRRespass-style).
			"multiSided": func(i int) uint32 { return uint32(500 + (i%32)*2) },
		}
		for name, pattern := range patterns {
			got := runTheoremHarness(cfg, pattern, streamLen)
			if float64(got) > bound {
				t.Errorf("cfg %+v pattern %s: max unrefreshed ACTs %d exceeds M=%.0f",
					cfg, name, got, bound)
			}
		}
	}
}

func TestTheorem2BoundHoldsWithAdaptiveRefresh(t *testing.T) {
	p := timing.DDR5()
	cfg := Config{NEntry: 64, RFMTH: 64, AdTH: 200}
	bound := analysis.BoundMPrime(p, cfg.NEntry, cfg.RFMTH, cfg.AdTH)
	streamLen := 250000
	patterns := map[string]func(i int) uint32{
		"rotateN+1":   func(i int) uint32 { return uint32(i % (cfg.NEntry + 1)) },
		"doubleSided": func(i int) uint32 { return uint32(100 + 2*(i%2)) },
		// Pattern crafted to sit near AdTH: bursts that barely trip the
		// adaptive threshold, interleaved with uniform cool-down.
		"adaptiveEdge": func(i int) uint32 {
			if (i/256)%2 == 0 {
				return 7
			}
			return uint32(i % 64)
		},
	}
	for name, pattern := range patterns {
		got := runTheoremHarness(cfg, pattern, streamLen)
		if float64(got) > bound {
			t.Errorf("pattern %s: max unrefreshed ACTs %d exceeds M'=%.0f", name, got, bound)
		}
	}
}

func TestEndToEndNoBitFlipsUnderConfiguredMithril(t *testing.T) {
	// Configure Mithril for FlipTH=3125 per Theorem 1, hammer it with a
	// double-sided attack for a tREFW-equivalent stream, and assert the
	// fault model records no flip.
	p := timing.DDR5()
	const flipTH = 3125
	ac, ok := analysis.Configure(p, flipTH, 32, 0, analysis.DoubleSidedBlast)
	if !ok {
		t.Fatal("configuration should be feasible")
	}
	cfg := Config{NEntry: ac.NEntry, RFMTH: ac.RFMTH}
	m := New(cfg)
	checker := rh.NewChecker(4096, flipTH, nil)
	sinceRFM := 0
	streamLen := p.ACTsPerREFW()
	if streamLen > 300000 {
		streamLen = 300000
	}
	for i := 0; i < streamLen; i++ {
		row := uint32(2000 + 2*(i%2)) // aggressors 2000, 2002 share victim 2001
		m.OnActivate(row)
		checker.OnActivate(int(row), timing.PicoSeconds(i))
		sinceRFM++
		if sinceRFM == cfg.RFMTH {
			sinceRFM = 0
			if _, victims, refreshed := m.OnRFM(); refreshed {
				for _, v := range victims {
					checker.OnRefresh(int(v))
				}
			}
		}
	}
	report := checker.Report()
	if !report.Safe() {
		t.Fatalf("Mithril failed to protect: %v", report)
	}
	if max, _ := checker.MaxDisturbance(); max >= flipTH {
		t.Fatalf("disturbance reached FlipTH: %v", max)
	}
}

func TestUnprotectedBankFlipsUnderSameAttack(t *testing.T) {
	// Control experiment: the same attack with no mitigation flips quickly.
	const flipTH = 3125
	checker := rh.NewChecker(4096, flipTH, nil)
	for i := 0; i < 4*flipTH; i++ {
		checker.OnActivate(2000+2*(i%2), timing.PicoSeconds(i))
	}
	if checker.Report().Safe() {
		t.Fatal("unprotected bank should flip — fault model too weak")
	}
}

func TestScanAndStreamSummaryTablesAgreeInModule(t *testing.T) {
	// RFM tie-breaking may select different same-count entries, so the two
	// table implementations can diverge key-wise; the module-level
	// guarantees that must agree are the event counts and the theorem
	// bound (checked per-table in TestTheorem1BoundHoldsEmpirically).
	a := New(Config{NEntry: 16, RFMTH: 32, UseScanTable: true})
	b := New(Config{NEntry: 16, RFMTH: 32, UseScanTable: false})
	r := streaming.NewRand(31)
	maxSpread := analysis.BoundM(timing.DDR5(), 16, 32)
	for i := 0; i < 20000; i++ {
		row := uint32(r.Intn(40))
		a.OnActivate(row)
		b.OnActivate(row)
		if i%32 == 31 {
			a.OnRFM()
			b.OnRFM()
		}
		if float64(a.Spread()) > maxSpread || float64(b.Spread()) > maxSpread {
			t.Fatalf("step %d: spread exceeded theorem bound (%d / %d vs %.0f)",
				i, a.Spread(), b.Spread(), maxSpread)
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.ACTs != sb.ACTs || sa.RFMs != sb.RFMs || sa.PreventiveRefreshes != sb.PreventiveRefreshes {
		t.Fatalf("event counts diverge: %+v vs %+v", sa, sb)
	}
}
