package resultstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testRecord(i int, stamp string) Record {
	return Record{
		Key:     HashComponents(map[string]string{"i": fmt.Sprint(i)}),
		Stamp:   stamp,
		Payload: json.RawMessage(fmt.Sprintf(`{"v":%d}`, i)),
	}
}

func TestHashComponentsOrderIndependent(t *testing.T) {
	a := HashComponents(map[string]string{"scheme": "mithril", "seed": "1", "flipth": "6250"})
	b := HashComponents(map[string]string{"flipth": "6250", "seed": "1", "scheme": "mithril"})
	if a != b {
		t.Fatalf("component order changed the key: %s vs %s", a, b)
	}
	c := HashComponents(map[string]string{"scheme": "mithril", "seed": "2", "flipth": "6250"})
	if a == c {
		t.Fatal("changing a component value kept the key")
	}
	// The name=value framing keeps shifted boundaries distinct.
	d := HashComponents(map[string]string{"ab": "c"})
	e := HashComponents(map[string]string{"a": "bc"})
	if d == e {
		t.Fatal("(ab,c) and (a,bc) collide")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	k := HashComponents(map[string]string{"x": "y"})
	back, err := ParseKey(k.String())
	if err != nil || back != k {
		t.Fatalf("ParseKey(%s) = %v, %v", k, back, err)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Fatal("ParseKey accepted garbage")
	}
	if _, err := ParseKey("abcd"); err == nil {
		t.Fatal("ParseKey accepted a short key")
	}
}

func TestFingerprintAndStamp(t *testing.T) {
	a := Fingerprint([]string{"b", "a"})
	if a != Fingerprint([]string{"a", "b"}) {
		t.Fatal("fingerprint depends on name order")
	}
	if a == Fingerprint([]string{"a", "b", "c"}) {
		t.Fatal("adding a name kept the fingerprint")
	}
	if want := fmt.Sprintf("v%d+%s", SchemaVersion, a); Stamp([]string{"b", "a"}) != want {
		t.Fatalf("Stamp = %q, want %q", Stamp([]string{"b", "a"}), want)
	}
}

// storeContract exercises the shared Store semantics on any implementation.
func storeContract(t *testing.T, st Store) {
	t.Helper()
	r1, r2 := testRecord(1, "v1"), testRecord(2, "v1")
	if st.Has(r1.Key) {
		t.Fatal("empty store Has = true")
	}
	if _, ok := st.Get(r1.Key); ok {
		t.Fatal("empty store Get hit")
	}
	for _, r := range []Record{r1, r2} {
		if err := st.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := st.Get(r1.Key)
	if !ok || string(got.Payload) != string(r1.Payload) || got.Stamp != "v1" {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	// Last write wins, insertion position preserved.
	r1b := r1
	r1b.Payload = json.RawMessage(`{"v":100}`)
	if err := st.Put(r1b); err != nil {
		t.Fatal(err)
	}
	var order []string
	st.Scan(func(rec Record) bool {
		order = append(order, string(rec.Payload))
		return true
	})
	if len(order) != 2 || order[0] != `{"v":100}` || order[1] != `{"v":2}` {
		t.Fatalf("scan order = %v", order)
	}
	// Scan stops when the callback says so.
	n := 0
	st.Scan(func(Record) bool { n++; return false })
	if n != 1 {
		t.Fatalf("scan visited %d records after false", n)
	}
}

func TestMemStore(t *testing.T) { storeContract(t, NewMem()) }

func TestDiskStore(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(testRecord(9, "v1")); err == nil {
		t.Fatal("Put after Close succeeded")
	}
}

func TestDiskReload(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Put(testRecord(i, "v1")); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// The finalized segment must carry the .ndjson name, not .open.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.ndjson"))
	if len(segs) != 1 {
		t.Fatalf("finalized segments = %v, want exactly one", segs)
	}
	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 5 {
		t.Fatalf("reloaded %d records, want 5", d2.Len())
	}
	for i := 0; i < 5; i++ {
		rec, ok := d2.Get(testRecord(i, "v1").Key)
		if !ok || string(rec.Payload) != fmt.Sprintf(`{"v":%d}`, i) {
			t.Fatalf("record %d: %+v, %v", i, rec, ok)
		}
	}
	// A second session appends a new segment; both reload together, and
	// the later segment's record wins for a rewritten key.
	upd := testRecord(0, "v1")
	upd.Payload = json.RawMessage(`{"v":42}`)
	if err := d2.Put(upd); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if rec, _ := d3.Get(upd.Key); string(rec.Payload) != `{"v":42}` {
		t.Fatalf("later segment did not win: %s", rec.Payload)
	}
}

// TestDiskCrashRecovery is the crash drill: a process dies mid-append
// (simulated by truncating the still-.open segment mid-record, no Close)
// and the next Open must adopt the segment, keep every intact record,
// count exactly one torn line, and keep accepting writes.
func TestDiskCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Put(testRecord(i, "v1")); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the segment stays .open, exactly as a killed process
	// leaves it. Tear the final record in half.
	opens, _ := filepath.Glob(filepath.Join(dir, "seg-*.ndjson.open"))
	if len(opens) != 1 {
		t.Fatalf("open segments = %v, want exactly one", opens)
	}
	data, err := os.ReadFile(opens[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("segment has %d lines, want 4", len(lines))
	}
	torn := strings.Join(lines[:3], "") + lines[3][:len(lines[3])/2]
	if err := os.WriteFile(opens[0], []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 3 {
		t.Fatalf("recovered %d records, want 3", d2.Len())
	}
	st, err := d2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TornLines != 1 {
		t.Fatalf("torn lines = %d, want 1", st.TornLines)
	}
	// The torn segment was adopted: no .open file remains, and new writes
	// land in a fresh segment rather than appending after the tear.
	if opens, _ := filepath.Glob(filepath.Join(dir, "seg-*.ndjson.open")); len(opens) != 0 {
		t.Fatalf("unadopted open segments after recovery: %v", opens)
	}
	if err := d2.Put(testRecord(3, "v1")); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if d3.Len() != 4 {
		t.Fatalf("post-recovery reload has %d records, want 4", d3.Len())
	}
}

// A CRC-valid-JSON but bit-flipped line must fail the checksum and load
// as a miss, not serve a corrupt payload.
func TestDiskCorruptLineSkipped(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := testRecord(1, "v1")
	if err := d.Put(r); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.ndjson"))
	data, _ := os.ReadFile(segs[0])
	flipped := strings.Replace(string(data), `{"v":1}`, `{"v":7}`, 1)
	if flipped == string(data) {
		t.Fatal("payload not found in segment")
	}
	if err := os.WriteFile(segs[0], []byte(flipped), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Has(r.Key) {
		t.Fatal("bit-flipped record served instead of skipped")
	}
	if st, _ := d2.Stats(); st.TornLines != 1 {
		t.Fatalf("torn lines = %d, want 1", st.TornLines)
	}
}

func TestDiskGC(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := d.Put(testRecord(i, "old")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 3; i < 5; i++ {
		if err := d.Put(testRecord(i, "new")); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := d.GC(func(rec Record) bool { return rec.Stamp == "new" })
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("removed = %d, want 3", removed)
	}
	if d.Len() != 2 {
		t.Fatalf("live records = %d, want 2", d.Len())
	}
	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 2 {
		t.Fatalf("post-GC reload has %d records, want 2", d2.Len())
	}
	st, err := d2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 1 || len(st.Stamps) != 1 || st.Stamps["new"] != 2 {
		t.Fatalf("post-GC stats = %+v", st)
	}
	// GC to nothing removes every segment.
	if _, err := d2.GC(func(Record) bool { return false }); err != nil {
		t.Fatal(err)
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, "seg-*")); len(segs) != 0 {
		t.Fatalf("segments after empty GC: %v", segs)
	}
}

func TestVerifyDir(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := d.Put(testRecord(i, "v1")); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Records != 3 {
		t.Fatalf("clean store report = %+v", rep)
	}
	// Tear the tail: still TailOnly. Then corrupt a middle line of a
	// fresh segment: not TailOnly.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.ndjson"))
	data, _ := os.ReadFile(segs[0])
	if err := os.WriteFile(segs[0], data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.Records != 2 || !rep.Segments[0].TailOnly {
		t.Fatalf("torn-tail report = %+v", rep)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[0] = "garbage\n"
	if err := os.WriteFile(segs[0], []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.Segments[0].TailOnly {
		t.Fatalf("mid-file corruption report = %+v", rep)
	}
}

func TestDiskConcurrentPuts(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	done := make(chan error)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				if err := d.Put(testRecord(g*50+i, "v1")); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != 200 {
		t.Fatalf("records = %d, want 200", d.Len())
	}
}
