// Quickstart: configure Mithril for a target RowHammer threshold, run a
// benign multi-programmed workload with and without protection, and print
// the normalized performance/energy cost plus the safety verdict.
package main

import (
	"fmt"
	"log"

	"mithril"
)

func main() {
	p := mithril.DDR5()
	const flipTH = 6250 // the paper's "recently observed" threshold

	// Theorem 1 sizing: the minimal counter table for RFMTH = 128.
	cfg, ok := mithril.Configure(p, flipTH, 128, 0)
	if !ok {
		log.Fatal("no feasible configuration")
	}
	fmt.Printf("Mithril config: %s\n", cfg)
	fmt.Printf("Theorem 1 bound M = %.0f (< FlipTH/2 = %d)\n\n",
		mithril.BoundM(p, cfg.NEntry, cfg.RFMTH), flipTH/2)

	scheme, err := mithril.NewScheme("mithril", mithril.SchemeOptions{
		Timing: p, FlipTH: flipTH, RFMTH: 128,
	})
	if err != nil {
		log.Fatal(err)
	}

	simCfg := mithril.SimConfig{
		Params:       p,
		FlipTH:       flipTH,
		Scheduler:    mithril.BLISS,
		Policy:       mithril.MinimalistOpen,
		InstrPerCore: 20_000,
	}
	cmp, err := mithril.Compare(simCfg, mithril.MixHigh(8, 1), scheme)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: mix-high (8 cores)\n")
	fmt.Printf("relative performance: %.2f%% of unprotected\n", cmp.RelativePerformance)
	fmt.Printf("dynamic energy overhead: %+.2f%%\n", cmp.EnergyOverheadPercent)
	fmt.Printf("RFMs issued: %d (skipped by adaptive policy inside DRAM where quiet)\n",
		cmp.Protected.MC.RFMIssued)
	fmt.Printf("safety: %v\n", cmp.Protected.Safety)
}
