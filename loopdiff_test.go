package mithril

// Differential equivalence for the PR 8 event calendar: every shipped
// quick spec runs twice in-process — once through the legacy tick loop
// (sim.SetLegacyTickLoop, the pre-calendar reference implementation that
// polls every subsystem every iteration) and once through the next-event
// calendar — and the full-precision golden renderings must match byte for
// byte. The tick loop computes nothing lazily, so any divergence indicts
// a calendar skip or deadline-cache decision, with the row-level diff
// pointing at the first affected cell.

import (
	"io/fs"
	"path"
	"strings"
	"testing"

	"mithril/internal/sim"
	"mithril/internal/stats"
)

func TestLoopEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	names, err := fs.Glob(SpecsFS(), "specs/*.quick.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no shipped quick specs found")
	}
	// The goldens' instruction budget: large enough that refresh windows,
	// RFM pacing, and throttling all fire, so the loops can actually
	// disagree if a skip decision is wrong.
	sc := goldenScale()
	for _, specPath := range names {
		name := strings.TrimSuffix(path.Base(specPath), ".json")
		t.Run(name, func(t *testing.T) {
			sp, err := LoadShippedSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			prev := sim.SetLegacyTickLoop(true)
			legacyRes, err := sp.RunAt(sc)
			sim.SetLegacyTickLoop(prev)
			if err != nil {
				t.Fatalf("legacy tick loop: %v", err)
			}
			calRes, err := sp.RunAt(sc)
			if err != nil {
				t.Fatalf("calendar loop: %v", err)
			}
			legacy, calendar := legacyRes.Golden(), calRes.Golden()
			if legacy != calendar {
				t.Errorf("calendar loop diverges from tick loop on %s; diff (-tick +calendar):\n%s",
					name, stats.DiffLines(legacy, calendar))
			}
		})
	}
}
