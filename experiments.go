package mithril

import (
	"embed"
	"fmt"
	"io/fs"

	"mithril/internal/analysis"
	"mithril/internal/expspec"
	"mithril/internal/mc"
	"mithril/internal/sim"
	"mithril/internal/timing"
	"mithril/internal/trace"
)

// specsFS embeds the shipped experiment specs: the declarative grids the
// simulation figures (7, 9, 10, 11) and the safety sweep run as, one file
// per figure in quick/full (and CI golden) variants.
//
//go:embed specs/*.json
var specsFS embed.FS

// SpecsFS returns the shipped experiment spec files (specs/*.json). The
// mithrilsim CLI lists and runs them by name; library users can parse them
// with internal/expspec via the figure wrappers below.
func SpecsFS() fs.FS { return specsFS }

// Scale sizes the simulation experiments; see expspec.Scale. The paper
// runs 400M instructions over 16 cores on McSimA+; the simulator is
// cycle-approximate and the rate-based metrics converge at far smaller
// budgets, so Quick is the default for tests/benches and Full for the CLI.
type Scale = expspec.Scale

// QuickScale is the fast experiment configuration.
func QuickScale() Scale { return expspec.QuickScale() }

// FullScale matches the paper's system size (16 cores, all FlipTH levels).
func FullScale() Scale { return expspec.FullScale() }

// StandardFlipTHs re-exports the evaluation's FlipTH sweep.
func StandardFlipTHs() []int { return append([]int(nil), analysis.StandardFlipTHs...) }

// baseSimConfig builds the Table III system configuration at the scale's
// (possibly time-compressed) timing.
func baseSimConfig(flipTH int, sc Scale) SimConfig {
	return expspec.BaseSimConfig(flipTH, sc)
}

// benignIPC sums per-core IPCs excluding trailing attacker cores.
func benignIPC(res sim.Result, attackers int) float64 {
	return expspec.BenignIPC(res, attackers)
}

// runSpec executes the named shipped spec's axes at the caller's scale
// (the spec's own scale section only applies when run via the CLI).
func runSpec(name string, sc Scale) (*expspec.Result, error) {
	sp, err := LoadShippedSpec(name)
	if err != nil {
		return nil, fmt.Errorf("shipped spec %s: %w", name, err)
	}
	return sp.RunAt(sc)
}

// ---------------------------------------------------------------- Figure 2

// Figure2Point re-exports the analytic Figure 2 data point.
type Figure2Point = analysis.Figure2Point

// Figure2Data evaluates the ARR-vs-RFM Graphene incompatibility curves.
func Figure2Data() []Figure2Point {
	thresholds := []int{250, 500, 1000, 2000, 4000, 8000}
	rfmths := []int{256, 128, 64, 32}
	return analysis.Figure2Curve(DDR5(), thresholds, rfmths)
}

// ---------------------------------------------------------------- Figure 6

// Figure6Series is one FlipTH line of Figure 6.
type Figure6Series struct {
	FlipTH int
	CbS    []MithrilConfig // feasible (RFMTH → table) points, CbS tracker
	Lossy  []MithrilConfig // same with Lossy Counting (dotted lines)
}

// Figure6Data computes the feasible configuration curves.
func Figure6Data() []Figure6Series {
	p := DDR5()
	rfmths := []int{416, 384, 352, 320, 288, 256, 224, 192, 160, 128, 96, 64, 48, 32, 16}
	flipTHs := []int{1560, 3125, 6250, 12500, 25000, 50000}
	out := make([]Figure6Series, 0, len(flipTHs))
	for _, f := range flipTHs {
		s := Figure6Series{FlipTH: f}
		s.CbS = analysis.ConfigCurve(p, f, rfmths, 0, analysis.DoubleSidedBlast)
		if f >= 25000 { // the paper plots lossy counting at 25K and 50K
			s.Lossy = analysis.LossyConfigCurve(p, f, rfmths, analysis.DoubleSidedBlast)
		}
		out = append(out, s)
	}
	return out
}

// ---------------------------------------------------------------- Figure 7

// Figure7Point is one AdTH level of Figure 7.
type Figure7Point = expspec.Figure7Point

// Figure7Data sweeps AdTH for the paper's two configurations on one
// multi-programmed and one multi-threaded workload (specs/figure7.*.json).
func Figure7Data(sc Scale) ([]Figure7Point, error) {
	res, err := runSpec("figure7.quick", sc)
	if err != nil {
		return nil, err
	}
	return res.AdTH, nil
}

// ---------------------------------------------------------------- Figure 8

// Figure8Data reproduces the lbm-like access/activation characterization.
type Figure8Data struct {
	LargeWindow   []trace.RowSample
	SmallWindow   []trace.RowSample
	Activations   []trace.RowSample
	LargeDistinct int
	SmallDistinct int
	SmallMaxRow   int // max accesses to one row in the small window
}

// Figure8 generates the large-object-sweep data series.
func Figure8() Figure8Data {
	mapper := mc.NewAddressMapper(DDR5())
	large := trace.RowSeries(trace.NewStream("lbm", 0, 128<<20, 12, 4), mapper, 100_000)
	small := trace.RowSeries(trace.NewStream("lbm", 0, 128<<20, 12, 4), mapper, 512)
	acts := trace.ActivationSeries(small, DDR5().TotalBanks())
	ld, _ := trace.ConcentrationStats(large)
	sd, sm := trace.ConcentrationStats(small)
	return Figure8Data{
		LargeWindow: large, SmallWindow: small, Activations: acts,
		LargeDistinct: ld, SmallDistinct: sd, SmallMaxRow: sm,
	}
}

// --------------------------------------------------------------- Figures 9–11

// PerfPoint is one (scheme, FlipTH, workload) measurement.
type PerfPoint = expspec.PerfPoint

// Figure9Point compares Mithril and Mithril+ at one operating point.
type Figure9Point = expspec.Figure9Point

// Figure9Data sweeps the paper's (FlipTH, RFMTH) grid on the mix-high
// workload (specs/figure9.*.json); grid cells run in parallel on the
// sweep engine.
func Figure9Data(sc Scale) ([]Figure9Point, error) {
	res, err := runSpec("figure9.quick", sc)
	if err != nil {
		return nil, err
	}
	return res.Grid, nil
}

// Figure10Data evaluates the RFM-compatible schemes (PARFM, BlockHammer,
// Mithril, Mithril+) across FlipTH on normal, multi-sided-RH, and
// BlockHammer-adversarial workloads, plus energy and area
// (specs/figure10.*.json).
func Figure10Data(sc Scale) ([]PerfPoint, error) {
	res, err := runSpec("figure10.quick", sc)
	if err != nil {
		return nil, err
	}
	return res.Perf, nil
}

// Figure11Data evaluates the RFM-non-compatible baselines (PARA, CBT,
// TWiCe, Graphene) against Mithril and Mithril+ on normal and multi-sided
// workloads (specs/figure11.*.json).
func Figure11Data(sc Scale) ([]PerfPoint, error) {
	res, err := runSpec("figure11.quick", sc)
	if err != nil {
		return nil, err
	}
	return res.Perf, nil
}

// ---------------------------------------------------------------- Table IV

// TableIVRow re-exports the area table row.
type TableIVRow = analysis.TableIVRow

// Table4Data returns our computed Table IV and the paper's reference values.
func Table4Data() (computed, paper []TableIVRow) {
	return analysis.TableIV(DDR5()), analysis.PaperTableIV()
}

// ------------------------------------------------------------- Safety (E11)

// SafetyResult is one scheme × attack verdict.
type SafetyResult = expspec.SafetyResult

// SafetySweep attacks every scheme with double- and multi-sided patterns in
// the full simulator (specs/safety.*.json, with the FlipTH axis overridden
// by the caller) and reports the fault-model verdicts; results come back in
// a fixed (attack, then scheme) order.
func SafetySweep(sc Scale, flipTH int) ([]SafetyResult, error) {
	sp, err := LoadShippedSpec("safety.quick")
	if err != nil {
		return nil, err
	}
	sp.Axes.FlipTHs = []int{flipTH}
	res, err := sp.RunAt(sc)
	if err != nil {
		return nil, err
	}
	return res.Safety, nil
}

// PARFMFailure re-exports the Appendix C failure model for the CLI.
func PARFMFailure(flipTH, rfmTH int) (bank, system float64) {
	p := DDR5()
	return analysis.ParfmBankFailure(p, flipTH, rfmTH),
		analysis.ParfmSystemFailure(p, flipTH, rfmTH, analysis.DefaultAttackableBanks)
}

// PARFMRequiredRFMTH re-exports the RFMTH search (1e-15 target).
func PARFMRequiredRFMTH(flipTH int) (int, bool) {
	return analysis.ParfmRequiredRFMTH(DDR5(), flipTH, analysis.DefaultAttackableBanks, 1e-15, nil)
}

var _ = timing.DDR5 // keep the import stable for the type aliases above
