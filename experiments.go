package mithril

import (
	"fmt"

	"mithril/internal/analysis"
	"mithril/internal/attack"
	"mithril/internal/energy"
	"mithril/internal/mc"
	"mithril/internal/mitigation"
	"mithril/internal/sim"
	"mithril/internal/stats"
	"mithril/internal/sweep"
	"mithril/internal/timing"
	"mithril/internal/trace"
)

// Scale sizes the simulation experiments. The paper runs 400M instructions
// over 16 cores on McSimA+; the simulator is cycle-approximate and the
// rate-based metrics (RFM frequency, refresh overheads) converge at far
// smaller budgets, so Quick is the default for tests/benches and Full for
// the CLI.
type Scale struct {
	Cores        int
	InstrPerCore int64
	FlipTHs      []int
	Seed         uint64
	// TimeScale compresses the refresh window (tREFW/TimeScale with
	// proportionally fewer refresh groups, same refresh duty cycle) so
	// window-relative mechanisms — BlockHammer blacklists, CBF epochs,
	// PARFM sampling windows — engage within simulable horizons. All
	// schemes are configured from the same scaled parameters, so relative
	// comparisons are preserved (DESIGN.md §4).
	TimeScale int
	// Jobs bounds the sweep engine's worker pool: each (scheme, FlipTH,
	// workload) cell is an independent simulation, so sweeps fan out over
	// Jobs workers. 0 (or negative) means one worker per core; 1 forces
	// the serial path. Parallel and serial sweeps return identical
	// results in identical order.
	Jobs int
}

// Params returns the (possibly time-scaled) DDR5 parameters for this scale.
func (sc Scale) Params() TimingParams {
	p := timing.DDR5()
	f := sc.TimeScale
	if f <= 1 {
		return p
	}
	p.TREFW /= PicoSeconds(f)
	p.RefreshGroups /= f
	return p
}

// attackCores sizes attack workloads: the paper's 15+1 arrangement at full
// scale, a 3+1 arrangement otherwise (attack effects are per-bank, not
// per-core, so fewer benign cores change little but cost linearly less).
func (sc Scale) attackCores() int {
	if sc.Cores >= 16 {
		return sc.Cores
	}
	if sc.Cores > 4 {
		return 4
	}
	return sc.Cores
}

// multiSidedVictims picks the attack width (32 at full scale, 8 quick).
func (sc Scale) multiSidedVictims() int {
	if sc.Cores >= 16 {
		return 32
	}
	return 8
}

// attackInstrFactor extends attack runs so threshold mechanisms (NBL,
// FlipTH accumulation) have time to engage.
const attackInstrFactor = 64

// QuickScale is the fast experiment configuration.
func QuickScale() Scale {
	return Scale{Cores: 8, InstrPerCore: 20_000, FlipTHs: []int{50000, 6250, 1500}, Seed: 1, TimeScale: 8}
}

// FullScale matches the paper's system size (16 cores, all FlipTH levels).
func FullScale() Scale {
	return Scale{Cores: 16, InstrPerCore: 100_000, FlipTHs: analysis.StandardFlipTHs, Seed: 1, TimeScale: 8}
}

// StandardFlipTHs re-exports the evaluation's FlipTH sweep.
func StandardFlipTHs() []int { return append([]int(nil), analysis.StandardFlipTHs...) }

// baseSimConfig builds the Table III system configuration at the scale's
// (possibly time-compressed) timing.
func baseSimConfig(flipTH int, sc Scale) SimConfig {
	return SimConfig{
		Params:       sc.Params(),
		FlipTH:       flipTH,
		Scheduler:    BLISS,
		Policy:       MinimalistOpen,
		InstrPerCore: sc.InstrPerCore,
	}
}

// ---------------------------------------------------------------- Figure 2

// Figure2Point re-exports the analytic Figure 2 data point.
type Figure2Point = analysis.Figure2Point

// Figure2Data evaluates the ARR-vs-RFM Graphene incompatibility curves.
func Figure2Data() []Figure2Point {
	thresholds := []int{250, 500, 1000, 2000, 4000, 8000}
	rfmths := []int{256, 128, 64, 32}
	return analysis.Figure2Curve(DDR5(), thresholds, rfmths)
}

// ---------------------------------------------------------------- Figure 6

// Figure6Series is one FlipTH line of Figure 6.
type Figure6Series struct {
	FlipTH int
	CbS    []MithrilConfig // feasible (RFMTH → table) points, CbS tracker
	Lossy  []MithrilConfig // same with Lossy Counting (dotted lines)
}

// Figure6Data computes the feasible configuration curves.
func Figure6Data() []Figure6Series {
	p := DDR5()
	rfmths := []int{416, 384, 352, 320, 288, 256, 224, 192, 160, 128, 96, 64, 48, 32, 16}
	flipTHs := []int{1560, 3125, 6250, 12500, 25000, 50000}
	out := make([]Figure6Series, 0, len(flipTHs))
	for _, f := range flipTHs {
		s := Figure6Series{FlipTH: f}
		s.CbS = analysis.ConfigCurve(p, f, rfmths, 0, analysis.DoubleSidedBlast)
		if f >= 25000 { // the paper plots lossy counting at 25K and 50K
			s.Lossy = analysis.LossyConfigCurve(p, f, rfmths, analysis.DoubleSidedBlast)
		}
		out = append(out, s)
	}
	return out
}

// ---------------------------------------------------------------- Figure 7

// Figure7Point is one AdTH level of Figure 7.
type Figure7Point struct {
	FlipTH, RFMTH, AdTH int
	// EnergyOverheadPct per workload class (multi-programmed/threaded).
	EnergyOverheadPct map[string]float64
	// AdditionalNEntryPct is the Theorem 2 table growth (right axis).
	AdditionalNEntryPct float64
}

// Figure7Data sweeps AdTH for the paper's two configurations on one
// multi-programmed and one multi-threaded workload.
func Figure7Data(sc Scale) ([]Figure7Point, error) {
	p := sc.Params()
	configs := []struct{ flipTH, rfmTH int }{{3125, 16}, {6250, 64}}
	adths := []int{0, 50, 100, 150, 200}
	workloads := []struct {
		name string
		w    Workload
	}{
		{"multi-programmed", trace.MixHigh(sc.Cores, sc.Seed)},
		{"multi-threaded", trace.FFT(sc.Cores, sc.Seed)},
	}
	// One baseline per workload (scheme-independent), single-flight so
	// concurrent cells share one unprotected run.
	var baselines sweep.Cache[string, sim.Result]
	baseline := func(name string, w Workload) (sim.Result, error) {
		return baselines.Get(name, func() (sim.Result, error) {
			cfg := baseSimConfig(configs[0].flipTH, sc)
			cfg.Workload = w.Fresh()
			return sim.Run(cfg)
		})
	}
	// Fan each (config, AdTH, workload) cell out to the worker pool; the
	// energy overheads come back in enumeration order.
	type f7cell struct{ cfgIdx, adTH, wIdx int }
	var cells []f7cell
	for ci := range configs {
		for _, ad := range adths {
			for wi := range workloads {
				cells = append(cells, f7cell{ci, ad, wi})
			}
		}
	}
	energies, err := sweep.Run(sc.Jobs, len(cells), func(i int) (float64, error) {
		c := cells[i]
		conf := configs[c.cfgIdx]
		wl := workloads[c.wIdx]
		base, err := baseline(wl.name, wl.w)
		if err != nil {
			return 0, err
		}
		scheme := mitigation.NewMithril(mitigation.Options{
			Timing: p, FlipTH: conf.flipTH, RFMTH: conf.rfmTH, AdTH: adOrDisabled(c.adTH), Seed: sc.Seed,
		})
		cfg := baseSimConfig(conf.flipTH, sc)
		cfg.Scheme = scheme
		cfg.Workload = wl.w.Fresh()
		res, err := sim.Run(cfg)
		if err != nil {
			return 0, err
		}
		return energy.OverheadPercent(res.Energy, base.Energy), nil
	})
	if err != nil {
		return nil, err
	}
	var out []Figure7Point
	idx := 0
	for _, c := range configs {
		for _, ad := range adths {
			pt := Figure7Point{FlipTH: c.flipTH, RFMTH: c.rfmTH, AdTH: ad,
				EnergyOverheadPct: map[string]float64{}}
			if pct, ok := analysis.AdditionalNEntryPercent(p, c.flipTH, c.rfmTH, ad); ok {
				pt.AdditionalNEntryPct = pct
			}
			for _, wl := range workloads {
				pt.EnergyOverheadPct[wl.name] = energies[idx]
				idx++
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// adOrDisabled maps AdTH 0 to the mitigation package's "disabled" encoding.
func adOrDisabled(ad int) int {
	if ad == 0 {
		return -1
	}
	return ad
}

// ---------------------------------------------------------------- Figure 8

// Figure8Data reproduces the lbm-like access/activation characterization.
type Figure8Data struct {
	LargeWindow   []trace.RowSample
	SmallWindow   []trace.RowSample
	Activations   []trace.RowSample
	LargeDistinct int
	SmallDistinct int
	SmallMaxRow   int // max accesses to one row in the small window
}

// Figure8 generates the large-object-sweep data series.
func Figure8() Figure8Data {
	mapper := mc.NewAddressMapper(DDR5())
	large := trace.RowSeries(trace.NewStream("lbm", 0, 128<<20, 12, 4), mapper, 100_000)
	small := trace.RowSeries(trace.NewStream("lbm", 0, 128<<20, 12, 4), mapper, 512)
	acts := trace.ActivationSeries(small, DDR5().TotalBanks())
	ld, _ := trace.ConcentrationStats(large)
	sd, sm := trace.ConcentrationStats(small)
	return Figure8Data{
		LargeWindow: large, SmallWindow: small, Activations: acts,
		LargeDistinct: ld, SmallDistinct: sd, SmallMaxRow: sm,
	}
}

// --------------------------------------------------------------- Figures 9–11

// PerfPoint is one (scheme, FlipTH, workload) measurement.
type PerfPoint struct {
	Scheme              string
	FlipTH              int
	RFMTH               int
	Workload            string
	RelativePerformance float64 // % of unprotected aggregate IPC
	EnergyOverheadPct   float64
	TableKB             float64
	Safe                bool
}

// String renders the point for logs.
func (p PerfPoint) String() string {
	return fmt.Sprintf("%-12s FlipTH=%-6d %-16s perf=%6.2f%% energy=+%5.2f%% table=%6.2fKB safe=%v",
		p.Scheme, p.FlipTH, p.Workload, p.RelativePerformance, p.EnergyOverheadPct, p.TableKB, p.Safe)
}

// runner caches baselines so every scheme is normalized against an
// identical unprotected run. The cache is keyed by (FlipTH, workload),
// not workload name alone: a workload's generators can vary with FlipTH
// under an unchanged name (bh-adversarial aims at the deployed filter's
// collision set), so cross-threshold sharing would normalize against a
// stale run. Sharing FlipTH-independent baselines is forgone — a few
// extra unprotected runs per sweep buys the correctness guarantee. The
// cache is single-flight, so concurrent cells share one simulation.
type runner struct {
	sc        Scale
	baselines sweep.Cache[baselineKey, sim.Result]
}

// baselineKey identifies one unprotected run configuration.
type baselineKey struct {
	flipTH   int
	workload string
}

func newRunner(sc Scale) *runner { return &runner{sc: sc} }

// cfgFor derives the run configuration for a workload: attack workloads
// get an extended instruction budget and end when the benign cores finish.
func (r *runner) cfgFor(flipTH int, w Workload) SimConfig {
	cfg := baseSimConfig(flipTH, r.sc)
	cfg.Workload = w.Fresh()
	if w.Attackers > 0 {
		cfg.InstrPerCore = r.sc.InstrPerCore * attackInstrFactor
		cfg.RequireCores = len(cfg.Workload) - w.Attackers
	}
	return cfg
}

func (r *runner) baseline(flipTH int, w Workload) (sim.Result, error) {
	return r.baselines.Get(baselineKey{flipTH, w.Name}, func() (sim.Result, error) {
		return sim.Run(r.cfgFor(flipTH, w))
	})
}

// benignIPC sums per-core IPCs excluding trailing attacker cores (a
// non-positive count means none; a count beyond the core total sums
// nothing rather than walking off the slice).
func benignIPC(res sim.Result, attackers int) float64 {
	n := len(res.IPCs) - attackers
	if n > len(res.IPCs) {
		n = len(res.IPCs)
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += res.IPCs[i]
	}
	return total
}

// measure runs scheme on workload and produces the normalized point;
// trailing attacker cores (w.Attackers) are excluded from IPC aggregation.
func (r *runner) measure(scheme mc.Scheme, flipTH int, w Workload) (PerfPoint, error) {
	attackers := w.Attackers
	base, err := r.baseline(flipTH, w)
	if err != nil {
		return PerfPoint{}, err
	}
	cfg := r.cfgFor(flipTH, w)
	cfg.Scheme = scheme
	res, err := sim.Run(cfg)
	if err != nil {
		return PerfPoint{}, err
	}
	pt := PerfPoint{
		Scheme:   scheme.Name(),
		FlipTH:   flipTH,
		Workload: w.Name,
		Safe:     res.Safety.Safe(),
	}
	if b := benignIPC(base, attackers); b > 0 {
		pt.RelativePerformance = 100 * benignIPC(res, attackers) / b
	}
	pt.EnergyOverheadPct = energy.OverheadPercent(res.Energy, base.Energy)
	return pt, nil
}

// normalWorkloads returns the benign workload set for a scale (two mixes at
// quick scale; the paper's five at full scale).
func normalWorkloads(sc Scale) []Workload {
	if sc.Cores < 16 {
		return []Workload{trace.MixHigh(sc.Cores, sc.Seed), trace.FFT(sc.Cores, sc.Seed)}
	}
	all := trace.NormalWorkloads(sc.Cores, sc.Seed)
	out := make([]Workload, len(all))
	for i, w := range all {
		out[i] = w.Workload
	}
	return out
}

// multiSidedWorkload builds the Figure 10(b) workload: benign cores plus
// one multi-sided attacker (32 victims at full scale).
func multiSidedWorkload(sc Scale) Workload {
	mapper := mc.NewAddressMapper(sc.Params())
	n := sc.attackCores()
	benign := trace.MixHigh(n, sc.Seed)
	victims := sc.multiSidedVictims()
	return Workload{
		Name:      "multi-sided-rh",
		Attackers: 1,
		Fresh: func() []Generator {
			gens := benign.Fresh()
			gens[len(gens)-1] = attack.NewMultiSided(mapper, 1, 7, 4000, victims)
			return gens
		},
	}
}

// adversarialWorkload builds the Figure 10(c) workload: benign cores with
// one hot-row service core, plus a BlockHammer-collision adversary aimed at
// the service core's rows. Against non-throttling schemes the adversary's
// walk is harmless background traffic.
func adversarialWorkload(sc Scale, scheme mc.Scheme) Workload {
	p := sc.Params()
	mapper := mc.NewAddressMapper(p)
	n := sc.attackCores()
	benign := trace.MixHigh(n, sc.Seed)
	victimCore := n - 2
	if victimCore < 0 {
		victimCore = 0
	}
	base := uint64(victimCore) << 28
	loc := mapper.Map(base)
	return Workload{
		// The workload embeds the deployed scheme's collision oracle, so
		// baselines must not be shared across schemes.
		Name:      "bh-adversarial/" + scheme.Name(),
		Attackers: 1,
		Fresh: func() []Generator {
			gens := benign.Fresh()
			// The service core strides an 8 MB object with a prime stride:
			// cache-hostile, so its rows keep re-activating — throttling
			// them (or escalating to the whole thread) hurts directly.
			gens[victimCore] = trace.NewStrided("service", base, 8<<20, 257, 6)
			// The adversary hammers rows that collide with the service
			// core's hot rows in the deployed scheme's filters.
			gens[len(gens)-1] = adversaryFor(mapper, loc, scheme)
			return gens
		},
	}
}

// adversaryFor builds a combined collision attack over the service core's
// first four hot rows in its first bank.
func adversaryFor(mapper *mc.AddressMapper, loc mc.Location, scheme mc.Scheme) Generator {
	var rows []int
	if th, ok := scheme.(attack.Throttler); ok {
		for i := 0; i < 2; i++ {
			for _, r := range th.CollidingRows(loc.GlobalBank, uint32(loc.Row+i), 4) {
				rows = append(rows, int(r))
			}
		}
	}
	if len(rows) == 0 {
		for i := 0; i < 16; i++ {
			rows = append(rows, (loc.Row+64+8*i)%mapper.Params().Rows)
		}
	}
	return attack.NewRowList("bh-adversarial", mapper, loc.Channel, loc.Bank, rows)
}

// Figure9Point compares Mithril and Mithril+ at one operating point.
type Figure9Point struct {
	FlipTH, RFMTH int
	Mithril       float64 // relative performance %
	MithrilPlus   float64
	TableKB       float64
	EnergyMithril float64
	EnergyPlus    float64
}

// Figure9Data sweeps the paper's (FlipTH, RFMTH) grid on the mix-high
// workload; grid cells run in parallel on the sweep engine.
func Figure9Data(sc Scale) ([]Figure9Point, error) {
	grid := map[int][]int{12500: {512, 256, 128}, 6250: {256, 128, 64}, 3125: {128, 64, 32}, 1500: {32}}
	order := []int{12500, 6250, 3125, 1500}
	r := newRunner(sc)
	w := trace.MixHigh(sc.Cores, sc.Seed)
	// Enumerate the feasible cells up front (the feasibility check is
	// analytic) so the fan-out preserves the grid order.
	type f9cell struct{ flipTH, rfmTH int }
	var cells []f9cell
	for _, flipTH := range order {
		for _, rfmTH := range grid[flipTH] {
			if _, ok := analysis.Configure(sc.Params(), flipTH, rfmTH, mitigation.DefaultAdTH, analysis.DoubleSidedBlast); !ok {
				continue
			}
			cells = append(cells, f9cell{flipTH, rfmTH})
		}
	}
	return sweep.Run(sc.Jobs, len(cells), func(i int) (Figure9Point, error) {
		c := cells[i]
		opt := mitigation.Options{Timing: sc.Params(), FlipTH: c.flipTH, RFMTH: c.rfmTH, Seed: sc.Seed}
		m, err := r.measure(mitigation.NewMithril(opt), c.flipTH, w)
		if err != nil {
			return Figure9Point{}, err
		}
		plus, err := r.measure(mitigation.NewMithrilPlus(opt), c.flipTH, w)
		if err != nil {
			return Figure9Point{}, err
		}
		kb, _ := analysis.MithrilTableKB(DDR5(), c.flipTH, c.rfmTH, 0)
		return Figure9Point{
			FlipTH: c.flipTH, RFMTH: c.rfmTH,
			Mithril: m.RelativePerformance, MithrilPlus: plus.RelativePerformance,
			TableKB:       kb,
			EnergyMithril: m.EnergyOverheadPct, EnergyPlus: plus.EnergyOverheadPct,
		}, nil
	})
}

// Figure10Data evaluates the RFM-compatible schemes (PARFM, BlockHammer,
// Mithril, Mithril+) across FlipTH on normal, multi-sided-RH, and
// BlockHammer-adversarial workloads, plus energy and area.
func Figure10Data(sc Scale) ([]PerfPoint, error) {
	return comparisonSweep(sc, []string{"parfm", "blockhammer", "mithril", "mithril+"}, true)
}

// Figure11Data evaluates the RFM-non-compatible baselines (PARA, CBT,
// TWiCe, Graphene) against Mithril and Mithril+ on normal and multi-sided
// workloads.
func Figure11Data(sc Scale) ([]PerfPoint, error) {
	return comparisonSweep(sc, []string{"para", "cbt", "twice", "graphene", "mithril", "mithril+"}, false)
}

// sweepCell is one independent (FlipTH, scheme, workload) measurement of
// a comparison sweep: its own scheme instance, fresh workload, and — via
// the runner's single-flight cache — a shared baseline.
type sweepCell struct {
	flipTH      int
	scheme      string
	workload    Workload
	adversarial bool // build the BlockHammer-collision workload around the cell's scheme
}

func comparisonSweep(sc Scale, schemes []string, adversarial bool) ([]PerfPoint, error) {
	r := newRunner(sc)
	normals := normalWorkloads(sc)
	rhW := multiSidedWorkload(sc)
	// Enumerate every cell up front; the sweep engine fans them out over
	// the worker pool and returns measurements in enumeration order, so
	// the parallel sweep's output is identical to the serial path's.
	var cells []sweepCell
	for _, flipTH := range sc.FlipTHs {
		for _, name := range schemes {
			for _, w := range normals {
				cells = append(cells, sweepCell{flipTH: flipTH, scheme: name, workload: w})
			}
			cells = append(cells, sweepCell{flipTH: flipTH, scheme: name, workload: rhW})
			if adversarial {
				cells = append(cells, sweepCell{flipTH: flipTH, scheme: name, adversarial: true})
			}
		}
	}
	pts, err := sweep.Run(sc.Jobs, len(cells), func(i int) (PerfPoint, error) {
		c := cells[i]
		s, err := mitigation.Build(c.scheme, mitigation.Options{Timing: sc.Params(), FlipTH: c.flipTH, Seed: sc.Seed})
		if err != nil {
			return PerfPoint{}, err
		}
		w := c.workload
		if c.adversarial {
			w = adversarialWorkload(sc, s)
		}
		return r.measure(s, c.flipTH, w)
	})
	if err != nil {
		return nil, err
	}
	// Reduce in enumeration order: normal workloads collapse to one
	// geo-mean point per (FlipTH, scheme); attack points pass through.
	var out []PerfPoint
	idx := 0
	for _, flipTH := range sc.FlipTHs {
		for _, name := range schemes {
			var perfs []float64
			var energySum float64
			var safe = true
			for range normals {
				pt := pts[idx]
				idx++
				perfs = append(perfs, pt.RelativePerformance)
				energySum += pt.EnergyOverheadPct
				safe = safe && pt.Safe
			}
			out = append(out, PerfPoint{
				Scheme: name, FlipTH: flipTH, Workload: "normal",
				RelativePerformance: stats.Geomean(perfs),
				EnergyOverheadPct:   energySum / float64(len(normals)),
				TableKB:             schemeTableKB(name, flipTH),
				Safe:                safe,
			})
			// Multi-sided RH.
			pt := pts[idx]
			idx++
			pt.TableKB = schemeTableKB(name, flipTH)
			out = append(out, pt)
			// BlockHammer-adversarial (Figure 10 only).
			if adversarial {
				apt := pts[idx]
				idx++
				apt.TableKB = schemeTableKB(name, flipTH)
				out = append(out, apt)
			}
		}
	}
	return out, nil
}

// schemeTableKB reports the per-bank counter table area for the scheme at
// a FlipTH level (Figure 10(e)/Table IV models).
func schemeTableKB(name string, flipTH int) float64 {
	p := DDR5()
	switch name {
	case "graphene":
		return analysis.GrapheneTableKB(p, flipTH)
	case "twice":
		return analysis.TWiCeTableKB(p, flipTH)
	case "cbt":
		return analysis.CBTTableKB(p, flipTH)
	case "blockhammer":
		return analysis.BlockHammerTableKB(flipTH)
	case "mithril", "mithril+":
		kb, ok := analysis.MithrilTableKB(p, flipTH, mitigation.PaperRFMTH(flipTH), 0)
		if !ok {
			return 0
		}
		return kb
	default:
		return 0
	}
}

// ---------------------------------------------------------------- Table IV

// TableIVRow re-exports the area table row.
type TableIVRow = analysis.TableIVRow

// Table4Data returns our computed Table IV and the paper's reference values.
func Table4Data() (computed, paper []TableIVRow) {
	return analysis.TableIV(DDR5()), analysis.PaperTableIV()
}

// ------------------------------------------------------------- Safety (E11)

// SafetyResult is one scheme × attack verdict.
type SafetyResult struct {
	Scheme         string
	Attack         string
	FlipTH         int
	Flips          int
	MaxDisturbance float64
	Safe           bool
}

// SafetySweep attacks every scheme with double- and multi-sided patterns in
// the full simulator and reports the fault-model verdicts. The (attack,
// scheme) cells run in parallel on the sweep engine; results come back in
// a fixed (attack, then scheme) order.
func SafetySweep(sc Scale, flipTH int) ([]SafetyResult, error) {
	mapper := mc.NewAddressMapper(sc.Params())
	// Background core first, attacker last: the run ends when the benign
	// core finishes even if the attacker is throttled to a crawl. The
	// background must be memory-bound (footprint ≫ LLC) so the attacker
	// gets a realistic time window.
	attacks := []struct {
		name  string
		fresh func() []Generator
	}{
		{"double-sided", func() []Generator {
			return []Generator{
				trace.NewStream("bg", 1<<28, 64<<20, 10, 4),
				attack.NewDoubleSided(mapper, 0, 0, 1000),
			}
		}},
		{"multi-sided-32", func() []Generator {
			return []Generator{
				trace.NewStream("bg", 1<<28, 64<<20, 10, 4),
				attack.NewMultiSided(mapper, 0, 0, 2000, 32),
			}
		}},
	}
	schemes := []string{"none", "parfm", "blockhammer", "graphene", "twice", "cbt", "mithril", "mithril+"}
	type safetyCell struct {
		attackIdx int
		scheme    string
	}
	var cells []safetyCell
	for ai := range attacks {
		for _, name := range schemes {
			cells = append(cells, safetyCell{ai, name})
		}
	}
	return sweep.Run(sc.Jobs, len(cells), func(i int) (SafetyResult, error) {
		c := cells[i]
		s, err := mitigation.Build(c.scheme, mitigation.Options{Timing: sc.Params(), FlipTH: flipTH, Seed: sc.Seed})
		if err != nil {
			return SafetyResult{}, err
		}
		cfg := baseSimConfig(flipTH, sc)
		cfg.Scheme = s
		cfg.Workload = attacks[c.attackIdx].fresh()
		cfg.InstrPerCore = sc.InstrPerCore * attackInstrFactor
		cfg.RequireCores = 1 // benign core only
		res, err := sim.Run(cfg)
		if err != nil {
			return SafetyResult{}, err
		}
		return SafetyResult{
			Scheme: c.scheme, Attack: attacks[c.attackIdx].name, FlipTH: flipTH,
			Flips: res.Safety.Flips, MaxDisturbance: res.Safety.MaxDisturbance,
			Safe: res.Safety.Safe(),
		}, nil
	})
}

// PARFMFailure re-exports the Appendix C failure model for the CLI.
func PARFMFailure(flipTH, rfmTH int) (bank, system float64) {
	p := DDR5()
	return analysis.ParfmBankFailure(p, flipTH, rfmTH),
		analysis.ParfmSystemFailure(p, flipTH, rfmTH, analysis.DefaultAttackableBanks)
}

// PARFMRequiredRFMTH re-exports the RFMTH search (1e-15 target).
func PARFMRequiredRFMTH(flipTH int) (int, bool) {
	return analysis.ParfmRequiredRFMTH(DDR5(), flipTH, analysis.DefaultAttackableBanks, 1e-15, nil)
}

var _ = timing.DDR5 // keep the import stable for the type aliases above
