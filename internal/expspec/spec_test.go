package expspec

import (
	"reflect"
	"strings"
	"testing"
	"testing/fstest"
)

// minimal returns a valid comparison spec to mutate in error cases.
func minimal() *Spec {
	return &Spec{
		Name:  "t",
		Kind:  Comparison,
		Scale: ScaleSpec{Preset: "quick"},
		Axes: Axes{
			Schemes:   []string{"mithril"},
			Workloads: []string{"mix-high"},
		},
	}
}

func TestParseValid(t *testing.T) {
	s, err := Parse([]byte(`{
		"name": "ok", "kind": "comparison",
		"scale": {"preset": "quick"},
		"axes": {"schemes": ["mithril", "parfm"], "workloads": ["normal"], "adversarial": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "ok" || len(s.Axes.Schemes) != 2 || !s.Axes.Adversarial {
		t.Errorf("parsed %+v", s)
	}
}

// Parse must reject unknown JSON fields: a typoed axis would otherwise
// silently shrink the grid.
func TestParseUnknownField(t *testing.T) {
	_, err := Parse([]byte(`{"name": "x", "kind": "comparison", "scale": {"preset": "quick"},
		"axes": {"schemes": ["mithril"], "worloads": ["normal"]}}`))
	if err == nil || !strings.Contains(err.Error(), "worloads") {
		t.Errorf("err = %v, want unknown-field error naming \"worloads\"", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string // substring of the error
	}{
		{"missing name", func(s *Spec) { s.Name = "" }, "missing name"},
		{"unknown kind", func(s *Spec) { s.Kind = "heatmap" }, "unknown kind"},
		{"unknown preset", func(s *Spec) { s.Scale.Preset = "huge" }, "unknown preset"},
		{"unknown scheme", func(s *Spec) { s.Axes.Schemes = []string{"rowpress"} }, "unknown scheme"},
		{"unknown workload", func(s *Spec) { s.Axes.Workloads = []string{"spec2017"} }, "unknown workload"},
		{"empty schemes", func(s *Spec) { s.Axes.Schemes = nil }, "non-empty schemes"},
		{"empty workloads", func(s *Spec) { s.Axes.Workloads = nil }, "non-empty workloads"},
		{"duplicate scheme", func(s *Spec) { s.Axes.Schemes = []string{"mithril", "mithril"} }, "duplicate"},
		{"duplicate flipth", func(s *Spec) { s.Axes.FlipTHs = []int{6250, 6250} }, "duplicate"},
		{"duplicate seed", func(s *Spec) { s.Axes.Seeds = []uint64{3, 3} }, "duplicate"},
		{"foreign axis", func(s *Spec) { s.Axes.AdTHs = []int{50} }, "only to configgrid/adth"},
		{"unknown column", func(s *Spec) { s.Columns = []string{"scheme", "latency"} }, "unknown column"},
		{"duplicate column", func(s *Spec) { s.Columns = []string{"perf", "perf"} }, "duplicate"},
		{"unknown attack", func(s *Spec) { s.Axes.Attacks = []string{"rowpress"} }, "unknown attack"},
		{"bad attack argument", func(s *Spec) { s.Axes.Attacks = []string{"multi:zero"} }, "victim count"},
		{"duplicate attack", func(s *Spec) { s.Axes.Attacks = []string{"double", "double"} }, "duplicate"},
		{"canonically duplicate attack", func(s *Spec) { s.Axes.Attacks = []string{"decoy", "decoy:4"} }, "duplicates"},
		{"oracle-only attack in comparison", func(s *Spec) {
			s.Axes.Attacks = []string{"blockhammer-adversarial"}
		}, "collision oracle"},
		{"rows-only attack in a spec", func(s *Spec) {
			s.Axes.Attacks = []string{"rowlist"}
		}, "row list"},
		{"safety needs flipths", func(s *Spec) {
			s.Kind = SafetyKind
			s.Axes.Workloads = nil
			s.Axes.Attacks = []string{"double"}
			s.Axes.FlipTHs = nil
		}, "flipths"},
		{"safety needs attacks", func(s *Spec) {
			s.Kind = SafetyKind
			s.Axes.Workloads = nil
			s.Axes.FlipTHs = []int{2000}
		}, "non-empty attacks"},
		{"safety unknown attack", func(s *Spec) {
			s.Kind = SafetyKind
			s.Axes.Workloads = nil
			s.Axes.FlipTHs = []int{2000}
			s.Axes.Attacks = []string{"mix-high"}
		}, "unknown attack"},
		{"safety rejects workloads", func(s *Spec) {
			s.Kind = SafetyKind
			s.Axes.FlipTHs = []int{2000}
			s.Axes.Attacks = []string{"double"}
		}, "no workloads axis"},
		{"configgrid empty grid", func(s *Spec) {
			s.Kind = ConfigGrid
			s.Axes = Axes{Workloads: []string{"mix-high"}}
		}, "non-empty grid"},
		{"configgrid empty rfmths", func(s *Spec) {
			s.Kind = ConfigGrid
			s.Axes = Axes{Workloads: []string{"mix-high"}, Grid: []GridLevel{{FlipTH: 6250}}}
		}, "empty rfmths"},
		{"configgrid duplicate grid level", func(s *Spec) {
			s.Kind = ConfigGrid
			s.Axes = Axes{Workloads: []string{"mix-high"},
				Grid: []GridLevel{{FlipTH: 6250, RFMTHs: []int{64}}, {FlipTH: 6250, RFMTHs: []int{32}}}}
		}, "duplicate flipth"},
		{"adth empty adths", func(s *Spec) {
			s.Kind = AdTHSweep
			s.Axes = Axes{Configs: []ConfigPoint{{FlipTH: 6250, RFMTH: 64}}, Workloads: []string{"multi-programmed"}}
		}, "non-empty adths"},
		{"adth unknown workload", func(s *Spec) {
			s.Kind = AdTHSweep
			s.Axes = Axes{Configs: []ConfigPoint{{FlipTH: 6250, RFMTH: 64}}, AdTHs: []int{0},
				Workloads: []string{"mix-high"}}
		}, "unknown workload"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := minimal()
			c.mutate(s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, c.want)
			}
		})
	}
}

// A safety attack whose argument is syntactically valid but whose
// coordinates fall outside the bank must fail when the runner is built,
// not rows-deep into the sweep.
func TestSafetyAttackCoordinatesFailBeforeSweep(t *testing.T) {
	s := &Spec{Name: "bad", Kind: SafetyKind, Scale: ScaleSpec{Preset: "quick"},
		Axes: Axes{Schemes: []string{"none"}, FlipTHs: []int{2000}, Attacks: []string{"multi:40000"}}}
	if err := s.Validate(); err != nil {
		t.Fatalf("multi:40000 is syntactically valid, got %v", err)
	}
	_, err := s.RunAt(QuickScale())
	if err == nil || !strings.Contains(err.Error(), "outside bank") {
		t.Errorf("RunAt = %v, want an outside-bank error before any simulation", err)
	}
}

func TestLoadAllDuplicateNames(t *testing.T) {
	one := `{"name": "same", "kind": "comparison", "scale": {"preset": "quick"},
		"axes": {"schemes": ["mithril"], "workloads": ["normal"]}}`
	fsys := fstest.MapFS{
		"specs/a.json": {Data: []byte(one)},
		"specs/b.json": {Data: []byte(one)},
	}
	_, err := LoadAll(fsys, "specs")
	if err == nil || !strings.Contains(err.Error(), "duplicate name") {
		t.Errorf("LoadAll = %v, want duplicate-name error", err)
	}
}

func TestScaleResolveOverrides(t *testing.T) {
	sc, err := ScaleSpec{Preset: "quick", Cores: 2, InstrPerCore: 500, Seed: 7}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Cores != 2 || sc.InstrPerCore != 500 || sc.Seed != 7 {
		t.Errorf("resolved %+v", sc)
	}
	if sc.TimeScale != QuickScale().TimeScale {
		t.Errorf("TimeScale = %d, want the preset's %d", sc.TimeScale, QuickScale().TimeScale)
	}
	if _, err := (ScaleSpec{Preset: "golden"}).Resolve(); err != nil {
		t.Errorf("golden preset: %v", err)
	}
}

// Expansion must be deterministic (the CI golden gate depends on stable
// row order) and follow the documented (seed, FlipTH, scheme, workload,
// adversarial-last) nesting.
func TestExpandDeterministicOrder(t *testing.T) {
	s := &Spec{
		Name: "order", Kind: Comparison, Scale: ScaleSpec{Preset: "quick"},
		Axes: Axes{
			Schemes:     []string{"parfm", "mithril"},
			FlipTHs:     []int{6250, 1500},
			Workloads:   []string{"normal", "multi-sided-rh"},
			Attacks:     []string{"decoy"},
			Adversarial: true,
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	sc := QuickScale()
	first := s.Expand(sc)
	second := s.Expand(sc)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("Expand is not deterministic")
	}
	want := []Cell{
		{Seed: 1, FlipTH: 6250, Scheme: "parfm", Workload: "normal"},
		{Seed: 1, FlipTH: 6250, Scheme: "parfm", Workload: "multi-sided-rh"},
		{Seed: 1, FlipTH: 6250, Scheme: "parfm", Attack: "decoy"},
		{Seed: 1, FlipTH: 6250, Scheme: "parfm", Workload: "bh-adversarial/parfm", Adversarial: true},
		{Seed: 1, FlipTH: 6250, Scheme: "mithril", Workload: "normal"},
		{Seed: 1, FlipTH: 6250, Scheme: "mithril", Workload: "multi-sided-rh"},
		{Seed: 1, FlipTH: 6250, Scheme: "mithril", Attack: "decoy"},
		{Seed: 1, FlipTH: 6250, Scheme: "mithril", Workload: "bh-adversarial/mithril", Adversarial: true},
		{Seed: 1, FlipTH: 1500, Scheme: "parfm", Workload: "normal"},
		{Seed: 1, FlipTH: 1500, Scheme: "parfm", Workload: "multi-sided-rh"},
		{Seed: 1, FlipTH: 1500, Scheme: "parfm", Attack: "decoy"},
		{Seed: 1, FlipTH: 1500, Scheme: "parfm", Workload: "bh-adversarial/parfm", Adversarial: true},
		{Seed: 1, FlipTH: 1500, Scheme: "mithril", Workload: "normal"},
		{Seed: 1, FlipTH: 1500, Scheme: "mithril", Workload: "multi-sided-rh"},
		{Seed: 1, FlipTH: 1500, Scheme: "mithril", Attack: "decoy"},
		{Seed: 1, FlipTH: 1500, Scheme: "mithril", Workload: "bh-adversarial/mithril", Adversarial: true},
	}
	if !reflect.DeepEqual(first, want) {
		t.Errorf("Expand order:\n got %v\nwant %v", first, want)
	}
}

// Without a flipths axis, comparison specs inherit the scale's sweep; the
// seeds axis multiplies the grid with seed outermost.
func TestExpandInheritsScaleAndSeeds(t *testing.T) {
	s := minimal()
	s.Axes.Seeds = []uint64{1, 2}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	sc := QuickScale() // FlipTHs {50000, 6250, 1500}
	cells := s.Expand(sc)
	if len(cells) != 2*len(sc.FlipTHs) {
		t.Fatalf("len = %d, want %d", len(cells), 2*len(sc.FlipTHs))
	}
	if cells[0].Seed != 1 || cells[len(sc.FlipTHs)].Seed != 2 {
		t.Errorf("seed is not the outermost axis: %v", cells)
	}
	if cells[0].FlipTH != sc.FlipTHs[0] {
		t.Errorf("FlipTH = %d, want scale's %d", cells[0].FlipTH, sc.FlipTHs[0])
	}
}

func TestExpandOtherKinds(t *testing.T) {
	grid := &Spec{Name: "g", Kind: ConfigGrid, Scale: ScaleSpec{Preset: "quick"},
		Axes: Axes{Workloads: []string{"mix-high"},
			Grid: []GridLevel{{FlipTH: 12500, RFMTHs: []int{512, 256}}, {FlipTH: 1500, RFMTHs: []int{512, 32}}}}}
	if err := grid.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := grid.Expand(QuickScale())
	// (1500, 512) is analytically infeasible at these parameters (Theorem
	// 1 has no table size), so Expand excludes it: the returned cells pair
	// one-to-one with the rows a run emits.
	want := []Cell{
		{Seed: 1, FlipTH: 12500, RFMTH: 512, Workload: "mix-high"},
		{Seed: 1, FlipTH: 12500, RFMTH: 256, Workload: "mix-high"},
		{Seed: 1, FlipTH: 1500, RFMTH: 32, Workload: "mix-high"},
	}
	if !reflect.DeepEqual(cells, want) {
		t.Errorf("configgrid cells = %v, want %v (infeasible (1500,512) excluded)", cells, want)
	}

	saf := &Spec{Name: "s", Kind: SafetyKind, Scale: ScaleSpec{Preset: "quick"},
		Axes: Axes{Schemes: []string{"none", "mithril"}, FlipTHs: []int{2000},
			Attacks: []string{"double", "multi:32"}}}
	if err := saf.Validate(); err != nil {
		t.Fatal(err)
	}
	cells = saf.Expand(QuickScale())
	// Attack outermost, schemes inner — the goldens pin this order.
	if len(cells) != 4 || cells[0].Attack != "double" || cells[1].Scheme != "mithril" ||
		cells[2].Attack != "multi:32" {
		t.Errorf("safety cells = %v", cells)
	}
}

func TestDefaultColumnsPerKind(t *testing.T) {
	adth := &Spec{Kind: AdTHSweep, Axes: Axes{Workloads: []string{"multi-programmed", "multi-threaded"}}}
	got := adth.defaultColumns()
	want := []string{"flipth", "rfmth", "adth", "energy:multi-programmed", "energy:multi-threaded", "nentry"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("adth defaults = %v, want %v", got, want)
	}
	if cols := minimal().defaultColumns(); cols[0] != "scheme" || len(cols) != 7 {
		t.Errorf("comparison defaults = %v", cols)
	}
}
