// Trace replay: drive the simulator from a recorded memory trace instead
// of a synthetic generator, and measure it alongside a registry attack.
//
// The open scenario registries make both axes data, not code: workloads
// resolve by name through mithril.NewWorkload — including the
// "trace:<path>" form, which replays a trace file in the README's
// trace-file format — and attack patterns resolve by name inside spec
// files ("multi:<n>", "decoy", ...). This example records a short trace,
// replays it through an inline spec with an attacks axis, and prints the
// catalogs a scenario author picks from.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mithril"
)

const specTemplate = `{
  "name": "trace-replay",
  "title": "Trace replay vs multi-sided RowHammer",
  "kind": "comparison",
  "scale": {"preset": "quick", "cores": 4, "instr_per_core": 5000},
  "axes": {
    "schemes": ["mithril"],
    "flipths": [6250],
    "workloads": [%q],
    "attacks": ["multi:8"]
  }
}`

func main() {
	// The scenario catalogs: everything a spec's workloads/attacks axes
	// can name (plus the trace:<path> form exercised below).
	fmt.Println("registered workloads:", mithril.WorkloadNames())
	fmt.Println("registered attacks:  ", mithril.AttackNames())

	// Record a toy trace: a streaming burst with a store every fourth
	// access. Real traces come from a memory profiler or another
	// simulator; the format is three columns — gap, R|W, 0x-hex address.
	path := filepath.Join(os.TempDir(), "trace_replay_example.trace")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		op := "R"
		if i%4 == 3 {
			op = "W"
		}
		fmt.Fprintf(f, "10 %s %#x\n", op, 0x40000+64*i)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)

	// The trace resolves like any registered workload.
	w, err := mithril.NewWorkload("trace:"+path, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload %q replays on %d cores\n\n", w.Name, len(w.Fresh()))

	// Run it through the spec engine next to a registry attack: one row
	// measures the replay, one the benign mix under a multi-sided hammer.
	sp, err := mithril.ParseSpec([]byte(fmt.Sprintf(specTemplate, "trace:"+path)))
	if err != nil {
		log.Fatal(err)
	}
	eng := mithril.NewEngine(mithril.DDR5())
	res, err := eng.RunSpec(context.Background(), sp)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Emit(os.Stdout, mithril.FormatTable); err != nil {
		log.Fatal(err)
	}
}
