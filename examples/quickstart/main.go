// Quickstart: size a Mithril counter table with Theorem 1, then run a
// declarative experiment spec — the same JSON format the shipped
// specs/*.json figures use — through a mithril.Engine, comparing Mithril
// against PARFM on a benign workload, and print the human table plus
// machine-readable CSV rows.
//
// The Engine is the context-aware entry point: construct it once with
// functional options (worker count, progress hook, shared baseline cache)
// and drive every run through it. Ctrl-C cancels the sweep mid-simulation
// via the context. New scenarios are new spec files, not new code: edit
// the axes below (or point `mithrilsim run` at a .json file) to change
// the scheme subset, FlipTH grid, workloads, or seeds.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"mithril"
)

// spec is a small comparison grid: two schemes × two FlipTH levels on the
// mix-high workload, at a reduced quick scale so it runs in seconds.
const spec = `{
  "name": "quickstart",
  "title": "Quickstart — Mithril vs PARFM on mix-high",
  "kind": "comparison",
  "scale": {"preset": "quick", "cores": 4, "instr_per_core": 4000},
  "axes": {
    "schemes": ["parfm", "mithril"],
    "flipths": [6250, 1500],
    "workloads": ["mix-high"]
  }
}`

func main() {
	// Ctrl-C cancels the context; the Engine aborts in-flight simulations.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	p := mithril.DDR5()
	const flipTH = 6250 // the paper's "recently observed" threshold

	// Theorem 1 sizing: the minimal counter table for RFMTH = 128.
	cfg, ok := mithril.Configure(p, flipTH, 128, 0)
	if !ok {
		log.Fatal("no feasible configuration")
	}
	fmt.Printf("Mithril config: %s\n", cfg)
	fmt.Printf("Theorem 1 bound M = %.0f (< FlipTH/2 = %d)\n\n",
		mithril.BoundM(p, cfg.NEntry, cfg.RFMTH), flipTH/2)

	// Parse + validate the spec (unknown schemes, workloads, or axes fail
	// here, before any simulation runs).
	sp, err := mithril.ParseSpec([]byte(spec))
	if err != nil {
		log.Fatal(err)
	}

	// One Engine, configured once: all cores, per-grid-point progress.
	eng := mithril.NewEngine(p,
		mithril.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d grid points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}),
	)
	res, err := eng.RunSpec(ctx, sp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s\n\n", sp.Title)
	if err := res.Emit(os.Stdout, mithril.FormatTable); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nmachine-readable (CSV; mithril.FormatJSON for a document):")
	if err := res.Emit(os.Stdout, mithril.FormatCSV); err != nil {
		log.Fatal(err)
	}

	// Streaming: the same grid again, but rows arrive as workers finish
	// them (completion order — Row.Index is the grid position). This is
	// what `mithrilsim serve` sends a client as NDJSON.
	fmt.Println("\nstreaming (completion order):")
	sc, _ := sp.Scale.Resolve()
	for row, err := range eng.Stream(ctx, sp) {
		if err != nil {
			log.Fatal(err)
		}
		vals, err := sp.RowValues(sc, row)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  row %d: %s flipTH=%v perf=%.2f%%\n",
			row.Index, vals["scheme"], vals["flipth"], row.Perf.RelativePerformance)
	}
}
