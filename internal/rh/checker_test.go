package rh

import (
	"testing"
	"testing/quick"

	"mithril/internal/timing"
)

func TestDoubleSidedDisturbance(t *testing.T) {
	c := NewChecker(100, 1000, nil)
	c.OnActivate(50, 0)
	if got := c.Disturbance(49); got != 1 {
		t.Errorf("row 49 disturbance = %v, want 1", got)
	}
	if got := c.Disturbance(51); got != 1 {
		t.Errorf("row 51 disturbance = %v, want 1", got)
	}
	if got := c.Disturbance(50); got != 0 {
		t.Errorf("aggressor itself should not accumulate, got %v", got)
	}
	if got := c.Disturbance(48); got != 0 {
		t.Errorf("distance-2 should be untouched in double-sided model, got %v", got)
	}
}

func TestDoubleSidedAttackFlipsAtHalfFlipTH(t *testing.T) {
	// Two aggressors around one victim: FlipTH/2 ACTs on each flips it.
	const flipTH = 100
	c := NewChecker(10, flipTH, nil)
	for i := 0; i < flipTH/2; i++ {
		c.OnActivate(4, timing.PicoSeconds(i))
		c.OnActivate(6, timing.PicoSeconds(i))
	}
	flips := c.Flips()
	if len(flips) != 1 {
		t.Fatalf("got %d flips, want exactly 1 (the shared victim)", len(flips))
	}
	if flips[0].Row != 5 {
		t.Errorf("flipped row %d, want 5", flips[0].Row)
	}
	if r := c.Report(); r.Safe() {
		t.Error("report should be unsafe")
	}
}

func TestSingleSidedNeedsFullFlipTH(t *testing.T) {
	const flipTH = 100
	c := NewChecker(10, flipTH, nil)
	for i := 0; i < flipTH-1; i++ {
		c.OnActivate(4, 0)
	}
	if len(c.Flips()) != 0 {
		t.Fatal("one-sided attack below FlipTH must not flip")
	}
	c.OnActivate(4, 0)
	if len(c.Flips()) != 2 {
		t.Fatalf("at FlipTH both neighbours flip, got %d", len(c.Flips()))
	}
}

func TestRefreshResetsDisturbance(t *testing.T) {
	const flipTH = 50
	c := NewChecker(10, flipTH, nil)
	for i := 0; i < flipTH-1; i++ {
		c.OnActivate(4, 0)
	}
	c.OnRefresh(3)
	c.OnRefresh(5)
	for i := 0; i < flipTH-1; i++ {
		c.OnActivate(4, 0)
	}
	if len(c.Flips()) != 0 {
		t.Fatal("refresh between bursts should prevent flips")
	}
	if got := c.Disturbance(3); got != flipTH-1 {
		t.Errorf("post-refresh accumulation = %v, want %d", got, flipTH-1)
	}
}

func TestFlipLatchedUntilRefresh(t *testing.T) {
	c := NewChecker(10, 10, nil)
	for i := 0; i < 30; i++ {
		c.OnActivate(4, 0)
	}
	if len(c.Flips()) != 2 {
		t.Fatalf("flips should be latched once per epoch, got %d", len(c.Flips()))
	}
	c.OnRefresh(3)
	for i := 0; i < 10; i++ {
		c.OnActivate(4, 0)
	}
	if len(c.Flips()) != 3 {
		t.Fatalf("after refresh a new epoch can flip again, got %d", len(c.Flips()))
	}
}

func TestNonAdjacentWeights(t *testing.T) {
	if got := AggregatedEffect(NonAdjacentWeights()); got != 3.5 {
		t.Fatalf("aggregated effect = %v, want 3.5 (Section V-C)", got)
	}
	if got := AggregatedEffect(DoubleSidedWeights()); got != 2 {
		t.Fatalf("double-sided aggregated effect = %v, want 2", got)
	}
	c := NewChecker(100, 1000, NonAdjacentWeights())
	c.OnActivate(50, 0)
	for _, tc := range []struct {
		row  int
		want float64
	}{{49, 1}, {51, 1}, {48, 0.5}, {52, 0.5}, {47, 0.25}, {53, 0.25}, {46, 0}} {
		if got := c.Disturbance(tc.row); got != tc.want {
			t.Errorf("row %d disturbance = %v, want %v", tc.row, got, tc.want)
		}
	}
}

func TestEdgeRowsHaveFewerNeighbours(t *testing.T) {
	c := NewChecker(4, 100, NonAdjacentWeights())
	c.OnActivate(0, 0) // neighbours only on the right
	if got := c.Disturbance(1); got != 1 {
		t.Errorf("row 1 = %v, want 1", got)
	}
	if got := c.Disturbance(3); got != 0.25 {
		t.Errorf("row 3 = %v, want 0.25", got)
	}
}

func TestMaxDisturbanceTracksHighWaterMark(t *testing.T) {
	c := NewChecker(10, 1000, nil)
	for i := 0; i < 42; i++ {
		c.OnActivate(4, 0)
	}
	c.OnRefresh(3)
	c.OnRefresh(5)
	max, row := c.MaxDisturbance()
	if max != 42 || (row != 3 && row != 5) {
		t.Fatalf("MaxDisturbance = (%v, %d), want (42, 3 or 5)", max, row)
	}
}

func TestReportFields(t *testing.T) {
	c := NewChecker(10, 100, nil)
	for i := 0; i < 40; i++ {
		c.OnActivate(4, 0)
	}
	c.OnRefresh(3)
	r := c.Report()
	if !r.Safe() {
		t.Fatal("should be safe")
	}
	if r.ACTs != 40 || r.Refreshes != 1 {
		t.Errorf("counts = (%d, %d), want (40, 1)", r.ACTs, r.Refreshes)
	}
	if r.MarginPercent != 60 {
		t.Errorf("margin = %v%%, want 60%%", r.MarginPercent)
	}
	if r.String() == "" || (Flip{}).String() == "" {
		t.Error("String() should render")
	}
}

func TestOutOfRangeHandling(t *testing.T) {
	c := NewChecker(10, 100, nil)
	c.OnRefresh(-1) // ignored
	c.OnRefresh(99) // ignored
	if got := c.Disturbance(-5); got != 0 {
		t.Error("out-of-range disturbance should read 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("OnActivate out of range should panic (simulator bug)")
		}
	}()
	c.OnActivate(10, 0)
}

func TestConstructorPanics(t *testing.T) {
	for _, build := range []func(){
		func() { NewChecker(0, 100, nil) },
		func() { NewChecker(10, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor args should panic")
				}
			}()
			build()
		}()
	}
}

func TestDisturbanceConservationProperty(t *testing.T) {
	// Property: with double-sided weights and no refreshes, total
	// disturbance equals ACTs × (neighbours in range).
	f := func(seed uint64) bool {
		c := NewChecker(64, 1<<30, nil)
		r := seed
		total := 0.0
		for i := 0; i < 500; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			row := int(r>>33)%62 + 1 // interior rows: always 2 neighbours
			c.OnActivate(row, 0)
			total += 2
		}
		sum := 0.0
		for row := 0; row < 64; row++ {
			sum += c.Disturbance(row)
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestResetRestoresFreshBehaviour(t *testing.T) {
	hammer := func(c *Checker) (int, float64) {
		for i := 0; i < 30; i++ {
			c.OnActivate(8, timing.PicoSeconds(i))
		}
		max, _ := c.MaxDisturbance()
		return len(c.Flips()), max
	}
	c := NewChecker(64, 10, nil)
	fresh := NewChecker(64, 10, nil)
	wantFlips, wantMax := hammer(fresh)
	if wantFlips == 0 {
		t.Fatal("setup: hammering must produce flips")
	}
	hammer(c)
	c.Reset()
	// All per-row state must read as untouched without any array rewrite.
	for row := 0; row < 64; row++ {
		if d := c.Disturbance(row); d != 0 {
			t.Fatalf("row %d keeps disturbance %g after Reset", row, d)
		}
	}
	if acts, refs := c.Counts(); acts != 0 || refs != 0 {
		t.Fatalf("counters survive Reset: %d ACTs, %d refreshes", acts, refs)
	}
	if len(c.Flips()) != 0 {
		t.Fatalf("flip log survives Reset: %v", c.Flips())
	}
	// The next epoch must latch flips again exactly like a fresh checker.
	if flips, max := hammer(c); flips != wantFlips || max != wantMax {
		t.Fatalf("post-Reset epoch: %d flips / max %g, fresh checker: %d / %g",
			flips, max, wantFlips, wantMax)
	}
}

func TestRefreshOfUntouchedRowStillCounts(t *testing.T) {
	c := NewChecker(64, 10, nil)
	c.OnRefresh(5) // row never activated: stamp probe path
	c.OnActivate(10, 0)
	c.OnRefresh(9) // touched neighbour: full reset path
	if d := c.Disturbance(9); d != 0 {
		t.Fatalf("refreshed row keeps disturbance %g", d)
	}
	if _, refs := c.Counts(); refs != 2 {
		t.Fatalf("refresh count = %d, want 2 (untouched rows still count)", refs)
	}
}
