package distrib

import (
	"encoding/json"
	"fmt"

	"mithril/internal/expspec"
)

// RunPath is the versioned worker endpoint a coordinator POSTs shards to.
const RunPath = "/v1/run"

// APIError is the uniform /v1 error envelope body: every non-200 response
// and every terminal NDJSON error record carries one under an "error"
// key. Code is a stable machine-readable slug; Message is for humans.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *APIError) Error() string { return e.Message }

// Error codes the serve API emits. Coordinators treat bad_request,
// conflict, and run_failed as permanent (another worker will fail the
// same way); anything else — and any transport failure — is retryable.
const (
	CodeBadRequest  = "bad_request" // malformed request, unknown spec field, bad subset
	CodeConflict    = "conflict"    // stamp or grid mismatch: coordinator/worker version drift
	CodeRunFailed   = "run_failed"  // a simulation failed mid-stream (deterministic)
	CodeUnavailable = "unavailable" // worker shutting down or overloaded
	CodeNotFound    = "not_found"   // unknown path
	CodeMethod      = "bad_method"  // wrong HTTP method
)

// WireScale is a resolved expspec.Scale on the wire. Jobs is deliberately
// absent: parallelism is a per-process resource, so each worker applies
// its own; every other field shapes row values and must transfer exactly.
type WireScale struct {
	Cores        int    `json:"cores"`
	InstrPerCore int64  `json:"instr_per_core"`
	FlipTHs      []int  `json:"flipths,omitempty"`
	Seed         uint64 `json:"seed"`
	TimeScale    int    `json:"time_scale"`
}

// ToWire converts a resolved scale for a shard request.
func ToWire(sc expspec.Scale) WireScale {
	return WireScale{
		Cores:        sc.Cores,
		InstrPerCore: sc.InstrPerCore,
		FlipTHs:      sc.FlipTHs,
		Seed:         sc.Seed,
		TimeScale:    sc.TimeScale,
	}
}

// Scale reconstitutes the execution scale on a worker, with the worker's
// own jobs setting applied.
func (w WireScale) Scale(jobs int) expspec.Scale {
	return expspec.Scale{
		Cores:        w.Cores,
		InstrPerCore: w.InstrPerCore,
		FlipTHs:      w.FlipTHs,
		Seed:         w.Seed,
		TimeScale:    w.TimeScale,
		Jobs:         jobs,
	}
}

// ShardRequest asks a worker to execute an explicit row-index subset of a
// spec's expanded grid. Its presence (the "spec" key) is what
// distinguishes a shard POST to /v1/run from a bare spec document.
type ShardRequest struct {
	// Spec is the full spec document; the worker re-validates it.
	Spec json.RawMessage `json:"spec"`
	// Scale is the coordinator's resolved scale (never re-resolved from
	// the spec's preset, which could drift across binaries).
	Scale WireScale `json:"scale"`
	// Rows are the grid indices to execute, in Expand order.
	Rows []int `json:"rows"`
	// Stamp is the coordinator's store stamp. A worker whose own stamp
	// differs rejects the shard with CodeConflict: its registries would
	// expand or simulate a different grid.
	Stamp string `json:"stamp"`
	// Grid is the coordinator's expanded row count, a cheap second
	// drift guard on top of Stamp.
	Grid int `json:"grid"`
}

// ShardSummary is the terminal record of a completed shard stream.
type ShardSummary struct {
	Rows      int `json:"rows"`
	Cached    int `json:"cached"`
	Simulated int `json:"simulated"`
}

// ShardRecord is one NDJSON line of a shard response: a data row (Point
// set), the terminal summary, or a terminal error. Data rows carry the
// store payload encoding (expspec.EncodeRowPayload), which round-trips
// float64 exactly — the display projections the bare /run stream uses
// drop columns and precision a merge cannot recover.
type ShardRecord struct {
	Row     int             `json:"row"`
	Cached  bool            `json:"cached,omitempty"`
	Point   json.RawMessage `json:"point,omitempty"`
	Summary *ShardSummary   `json:"summary,omitempty"`
	Error   *APIError       `json:"error,omitempty"`
}

// DecodeShardRow converts a data record back into an executed row.
func DecodeShardRow(sp *expspec.Spec, grid int, rec ShardRecord) (expspec.Row, error) {
	if rec.Row < 0 || rec.Row >= grid {
		return expspec.Row{}, fmt.Errorf("distrib: worker sent row %d outside the %d-row grid", rec.Row, grid)
	}
	row := expspec.Row{Index: rec.Row, Cached: rec.Cached}
	if !expspec.DecodeRowPayload(sp.Kind, rec.Point, &row) {
		return expspec.Row{}, fmt.Errorf("distrib: worker sent an undecodable %s point for row %d", sp.Kind, rec.Row)
	}
	return row, nil
}
