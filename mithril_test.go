package mithril

import (
	"math"
	"reflect"
	"testing"

	"mithril/internal/sim"
)

// tinyScale keeps the API-level tests fast.
func tinyScale() Scale {
	return Scale{Cores: 4, InstrPerCore: 6_000, FlipTHs: []int{6250}, Seed: 1}
}

func TestFigure2DataShape(t *testing.T) {
	pts := Figure2Data()
	if len(pts) == 0 {
		t.Fatal("no data")
	}
	// ARR line linear and below the RFM curves at low thresholds.
	first := pts[0]
	if first.RFM[64] < first.ARR {
		t.Fatal("RFM retrofit should be no better than ARR")
	}
}

func TestFigure6DataShape(t *testing.T) {
	series := Figure6Data()
	if len(series) != 6 {
		t.Fatalf("series = %d, want 6 FlipTH levels", len(series))
	}
	for _, s := range series {
		if len(s.CbS) == 0 {
			t.Fatalf("FlipTH %d has no feasible configs", s.FlipTH)
		}
		// Table size shrinks with RFMTH within one FlipTH line.
		for i := 1; i < len(s.CbS); i++ {
			if s.CbS[i].RFMTH < s.CbS[i-1].RFMTH && s.CbS[i].TableKB > s.CbS[i-1].TableKB {
				t.Fatalf("FlipTH %d: table should shrink as RFMTH drops (%v then %v)",
					s.FlipTH, s.CbS[i-1], s.CbS[i])
			}
		}
	}
	// Lossy lines exist at 25K/50K and are larger than CbS at equal RFMTH.
	for _, s := range series {
		if s.FlipTH < 25000 {
			continue
		}
		if len(s.Lossy) == 0 {
			t.Fatalf("FlipTH %d: missing lossy curve", s.FlipTH)
		}
		cbs := map[int]float64{}
		for _, c := range s.CbS {
			cbs[c.RFMTH] = c.TableKB
		}
		for _, l := range s.Lossy {
			if kb, ok := cbs[l.RFMTH]; ok && l.TableKB <= kb {
				t.Fatalf("FlipTH %d RFMTH %d: lossy %.3fKB not larger than CbS %.3fKB",
					s.FlipTH, l.RFMTH, l.TableKB, kb)
			}
		}
	}
}

func TestFigure8Characterization(t *testing.T) {
	d := Figure8()
	if d.SmallDistinct > 10 || d.LargeDistinct < 20*d.SmallDistinct {
		t.Fatalf("sweep concentration broken: small=%d large=%d", d.SmallDistinct, d.LargeDistinct)
	}
	// Paper: ~128 accesses per row (8KB row / 64B line) — per channel ~64+.
	if d.SmallMaxRow < 60 {
		t.Fatalf("per-row burst = %d, want ≥ 60", d.SmallMaxRow)
	}
	if len(d.Activations) == 0 || len(d.Activations) >= len(d.SmallWindow) {
		t.Fatalf("activations = %d of %d", len(d.Activations), len(d.SmallWindow))
	}
}

func TestTable4DataFeasibilityMatchesPaper(t *testing.T) {
	computed, paper := Table4Data()
	if len(computed) != len(paper) {
		t.Fatalf("row counts differ: %d vs %d", len(computed), len(paper))
	}
	for i := range computed {
		for f, ours := range computed[i].KB {
			ref := paper[i].KB[f]
			if math.IsNaN(ours) != math.IsNaN(ref) {
				t.Errorf("%s @ %d: dash mismatch", computed[i].Scheme, f)
			}
		}
	}
}

func TestConfigureAPI(t *testing.T) {
	c, ok := Configure(DDR5(), 6250, 128, 0)
	if !ok || c.NEntry == 0 {
		t.Fatalf("Configure failed: %+v", c)
	}
	if BoundM(DDR5(), c.NEntry, 128) >= 6250/2 {
		t.Fatal("returned config violates Theorem 1")
	}
	if BoundMPrime(DDR5(), c.NEntry, 128, 200) < BoundM(DDR5(), c.NEntry, 128) {
		t.Fatal("M' should not be below M")
	}
	if _, ok := Configure(DDR5(), 1500, 256, 0); ok {
		t.Fatal("1.5K @ 256 should be infeasible")
	}
}

func TestPARFMAnalysisAPI(t *testing.T) {
	r, ok := PARFMRequiredRFMTH(6250)
	if !ok || r <= 0 {
		t.Fatalf("required RFMTH = %d", r)
	}
	bank, system := PARFMFailure(6250, r)
	if system > 1e-15 || bank > system {
		t.Fatalf("failure probabilities: bank=%g system=%g", bank, system)
	}
}

func TestNewSchemeAndRunEndToEnd(t *testing.T) {
	s, err := NewScheme("mithril+", SchemeOptions{Timing: DDR5(), FlipTH: 6250})
	if err != nil {
		t.Fatal(err)
	}
	sc := tinyScale()
	cfg := baseSimConfig(6250, sc)
	cmp, err := Compare(cfg, MixBlend(sc.Cores, 1), s)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.RelativePerformance <= 0 {
		t.Fatalf("relative performance = %v", cmp.RelativePerformance)
	}
	if !cmp.Protected.Safety.Safe() {
		t.Fatal("benign run must stay safe")
	}
}

func TestFigure7DataSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sc := tinyScale()
	pts, err := Figure7Data(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("points = %d, want 2 configs × 5 AdTH", len(pts))
	}
	// AdTH=200 must not cost more energy than AdTH=0 on the same config
	// and workload (the entire point of adaptive refresh).
	for _, w := range []string{"multi-programmed", "multi-threaded"} {
		if pts[4].EnergyOverheadPct[w] > pts[0].EnergyOverheadPct[w]+0.5 {
			t.Errorf("%s: energy at AdTH=200 (%.2f%%) above AdTH=0 (%.2f%%)",
				w, pts[4].EnergyOverheadPct[w], pts[0].EnergyOverheadPct[w])
		}
	}
	// Additional Nentry grows with AdTH and stays modest.
	if pts[0].AdditionalNEntryPct != 0 || pts[4].AdditionalNEntryPct <= 0 || pts[4].AdditionalNEntryPct > 25 {
		t.Errorf("additional Nentry: %v .. %v", pts[0].AdditionalNEntryPct, pts[4].AdditionalNEntryPct)
	}
}

func TestBenignIPCAttackerClamp(t *testing.T) {
	res := sim.Result{IPCs: []float64{1, 2, 4}}
	cases := []struct {
		attackers int
		want      float64
	}{
		{0, 7},
		{1, 3},
		{2, 1},
		{-1, 7}, // negative count means none — must not walk past the slice
		{-10, 7},
		{3, 0},
		{5, 0}, // more attackers than cores: nothing benign to sum
	}
	for _, c := range cases {
		if got := benignIPC(res, c.attackers); got != c.want {
			t.Errorf("benignIPC(attackers=%d) = %v, want %v", c.attackers, got, c.want)
		}
	}
}

// TestParallelSweepMatchesSerial pins the sweep engine's determinism
// guarantee: fanning the cells out over workers must return exactly the
// serial path's results, in the serial path's order.
func TestParallelSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sc := tinyScale()
	sc.InstrPerCore = 2_000
	serial, parallel := sc, sc
	serial.Jobs = 1
	parallel.Jobs = 4

	s10, err := Figure10Data(serial)
	if err != nil {
		t.Fatal(err)
	}
	p10, err := Figure10Data(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s10, p10) {
		t.Errorf("Figure10Data diverges:\nserial:   %v\nparallel: %v", s10, p10)
	}

	s9, err := Figure9Data(serial)
	if err != nil {
		t.Fatal(err)
	}
	p9, err := Figure9Data(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s9, p9) {
		t.Errorf("Figure9Data diverges:\nserial:   %v\nparallel: %v", s9, p9)
	}
}

func TestSafetySweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sc := tinyScale()
	sc.InstrPerCore = 10_000
	results, err := SafetySweep(sc, 2000)
	if err != nil {
		t.Fatal(err)
	}
	sawUnprotectedFlip := false
	for _, r := range results {
		if r.Scheme == "none" {
			if !r.Safe {
				sawUnprotectedFlip = true
			}
			continue
		}
		if !r.Safe {
			t.Errorf("%s flipped under %s: %d flips (max disturbance %.0f)",
				r.Scheme, r.Attack, r.Flips, r.MaxDisturbance)
		}
	}
	if !sawUnprotectedFlip {
		t.Error("control (none) never flipped — attack too weak to be meaningful")
	}
}
