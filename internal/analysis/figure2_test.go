package analysis

import (
	"testing"

	"mithril/internal/timing"
)

func TestARRGrapheneLinear(t *testing.T) {
	// Calibrated to the paper's example: T = 2K protects FlipTH = 10K.
	if got := ARRGrapheneSafeFlipTH(2000); got != 10000 {
		t.Fatalf("ARR-Graphene(2K) = %v, want 10K", got)
	}
	if got := ARRGrapheneSafeFlipTH(4000); got != 2*ARRGrapheneSafeFlipTH(2000) {
		t.Fatal("ARR-Graphene must be linear in the threshold")
	}
	if ARRGrapheneSafeFlipTH(0) != 0 || ARRGrapheneSafeFlipTH(-5) != 0 {
		t.Fatal("non-positive thresholds should map to 0")
	}
}

func TestRFMGraphenePaperExample(t *testing.T) {
	// Paper: T = 2K, RFMTH = 64 → safe FlipTH ≈ 20K (not 10K). Our model
	// should land in the same ballpark and, critically, far above the ARR
	// value.
	p := timing.DDR5()
	got := RFMGrapheneSafeFlipTH(p, 2000, 64)
	if got < 15000 || got > 30000 {
		t.Fatalf("RFM-Graphene(2K, 64) = %v, want ≈ 20K", got)
	}
	if got <= ARRGrapheneSafeFlipTH(2000) {
		t.Fatal("RFM retrofit must be strictly worse than native ARR here")
	}
}

func TestRFMGrapheneFloorExists(t *testing.T) {
	// Lowering T cannot push safe FlipTH arbitrarily low: the buffered-row
	// wait term (S/T)·RFMTH explodes as T shrinks.
	p := timing.DDR5()
	thresholds := []int{250, 500, 1000, 2000, 4000, 8000}
	floor64 := RFMGrapheneFloor(p, 64, thresholds)
	if floor64 < 5000 {
		t.Fatalf("RFM-Graphene floor at RFMTH=64 = %v, should stay in the tens of K", floor64)
	}
	// The floor rises with RFMTH (less frequent RFM slots).
	floor256 := RFMGrapheneFloor(p, 256, thresholds)
	floor32 := RFMGrapheneFloor(p, 32, thresholds)
	if !(floor32 < floor64 && floor64 < floor256) {
		t.Fatalf("floors should order with RFMTH: %v, %v, %v", floor32, floor64, floor256)
	}
}

func TestFigure2CurveShape(t *testing.T) {
	p := timing.DDR5()
	thresholds := []int{500, 1000, 2000, 4000, 8000}
	rfmths := []int{256, 128, 64, 32}
	pts := Figure2Curve(p, thresholds, rfmths)
	if len(pts) != len(thresholds) {
		t.Fatalf("got %d points, want %d", len(pts), len(thresholds))
	}
	for _, pt := range pts {
		if len(pt.RFM) != len(rfmths) {
			t.Fatalf("threshold %d: missing RFMTH series", pt.Threshold)
		}
		for _, r := range rfmths {
			if pt.RFM[r] < pt.ARR {
				// RFM retrofit can match ARR at high T but never beat it.
				t.Errorf("T=%d RFMTH=%d: RFM %v below ARR %v", pt.Threshold, r, pt.RFM[r], pt.ARR)
			}
		}
	}
	// ARR column strictly increasing in T.
	for i := 1; i < len(pts); i++ {
		if pts[i].ARR <= pts[i-1].ARR {
			t.Fatal("ARR series should increase with T")
		}
	}
}

func TestRFMGrapheneDegenerate(t *testing.T) {
	p := timing.DDR5()
	if RFMGrapheneSafeFlipTH(p, 0, 64) != 0 || RFMGrapheneSafeFlipTH(p, 1000, 0) != 0 {
		t.Fatal("degenerate inputs should map to 0")
	}
}
