package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the suite's interprocedural layer: a module-wide call graph
// built once per RunAnalyzers invocation over every type-checked package,
// shared by all analyzers through Pass.Graph. Static calls resolve exactly
// (the same staticCallee/TypesFuncID resolution the intraprocedural
// analyzers always used); dynamic calls are over-approximated:
//
//   - interface method calls match every declared method in the loaded
//     packages with the same name whose receiver type (or its pointer)
//     implements the interface;
//   - function-value calls match every declared function or method with an
//     identical signature.
//
// Over-approximation errs toward more edges, so reachability facts derived
// from the graph ("this call may block") are sound for the analyzers that
// consume them, at the cost of occasional deliberate-and-annotated false
// positives (see //mithril:allow).

// A CallKind classifies how a call site was resolved.
type CallKind int

const (
	// CallUnknown marks non-calls in call syntax: conversions and builtins.
	CallUnknown CallKind = iota
	// CallStatic is an exactly resolved call to one declared function.
	CallStatic
	// CallIface is an interface method call, over-approximated by
	// method-set matching.
	CallIface
	// CallFuncValue is a call through a function value (closure, field,
	// parameter), over-approximated by signature matching.
	CallFuncValue
)

// CallTargets is the resolution of one call site.
type CallTargets struct {
	Kind CallKind
	// Static is the exact callee for CallStatic, or the interface method
	// object for CallIface. Nil for CallFuncValue and CallUnknown.
	Static *types.Func
	// IDs are the FuncID keys the call may reach, sorted. Exactly one
	// (possibly outside the loaded packages) for CallStatic; the
	// over-approximated candidate set for CallIface/CallFuncValue.
	IDs []string
}

// A CGCall is one call site inside a node, in source order.
type CGCall struct {
	Call    *ast.CallExpr
	Targets CallTargets
}

// A CGNode is one declared function with a body.
type CGNode struct {
	ID    string
	Decl  *ast.FuncDecl
	Pkg   *Package
	Calls []CGCall
}

// methodCand is a declared method considered during interface
// over-approximation.
type methodCand struct {
	id   string
	recv types.Type
}

// sigCand is a declared function or method considered during
// function-value over-approximation.
type sigCand struct {
	id  string
	sig *types.Signature
}

// A CallGraph holds every declared function in the loaded packages and the
// over-approximated call edges between them, plus the derived
// may-block fixpoint consumed by lockheld.
type CallGraph struct {
	Nodes map[string]*CGNode

	methodsByName map[string][]methodCand
	funcsBySig    []sigCand

	blockingOnce bool
	blocking     map[string]string // FuncID -> reason the function may block
}

// BuildCallGraph constructs the interprocedural layer over every
// type-checked package. Function literals are attributed to their
// enclosing declaration: a call made inside a closure is an edge out of
// the function that created the closure (an over-approximation — the
// closure may escape — but the sound direction for may-block facts).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Nodes:         map[string]*CGNode{},
		methodsByName: map[string][]methodCand{},
	}
	// Pass 1: declare nodes and collect dynamic-dispatch candidates.
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				id := FuncID(pkg.PkgPath, fd)
				g.Nodes[id] = &CGNode{ID: id, Decl: fd, Pkg: pkg}
				fn, okFn := pkg.Info.Defs[fd.Name].(*types.Func)
				if !okFn {
					continue
				}
				sig, okSig := fn.Type().(*types.Signature)
				if !okSig {
					continue
				}
				g.funcsBySig = append(g.funcsBySig, sigCand{id: id, sig: sig})
				if recv := sig.Recv(); recv != nil {
					g.methodsByName[fn.Name()] = append(g.methodsByName[fn.Name()],
						methodCand{id: id, recv: recv.Type()})
				}
			}
		}
	}
	// Pass 2: resolve every call site.
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				node := g.Nodes[FuncID(pkg.PkgPath, fd)]
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, okCall := n.(*ast.CallExpr)
					if !okCall {
						return true
					}
					tg := g.ResolveCall(pkg.Info, call)
					if tg.Kind != CallUnknown {
						node.Calls = append(node.Calls, CGCall{Call: call, Targets: tg})
					}
					return true
				})
			}
		}
	}
	return g
}

// ResolveCall is the suite's single call-resolution engine. Static calls
// resolve exactly; interface calls over-approximate by method-set
// matching; function-value calls over-approximate by signature matching.
func (g *CallGraph) ResolveCall(info *types.Info, call *ast.CallExpr) CallTargets {
	// Conversions and builtins are call syntax, not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return CallTargets{Kind: CallUnknown}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return CallTargets{Kind: CallUnknown}
		}
	}

	if fn := staticCallee(info, call); fn != nil {
		if fid := TypesFuncID(fn); fid != "" {
			return CallTargets{Kind: CallStatic, Static: fn, IDs: []string{fid}}
		}
		// Interface method: every same-named declared method whose
		// receiver (or its pointer) satisfies the interface is a
		// potential target.
		return CallTargets{Kind: CallIface, Static: fn, IDs: g.ifaceTargets(fn)}
	}

	// Function value (closure, field, parameter): every declared function
	// or method with an identical signature is a potential target.
	sig := callSignature(info, call)
	if sig == nil {
		return CallTargets{Kind: CallUnknown}
	}
	return CallTargets{Kind: CallFuncValue, IDs: g.sigTargets(sig)}
}

// ifaceTargets returns the sorted candidate FuncIDs for an interface
// method call.
func (g *CallGraph) ifaceTargets(m *types.Func) []string {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var ids []string
	for _, cand := range g.methodsByName[m.Name()] {
		t := cand.recv
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			ids = append(ids, cand.id)
			continue
		}
		if p, isPtr := t.(*types.Pointer); isPtr && types.Implements(p.Elem(), iface) {
			ids = append(ids, cand.id)
		}
	}
	sort.Strings(ids)
	return ids
}

// sigTargets returns the sorted candidate FuncIDs for a function-value
// call with the given signature.
func (g *CallGraph) sigTargets(sig *types.Signature) []string {
	var ids []string
	for _, cand := range g.funcsBySig {
		if types.Identical(cand.sig, sig) {
			ids = append(ids, cand.id)
		}
	}
	sort.Strings(ids)
	return ids
}

// BlockReason reports why the named function may block — a channel
// operation, a select, a Wait, sleeping, I/O, a simulator entry point, or
// a transitive call to any of those — or "" if it provably performs none.
// Goroutine bodies spawned by the function do not count: the spawner
// itself does not block on them (goleak owns goroutine exit proofs).
func (g *CallGraph) BlockReason(id string) string {
	g.ensureBlocking()
	return g.blocking[id]
}

// blockingExternalPkgs are packages any call into which counts as
// potentially blocking I/O. sync and time are handled by name below so
// that Mutex operations themselves stay out of the blocking set.
var blockingExternalPkgs = map[string]bool{
	"os":       true,
	"net":      true,
	"net/http": true,
	"io":       true,
	"io/fs":    true,
	"bufio":    true,
}

// externalBlockReason classifies a resolved callee declared outside the
// loaded packages.
func externalBlockReason(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case blockingExternalPkgs[path]:
		return fmt.Sprintf("performs I/O (%s.%s)", path, name)
	case path == "sync" && name == "Wait":
		return "waits (sync ...Wait)"
	case path == "time" && name == "Sleep":
		return "sleeps (time.Sleep)"
	case path == "fmt" && strings.HasPrefix(name, "Fprint"),
		path == "fmt" && strings.HasPrefix(name, "Fscan"):
		return fmt.Sprintf("performs I/O (fmt.%s)", name)
	}
	return ""
}

// simEntryPrefix marks the simulator entry points: reaching one with a
// lock held would serialize entire simulations behind the mutex.
const simEntryPrefix = "mithril/internal/sim.Run"

// ensureBlocking computes the may-block fixpoint once: direct reasons per
// node (channel operations, selects, blocking external calls, simulator
// entry points), then propagation over call edges to convergence, with a
// sorted worklist so findings are deterministic.
func (g *CallGraph) ensureBlocking() {
	if g.blockingOnce {
		return
	}
	g.blockingOnce = true
	g.blocking = map[string]string{}
	for id, node := range g.Nodes {
		if strings.HasPrefix(id, simEntryPrefix) {
			g.blocking[id] = "is a simulator entry point"
			continue
		}
		if reason := directBlockReason(node); reason != "" {
			g.blocking[id] = reason
		}
	}
	// Propagate callee->caller to fixpoint. The graph is small (one
	// module); iterate rounds over sorted node IDs until stable.
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			if g.blocking[id] != "" {
				continue
			}
			for _, c := range g.Nodes[id].Calls {
				if inGoroutine(g.Nodes[id].Decl.Body, c.Call) {
					continue
				}
				for _, target := range c.Targets.IDs {
					if g.blocking[target] != "" {
						g.blocking[id] = "may block: calls " + target
						changed = true
						break
					}
				}
				if c.Targets.Kind == CallStatic && g.blocking[id] == "" {
					if reason := externalBlockReason(c.Targets.Static); reason != "" {
						g.blocking[id] = reason
						changed = true
					}
				}
				if g.blocking[id] != "" {
					break
				}
			}
		}
	}
}

// directBlockReason scans one body for operations that block the calling
// goroutine, skipping go-statement subtrees (the spawned goroutine blocks,
// not the spawner) and treating a select with a default clause as
// non-blocking (only its case bodies are scanned).
func directBlockReason(node *CGNode) string {
	var reason string
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch nn := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			reason = "performs a channel send"
			return false
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				reason = "performs a channel receive"
				return false
			}
		case *ast.SelectStmt:
			if !selectHasDefault(nn) {
				reason = "blocks in a select"
				return false
			}
			for _, clause := range nn.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					for _, stmt := range cc.Body {
						ast.Inspect(stmt, walk)
					}
				}
			}
			return false
		case *ast.RangeStmt:
			if isChanExpr(node.Pkg.Info, nn.X) {
				reason = "ranges over a channel"
				return false
			}
		}
		return true
	}
	ast.Inspect(node.Decl.Body, walk)
	return reason
}

// selectHasDefault reports whether a select statement has a default
// clause (making it non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// inGoroutine reports whether a call site lies inside a go-statement
// subtree of body (the call runs on a different goroutine, so it is not a
// blocking fact about body's own frame).
func inGoroutine(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if gs.Call == call {
			return true // the spawn itself evaluates in the spawner's frame
		}
		if gs.Pos() <= call.Pos() && call.End() <= gs.End() {
			found = true
		}
		return false
	})
	return found
}

// isChanExpr reports whether an expression has channel type.
func isChanExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
