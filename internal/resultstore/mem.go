package resultstore

import "sync"

// Mem is the in-memory Store: a mutex-guarded index over an
// insertion-ordered record slice. It backs tests and acts as a
// process-lifetime cache when no directory is configured; it is also the
// reference semantics the Disk implementation must match.
type Mem struct {
	mu   sync.Mutex
	idx  map[Key]int
	recs []Record
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{idx: map[Key]int{}}
}

// Get returns the record stored under k.
func (m *Mem) Get(k Key) (Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i, ok := m.idx[k]
	if !ok {
		return Record{}, false
	}
	return m.recs[i], true
}

// Has reports whether k is stored.
func (m *Mem) Has(k Key) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.idx[k]
	return ok
}

// Put stores rec, replacing any record under the same key in place (the
// record keeps its original insertion position).
func (m *Mem) Put(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i, ok := m.idx[rec.Key]; ok {
		m.recs[i] = rec
		return nil
	}
	m.idx[rec.Key] = len(m.recs)
	m.recs = append(m.recs, rec)
	return nil
}

// Len reports the number of stored records.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// Scan visits every record in insertion order until fn returns false.
// The records are copied out under the lock first, so fn may call back
// into the store.
func (m *Mem) Scan(fn func(rec Record) bool) {
	m.mu.Lock()
	recs := append([]Record(nil), m.recs...)
	m.mu.Unlock()
	for _, rec := range recs {
		if !fn(rec) {
			return
		}
	}
}
