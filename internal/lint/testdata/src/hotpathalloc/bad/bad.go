// Package bad exercises every construct hotpathalloc must flag inside an
// annotated function.
package bad

type table struct {
	m   map[uint32]uint64
	buf []uint32
}

func helper() int { return 1 }

//mithril:hotpath
func Alloc(t *table, rows []uint32) int {
	m := make(map[uint32]uint64) // want "make allocates in hot path"
	_ = m
	p := new(table) // want "new allocates in hot path"
	_ = p
	s := []uint32{1, 2, 3} // want "slice literal allocates in hot path"
	_ = s
	q := &table{} // want "address of composite literal allocates"
	_ = q
	go func() {}()               // want "go statement in hot path"
	f := func() int { return 0 } // want "closure in hot path escapes"
	_ = f
	var grown []uint32
	grown = append(grown, 1) // want "append to zero-value local slice"
	_ = grown
	return helper() // want "call to non-hotpath function"
}

//mithril:hotpath
func Box(v uint64) any {
	return v // want "interface boxing of uint64"
}

//mithril:hotpath
func Concat(a, b string) string {
	return a + b // want "string concatenation allocates in hot path"
}

//mithril:hotpath
func Str(bs []byte) string {
	return string(bs) // want "conversion to string allocates in hot path"
}
