// Package good keeps critical sections short, straight-line compute.
package good

import "sync"

type Counter struct {
	mu sync.RWMutex
	n  map[string]int
}

// Inc holds the write lock for a map update only, release deferred.
func (c *Counter) Inc(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n[k]++
}

// Get reads under the read lock.
func (c *Counter) Get(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n[k]
}

// Swap pairs an explicit unlock on the single path.
func (c *Counter) Swap(k string, v int) int {
	c.mu.Lock()
	old := c.n[k]
	c.n[k] = v
	c.mu.Unlock()
	return old
}

// TryInc unlocks on both branches — the paired-on-every-path discipline.
func (c *Counter) TryInc(k string, limit int) bool {
	c.mu.Lock()
	if c.n[k] >= limit {
		c.mu.Unlock()
		return false
	}
	c.n[k]++
	c.mu.Unlock()
	return true
}

// Snapshot copies under the lock and sends after releasing it: the
// registry Build/Names shape.
func (c *Counter) Snapshot(out chan<- map[string]int) {
	c.mu.RLock()
	cp := make(map[string]int, len(c.n))
	for k, v := range c.n {
		cp[k] = v
	}
	c.mu.RUnlock()
	out <- cp
}

type Hooked struct {
	mu   sync.Mutex
	hook func(int)
	n    int
}

// Bump invokes a hook the documented contract forbids from blocking —
// the expspec serialized-Progress shape, carried by an explained allow.
func (h *Hooked) Bump() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n++
	//mithril:allow lockheld serialized hook; contract forbids blocking
	h.hook(h.n)
}
