package analysis

import (
	"math"

	"mithril/internal/timing"
)

// PARFM failure-probability model (Appendix C of the paper).
//
// PARFM samples one aggressor uniformly among the last RFMTH activations at
// every RFM command. The attacker's most cost-effective pattern activates
// RFMTH distinct rows once per RFM interval (equation (5) is monotonically
// decreasing in per-interval ACTs j), so each target row gains one ACT per
// interval and survives selection with probability (1 − 1/RFMTH) per RFM.

// ParfmSingleRowFailure evaluates Fail(1): the probability that one specific
// row reaches FlipTH/2 un-refreshed ACTs within a tREFW window, using the
// recurrence
//
//	P[i] = P[i−1] + (j/R)·(1 − j/R)^{rounds}·(1 − P[i − rounds − 1])
//
// where the attacker activates the row j times per RFM interval. The paper
// evaluates j = 1 (the most cost-effective pattern per equation (5)); when
// the window holds fewer intervals than FlipTH/2 — which happens on
// time-compressed parameter sets — the attacker is forced to j =
// ⌈(FlipTH/2)/intervals⌉ to reach the threshold at all, and the recurrence
// generalizes accordingly (rounds = ⌈(FlipTH/2)/j⌉ intervals survived with
// per-RFM selection probability j/R).
func ParfmSingleRowFailure(p timing.Params, flipTH, rfmTH int) float64 {
	if flipTH <= 1 || rfmTH <= 0 {
		return 1
	}
	half := flipTH / 2
	intervals := p.ACTsPerREFW() / rfmTH // RFM commands per tREFW
	if intervals < 1 {
		return 0
	}
	j := 1
	if intervals < half {
		j = (half + intervals - 1) / intervals
	}
	if j > rfmTH {
		return 0 // cannot fit FlipTH/2 ACTs into the window at all
	}
	rounds := (half + j - 1) / j
	if intervals < rounds {
		return 0
	}
	r := float64(rfmTH)
	sel := float64(j) / r
	surv := math.Pow(1-sel, float64(rounds))
	pPrev := make([]float64, intervals+1)
	for i := rounds; i <= intervals; i++ {
		if i == rounds {
			pPrev[i] = surv
			continue
		}
		back := i - rounds - 1
		var pBack float64
		if back >= 0 {
			pBack = pPrev[back]
		}
		pPrev[i] = pPrev[i-1] + sel*surv*(1-pBack)
		if pPrev[i] > 1 {
			pPrev[i] = 1
		}
	}
	return pPrev[intervals]
}

// ParfmBankFailure upper-bounds the per-bank failure probability by the
// first inclusion–exclusion term, RFMTH·Fail(1), as the paper argues the
// higher terms are negligible for FlipTH ≥ 1K.
func ParfmBankFailure(p timing.Params, flipTH, rfmTH int) float64 {
	f := float64(rfmTH) * ParfmSingleRowFailure(p, flipTH, rfmTH)
	if f > 1 {
		return 1
	}
	return f
}

// ParfmSystemFailure converts a bank failure probability into the system
// failure probability for nBanks simultaneously attackable banks:
// 1 − (1 − Fail)^nBanks. The paper uses 22 banks (the tFAW-limited count
// for 2 ranks × 32 banks).
func ParfmSystemFailure(p timing.Params, flipTH, rfmTH, nBanks int) float64 {
	bank := ParfmBankFailure(p, flipTH, rfmTH)
	// For tiny probabilities 1−(1−x)^n loses precision; use the exact
	// expm1/log1p formulation.
	return -math.Expm1(float64(nBanks) * math.Log1p(-bank))
}

// DefaultAttackableBanks is the number of banks that can be activated
// simultaneously under tFAW in the paper's 2-rank system (Section IX-C).
const DefaultAttackableBanks = 22

// ParfmRequiredRFMTH returns the largest RFMTH (searched over candidates,
// descending) whose system failure probability stays at or below target
// (typically 1e-15) for the given FlipTH. ok is false when even RFMTH = 1
// misses the target.
func ParfmRequiredRFMTH(p timing.Params, flipTH, nBanks int, target float64, candidates []int) (int, bool) {
	if len(candidates) == 0 {
		candidates = []int{256, 224, 192, 160, 128, 96, 80, 64, 48, 32, 24, 16, 12, 8, 6, 4, 2, 1}
	}
	best, found := 0, false
	for _, r := range candidates {
		if ParfmSystemFailure(p, flipTH, r, nBanks) <= target {
			if r > best {
				best, found = r, true
			}
		}
	}
	return best, found
}

// ParfmCostEffectiveness is equation (5): the attacker's per-ACT value of
// activating a row j times per RFM interval. It decreases monotonically in
// j, which is why one-ACT-per-interval is the worst case.
func ParfmCostEffectiveness(rfmTH, j int) float64 {
	if j <= 0 || j > rfmTH {
		return 0
	}
	return math.Pow(1-float64(j)/float64(rfmTH), 1/float64(j))
}
