package expspec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path"
	"sort"

	"mithril/internal/analysis"
	"mithril/internal/attack"
	"mithril/internal/mitigation"
	"mithril/internal/trace"
)

// Kind selects the experiment family a spec expands into. Every kind shares
// the same execution machinery (sweep fan-out, single-flight baselines) but
// produces a different row shape.
type Kind string

// Experiment kinds.
const (
	// Comparison measures schemes × FlipTHs × workloads as normalized
	// performance/energy/area points (Figures 10 and 11).
	Comparison Kind = "comparison"
	// SafetyKind attacks schemes × attack patterns and reports the
	// fault-model verdicts (the safety sweep).
	SafetyKind Kind = "safety"
	// ConfigGrid sweeps the paired Mithril/Mithril+ (FlipTH, RFMTH)
	// operating-point grid (Figure 9).
	ConfigGrid Kind = "configgrid"
	// AdTHSweep sweeps the adaptive-refresh threshold for fixed
	// (FlipTH, RFMTH) configurations (Figure 7).
	AdTHSweep Kind = "adth"
)

// kinds lists the valid Kind values for validation messages.
var kinds = []Kind{Comparison, SafetyKind, ConfigGrid, AdTHSweep}

// ScaleSpec names the simulation scale a spec runs at: a required preset
// plus optional field overrides (0 keeps the preset's value).
type ScaleSpec struct {
	// Preset is "quick", "full", or "golden" (QuickScale at the regression
	// goldens' instruction budget).
	Preset       string `json:"preset"`
	Cores        int    `json:"cores,omitempty"`
	InstrPerCore int64  `json:"instr_per_core,omitempty"`
	TimeScale    int    `json:"time_scale,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
}

// Resolve turns the named preset plus overrides into a concrete Scale.
func (ss ScaleSpec) Resolve() (Scale, error) {
	var sc Scale
	switch ss.Preset {
	case "quick":
		sc = QuickScale()
	case "full":
		sc = FullScale()
	case "golden":
		sc = GoldenScale()
	default:
		return Scale{}, fmt.Errorf("scale: unknown preset %q (want quick, full, or golden)", ss.Preset)
	}
	if ss.Cores > 0 {
		sc.Cores = ss.Cores
	}
	if ss.InstrPerCore > 0 {
		sc.InstrPerCore = ss.InstrPerCore
	}
	if ss.TimeScale > 0 {
		sc.TimeScale = ss.TimeScale
	}
	if ss.Seed > 0 {
		sc.Seed = ss.Seed
	}
	return sc, nil
}

// GridLevel is one FlipTH row of a configgrid spec: the RFMTH points swept
// at that threshold (the paper pairs each FlipTH with a feasible RFMTH
// range, so a plain cross-product cannot express the grid).
type GridLevel struct {
	FlipTH int   `json:"flipth"`
	RFMTHs []int `json:"rfmths"`
}

// ConfigPoint is one fixed (FlipTH, RFMTH) operating point of an adth spec.
type ConfigPoint struct {
	FlipTH int `json:"flipth"`
	RFMTH  int `json:"rfmth"`
}

// Axes declares the experiment grid. Which axes apply depends on the kind;
// unused axes must stay empty (validation rejects them).
type Axes struct {
	// Schemes is the mitigation list (comparison, safety). Valid names are
	// mitigation.Names(); configgrid pairs mithril/mithril+ implicitly.
	Schemes []string `json:"schemes,omitempty"`
	// FlipTHs overrides the scale's FlipTH sweep (comparison) or sets the
	// attack thresholds (safety, required there).
	FlipTHs []int `json:"flipths,omitempty"`
	// Workloads names the measured workloads. Comparison and configgrid
	// resolve names through the open workload registry
	// (trace.WorkloadNames lists the registered set; the shipped five are
	// "mix-high", "mix-blend", "fft", "radix", "pagerank") and accept the
	// "trace:<path>" form, which replays a recorded access-trace file;
	// comparison additionally accepts the geomean-reduced "normal" set
	// and the "multi-sided-rh" attack meta-workload. Adth accepts the
	// Figure 7 classes ("multi-programmed", "multi-threaded"). Safety
	// takes no workloads — its patterns live on the attacks axis.
	Workloads []string `json:"workloads,omitempty"`
	// Attacks names attack patterns from the open attack registry
	// (attack.Names lists the set: "single", "double", "multi:<n>",
	// "rowlist", "decoy:<n>", "blockhammer-adversarial", plus anything
	// registered out of tree). Safety requires this axis (each pattern
	// attacks one bank alongside a benign background core). Comparison
	// accepts it too: each attack becomes a benign-mix-plus-attacker
	// workload measured like "multi-sided-rh".
	Attacks []string `json:"attacks,omitempty"`
	// Seeds repeats the grid per seed (empty: the scale's seed).
	Seeds []uint64 `json:"seeds,omitempty"`
	// Adversarial adds the per-scheme BlockHammer-collision workload to
	// every (scheme, FlipTH) point (comparison only).
	Adversarial bool `json:"adversarial,omitempty"`
	// Grid is the configgrid FlipTH → RFMTH-list pairing.
	Grid []GridLevel `json:"grid,omitempty"`
	// Configs are the adth operating points.
	Configs []ConfigPoint `json:"configs,omitempty"`
	// AdTHs is the adaptive-refresh threshold sweep (adth only; 0 means
	// adaptive refresh disabled).
	AdTHs []int `json:"adths,omitempty"`
}

// Spec is one declarative experiment: a named grid over the axes at a
// scale, with an optional output-column selection.
type Spec struct {
	Name string `json:"name"`
	// Title is the human table header ("=== Title ===" in table output).
	Title string    `json:"title,omitempty"`
	Kind  Kind      `json:"kind"`
	Scale ScaleSpec `json:"scale"`
	Axes  Axes      `json:"axes"`
	// Columns selects and orders the emitted columns; empty means the
	// kind's default set (which mirrors the CLI tables).
	Columns []string `json:"columns,omitempty"`
}

// Parse decodes and validates one spec. Unknown JSON fields are errors, so
// a typoed axis name fails loudly instead of silently shrinking the grid.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a spec file from the filesystem.
func Load(name string) (*Spec, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return s, nil
}

// LoadFS reads and validates a spec from an fs.FS (the shipped specs are
// embedded in the mithril package).
func LoadFS(fsys fs.FS, name string) (*Spec, error) {
	data, err := fs.ReadFile(fsys, name)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return s, nil
}

// LoadAll parses every *.json spec under dir, sorted by spec name, and
// rejects duplicate names (two files claiming the same spec would make
// name-based lookup ambiguous).
func LoadAll(fsys fs.FS, dir string) ([]*Spec, error) {
	files, err := fs.Glob(fsys, path.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	seen := map[string]string{}
	var specs []*Spec
	for _, f := range files {
		s, err := LoadFS(fsys, f)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[s.Name]; dup {
			return nil, fmt.Errorf("spec %q: duplicate name (declared in both %s and %s)", s.Name, prev, f)
		}
		seen[s.Name] = f
		specs = append(specs, s)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs, nil
}

// Validate checks the spec's axes against the kind's requirements and the
// known scheme/workload/column names.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("spec: missing name")
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("spec %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if _, err := s.Scale.Resolve(); err != nil {
		return fail("%v", err)
	}
	if err := noDuplicates("schemes", s.Axes.Schemes); err != nil {
		return fail("%v", err)
	}
	if err := noDuplicates("flipths", s.Axes.FlipTHs); err != nil {
		return fail("%v", err)
	}
	if err := noDuplicates("workloads", s.Axes.Workloads); err != nil {
		return fail("%v", err)
	}
	if err := validateAttackAxis(s.Axes.Attacks); err != nil {
		return fail("%v", err)
	}
	if err := noDuplicates("seeds", s.Axes.Seeds); err != nil {
		return fail("%v", err)
	}
	if err := noDuplicates("adths", s.Axes.AdTHs); err != nil {
		return fail("%v", err)
	}
	for _, sch := range s.Axes.Schemes {
		if !knownScheme(sch) {
			return fail("unknown scheme %q (known: %v)", sch, mitigation.Names())
		}
	}
	switch s.Kind {
	case Comparison:
		if len(s.Axes.Schemes) == 0 {
			return fail("comparison needs a non-empty schemes axis")
		}
		if len(s.Axes.Workloads) == 0 && len(s.Axes.Attacks) == 0 && !s.Axes.Adversarial {
			return fail("comparison needs a non-empty workloads or attacks axis (or adversarial: true)")
		}
		for _, w := range s.Axes.Workloads {
			if err := validateComparisonWorkload(w); err != nil {
				return fail("%v", err)
			}
		}
		for _, a := range s.Axes.Attacks {
			// Comparison attack workloads are built before any scheme
			// exists, so no collision oracle can be wired in; silently
			// running the oracle-less fallback would measure the wrong
			// thing, so oracle-only patterns are rejected here.
			if attack.NeedsOracle(a) {
				return fail("attack %q needs the deployed scheme's collision oracle; use \"adversarial\": true for the per-scheme adversarial workload", a)
			}
		}
		if len(s.Axes.Grid) > 0 || len(s.Axes.Configs) > 0 || len(s.Axes.AdTHs) > 0 {
			return fail("grid/configs/adths axes apply only to configgrid/adth kinds")
		}
	case SafetyKind:
		if len(s.Axes.Schemes) == 0 {
			return fail("safety needs a non-empty schemes axis")
		}
		if len(s.Axes.FlipTHs) == 0 {
			return fail("safety needs a non-empty flipths axis")
		}
		if len(s.Axes.Workloads) > 0 {
			return fail("safety takes no workloads axis — name its attack patterns on the attacks axis (known: %v)", attack.Names())
		}
		if len(s.Axes.Attacks) == 0 {
			return fail("safety needs a non-empty attacks axis (known: %v)", attack.Names())
		}
		if s.Axes.Adversarial || len(s.Axes.Grid) > 0 || len(s.Axes.Configs) > 0 || len(s.Axes.AdTHs) > 0 {
			return fail("safety accepts only schemes/flipths/attacks/seeds axes")
		}
	case ConfigGrid:
		if len(s.Axes.Grid) == 0 {
			return fail("configgrid needs a non-empty grid axis")
		}
		seenTH := map[int]bool{}
		for _, lvl := range s.Axes.Grid {
			if seenTH[lvl.FlipTH] {
				return fail("grid: duplicate flipth %d", lvl.FlipTH)
			}
			seenTH[lvl.FlipTH] = true
			if len(lvl.RFMTHs) == 0 {
				return fail("grid: flipth %d has an empty rfmths list", lvl.FlipTH)
			}
			if err := noDuplicates(fmt.Sprintf("grid[flipth=%d].rfmths", lvl.FlipTH), lvl.RFMTHs); err != nil {
				return fail("%v", err)
			}
		}
		if len(s.Axes.Workloads) != 1 {
			return fail("configgrid needs exactly one benign workload")
		}
		if err := trace.ValidateWorkloadName(s.Axes.Workloads[0]); err != nil {
			return fail("%v", err)
		}
		if len(s.Axes.Schemes) > 0 || len(s.Axes.FlipTHs) > 0 || s.Axes.Adversarial || len(s.Axes.Attacks) > 0 || len(s.Axes.Configs) > 0 || len(s.Axes.AdTHs) > 0 {
			return fail("configgrid pairs mithril/mithril+ implicitly; only grid/workloads/seeds axes apply")
		}
	case AdTHSweep:
		if len(s.Axes.Configs) == 0 {
			return fail("adth needs a non-empty configs axis")
		}
		if len(s.Axes.AdTHs) == 0 {
			return fail("adth needs a non-empty adths axis")
		}
		if len(s.Axes.Workloads) == 0 {
			return fail("adth needs a non-empty workloads axis")
		}
		for _, w := range s.Axes.Workloads {
			if _, ok := adthWorkloads[w]; !ok {
				return fail("unknown workload %q (known: %v)", w, adthWorkloadNames())
			}
		}
		if len(s.Axes.Schemes) > 0 || len(s.Axes.FlipTHs) > 0 || s.Axes.Adversarial || len(s.Axes.Attacks) > 0 || len(s.Axes.Grid) > 0 {
			return fail("adth accepts only configs/adths/workloads/seeds axes")
		}
	default:
		return fail("unknown kind %q (want one of %v)", s.Kind, kinds)
	}
	if _, err := s.columns(); err != nil {
		return fail("%v", err)
	}
	return nil
}

// validateAttackAxis checks every attacks-axis entry against the attack
// registry (name and argument) and rejects two spellings of one
// canonical pattern — "decoy" and "decoy:4" build the same generator and
// would emit indistinguishable rows.
func validateAttackAxis(attacks []string) error {
	seen := map[string]string{}
	for _, a := range attacks {
		canon, err := attack.Canonical(a)
		if err != nil {
			return err
		}
		// A spec has nowhere to carry an explicit row list, so a
		// rows-only pattern would validate and then fail on every run.
		if attack.NeedsRows(a) {
			return fmt.Errorf("attack %q takes an explicit row list and cannot be named in a spec (library use: mithril.NewAttack with AttackParams.Rows)", a)
		}
		if prev, dup := seen[canon]; dup {
			if prev == a {
				return fmt.Errorf("attacks: duplicate value %s", a)
			}
			return fmt.Errorf("attacks: %q duplicates %q (both are %s)", a, prev, canon)
		}
		seen[canon] = a
	}
	return nil
}

// noDuplicates rejects repeated axis values: a doubled value would silently
// double-count its cells in every aggregate.
func noDuplicates[T comparable](axis string, vals []T) error {
	seen := make(map[T]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			return fmt.Errorf("%s: duplicate value %v", axis, v)
		}
		seen[v] = true
	}
	return nil
}

func knownScheme(name string) bool {
	for _, n := range mitigation.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// Cell is one output row of the expanded grid, before any simulation runs.
// Fields that do not apply to the kind stay zero. Comparison's "normal"
// workload is one cell: its member workloads are simulated individually and
// geomean-reduced into the single row.
type Cell struct {
	Seed     uint64
	FlipTH   int
	RFMTH    int
	AdTH     int
	Scheme   string
	Workload string
	// Attack is the attack-registry name of an attack cell: the safety
	// pattern, or the attacker of a comparison attacks-axis cell (whose
	// output row carries the built generator's display name).
	Attack      string
	Adversarial bool
}

// Expand returns the output-row grid in deterministic emission order for
// the scale sc (comparison specs without a flipths axis inherit the
// scale's; per scheme, workload cells come first, then attack cells, then
// the adversarial cell; configgrid cells whose (FlipTH, RFMTH) point is
// analytically infeasible under Theorem 1 are excluded, so the returned
// cells pair one-to-one with the rows a run emits). Expansion is pure:
// expanding twice yields identical slices.
func (s *Spec) Expand(sc Scale) []Cell {
	seeds := s.Axes.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{sc.Seed}
	}
	var cells []Cell
	switch s.Kind {
	case Comparison:
		flipths := s.Axes.FlipTHs
		if len(flipths) == 0 {
			flipths = sc.FlipTHs
		}
		for _, seed := range seeds {
			for _, flipTH := range flipths {
				for _, scheme := range s.Axes.Schemes {
					for _, w := range s.Axes.Workloads {
						cells = append(cells, Cell{Seed: seed, FlipTH: flipTH, Scheme: scheme, Workload: w})
					}
					for _, a := range s.Axes.Attacks {
						cells = append(cells, Cell{Seed: seed, FlipTH: flipTH, Scheme: scheme, Attack: a})
					}
					if s.Axes.Adversarial {
						cells = append(cells, Cell{Seed: seed, FlipTH: flipTH, Scheme: scheme, Adversarial: true,
							Workload: "bh-adversarial/" + scheme})
					}
				}
			}
		}
	case SafetyKind:
		for _, seed := range seeds {
			for _, flipTH := range s.Axes.FlipTHs {
				for _, a := range s.Axes.Attacks {
					for _, scheme := range s.Axes.Schemes {
						cells = append(cells, Cell{Seed: seed, FlipTH: flipTH, Scheme: scheme, Attack: a})
					}
				}
			}
		}
	case ConfigGrid:
		for _, seed := range seeds {
			for _, lvl := range s.Axes.Grid {
				for _, rfmTH := range lvl.RFMTHs {
					// The feasibility check is analytic (no simulation):
					// Theorem 1 has no table size for some declared points.
					if _, ok := analysis.Configure(sc.Params(), lvl.FlipTH, rfmTH, mitigation.DefaultAdTH, analysis.DoubleSidedBlast); !ok {
						continue
					}
					cells = append(cells, Cell{Seed: seed, FlipTH: lvl.FlipTH, RFMTH: rfmTH,
						Workload: s.Axes.Workloads[0]})
				}
			}
		}
	case AdTHSweep:
		for _, seed := range seeds {
			for _, cfg := range s.Axes.Configs {
				for _, adTH := range s.Axes.AdTHs {
					cells = append(cells, Cell{Seed: seed, FlipTH: cfg.FlipTH, RFMTH: cfg.RFMTH, AdTH: adTH})
				}
			}
		}
	}
	return cells
}
