package streaming

import "fmt"

// CountMinSketch is the classic Cormode–Muthukrishnan sketch: d hash rows of
// w counters; a point query returns the minimum across rows and never
// underestimates. BlockHammer's counting Bloom filters behave equivalently
// for frequency estimation, so this type backs the BlockHammer baseline.
type CountMinSketch struct {
	rows  int
	width int
	data  [][]uint32
	seeds []uint64
}

// NewCountMinSketch returns a sketch with the given number of hash rows and
// counters per row.
func NewCountMinSketch(rows, width int) *CountMinSketch {
	if rows <= 0 || width <= 0 {
		panic(fmt.Sprintf("streaming: CountMinSketch dimensions must be positive, got %dx%d", rows, width))
	}
	s := &CountMinSketch{rows: rows, width: width}
	s.data = make([][]uint32, rows)
	s.seeds = make([]uint64, rows)
	for i := range s.data {
		s.data[i] = make([]uint32, width)
		s.seeds[i] = splitmix64(uint64(i) + 0xabcdef)
	}
	return s
}

// Observe increments the counters for key in every row.
//
//mithril:hotpath
func (s *CountMinSketch) Observe(key uint32) {
	for i := range s.data {
		s.data[i][hashKey(key, s.seeds[i])%uint64(s.width)]++
	}
}

// Estimate reports the minimum counter across rows (never an underestimate).
//
//mithril:hotpath
func (s *CountMinSketch) Estimate(key uint32) uint64 {
	min := uint32(1<<32 - 1)
	for i := range s.data {
		if v := s.data[i][hashKey(key, s.seeds[i])%uint64(s.width)]; v < min {
			min = v
		}
	}
	return uint64(min)
}

// Reset zeroes all counters.
//
//mithril:hotpath
func (s *CountMinSketch) Reset() {
	for i := range s.data {
		for j := range s.data[i] {
			s.data[i][j] = 0
		}
	}
}

// Rows and Width report the sketch geometry.
func (s *CountMinSketch) Rows() int  { return s.rows }
func (s *CountMinSketch) Width() int { return s.width }

// SlotIndex reproduces the slot a key maps to in hash row `row` of any
// sketch with this package's seed layout — the collision oracle the
// BlockHammer performance attack relies on (Figure 10(c)).
func SlotIndex(key uint32, row, width int) uint64 {
	seed := splitmix64(uint64(row) + 0xabcdef)
	return hashKey(key, seed) % uint64(width)
}

// DualCBF is BlockHammer's pair of time-interleaved counting Bloom filters.
// Both filters observe every ACT; they are reset in alternation every half
// epoch (tCBF/2) so that at any instant at least one filter has observed the
// full recent history of length ≤ tCBF while holding state no older than
// tCBF. Queries use the active (older) filter, which never underestimates
// the ACT count of the last half epoch.
type DualCBF struct {
	filters   [2]*CountMinSketch
	active    int // index of the filter currently used for queries
	epochACTs int // half-epoch length expressed in observations
	observed  int
}

// NewDualCBF builds the dual filter with the given geometry; epochACTs is
// the number of observations after which the inactive filter is cleared and
// roles swap (BlockHammer uses tCBF/2 expressed in time; the simulator
// drives it by ACT count, which is equivalent at a fixed ACT rate).
func NewDualCBF(rows, width, epochACTs int) *DualCBF {
	if epochACTs <= 0 {
		panic(fmt.Sprintf("streaming: DualCBF epoch must be positive, got %d", epochACTs))
	}
	return &DualCBF{
		filters:   [2]*CountMinSketch{NewCountMinSketch(rows, width), NewCountMinSketch(rows, width)},
		epochACTs: epochACTs,
	}
}

// Observe feeds both filters and rotates them at half-epoch boundaries.
//
//mithril:hotpath
func (d *DualCBF) Observe(key uint32) {
	d.filters[0].Observe(key)
	d.filters[1].Observe(key)
	d.observed++
	if d.observed >= d.epochACTs {
		d.observed = 0
		inactive := 1 - d.active
		d.filters[inactive].Reset()
		d.active = inactive
	}
}

// Estimate queries the active filter.
//
//mithril:hotpath
func (d *DualCBF) Estimate(key uint32) uint64 { return d.filters[d.active].Estimate(key) }

// Reset clears both filters.
func (d *DualCBF) Reset() {
	d.filters[0].Reset()
	d.filters[1].Reset()
	d.observed = 0
	d.active = 0
}
