package attack

import (
	"testing"

	"mithril/internal/mc"
	"mithril/internal/timing"
)

func mapper() *mc.AddressMapper { return mc.NewAddressMapper(timing.DDR5()) }

func TestDoubleSidedTargetsNeighbours(t *testing.T) {
	m := mapper()
	a := NewDoubleSided(m, 0, 3, 1000)
	rows := map[int]bool{}
	for i := 0; i < 10; i++ {
		acc := a.Next()
		loc := m.Map(acc.Addr)
		rows[loc.Row] = true
		if loc.Bank != 3 || loc.Channel != 0 {
			t.Fatalf("attack strayed to channel %d bank %d", loc.Channel, loc.Bank)
		}
		if acc.Gap != 0 {
			t.Fatal("attack should run at maximum rate")
		}
	}
	if !rows[999] || !rows[1001] || len(rows) != 2 {
		t.Fatalf("aggressor rows = %v, want {999, 1001}", rows)
	}
}

func TestMultiSided32Victims(t *testing.T) {
	m := mapper()
	a := NewMultiSided(m, 1, 5, 2000, 32)
	got := a.AggressorRows(m)
	if len(got) != 33 {
		t.Fatalf("aggressors = %d, want 33 (32 victims between)", len(got))
	}
	for i, r := range got {
		if r != 2000+2*i {
			t.Fatalf("aggressor %d at row %d, want %d", i, r, 2000+2*i)
		}
	}
	victims := VictimRowsOfMultiSided(2000, 32)
	if len(victims) != 32 || victims[0] != 2001 || victims[31] != 2063 {
		t.Fatalf("victims = %v", victims)
	}
}

func TestAttackCyclesAllAggressors(t *testing.T) {
	m := mapper()
	a := NewMultiSided(m, 0, 0, 100, 4)
	seen := map[int]int{}
	for i := 0; i < 50; i++ {
		seen[m.Map(a.Next().Addr).Row]++
	}
	if len(seen) != 5 {
		t.Fatalf("cycled %d rows, want 5", len(seen))
	}
	for row, n := range seen {
		if n == 10 || n == 9 { // round-robin fairness
			continue
		}
		t.Fatalf("row %d hit %d times, want balanced round robin", row, n)
	}
}

func TestRowAttackPanicsOutOfRange(t *testing.T) {
	m := mapper()
	for _, fn := range []func(){
		func() { NewSingleSided(m, 0, 0, -1) },
		func() { NewSingleSided(m, 0, 0, timing.DDR5().Rows) },
		func() { NewRowList("x", m, 0, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// fakeThrottler exposes a fixed collision list.
type fakeThrottler struct{ rows []uint32 }

func (f fakeThrottler) CollidingRows(bank int, target uint32, max int) []uint32 {
	if max < len(f.rows) {
		return f.rows[:max]
	}
	return f.rows
}

func TestBlockHammerAdversaryUsesCollisionOracle(t *testing.T) {
	m := mapper()
	adv := NewBlockHammerAdversary(m, 0, 2, 512, fakeThrottler{rows: []uint32{7000, 7100, 7200}})
	rows := map[int]bool{}
	for i := 0; i < 30; i++ {
		rows[m.Map(adv.Next().Addr).Row] = true
	}
	if !rows[7000] || !rows[7100] || !rows[7200] {
		t.Fatalf("adversary rows = %v, want the oracle's collisions", rows)
	}
}

func TestBlockHammerAdversaryFallsBackWithoutOracle(t *testing.T) {
	m := mapper()
	adv := NewBlockHammerAdversary(m, 0, 2, 512, nil)
	rows := map[int]bool{}
	for i := 0; i < 40; i++ {
		loc := m.Map(adv.Next().Addr)
		rows[loc.Row] = true
		if loc.Row >= 511 && loc.Row <= 513 {
			t.Fatal("fallback pattern must not hammer the benign row's neighbourhood")
		}
	}
	if len(rows) < 4 {
		t.Fatalf("fallback should walk several rows, got %v", rows)
	}
}
