// Package timing defines DRAM timing parameters and the picosecond-based
// time arithmetic used throughout the simulator.
//
// All durations are expressed as PicoSeconds (int64). The default parameter
// set models DDR5-4800 as configured in Table III of the Mithril paper
// (HPCA 2022): tRFC = 295 ns, tRC = 48.64 ns, tRFM = 97.28 ns,
// tRCD = tRP = tCL = 16.64 ns, tREFW = 32 ms, tREFI = tREFW/8192.
package timing

import "fmt"

// PicoSeconds is the base time unit of the simulator. One DRAM clock at
// DDR5-4800 is 416 ps (fCK = 2400 MHz), so picoseconds express every JEDEC
// parameter exactly as an integer.
type PicoSeconds int64

// Convenience multipliers for constructing durations.
const (
	Picosecond  PicoSeconds = 1
	Nanosecond  PicoSeconds = 1000
	Microsecond PicoSeconds = 1000 * Nanosecond
	Millisecond PicoSeconds = 1000 * Microsecond
	Second      PicoSeconds = 1000 * Millisecond
)

// Never is the far-future sentinel for "no deadline": the uniform return
// value of the NextDeadline contract when a component is purely reactive
// (it can only be unblocked by someone else's action). It is large enough
// that no simulated instant ever reaches it, yet far from overflowing when
// small durations are added.
const Never PicoSeconds = 1 << 62

// String renders the duration with an adaptive unit for logs and errors.
func (p PicoSeconds) String() string {
	switch {
	case p >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(p)/float64(Millisecond))
	case p >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(p)/float64(Microsecond))
	case p >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(p)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(p))
	}
}

// Nanoseconds reports the duration as a float in nanoseconds.
func (p PicoSeconds) Nanoseconds() float64 { return float64(p) / float64(Nanosecond) }

// Params holds every DRAM timing and organization parameter the simulator
// enforces. Fields follow JEDEC naming.
type Params struct {
	// TCK is the DRAM clock period.
	TCK PicoSeconds
	// TRC is the minimum interval between two ACTs to the same bank
	// (row cycle time). One activation "slot" in the paper's math.
	TRC PicoSeconds
	// TRCD is the ACT-to-internal-read/write delay.
	TRCD PicoSeconds
	// TRP is the precharge period.
	TRP PicoSeconds
	// TCL is the CAS (read) latency.
	TCL PicoSeconds
	// TRAS is the minimum ACT-to-PRE interval. Derived as TRC-TRP when zero.
	TRAS PicoSeconds
	// TRFC is the refresh cycle time consumed by one auto-refresh (REF).
	TRFC PicoSeconds
	// TREFI is the average interval between REF commands.
	TREFI PicoSeconds
	// TREFW is the refresh window within which every row is refreshed once.
	TREFW PicoSeconds
	// TRFM is the time margin granted to the DRAM by one RFM command.
	TRFM PicoSeconds
	// TFAW is the rolling four-activate window per rank.
	TFAW PicoSeconds
	// TRRD is the minimum ACT-to-ACT interval across banks of a rank.
	TRRD PicoSeconds
	// TBURST is the data burst occupancy of one column access (BL16 at the
	// channel for DDR5).
	TBURST PicoSeconds
	// TWR is the write recovery time (WRITE data end to PRE).
	TWR PicoSeconds

	// Organization.
	Channels      int // independent memory channels
	Ranks         int // ranks per channel
	Banks         int // banks per rank
	Rows          int // rows per bank
	ColumnsPerRow int // cache-line-sized columns per row
	RefreshGroups int // row groups refreshed round-robin, one per tREFI (8192 in DDR5)
}

// DDR5 returns the DDR5-4800 parameter set from Table III of the paper:
// 2 channels, 1 rank, 32 banks per rank, BLISS scheduling (configured in the
// MC, not here), 8 KB rows (128 cache lines of 64 B).
func DDR5() Params {
	return Params{
		TCK:           416,
		TRC:           48640,  // 48.64 ns
		TRCD:          16640,  // 16.64 ns
		TRP:           16640,  // 16.64 ns
		TCL:           16640,  // 16.64 ns
		TRAS:          32000,  // tRC - tRP
		TRFC:          295000, // 295 ns
		TREFW:         32 * Millisecond,
		TREFI:         32 * Millisecond / 8192, // ~3.9 us
		TRFM:          97280,                   // 97.28 ns = 2 * tRC
		TFAW:          13312,                   // 32 tCK
		TRRD:          3328,                    // 8 tCK
		TBURST:        3328,                    // BL16 / 2 per tCK
		TWR:           30000,
		Channels:      2,
		Ranks:         1,
		Banks:         32,
		Rows:          65536,
		ColumnsPerRow: 128,
		RefreshGroups: 8192,
	}
}

// Validate reports a descriptive error when the parameter set is unusable.
func (p Params) Validate() error {
	type check struct {
		name string
		v    PicoSeconds
	}
	for _, c := range []check{
		{"tCK", p.TCK}, {"tRC", p.TRC}, {"tRCD", p.TRCD}, {"tRP", p.TRP},
		{"tCL", p.TCL}, {"tRFC", p.TRFC}, {"tREFI", p.TREFI},
		{"tREFW", p.TREFW}, {"tRFM", p.TRFM},
	} {
		if c.v <= 0 {
			return fmt.Errorf("timing: %s must be positive, got %v", c.name, c.v)
		}
	}
	if p.TREFI >= p.TREFW {
		return fmt.Errorf("timing: tREFI (%v) must be smaller than tREFW (%v)", p.TREFI, p.TREFW)
	}
	if p.TRFC >= p.TREFI {
		return fmt.Errorf("timing: tRFC (%v) must be smaller than tREFI (%v)", p.TRFC, p.TREFI)
	}
	if p.Channels <= 0 || p.Ranks <= 0 || p.Banks <= 0 || p.Rows <= 0 || p.ColumnsPerRow <= 0 {
		return fmt.Errorf("timing: organization fields must be positive (%d ch, %d ranks, %d banks, %d rows, %d cols)",
			p.Channels, p.Ranks, p.Banks, p.Rows, p.ColumnsPerRow)
	}
	if p.RefreshGroups <= 0 {
		return fmt.Errorf("timing: RefreshGroups must be positive, got %d", p.RefreshGroups)
	}
	return nil
}

// TotalBanks reports the number of banks across all channels and ranks.
func (p Params) TotalBanks() int { return p.Channels * p.Ranks * p.Banks }

// ACTsPerREFW is the maximum number of activations a single bank can absorb
// within one refresh window, accounting for the time stolen by auto-refresh:
// tREFW·(1 − tRFC/tREFI) / tRC. This is the stream length S in the analysis.
//
//mithril:hotpath
func (p Params) ACTsPerREFW() int {
	avail := float64(p.TREFW) * (1 - float64(p.TRFC)/float64(p.TREFI))
	return int(avail / float64(p.TRC))
}

// RFMIntervalsPerREFW is W in Theorem 1: the maximum number of RFM intervals
// within one tREFW, W = ⌈(tREFW − (tREFW/tREFI)·tRFC) / (tRC·RFMTH + tRFM)⌉.
func (p Params) RFMIntervalsPerREFW(rfmTH int) int {
	if rfmTH <= 0 {
		return 0
	}
	avail := float64(p.TREFW) - float64(p.TREFW)/float64(p.TREFI)*float64(p.TRFC)
	den := float64(p.TRC)*float64(rfmTH) + float64(p.TRFM)
	w := avail / den
	iw := int(w)
	if float64(iw) < w {
		iw++
	}
	return iw
}
