// Command mithrilsim regenerates every table and figure of the Mithril
// paper's evaluation (HPCA 2022) from the reproduction library, runs
// arbitrary declarative experiment specs, and serves them over HTTP.
//
// Usage:
//
//	mithrilsim <command> [args] [-full] [-flipth N] [-jobs N] [-format F]
//	           [-timeout D] [-addr HOST:PORT]
//
// Everything runs on one mithril.Engine: simulation sweeps fan out over
// -jobs workers (default: all cores; -jobs 1 forces the serial path),
// -timeout bounds the whole invocation (the sweep cancels cooperatively
// and aborts mid-simulation), and Ctrl-C cancels the same way. When
// stderr is a terminal, sweeps render live per-grid-point progress there;
// stdout output is unaffected. Parallel and serial runs print
// byte-identical output. Simulation commands accept -format
// table|json|csv|golden (table is the human default; json/csv are
// machine-readable rows; golden is the raw full-precision line format the
// testdata/golden_*.txt regression files are pinned in).
//
// Commands:
//
//	figure2   ARR-Graphene vs RFM-Graphene incompatibility curves
//	figure6   feasible (Nentry, RFMTH) configurations per FlipTH
//	figure8   lbm-like large-object-sweep characterization
//	table4    per-bank counter table sizes vs the paper's Table IV
//	parfm     Appendix C failure probabilities and required RFMTH
//	figure7   adaptive-refresh energy/area sweep over AdTH
//	figure9   Mithril vs Mithril+ performance/area grid
//	figure10  RFM-compatible scheme comparison (perf/energy/area)
//	figure11  RFM-non-compatible baseline comparison
//	safety    attack sweep: bit-flip verdicts per scheme
//	all       everything above
//	run       execute an experiment spec: run <spec.json | shipped-name>
//	          (-workers URLS or -spawn N fans the grid out across a
//	          worker fleet; output is byte-identical to a local run)
//	list      list the shipped experiment specs
//	schemes   list the open mitigation-scheme registry
//	workloads list the open workload registry (and the trace:<path> form)
//	attacks   list the open attack-pattern registry
//	          (schemes/workloads/attacks read a remote fleet's catalog
//	          with -server HOST:PORT)
//	diff      run a spec and diff its golden-format output against a file:
//	          diff <spec.json | shipped-name> <golden.txt>
//	serve     HTTP service: POST /v1/run streams a spec's rows as NDJSON;
//	          -coordinator fronts a -workers fleet (or -spawn local ones)
//	store     result-store maintenance: store <stats|gc|verify> (-store DIR)
//	version   print the result-store schema version and registry stamp
//
// With -store DIR, every sweep runs against a durable content-addressed
// result store: rows already stored are served without simulating, fresh
// rows are written back as workers finish, and an interrupted run picks
// up where it left off when re-run with the same directory. Output is
// byte-identical with and without the store.
//
// The figure7/9/10/11 and safety commands are themselves spec-backed: they
// run the shipped specs/*.json grids (quick or, with -full, full variants).
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mithril"
	"mithril/internal/expspec"
	"mithril/internal/stats"
)

// env carries the parsed global flags into command handlers.
type env struct {
	full        bool
	flipTH      int
	jobs        int
	format      string
	timeout     time.Duration
	addr        string
	storeDir    string
	workers     string // -workers: comma-separated worker base URLs
	spawn       int    // -spawn: local worker processes to start
	coordinator bool   // -coordinator: serve as fleet front-end
	server      string // -server: remote mithrilsim to introspect
	// store is the opened -store directory (nil without the flag): every
	// sweep consults it before simulating a row and writes rows back, so
	// re-running an interrupted sweep simulates only the missing rows.
	store mithril.ResultStore
}

// scale resolves the -full flag into the experiment scale.
func (e env) scale() mithril.Scale {
	sc := mithril.QuickScale()
	if e.full {
		sc = mithril.FullScale()
	}
	sc.Jobs = e.jobs
	return sc
}

// engine builds the Engine every command runs on: the -jobs worker count
// plus live progress on stderr (when it is a terminal) under the given
// label; extra options (a run's -workers fan-out) stack on top.
func (e env) engine(label string, extra ...mithril.EngineOption) *mithril.Engine {
	opts := []mithril.EngineOption{}
	opts = append(opts, extra...)
	if e.jobs != 0 {
		opts = append(opts, mithril.WithJobs(e.jobs))
	}
	if p := stderrProgress(label); p != nil {
		opts = append(opts, mithril.WithProgress(p))
	}
	if e.store != nil {
		opts = append(opts, mithril.WithResultStore(e.store))
	}
	return mithril.NewEngine(mithril.DDR5(), opts...)
}

// stderrProgress renders live per-grid-point progress on stderr when it is
// a terminal; piped/CI stderr stays clean. The line is redrawn in place
// and finished with a newline on the last point.
func stderrProgress(label string) mithril.ProgressFunc {
	fi, err := os.Stderr.Stat()
	if err != nil || fi.Mode()&os.ModeCharDevice == 0 {
		return nil
	}
	return func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d grid points", label, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// command is one CLI subcommand. Dispatch, the usage line, and the `all`
// sequence all derive from this single ordered table, so a new subcommand
// cannot appear in one and silently drop out of another.
type command struct {
	name  string
	args  string // positional-argument usage, e.g. "<spec.json>"
	nargs int    // required positional count
	inAll bool   // part of the `all` sequence
	run   func(ctx context.Context, e env, args []string) error
}

// commands is ordered as `all` executes: analytic figures first, then the
// simulation sweeps (cheapest to most expensive), then the spec tooling
// (excluded from `all`: run/diff need arguments, serve never returns).
var commands = []command{
	{name: "figure2", inAll: true, run: func(_ context.Context, e env, _ []string) error { return figure2() }},
	{name: "figure6", inAll: true, run: func(_ context.Context, e env, _ []string) error { return figure6() }},
	{name: "figure8", inAll: true, run: func(_ context.Context, e env, _ []string) error { return figure8() }},
	{name: "table4", inAll: true, run: func(_ context.Context, e env, _ []string) error { return table4() }},
	{name: "parfm", inAll: true, run: func(_ context.Context, e env, _ []string) error { return parfm() }},
	{name: "figure7", inAll: true, run: specFigure("figure7")},
	{name: "figure9", inAll: true, run: specFigure("figure9")},
	{name: "figure10", inAll: true, run: specFigure("figure10")},
	{name: "figure11", inAll: true, run: specFigure("figure11")},
	{name: "safety", inAll: true, run: safetyCmd},
	{name: "run", args: "<spec.json>", nargs: 1, run: runCmd},
	{name: "list", run: listCmd},
	{name: "schemes", run: schemesCmd},
	{name: "workloads", run: workloadsCmd},
	{name: "attacks", run: attacksCmd},
	{name: "diff", args: "<spec.json> <golden.txt>", nargs: 2, run: diffCmd},
	{name: "serve", run: serveCmd},
	{name: "store", args: "<stats|gc|verify>", nargs: 1, run: storeCmd},
	{name: "version", run: versionCmd},
}

func usage() {
	var names []string
	for _, c := range commands {
		names = append(names, c.name)
	}
	// `all` sits between the figure commands and the spec tooling.
	fmt.Fprintf(os.Stderr, "usage: mithrilsim <%s|all> [args] [flags]\n", strings.Join(names, "|"))
	for _, c := range commands {
		if c.args != "" {
			fmt.Fprintf(os.Stderr, "       mithrilsim %s %s\n", c.name, c.args)
		}
	}
	flag.PrintDefaults()
}

func main() { os.Exit(run()) }

// run is main's body behind an exit code instead of os.Exit calls, so
// the result store's deferred Close runs on every path — including an
// interrupted sweep, whose already-completed rows are the whole point of
// resuming with the same -store directory.
func run() int {
	full := flag.Bool("full", false, "run at the paper's full scale (16 cores, all FlipTH levels)")
	flipTH := flag.Int("flipth", 2000, "FlipTH for the safety sweep")
	jobs := flag.Int("jobs", 0, "sweep worker count (0 = all cores, 1 = serial)")
	format := flag.String("format", expspec.FormatTable, "output format: table, json, csv, or golden")
	timeout := flag.Duration("timeout", 0, "abort the whole invocation after this duration (0 = none)")
	addr := flag.String("addr", "localhost:8377", "listen address for the serve command")
	storeDir := flag.String("store", "", "content-addressed result store directory: sweep rows already stored are served instead of re-simulated, fresh rows are written back (maintain with `mithrilsim store`)")
	workers := flag.String("workers", "", "comma-separated worker base URLs: run fans the grid out across the fleet; serve -coordinator fronts it")
	spawn := flag.Int("spawn", 0, "spawn N local worker processes as the fleet (single-machine fan-out; implies a coordinator role for run/serve)")
	coordinator := flag.Bool("coordinator", false, "serve as a fleet coordinator (uses -workers, or spawns -spawn/2 local workers)")
	server := flag.String("server", "", "remote mithrilsim base URL: schemes/workloads/attacks read the fleet's catalog instead of the local registries")
	flag.Usage = usage
	if len(os.Args) < 2 {
		flag.Usage()
		return 2
	}
	cmd := os.Args[1]
	// Parse flags and positionals in any order: flag.Parse stops at the
	// first positional, so peel positionals off and keep parsing.
	rest := os.Args[2:]
	var pos []string
	for {
		if err := flag.CommandLine.Parse(rest); err != nil {
			// Defensive: flag.ExitOnError exits on malformed flags itself;
			// this path covers any other error handling mode.
			fmt.Fprintf(os.Stderr, "mithrilsim: %v\n", err)
			flag.Usage()
			return 2
		}
		rest = flag.CommandLine.Args()
		if len(rest) == 0 {
			break
		}
		pos = append(pos, rest[0])
		rest = rest[1:]
	}
	e := env{full: *full, flipTH: *flipTH, jobs: *jobs, format: *format, timeout: *timeout, addr: *addr, storeDir: *storeDir,
		workers: *workers, spawn: *spawn, coordinator: *coordinator, server: *server}

	// Open the -store directory once for the whole invocation; Close
	// (deferred) finalizes the active segment even when the command
	// fails or the sweep is interrupted. The `store` maintenance command
	// manages the directory itself — `store verify` must stay read-only,
	// and opening here would adopt crash-left segments before it looked.
	if e.storeDir != "" && cmd != "store" {
		d, err := mithril.OpenResultStore(e.storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mithrilsim: %v\n", err)
			return 1
		}
		e.store = d
		defer func() {
			if err := d.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mithrilsim: closing store: %v\n", err)
			}
		}()
	}

	// One root context governs the whole invocation: -timeout bounds it,
	// Ctrl-C / SIGTERM cancel it, and every sweep (and every in-flight
	// simulation) aborts cooperatively when it is done.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if e.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.timeout)
		defer cancel()
	}

	if cmd == "all" {
		if len(pos) > 0 {
			fmt.Fprintf(os.Stderr, "mithrilsim: unexpected arguments: %v\n", pos)
			flag.Usage()
			return 2
		}
		for _, c := range commands {
			if !c.inAll {
				continue
			}
			if err := c.run(ctx, e, nil); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", c.name, err)
				return 1
			}
		}
		return 0
	}
	for _, c := range commands {
		if c.name != cmd {
			continue
		}
		if len(pos) != c.nargs {
			fmt.Fprintf(os.Stderr, "mithrilsim %s: want %d argument(s) %s, got %v\n", c.name, c.nargs, c.args, pos)
			flag.Usage()
			return 2
		}
		if err := c.run(ctx, e, pos); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", c.name, err)
			return 1
		}
		return 0
	}
	flag.Usage()
	return 2
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n\n", title)
}

// emit prints a spec result in the requested format; the table format gets
// the figure's title banner, machine formats are bare. With a result
// store attached, the cache-effectiveness split lands on stderr (stdout
// must stay byte-identical with and without -store) in greppable
// rows=/cached=/simulated= form — the CI store-equivalence job asserts
// warm re-runs simulate nothing.
func emit(e env, res *expspec.Result) error {
	if e.store != nil {
		fmt.Fprintf(os.Stderr, "mithrilsim: %s: rows=%d cached=%d simulated=%d\n",
			res.Spec.Name, res.RowsCached+res.RowsSimulated, res.RowsCached, res.RowsSimulated)
	}
	if e.format == expspec.FormatTable {
		header(res.Spec.Title)
	}
	return res.Emit(os.Stdout, e.format)
}

// shippedSpec loads a spec by path, falling back to the shipped specs by
// name ("figure10.quick" or "figure10.quick.json") when no such file
// exists.
func shippedSpec(arg string) (*expspec.Spec, error) {
	if _, err := os.Stat(arg); err == nil {
		return expspec.Load(arg)
	}
	name := strings.TrimSuffix(arg, ".json")
	sp, err := expspec.LoadFS(mithril.SpecsFS(), "specs/"+name+".json")
	if err != nil {
		return nil, fmt.Errorf("no spec file %q and no shipped spec %q (see `mithrilsim list`)", arg, name)
	}
	return sp, nil
}

// specFigure backs a figure command with its shipped quick/full spec.
func specFigure(base string) func(ctx context.Context, e env, _ []string) error {
	return func(ctx context.Context, e env, _ []string) error {
		variant := "quick"
		if e.full {
			variant = "full"
		}
		sp, err := expspec.LoadFS(mithril.SpecsFS(), "specs/"+base+"."+variant+".json")
		if err != nil {
			return err
		}
		res, err := e.engine(base).RunSpecAt(ctx, sp, e.scale())
		if err != nil {
			return err
		}
		return emit(e, res)
	}
}

// safetyCmd runs the shipped safety spec with the -flipth override.
func safetyCmd(ctx context.Context, e env, _ []string) error {
	variant := "quick"
	if e.full {
		variant = "full"
	}
	sp, err := expspec.LoadFS(mithril.SpecsFS(), "specs/safety."+variant+".json")
	if err != nil {
		return err
	}
	sp.Axes.FlipTHs = []int{e.flipTH}
	sp.Title = fmt.Sprintf("Safety sweep — full-simulator attacks at FlipTH=%d", e.flipTH)
	res, err := e.engine("safety").RunSpecAt(ctx, sp, e.scale())
	if err != nil {
		return err
	}
	return emit(e, res)
}

// runCmd executes an arbitrary experiment spec at the spec's own scale.
// With -workers (an existing fleet) or -spawn N (freshly started local
// worker processes), the grid fans out across the fleet instead of
// simulating in-process; output is byte-identical either way.
func runCmd(ctx context.Context, e env, args []string) error {
	sp, err := shippedSpec(args[0])
	if err != nil {
		return err
	}
	var extra []mithril.EngineOption
	if e.fleetConfigured() {
		fleet, shutdown, err := e.fleet(ctx)
		if err != nil {
			return err
		}
		defer shutdown()
		extra = append(extra, mithril.WithWorkers(fleet))
	}
	res, err := e.engine(sp.Name, extra...).RunSpec(ctx, sp)
	if err != nil {
		return err
	}
	return emit(e, res)
}

// listCmd prints the shipped spec inventory.
func listCmd(_ context.Context, e env, _ []string) error {
	specs, err := expspec.LoadAll(mithril.SpecsFS(), "specs")
	if err != nil {
		return err
	}
	t := stats.NewTable("name", "kind", "scale", "rows", "title")
	for _, sp := range specs {
		sc, err := sp.Scale.Resolve()
		if err != nil {
			return err
		}
		t.Add(sp.Name, string(sp.Kind), sp.Scale.Preset,
			strconv.Itoa(len(sp.Expand(sc))), sp.Title)
	}
	fmt.Print(t)
	return nil
}

// schemesCmd prints the open mitigation registry, one sorted name per
// line — the same inventory spec validation and the serve catalog
// endpoint use, so CI can diff it against the README's scenario catalog.
// With -server it prints the remote fleet's registry instead.
func schemesCmd(ctx context.Context, e env, _ []string) error {
	names := mithril.SchemeNames()
	if e.server != "" {
		cat, err := fetchCatalog(ctx, e.server)
		if err != nil {
			return err
		}
		names = cat.Schemes
	}
	for _, n := range names {
		fmt.Println(n)
	}
	return nil
}

// workloadsCmd prints the open workload registry with descriptions, plus
// the trace:<path> replay form every workload axis accepts. With -server
// it prints the remote fleet's registry instead (no trace row: trace
// replays are not accepted over HTTP).
func workloadsCmd(ctx context.Context, e env, _ []string) error {
	t := stats.NewTable("name", "description")
	if e.server != "" {
		cat, err := fetchCatalog(ctx, e.server)
		if err != nil {
			return err
		}
		for _, w := range cat.Workloads {
			t.Add(w.Name, w.Desc)
		}
		fmt.Print(t)
		return nil
	}
	for _, w := range mithril.WorkloadCatalog() {
		t.Add(w.Name, w.Desc)
	}
	t.Add("trace:<path>", "replay a recorded access-trace file (format: README \"Trace-file format\")")
	fmt.Print(t)
	return nil
}

// attacksCmd prints the open attack-pattern registry with descriptions.
// With -server it prints the remote fleet's registry instead.
func attacksCmd(ctx context.Context, e env, _ []string) error {
	t := stats.NewTable("name", "description")
	if e.server != "" {
		cat, err := fetchCatalog(ctx, e.server)
		if err != nil {
			return err
		}
		for _, a := range cat.Attacks {
			t.Add(a.Name, a.Desc)
		}
		fmt.Print(t)
		return nil
	}
	for _, a := range mithril.AttackCatalog() {
		t.Add(a.Name, a.Desc)
	}
	fmt.Print(t)
	return nil
}

// diffCmd runs a spec and compares its golden-format output against a
// pinned file (the CI golden-figures gate); any divergence is printed
// line-by-line and fails the command.
func diffCmd(ctx context.Context, e env, args []string) error {
	sp, err := shippedSpec(args[0])
	if err != nil {
		return err
	}
	want, err := os.ReadFile(args[1])
	if err != nil {
		return err
	}
	res, err := e.engine(sp.Name).RunSpec(ctx, sp)
	if err != nil {
		return err
	}
	got := res.Golden()
	if got == string(want) {
		fmt.Printf("%s: %d rows match %s\n", sp.Name, strings.Count(got, "\n"), args[1])
		return nil
	}
	return fmt.Errorf("%s diverges from %s:\n%s", sp.Name, args[1], stats.DiffLines(string(want), got))
}

// ------------------------------------------------------- analytic commands

func figure2() error {
	header("Figure 2 — safe FlipTH: ARR-Graphene vs RFM-Graphene")
	pts := mithril.Figure2Data()
	t := stats.NewTable("threshold", "ARR", "RFM-256", "RFM-128", "RFM-64", "RFM-32")
	for _, p := range pts {
		t.Add(strconv.Itoa(p.Threshold),
			fmt.Sprintf("%.1fK", p.ARR/1000),
			fmt.Sprintf("%.1fK", p.RFM[256]/1000),
			fmt.Sprintf("%.1fK", p.RFM[128]/1000),
			fmt.Sprintf("%.1fK", p.RFM[64]/1000),
			fmt.Sprintf("%.1fK", p.RFM[32]/1000))
	}
	fmt.Print(t)
	return nil
}

func figure6() error {
	header("Figure 6 — feasible (table size, RFMTH) per FlipTH (CbS vs Lossy Counting)")
	t := stats.NewTable("FlipTH", "RFMTH", "Nentry(CbS)", "KB(CbS)", "Nentry(LC)", "KB(LC)")
	for _, s := range mithril.Figure6Data() {
		lossy := map[int]mithril.MithrilConfig{}
		for _, l := range s.Lossy {
			lossy[l.RFMTH] = l
		}
		for _, c := range s.CbS {
			lcN, lcKB := "-", "-"
			if l, ok := lossy[c.RFMTH]; ok {
				lcN, lcKB = strconv.Itoa(l.NEntry), fmt.Sprintf("%.2f", l.TableKB)
			}
			t.Add(strconv.Itoa(s.FlipTH), strconv.Itoa(c.RFMTH),
				strconv.Itoa(c.NEntry), fmt.Sprintf("%.2f", c.TableKB), lcN, lcKB)
		}
	}
	fmt.Print(t)
	return nil
}

func figure8() error {
	header("Figure 8 — large-object sweep (lbm-like) characterization")
	d := mithril.Figure8()
	fmt.Printf("large window (100K accesses): %d distinct rows\n", d.LargeDistinct)
	fmt.Printf("small window (512 accesses):  %d distinct rows, max %d accesses to one row\n",
		d.SmallDistinct, d.SmallMaxRow)
	fmt.Printf("activations in small window:  %d (row locality filters %.1f%% of accesses)\n",
		len(d.Activations), 100*(1-float64(len(d.Activations))/float64(len(d.SmallWindow))))
	fmt.Println("\nsmall-window access pattern (access# -> bank-local row):")
	for i, s := range d.SmallWindow {
		if i%64 == 0 {
			fmt.Printf("  %5d -> row %d (bank %d)\n", s.Index, s.Row, s.Bank)
		}
	}
	return nil
}

func table4() error {
	header("Table IV — per-bank counter table size (KB): computed vs paper")
	computed, paper := mithril.Table4Data()
	flipTHs := mithril.StandardFlipTHs()
	headers := []string{"scheme"}
	for _, f := range flipTHs {
		headers = append(headers, fmt.Sprintf("%gK", float64(f)/1000))
	}
	t := stats.NewTable(headers...)
	cell := func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return fmt.Sprintf("%.2f", v)
	}
	for i := range computed {
		row := []string{computed[i].Scheme}
		for _, f := range flipTHs {
			row = append(row, cell(computed[i].KB[f]))
		}
		t.Add(row...)
		ref := []string{"  (paper)"}
		for _, f := range flipTHs {
			ref = append(ref, cell(paper[i].KB[f]))
		}
		t.Add(ref...)
	}
	fmt.Print(t)
	return nil
}

func parfm() error {
	header("Appendix C — PARFM failure probability (target 1e-15, 22 banks)")
	t := stats.NewTable("FlipTH", "required RFMTH", "bank failure", "system failure")
	for _, f := range mithril.StandardFlipTHs() {
		r, ok := mithril.PARFMRequiredRFMTH(f)
		if !ok {
			t.Add(strconv.Itoa(f), "-", "-", "-")
			continue
		}
		bank, system := mithril.PARFMFailure(f, r)
		t.Add(strconv.Itoa(f), strconv.Itoa(r),
			fmt.Sprintf("%.2e", bank), fmt.Sprintf("%.2e", system))
	}
	fmt.Print(t)
	return nil
}
