// Package bad violates both registry contracts: runtime registration with
// dynamic names, and retention of scheme-owned victim slices.
package bad

var registry = map[string]func(){}

func Register(name string, f func()) { registry[name] = f }

func Setup(name string) {
	Register(name, func() {}) // want "Register called outside an init function" "Register name must be a compile-time string constant"
}

type scheme struct{}

func (scheme) OnActivate(bank int, row uint32) []uint32 { return nil }
func (scheme) OnRFM(bank int) []uint32                  { return nil }

type holder struct {
	victims []uint32
}

func (h *holder) capture(s scheme) {
	h.victims = s.OnActivate(0, 1) // want "retains a scheme-owned victim slice"
}

func captureLit(s scheme) holder {
	return holder{victims: s.OnRFM(0)} // want "composite literal retains a scheme-owned victim slice"
}

var stored = scheme{}.OnRFM(0) // want "package variable retains a scheme-owned victim slice"
