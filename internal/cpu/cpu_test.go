package cpu

import (
	"testing"

	"mithril/internal/mc"
	"mithril/internal/timing"
)

// scriptSource replays a fixed list of ops, then repeats the last one.
type scriptSource struct {
	entries []Op
	pos     int
}

func (s *scriptSource) Next() Op {
	e := s.entries[s.pos]
	if s.pos < len(s.entries)-1 {
		s.pos++
	}
	return e
}

func seqSource(gap int, stride uint64) *scriptSource {
	s := &scriptSource{}
	for i := 0; i < 4096; i++ {
		s.entries = append(s.entries, Op{Gap: gap, Addr: uint64(i) * stride})
	}
	return s
}

func TestLLCHitMissLRU(t *testing.T) {
	l := NewLLC(64*64*2, 2) // 2 sets... small: 64 lines per way region
	if l.Access(0) {
		t.Fatal("cold access should miss")
	}
	if !l.Access(0) {
		t.Fatal("second access should hit")
	}
	hits, misses := l.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestLLCEviction(t *testing.T) {
	// Capacity 2 ways × 1 set of lines: build smallest legal cache: 64B
	// lines, 1 set needs power-of-two sets.
	l := NewLLC(64*2, 2) // 1 set, 2 ways
	l.Access(0)          // miss, insert
	l.Access(64)         // miss, insert (same set)
	l.Access(128)        // miss, evicts LRU (line 0)
	if l.Access(0) {
		t.Fatal("line 0 should have been evicted")
	}
	if !l.Access(128) {
		t.Fatal("line 128 should be resident")
	}
}

func TestLLCHitRate(t *testing.T) {
	l := NewLLC(1<<20, 16)
	for i := 0; i < 100; i++ {
		l.Access(uint64(i) * 64)
	}
	for i := 0; i < 100; i++ {
		l.Access(uint64(i) * 64)
	}
	if hr := l.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", hr)
	}
}

func TestLLCGeometryPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLLC(0, 4) },
		func() { NewLLC(64*3, 1) }, // 3 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCoreAllHitsRetiresAtFullWidth(t *testing.T) {
	cfg := DefaultCoreConfig()
	llc := NewLLC(1<<20, 16)
	llc.Access(0) // preload the single line the core will touch
	src := &scriptSource{}
	src.entries = append(src.entries, Op{Gap: 39, Addr: 0})
	core := NewCore(0, cfg, src, llc, 4000, func(r *mc.Request) bool {
		t.Fatal("all-hit workload must not reach memory")
		return false
	})
	now := timing.PicoSeconds(0)
	for !core.Finished() && now < timing.Millisecond {
		core.Advance(now)
		now += 10 * cfg.CyclePs
	}
	if !core.Finished() {
		t.Fatal("core did not finish")
	}
	// 40 instructions per access at width 4 → 10 cycles + 2 hit penalty:
	// IPC ≈ 40/12 ≈ 3.3.
	if ipc := core.IPC(); ipc < 2.5 || ipc > 4 {
		t.Fatalf("IPC = %v, want ≈ 3.3", ipc)
	}
}

func TestCoreMSHRLimitBoundsOutstanding(t *testing.T) {
	cfg := DefaultCoreConfig()
	cfg.MSHRs = 4
	llc := NewLLC(1<<20, 16)
	var inflight []*mc.Request
	src := seqSource(0, 1<<20) // every access misses (distinct far lines)
	core := NewCore(0, cfg, src, llc, 1<<40, func(r *mc.Request) bool {
		inflight = append(inflight, r)
		return true
	})
	core.Advance(timing.Second) // unlimited time: MSHRs must be the limit
	if len(inflight) != 4 {
		t.Fatalf("outstanding = %d, want MSHR limit 4", len(inflight))
	}
	// Completing one lets exactly one more issue.
	core.Complete(inflight[0].ID, 100*timing.Nanosecond)
	core.Advance(timing.Second)
	if len(inflight) != 5 {
		t.Fatalf("after one completion, issued = %d, want 5", len(inflight))
	}
}

func TestCoreSerializedAccessDrainsFirst(t *testing.T) {
	cfg := DefaultCoreConfig()
	llc := NewLLC(1<<20, 16)
	var issued []*mc.Request
	src := &scriptSource{}
	for i := 0; i < 64; i++ {
		src.entries = append(src.entries, Op{Gap: 0, Addr: uint64(i) << 20, Serialize: true})
	}
	core := NewCore(0, cfg, src, llc, 1<<40, func(r *mc.Request) bool {
		issued = append(issued, r)
		return true
	})
	core.Advance(timing.Second)
	if len(issued) != 1 {
		t.Fatalf("serialized chain issued %d concurrently, want 1", len(issued))
	}
	core.Complete(issued[0].ID, timing.Microsecond)
	core.Advance(timing.Second)
	if len(issued) != 2 {
		t.Fatalf("next link should issue after completion, got %d", len(issued))
	}
}

func TestCoreROBStall(t *testing.T) {
	cfg := DefaultCoreConfig()
	cfg.MSHRs = 64
	cfg.ROB = 100
	llc := NewLLC(1<<20, 16)
	var issued []*mc.Request
	// First access misses; followers are hits with gap 9 (10 instr each):
	// fetch may run at most ROB instructions past the stuck miss.
	src := &scriptSource{}
	src.entries = append(src.entries, Op{Gap: 0, Addr: 1 << 30})
	for i := 0; i < 1000; i++ {
		src.entries = append(src.entries, Op{Gap: 9, Addr: 0})
	}
	llc.Access(0)
	core := NewCore(0, cfg, src, llc, 1<<40, func(r *mc.Request) bool {
		issued = append(issued, r)
		return true
	})
	core.Advance(timing.Second)
	retiredBefore := core.InstructionsRetired()
	// The window check precedes each 10-instruction entry, so fetch can
	// overshoot by at most one entry: ≤ ROB + 1 + 10.
	if retiredBefore > 111 {
		t.Fatalf("fetch ran %d instructions past a stuck miss (ROB=100)", retiredBefore)
	}
	core.Complete(issued[0].ID, timing.Microsecond)
	core.Advance(2 * timing.Microsecond)
	if core.InstructionsRetired() <= retiredBefore {
		t.Fatal("completion should unblock the ROB")
	}
}

func TestCoreBackpressureRetry(t *testing.T) {
	cfg := DefaultCoreConfig()
	llc := NewLLC(1<<20, 16)
	accept := false
	var got []*mc.Request
	src := seqSource(0, 1<<20)
	core := NewCore(0, cfg, src, llc, 1<<40, func(r *mc.Request) bool {
		if accept {
			got = append(got, r)
		}
		return accept
	})
	core.Advance(10 * timing.Nanosecond)
	if len(got) != 0 {
		t.Fatal("rejected request should not be recorded")
	}
	accept = true
	core.Advance(20 * timing.Nanosecond)
	if len(got) == 0 {
		t.Fatal("pending request should be retried and accepted")
	}
}

func TestCoreFinishAndIPCPositive(t *testing.T) {
	cfg := DefaultCoreConfig()
	llc := NewLLC(1<<20, 16)
	src := seqSource(19, 64) // hits after first touch of each line
	done := map[uint64]bool{}
	var pendingIDs []uint64
	core := NewCore(3, cfg, src, llc, 2000, func(r *mc.Request) bool {
		pendingIDs = append(pendingIDs, r.ID)
		return true
	})
	now := timing.PicoSeconds(0)
	for !core.Finished() && now < 10*timing.Millisecond {
		core.Advance(now)
		for _, id := range pendingIDs {
			if !done[id] {
				core.Complete(id, now+50*timing.Nanosecond)
				done[id] = true
			}
		}
		now += 100 * cfg.CyclePs
	}
	if !core.Finished() {
		t.Fatal("core did not finish")
	}
	if core.IPC() <= 0 {
		t.Fatalf("IPC = %v", core.IPC())
	}
	acc, miss := core.MemStats()
	if acc == 0 || miss == 0 || miss > acc {
		t.Fatalf("mem stats = %d/%d", acc, miss)
	}
}

func TestCoreConstructorPanics(t *testing.T) {
	llc := NewLLC(1<<20, 16)
	for _, fn := range []func(){
		func() { NewCore(0, CoreConfig{}, seqSource(0, 64), llc, 100, nil) },
		func() { NewCore(0, DefaultCoreConfig(), seqSource(0, 64), llc, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCompleteUnknownRequestPanics(t *testing.T) {
	llc := NewLLC(1<<20, 16)
	core := NewCore(0, DefaultCoreConfig(), seqSource(0, 64), llc, 100, func(*mc.Request) bool { return true })
	defer func() {
		if recover() == nil {
			t.Fatal("unknown completion should panic")
		}
	}()
	core.Complete(999, 0)
}
