// Quickstart: size a Mithril counter table with Theorem 1, then run a
// declarative experiment spec — the same JSON format the shipped
// specs/*.json figures use — comparing Mithril against PARFM on a benign
// workload, and print the human table plus machine-readable CSV rows.
//
// New scenarios are new spec files, not new code: edit the axes below (or
// point `mithrilsim run` at a .json file) to change the scheme subset,
// FlipTH grid, workloads, or seeds.
package main

import (
	"fmt"
	"log"
	"os"

	"mithril"
)

// spec is a small comparison grid: two schemes × two FlipTH levels on the
// mix-high workload, at a reduced quick scale so it runs in seconds.
const spec = `{
  "name": "quickstart",
  "title": "Quickstart — Mithril vs PARFM on mix-high",
  "kind": "comparison",
  "scale": {"preset": "quick", "cores": 4, "instr_per_core": 4000},
  "axes": {
    "schemes": ["parfm", "mithril"],
    "flipths": [6250, 1500],
    "workloads": ["mix-high"]
  }
}`

func main() {
	p := mithril.DDR5()
	const flipTH = 6250 // the paper's "recently observed" threshold

	// Theorem 1 sizing: the minimal counter table for RFMTH = 128.
	cfg, ok := mithril.Configure(p, flipTH, 128, 0)
	if !ok {
		log.Fatal("no feasible configuration")
	}
	fmt.Printf("Mithril config: %s\n", cfg)
	fmt.Printf("Theorem 1 bound M = %.0f (< FlipTH/2 = %d)\n\n",
		mithril.BoundM(p, cfg.NEntry, cfg.RFMTH), flipTH/2)

	// Parse + validate the spec (unknown schemes, workloads, or axes fail
	// here, before any simulation runs), then execute its grid.
	sp, err := mithril.ParseSpec([]byte(spec))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sp.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s\n\n", sp.Title)
	if err := res.Emit(os.Stdout, mithril.FormatTable); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nmachine-readable (CSV; mithril.FormatJSON for a document):")
	if err := res.Emit(os.Stdout, mithril.FormatCSV); err != nil {
		log.Fatal(err)
	}
}
