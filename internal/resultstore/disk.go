package resultstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// On-disk layout: a store directory holds append-only NDJSON segments.
// Finalized segments are seg-NNNNNN.ndjson; the segment currently being
// appended to is seg-NNNNNN.open and is atomically renamed to .ndjson on
// Close (or adopted — renamed as-is — by the next Open after a crash).
// Writes never append to a pre-existing segment: a torn tail from a
// crash can then never be concatenated with fresh records, and reload
// only ever has to skip trailing garbage, not resynchronize mid-file.
const (
	segPattern = "seg-*.ndjson"
	openSuffix = ".open"
)

func segName(seq int) string { return fmt.Sprintf("seg-%06d.ndjson", seq) }

// diskRecord is the NDJSON line shape: the record plus a CRC32 over its
// fields, so a torn or bit-flipped line fails closed (skipped on reload,
// treated as a miss) instead of serving a corrupt payload.
type diskRecord struct {
	Key     string          `json:"key"`
	Stamp   string          `json:"stamp"`
	Payload json.RawMessage `json:"payload"`
	CRC     uint32          `json:"crc"`
}

// recordCRC covers every field of the line; the \x00 separators keep
// (key, stamp) boundaries unambiguous.
func recordCRC(keyHex, stamp string, payload []byte) uint32 {
	crc := crc32.ChecksumIEEE([]byte(keyHex))
	crc = crc32.Update(crc, crc32.IEEETable, []byte{0})
	crc = crc32.Update(crc, crc32.IEEETable, []byte(stamp))
	crc = crc32.Update(crc, crc32.IEEETable, []byte{0})
	return crc32.Update(crc, crc32.IEEETable, payload)
}

// parseLine decodes and checks one segment line. ok is false for any
// damage — truncated JSON, a bad key, a CRC mismatch — never an error:
// damaged lines are data loss already recorded torn, not a reason to
// fail the whole store.
func parseLine(line []byte) (Record, bool) {
	var dr diskRecord
	if err := json.Unmarshal(line, &dr); err != nil {
		return Record{}, false
	}
	k, err := ParseKey(dr.Key)
	if err != nil {
		return Record{}, false
	}
	if recordCRC(dr.Key, dr.Stamp, dr.Payload) != dr.CRC {
		return Record{}, false
	}
	return Record{Key: k, Stamp: dr.Stamp, Payload: dr.Payload}, true
}

// Disk is the durable Store: all records live in an in-memory index
// (lookups never touch the disk), every Put appends one line to the
// active segment before returning, and Close finalizes the segment with
// an atomic rename. Safe for concurrent use.
type Disk struct {
	dir string

	mu     sync.Mutex
	idx    map[Key]int
	recs   []Record
	active *os.File // nil until the first Put, and again after Close
	seq    int      // next segment number
	torn   int      // damaged lines skipped on Open
	closed bool
}

// Open loads (creating if needed) the store directory: any .open segment
// left by a crashed process is adopted (renamed to a finalized segment —
// its intact lines are data), then every segment is replayed oldest
// first into the index, later records winning. Damaged lines — a torn
// tail from a crash, a corrupt byte — are skipped and counted, never
// fatal: the worst outcome of damage is re-simulating the lost rows.
func Open(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	opens, err := filepath.Glob(filepath.Join(dir, segPattern+openSuffix))
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	for _, o := range opens {
		if err := os.Rename(o, strings.TrimSuffix(o, openSuffix)); err != nil {
			return nil, fmt.Errorf("resultstore: adopting %s: %w", filepath.Base(o), err)
		}
	}
	segs, err := filepath.Glob(filepath.Join(dir, segPattern))
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	sort.Strings(segs)
	d := &Disk{dir: dir, idx: map[Key]int{}}
	for _, seg := range segs {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(seg), "seg-%d.ndjson", &n); err == nil && n >= d.seq {
			d.seq = n + 1
		}
		if err := d.loadSegment(seg); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// loadSegment replays one finalized segment into the index.
func (d *Disk) loadSegment(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	for sc.Scan() {
		rec, ok := parseLine(sc.Bytes())
		if !ok {
			d.torn++
			continue
		}
		d.insert(rec)
	}
	if err := sc.Err(); err != nil {
		// An over-long or unreadable tail is damage like any other torn
		// line: count it and keep what already replayed.
		d.torn++
	}
	return nil
}

// maxLineBytes bounds one segment line; payloads are a few hundred bytes,
// so the megabyte ceiling only guards the scanner against garbage.
const maxLineBytes = 1 << 20

// insert indexes rec, later records winning (callers hold mu or are the
// constructor).
func (d *Disk) insert(rec Record) {
	if i, ok := d.idx[rec.Key]; ok {
		d.recs[i] = rec
		return
	}
	d.idx[rec.Key] = len(d.recs)
	d.recs = append(d.recs, rec)
}

// Dir returns the store directory.
func (d *Disk) Dir() string { return d.dir }

// Get returns the record stored under k (index-only; no disk access).
func (d *Disk) Get(k Key) (Record, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	i, ok := d.idx[k]
	if !ok {
		return Record{}, false
	}
	return d.recs[i], true
}

// Has reports whether k is stored.
func (d *Disk) Has(k Key) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.idx[k]
	return ok
}

// Len reports the number of live (deduplicated) records.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.recs)
}

// Scan visits every live record in insertion order until fn returns
// false; records are copied out under the lock first, so fn may call
// back into the store.
func (d *Disk) Scan(fn func(rec Record) bool) {
	d.mu.Lock()
	recs := append([]Record(nil), d.recs...)
	d.mu.Unlock()
	for _, rec := range recs {
		if !fn(rec) {
			return
		}
	}
}

// Put appends rec to the active segment and indexes it. A Put identical
// to the stored record is a no-op (warm re-runs rewrite nothing); a
// changed payload under an existing key is appended and wins on reload.
// The append is one write of one complete line, so a crash can tear at
// most the final line of the segment. Holding the lock across the append
// serializes writers and is the durability contract — Put has persisted
// the record when it returns — at a cost hot paths never see: executors
// Put once per simulated row, microseconds against the row's seconds.
func (d *Disk) Put(rec Record) error {
	line, err := marshalLine(rec)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("resultstore: Put on closed store %s", d.dir)
	}
	if i, ok := d.idx[rec.Key]; ok && sameRecord(d.recs[i], rec) {
		return nil
	}
	if d.active == nil {
		name := filepath.Join(d.dir, segName(d.seq)+openSuffix)
		//mithril:allow lockheld store appends are the durability contract; rows simulate for seconds, appends take microseconds
		f, err := os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("resultstore: %w", err)
		}
		d.active = f
		d.seq++
	}
	//mithril:allow lockheld store appends are the durability contract; rows simulate for seconds, appends take microseconds
	if _, err := d.active.Write(line); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	d.insert(rec)
	return nil
}

func sameRecord(a, b Record) bool {
	return a.Stamp == b.Stamp && string(a.Payload) == string(b.Payload)
}

// marshalLine renders one complete segment line, newline included.
func marshalLine(rec Record) ([]byte, error) {
	dr := diskRecord{
		Key:     rec.Key.String(),
		Stamp:   rec.Stamp,
		Payload: rec.Payload,
		CRC:     recordCRC(rec.Key.String(), rec.Stamp, rec.Payload),
	}
	line, err := json.Marshal(dr)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return append(line, '\n'), nil
}

// Flush fsyncs the active segment (Put already wrote through to the OS;
// Flush additionally survives power loss).
func (d *Disk) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.active == nil {
		return nil
	}
	//mithril:allow lockheld explicit durability point; no simulation work contends here
	if err := d.active.Sync(); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	return nil
}

// Close finalizes the active segment: sync, close, and atomic rename
// from .open to .ndjson. Closing a store with no writes is a no-op; a
// closed store still serves reads but refuses Put.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	//mithril:allow lockheld shutdown path; no simulation work contends here
	return d.finalizeActive()
}

// finalizeActive is Close's body, shared with GC; callers hold mu.
func (d *Disk) finalizeActive() error {
	d.closed = true
	if d.active == nil {
		return nil
	}
	f := d.active
	d.active = nil
	//mithril:allow lockheld shutdown path; no simulation work contends here
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	//mithril:allow lockheld shutdown path; no simulation work contends here
	if err := f.Close(); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	name := f.Name()
	//mithril:allow lockheld shutdown path; no simulation work contends here
	if err := os.Rename(name, strings.TrimSuffix(name, openSuffix)); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	return nil
}

// GC compacts the store: live records for which keep returns true are
// rewritten into one fresh segment (written complete, then atomically
// renamed into place), every older segment is removed, and dropped
// records are gone for good. The usual keep predicate is "current
// stamp" — superseded generations stop matching any key anyway, so GC
// is how their bytes are reclaimed. GC finalizes the active segment
// first and leaves the store closed to writes.
func (d *Disk) GC(keep func(rec Record) bool) (removed int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	//mithril:allow lockheld offline maintenance; nothing else runs during GC
	if err := d.finalizeActive(); err != nil {
		return 0, err
	}
	var live []Record
	for _, rec := range d.recs {
		//mithril:allow lockheld keep is a pure predicate over one record; nothing else runs during GC
		if keep(rec) {
			live = append(live, rec)
		} else {
			removed++
		}
	}
	//mithril:allow lockheld offline maintenance; nothing else runs during GC
	old, err := filepath.Glob(filepath.Join(d.dir, segPattern))
	if err != nil {
		return 0, fmt.Errorf("resultstore: %w", err)
	}
	final := filepath.Join(d.dir, segName(d.seq))
	d.seq++
	if len(live) > 0 {
		tmp := final + ".tmp"
		//mithril:allow lockheld offline maintenance; nothing else runs during GC
		f, err := os.OpenFile(tmp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return 0, fmt.Errorf("resultstore: %w", err)
		}
		//mithril:allow lockheld offline maintenance; nothing else runs during GC
		if err := writeAll(f, live); err != nil {
			//mithril:allow lockheld offline maintenance; nothing else runs during GC
			f.Close()
			//mithril:allow lockheld offline maintenance; nothing else runs during GC
			os.Remove(tmp)
			return 0, err
		}
		//mithril:allow lockheld offline maintenance; nothing else runs during GC
		if err := os.Rename(tmp, final); err != nil {
			return 0, fmt.Errorf("resultstore: %w", err)
		}
	}
	for _, seg := range old {
		//mithril:allow lockheld offline maintenance; nothing else runs during GC
		if err := os.Remove(seg); err != nil {
			return 0, fmt.Errorf("resultstore: %w", err)
		}
	}
	d.idx = map[Key]int{}
	d.recs = nil
	d.torn = 0
	for _, rec := range live {
		d.insert(rec)
	}
	return removed, nil
}

// writeAll streams records into a segment file and syncs and closes it.
func writeAll(f *os.File, recs []Record) error {
	w := bufio.NewWriter(f)
	for _, rec := range recs {
		line, err := marshalLine(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return fmt.Errorf("resultstore: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	return nil
}

// Stats summarizes the store for the CLI's `store stats`.
type Stats struct {
	Dir       string
	Segments  int
	Records   int // live (deduplicated) records
	TornLines int // damaged lines skipped on Open
	Bytes     int64
	// Stamps counts live records per version stamp; more than one entry
	// means superseded generations are still occupying bytes (GC them).
	Stamps map[string]int
}

// Stats reports the store's live shape. Segment count and byte size come
// from the directory; record counts from the index.
func (d *Disk) Stats() (Stats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Stats{Dir: d.dir, Records: len(d.recs), TornLines: d.torn, Stamps: map[string]int{}}
	for _, rec := range d.recs {
		st.Stamps[rec.Stamp]++
	}
	//mithril:allow lockheld maintenance statistics; no simulation work contends here
	segs, err := filepath.Glob(filepath.Join(d.dir, segPattern))
	if err != nil {
		return Stats{}, fmt.Errorf("resultstore: %w", err)
	}
	//mithril:allow lockheld maintenance statistics; no simulation work contends here
	opens, err := filepath.Glob(filepath.Join(d.dir, segPattern+openSuffix))
	if err != nil {
		return Stats{}, fmt.Errorf("resultstore: %w", err)
	}
	for _, seg := range append(segs, opens...) {
		//mithril:allow lockheld maintenance statistics; no simulation work contends here
		fi, err := os.Stat(seg)
		if err != nil {
			return Stats{}, fmt.Errorf("resultstore: %w", err)
		}
		st.Segments++
		st.Bytes += fi.Size()
	}
	return st, nil
}
