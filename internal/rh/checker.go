// Package rh models the RowHammer fault mechanism itself: per-row
// disturbance accumulation with a configurable blast radius, bit-flip
// detection against FlipTH, and safety reports. The simulator wires a
// Checker into every DRAM bank; mitigation schemes are judged by whether any
// victim row ever accumulates FlipTH of disturbance between refreshes
// (Section II-B of the paper).
package rh

import (
	"fmt"

	"mithril/internal/timing"
)

// Flip records one detected bit flip: a victim row whose accumulated
// disturbance reached FlipTH before it was refreshed.
type Flip struct {
	Row         int
	Time        timing.PicoSeconds
	Disturbance float64
}

// String renders the flip for reports.
func (f Flip) String() string {
	return fmt.Sprintf("bit flip: row %d at %v (disturbance %.0f)", f.Row, f.Time, f.Disturbance)
}

// Checker accumulates RowHammer disturbance for one DRAM bank.
//
// Per-row state (disturb, flipped) is validated lazily against an epoch
// stamp: a row whose stamp differs from the current epoch reads as
// untouched. Reset therefore costs O(1) instead of re-zeroing two
// row-length arrays — the property the dram device pool depends on, since
// zeroing 64 banks × 65536 rows of checker state otherwise dominates
// short simulations.
type Checker struct {
	rows    int
	flipTH  float64
	weights []float64 // weights[d-1] = disturbance added at distance d per ACT

	disturb   []float64
	flipped   []bool   // latched per refresh epoch to avoid duplicate reports
	stamp     []uint32 // per row: epoch the disturb/flipped entries belong to
	epoch     uint32
	flips     []Flip
	maxSeen   float64
	maxRow    int
	acts      uint64
	refreshes uint64
}

// DoubleSidedWeights is the classic adjacent-only model: each ACT disturbs
// the two distance-1 neighbours with weight 1 (aggregated effect 2).
func DoubleSidedWeights() []float64 { return []float64{1} }

// NonAdjacentWeights models the range-3 effect of Section V-C: per-side
// weights 1, 0.5, 0.25 aggregate to 3.5 as reported by BlockHammer.
func NonAdjacentWeights() []float64 { return []float64{1, 0.5, 0.25} }

// AggregatedEffect sums the disturbance a victim suffers when every row
// within the blast radius is an aggressor (both sides).
func AggregatedEffect(weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += 2 * w
	}
	return total
}

// NewChecker builds a checker for a bank with rows rows, flip threshold
// flipTH, and the given per-distance weights (nil means double-sided).
func NewChecker(rows, flipTH int, weights []float64) *Checker {
	if rows <= 0 {
		panic(fmt.Sprintf("rh: rows must be positive, got %d", rows))
	}
	if flipTH <= 0 {
		panic(fmt.Sprintf("rh: FlipTH must be positive, got %d", flipTH))
	}
	if len(weights) == 0 {
		weights = DoubleSidedWeights()
	}
	return &Checker{
		rows:    rows,
		flipTH:  float64(flipTH),
		weights: weights,
		disturb: make([]float64, rows),
		flipped: make([]bool, rows),
		stamp:   make([]uint32, rows),
		epoch:   1, // fresh stamps are 0 → every row starts untouched
	}
}

// Reset returns the checker to its just-constructed state in O(1): a new
// epoch invalidates all per-row disturbance and flip latches lazily, and
// the counters and flip log are cleared. Slices previously returned by
// Flips are invalidated (their backing array is reused).
func (c *Checker) Reset() {
	c.epoch++
	if c.epoch == 0 {
		// uint32 wrap (once per ~4G resets): stale stamps could collide
		// with a recycled epoch value, so hard-clear them.
		for i := range c.stamp {
			c.stamp[i] = 0
		}
		c.epoch = 1
	}
	c.flips = c.flips[:0]
	c.maxSeen = 0
	c.maxRow = 0
	c.acts = 0
	c.refreshes = 0
}

// touch validates row's lazily-reset state for the current epoch.
//
//mithril:hotpath
func (c *Checker) touch(row int) {
	if c.stamp[row] != c.epoch {
		c.stamp[row] = c.epoch
		c.disturb[row] = 0
		c.flipped[row] = false
	}
}

// OnActivate records one ACT on row at the given time, disturbing every
// neighbour within the blast radius.
//
//mithril:hotpath
func (c *Checker) OnActivate(row int, now timing.PicoSeconds) {
	if row < 0 || row >= c.rows {
		panic(fmt.Sprintf("rh: activate of row %d outside bank of %d rows", row, c.rows))
	}
	c.acts++
	for d := 1; d <= len(c.weights); d++ {
		w := c.weights[d-1]
		for _, v := range [2]int{row - d, row + d} {
			if v < 0 || v >= c.rows {
				continue
			}
			c.touch(v)
			c.disturb[v] += w
			if c.disturb[v] > c.maxSeen {
				c.maxSeen = c.disturb[v]
				c.maxRow = v
			}
			if c.disturb[v] >= c.flipTH && !c.flipped[v] {
				c.flipped[v] = true
				c.flips = append(c.flips, Flip{Row: v, Time: now, Disturbance: c.disturb[v]})
			}
		}
	}
}

// OnRefresh records a refresh (auto or preventive) of row, resetting its
// accumulated disturbance.
//
//mithril:hotpath
func (c *Checker) OnRefresh(row int) {
	if row < 0 || row >= c.rows {
		return // refresh sweeps may address padding rows; ignore
	}
	c.refreshes++
	if c.stamp[row] != c.epoch {
		// Untouched since the last Reset: the row already reads as zero
		// disturbance, so the refresh sweep only needs the stamp probe (one
		// dense uint32 read) instead of writing three arrays per row.
		return
	}
	c.disturb[row] = 0
	c.flipped[row] = false
}

// Disturbance reports the current accumulated disturbance of row.
func (c *Checker) Disturbance(row int) float64 {
	if row < 0 || row >= c.rows || c.stamp[row] != c.epoch {
		return 0
	}
	return c.disturb[row]
}

// Flips returns all detected bit flips in detection order.
func (c *Checker) Flips() []Flip { return c.flips }

// MaxDisturbance reports the high-water mark of disturbance ever observed
// and the row where it occurred — the safety margin is
// FlipTH − MaxDisturbance even when no flip fired.
func (c *Checker) MaxDisturbance() (float64, int) { return c.maxSeen, c.maxRow }

// Counts reports the total ACTs and refreshes observed.
func (c *Checker) Counts() (acts, refreshes uint64) { return c.acts, c.refreshes }

// Report summarizes the verdict for one bank.
type Report struct {
	FlipTH         int
	Flips          int
	MaxDisturbance float64
	MarginPercent  float64 // (FlipTH − max) / FlipTH × 100
	ACTs           uint64
	Refreshes      uint64
}

// Report produces the bank's safety summary.
func (c *Checker) Report() Report {
	return Report{
		FlipTH:         int(c.flipTH),
		Flips:          len(c.flips),
		MaxDisturbance: c.maxSeen,
		MarginPercent:  100 * (c.flipTH - c.maxSeen) / c.flipTH,
		ACTs:           c.acts,
		Refreshes:      c.refreshes,
	}
}

// Safe reports whether no bit flip was detected.
func (r Report) Safe() bool { return r.Flips == 0 }

// String renders the report.
func (r Report) String() string {
	verdict := "SAFE"
	if !r.Safe() {
		verdict = fmt.Sprintf("UNSAFE (%d flips)", r.Flips)
	}
	return fmt.Sprintf("%s: max disturbance %.0f / FlipTH %d (margin %.1f%%), %d ACTs, %d refreshes",
		verdict, r.MaxDisturbance, r.FlipTH, r.MarginPercent, r.ACTs, r.Refreshes)
}
