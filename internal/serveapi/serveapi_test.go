package serveapi_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mithril/internal/distrib"
	"mithril/internal/expspec"
	"mithril/internal/resultstore"
	"mithril/internal/serveapi"
	"mithril/internal/testutil"
)

const testSpec = `{
  "name": "api-test",
  "kind": "comparison",
  "scale": {"preset": "quick", "cores": 2, "instr_per_core": 400},
  "axes": {
    "schemes": ["none", "mithril"],
    "flipths": [6250],
    "workloads": ["mix-high"]
  }
}`

func newServer(t *testing.T, cfg serveapi.Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serveapi.NewHandler(cfg))
	t.Cleanup(ts.Close)
	return ts
}

// decodeEnvelope asserts a response is the uniform error envelope and
// returns its code and message.
func decodeEnvelope(t *testing.T, resp *http.Response) (code, msg string) {
	t.Helper()
	defer resp.Body.Close()
	var env struct {
		Error *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil {
		t.Fatalf("response is not the error envelope (decode err %v)", err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %+v", env.Error)
	}
	return env.Error.Code, env.Error.Message
}

func TestV1Healthz(t *testing.T) {
	ts := newServer(t, serveapi.Config{Store: resultstore.NewMem()})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status string `json:"status"`
		API    string `json:"api"`
		Stamp  string `json:"stamp"`
		Store  bool   `json:"store"`
		Role   string `json:"role"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.API != "v1" || health.Role != "worker" ||
		!health.Store || health.Stamp != expspec.StoreStamp() {
		t.Errorf("healthz = %+v, want ok/v1/worker/store=true/current stamp", health)
	}
}

func TestV1HealthzCoordinatorRole(t *testing.T) {
	coord, err := distrib.New([]string{"http://w1:1", "http://w2:1"}, distrib.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := newServer(t, serveapi.Config{Coordinator: coord})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Role    string   `json:"role"`
		Workers []string `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Role != "coordinator" || len(health.Workers) != 2 {
		t.Errorf("healthz = %+v, want coordinator role with 2 workers", health)
	}
}

func TestV1Catalog(t *testing.T) {
	ts := newServer(t, serveapi.Config{})
	resp, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cat struct {
		Schemes   []string `json:"schemes"`
		Workloads []struct {
			Name string `json:"name"`
			Desc string `json:"desc"`
		} `json:"workloads"`
		Attacks []struct {
			Name string `json:"name"`
			Desc string `json:"desc"`
		} `json:"attacks"`
		Stamp string `json:"stamp"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	if len(cat.Schemes) == 0 || cat.Schemes[0] != "blockhammer" {
		t.Errorf("catalog schemes = %v, want the sorted registry", cat.Schemes)
	}
	if len(cat.Workloads) == 0 || cat.Workloads[0].Name != "fft" || cat.Workloads[0].Desc == "" {
		t.Errorf("catalog workloads = %v, want described registry entries", cat.Workloads)
	}
	if len(cat.Attacks) == 0 || cat.Attacks[0].Name != "blockhammer-adversarial" {
		t.Errorf("catalog attacks = %v, want the sorted registry", cat.Attacks)
	}
	if cat.Stamp != expspec.StoreStamp() {
		t.Errorf("catalog stamp = %q, want the current registry stamp", cat.Stamp)
	}
}

// TestLegacyAliasesDeprecated pins the migration contract: every bare
// legacy path still answers with its original shape, carrying the
// Deprecation marker and a successor link.
func TestLegacyAliasesDeprecated(t *testing.T) {
	ts := newServer(t, serveapi.Config{})
	for path, successor := range map[string]string{
		"/healthz":   "/v1/healthz",
		"/schemes":   "/v1/catalog",
		"/workloads": "/v1/catalog",
		"/attacks":   "/v1/catalog",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if d := resp.Header.Get("Deprecation"); d != "true" {
			t.Errorf("%s Deprecation header = %q, want true", path, d)
		}
		if l := resp.Header.Get("Link"); !strings.Contains(l, successor) || !strings.Contains(l, "successor-version") {
			t.Errorf("%s Link header = %q, want successor %s", path, l, successor)
		}
	}
	// The versioned paths are not deprecated.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/v1/healthz carries a Deprecation header")
	}
}

// TestErrorEnvelope pins the uniform error contract on the /v1 surface:
// wrong method, unknown path, and invalid specs all answer with
// {"error":{"code","message"}} — and, the PR's header-ordering fix, a
// rejectable spec gets a real 400 before any NDJSON header, never a 200
// that turns into an error record.
func TestErrorEnvelope(t *testing.T) {
	ts := newServer(t, serveapi.Config{})

	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run status = %d, want 405", resp.StatusCode)
	}
	if code, _ := decodeEnvelope(t, resp); code != "bad_method" {
		t.Errorf("GET /v1/run code = %q, want bad_method", code)
	}

	resp, err = http.Get(ts.URL + "/no/such/path")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", resp.StatusCode)
	}
	if code, _ := decodeEnvelope(t, resp); code != "not_found" {
		t.Errorf("unknown path code = %q, want not_found", code)
	}

	for name, body := range map[string]string{
		"malformed json": `{"name":`,
		"unknown scheme": `{"name":"x","kind":"comparison","scale":{"preset":"quick"},"axes":{"schemes":["bogus"],"workloads":["mix-high"]}}`,
		"trace workload": `{"name":"x","kind":"comparison","scale":{"preset":"quick"},"axes":{"schemes":["mithril"],"workloads":["trace:/etc/passwd"]}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s status = %d, want 400 before the stream header", name, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s content type = %q, want the JSON envelope (not a committed NDJSON stream)", name, ct)
		}
		if code, _ := decodeEnvelope(t, resp); code != "bad_request" {
			t.Errorf("%s code = %q, want bad_request", name, code)
		}
	}
}

// TestV1RunStream pins the /v1 sweep stream: display rows with grid
// indices, one terminal summary, and the trailer split.
func TestV1RunStream(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	ts := newServer(t, serveapi.Config{Jobs: 2})
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	rows, summaries := 0, 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case rec["error"] != nil:
			t.Fatalf("stream error: %v", rec["error"])
		case rec["summary"] != nil:
			summaries++
		default:
			rows++
		}
	}
	if rows != 2 || summaries != 1 {
		t.Fatalf("stream = %d rows, %d summaries; want 2 and 1", rows, summaries)
	}
	if s := resp.Trailer.Get("X-Mithril-Rows-Simulated"); s != "2" {
		t.Errorf("simulated trailer = %q, want 2", s)
	}
}

// shardRequest builds a valid wire request for a subset of testSpec.
func shardRequest(t *testing.T, rows []int) ([]byte, *expspec.Spec, expspec.Scale) {
	t.Helper()
	sp, err := expspec.Parse([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sp.Scale.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	specJSON, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(distrib.ShardRequest{
		Spec:  specJSON,
		Scale: distrib.ToWire(sc),
		Rows:  rows,
		Stamp: expspec.StoreStamp(),
		Grid:  len(sp.Expand(sc)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return body, sp, sc
}

// TestShardStream pins the worker side of the wire protocol: a shard
// request streams exactly the requested rows as payload records plus one
// terminal summary.
func TestShardStream(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	ts := newServer(t, serveapi.Config{Jobs: 2})
	body, sp, _ := shardRequest(t, []int{1})
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var dataRows []int
	summaries := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec distrib.ShardRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad shard record %q: %v", sc.Text(), err)
		}
		switch {
		case rec.Error != nil:
			t.Fatalf("shard error: %v", rec.Error)
		case rec.Summary != nil:
			summaries++
			if rec.Summary.Rows != 1 {
				t.Errorf("summary rows = %d, want 1", rec.Summary.Rows)
			}
		default:
			dataRows = append(dataRows, rec.Row)
			var row expspec.Row
			if !expspec.DecodeRowPayload(sp.Kind, rec.Point, &row) {
				t.Errorf("row %d payload does not decode for kind %s", rec.Row, sp.Kind)
			}
		}
	}
	if len(dataRows) != 1 || dataRows[0] != 1 || summaries != 1 {
		t.Fatalf("shard stream rows = %v, summaries = %d; want exactly row 1 and one summary", dataRows, summaries)
	}
}

// TestShardRejections pins the worker's pre-header guards: version
// drift conflicts, malformed subsets, and shards aimed at a coordinator
// all fail with real statuses and envelope codes.
func TestShardRejections(t *testing.T) {
	ts := newServer(t, serveapi.Config{})

	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	body, _, _ := shardRequest(t, []int{0})
	var req distrib.ShardRequest
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}

	stale := req
	stale.Stamp = "v0:0000"
	b, _ := json.Marshal(stale)
	if resp := post(b); resp.StatusCode != http.StatusConflict {
		t.Errorf("stale stamp status = %d, want 409", resp.StatusCode)
	} else if code, _ := decodeEnvelope(t, resp); code != "conflict" {
		t.Errorf("stale stamp code = %q, want conflict", code)
	}

	drift := req
	drift.Grid = 99
	b, _ = json.Marshal(drift)
	if resp := post(b); resp.StatusCode != http.StatusConflict {
		t.Errorf("grid drift status = %d, want 409", resp.StatusCode)
	}

	oob := req
	oob.Rows = []int{0, 57}
	b, _ = json.Marshal(oob)
	if resp := post(b); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range subset status = %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	coordTS := newServer(t, serveapi.Config{Coordinator: mustCoordinator(t)})
	resp, err := http.Post(coordTS.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("shard-to-coordinator status = %d, want 400", resp.StatusCode)
	}
	if _, msg := decodeEnvelope(t, resp); !strings.Contains(msg, "coordinator") {
		t.Errorf("shard-to-coordinator message = %q, want the role explanation", msg)
	}
}

func mustCoordinator(t *testing.T) *distrib.Coordinator {
	t.Helper()
	c, err := distrib.New([]string{"http://unused:1"}, distrib.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}
