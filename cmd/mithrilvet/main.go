// Command mithrilvet runs the repo's static-analysis suite (internal/lint)
// over the given packages, go vet-style: findings print one per line as
// file:line:col: analyzer: message, and any finding exits non-zero.
//
// Usage:
//
//	go run ./cmd/mithrilvet ./...
//	go run ./cmd/mithrilvet -list
package main

import (
	"flag"
	"fmt"
	"os"

	"mithril/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mithrilvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: mithrilvet [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "mithrilvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
