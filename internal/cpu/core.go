package cpu

import (
	"fmt"
	"math/bits"

	"mithril/internal/mc"
	"mithril/internal/timing"
)

// CoreConfig parameterizes the simplified OOO core model.
type CoreConfig struct {
	// Width is the issue/retire width in instructions per cycle (4).
	Width int
	// ROB bounds how far fetch may run past the oldest outstanding miss.
	ROB int
	// MSHRs bounds concurrent outstanding misses (memory-level parallelism).
	MSHRs int
	// CyclePs is the core clock period in picoseconds (278 ≈ 3.6 GHz).
	CyclePs timing.PicoSeconds
	// LLCHitCycles is the extra latency a hit adds to the front-end; the
	// OOO window hides most of it, so this is a small residual penalty.
	LLCHitCycles int
}

// DefaultCoreConfig matches Table III (3.6 GHz 4-way OOO).
func DefaultCoreConfig() CoreConfig {
	return CoreConfig{Width: 4, ROB: 256, MSHRs: 16, CyclePs: 278, LLCHitCycles: 2}
}

// Validate reports a descriptive error for unusable configurations.
func (c CoreConfig) Validate() error {
	if c.Width <= 0 || c.ROB <= 0 || c.MSHRs <= 0 || c.CyclePs <= 0 {
		return fmt.Errorf("cpu: config fields must be positive: %+v", c)
	}
	return nil
}

// Op is one decoded operation of the instruction stream.
type Op struct {
	Gap       int    // non-memory instructions preceding the access
	Addr      uint64 // byte address
	Write     bool
	Serialize bool // drain outstanding misses first (dependent load)
	Uncached  bool // bypass the LLC (flushed RowHammer access)
}

// Source yields the core's access stream (implemented by trace generators;
// declared locally to keep the dependency direction cpu → trace optional).
type Source interface {
	Next() Op
}

type outstandingMiss struct {
	reqID    uint64
	instrIdx int64
	req      *mc.Request // recycled into freeReqs on completion
}

// Core is one trace-driven out-of-order core.
type Core struct {
	id      int
	cfg     CoreConfig
	src     Source
	llc     *LLC
	enqueue func(*mc.Request) bool

	fetchTime   timing.PicoSeconds // front-end virtual time
	instrIssued int64
	target      int64
	outstanding []outstandingMiss
	pending     *mc.Request // produced but not yet accepted by the MC
	pendingIdx  int64
	serialized  bool // next access requires an empty miss window
	widthShift  uint // log2(Width) when it is a power of two (widthPow2)
	widthPow2   bool
	hitPenalty  timing.PicoSeconds // LLCHitCycles × CyclePs, precomputed
	nextReqID   uint64
	lastDone    timing.PicoSeconds
	finished    bool
	freeReqs    []*mc.Request // completed requests, reused for new misses (≤ MSHRs+1 live)

	// Stats.
	memAccesses uint64
	llcMisses   uint64
}

// NewCore builds a core that executes target instructions from src,
// submitting misses through enqueue (which reports acceptance).
func NewCore(id int, cfg CoreConfig, src Source, llc *LLC, target int64, enqueue func(*mc.Request) bool) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if target <= 0 {
		panic(fmt.Sprintf("cpu: target instructions must be positive, got %d", target))
	}
	// Request IDs carry the core index in their top 16 bits (consumers
	// recover the owning core as reqID>>48), so the id must fit.
	if id < 0 || id >= 1<<16 {
		panic(fmt.Sprintf("cpu: core id %d outside [0, 65536)", id))
	}
	c := &Core{id: id, cfg: cfg, src: src, llc: llc, enqueue: enqueue, target: target,
		nextReqID:  uint64(id) << 48,
		hitPenalty: timing.PicoSeconds(cfg.LLCHitCycles) * cfg.CyclePs,
	}
	// The per-access cycle count divides by Width; for the usual
	// power-of-two widths a precomputed shift replaces the hardware divide
	// (which costs more than the rest of the fetch bookkeeping combined).
	if w := uint(cfg.Width); w&(w-1) == 0 {
		c.widthPow2 = true
		c.widthShift = uint(bits.TrailingZeros(w))
	}
	return c
}

// ID returns the core id.
func (c *Core) ID() int { return c.id }

// Finished reports whether the core retired its instruction target and
// drained all outstanding misses.
//
//mithril:hotpath
func (c *Core) Finished() bool { return c.finished }

// FinishTime reports when the core finished (meaningful once Finished).
func (c *Core) FinishTime() timing.PicoSeconds {
	t := c.fetchTime
	if c.lastDone > t {
		t = c.lastDone
	}
	return t
}

// InstructionsRetired reports progress toward the target.
func (c *Core) InstructionsRetired() int64 {
	n := c.instrIssued
	if n > c.target {
		n = c.target
	}
	return n
}

// IPC reports instructions per core cycle using the later of front-end time
// and last miss completion — call after Finished for final numbers.
func (c *Core) IPC() float64 {
	t := c.FinishTime()
	if t == 0 {
		return 0
	}
	cycles := float64(t) / float64(c.cfg.CyclePs)
	return float64(c.InstructionsRetired()) / cycles
}

// MemStats reports LLC accesses and misses issued by this core.
func (c *Core) MemStats() (accesses, misses uint64) { return c.memAccesses, c.llcMisses }

// Complete delivers a finished memory request back to the core. The
// request object is recycled for a future miss: once the controller has
// called back with the completion, nothing else references it.
//
//mithril:hotpath
func (c *Core) Complete(reqID uint64, at timing.PicoSeconds) {
	for i := range c.outstanding {
		if c.outstanding[i].reqID == reqID {
			if req := c.outstanding[i].req; req != nil {
				c.freeReqs = append(c.freeReqs, req)
			}
			c.outstanding = append(c.outstanding[:i], c.outstanding[i+1:]...)
			if at > c.lastDone {
				c.lastDone = at
			}
			return
		}
	}
	panic(fmt.Sprintf("cpu: completion for unknown request %d on core %d", reqID, c.id))
}

// NextReady reports the earliest time this core could take another action
// on its own, or a far-future sentinel when it is purely completion-driven
// (MSHRs full, ROB blocked, or serialized behind a miss). The legacy tick
// loop uses it to fast-forward idle stretches.
//
// Deprecated: use NextDeadline, which carries the same information under
// the calendar contract (clamped to now, timing.Never as the sentinel).
//
//mithril:hotpath
func (c *Core) NextReady() timing.PicoSeconds {
	return c.nextReady()
}

// nextReady is the raw (unclamped) deadline shared by the deprecated
// NextReady and the calendar-facing NextDeadline/NextWake.
//
//mithril:hotpath
func (c *Core) nextReady() timing.PicoSeconds {
	if c.finished {
		return timing.Never
	}
	if c.pending != nil {
		return 0 // needs an enqueue retry as soon as possible
	}
	if c.instrIssued >= c.target {
		return timing.Never // draining outstanding misses
	}
	if len(c.outstanding) >= c.cfg.MSHRs {
		return timing.Never
	}
	if c.serialized && len(c.outstanding) > 0 {
		return timing.Never
	}
	if len(c.outstanding) > 0 && c.instrIssued-c.outstanding[0].instrIdx > int64(c.cfg.ROB) {
		return timing.Never
	}
	return c.fetchTime
}

// NextDeadline reports the earliest instant at or after now at which this
// core can act on its own, or timing.Never while it is purely
// completion-driven (MSHRs full, ROB blocked, serialized behind a miss, or
// draining toward its target). The event calendar folds this into its jump
// computation; a core whose deadline is Never is woken by the completion
// delivery that unblocks it.
//
//mithril:hotpath
func (c *Core) NextDeadline(now timing.PicoSeconds) timing.PicoSeconds {
	if t := c.nextReady(); t > now {
		return t
	}
	return now
}

// NextWake reports the earliest instant at or after now at which Advance
// would change core state — the calendar's advance gate. It differs from
// NextDeadline in exactly one case: a core that has issued its full
// instruction target with no outstanding misses still needs one Advance at
// its front-end fetch time to latch Finished, but contributes no deadline
// of its own (the tick loop discovered that transition on whatever
// iteration came next, and the calendar must not add iterations the tick
// loop never ran).
//
//mithril:hotpath
func (c *Core) NextWake(now timing.PicoSeconds) timing.PicoSeconds {
	if !c.finished && c.pending == nil && c.instrIssued >= c.target && len(c.outstanding) == 0 {
		if c.fetchTime > now {
			return c.fetchTime
		}
		return now
	}
	return c.NextDeadline(now)
}

// Advance lets the core make progress up to time now: it consumes trace
// entries, performs LLC lookups, and issues at most a bounded batch of
// memory requests per call.
//
//mithril:hotpath
func (c *Core) Advance(now timing.PicoSeconds) {
	if c.finished {
		return
	}
	// Retry a request the MC previously rejected.
	if c.pending != nil {
		if !c.enqueue(c.pending) {
			return
		}
		c.outstanding = append(c.outstanding, outstandingMiss{reqID: c.pending.ID, instrIdx: c.pendingIdx, req: c.pending})
		c.pending = nil
	}
	for c.fetchTime <= now {
		if c.instrIssued >= c.target {
			if len(c.outstanding) == 0 {
				c.finished = true
			}
			return
		}
		if len(c.outstanding) >= c.cfg.MSHRs {
			return // MLP limit
		}
		if c.serialized && len(c.outstanding) > 0 {
			return // dependent load: drain first
		}
		if len(c.outstanding) > 0 && c.instrIssued-c.outstanding[0].instrIdx > int64(c.cfg.ROB) {
			return // ROB full behind the oldest miss
		}
		op := c.src.Next()
		if op.Gap < 0 {
			op.Gap = 0
		}
		c.serialized = op.Serialize
		c.instrIssued += int64(op.Gap) + 1
		var cycles int
		if c.widthPow2 {
			cycles = (op.Gap + c.cfg.Width) >> c.widthShift
		} else {
			cycles = (op.Gap + c.cfg.Width) / c.cfg.Width
		}
		c.fetchTime += timing.PicoSeconds(cycles) * c.cfg.CyclePs
		c.memAccesses++
		if !op.Uncached && c.llc.Access(op.Addr) {
			c.fetchTime += c.hitPenalty
			continue
		}
		c.llcMisses++
		c.nextReqID++
		var req *mc.Request
		if n := len(c.freeReqs); n > 0 {
			req = c.freeReqs[n-1]
			c.freeReqs = c.freeReqs[:n-1]
		} else {
			req = &mc.Request{} //mithril:allow hotpathalloc pool miss; at most MSHRs+1 requests are ever live per core
		}
		*req = mc.Request{ID: c.nextReqID, CoreID: c.id, Addr: op.Addr, Write: op.Write, Arrive: c.fetchTime}
		if !c.enqueue(req) {
			c.pending = req
			c.pendingIdx = c.instrIssued
			return
		}
		c.outstanding = append(c.outstanding, outstandingMiss{reqID: req.ID, instrIdx: c.instrIssued, req: req})
	}
}
