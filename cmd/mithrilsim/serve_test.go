package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mithril"
	"mithril/internal/testutil"
)

// testSpec is a tiny comparison grid: 2 rows, fast enough for unit tests.
const testSpec = `{
  "name": "serve-test",
  "kind": "comparison",
  "scale": {"preset": "quick", "cores": 2, "instr_per_core": 400},
  "axes": {
    "schemes": ["none", "mithril"],
    "flipths": [6250],
    "workloads": ["mix-high"]
  }
}`

// slowSpec is the same grid repeated over many seeds with a much larger
// instruction budget: long enough that a client disconnect lands mid-sweep.
const slowSpec = `{
  "name": "serve-slow",
  "kind": "comparison",
  "scale": {"preset": "quick", "cores": 2, "instr_per_core": 400000},
  "axes": {
    "schemes": ["none", "mithril"],
    "flipths": [6250],
    "workloads": ["mix-high"],
    "seeds": [1, 2, 3, 4, 5, 6, 7, 8]
  }
}`

func TestServeRunStreamsNDJSON(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	ts := httptest.NewServer(newServeHandler(env{jobs: 2}))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	seenRows := map[float64]bool{}
	var summaries []map[string]any
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if msg, isErr := row["error"]; isErr {
			t.Fatalf("stream reported error: %v", msg)
		}
		if s, isSummary := row["summary"]; isSummary {
			summaries = append(summaries, s.(map[string]any))
			continue
		}
		if len(summaries) > 0 {
			t.Fatalf("data row after the summary record: %v", row)
		}
		for _, key := range []string{"scheme", "flipth", "workload", "perf", "row"} {
			if _, ok := row[key]; !ok {
				t.Fatalf("row missing %q: %v", key, row)
			}
		}
		seenRows[row["row"].(float64)] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// The 2-cell grid must stream exactly rows 0 and 1.
	if len(seenRows) != 2 || !seenRows[0] || !seenRows[1] {
		t.Fatalf("row indices = %v, want {0, 1}", seenRows)
	}
	// One terminal summary record; storeless, so every row simulated.
	if len(summaries) != 1 {
		t.Fatalf("summary records = %d, want 1", len(summaries))
	}
	if s := summaries[0]; s["rows"].(float64) != 2 || s["cached"].(float64) != 0 || s["simulated"].(float64) != 2 {
		t.Fatalf("summary = %v, want 2 rows, 0 cached, 2 simulated", summaries[0])
	}
	// The same split rides the declared HTTP trailers (readable after EOF).
	if c, s := resp.Trailer.Get("X-Mithril-Rows-Cached"), resp.Trailer.Get("X-Mithril-Rows-Simulated"); c != "0" || s != "2" {
		t.Fatalf("trailers cached=%q simulated=%q, want 0 and 2", c, s)
	}
}

// streamRun POSTs spec and returns the data rows (keyed by row index) and
// the terminal summary, failing the test on any stream error.
func streamRun(t *testing.T, url, spec string) (rows map[float64]map[string]any, summary map[string]any, trailer http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	rows = map[float64]map[string]any{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if msg, isErr := row["error"]; isErr {
			t.Fatalf("stream reported error: %v", msg)
		}
		if s, isSummary := row["summary"]; isSummary {
			summary = s.(map[string]any)
			continue
		}
		rows[row["row"].(float64)] = row
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows, summary, resp.Trailer
}

// TestServeWarmStore pins the serve-layer cache contract: with a result
// store attached, a repeated request streams every row from the store —
// summary and trailers report zero simulated — and the rows are
// identical to the cold request's.
func TestServeWarmStore(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	ts := httptest.NewServer(newServeHandler(env{jobs: 2, store: mithril.NewMemResultStore()}))
	defer ts.Close()

	cold, coldSum, _ := streamRun(t, ts.URL, testSpec)
	if coldSum["cached"].(float64) != 0 || coldSum["simulated"].(float64) != 2 {
		t.Fatalf("cold summary = %v, want 0 cached, 2 simulated", coldSum)
	}
	warm, warmSum, warmTrailer := streamRun(t, ts.URL, testSpec)
	if warmSum["cached"].(float64) != 2 || warmSum["simulated"].(float64) != 0 {
		t.Fatalf("warm summary = %v, want 2 cached, 0 simulated", warmSum)
	}
	if c := warmTrailer.Get("X-Mithril-Rows-Cached"); c != "2" {
		t.Fatalf("warm trailer cached = %q, want 2", c)
	}
	if len(warm) != len(cold) {
		t.Fatalf("warm rows = %d, cold rows = %d", len(warm), len(cold))
	}
	for idx, coldRow := range cold {
		warmRow, ok := warm[idx]
		if !ok {
			t.Fatalf("warm stream missing row %v", idx)
		}
		for k, v := range coldRow {
			if warmRow[k] != v {
				t.Errorf("row %v column %q: cold %v, warm %v", idx, k, v, warmRow[k])
			}
		}
	}
}

func TestServeRunRejectsBadRequests(t *testing.T) {
	ts := httptest.NewServer(newServeHandler(env{}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run status = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/run", "application/json", strings.NewReader(`{"name":`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"name":"x","kind":"comparison","scale":{"preset":"quick"},"axes":{"schemes":["bogus"],"workloads":["mix-high"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-scheme spec status = %d, want 400", resp.StatusCode)
	}
	// trace:<path> names a server-local file; accepting it over HTTP
	// would hand clients a filesystem probe, so it must 400 before any
	// file is opened.
	resp, err = http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"name":"x","kind":"comparison","scale":{"preset":"quick"},"axes":{"schemes":["mithril"],"workloads":["trace:/etc/passwd"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace-workload spec status = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(body[:n]), "not accepted over HTTP") {
		t.Fatalf("trace-workload rejection body = %q", body[:n])
	}
}

func TestServeHealthAndSchemes(t *testing.T) {
	ts := httptest.NewServer(newServeHandler(env{}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	var health struct {
		Status string `json:"status"`
		Stamp  string `json:"stamp"`
		Store  bool   `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Stamp != mithril.ResultStoreStamp() || health.Store {
		t.Fatalf("healthz = %+v, want ok + current stamp + store=false", health)
	}
	resp, err = http.Get(ts.URL + "/schemes")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(names) == 0 || names[0] != "blockhammer" {
		t.Fatalf("schemes = %v, want the sorted registry", names)
	}
}

// The /workloads and /attacks endpoints expose the open registries as
// sorted {name, desc} catalogs.
func TestServeWorkloadAndAttackCatalogs(t *testing.T) {
	ts := httptest.NewServer(newServeHandler(env{}))
	defer ts.Close()
	cases := []struct {
		path  string
		first string
	}{
		{"/workloads", "fft"},
		{"/attacks", "blockhammer-adversarial"},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s content type = %q", c.path, ct)
		}
		var catalog []struct {
			Name string `json:"name"`
			Desc string `json:"desc"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&catalog); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(catalog) == 0 || catalog[0].Name != c.first {
			t.Fatalf("%s = %v, want the sorted registry starting at %q", c.path, catalog, c.first)
		}
		for _, entry := range catalog {
			if entry.Desc == "" {
				t.Errorf("%s entry %q has no description", c.path, entry.Name)
			}
		}
	}
}

// TestServeClientDisconnectCancelsSweep pins the service's cancellation
// contract: a client that walks away mid-sweep stops the workers (observed
// as the goroutine count settling back to its pre-request level) instead
// of leaving the grid running to completion against a dead connection.
func TestServeClientDisconnectCancelsSweep(t *testing.T) {
	// The leak check doubles as the unwind assertion: the handler's
	// workers all run module code, so any of them surviving the
	// disconnect fails the deferred diff.
	defer testutil.CheckGoroutines(t)()
	ts := httptest.NewServer(newServeHandler(env{jobs: 2}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run", strings.NewReader(slowSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first streamed row so the sweep is demonstrably mid-flight,
	// then sever the connection.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first row before disconnect: %v", sc.Err())
	}
	cancel()
	resp.Body.Close()
	// The deferred goroutine diff now proves the unwind: workers exit and
	// the handler returns, or the test fails with their stacks.
}
