// Package sweep is the concurrent experiment engine: it fans independent
// sweep cells out over a fixed worker pool with deterministic result
// ordering (parallel output is identical to a serial loop) and provides a
// single-flight cache so shared work — unprotected baseline simulations —
// runs exactly once no matter how many cells need it.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultJobs is the worker count used when a sweep is configured with
// jobs <= 0: one worker per available core.
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// Run executes fn(i) for every i in [0, n) on up to jobs workers and
// returns the results in index order, so a parallel sweep emits byte-
// identical output to the serial path. jobs <= 0 means DefaultJobs();
// jobs == 1 runs the plain serial loop. On failure, the error from the
// lowest-index failing cell that ran is returned (a lower-index cell
// skipped by cancellation may itself have failed), cells that have not
// started are cancelled, and in-flight cells finish (their results are
// discarded).
func Run[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	if jobs <= 0 {
		jobs = DefaultJobs()
	}
	if jobs > n {
		jobs = n
	}
	out := make([]T, n)
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		errIdx   = n
		panicked any
		wg       sync.WaitGroup
	)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panic in fn must stay recoverable by Run's caller, as it
			// is on the serial path: capture it, cancel the sweep, and
			// re-raise on the calling goroutine after Wait.
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
					failed.Store(true)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Cache is a concurrency-safe single-flight memo: concurrent Get calls
// with the same key share one fill, so a baseline keyed by (FlipTH,
// workload) is simulated exactly once per sweep. The zero value is ready
// to use.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Get returns the cached value for k, filling it with fill on first use.
// A fill error is cached too: every waiter for that key observes it.
func (c *Cache[K, V]) Get(k K, fill func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*cacheEntry[V])
	}
	e := c.m[k]
	if e == nil {
		e = &cacheEntry[V]{}
		c.m[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fill() })
	return e.val, e.err
}

// Len reports the number of distinct keys filled or in flight.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
