package streaming

import (
	"testing"
	"testing/quick"
)

func TestWrapLessAcrossWraparound(t *testing.T) {
	cases := []struct {
		a, b Wrap16
		want bool
	}{
		{0, 1, true},
		{1, 0, false},
		{65535, 0, true}, // wraps: 0 is "after" 65535
		{0, 65535, false},
		{65000, 200, true},
		{5, 5, false},
	}
	for _, c := range cases {
		if got := WrapLess(c.a, c.b); got != c.want {
			t.Errorf("WrapLess(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestWrapOrderPreservedWithinSpread(t *testing.T) {
	// Property: for any base and true offsets da < db < 2^15, the wrapped
	// values order correctly — the wrapping-counter guarantee of IV-E.
	f := func(base uint16, daRaw, dbRaw uint16) bool {
		da := daRaw % 16384
		db := da + 1 + dbRaw%(16383-da%16383+1)
		if db >= 32768 {
			db = 32767
		}
		if da >= db {
			return true // skip degenerate
		}
		a := WrapAdd(Wrap16(base), da)
		b := WrapAdd(Wrap16(base), db)
		return WrapLess(a, b) && !WrapLess(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWrapDiff(t *testing.T) {
	if got := WrapDiff(65530, 10); got != 16 {
		t.Errorf("WrapDiff(65530, 10) = %d, want 16", got)
	}
	if got := WrapDiff(5, 5); got != 0 {
		t.Errorf("WrapDiff(5,5) = %d, want 0", got)
	}
}

func TestWrapCounterBits(t *testing.T) {
	cases := []struct {
		spread uint64
		want   int
	}{
		{0, 1},
		{1, 2},
		{2, 3},
		{3, 3},
		{4, 4},
		{1000, 11},  // 2^10 = 1024 > 1000
		{32767, 16}, // 2^15 = 32768 > 32767
		{32768, 17},
	}
	for _, c := range cases {
		if got := WrapCounterBits(c.spread); got != c.want {
			t.Errorf("WrapCounterBits(%d) = %d, want %d", c.spread, got, c.want)
		}
	}
}

func TestWrapCounterBitsProperty(t *testing.T) {
	f := func(spread uint32) bool {
		b := WrapCounterBits(uint64(spread))
		return (uint64(1)<<uint(b-1)) > uint64(spread) &&
			(b == 1 || (uint64(1)<<uint(b-2)) <= uint64(spread))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
