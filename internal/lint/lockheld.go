package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHeld enforces the repo's lock discipline interprocedurally: a
// sync.Mutex/RWMutex critical section must be short, straight-line
// compute — never a point where the goroutine can block with the lock
// held. Using the call graph's may-block fixpoint (see callgraph.go), it
// flags, while any lock is held:
//
//   - channel sends, receives, selects, and ranges over channels;
//   - calls to functions that may block — transitively: a callee that
//     sends, receives, selects, Waits, sleeps, performs I/O, or is a
//     simulator entry point (sim.Run*) poisons every caller;
//   - calls through function values with no resolvable non-blocking
//     target (a hook invoked under a lock cannot be proven not to block);
//
// and it checks release discipline: every acquired lock must be released
// by a deferred unlock or provably unlocked on every path — returning
// (or falling off the end of the function) with a lock held is flagged.
//
// Critical sections that invoke a caller-supplied hook by documented
// contract (for example expspec's serialized Progress hook) carry an
// explained //mithril:allow lockheld.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "no blocking operation reachable while a mutex is held; unlocks deferred or paired on every path",
	Run:  runLockHeld,
}

func runLockHeld(pass *Pass) error {
	w := &lockWalker{pass: pass}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w.queue = append(w.queue, fd.Body)
			}
		}
	}
	// Function literals found during the walk append to the queue: each
	// closure is its own lock scope (it runs on whatever goroutine invokes
	// it, with no locks provably held at entry).
	for len(w.queue) > 0 {
		body := w.queue[0]
		w.queue = w.queue[1:]
		held := heldMap{}
		if terminated := w.block(body.List, held); !terminated {
			w.reportLeftHeld(held)
		}
	}
	return nil
}

// A heldLock records one acquired lock: where, and whether its release is
// already deferred.
type heldLock struct {
	pos      token.Pos
	name     string
	deferred bool
}

// heldMap is the forward dataflow state: lock key -> acquisition record.
type heldMap map[string]heldLock

func (h heldMap) clone() heldMap {
	out := make(heldMap, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// undeferred returns the held locks whose release is not deferred,
// sorted by name for deterministic reports.
func (h heldMap) undeferred() []heldLock {
	var out []heldLock
	for _, l := range h {
		if !l.deferred {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// names renders the held set for diagnostics.
func (h heldMap) names() string {
	keys := make([]string, 0, len(h))
	for _, l := range h {
		keys = append(keys, l.name)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

type lockWalker struct {
	pass  *Pass
	queue []*ast.BlockStmt
}

// block walks a statement list, threading the held-lock state through,
// and reports whether control cannot fall off the end (return/branch on
// every path).
func (w *lockWalker) block(stmts []ast.Stmt, held heldMap) bool {
	for _, s := range stmts {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

// stmt processes one statement against the current held state, returning
// true when the statement terminates the path.
func (w *lockWalker) stmt(s ast.Stmt, held heldMap) bool {
	switch nn := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(nn.X).(*ast.CallExpr); ok {
			if key, op, isMutex := w.mutexOp(call); isMutex {
				w.applyMutexOp(call, key, op, false, held)
				return false
			}
		}
		w.exprHazards(nn.X, held)
	case *ast.DeferStmt:
		if key, op, isMutex := w.mutexOp(nn.Call); isMutex {
			w.applyMutexOp(nn.Call, key, op, true, held)
			return false
		}
		// Other deferred calls run at return time, when deferred unlocks
		// may already have released the lock (LIFO); their hazards are
		// not attributed to the current critical section.
		w.queueFuncLits(nn.Call)
	case *ast.SendStmt:
		if len(held) > 0 {
			w.pass.Reportf(nn.Pos(), "channel send while holding %s", held.names())
		}
		w.exprHazards(nn.Chan, held)
		w.exprHazards(nn.Value, held)
	case *ast.ReturnStmt:
		for _, res := range nn.Results {
			w.exprHazards(res, held)
		}
		for _, l := range held.undeferred() {
			w.pass.Reportf(nn.Pos(), "returns while %s is held (defer the unlock, or unlock on every path)", l.name)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.block(nn.List, held)
	case *ast.IfStmt:
		if nn.Init != nil {
			w.stmt(nn.Init, held)
		}
		w.exprHazards(nn.Cond, held)
		bodyHeld := held.clone()
		bodyTerm := w.block(nn.Body.List, bodyHeld)
		elseHeld := held.clone()
		elseTerm := false
		if nn.Else != nil {
			elseTerm = w.stmt(nn.Else, elseHeld)
		}
		return mergeBranches(held, bodyHeld, bodyTerm, elseHeld, elseTerm)
	case *ast.ForStmt:
		if nn.Init != nil {
			w.stmt(nn.Init, held)
		}
		if nn.Cond != nil {
			w.exprHazards(nn.Cond, held)
		}
		w.block(nn.Body.List, held.clone())
	case *ast.RangeStmt:
		if isChanExpr(w.pass.TypesInfo, nn.X) && len(held) > 0 {
			w.pass.Reportf(nn.Pos(), "ranges over a channel while holding %s", held.names())
		}
		w.exprHazards(nn.X, held)
		w.block(nn.Body.List, held.clone())
	case *ast.SelectStmt:
		if len(held) > 0 {
			w.pass.Reportf(nn.Pos(), "select while holding %s", held.names())
		}
		for _, clause := range nn.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.block(cc.Body, held.clone())
			}
		}
	case *ast.SwitchStmt:
		if nn.Init != nil {
			w.stmt(nn.Init, held)
		}
		if nn.Tag != nil {
			w.exprHazards(nn.Tag, held)
		}
		for _, clause := range nn.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.block(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range nn.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.block(cc.Body, held.clone())
			}
		}
	case *ast.GoStmt:
		// The spawn itself does not block; the goroutine body is its own
		// lock scope (and goleak's concern).
		w.queueFuncLits(nn.Call)
	case *ast.LabeledStmt:
		return w.stmt(nn.Stmt, held)
	default:
		if s != nil {
			w.exprHazards(s, held)
		}
	}
	return false
}

// mergeBranches folds two branch states back into held (in place).
// A terminated branch contributes nothing; a lock surviving only one
// branch survives the merge (over-approximation: held unless provably
// released), and counts as deferred only if deferred wherever held.
func mergeBranches(held, a heldMap, aTerm bool, b heldMap, bTerm bool) bool {
	if aTerm && bTerm {
		return true
	}
	for k := range held {
		delete(held, k)
	}
	if aTerm {
		a = nil
	}
	if bTerm {
		b = nil
	}
	for k, v := range a {
		if other, inB := b[k]; inB {
			v.deferred = v.deferred && other.deferred
		} else if b != nil {
			v.deferred = false
		}
		held[k] = v
	}
	for k, v := range b {
		if _, done := held[k]; !done {
			if a != nil {
				v.deferred = false
			}
			held[k] = v
		}
	}
	return false
}

// exprHazards scans an expression tree (or non-lock statement) for
// operations that block while locks are held. Function literals are
// queued as independent lock scopes rather than scanned inline.
func (w *lockWalker) exprHazards(n ast.Node, held heldMap) {
	ast.Inspect(n, func(child ast.Node) bool {
		switch nn := child.(type) {
		case *ast.FuncLit:
			w.queue = append(w.queue, nn.Body)
			return false
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW && len(held) > 0 {
				w.pass.Reportf(nn.Pos(), "channel receive while holding %s", held.names())
			}
		case *ast.CallExpr:
			w.callHazard(nn, held)
		}
		return true
	})
}

// callHazard classifies one call made while locks are held, using the
// shared call graph: static and interface-resolved callees consult the
// may-block fixpoint; unresolvable function values are conservatively
// flagged.
func (w *lockWalker) callHazard(call *ast.CallExpr, held heldMap) {
	if len(held) == 0 {
		return
	}
	if _, _, isMutex := w.mutexOp(call); isMutex {
		return // nested lock operations are lock-ordering, not blocking
	}
	tg := w.pass.Graph.ResolveCall(w.pass.TypesInfo, call)
	switch tg.Kind {
	case CallUnknown:
		return
	case CallStatic:
		id := tg.IDs[0]
		if reason := w.pass.Graph.BlockReason(id); reason != "" {
			w.pass.Reportf(call.Pos(), "call to %s while holding %s: it %s", id, held.names(), reason)
			return
		}
		if reason := externalBlockReason(tg.Static); reason != "" {
			w.pass.Reportf(call.Pos(), "call to %s.%s while holding %s: it %s", tg.Static.Pkg().Path(), tg.Static.Name(), held.names(), reason)
		}
	case CallIface:
		for _, id := range tg.IDs {
			if reason := w.pass.Graph.BlockReason(id); reason != "" {
				w.pass.Reportf(call.Pos(), "interface call while holding %s may reach %s, which %s", held.names(), id, reason)
				return
			}
		}
	case CallFuncValue:
		// A function value can hold a closure no candidate set covers, so
		// signature matching can only strengthen the message, never prove
		// the call safe: every func-value call under a lock is flagged.
		for _, id := range tg.IDs {
			if reason := w.pass.Graph.BlockReason(id); reason != "" {
				w.pass.Reportf(call.Pos(), "function-value call while holding %s may reach %s, which %s", held.names(), id, reason)
				return
			}
		}
		w.pass.Reportf(call.Pos(), "call through a function value while holding %s (cannot prove it does not block)", held.names())
	}
}

// queueFuncLits queues every function literal under n as an independent
// lock scope.
func (w *lockWalker) queueFuncLits(n ast.Node) {
	ast.Inspect(n, func(child ast.Node) bool {
		if lit, ok := child.(*ast.FuncLit); ok {
			w.queue = append(w.queue, lit.Body)
			return false
		}
		return true
	})
}

// reportLeftHeld flags locks still held (and not deferred) when control
// falls off the end of a function.
func (w *lockWalker) reportLeftHeld(held heldMap) {
	for _, l := range held.undeferred() {
		w.pass.Reportf(l.pos, "%s is locked but not released on every path (defer the unlock)", l.name)
	}
}

// applyMutexOp updates the held state for one Lock/Unlock/RLock/RUnlock
// call. A deferred unlock marks its lock released-at-return; a deferred
// acquire is nonsensical and treated as an acquire.
func (w *lockWalker) applyMutexOp(call *ast.CallExpr, key, op string, deferred bool, held heldMap) {
	switch op {
	case "Lock", "RLock":
		name := key
		if strings.HasSuffix(key, readSuffix) {
			name = strings.TrimSuffix(key, readSuffix) + " (read)"
		}
		held[key] = heldLock{pos: call.Pos(), name: name}
	case "Unlock", "RUnlock":
		if l, ok := held[key]; ok {
			if deferred {
				l.deferred = true
				held[key] = l
			} else {
				delete(held, key)
			}
		}
	}
}

// readSuffix distinguishes an RLock from a write Lock on the same mutex
// in the held-state key space.
const readSuffix = "\x00r"

// mutexOp matches X.Lock/Unlock/RLock/RUnlock() where X is a
// sync.Mutex/RWMutex (directly or promoted through embedding), returning
// the held-state key and operation name.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, okFn := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	sig, okSig := fn.Type().(*types.Signature)
	if !okSig || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, okNamed := t.(*types.Named)
	if !okNamed {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", "", false
	}
	key = types.ExprString(ast.Unparen(sel.X))
	if name == "RLock" || name == "RUnlock" {
		key += readSuffix
	}
	return key, name, true
}
