package mithril

// Golden equivalence tests for the dense per-bank state refactor: the
// PerfPoint tables of the QuickScale Figure 9/10 sweeps and the SafetySweep
// verdicts are pinned byte-for-byte in testdata/. The goldens were generated
// from the map-based implementation the dense layout replaced, so a passing
// run proves the refactor is output-equivalent, not merely plausible.
// Regenerate with `go test -run TestGolden -update` (only when a behaviour
// change is intentional and explained in the commit).

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mithril/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden testdata files")

// goldenScale is QuickScale with the benchmark instruction budget, small
// enough to run in CI on every push yet large enough to exercise refresh
// windows, RFM pacing, and the attack workloads.
func goldenScale() Scale {
	sc := QuickScale()
	sc.InstrPerCore = 10_000
	return sc
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("%s diverges from golden; diff:\n%s", name, stats.DiffLines(string(want), got))
	}
}

// formatPerfPoints renders every field of every point with the full float64
// round-trip precision ('g' verb), so any numeric drift fails the test.
func formatPerfPoints(pts []PerfPoint) string {
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, "%s flipTH=%d rfmTH=%d workload=%s perf=%g energy=%g tableKB=%g safe=%v\n",
			p.Scheme, p.FlipTH, p.RFMTH, p.Workload,
			p.RelativePerformance, p.EnergyOverheadPct, p.TableKB, p.Safe)
	}
	return b.String()
}

func TestGoldenFigure9(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	pts, err := Figure9Data(goldenScale())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, "flipTH=%d rfmTH=%d mithril=%g mithril+=%g tableKB=%g energy=%g energy+=%g\n",
			p.FlipTH, p.RFMTH, p.Mithril, p.MithrilPlus, p.TableKB, p.EnergyMithril, p.EnergyPlus)
	}
	checkGolden(t, "golden_figure9.txt", b.String())
}

func TestGoldenFigure10(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	pts, err := Figure10Data(goldenScale())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_figure10.txt", formatPerfPoints(pts))
}

func TestGoldenSafetySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	results, err := SafetySweep(goldenScale(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "%s attack=%s flipTH=%d flips=%d maxDisturbance=%g safe=%v\n",
			r.Scheme, r.Attack, r.FlipTH, r.Flips, r.MaxDisturbance, r.Safe)
	}
	checkGolden(t, "golden_safety.txt", b.String())
}
