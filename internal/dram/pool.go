package dram

import (
	"sync"

	"mithril/internal/timing"
)

// Constructing a Device is dominated by zeroing the per-bank RowHammer
// checkers (~50 MB for the DDR5 Table III geometry) — far more than a
// short simulation spends simulating. The pool below recycles devices
// between runs: Reset restores just-constructed semantics in O(banks)
// because the checkers invalidate their row state lazily via epoch stamps.
//
// Devices are interchangeable only within one construction configuration,
// so the pool is keyed by (Params, FlipTH, weights). Concurrency-safe:
// parallel sweep workers each acquire an exclusive device.

// maxPooledWeights bounds the disturbance-weight vectors that can be
// inlined into the comparable pool key. Longer vectors (no shipped model
// uses more than 3) skip pooling rather than lose exactness.
const maxPooledWeights = 4

type poolKey struct {
	p      timing.Params
	flipTH int
	nw     int
	w      [maxPooledWeights]float64
}

type devicePool struct{ p sync.Pool }

var devicePools sync.Map // poolKey → *devicePool

// AcquireDevice returns a device for the given configuration that is
// indistinguishable from NewDevice's result, recycling a previously
// released one when available. Release with ReleaseDevice once the
// simulation no longer references the device or anything it owns.
func AcquireDevice(p timing.Params, flipTH int, weights []float64) *Device {
	if len(weights) > maxPooledWeights {
		return NewDevice(p, flipTH, weights)
	}
	key := poolKey{p: p, flipTH: flipTH, nw: len(weights)}
	copy(key.w[:], weights)
	entry, ok := devicePools.Load(key)
	if !ok {
		entry, _ = devicePools.LoadOrStore(key, &devicePool{})
	}
	pool := entry.(*devicePool)
	if d, ok := pool.p.Get().(*Device); ok {
		d.Reset()
		return d
	}
	d := NewDevice(p, flipTH, weights)
	d.pool = pool
	return d
}

// ReleaseDevice returns a device obtained from AcquireDevice to its pool.
// The device may be in any state — mid-run cancellation included — since
// the next acquisition Resets it. Devices built directly with NewDevice
// are ignored, and a released device must not be used again.
func ReleaseDevice(d *Device) {
	if d == nil || d.pool == nil {
		return
	}
	d.pool.p.Put(d)
}
