package core

import (
	"testing"

	"mithril/internal/streaming"
)

func TestWrappedTableMatchesReferenceExactly(t *testing.T) {
	// Both tables use first-min / first-max scan order, so with identical
	// input they must agree on keys and relative counts at every step.
	const capacity = 8
	w := NewWrappedTable(capacity)
	c := streaming.NewCbS(capacity)
	r := streaming.NewRand(17)
	for i := 0; i < 30000; i++ {
		if i%64 == 63 {
			wk, wok := w.SelectMax()
			ck, cok := c.DecrementMaxToMin()
			if wok != cok || (wok && wk != ck) {
				t.Fatalf("step %d: RFM selection diverged (%d,%v) vs (%d,%v)", i, wk, wok, ck, cok)
			}
			continue
		}
		key := uint32(r.Intn(20))
		w.Observe(key)
		c.Observe(key)
		if w.Spread() != c.Spread() {
			t.Fatalf("step %d: spread diverged %d vs %d", i, w.Spread(), c.Spread())
		}
		if rel, ok := w.RelativeCount(key); ok {
			if want := c.Estimate(key) - c.Min(); rel != want {
				t.Fatalf("step %d: relative count of %d = %d, want %d", i, key, rel, want)
			}
		} else if c.Contains(key) {
			t.Fatalf("step %d: key %d on reference but not wrapped table", i, key)
		}
	}
}

func TestWrappedTableSurvivesCounterWraparound(t *testing.T) {
	// Drive the absolute counts far past 2^16 while RFM decrements keep the
	// spread bounded; modular comparison must keep producing the same
	// relative view as the unbounded reference (Section IV-E's claim).
	const capacity = 4
	w := NewWrappedTable(capacity)
	c := streaming.NewCbS(capacity)
	keys := []uint32{1, 2, 3, 4}
	for i := 0; i < 300000; i++ { // counts reach ~75K each, well past 65535
		k := keys[i%len(keys)]
		w.Observe(k)
		c.Observe(k)
		if i%128 == 127 {
			w.SelectMax()
			c.DecrementMaxToMin()
		}
		if i%1000 == 0 {
			if w.Spread() != c.Spread() {
				t.Fatalf("step %d: spread diverged %d vs %d", i, w.Spread(), c.Spread())
			}
		}
	}
	// Verify per-key relative counts after the wrap.
	for _, k := range keys {
		rel, ok := w.RelativeCount(k)
		if !ok {
			t.Fatalf("key %d fell off the wrapped table", k)
		}
		if want := c.Estimate(k) - c.Min(); rel != want {
			t.Fatalf("key %d: relative %d, want %d", k, rel, want)
		}
	}
}

func TestWrappedTableBootState(t *testing.T) {
	w := NewWrappedTable(4)
	if w.Len() != 0 || w.Cap() != 4 {
		t.Fatalf("boot state: Len=%d Cap=%d", w.Len(), w.Cap())
	}
	if _, ok := w.SelectMax(); ok {
		t.Fatal("SelectMax on boot-time garbage should report !ok")
	}
	if w.Spread() != 0 {
		t.Fatal("boot spread should be 0")
	}
	w.Observe(9)
	if !w.Contains(9) || w.Len() != 1 {
		t.Fatal("first observation should create a valid entry")
	}
	if rel, ok := w.RelativeCount(9); !ok || rel != 1 {
		t.Fatalf("RelativeCount(9) = (%d, %v), want (1, true)", rel, ok)
	}
	if _, ok := w.RelativeCount(1234); ok {
		t.Fatal("off-table RelativeCount should report !ok")
	}
}

func TestWrappedTablePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWrappedTable(0) should panic")
		}
	}()
	NewWrappedTable(0)
}

func TestWrappedTableReplacementRule(t *testing.T) {
	w := NewWrappedTable(2)
	for i := 0; i < 5; i++ {
		w.Observe(1)
	}
	w.Observe(2)
	w.Observe(3) // replaces key 2 (the min), inherits min+1 = 2
	if w.Contains(2) {
		t.Fatal("min entry should have been replaced")
	}
	rel, ok := w.RelativeCount(3)
	if !ok {
		t.Fatal("key 3 should be on-table")
	}
	// Table: {1: 5, 3: 2}; min = 2, so relative(3) = 0, spread = 3.
	if rel != 0 || w.Spread() != 3 {
		t.Fatalf("relative(3)=%d spread=%d, want 0 and 3", rel, w.Spread())
	}
}
