package mitigation

import (
	"mithril/internal/mc"
	"mithril/internal/streaming"
	"mithril/internal/timing"
)

// Graphene (Park et al., MICRO 2020): an MC-side CbS table per bank that
// reactively refreshes a row's victims whenever its estimated count crosses
// the next multiple of the predefined threshold T = FlipTH/4 (one halving
// for the double-sided attack, one for the periodic table reset). The table
// resets every half refresh window — the cost Mithril's wrapping counters
// remove.
type Graphene struct {
	opt       Options
	threshold uint64
	nEntry    int
	tables    []*streaming.SpaceSaving // per global bank, built on first ACT
	nextLevel []map[uint32]uint64      // per global bank: row -> next trigger level
	vbuf      []uint32                 // reusable victim buffer (mc.Scheme contract)
	lastReset timing.PicoSeconds
	resets    uint64
	arrCount  uint64
}

var _ mc.Scheme = (*Graphene)(nil)

func init() {
	Register("graphene", func(opt Options) mc.Scheme { return NewGraphene(opt) })
}

// NewGraphene sizes the table per the original work: N = ⌈(S/2)/T⌉ entries
// where S is the per-bank ACT capacity of one tREFW.
func NewGraphene(opt Options) *Graphene {
	opt.normalize()
	t := uint64(opt.FlipTH / 4)
	if t == 0 {
		t = 1
	}
	s := opt.Timing.ACTsPerREFW()
	n := (s/2 + int(t) - 1) / int(t)
	if n < 1 {
		n = 1
	}
	return &Graphene{
		opt:       opt,
		threshold: t,
		nEntry:    n,
		tables:    make([]*streaming.SpaceSaving, opt.banks()),
		nextLevel: make([]map[uint32]uint64, opt.banks()),
	}
}

// Threshold exposes T (tests).
func (s *Graphene) Threshold() uint64 { return s.threshold }

// NEntry exposes the per-bank table size (tests, area model cross-check).
func (s *Graphene) NEntry() int { return s.nEntry }

// Resets exposes how many periodic resets have occurred.
func (s *Graphene) Resets() uint64 { return s.resets }

// Name implements mc.Scheme.
func (s *Graphene) Name() string { return "graphene" }

// RFMCompatible implements mc.Scheme.
func (s *Graphene) RFMCompatible() bool { return false }

// RFMTH implements mc.Scheme.
func (s *Graphene) RFMTH() int { return 0 }

// OnActivate implements mc.Scheme: CbS update plus reactive ARR trigger.
//
//mithril:hotpath
func (s *Graphene) OnActivate(bank int, row uint32, core int, now timing.PicoSeconds) []uint32 {
	// Periodic reset at every tREFW/2.
	if now-s.lastReset >= s.opt.Timing.TREFW/2 {
		for b, t := range s.tables {
			if t != nil {
				t.Reset() //mithril:allow hotpathalloc twice-per-tREFW table reset is Graphene's modeled cost, off the per-ACT path
			}
			s.nextLevel[b] = nil
		}
		s.lastReset = now
		s.resets++
	}
	t := s.tables[bank]
	if t == nil {
		t = streaming.NewSpaceSaving(s.nEntry) //mithril:allow hotpathalloc one-time lazy construction on a bank's first ACT
		s.tables[bank] = t
	}
	levels := s.nextLevel[bank]
	if levels == nil {
		levels = make(map[uint32]uint64, s.nEntry) //mithril:allow hotpathalloc rebuilt only after a reset; bounded by nEntry
		s.nextLevel[bank] = levels
	}
	if evicted, ok := t.ObserveEvict(row); ok {
		// Trigger levels are keyed to table residency: a row the CbS
		// evicts must restart at the base threshold if it re-enters.
		// Letting the old (higher) level survive would let a returning
		// aggressor skip ARR refreshes until the next half-window reset.
		delete(levels, evicted)
	}
	est := t.Estimate(row)
	next, ok := levels[row]
	if !ok {
		next = s.threshold
	}
	if est < next {
		return nil
	}
	levels[row] = next + s.threshold
	s.arrCount++
	s.vbuf = appendVictims(s.vbuf, row, s.opt.BlastRadius)
	return s.vbuf
}

// PreACTDelay implements mc.Scheme.
//
//mithril:hotpath
func (s *Graphene) PreACTDelay(int, uint32, int, timing.PicoSeconds) timing.PicoSeconds { return 0 }

// OnRFM implements mc.Scheme.
//
//mithril:hotpath
func (s *Graphene) OnRFM(int, timing.PicoSeconds) []uint32 { return nil }

// SkipRFM implements mc.Scheme.
//
//mithril:hotpath
func (s *Graphene) SkipRFM(int) bool { return false }

// NextDeadline implements mc.Scheme: Graphene is purely reactive — the CbS tables react to ACTs only.
//
//mithril:hotpath
func (s *Graphene) NextDeadline(timing.PicoSeconds) timing.PicoSeconds { return timing.Never }
