package trace

import "fmt"

// Workload is a named set of per-core generators; Fresh rebuilds identical
// generator state so baseline and protected runs replay the same stream.
// Attackers counts trailing attacker cores: they are excluded from IPC
// aggregation and need not finish for the run to end (a throttled attacker
// is the mitigation working).
type Workload struct {
	Name      string
	Fresh     func() []Generator
	Attackers int
}

// Class tags workloads for reporting (the paper's geo-mean groups).
type Class int

// Workload classes.
const (
	MultiProgrammed Class = iota
	MultiThreaded
)

// coreRegion gives each core a disjoint 256 MB physical region so
// multi-programmed workloads don't share rows.
func coreRegion(core int) uint64 { return uint64(core) << 28 }

// MixHigh is the paper's memory-intensive multi-programmed mix: every core
// runs a high-MPKI kernel (streams, random walks, large sweeps).
func MixHigh(cores int, seed uint64) Workload {
	return Workload{
		Name: "mix-high",
		Fresh: func() []Generator {
			gens := make([]Generator, cores)
			for i := 0; i < cores; i++ {
				base := coreRegion(i)
				switch i % 4 {
				case 0:
					gens[i] = NewStream(fmt.Sprintf("lbm-%d", i), base, 128<<20, 12, 4)
				case 1:
					gens[i] = NewRandom(fmt.Sprintf("mcf-%d", i), base, 192<<20, 10, 0.25, seed+uint64(i))
				case 2:
					gens[i] = NewStrided(fmt.Sprintf("fotonik-%d", i), base, 96<<20, 33, 14)
				default:
					gens[i] = NewGatherScatter(fmt.Sprintf("roms-%d", i), base, 128<<20, 11, seed+uint64(i))
				}
			}
			return gens
		},
	}
}

// MixBlend mixes memory-intensive and compute-bound cores (the paper's
// randomly selected blend).
func MixBlend(cores int, seed uint64) Workload {
	return Workload{
		Name: "mix-blend",
		Fresh: func() []Generator {
			gens := make([]Generator, cores)
			for i := 0; i < cores; i++ {
				base := coreRegion(i)
				switch i % 4 {
				case 0:
					gens[i] = NewStream(fmt.Sprintf("lbm-%d", i), base, 128<<20, 12, 4)
				case 1:
					gens[i] = NewComputeBound(fmt.Sprintf("leela-%d", i), base, seed+uint64(i))
				case 2:
					gens[i] = NewPointerChase(fmt.Sprintf("xz-%d", i), base, 64<<20, 40, seed+uint64(i))
				default:
					gens[i] = NewComputeBound(fmt.Sprintf("povray-%d", i), base, seed+uint64(i))
				}
			}
			return gens
		},
	}
}

// FFT is the SPLASH-2 FFT-like multithreaded kernel: all threads stride a
// shared footprint with butterfly-style strides.
func FFT(threads int, seed uint64) Workload {
	return Workload{
		Name: "fft",
		Fresh: func() []Generator {
			gens := make([]Generator, threads)
			const foot = 512 << 20
			for i := 0; i < threads; i++ {
				// Per-thread partition plus power-of-two stride.
				base := uint64(i) * (foot / uint64(threads))
				gens[i] = NewStrided(fmt.Sprintf("fft-%d", i), base, foot/uint64(threads), 1<<uint(3+i%3), 16)
			}
			return gens
		},
	}
}

// Radix is the SPLASH-2 RADIX-like kernel: streaming reads with scattered
// bucket writes.
func Radix(threads int, seed uint64) Workload {
	return Workload{
		Name: "radix",
		Fresh: func() []Generator {
			gens := make([]Generator, threads)
			const foot = 512 << 20
			for i := 0; i < threads; i++ {
				base := uint64(i) * (foot / uint64(threads))
				gens[i] = NewGatherScatter(fmt.Sprintf("radix-%d", i), base, foot/uint64(threads), 13, seed+uint64(i))
			}
			return gens
		},
	}
}

// PageRank is the GAP PageRank-like kernel: sequential edge sweeps with
// random vertex gathers over a shared graph.
func PageRank(threads int, seed uint64) Workload {
	return Workload{
		Name: "pagerank",
		Fresh: func() []Generator {
			gens := make([]Generator, threads)
			for i := 0; i < threads; i++ {
				// Shared graph: all threads over the same region.
				gens[i] = NewGatherScatter(fmt.Sprintf("pr-%d", i), 0, 768<<20, 14, seed+uint64(i)*7919)
			}
			return gens
		},
	}
}

// NormalWorkloads returns the paper's five normal workloads (two multi-
// programmed, three multi-threaded) with their classes for geo-mean
// aggregation.
func NormalWorkloads(cores int, seed uint64) []struct {
	Workload Workload
	Class    Class
} {
	return []struct {
		Workload Workload
		Class    Class
	}{
		{MixHigh(cores, seed), MultiProgrammed},
		{MixBlend(cores, seed), MultiProgrammed},
		{FFT(cores, seed), MultiThreaded},
		{Radix(cores, seed), MultiThreaded},
		{PageRank(cores, seed), MultiThreaded},
	}
}
