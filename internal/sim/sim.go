// Package sim assembles the full system — cores + LLC + memory controller +
// DRAM device + mitigation scheme — and runs event-driven simulations that
// produce the performance, energy, and safety numbers behind the paper's
// evaluation figures. The core is a next-event calendar (calendar.go): each
// iteration advances only the cores and channels with actionable work,
// then jumps the clock to the earliest of request completion, per-bank
// timing expiry, RFM/REF deadline, and core wake-up. The pre-calendar
// tick loop survives in legacy.go as the reference implementation the
// differential-equivalence tests compare against.
package sim

import (
	"context"
	"fmt"
	"sync/atomic"

	"mithril/internal/cpu"
	"mithril/internal/dram"
	"mithril/internal/energy"
	"mithril/internal/mc"
	"mithril/internal/rh"
	"mithril/internal/timing"
	"mithril/internal/trace"
)

// Config describes one simulation run.
type Config struct {
	Params  timing.Params
	FlipTH  int
	Weights []float64 // disturbance weights (nil = double-sided)

	Scheduler mc.SchedulerKind
	Policy    mc.PagePolicy
	Scheme    mc.Scheme // nil = no protection

	Workload     []trace.Generator // one per core
	InstrPerCore int64
	CoreCfg      cpu.CoreConfig
	LLCBytes     int
	LLCWays      int

	// MaxTime bounds the simulated time (a safety stop for starved runs).
	MaxTime timing.PicoSeconds

	// RequireCores ends the run once the first RequireCores cores reach
	// their instruction target (0 = all). Attack experiments set this to
	// the benign core count: a throttled attacker never finishes — that
	// is the mitigation working, not a reason to run forever.
	RequireCores int
}

func (c *Config) normalize() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.FlipTH <= 0 {
		return fmt.Errorf("sim: FlipTH must be positive, got %d", c.FlipTH)
	}
	if len(c.Workload) == 0 {
		return fmt.Errorf("sim: workload has no cores")
	}
	if c.InstrPerCore <= 0 {
		c.InstrPerCore = 100_000
	}
	if c.CoreCfg == (cpu.CoreConfig{}) {
		c.CoreCfg = cpu.DefaultCoreConfig()
	}
	if c.LLCBytes <= 0 {
		c.LLCBytes = 16 << 20 // Table III: 16 MB
	}
	if c.LLCWays <= 0 {
		c.LLCWays = 16
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 400 * timing.Millisecond
	}
	return nil
}

// Result carries everything a run produced.
type Result struct {
	SchemeName    string
	IPCs          []float64
	AggregateIPC  float64
	SimulatedTime timing.PicoSeconds
	Device        dram.BankStats
	MC            mc.Stats
	Energy        energy.Breakdown
	Safety        rh.Report
	LLCHitRate    float64
	Finished      bool // all cores reached their instruction target
}

// completion is a pending memory response. The owning core index is
// recovered from the request ID's top bits (cpu.NewCore seeds each core's
// ID counter at id<<48 and validates the id fits), which keeps the heap
// element at 16 bytes — one fewer word for every sift during push/pop.
type completion struct {
	at    timing.PicoSeconds
	reqID uint64
}

// completionCore extracts the owning core index from a request ID.
//
//mithril:hotpath
func completionCore(reqID uint64) int { return int(reqID >> 48) }

// completionQueue holds pending memory responses sorted by completion
// time. Completion times arrive in loosely increasing order (each is
// now + latency with a nondecreasing now), so a sorted buffer beats a
// binary heap here: most pushes land at the tail after one comparison,
// out-of-order pushes binary-search and shift only the later entries, and
// pop is a head-index bump. A heap's sift comparisons are data-dependent
// branches that mispredict ~half the time; this layout keeps the hot
// delivery path branch-free. Delivery order among equal times follows
// insertion order; completions commute (each touches only its own core).
type completionQueue struct {
	items []completion
	head  int // items[head:] is the live window, sorted ascending by at
}

//mithril:hotpath
func (q *completionQueue) push(c completion) {
	s := q.items
	if q.head >= 32 && q.head*2 >= len(s) {
		// Reclaim the consumed prefix before it forces slice growth: the
		// live window slides right as completions are delivered.
		n := copy(s, s[q.head:])
		s = s[:n]
		q.head = 0
	}
	if n := len(s); n == q.head || s[n-1].at <= c.at {
		q.items = append(s, c)
		return
	}
	// First live element strictly later than c.at; inserting after equal
	// times keeps equal-time delivery in push order.
	lo, hi := q.head, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].at <= c.at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, completion{})
	copy(s[lo+1:], s[lo:len(s)-1])
	s[lo] = c
	q.items = s
}

// minAt reports the earliest pending completion time, or timing.Never
// when the queue is empty (so callers fold it into a min without an
// emptiness branch).
//
//mithril:hotpath
func (q *completionQueue) minAt() timing.PicoSeconds {
	if q.head == len(q.items) {
		return timing.Never
	}
	return q.items[q.head].at
}

//mithril:hotpath
func (q *completionQueue) pop() completion {
	c := q.items[q.head]
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return c
}

// genSource adapts a trace.Generator to the core's Source interface and
// folds generator addresses into the device address space in the same
// step. The space is always a power of two (AddressSpace is 1 << total
// bits), so the fold is a mask rather than a per-access division.
type genSource struct {
	g    trace.Generator
	mask uint64
}

//mithril:hotpath
func (s genSource) Next() cpu.Op {
	a := s.g.Next()
	return cpu.Op{Gap: a.Gap, Addr: a.Addr & s.mask, Write: a.Write, Serialize: a.Serialize, Uncached: a.Uncached}
}

// Run executes one simulation to completion (or MaxTime) and returns the
// results.
//
// Deprecated: use RunContext, which takes a context for cancellation.
func Run(cfg Config) (Result, error) {
	//mithril:allow ctxflow deprecated ctx-less shim; RunContext is the ctx path
	return RunContext(context.Background(), cfg)
}

// cancelCheckInterval is how many main-loop iterations pass between
// cooperative ctx polls: frequent enough that cancellation lands within
// microseconds of simulated progress, rare enough that the poll is
// invisible on the tick hot path.
const cancelCheckInterval = 1 << 12

// RunContext is Run with cooperative cancellation: the simulation polls
// ctx every few thousand loop iterations and aborts with ctx's error when
// it is done, so a cancelled sweep stops mid-run instead of finishing a
// multi-second grid point it will discard. A context that can never be
// cancelled (context.Background()) adds no per-iteration work.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	scheme := cfg.Scheme
	if scheme == nil {
		scheme = mc.NoProtection{}
	}
	// Device and LLC come from pools: their construction zeroes tens of
	// megabytes of checker/tag state, which would dominate short runs.
	// Nothing a Result carries aliases either object, so they are safe to
	// recycle the moment RunContext returns (Reset on reacquisition erases
	// any state, including that of a cancelled run).
	dev := dram.AcquireDevice(cfg.Params, cfg.FlipTH, cfg.Weights)
	defer dram.ReleaseDevice(dev)
	var pending completionQueue
	ctl := mc.NewController(dev, mc.Config{
		Scheduler: cfg.Scheduler,
		Policy:    cfg.Policy,
		Scheme:    scheme,
	}, func(r *mc.Request, at timing.PicoSeconds) {
		pending.push(completion{at: at, reqID: r.ID})
	})
	llc := cpu.AcquireLLC(cfg.LLCBytes, cfg.LLCWays)
	defer cpu.ReleaseLLC(llc)
	space := ctl.Mapper().AddressSpace()
	cores := make([]*cpu.Core, len(cfg.Workload))
	for i, g := range cfg.Workload {
		cores[i] = cpu.NewCore(i, cfg.CoreCfg, genSource{g, space - 1}, llc, cfg.InstrPerCore, ctl.Enqueue)
	}

	cancellable := ctx.Done() != nil
	if cancellable {
		// Short runs can finish inside one check interval; an already-
		// cancelled context must still abort before simulating anything.
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	var now timing.PicoSeconds
	var allDone bool
	var err error
	if useLegacyTickLoop.Load() {
		now, allDone, err = runLoopTicked(ctx, &cfg, cores, ctl, &pending, cancellable)
	} else {
		now, allDone, err = runLoopCalendar(ctx, &cfg, cores, ctl, &pending, newCalendar(len(cores)), cancellable)
	}
	if err != nil {
		return Result{}, err
	}
	res := collect(cfg, scheme, cores, dev, ctl, llc, now)
	res.Finished = allDone
	return res, nil
}

// useLegacyTickLoop routes RunContext through the deprecated tick loop
// (legacy.go) instead of the event calendar. Test-only: the differential-
// equivalence suite flips it to prove both loops produce byte-identical
// results on every shipped quick spec.
var useLegacyTickLoop atomic.Bool

// SetLegacyTickLoop selects the simulator loop for subsequent runs and
// reports the previous setting (restore it with a deferred call). It
// exists solely for the differential-equivalence tests; production code
// always runs the calendar loop.
func SetLegacyTickLoop(v bool) (prev bool) {
	return useLegacyTickLoop.Swap(v)
}

func collect(cfg Config, scheme mc.Scheme, cores []*cpu.Core, dev *dram.Device, ctl *mc.Controller, llc *cpu.LLC, now timing.PicoSeconds) Result {
	res := Result{
		SchemeName:    scheme.Name(),
		SimulatedTime: now,
		Device:        dev.TotalStats(),
		MC:            ctl.Stats(),
		Safety:        dev.SafetyReport(),
		LLCHitRate:    llc.HitRate(),
	}
	for _, c := range cores {
		ipc := c.IPC()
		res.IPCs = append(res.IPCs, ipc)
		res.AggregateIPC += ipc
	}
	res.Energy = energy.Compute(res.Device, res.MC, energy.DefaultParams())
	return res
}

// Comparison holds a protected run normalized against its baseline.
type Comparison struct {
	Baseline  Result
	Protected Result
	// RelativePerformance is protected aggregate IPC / baseline aggregate
	// IPC × 100 (the paper's "relative performance (%)").
	RelativePerformance float64
	// EnergyOverheadPercent is the relative dynamic energy increase.
	EnergyOverheadPercent float64
}

// RunComparison executes the workload twice — unprotected baseline and with
// the scheme — using identical generator state, and reports normalized
// metrics.
//
// Deprecated: use RunComparisonContext, which takes a context for
// cancellation.
func RunComparison(cfg Config, workload trace.Workload, scheme mc.Scheme) (Comparison, error) {
	//mithril:allow ctxflow deprecated ctx-less shim; RunComparisonContext is the ctx path
	return RunComparisonContext(context.Background(), cfg, workload, scheme)
}

// RunComparisonContext is RunComparison with cooperative cancellation
// threaded through both runs.
func RunComparisonContext(ctx context.Context, cfg Config, workload trace.Workload, scheme mc.Scheme) (Comparison, error) {
	base := cfg
	base.Scheme = nil
	base.Workload = workload.Fresh()
	baseline, err := RunContext(ctx, base)
	if err != nil {
		return Comparison{}, err
	}
	prot := cfg
	prot.Scheme = scheme
	prot.Workload = workload.Fresh()
	protected, err := RunContext(ctx, prot)
	if err != nil {
		return Comparison{}, err
	}
	cmp := Comparison{Baseline: baseline, Protected: protected}
	if baseline.AggregateIPC > 0 {
		cmp.RelativePerformance = 100 * protected.AggregateIPC / baseline.AggregateIPC
	}
	cmp.EnergyOverheadPercent = energy.OverheadPercent(protected.Energy, baseline.Energy)
	return cmp, nil
}
