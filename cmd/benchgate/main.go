// Command benchgate compares a `go test -bench` run against the latest
// recorded point in a benchmark-history file (BENCH_sweep_hotpath.json)
// and fails when any benchmark regressed beyond the tolerance. CI runs it
// after the bench job so a hot-path regression fails the push instead of
// silently accumulating.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime=3x . | tee bench.txt
//	go run ./cmd/benchgate -input bench.txt -history BENCH_sweep_hotpath.json -tolerance 0.30
//
// Benchmarks present in only one of the two inputs are reported and
// skipped; the gate fails if nothing matches at all (a rename or a broken
// bench filter would otherwise pass vacuously).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchPoint is one benchmark's recorded metrics in the history file.
type benchPoint struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// history mirrors the BENCH_*.json layout (only the fields the gate needs).
type history struct {
	Series string `json:"series"`
	Points []struct {
		Date       string                `json:"date"`
		Label      string                `json:"label"`
		Benchmarks map[string]benchPoint `json:"benchmarks"`
	} `json:"points"`
}

// parseBench extracts benchmark-name → ns/op from `go test -bench` output.
// The -N GOMAXPROCS suffix is stripped so names match the history file.
// With `-count` > 1 a benchmark appears once per run; the MINIMUM ns/op is
// kept — the best run is the least scheduler-noise-contaminated estimate
// of the code's cost, so the gate doesn't trip on a single noisy run.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines: name, iteration count, value/unit pairs.
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op on line %q: %v", sc.Text(), err)
				}
				if prev, seen := out[name]; !seen || v < prev {
					out[name] = v
				}
			}
		}
	}
	return out, sc.Err()
}

// benchResult is one matched benchmark's comparison in the verdict.
type benchResult struct {
	Name         string  `json:"name"`
	BaselineNsOp float64 `json:"baseline_ns_op"`
	CurrentNsOp  float64 `json:"current_ns_op"`
	DeltaPercent float64 `json:"delta_percent"`
	Regression   bool    `json:"regression"`
}

// verdict is the gate's full machine-readable outcome (-json emits it).
type verdict struct {
	Series        string        `json:"series"`
	BaselineLabel string        `json:"baseline_label"`
	BaselineDate  string        `json:"baseline_date"`
	Tolerance     float64       `json:"tolerance"`
	Matched       int           `json:"matched"`
	HistoryOnly   []string      `json:"history_only,omitempty"`
	RunOnly       []string      `json:"run_only,omitempty"`
	Failed        []string      `json:"failed,omitempty"`
	OK            bool          `json:"ok"`
	Benchmarks    []benchResult `json:"benchmarks"`
}

// evaluate compares current ns/op against the baseline within tolerance
// (fractional, e.g. 0.30 allows +30%). Every list is sorted by name so the
// gate's output is deterministic regardless of map iteration order.
func evaluate(baseline, current map[string]float64, tolerance float64) verdict {
	v := verdict{Tolerance: tolerance}
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			v.HistoryOnly = append(v.HistoryOnly, name)
			continue
		}
		v.Matched++
		r := benchResult{
			Name:         name,
			BaselineNsOp: base,
			CurrentNsOp:  cur,
			DeltaPercent: 100 * (cur - base) / base,
			Regression:   cur > base*(1+tolerance),
		}
		if r.Regression {
			v.Failed = append(v.Failed, name)
		}
		v.Benchmarks = append(v.Benchmarks, r)
	}
	runOnly := make([]string, 0, len(current))
	for name := range current {
		if _, ok := baseline[name]; !ok {
			runOnly = append(runOnly, name)
		}
	}
	sort.Strings(runOnly)
	v.RunOnly = runOnly
	if len(v.RunOnly) == 0 {
		v.RunOnly = nil
	}
	v.OK = v.Matched > 0 && len(v.Failed) == 0
	return v
}

// gate renders evaluate's comparison as the human-readable report and
// returns the failing benchmarks.
func gate(w io.Writer, baseline, current map[string]float64, tolerance float64) (failed []string, matched int) {
	v := evaluate(baseline, current, tolerance)
	renderText(w, v)
	return v.Failed, v.Matched
}

func renderText(w io.Writer, v verdict) {
	for _, name := range v.HistoryOnly {
		fmt.Fprintf(w, "skip %-32s (in history, not in this run)\n", name)
	}
	for _, r := range v.Benchmarks {
		verdict := "ok"
		if r.Regression {
			verdict = "REGRESSION"
		}
		fmt.Fprintf(w, "%-36s baseline %14.0f ns/op  current %14.0f ns/op  %+7.1f%%  %s\n",
			r.Name, r.BaselineNsOp, r.CurrentNsOp, r.DeltaPercent, verdict)
	}
	for _, name := range v.RunOnly {
		fmt.Fprintf(w, "skip %-32s (in this run, not in history)\n", name)
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body: parses args, loads inputs, applies the gate.
func run(args []string, stdout, stderr io.Writer) int {
	var (
		inputPath   = "-"
		historyPath = "BENCH_sweep_hotpath.json"
		tolerance   = 0.30
		jsonOut     = false
	)
	usage := func() int {
		fmt.Fprintf(stderr, "usage: benchgate [-input bench.txt] [-history BENCH.json] [-tolerance 0.30] [-json]\n")
		return 2
	}
	for i := 0; i < len(args); i++ {
		opt := args[i]
		if opt == "-json" {
			jsonOut = true
			continue
		}
		if i+1 >= len(args) {
			return usage() // every other option takes a value
		}
		i++
		switch opt {
		case "-input":
			inputPath = args[i]
		case "-history":
			historyPath = args[i]
		case "-tolerance":
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v <= 0 {
				fmt.Fprintf(stderr, "benchgate: bad -tolerance %q\n", args[i])
				return 2
			}
			tolerance = v
		default:
			return usage()
		}
	}
	var in io.Reader = os.Stdin
	if inputPath != "-" {
		f, err := os.Open(inputPath)
		if err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	if len(current) == 0 {
		fmt.Fprintf(stderr, "benchgate: no benchmark lines in %s — did the bench run produce output (check the -bench filter)?\n", inputPath)
		return 2
	}
	data, err := os.ReadFile(historyPath)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(stderr, "benchgate: history file %s does not exist — the gate has no baseline to compare against (record a point per the regeneration command in the json, or pass -history)\n", historyPath)
			return 2
		}
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	var h history
	if err := json.Unmarshal(data, &h); err != nil {
		fmt.Fprintf(stderr, "benchgate: %s: %v\n", historyPath, err)
		return 2
	}
	if len(h.Points) == 0 {
		fmt.Fprintf(stderr, "benchgate: %s has no recorded points — the gate has no baseline to compare against\n", historyPath)
		return 2
	}
	latest := h.Points[len(h.Points)-1]
	if len(latest.Benchmarks) == 0 {
		fmt.Fprintf(stderr, "benchgate: latest point %q in %s records no benchmarks — the gate has no baseline to compare against\n", latest.Label, historyPath)
		return 2
	}
	baseline := map[string]float64{}
	for name, p := range latest.Benchmarks { //mithril:allow detrange building a map: order-independent
		baseline[name] = p.NsOp
	}
	v := evaluate(baseline, current, tolerance)
	v.Series, v.BaselineLabel, v.BaselineDate = h.Series, latest.Label, latest.Date
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
	} else {
		fmt.Fprintf(stdout, "benchgate: against %s point %q (%s), tolerance +%.0f%%\n",
			v.Series, v.BaselineLabel, v.BaselineDate, tolerance*100)
		renderText(stdout, v)
	}
	if v.Matched == 0 {
		fmt.Fprintf(stderr, "benchgate: no benchmarks matched the history file\n")
		return 2
	}
	if len(v.Failed) > 0 {
		fmt.Fprintf(stderr, "benchgate: regression in %v\n", v.Failed)
		return 1
	}
	if !jsonOut {
		fmt.Fprintf(stdout, "benchgate: %d benchmark(s) within tolerance\n", v.Matched)
	}
	return 0
}
