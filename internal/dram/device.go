package dram

import (
	"fmt"

	"mithril/internal/rh"
	"mithril/internal/timing"
)

// Device models a full DRAM subsystem: Channels × Ranks × Banks banks, each
// with timing state and a RowHammer checker, plus per-rank auto-refresh
// sweep bookkeeping. Banks are addressed by a global index
// ((channel·Ranks + rank)·Banks + bank).
type Device struct {
	p       timing.Params
	flipTH  int
	weights []float64

	banks    []*Bank
	checkers []*rh.Checker
	ranks    []*rankTracker
	refGroup []int // per rank: next refresh group to sweep

	pool *devicePool // set when the device came from AcquireDevice
}

// NewDevice builds the device for the given parameters and fault model.
// weights nil selects the double-sided disturbance model.
func NewDevice(p timing.Params, flipTH int, weights []float64) *Device {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	nBanks := p.TotalBanks()
	nRanks := p.Channels * p.Ranks
	d := &Device{
		p:        p,
		flipTH:   flipTH,
		weights:  weights,
		banks:    make([]*Bank, nBanks),
		checkers: make([]*rh.Checker, nBanks),
		ranks:    make([]*rankTracker, nRanks),
		refGroup: make([]int, nRanks),
	}
	for i := range d.banks {
		d.banks[i] = NewBank(p)
		d.checkers[i] = rh.NewChecker(p.Rows, flipTH, weights)
	}
	for i := range d.ranks {
		d.ranks[i] = &rankTracker{p: p}
	}
	return d
}

// Reset returns the device to its just-constructed state: bank timing
// state machines, rank trackers, and refresh sweep positions are zeroed,
// and every checker starts a new epoch (per-row disturbance is invalidated
// lazily, so the cost is O(banks), not O(banks × rows)). Used by the
// device pool between simulations; callers of AcquireDevice receive an
// already-Reset device.
func (d *Device) Reset() {
	for _, b := range d.banks {
		b.Reset()
	}
	for _, ck := range d.checkers {
		ck.Reset()
	}
	for _, r := range d.ranks {
		r.reset()
	}
	for i := range d.refGroup {
		d.refGroup[i] = 0
	}
}

// NextDeadline reports the earliest instant at or after now at which any
// bank leaves a maintenance window, or timing.Never when no bank is in
// maintenance. Bank availability changes only through maintenance issued
// by the controller, which tracks those deadlines incrementally — this
// device-level scan is the contract's reference implementation for
// diagnostics and tests, not a hot-loop dependency.
func (d *Device) NextDeadline(now timing.PicoSeconds) timing.PicoSeconds {
	next := timing.Never
	for _, b := range d.banks {
		if bu := b.BusyUntil(); bu > now && bu < next {
			next = bu
		}
	}
	return next
}

// Params returns the device timing parameters.
func (d *Device) Params() timing.Params { return d.p }

// NumBanks reports the number of banks across the device.
//
//mithril:hotpath
func (d *Device) NumBanks() int { return len(d.banks) }

// Bank returns the bank at the given global index.
//
//mithril:hotpath
func (d *Device) Bank(global int) *Bank { return d.banks[global] }

// Checker exposes a bank's RowHammer checker.
func (d *Device) Checker(global int) *rh.Checker { return d.checkers[global] }

// rankOf maps a global bank index to its rank tracker index.
//
//mithril:hotpath
func (d *Device) rankOf(global int) int { return global / d.p.Banks }

// Access serves one column access on a bank, enforcing bank and rank timing
// and feeding the fault model when an ACT is issued. It reports whether an
// ACT was issued (a row activation — the RowHammer- and RAA-relevant event)
// and the data completion time.
//
//mithril:hotpath
func (d *Device) Access(global, row int, write bool, now timing.PicoSeconds) (activated bool, dataReadyAt timing.PicoSeconds) {
	if global < 0 || global >= len(d.banks) {
		panic(fmt.Sprintf("dram: bank %d out of range (%d banks)", global, len(d.banks)))
	}
	rank := d.ranks[d.rankOf(global)]
	activated, actAt, dataAt := d.banks[global].Access(now, row, write, rank.ACTReadyAt())
	if activated {
		rank.RecordACT(actAt)
		d.checkers[global].OnActivate(row, actAt)
	}
	return activated, dataAt
}

// ActivateOnly issues a bare ACT+PRE on a bank (used by attack replay and
// by ARR victim refreshes modelled as row activations). It returns the
// completion time of the row cycle.
//
//mithril:hotpath
func (d *Device) ActivateOnly(global, row int, now timing.PicoSeconds) timing.PicoSeconds {
	rank := d.ranks[d.rankOf(global)]
	b := d.banks[global]
	activated, actAt, _ := b.Access(now, row, false, rank.ACTReadyAt())
	if activated {
		rank.RecordACT(actAt)
		d.checkers[global].OnActivate(row, actAt)
	}
	b.Precharge(actAt)
	return actAt + d.p.TRC
}

// RowsPerRefreshGroup is the number of rows swept by one REF command.
//
//mithril:hotpath
func (d *Device) RowsPerRefreshGroup() int {
	n := d.p.Rows / d.p.RefreshGroups
	if n < 1 {
		n = 1
	}
	return n
}

// IssueREF executes one auto-refresh on every bank of the rank: the banks
// are occupied for tRFC and the next refresh group's rows are restored
// (resetting their RowHammer disturbance).
//
//mithril:hotpath
func (d *Device) IssueREF(rankIdx int, now timing.PicoSeconds) timing.PicoSeconds {
	if rankIdx < 0 || rankIdx >= len(d.ranks) {
		panic(fmt.Sprintf("dram: rank %d out of range", rankIdx))
	}
	group := d.refGroup[rankIdx]
	d.refGroup[rankIdx] = (group + 1) % d.p.RefreshGroups
	rows := d.RowsPerRefreshGroup()
	first := group * rows
	var end timing.PicoSeconds
	for b := rankIdx * d.p.Banks; b < (rankIdx+1)*d.p.Banks; b++ {
		e := d.banks[b].StartMaintenance(now, d.p.TRFC, MaintREF)
		if e > end {
			end = e
		}
		for r := first; r < first+rows && r < d.p.Rows; r++ {
			d.checkers[b].OnRefresh(r)
		}
	}
	return end
}

// IssueRFM opens an RFM maintenance window of tRFM on one bank and returns
// its end time. Victim refreshes performed inside the window are applied
// with PreventiveRefresh.
//
//mithril:hotpath
func (d *Device) IssueRFM(global int, now timing.PicoSeconds) timing.PicoSeconds {
	return d.banks[global].StartMaintenance(now, d.p.TRFM, MaintRFM)
}

// IssueARR opens an ARR-style maintenance window long enough to refresh n
// victim rows (tRC per row) on one bank — the remedy of the non-RFM
// schemes (Graphene, TWiCe, CBT, PARA).
//
//mithril:hotpath
func (d *Device) IssueARR(global, nRows int, now timing.PicoSeconds) timing.PicoSeconds {
	if nRows < 1 {
		nRows = 1
	}
	return d.banks[global].StartMaintenance(now, timing.PicoSeconds(nRows)*d.p.TRC, MaintARR)
}

// PreventiveRefresh restores the given victim rows on a bank (inside a
// maintenance window that the caller already opened), resetting their
// disturbance. Out-of-range rows (blast radius past the bank edge) are
// ignored, matching Checker semantics.
//
//mithril:hotpath
func (d *Device) PreventiveRefresh(global int, rows []uint32) {
	ck := d.checkers[global]
	n := 0
	for _, r := range rows {
		if int(r) < d.p.Rows {
			ck.OnRefresh(int(r))
			n++
		}
	}
	d.banks[global].NotePreventiveRows(n)
}

// TotalStats aggregates bank statistics across the device.
func (d *Device) TotalStats() BankStats {
	var t BankStats
	for _, b := range d.banks {
		s := b.Stats()
		t.ACTs += s.ACTs
		t.Reads += s.Reads
		t.Writes += s.Writes
		t.RowHits += s.RowHits
		t.RowMisses += s.RowMisses
		t.RowConflicts += s.RowConflicts
		t.AutoRefreshes += s.AutoRefreshes
		t.RFMs += s.RFMs
		t.PreventiveRows += s.PreventiveRows
		t.MaintenanceTime += s.MaintenanceTime
	}
	return t
}

// SafetyReport aggregates the fault checkers: total flips and the worst
// disturbance margin across banks.
func (d *Device) SafetyReport() rh.Report {
	worst := rh.Report{FlipTH: d.flipTH, MarginPercent: 100}
	for _, ck := range d.checkers {
		r := ck.Report()
		worst.Flips += r.Flips
		worst.ACTs += r.ACTs
		worst.Refreshes += r.Refreshes
		if r.MaxDisturbance > worst.MaxDisturbance {
			worst.MaxDisturbance = r.MaxDisturbance
			worst.MarginPercent = r.MarginPercent
		}
	}
	return worst
}
