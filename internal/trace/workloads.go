package trace

// Workload is a named set of per-core generators; Fresh rebuilds identical
// generator state so baseline and protected runs replay the same stream.
// Attackers counts trailing attacker cores: they are excluded from IPC
// aggregation and need not finish for the run to end (a throttled attacker
// is the mitigation working).
type Workload struct {
	Name      string
	Fresh     func() []Generator
	Attackers int
}

// Class tags workloads for reporting (the paper's geo-mean groups).
type Class int

// Workload classes.
const (
	MultiProgrammed Class = iota
	MultiThreaded
)

// coreRegion gives each core a disjoint 256 MB physical region so
// multi-programmed workloads don't share rows.
func coreRegion(core int) uint64 { return uint64(core) << 28 }

// NormalWorkloads returns the paper's five normal workloads (two multi-
// programmed, three multi-threaded) with their classes for geo-mean
// aggregation. Each workload also registers itself (from its own file)
// in the open workload registry, so the same five are buildable by name
// through BuildWorkload.
func NormalWorkloads(cores int, seed uint64) []struct {
	Workload Workload
	Class    Class
} {
	return []struct {
		Workload Workload
		Class    Class
	}{
		{MixHigh(cores, seed), MultiProgrammed},
		{MixBlend(cores, seed), MultiProgrammed},
		{FFT(cores, seed), MultiThreaded},
		{Radix(cores, seed), MultiThreaded},
		{PageRank(cores, seed), MultiThreaded},
	}
}
