// Config explorer: walk the Figure 6 trade-off between table size (Nentry)
// and RFM frequency (RFMTH) for a set of RowHammer thresholds, including
// the Lossy-Counting comparison and the adaptive-refresh (Theorem 2) cost.
// This is the tool a DRAM vendor would use to pick an operating point.
package main

import (
	"fmt"

	"mithril"
)

func main() {
	p := mithril.DDR5()

	fmt.Println("Feasible Mithril operating points (Theorem 1, double-sided):")
	fmt.Printf("%8s %8s %10s %10s %14s\n", "FlipTH", "RFMTH", "Nentry", "table KB", "bound M")
	for _, flipTH := range []int{50000, 12500, 6250, 3125, 1500} {
		for _, rfmTH := range []int{256, 128, 64, 32} {
			cfg, ok := mithril.Configure(p, flipTH, rfmTH, 0)
			if !ok {
				fmt.Printf("%8d %8d %10s %10s %14s\n", flipTH, rfmTH, "-", "-", "infeasible")
				continue
			}
			fmt.Printf("%8d %8d %10d %10.2f %14.0f\n",
				flipTH, rfmTH, cfg.NEntry, cfg.TableKB, cfg.M)
		}
	}

	fmt.Println("\nAdaptive refresh cost (Theorem 2): extra entries to keep the same")
	fmt.Println("guarantee at FlipTH=3125, RFMTH=16 as AdTH grows:")
	base, _ := mithril.Configure(p, 3125, 16, 0)
	for _, adTH := range []int{0, 50, 100, 150, 200} {
		cfg, ok := mithril.Configure(p, 3125, 16, adTH)
		if !ok {
			continue
		}
		fmt.Printf("  AdTH %3d: Nentry %4d (%+5.1f%%), M' = %.0f\n",
			adTH, cfg.NEntry, 100*float64(cfg.NEntry-base.NEntry)/float64(base.NEntry), cfg.M)
	}

	fmt.Println("\nWhy the RFM interface needs greedy selection (Figure 2):")
	fmt.Println("safe FlipTH when a reactive ARR scheme is retrofitted onto RFM:")
	for _, pt := range mithril.Figure2Data() {
		fmt.Printf("  threshold %5d: ARR-native %6.1fK  RFM-64 retrofit %6.1fK\n",
			pt.Threshold, pt.ARR/1000, pt.RFM[64]/1000)
	}
}
