package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAlloc checks that functions annotated //mithril:hotpath — the
// simulator's steady-state paths, whose allocation-free property PR 2
// established by benchmark — contain no allocation-introducing constructs:
//
//   - map, slice, or channel make calls and map/slice composite literals
//   - new(T) and &T{...} (escaping heap values)
//   - closures, except function literals passed directly as a call
//     argument or invoked immediately (which do not escape through a
//     callee that does not retain them)
//   - go statements
//   - string concatenation and allocating string conversions
//   - boxing a non-pointer concrete value into an interface
//   - append to a zero-value local slice (un-preallocated growth); append
//     to fields, pooled buffers, and preallocated slices is fine
//   - calls to functions that are neither annotated //mithril:hotpath nor
//     whitelisted (math, math/bits, builtins); dynamic calls through
//     interfaces and function values are exempt, as are the arguments of
//     panic (cold failure paths)
//
// Deliberate exceptions — lazy one-time initialisation inside a steady
// method, pool refills — are suppressed per line with
// "//mithril:allow hotpathalloc <reason>".
var HotpathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "disallow allocation-introducing constructs in //mithril:hotpath functions",
	Run:  runHotpathAlloc,
}

// hotpathAllowedPkgs may be called from hot paths without annotation:
// pure-computation stdlib packages that never allocate.
var hotpathAllowedPkgs = map[string]bool{
	"math":      true,
	"math/bits": true,
}

func runHotpathAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !HotpathDecl(fd) {
				continue
			}
			w := &hotpathWalker{pass: pass, results: fd.Type.Results}
			w.locals = collectLocalAppendTargets(pass, fd.Body)
			w.walk(fd.Body)
		}
	}
	return nil
}

// hotpathWalker traverses one hot function body with enough parent context
// to exempt panic arguments and direct-call-argument closures.
type hotpathWalker struct {
	pass    *Pass
	results *ast.FieldList
	locals  map[*types.Var]*appendTarget
}

// appendTarget tracks a local slice variable: declared as a zero value and
// whether anything other than an append result was ever assigned to it.
type appendTarget struct {
	zeroDecl   bool
	nonAppend  bool
	reportedAt token.Pos
}

func (w *hotpathWalker) walk(n ast.Node) {
	if n == nil {
		return
	}
	switch node := n.(type) {
	case *ast.GoStmt:
		w.pass.Reportf(node.Pos(), "go statement in hot path (spawns a goroutine)")
		return
	case *ast.FuncLit:
		w.pass.Reportf(node.Pos(), "closure in hot path escapes (allowed only as a direct call argument)")
		// Still check the body: it runs on the hot path either way.
		w.walkFuncLitBody(node)
		return
	case *ast.CompositeLit:
		w.checkCompositeLit(node)
	case *ast.UnaryExpr:
		if node.Op == token.AND {
			if _, isLit := ast.Unparen(node.X).(*ast.CompositeLit); isLit {
				w.pass.Reportf(node.Pos(), "address of composite literal allocates")
			}
		}
	case *ast.BinaryExpr:
		w.checkStringConcat(node)
	case *ast.CallExpr:
		if w.checkCall(node) {
			return // subtree handled (panic args exempt, closures allowed)
		}
	case *ast.AssignStmt:
		w.checkAssignBoxing(node)
	case *ast.ReturnStmt:
		w.checkReturnBoxing(node)
	}
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil || child == n {
			return child == n
		}
		w.walk(child)
		return false
	})
}

// checkCall analyzes one call and reports whether it took over the walk of
// its subtree.
func (w *hotpathWalker) checkCall(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)

	// Immediately-invoked closure: allowed, check body and args only.
	if lit, ok := fun.(*ast.FuncLit); ok {
		w.walkFuncLitBody(lit)
		w.walkArgs(call, nil)
		return true
	}

	// Conversion T(x): allocating string/byte conversions are flagged;
	// boxing conversions (any(x)) are interface boxing.
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		w.checkConversion(call, tv.Type)
		return false
	}

	if id, ok := fun.(*ast.Ident); ok {
		if b, isBuiltin := w.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make":
				w.pass.Reportf(call.Pos(), "make allocates in hot path")
			case "new":
				w.pass.Reportf(call.Pos(), "new allocates in hot path")
			case "append":
				w.checkAppend(call)
			case "panic":
				// Cold failure path: the arguments (typically
				// fmt.Sprintf) never run in steady state.
				return true
			}
			return false
		}
	}

	// Resolution goes through the shared call graph so every suite uses
	// one engine: only exactly resolved callees are checked here —
	// interface and function-value dispatch (CallIface/CallFuncValue) is
	// checked at the concrete implementations instead.
	tg := w.pass.Graph.ResolveCall(w.pass.TypesInfo, call)
	if tg.Kind == CallStatic {
		id := tg.IDs[0]
		switch {
		case w.pass.Index.Hotpath[id]:
		case tg.Static.Pkg() != nil && hotpathAllowedPkgs[tg.Static.Pkg().Path()]:
		default:
			w.pass.Reportf(call.Pos(), "call to non-hotpath function %s (annotate it //mithril:hotpath or whitelist the line)", id)
		}
	}
	w.walkArgs(call, nil)
	w.checkCallArgBoxing(call)
	w.walk(call.Fun)
	return true
}

// walkArgs walks call arguments, treating function literals passed
// directly as arguments as non-escaping (their bodies are still checked).
func (w *hotpathWalker) walkArgs(call *ast.CallExpr, _ []ast.Expr) {
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			w.walkFuncLitBody(lit)
			continue
		}
		w.walk(arg)
	}
}

// walkFuncLitBody checks a closure body with return-boxing resolved
// against the closure's own result list.
func (w *hotpathWalker) walkFuncLitBody(lit *ast.FuncLit) {
	saved := w.results
	w.results = lit.Type.Results
	w.walk(lit.Body)
	w.results = saved
}

func (w *hotpathWalker) checkCompositeLit(lit *ast.CompositeLit) {
	tv, ok := w.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		w.pass.Reportf(lit.Pos(), "map literal allocates in hot path")
	case *types.Slice:
		w.pass.Reportf(lit.Pos(), "slice literal allocates in hot path")
	}
}

func (w *hotpathWalker) checkStringConcat(bin *ast.BinaryExpr) {
	if bin.Op != token.ADD {
		return
	}
	tv, ok := w.pass.TypesInfo.Types[bin]
	if !ok || tv.Value != nil {
		return // not typed, or constant-folded at compile time
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
		w.pass.Reportf(bin.Pos(), "string concatenation allocates in hot path")
	}
}

func (w *hotpathWalker) checkConversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	argTV, ok := w.pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	under := target.Underlying()
	if basic, isBasic := under.(*types.Basic); isBasic && basic.Info()&types.IsString != 0 {
		if ab, isArgBasic := argTV.Type.Underlying().(*types.Basic); !isArgBasic || ab.Info()&types.IsString == 0 {
			w.pass.Reportf(call.Pos(), "conversion to string allocates in hot path")
		}
		return
	}
	if _, isSlice := under.(*types.Slice); isSlice {
		if ab, isArgBasic := argTV.Type.Underlying().(*types.Basic); isArgBasic && ab.Info()&types.IsString != 0 {
			w.pass.Reportf(call.Pos(), "string-to-slice conversion allocates in hot path")
		}
		return
	}
	if types.IsInterface(under) {
		w.reportBoxing(call.Pos(), argTV.Type, target)
	}
}

// checkAppend flags append whose destination is a local slice that started
// as its zero value and was never filled from a pool or preallocation —
// the "un-preallocated growth" pattern that allocates on first use.
func (w *hotpathWalker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := w.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return
	}
	t, tracked := w.locals[v]
	if !tracked || !t.zeroDecl || t.nonAppend || t.reportedAt == call.Pos() {
		return
	}
	t.reportedAt = call.Pos()
	w.pass.Reportf(call.Pos(), "append to zero-value local slice %s allocates (preallocate or reuse a pooled buffer)", id.Name)
}

func (w *hotpathWalker) checkCallArgBoxing(call *ast.CallExpr) {
	sig := callSignature(w.pass.TypesInfo, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if len(call.Args) == params.Len() && call.Ellipsis != token.NoPos {
				paramType = params.At(params.Len() - 1).Type() // s... passes the slice through
			} else {
				slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
				if !ok {
					continue
				}
				paramType = slice.Elem()
			}
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if argTV, ok := w.pass.TypesInfo.Types[arg]; ok {
			w.reportBoxing(arg.Pos(), argTV.Type, paramType)
		}
	}
}

func (w *hotpathWalker) checkAssignBoxing(assign *ast.AssignStmt) {
	if assign.Tok != token.ASSIGN || len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		lhsTV, okL := w.pass.TypesInfo.Types[lhs]
		rhsTV, okR := w.pass.TypesInfo.Types[assign.Rhs[i]]
		if okL && okR {
			w.reportBoxing(assign.Rhs[i].Pos(), rhsTV.Type, lhsTV.Type)
		}
	}
}

func (w *hotpathWalker) checkReturnBoxing(ret *ast.ReturnStmt) {
	if w.results == nil || len(ret.Results) != w.results.NumFields() {
		return
	}
	i := 0
	for _, field := range w.results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		fieldTV, ok := w.pass.TypesInfo.Types[field.Type]
		for j := 0; j < n && i < len(ret.Results); j, i = j+1, i+1 {
			if !ok {
				continue
			}
			if resTV, okR := w.pass.TypesInfo.Types[ret.Results[i]]; okR {
				w.reportBoxing(ret.Results[i].Pos(), resTV.Type, fieldTV.Type)
			}
		}
	}
}

// reportBoxing flags storing a non-pointer concrete value into an
// interface: the conversion heap-allocates the value. Pointers, interface
// values, and untyped nil box for free (or are already boxed).
func (w *hotpathWalker) reportBoxing(pos token.Pos, from, to types.Type) {
	if from == nil || to == nil || !types.IsInterface(to.Underlying()) {
		return
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Map, *types.Chan:
		return
	case *types.Basic:
		if from.Underlying().(*types.Basic).Kind() == types.UntypedNil {
			return
		}
	}
	w.pass.Reportf(pos, "interface boxing of %s allocates in hot path", types.TypeString(from, nil))
}

// collectLocalAppendTargets scans a function body for local slice
// variables: which were declared as zero values, and which were ever
// assigned from something other than an append result (a pool refill, a
// field, a slice expression — i.e. reuse rather than growth).
func collectLocalAppendTargets(pass *Pass, body *ast.BlockStmt) map[*types.Var]*appendTarget {
	locals := map[*types.Var]*appendTarget{}
	track := func(id *ast.Ident, zeroDecl bool) {
		v, ok := pass.TypesInfo.Defs[id].(*types.Var)
		if !ok {
			return
		}
		if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		locals[v] = &appendTarget{zeroDecl: zeroDecl}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.GenDecl:
			if node.Tok != token.VAR {
				return true
			}
			for _, spec := range node.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					track(name, len(vs.Values) <= i)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if node.Tok == token.DEFINE {
					track(id, false)
					continue
				}
				v, ok := pass.TypesInfo.Uses[id].(*types.Var)
				if !ok {
					continue
				}
				t, tracked := locals[v]
				if !tracked {
					continue
				}
				if len(node.Lhs) != len(node.Rhs) || !isAppendCall(pass, node.Rhs[i]) {
					t.nonAppend = true
				}
			}
		case *ast.RangeStmt:
			for _, expr := range []ast.Expr{node.Key, node.Value} {
				if id, ok := expr.(*ast.Ident); ok && node.Tok == token.ASSIGN {
					if v, isVar := pass.TypesInfo.Uses[id].(*types.Var); isVar {
						if t, tracked := locals[v]; tracked {
							t.nonAppend = true
						}
					}
				}
			}
		}
		return true
	})
	return locals
}

func isAppendCall(pass *Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// staticCallee resolves a call's target to a declared function or method,
// or nil for dynamic calls (function values, closures bound to variables).
// Interface methods resolve to a *types.Func whose TypesFuncID is "".
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil // field of function type: dynamic
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn // package-qualified pkg.F
		}
	}
	return nil
}

// callSignature resolves the signature a call is checked against, for
// boxing analysis of its arguments (conversions return nil).
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
