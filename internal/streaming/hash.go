package streaming

// splitmix64 is the SplitMix64 finalizer, used as the base mixing function
// for all sketch hashing in this package. It is deterministic, stdlib-free,
// and passes avalanche tests, which keeps sketches reproducible across runs.
//
//mithril:hotpath
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashKey mixes a 32-bit key with a seed into a 64-bit hash.
//
//mithril:hotpath
func hashKey(key uint32, seed uint64) uint64 {
	return splitmix64(uint64(key) ^ splitmix64(seed))
}

// Rand is a tiny deterministic pseudo-random source (xorshift64*) used by the
// probabilistic mitigations (PARA, PARFM). It is seeded explicitly so that
// every experiment is reproducible.
type Rand struct{ state uint64 }

// NewRand returns a deterministic generator. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x853c49e6748fea9b
	}
	return &Rand{state: seed}
}

// Uint64 returns the next pseudo-random value.
//
//mithril:hotpath
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
//
//mithril:hotpath
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
//
//mithril:hotpath
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("streaming: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}
