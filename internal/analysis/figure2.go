package analysis

import "mithril/internal/timing"

// Figure 2 model: why reactive ARR-style thresholds are incompatible with
// the RFM interface (Section III-A).
//
// ARR-Graphene triggers an immediate adjacent-row refresh when a row's
// estimated count reaches the predefined threshold T, so the guaranteed-safe
// FlipTH grows linearly with T. The calibration constant follows the paper's
// worked example (T = 2K protects FlipTH = 10K): a factor 2 for the
// double-sided attack, a factor 2 for the periodic table reset, and one
// extra T of CbS estimation slack — FlipTH_safe = (2·2 + 1)·T = 5T.
//
// RFM-Graphene must postpone the refresh to the next RFM slot. When many
// rows cross T in a short period, the last buffered row waits through
// ⌈S/T⌉·RFMTH further activations (S = ACTs per tREFW): with T = 2K and
// RFMTH = 64, 310-ish rows each wait up to 310·64 ≈ 20K ACTs, so no choice
// of T can protect a low FlipTH — the curve has a floor that rises with
// RFMTH, which is exactly the paper's incompatibility argument.

// ARRGrapheneSafeFlipTH returns the FlipTH protected by reactive
// ARR-Graphene at predefined threshold t.
func ARRGrapheneSafeFlipTH(t int) float64 {
	if t <= 0 {
		return 0
	}
	return 5 * float64(t)
}

// RFMGrapheneSafeFlipTH returns the FlipTH protected when the same reactive
// scheme is retrofitted onto the RFM interface with threshold rfmTH.
func RFMGrapheneSafeFlipTH(p timing.Params, t, rfmTH int) float64 {
	if t <= 0 || rfmTH <= 0 {
		return 0
	}
	s := p.ACTsPerREFW()
	rowsCrossing := (s + t - 1) / t // rows that can reach T within tREFW
	wait := float64(rowsCrossing) * float64(rfmTH)
	// The retrofit inherits the native scheme's threshold-linear term and
	// adds the buffered-row wait: victims keep accumulating ACTs while the
	// refresh sits in the RFM queue behind the other crossing rows.
	return ARRGrapheneSafeFlipTH(t) + wait
}

// Figure2Point is one x-coordinate of the Figure 2 curves.
type Figure2Point struct {
	Threshold int             // predefined threshold T (x axis)
	ARR       float64         // ARR-Graphene safe FlipTH
	RFM       map[int]float64 // RFMTH -> RFM-Graphene safe FlipTH
}

// Figure2Curve evaluates both models over thresholds for each RFMTH in
// rfmTHs, producing the data behind Figure 2.
func Figure2Curve(p timing.Params, thresholds, rfmTHs []int) []Figure2Point {
	out := make([]Figure2Point, 0, len(thresholds))
	for _, t := range thresholds {
		pt := Figure2Point{Threshold: t, ARR: ARRGrapheneSafeFlipTH(t), RFM: make(map[int]float64, len(rfmTHs))}
		for _, r := range rfmTHs {
			pt.RFM[r] = RFMGrapheneSafeFlipTH(p, t, r)
		}
		out = append(out, pt)
	}
	return out
}

// RFMGrapheneFloor reports the minimum safe FlipTH achievable by
// RFM-Graphene over a threshold sweep — the "limit ... regardless of how low
// the predefined threshold is set" of Section III-A.
func RFMGrapheneFloor(p timing.Params, rfmTH int, thresholds []int) float64 {
	best := 0.0
	for i, t := range thresholds {
		v := RFMGrapheneSafeFlipTH(p, t, rfmTH)
		if i == 0 || v < best {
			best = v
		}
	}
	return best
}
