// Package bad severs cancellation chains in every way ctxflow flags.
package bad

import "context"

// Server retains a call-scoped context beyond the call.
type Server struct {
	ctx context.Context // want "stored in a struct field"
}

func step(ctx context.Context) error { return ctx.Err() }

// process receives a ctx but mints a fresh root for its callee.
func process(ctx context.Context, items []int) error {
	for range items {
		if err := step(context.Background()); err != nil { // want "severs the caller's cancellation chain"
			return err
		}
	}
	return ctx.Err()
}

// helper has no ctx in scope: outside main, roots are banned outright.
func helper() error {
	return step(context.TODO()) // want "context.TODO outside package main"
}

// inClosure severs the chain from inside a closure that captures ctx.
func inClosure(ctx context.Context) func() error {
	return func() error {
		return step(context.Background()) // want "severs the caller's cancellation chain"
	}
}

// nilCtx passes nil where the callee expects a context.
func nilCtx() error {
	return step(nil) // want "nil Context passed to step"
}
