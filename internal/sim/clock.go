package sim

import "mithril/internal/timing"

// Clock is the simulation time source shared by the legacy tick loop and
// the event-calendar loop: a monotone cursor that can be read and pushed
// forward, never back. Both loops drive the same concrete tickClock (the
// interface exists so alternative loop experiments and tests can observe
// or substitute time handling without touching loop internals); keeping
// the concrete type in the hot loops avoids interface dispatch per
// iteration.
type Clock interface {
	// Now reports the current simulated instant.
	Now() timing.PicoSeconds
	// AdvanceTo moves the clock forward to t; instants at or before Now
	// are ignored (the clock never moves backward).
	AdvanceTo(t timing.PicoSeconds)
}

// tickClock advances in whole command slots (the DRAM clock period) and
// jumps over idle stretches: Step always charges one tick — matching the
// one command slot each loop iteration represents — and then fast-forwards
// to the next known event if that lies further out.
type tickClock struct {
	now  timing.PicoSeconds
	tick timing.PicoSeconds
}

var _ Clock = (*tickClock)(nil)

// Now implements Clock.
//
//mithril:hotpath
func (c *tickClock) Now() timing.PicoSeconds { return c.now }

// AdvanceTo implements Clock.
//
//mithril:hotpath
func (c *tickClock) AdvanceTo(t timing.PicoSeconds) {
	if t > c.now {
		c.now = t
	}
}

// Step performs one loop iteration's time update: advance one command
// slot, then jump to next when it is later. Both loops use exactly this
// sequence, which is why they produce identical time series: the jump
// target is a max over per-subsystem deadlines, and clamping any deadline
// anywhere in [0, now+tick] cannot change the outcome of the max.
//
//mithril:hotpath
func (c *tickClock) Step(next timing.PicoSeconds) {
	c.now += c.tick
	c.AdvanceTo(next)
}
