package mc

import (
	"testing"
	"testing/quick"

	"mithril/internal/timing"
)

func TestAddressMapRoundTrip(t *testing.T) {
	m := NewAddressMapper(timing.DDR5())
	f := func(raw uint64) bool {
		addr := (raw << 6) % m.AddressSpace() // line-aligned, in range
		loc := m.Map(addr)
		return m.Compose(loc) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddressMapDecodesFields(t *testing.T) {
	m := NewAddressMapper(timing.DDR5())
	loc := m.Map(0)
	if loc != (Location{}) {
		t.Fatalf("address 0 should decode to the origin, got %+v", loc)
	}
	// Consecutive cache lines alternate channels (2 channels).
	a, b := m.Map(0), m.Map(64)
	if a.Channel == b.Channel {
		t.Fatal("adjacent lines should interleave across channels")
	}
	// Lines within a row share bank and row.
	c, d := m.Map(0), m.Map(256)
	if c.Row != d.Row || c.GlobalBank != d.GlobalBank {
		t.Fatal("row-local lines should share bank and row")
	}
}

func TestComposeTargetsRow(t *testing.T) {
	m := NewAddressMapper(timing.DDR5())
	loc := Location{Channel: 1, Rank: 0, Bank: 7, Row: 12345, Column: 3}
	got := m.Map(m.Compose(loc))
	if got.Channel != 1 || got.Bank != 7 || got.Row != 12345 || got.Column != 3 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.GlobalBank != (1*timing.DDR5().Ranks+0)*timing.DDR5().Banks+7 {
		t.Fatalf("global bank = %d", got.GlobalBank)
	}
}

func TestMapperRejectsNonPowerOfTwo(t *testing.T) {
	p := timing.DDR5()
	p.Banks = 24
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two organization should panic")
		}
	}()
	NewAddressMapper(p)
}

func TestRowBytes(t *testing.T) {
	m := NewAddressMapper(timing.DDR5())
	if got := m.RowBytes(); got != 128*64 {
		t.Fatalf("RowBytes = %d, want 8KB", got)
	}
}
