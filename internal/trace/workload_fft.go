package trace

import "fmt"

func init() {
	RegisterWorkload("fft",
		"SPLASH-2 FFT-like multithreaded kernel: all threads stride a shared footprint with butterfly-style strides",
		FFT)
}

// FFT is the SPLASH-2 FFT-like multithreaded kernel: all threads stride a
// shared footprint with butterfly-style strides.
func FFT(threads int, seed uint64) Workload {
	return Workload{
		Name: "fft",
		Fresh: func() []Generator {
			gens := make([]Generator, threads)
			const foot = 512 << 20
			for i := 0; i < threads; i++ {
				// Per-thread partition plus power-of-two stride.
				base := uint64(i) * (foot / uint64(threads))
				gens[i] = NewStrided(fmt.Sprintf("fft-%d", i), base, foot/uint64(threads), 1<<uint(3+i%3), 16)
			}
			return gens
		},
	}
}
