package mc

import "mithril/internal/timing"

// Scheme is the controller-side view of a RowHammer mitigation. It is
// defined here (consumer side) so both MC-located schemes (Graphene, CBT,
// BlockHammer, PARA) and DRAM-located schemes behind the RFM interface
// (Mithril, PARFM) plug into the same controller. Implementations live in
// internal/mitigation.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string

	// RFMCompatible reports whether the controller should run RAA counters
	// and issue RFM commands for this scheme (Figure 1).
	RFMCompatible() bool

	// RFMTH is the RAA threshold when RFMCompatible; ignored otherwise.
	RFMTH() int

	// OnActivate observes one real ACT command (coreID -1 for activations
	// without an owning core, e.g. raw attack replay). ARR-based schemes
	// return victim rows that must be refreshed immediately (the
	// controller opens an ARR maintenance window for them); RFM-based
	// schemes return nil.
	//
	// The returned slice is owned by the scheme and only valid until its
	// next OnActivate/OnRFM call — schemes reuse one victim buffer to keep
	// the ACT hot path allocation-free. Callers that retain victims (the
	// controller's pending-ARR queue) must copy them.
	OnActivate(globalBank int, row uint32, coreID int, now timing.PicoSeconds) (arrVictims []uint32)

	// PreACTDelay lets throttling schemes (BlockHammer) postpone an ACT:
	// the returned time is the earliest the activation may start (zero
	// means no restriction). coreID enables thread-level throttling.
	PreACTDelay(globalBank int, row uint32, coreID int, now timing.PicoSeconds) timing.PicoSeconds

	// OnRFM is invoked when the controller issues an RFM command to a
	// bank; the scheme returns the victim rows it refreshes inside the
	// tRFM window (empty when it decides to idle, e.g. adaptive skip).
	// The returned slice follows the same reuse contract as OnActivate's.
	OnRFM(globalBank int, now timing.PicoSeconds) (victims []uint32)

	// SkipRFM is the Mithril+ MRR poll: when it reports true at the
	// moment RAA reaches RFMTH, the controller resets the RAA counter
	// without issuing the RFM command.
	SkipRFM(globalBank int) bool

	// NextDeadline reports the earliest instant at or after now at which
	// the scheme needs controller attention of its own accord, or
	// timing.Never for a purely reactive scheme (one that only acts inside
	// the OnActivate/OnRFM/PreACTDelay callbacks). Every shipped scheme is
	// reactive — throttle release times already reach the calendar through
	// the per-request blocked deadlines PreACTDelay sets — so returning a
	// real deadline is an opt-in for future autonomously-timed schemes.
	// The controller folds the value into its own NextDeadline.
	NextDeadline(now timing.PicoSeconds) timing.PicoSeconds
}

// NoProtection is the do-nothing baseline scheme.
type NoProtection struct{}

// Name implements Scheme.
func (NoProtection) Name() string { return "none" }

// RFMCompatible implements Scheme.
func (NoProtection) RFMCompatible() bool { return false }

// RFMTH implements Scheme.
func (NoProtection) RFMTH() int { return 0 }

// OnActivate implements Scheme.
//
//mithril:hotpath
func (NoProtection) OnActivate(int, uint32, int, timing.PicoSeconds) []uint32 { return nil }

// PreACTDelay implements Scheme.
//
//mithril:hotpath
func (NoProtection) PreACTDelay(int, uint32, int, timing.PicoSeconds) timing.PicoSeconds { return 0 }

// OnRFM implements Scheme.
//
//mithril:hotpath
func (NoProtection) OnRFM(int, timing.PicoSeconds) []uint32 { return nil }

// SkipRFM implements Scheme.
//
//mithril:hotpath
func (NoProtection) SkipRFM(int) bool { return false }

// NextDeadline implements Scheme: the baseline never schedules work.
//
//mithril:hotpath
func (NoProtection) NextDeadline(timing.PicoSeconds) timing.PicoSeconds { return timing.Never }
