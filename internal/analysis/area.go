package analysis

import (
	"math"

	"mithril/internal/timing"
)

// Counter-table area models (Table IV of the paper), in KB per bank.
//
// The paper obtains Mithril's area from RTL synthesis; here every scheme is
// sized analytically from its own published structure, with entry widths in
// bits (address + counter fields) and entry counts from each scheme's sizing
// rule. Constants are calibrated once against the paper's Table IV (the
// reference values are embedded below for EXPERIMENTS.md comparisons).

// StandardFlipTHs is the FlipTH sweep used across the evaluation section.
var StandardFlipTHs = []int{50000, 25000, 12500, 6250, 3125, 1500}

// blockHammerConfig is the (CBF size, NBL) pair the paper assigns per
// FlipTH in Section VI-A.
type blockHammerConfig struct {
	cbfCounters int
	nbl         int
}

var blockHammerConfigs = map[int]blockHammerConfig{
	50000: {1024, 17100},
	25000: {1024, 8600},
	12500: {1024, 4300},
	6250:  {2048, 2100},
	3125:  {4096, 1100},
	1500:  {8192, 490},
}

// BlockHammerConfigFor returns the paper's (CBF counters, NBL) pair for a
// FlipTH, interpolating to the nearest configured level.
func BlockHammerConfigFor(flipTH int) (cbfCounters, nbl int) {
	if c, ok := blockHammerConfigs[flipTH]; ok {
		return c.cbfCounters, c.nbl
	}
	// Nearest standard level by ratio.
	best, bestDist := 50000, math.Inf(1)
	for _, f := range StandardFlipTHs {
		d := math.Abs(math.Log(float64(flipTH) / float64(f)))
		if d < bestDist {
			best, bestDist = f, d
		}
	}
	c := blockHammerConfigs[best]
	return c.cbfCounters, c.nbl
}

func ceilLog2(v int) int {
	bits := 0
	for (1 << uint(bits)) < v {
		bits++
	}
	return bits
}

// BlockHammerTableKB sizes the dual counting Bloom filters:
// 2 filters × counters × ⌈log2 NBL⌉ bits.
func BlockHammerTableKB(flipTH int) float64 {
	counters, nbl := BlockHammerConfigFor(flipTH)
	return float64(2*counters*ceilLog2(nbl)) / 8 / 1024
}

// GrapheneTableKB sizes Graphene's MC-side CbS table: the reset halves the
// effective window, the predefined threshold is FlipTH/4 (reset × double-
// sided), N = ⌈(S/2)/T⌉ entries of (address + ⌈log2 S/2⌉ counter) bits.
func GrapheneTableKB(p timing.Params, flipTH int) float64 {
	s := p.ACTsPerREFW()
	t := flipTH / 4
	if t <= 0 {
		return math.Inf(1)
	}
	n := (s/2 + t - 1) / t
	entryBits := AddressBits(p.Rows) + ceilLog2(s/2)
	return float64(n*entryBits) / 8 / 1024
}

// TWiCeTableKB sizes the TWiCe lossy-counting table on the buffer chip:
// the pruning checkpoints at every tREFI keep up to (4S/FlipTH)·H(groups)
// live entries (harmonic factor from per-checkpoint survival thresholds),
// each of (address + ⌈log2 FlipTH/4⌉ count + ⌈log2 groups⌉ life) bits.
func TWiCeTableKB(p timing.Params, flipTH int) float64 {
	s := float64(p.ACTsPerREFW())
	groups := p.RefreshGroups
	nf := 4 * s / float64(flipTH) * Harmonic(groups) // H(8192) ≈ 9.68

	entryBits := AddressBits(p.Rows) + ceilLog2(flipTH/4) + ceilLog2(groups)
	return math.Ceil(nf) * float64(entryBits) / 8 / 1024
}

// CBTTableKB sizes the Counter-Based Tree: the fully-split tree needs about
// 9·S/FlipTH leaf counters (calibrated to the original work's configuration),
// each of (address-prefix + counter) bits.
func CBTTableKB(p timing.Params, flipTH int) float64 {
	s := float64(p.ACTsPerREFW())
	n := math.Ceil(9 * s / float64(flipTH))
	entryBits := AddressBits(p.Rows) + 16
	return n * float64(entryBits) / 8 / 1024
}

// MithrilTableKB sizes Mithril's per-bank pair of CAMs for a (FlipTH,
// RFMTH) point, using the Theorem 1/2 minimal Nentry and the wrapping
// counter width from the achieved bound M. ok is false when the point is
// infeasible.
func MithrilTableKB(p timing.Params, flipTH, rfmTH, adTH int) (float64, bool) {
	c, ok := Configure(p, flipTH, rfmTH, adTH, DoubleSidedBlast)
	if !ok {
		return 0, false
	}
	return c.TableKB, true
}

// TableIVRow is one scheme row of the Table IV reproduction.
type TableIVRow struct {
	Scheme string
	// KB maps FlipTH -> per-bank table size; NaN marks infeasible points
	// (rendered as "-" like the paper).
	KB map[int]float64
}

// MaxPracticalNEntry is the table-size practicality cap used when rendering
// Table IV: the paper leaves cells blank where "a higher RFMTH value results
// in an overly high Nentry" even though the bound is technically satisfiable
// (e.g. Mithril-64 at FlipTH = 1.5K needs ≈3K entries ≈ 10 KB per bank).
const MaxPracticalNEntry = 2048

// TableIV computes the full Table IV reproduction for the given parameter
// set. Mithril rows are produced for RFMTH ∈ {256, 128, 64, 32} as in the
// paper; impractical cells (Nentry above MaxPracticalNEntry) are NaN like
// the paper's dashes.
func TableIV(p timing.Params) []TableIVRow {
	rows := []TableIVRow{
		{Scheme: "CBT @ MC", KB: map[int]float64{}},
		{Scheme: "Graphene @ MC", KB: map[int]float64{}},
		{Scheme: "BlockHammer @ MC", KB: map[int]float64{}},
		{Scheme: "TWiCe @ buffer chip", KB: map[int]float64{}},
	}
	for _, f := range StandardFlipTHs {
		rows[0].KB[f] = CBTTableKB(p, f)
		rows[1].KB[f] = GrapheneTableKB(p, f)
		rows[2].KB[f] = BlockHammerTableKB(f)
		rows[3].KB[f] = TWiCeTableKB(p, f)
	}
	for _, r := range []int{256, 128, 64, 32} {
		row := TableIVRow{Scheme: "Mithril-" + itoa(r) + " @ DRAM", KB: map[int]float64{}}
		for _, f := range StandardFlipTHs {
			if c, ok := Configure(p, f, r, 0, DoubleSidedBlast); ok && c.NEntry <= MaxPracticalNEntry {
				row.KB[f] = c.TableKB
			} else {
				row.KB[f] = math.NaN()
			}
		}
		rows = append(rows, row)
	}
	return rows
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// PaperTableIV returns the values printed in the paper's Table IV for
// side-by-side comparison in EXPERIMENTS.md. NaN marks the dashes.
func PaperTableIV() []TableIVRow {
	nan := math.NaN()
	return []TableIVRow{
		{Scheme: "CBT @ MC", KB: map[int]float64{50000: 0.47, 25000: 0.97, 12500: 2.0, 6250: 4.12, 3125: 8.5, 1500: 17.5}},
		{Scheme: "Graphene @ MC", KB: map[int]float64{50000: 0.14, 25000: 0.21, 12500: 0.51, 6250: 0.99, 3125: 1.92, 1500: 3.7}},
		{Scheme: "BlockHammer @ MC", KB: map[int]float64{50000: 3.75, 25000: 3.5, 12500: 3.25, 6250: 6.0, 3125: 11.0, 1500: 20.0}},
		{Scheme: "TWiCe @ buffer chip", KB: map[int]float64{50000: 2.79, 25000: 5.08, 12500: 9.54, 6250: 18.27, 3125: 35.29, 1500: 71.26}},
		{Scheme: "Mithril-256 @ DRAM", KB: map[int]float64{50000: 0.08, 25000: 0.17, 12500: 0.41, 6250: 1.45, 3125: nan, 1500: nan}},
		{Scheme: "Mithril-128 @ DRAM", KB: map[int]float64{50000: 0.07, 25000: 0.15, 12500: 0.34, 6250: 0.84, 3125: 3.76, 1500: nan}},
		{Scheme: "Mithril-64 @ DRAM", KB: map[int]float64{50000: 0.07, 25000: 0.14, 12500: 0.3, 6250: 0.68, 3125: 1.78, 1500: nan}},
		{Scheme: "Mithril-32 @ DRAM", KB: map[int]float64{50000: 0.06, 25000: 0.13, 12500: 0.27, 6250: 0.57, 3125: 1.38, 1500: 4.64}},
	}
}
