package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseTrace drives the trace parser with arbitrary byte streams. Three
// properties must hold on every input: the parser never panics, every
// accepted record satisfies the documented invariants (gap >= 0, address
// below MaxTraceAddr), and accepted traces survive a WriteTrace/ParseTrace
// round trip byte-exactly.
func FuzzParseTrace(f *testing.F) {
	for _, seed := range []string{
		filepath.Join("..", "..", "testdata", "sample_workload.trace"),
		filepath.Join("testdata", "sample.trace"),
		filepath.Join("testdata", "sample.canonical.trace"),
	} {
		data, err := os.ReadFile(seed)
		if err != nil {
			f.Fatalf("reading seed %s: %v", seed, err)
		}
		f.Add(data)
	}
	f.Add([]byte(""))
	f.Add([]byte("# comment only\n"))
	f.Add([]byte("12 R 0xdeadbeef\n0 W 0x0\n"))
	f.Add([]byte("1 W 0xffffffffff\n"))        // last in-range address
	f.Add([]byte("-1 R 0x0\n"))                // negative gap
	f.Add([]byte("1 X 0x10\n"))                // bad op
	f.Add([]byte("1 R 10\n"))                  // missing 0x prefix
	f.Add([]byte("1 R 0x10000000000\n"))       // address out of range
	f.Add([]byte{0x1f, 0x8b})                  // bare gzip magic, truncated stream
	f.Add([]byte{0x1f, 0x8b, 0x08, 0, 0, 0})   // gzip header, no body
	f.Add([]byte("9999999999999999999 R 0x0")) // gap overflows int64

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ParseTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected input: any error is fine, panics are not
		}
		if len(recs) == 0 {
			t.Fatalf("ParseTrace returned no records and no error")
		}
		for i, r := range recs {
			if r.Gap < 0 {
				t.Fatalf("record %d: negative gap %d", i, r.Gap)
			}
			if r.Addr >= MaxTraceAddr {
				t.Fatalf("record %d: address %#x out of range", i, r.Addr)
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, recs); err != nil {
			t.Fatalf("WriteTrace on accepted records: %v", err)
		}
		again, err := ParseTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparsing canonical output: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if recs[i] != again[i] {
				t.Fatalf("record %d changed in round trip: %+v -> %+v", i, recs[i], again[i])
			}
		}
	})
}
