package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestAnalyzerFixtures proves each analyzer both flags its violations and
// passes conforming code, analysistest-style: every fixture line carrying a
// `// want "substr" ...` comment must produce matching findings, and every
// finding must be expected. The good fixtures carry no want comments — any
// finding there is a false positive.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dirs     []string
	}{
		{HotpathAlloc, []string{"hotpathalloc/bad", "hotpathalloc/good"}},
		{DetRange, []string{"detrange/bad", "detrange/good"}},
		{PureSim, []string{"puresim/bad", "puresim/good"}},
		{RegisterInit, []string{"registerinit/bad", "registerinit/good"}},
		{CtxFlow, []string{"ctxflow/bad", "ctxflow/good"}},
		{GoLeak, []string{"goleak/bad", "goleak/good"}},
		{LockHeld, []string{"lockheld/bad", "lockheld/good"}},
	}
	for _, tc := range cases {
		for _, dir := range tc.dirs {
			t.Run(tc.analyzer.Name+"/"+filepath.Base(dir), func(t *testing.T) {
				runFixture(t, tc.analyzer, filepath.Join("testdata", "src", filepath.FromSlash(dir)))
			})
		}
	}
}

// runFixture loads one fixture package, applies the analyzer, and checks
// the findings against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := parseWants(t, pkg.Fset, pkg.Files)
	for _, f := range findings {
		if !consumeWant(wants, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for file, byLine := range wants {
		for line, substrs := range byLine {
			for _, s := range substrs {
				t.Errorf("%s:%d: expected a %s finding containing %q, got none", file, line, a.Name, s)
			}
		}
	}
}

// consumeWant matches a finding against the remaining expectations on its
// line, removing the first substring the message contains.
func consumeWant(wants map[string]map[int][]string, f Finding) bool {
	substrs := wants[f.Pos.Filename][f.Pos.Line]
	for i, s := range substrs {
		if strings.Contains(f.Message, s) {
			wants[f.Pos.Filename][f.Pos.Line] = append(substrs[:i], substrs[i+1:]...)
			if len(wants[f.Pos.Filename][f.Pos.Line]) == 0 {
				delete(wants[f.Pos.Filename], f.Pos.Line)
			}
			if len(wants[f.Pos.Filename]) == 0 {
				delete(wants, f.Pos.Filename)
			}
			return true
		}
	}
	return false
}

// wantQuoted extracts the quoted expectations of one want comment.
var wantQuoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// parseWants scans fixture comments for `// want "substr" ["substr" ...]`
// markers, keyed by file and line.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	t.Helper()
	wants := map[string]map[int][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				quoted := wantQuoted.FindAllString(text, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, q := range quoted {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: malformed want expectation %s: %v", pos.Filename, pos.Line, q, err)
					}
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = map[int][]string{}
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], s)
				}
			}
		}
	}
	return wants
}

// TestRepoCleanUnderAllAnalyzers is the self-check mirrored by CI's
// mithrilvet job: the module itself must produce zero findings.
func TestRepoCleanUnderAllAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs, err := Load("", "mithril/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
