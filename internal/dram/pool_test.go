package dram

import (
	"testing"

	"mithril/internal/timing"
)

// exercise drives a deterministic access pattern and returns the device's
// observable summaries.
func exercise(d *Device) (BankStats, string) {
	now := timing.PicoSeconds(0)
	for i := 0; i < 200; i++ {
		g := i % d.NumBanks()
		_, ready := d.Access(g, (i*7)%64, i%3 == 0, now)
		if ready > now {
			now = ready
		}
		if i%50 == 49 {
			now = d.IssueREF(0, now)
		}
	}
	return d.TotalStats(), d.SafetyReport().String()
}

// TestAcquireDeviceIndistinguishableFromFresh pins the pool contract: a
// device recycled through Release/Acquire — dirty state and all — must
// behave exactly like one built by NewDevice.
func TestAcquireDeviceIndistinguishableFromFresh(t *testing.T) {
	p := smallParams()

	dirty := AcquireDevice(p, 100, nil)
	exercise(dirty) // leave bank timing, checker, and stats state behind
	ReleaseDevice(dirty)

	recycled := AcquireDevice(p, 100, nil)
	defer ReleaseDevice(recycled)
	fresh := NewDevice(p, 100, nil)

	if rs, fs := recycled.TotalStats(), fresh.TotalStats(); rs != fs {
		t.Fatalf("recycled device starts with stats %+v, fresh %+v", rs, fs)
	}
	rStats, rSafety := exercise(recycled)
	fStats, fSafety := exercise(fresh)
	if rStats != fStats {
		t.Fatalf("recycled device diverged:\nrecycled: %+v\nfresh:    %+v", rStats, fStats)
	}
	if rSafety != fSafety {
		t.Fatalf("safety reports diverged:\nrecycled: %s\nfresh:    %s", rSafety, fSafety)
	}
}
