package expspec

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// tiny returns a comparison spec whose grid is small enough to simulate in
// unit tests (two cores, a few hundred instructions).
func tiny() *Spec {
	return &Spec{
		Name:  "tiny",
		Title: "tiny comparison",
		Kind:  Comparison,
		Scale: ScaleSpec{Preset: "quick", Cores: 2, InstrPerCore: 400},
		Axes: Axes{
			Schemes:   []string{"none", "mithril"},
			FlipTHs:   []int{6250},
			Workloads: []string{"mix-high"},
		},
	}
}

func TestRunComparisonRows(t *testing.T) {
	res, err := tiny().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Perf) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Perf))
	}
	for i, scheme := range []string{"none", "mithril"} {
		p := res.Perf[i]
		if p.Scheme != scheme || p.FlipTH != 6250 || p.Workload != "mix-high" || p.Seed != 1 {
			t.Errorf("row %d = %+v", i, p)
		}
		if p.RelativePerformance <= 0 {
			t.Errorf("row %d: non-positive perf %v", i, p.RelativePerformance)
		}
	}
	// The unprotected scheme is measured against the identical baseline
	// run, so it must sit at exactly 100%.
	if res.Perf[0].RelativePerformance != 100 {
		t.Errorf("none perf = %v, want 100", res.Perf[0].RelativePerformance)
	}
}

// Identical specs must produce identical results regardless of worker
// count: the sweep engine pins enumeration order.
func TestRunDeterministicAcrossJobs(t *testing.T) {
	serial := tiny()
	serialSc, _ := serial.Scale.Resolve()
	serialSc.Jobs = 1
	a, err := serial.RunAt(serialSc)
	if err != nil {
		t.Fatal(err)
	}
	parallel := tiny()
	parallelSc, _ := parallel.Scale.Resolve()
	parallelSc.Jobs = 4
	b, err := parallel.RunAt(parallelSc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Perf, b.Perf) {
		t.Errorf("serial %v != parallel %v", a.Perf, b.Perf)
	}
}

// The seeds axis repeats the grid with seed outermost, and each seed's
// cells really use their own seed (different seeds perturb the random
// generators, so rows may differ).
func TestRunSeedsAxis(t *testing.T) {
	s := tiny()
	s.Axes.Seeds = []uint64{1, 2}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Perf) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Perf))
	}
	if res.Perf[0].Seed != 1 || res.Perf[2].Seed != 2 {
		t.Errorf("seeds = %d,%d want 1,2", res.Perf[0].Seed, res.Perf[2].Seed)
	}
}

func TestTableRendering(t *testing.T) {
	res, err := tiny().Run()
	if err != nil {
		t.Fatal(err)
	}
	table, err := res.Table()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), table)
	}
	wantHeader := []string{"scheme", "FlipTH", "workload", "perf%", "energy+%", "tableKB", "safe"}
	if got := strings.Fields(lines[0]); !reflect.DeepEqual(got, wantHeader) {
		t.Errorf("header = %v, want %v", got, wantHeader)
	}
	if !strings.HasPrefix(lines[2], "none") || !strings.HasPrefix(lines[3], "mithril") {
		t.Errorf("rows out of order:\n%s", table)
	}
}

func TestColumnSelection(t *testing.T) {
	s := tiny()
	s.Columns = []string{"scheme", "perf", "seed"}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	table, err := res.Table()
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(table, "\n", 2)[0]
	if got := strings.Fields(head); !reflect.DeepEqual(got, []string{"scheme", "perf%", "seed"}) {
		t.Errorf("selected table:\n%s", table)
	}
}

// CSV output must parse back with encoding/csv and preserve full float
// precision (strconv round-trip).
func TestCSVRoundTrip(t *testing.T) {
	res, err := tiny().Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d, want header + 2 rows", len(records))
	}
	wantHeader := []string{"scheme", "flipth", "workload", "perf", "energy", "tablekb", "safe"}
	if !reflect.DeepEqual(records[0], wantHeader) {
		t.Errorf("header = %v, want %v", records[0], wantHeader)
	}
	perfIdx := 3
	for i, row := range records[1:] {
		v, err := strconv.ParseFloat(row[perfIdx], 64)
		if err != nil {
			t.Fatalf("row %d perf %q: %v", i, row[perfIdx], err)
		}
		if v != res.Perf[i].RelativePerformance {
			t.Errorf("row %d perf %v does not round-trip %v", i, v, res.Perf[i].RelativePerformance)
		}
	}
}

// JSON output must parse back and carry the spec identity, resolved scale,
// and one object per row.
func TestJSONRoundTrip(t *testing.T) {
	res, err := tiny().Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name  string `json:"name"`
		Kind  string `json:"kind"`
		Scale struct {
			Cores        int   `json:"cores"`
			InstrPerCore int64 `json:"instr_per_core"`
		} `json:"scale"`
		Columns []string         `json:"columns"`
		Rows    []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Name != "tiny" || doc.Kind != "comparison" || doc.Scale.Cores != 2 || doc.Scale.InstrPerCore != 400 {
		t.Errorf("doc identity = %+v", doc)
	}
	if len(doc.Rows) != 2 || doc.Rows[1]["scheme"] != "mithril" {
		t.Errorf("rows = %v", doc.Rows)
	}
	if got := doc.Rows[0]["perf"].(float64); got != res.Perf[0].RelativePerformance {
		t.Errorf("perf %v does not round-trip %v", got, res.Perf[0].RelativePerformance)
	}
}

// The golden emitter must match the equivalence tests' line format exactly
// — the CI golden gate diffs it against testdata/golden_*.txt.
func TestGoldenFormat(t *testing.T) {
	res := &Result{
		Spec: &Spec{Kind: Comparison},
		Perf: []PerfPoint{{
			Scheme: "mithril", FlipTH: 6250, Workload: "normal",
			RelativePerformance: 101.94179805479314, EnergyOverheadPct: -0.08182748039549836,
			TableKB: 0.90625, Safe: true,
		}},
	}
	want := "mithril flipTH=6250 rfmTH=0 workload=normal perf=101.94179805479314 energy=-0.08182748039549836 tableKB=0.90625 safe=true\n"
	if got := res.Golden(); got != want {
		t.Errorf("Golden() = %q, want %q", got, want)
	}
	sres := &Result{
		Spec:   &Spec{Kind: SafetyKind},
		Safety: []SafetyResult{{Scheme: "none", Attack: "double-sided", FlipTH: 2000, Flips: 3, MaxDisturbance: 4188, Safe: false}},
	}
	swant := "none attack=double-sided flipTH=2000 flips=3 maxDisturbance=4188 safe=false\n"
	if got := sres.Golden(); got != swant {
		t.Errorf("Golden() = %q, want %q", got, swant)
	}
}

// The safety table sorts by (attack, scheme) like the CLI, while machine
// formats keep raw grid order.
func TestSafetyTableSorted(t *testing.T) {
	res := &Result{
		Spec: &Spec{Kind: SafetyKind},
		Safety: []SafetyResult{
			{Scheme: "parfm", Attack: "double-sided"},
			{Scheme: "blockhammer", Attack: "double-sided"},
		},
	}
	table, err := res.Table()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(table, "\n")
	if !strings.Contains(lines[2], "blockhammer") || !strings.Contains(lines[3], "parfm") {
		t.Errorf("table not sorted:\n%s", table)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, _ := csv.NewReader(&buf).ReadAll()
	if records[1][1] != "parfm" {
		t.Errorf("CSV reordered rows: %v", records)
	}
}

func TestEmitUnknownFormat(t *testing.T) {
	res := &Result{Spec: &Spec{Kind: Comparison}}
	if err := res.Emit(&bytes.Buffer{}, "yaml"); err == nil {
		t.Error("Emit(yaml) succeeded, want error")
	}
}
