package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mithril/internal/testutil"
)

// testSpec is a tiny comparison grid: 2 rows, fast enough for unit tests.
const testSpec = `{
  "name": "serve-test",
  "kind": "comparison",
  "scale": {"preset": "quick", "cores": 2, "instr_per_core": 400},
  "axes": {
    "schemes": ["none", "mithril"],
    "flipths": [6250],
    "workloads": ["mix-high"]
  }
}`

// slowSpec is the same grid repeated over many seeds with a much larger
// instruction budget: long enough that a client disconnect lands mid-sweep.
const slowSpec = `{
  "name": "serve-slow",
  "kind": "comparison",
  "scale": {"preset": "quick", "cores": 2, "instr_per_core": 400000},
  "axes": {
    "schemes": ["none", "mithril"],
    "flipths": [6250],
    "workloads": ["mix-high"],
    "seeds": [1, 2, 3, 4, 5, 6, 7, 8]
  }
}`

func TestServeRunStreamsNDJSON(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	ts := httptest.NewServer(newServeHandler(env{jobs: 2}))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	seenRows := map[float64]bool{}
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if msg, isErr := row["error"]; isErr {
			t.Fatalf("stream reported error: %v", msg)
		}
		for _, key := range []string{"scheme", "flipth", "workload", "perf", "row"} {
			if _, ok := row[key]; !ok {
				t.Fatalf("row missing %q: %v", key, row)
			}
		}
		seenRows[row["row"].(float64)] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// The 2-cell grid must stream exactly rows 0 and 1.
	if len(seenRows) != 2 || !seenRows[0] || !seenRows[1] {
		t.Fatalf("row indices = %v, want {0, 1}", seenRows)
	}
}

func TestServeRunRejectsBadRequests(t *testing.T) {
	ts := httptest.NewServer(newServeHandler(env{}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run status = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/run", "application/json", strings.NewReader(`{"name":`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"name":"x","kind":"comparison","scale":{"preset":"quick"},"axes":{"schemes":["bogus"],"workloads":["mix-high"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-scheme spec status = %d, want 400", resp.StatusCode)
	}
	// trace:<path> names a server-local file; accepting it over HTTP
	// would hand clients a filesystem probe, so it must 400 before any
	// file is opened.
	resp, err = http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"name":"x","kind":"comparison","scale":{"preset":"quick"},"axes":{"schemes":["mithril"],"workloads":["trace:/etc/passwd"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace-workload spec status = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(body[:n]), "not accepted over HTTP") {
		t.Fatalf("trace-workload rejection body = %q", body[:n])
	}
}

func TestServeHealthAndSchemes(t *testing.T) {
	ts := httptest.NewServer(newServeHandler(env{}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/schemes")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(names) == 0 || names[0] != "blockhammer" {
		t.Fatalf("schemes = %v, want the sorted registry", names)
	}
}

// The /workloads and /attacks endpoints expose the open registries as
// sorted {name, desc} catalogs.
func TestServeWorkloadAndAttackCatalogs(t *testing.T) {
	ts := httptest.NewServer(newServeHandler(env{}))
	defer ts.Close()
	cases := []struct {
		path  string
		first string
	}{
		{"/workloads", "fft"},
		{"/attacks", "blockhammer-adversarial"},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s content type = %q", c.path, ct)
		}
		var catalog []struct {
			Name string `json:"name"`
			Desc string `json:"desc"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&catalog); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(catalog) == 0 || catalog[0].Name != c.first {
			t.Fatalf("%s = %v, want the sorted registry starting at %q", c.path, catalog, c.first)
		}
		for _, entry := range catalog {
			if entry.Desc == "" {
				t.Errorf("%s entry %q has no description", c.path, entry.Name)
			}
		}
	}
}

// TestServeClientDisconnectCancelsSweep pins the service's cancellation
// contract: a client that walks away mid-sweep stops the workers (observed
// as the goroutine count settling back to its pre-request level) instead
// of leaving the grid running to completion against a dead connection.
func TestServeClientDisconnectCancelsSweep(t *testing.T) {
	// The leak check doubles as the unwind assertion: the handler's
	// workers all run module code, so any of them surviving the
	// disconnect fails the deferred diff.
	defer testutil.CheckGoroutines(t)()
	ts := httptest.NewServer(newServeHandler(env{jobs: 2}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run", strings.NewReader(slowSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first streamed row so the sweep is demonstrably mid-flight,
	// then sever the connection.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first row before disconnect: %v", sc.Err())
	}
	cancel()
	resp.Body.Close()
	// The deferred goroutine diff now proves the unwind: workers exit and
	// the handler returns, or the test fails with their stacks.
}
