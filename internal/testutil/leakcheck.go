// Package testutil holds test-only helpers shared across packages. Its
// centerpiece is the goroutine-leak checker — the dynamic twin of the
// goleak static analyzer: the analyzer proves exit paths exist, the
// checker proves they were actually taken.
package testutil

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// leakRetryWindow bounds how long the checker waits for goroutines that
// are exiting but have not finished yet: teardown is asynchronous (a
// cancelled worker still has to observe ctx and return), so the diff is
// retried until the window closes.
const leakRetryWindow = 5 * time.Second

// CheckGoroutines snapshots the live goroutines and returns the verify
// function to defer:
//
//	defer testutil.CheckGoroutines(t)()
//
// At test end it re-stacks the process, diffs against the snapshot, and
// fails on any goroutine created during the test that is still alive
// after the retry window and runs module code (its stack mentions
// "mithril") — the targeted form that ignores runtime, testing, and
// net/http service goroutines a test has no control over.
func CheckGoroutines(t testing.TB) func() {
	t.Helper()
	before := goroutineStacks()
	return func() {
		t.Helper()
		deadline := time.Now().Add(leakRetryWindow)
		for {
			leaked := leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				for _, stack := range leaked {
					t.Errorf("leaked goroutine still running after %v:\n%s", leakRetryWindow, stack)
				}
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// leakedSince returns the stacks of goroutines absent from the snapshot
// that run module code.
func leakedSince(before map[int64]string) []string {
	var leaked []string
	for id, stack := range goroutineStacks() {
		if _, existed := before[id]; existed {
			continue
		}
		if !strings.Contains(stack, "mithril") {
			continue
		}
		leaked = append(leaked, stack)
	}
	return leaked
}

// goroutineStacks captures every goroutine's stack, keyed by goroutine ID.
// IDs are monotonically assigned by the runtime and never reused, so a
// post-test ID absent from the pre-test snapshot is a goroutine the test
// created.
func goroutineStacks() map[int64]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	stacks := map[int64]string{}
	for _, g := range strings.Split(string(buf), "\n\n") {
		if id, ok := parseGoroutineID(g); ok {
			stacks[id] = g
		}
	}
	return stacks
}

// parseGoroutineID extracts N from a "goroutine N [state]:" header.
func parseGoroutineID(stack string) (int64, bool) {
	rest, ok := strings.CutPrefix(stack, "goroutine ")
	if !ok {
		return 0, false
	}
	end := strings.IndexByte(rest, ' ')
	if end < 0 {
		return 0, false
	}
	id, err := strconv.ParseInt(rest[:end], 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}
